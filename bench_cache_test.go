// BenchmarkCache measures the solution cache's cold-vs-warm compile
// latency per example program and emits a machine-readable BENCH_cache.json
// so future changes have a perf trajectory to compare against.
//
// Smoke-run it the way CI does:
//
//	go test -run '^$' -bench BenchmarkCache -benchtime 1x .
//
// The output path defaults to BENCH_cache.json in the package directory and
// can be overridden with CHIPMUNK_BENCH_OUT.
package chipmunk_test

import (
	"context"
	"testing"
	"time"

	chipmunk "repro"
	"repro/internal/perfhist"
)

// cacheBenchPrograms are corpus members fast enough for a CI smoke run;
// the full corpus trajectory comes from running with a larger -benchtime.
var cacheBenchPrograms = []string{"sampling", "stateful_fw", "marple_new_flow"}

type cacheBenchRow struct {
	Program string  `json:"program"`
	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	// Speedup is cold/warm — how much of the compile the cache amortizes.
	Speedup  float64 `json:"speedup"`
	Feasible bool    `json:"feasible"`
	Stages   int     `json:"stages"`
	// Deterministic solver effort of the cold compile: unlike the
	// wall-clock columns these are identical across machines at a fixed
	// seed, so the regression gate anchors on them.
	ColdIters        int   `json:"cold_iters"`
	ColdConflicts    int64 `json:"cold_conflicts"`
	ColdDecisions    int64 `json:"cold_decisions"`
	ColdPropagations int64 `json:"cold_propagations"`
}

func (r cacheBenchRow) samples() map[string]float64 {
	return map[string]float64{
		"cold_ms":           r.ColdMS,
		"warm_ms":           r.WarmMS,
		"speedup":           r.Speedup,
		"cold_iters":        float64(r.ColdIters),
		"cold_conflicts":    float64(r.ColdConflicts),
		"cold_decisions":    float64(r.ColdDecisions),
		"cold_propagations": float64(r.ColdPropagations),
	}
}

func BenchmarkCache(b *testing.B) {
	hist := perfhist.OpenFromEnv("BenchmarkCache")
	defer hist.Close()
	var rows []cacheBenchRow
	for _, name := range cacheBenchPrograms {
		bench, err := chipmunk.BenchmarkByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := bench.Parse()
		b.Run(name, func(b *testing.B) {
			var row cacheBenchRow
			for i := 0; i < b.N; i++ {
				cache := chipmunk.NewSolutionCache(16)
				opts := benchOptions(bench)
				opts.Cache = cache
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)

				t0 := time.Now()
				cold, err := chipmunk.Compile(ctx, prog, opts)
				coldDur := time.Since(t0)
				if err != nil {
					cancel()
					b.Fatal(err)
				}
				t1 := time.Now()
				warm, err := chipmunk.Compile(ctx, prog, opts)
				warmDur := time.Since(t1)
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				if !warm.Cached {
					b.Fatalf("%s: second compile missed the cache", name)
				}
				effort := cold.Effort()
				row = cacheBenchRow{
					Program:          name,
					ColdMS:           float64(coldDur.Microseconds()) / 1000,
					WarmMS:           float64(warmDur.Microseconds()) / 1000,
					Feasible:         cold.Feasible,
					Stages:           cold.Usage.Stages,
					ColdIters:        effort.Iters,
					ColdConflicts:    effort.Conflicts,
					ColdDecisions:    effort.Decisions,
					ColdPropagations: effort.Propagations,
				}
				if row.WarmMS > 0 {
					row.Speedup = row.ColdMS / row.WarmMS
				}
				hist.AppendSamples(name, row.samples())
			}
			b.ReportMetric(row.ColdMS, "cold-ms")
			b.ReportMetric(row.WarmMS, "warm-ms")
			rows = append(rows, row)
		})
	}
	if len(rows) == 0 {
		return
	}
	out := benchOutPath("BENCH_cache.json")
	if err := perfhist.WriteBenchFile(out, "BenchmarkCache", rows); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", out)
}
