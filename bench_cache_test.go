// BenchmarkCache measures the solution cache's cold-vs-warm compile
// latency per example program and emits a machine-readable BENCH_cache.json
// so future changes have a perf trajectory to compare against.
//
// Smoke-run it the way CI does:
//
//	go test -run '^$' -bench BenchmarkCache -benchtime 1x .
//
// The output path defaults to BENCH_cache.json in the package directory and
// can be overridden with CHIPMUNK_BENCH_OUT.
package chipmunk_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	chipmunk "repro"
)

// cacheBenchPrograms are corpus members fast enough for a CI smoke run;
// the full corpus trajectory comes from running with a larger -benchtime.
var cacheBenchPrograms = []string{"sampling", "stateful_fw", "marple_new_flow"}

type cacheBenchRow struct {
	Program string  `json:"program"`
	ColdMS  float64 `json:"cold_ms"`
	WarmMS  float64 `json:"warm_ms"`
	// Speedup is cold/warm — how much of the compile the cache amortizes.
	Speedup  float64 `json:"speedup"`
	Feasible bool    `json:"feasible"`
	Stages   int     `json:"stages"`
}

func BenchmarkCache(b *testing.B) {
	var rows []cacheBenchRow
	for _, name := range cacheBenchPrograms {
		bench, err := chipmunk.BenchmarkByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prog := bench.Parse()
		b.Run(name, func(b *testing.B) {
			var row cacheBenchRow
			for i := 0; i < b.N; i++ {
				cache := chipmunk.NewSolutionCache(16)
				opts := benchOptions(bench)
				opts.Cache = cache
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)

				t0 := time.Now()
				cold, err := chipmunk.Compile(ctx, prog, opts)
				coldDur := time.Since(t0)
				if err != nil {
					cancel()
					b.Fatal(err)
				}
				t1 := time.Now()
				warm, err := chipmunk.Compile(ctx, prog, opts)
				warmDur := time.Since(t1)
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				if !warm.Cached {
					b.Fatalf("%s: second compile missed the cache", name)
				}
				row = cacheBenchRow{
					Program:  name,
					ColdMS:   float64(coldDur.Microseconds()) / 1000,
					WarmMS:   float64(warmDur.Microseconds()) / 1000,
					Feasible: cold.Feasible,
					Stages:   cold.Usage.Stages,
				}
				if row.WarmMS > 0 {
					row.Speedup = row.ColdMS / row.WarmMS
				}
			}
			b.ReportMetric(row.ColdMS, "cold-ms")
			b.ReportMetric(row.WarmMS, "warm-ms")
			rows = append(rows, row)
		})
	}
	if len(rows) == 0 {
		return
	}
	out := os.Getenv("CHIPMUNK_BENCH_OUT")
	if out == "" {
		out = "BENCH_cache.json"
	}
	data, err := json.MarshalIndent(struct {
		Bench string          `json:"bench"`
		Rows  []cacheBenchRow `json:"rows"`
	}{Bench: "BenchmarkCache", Rows: rows}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote %s", out)
}
