package chipmunk_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pisa"
)

// buildTool compiles one of the cmd/ binaries into a temp dir, skipping
// the test if the Go toolchain is unavailable.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = mustModuleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func samplingPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(mustModuleRoot(t), "testdata", "sampling.domino")
}

func TestCLIChipmunkCompiles(t *testing.T) {
	bin := buildTool(t, "chipmunk")
	out, err := exec.Command(bin, "-width", "2", "-alu", "if_else_raw", samplingPath(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("chipmunk CLI failed: %v\n%s", err, out)
	}
	for _, want := range []string{"compiled", "resources:", "stateful[0] (active)"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIChipmunkJSONFeedsPisasim(t *testing.T) {
	chip := buildTool(t, "chipmunk")
	sim := buildTool(t, "pisasim")

	out, err := exec.Command(chip, "-width", "2", "-alu", "if_else_raw", "-json", samplingPath(t)).Output()
	if err != nil {
		t.Fatalf("chipmunk -json failed: %v", err)
	}
	var cfg pisa.Config
	if err := json.Unmarshal(out, &cfg); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(cfgPath, out, 0o644); err != nil {
		t.Fatal(err)
	}

	simOut, err := exec.Command(sim,
		"-config", cfgPath,
		"-program", samplingPath(t),
		"-packets", "500",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim failed: %v\n%s", err, simOut)
	}
	if !strings.Contains(string(simOut), "0 divergences") {
		t.Fatalf("expected zero divergences:\n%s", simOut)
	}
}

func TestCLIChipmunkInfeasibleExitCode(t *testing.T) {
	bin := buildTool(t, "chipmunk")
	src := filepath.Join(t.TempDir(), "hard.domino")
	if err := os.WriteFile(src, []byte("pkt.a = pkt.a * pkt.b;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-width", "2", "-alu", "counter", "-max-stages", "2", src)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("want exit code 3 for infeasible, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "INFEASIBLE") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCLIDominoc(t *testing.T) {
	bin := buildTool(t, "dominoc")
	out, err := exec.Command(bin, "-alu", "if_else_raw", "-flat", samplingPath(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("dominoc failed: %v\n%s", err, out)
	}
	for _, want := range []string{"atom if_else_raw", "predicated form:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// A rejected program exits 3 with a reason.
	src := filepath.Join(t.TempDir(), "rej.domino")
	os.WriteFile(src, []byte("if (!(pkt.a == 0)) { s = s + 1; }\n"), 0o644)
	out, err = exec.Command(bin, "-alu", "pred_raw", src).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 || !strings.Contains(string(out), "REJECTED") {
		t.Fatalf("want REJECTED exit 3, got %v\n%s", err, out)
	}
}

func TestCLIMutgen(t *testing.T) {
	bin := buildTool(t, "mutgen")
	out, err := exec.Command(bin, "-n", "5", "-check", samplingPath(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("mutgen failed: %v\n%s", err, out)
	}
	if got := strings.Count(string(out), "// --- mutant"); got != 5 {
		t.Fatalf("printed %d mutants, want 5:\n%s", got, out)
	}
}

func TestCLISuperopt(t *testing.T) {
	bin := buildTool(t, "superopt")
	src := filepath.Join(t.TempDir(), "x5.domino")
	if err := os.WriteFile(src, []byte("pkt.y = pkt.x * 5;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, src).CombinedOutput()
	if err != nil {
		t.Fatalf("superopt failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 instruction(s)") {
		t.Fatalf("x*5 should superoptimize to 2 instructions:\n%s", out)
	}
}

func TestCLIRepairhint(t *testing.T) {
	bin := buildTool(t, "repairhint")
	src := filepath.Join(t.TempDir(), "broken.domino")
	if err := os.WriteFile(src, []byte("if (pkt.a == 0) { s = 1 + s; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-alu", "pred_raw", src).CombinedOutput()
	if err != nil {
		t.Fatalf("repairhint failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "commute") || !strings.Contains(string(out), "repaired program") {
		t.Fatalf("expected a commute hint:\n%s", out)
	}
}

func TestCLIEvalgenSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("evalgen run in -short mode")
	}
	bin := buildTool(t, "evalgen")
	csv := filepath.Join(t.TempDir(), "out.csv")
	out, err := exec.Command(bin,
		"-programs", "sampling",
		"-mutants", "3",
		"-csv", csv,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("evalgen failed: %v\n%s", err, out)
	}
	for _, want := range []string{"Table 2", "Figure 5", "sampling"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 4 { // header + 3 mutants
		t.Fatalf("CSV has %d lines, want 4:\n%s", lines, data)
	}
}

func TestCLIChipmunkEmit(t *testing.T) {
	bin := buildTool(t, "chipmunk")
	out, err := exec.Command(bin, "-width", "2", "-alu", "if_else_raw", "-emit", "p4", samplingPath(t)).Output()
	if err != nil {
		t.Fatalf("chipmunk -emit p4 failed: %v", err)
	}
	if !strings.Contains(string(out), "control ChipmunkPipe") {
		t.Fatalf("P4 output malformed:\n%s", out)
	}
	out, err = exec.Command(bin, "-width", "2", "-alu", "if_else_raw", "-emit", "go", samplingPath(t)).Output()
	if err != nil {
		t.Fatalf("chipmunk -emit go failed: %v", err)
	}
	if !strings.Contains(string(out), "func process(") {
		t.Fatalf("Go output malformed:\n%s", out)
	}
}

func TestCLIPisasimWorkload(t *testing.T) {
	chip := buildTool(t, "chipmunk")
	sim := buildTool(t, "pisasim")
	cfgJSON, err := exec.Command(chip, "-width", "2", "-alu", "if_else_raw", "-json", samplingPath(t)).Output()
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	os.WriteFile(cfgPath, cfgJSON, 0o644)
	out, err := exec.Command(sim,
		"-config", cfgPath, "-program", samplingPath(t),
		"-flows", "4", "-packets", "200",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim -flows failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 divergences") {
		t.Fatalf("expected zero divergences:\n%s", out)
	}
}
