package chipmunk_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pisa"
)

// buildTool compiles one of the cmd/ binaries into a temp dir, skipping
// the test if the Go toolchain is unavailable.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command(goBin, "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = mustModuleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func samplingPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(mustModuleRoot(t), "testdata", "sampling.domino")
}

func TestCLIChipmunkCompiles(t *testing.T) {
	bin := buildTool(t, "chipmunk")
	out, err := exec.Command(bin, "-width", "2", "-alu", "if_else_raw", samplingPath(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("chipmunk CLI failed: %v\n%s", err, out)
	}
	for _, want := range []string{"compiled", "resources:", "stateful[0] (active)"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIChipmunkJSONFeedsPisasim(t *testing.T) {
	chip := buildTool(t, "chipmunk")
	sim := buildTool(t, "pisasim")

	out, err := exec.Command(chip, "-width", "2", "-alu", "if_else_raw", "-json", samplingPath(t)).Output()
	if err != nil {
		t.Fatalf("chipmunk -json failed: %v", err)
	}
	var cfg pisa.Config
	if err := json.Unmarshal(out, &cfg); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(cfgPath, out, 0o644); err != nil {
		t.Fatal(err)
	}

	simOut, err := exec.Command(sim,
		"-config", cfgPath,
		"-program", samplingPath(t),
		"-packets", "500",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim failed: %v\n%s", err, simOut)
	}
	if !strings.Contains(string(simOut), "0 divergences") {
		t.Fatalf("expected zero divergences:\n%s", simOut)
	}
}

func TestCLIChipmunkInfeasibleExitCode(t *testing.T) {
	bin := buildTool(t, "chipmunk")
	src := filepath.Join(t.TempDir(), "hard.domino")
	if err := os.WriteFile(src, []byte("pkt.a = pkt.a * pkt.b;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-width", "2", "-alu", "counter", "-max-stages", "2", src)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("want exit code 3 for infeasible, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "INFEASIBLE") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCLIDominoc(t *testing.T) {
	bin := buildTool(t, "dominoc")
	out, err := exec.Command(bin, "-alu", "if_else_raw", "-flat", samplingPath(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("dominoc failed: %v\n%s", err, out)
	}
	for _, want := range []string{"atom if_else_raw", "predicated form:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// A rejected program exits 3 with a reason.
	src := filepath.Join(t.TempDir(), "rej.domino")
	os.WriteFile(src, []byte("if (!(pkt.a == 0)) { s = s + 1; }\n"), 0o644)
	out, err = exec.Command(bin, "-alu", "pred_raw", src).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 || !strings.Contains(string(out), "REJECTED") {
		t.Fatalf("want REJECTED exit 3, got %v\n%s", err, out)
	}
}

func TestCLIMutgen(t *testing.T) {
	bin := buildTool(t, "mutgen")
	out, err := exec.Command(bin, "-n", "5", "-check", samplingPath(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("mutgen failed: %v\n%s", err, out)
	}
	if got := strings.Count(string(out), "// --- mutant"); got != 5 {
		t.Fatalf("printed %d mutants, want 5:\n%s", got, out)
	}
}

func TestCLISuperopt(t *testing.T) {
	bin := buildTool(t, "superopt")
	src := filepath.Join(t.TempDir(), "x5.domino")
	if err := os.WriteFile(src, []byte("pkt.y = pkt.x * 5;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, src).CombinedOutput()
	if err != nil {
		t.Fatalf("superopt failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 instruction(s)") {
		t.Fatalf("x*5 should superoptimize to 2 instructions:\n%s", out)
	}
}

func TestCLIRepairhint(t *testing.T) {
	bin := buildTool(t, "repairhint")
	src := filepath.Join(t.TempDir(), "broken.domino")
	if err := os.WriteFile(src, []byte("if (pkt.a == 0) { s = 1 + s; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-alu", "pred_raw", src).CombinedOutput()
	if err != nil {
		t.Fatalf("repairhint failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "commute") || !strings.Contains(string(out), "repaired program") {
		t.Fatalf("expected a commute hint:\n%s", out)
	}
}

func TestCLIEvalgenSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("evalgen run in -short mode")
	}
	bin := buildTool(t, "evalgen")
	csv := filepath.Join(t.TempDir(), "out.csv")
	out, err := exec.Command(bin,
		"-programs", "sampling",
		"-mutants", "3",
		"-csv", csv,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("evalgen failed: %v\n%s", err, out)
	}
	for _, want := range []string{"Table 2", "Figure 5", "sampling"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 4 { // header + 3 mutants
		t.Fatalf("CSV has %d lines, want 4:\n%s", lines, data)
	}
}

func TestCLIChipmunkEmit(t *testing.T) {
	bin := buildTool(t, "chipmunk")
	out, err := exec.Command(bin, "-width", "2", "-alu", "if_else_raw", "-emit", "p4", samplingPath(t)).Output()
	if err != nil {
		t.Fatalf("chipmunk -emit p4 failed: %v", err)
	}
	if !strings.Contains(string(out), "control ChipmunkPipe") {
		t.Fatalf("P4 output malformed:\n%s", out)
	}
	out, err = exec.Command(bin, "-width", "2", "-alu", "if_else_raw", "-emit", "go", samplingPath(t)).Output()
	if err != nil {
		t.Fatalf("chipmunk -emit go failed: %v", err)
	}
	if !strings.Contains(string(out), "func process(") {
		t.Fatalf("Go output malformed:\n%s", out)
	}
}

func TestCLIPisasimWorkload(t *testing.T) {
	chip := buildTool(t, "chipmunk")
	sim := buildTool(t, "pisasim")
	cfgJSON, err := exec.Command(chip, "-width", "2", "-alu", "if_else_raw", "-json", samplingPath(t)).Output()
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	os.WriteFile(cfgPath, cfgJSON, 0o644)
	out, err := exec.Command(sim,
		"-config", cfgPath, "-program", samplingPath(t),
		"-flows", "4", "-packets", "200",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim -flows failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 divergences") {
		t.Fatalf("expected zero divergences:\n%s", out)
	}
}

// TestCLIPisasimEngines runs the same config through every -engine mode:
// lockstep cross-check against the spec, pure compiled single-flow, and
// sharded compiled workload replay, all of which must report throughput.
func TestCLIPisasimEngines(t *testing.T) {
	chip := buildTool(t, "chipmunk")
	sim := buildTool(t, "pisasim")
	cfgJSON, err := exec.Command(chip, "-width", "2", "-alu", "if_else_raw", "-json", samplingPath(t)).Output()
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(t.TempDir(), "cfg.json")
	os.WriteFile(cfgPath, cfgJSON, 0o644)

	// Lockstep interp-vs-compiled with the spec oracle riding along.
	out, err := exec.Command(sim,
		"-config", cfgPath, "-program", samplingPath(t),
		"-engine", "both", "-packets", "2000",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim -engine both failed: %v\n%s", err, out)
	}
	for _, want := range []string{"0 divergences", "throughput:", "engine=both"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// Pure compiled single flow.
	out, err = exec.Command(sim,
		"-config", cfgPath, "-engine", "compiled", "-packets", "2000",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim -engine compiled failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "engine=compiled") {
		t.Fatalf("output missing compiled throughput line:\n%s", out)
	}

	// Sharded compiled replay: checksum must match the single-shard run.
	single, err := exec.Command(sim,
		"-config", cfgPath, "-engine", "compiled", "-flows", "8", "-packets", "5000",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim compiled replay failed: %v\n%s", err, single)
	}
	sharded, err := exec.Command(sim,
		"-config", cfgPath, "-engine", "compiled", "-flows", "8", "-packets", "5000", "-shards", "4",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("pisasim sharded replay failed: %v\n%s", err, sharded)
	}
	pick := func(out []byte) string {
		for _, line := range strings.Split(string(out), "\n") {
			if strings.Contains(line, "checksum") {
				return line[strings.Index(line, "checksum"):strings.Index(line, ",")]
			}
		}
		t.Fatalf("no checksum line in:\n%s", out)
		return ""
	}
	if a, b := pick(single), pick(sharded); a != b {
		t.Fatalf("sharded checksum diverged: %q vs %q", b, a)
	}
}

// TestCLIChipmunkTraceAndStats checks that -trace-out writes a well-formed
// JSONL span trace and -stats prints a metrics block whose SAT conflict
// total is the sum of the per-solve deltas recorded in the trace's
// sat.solve spans.
func TestCLIChipmunkTraceAndStats(t *testing.T) {
	bin := buildTool(t, "chipmunk")
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := exec.Command(bin, "-width", "2", "-alu", "if_else_raw",
		"-trace-out", trace, "-stats", samplingPath(t)).CombinedOutput()
	if err != nil {
		t.Fatalf("chipmunk -trace-out -stats failed: %v\n%s", err, out)
	}

	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadRecords(f)
	f.Close()
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if err := obs.CheckWellFormed(recs); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
	if len(recs) == 0 || recs[0].Name != "compile" {
		t.Fatalf("trace should open with a compile span, got %+v", recs[:1])
	}

	// Sum the per-solve conflict deltas carried on sat.solve end records.
	// (Phase spans carry a conflicts attr too; count only the leaves.)
	names := map[int64]string{}
	for _, r := range recs {
		if r.Type == obs.RecordStart {
			names[r.ID] = r.Name
		}
	}
	var fromSpans int64
	for _, r := range recs {
		if r.Type == obs.RecordEnd && names[r.ID] == "sat.solve" {
			if v, ok := r.Attrs["conflicts"].(float64); ok {
				fromSpans += int64(v)
			}
		}
	}

	// The -stats block reports the registry's cumulative counter.
	var fromStats int64 = -1
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "sat.conflicts" {
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("bad sat.conflicts line %q: %v", line, err)
			}
			fromStats = n
		}
	}
	if fromStats < 0 {
		t.Fatalf("-stats output missing sat.conflicts:\n%s", out)
	}
	if fromStats != fromSpans {
		t.Fatalf("stats sat.conflicts = %d but trace spans sum to %d", fromStats, fromSpans)
	}
	if !strings.Contains(string(out), "--- spans ---") || !strings.Contains(string(out), "compile") {
		t.Fatalf("-stats missing span summary:\n%s", out)
	}
}

// TestCLIEvalgenEffortColumns checks the new effort CSV columns, the
// Table 2 effort footer, -stats and -trace-dir.
func TestCLIEvalgenEffortColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("evalgen run in -short mode")
	}
	bin := buildTool(t, "evalgen")
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	traces := filepath.Join(dir, "traces")
	out, err := exec.Command(bin,
		"-programs", "sampling",
		"-mutants", "2",
		"-csv", csv,
		"-stats",
		"-trace-dir", traces,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("evalgen failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "solver effort:") {
		t.Errorf("Table 2 missing effort footer:\n%s", out)
	}
	if !strings.Contains(string(out), "sat.conflicts") {
		t.Errorf("-stats block missing:\n%s", out)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(data), "\n", 2)[0]
	if !strings.Contains(header, "chipmunk_conflicts") || !strings.Contains(header, "chipmunk_peak_cnf_vars") {
		t.Fatalf("CSV header missing effort columns: %s", header)
	}
	entries, err := os.ReadDir(traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expected 2 trace files, found %d", len(entries))
	}
	for _, e := range entries {
		f, err := os.Open(filepath.Join(traces, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		recs, err := obs.ReadRecords(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := obs.CheckWellFormed(recs); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}
