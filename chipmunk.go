// Package chipmunk is the public API of this repository: a reproduction of
// "Autogenerating Fast Packet-Processing Code Using Program Synthesis"
// (Gao, Kim, Varma, Sivaraman, Narayana — HotNets 2019).
//
// Chipmunk compiles packet-processing programs written in the Domino
// language onto a simulated PISA switch pipeline using syntax-guided
// program synthesis: the pipeline's hardware configurations (ALU opcodes,
// mux controls, field and state allocations, immediate operands) are holes
// in a sketch that a CEGIS loop over a built-in SAT solver fills in, so any
// program whose semantics fit the hardware compiles — regardless of how it
// is written. The package also provides the classical rewrite-rule baseline
// (the Domino compiler) the paper evaluates against, the eight-program
// benchmark corpus, the semantics-preserving mutation generator, and the
// harness regenerating the paper's Table 2 and Figure 5.
//
// # Quick start
//
//	prog := chipmunk.MustParse("sampling", src)
//	rep, err := chipmunk.Compile(ctx, prog, chipmunk.Options{
//		Width:       2,
//		StatefulALU: chipmunk.StatefulALU{Kind: chipmunk.IfElseRaw},
//	})
//	if rep.Feasible {
//		pkt, state = rep.Config.Exec(pkt, state) // simulate the switch
//	}
//
// The deeper layers are importable individually for research use:
// internal/sat (CDCL solver), internal/circuit (bit-vector circuits and
// Tseitin CNF), internal/cegis (the synthesis loop), internal/pisa (the
// switch simulator), and internal/domino (the baseline compiler).
package chipmunk

import (
	"context"

	"repro/internal/alu"
	"repro/internal/approx"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/emit"
	"repro/internal/eval"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/pisa"
	"repro/internal/programs"
	"repro/internal/repair"
	"repro/internal/server"
	"repro/internal/solcache"
	"repro/internal/superopt"
)

// Program is a parsed Domino packet transaction.
type Program = ast.Program

// Expr is a Domino expression, used e.g. for approximate synthesis's care
// predicate.
type Expr = ast.Expr

// Options configures a Chipmunk compilation (see core.Options).
type Options = core.Options

// Report is a compilation outcome, including the synthesized configuration
// and the Figure 5 resource usage.
type Report = core.Report

// Config is a synthesized PISA hardware configuration; Exec simulates one
// packet through the configured pipeline.
type Config = pisa.Config

// GridSpec describes the simulated switch grid.
type GridSpec = pisa.GridSpec

// Usage reports stages and ALUs consumed by a configuration.
type Usage = pisa.Usage

// StatefulALU selects a stateful ALU template and immediate width.
type StatefulALU = alu.Stateful

// StatelessALU configures the Banzai-style stateless ALU.
type StatelessALU = alu.Stateless

// Stateful ALU template kinds (the Banzai atom menu).
const (
	Counter   = alu.Counter
	PredRaw   = alu.PredRaw
	IfElseRaw = alu.IfElseRaw
	SubALU    = alu.Sub
	NestedIfs = alu.NestedIfs
	PairALU   = alu.Pair
)

// Benchmark is one corpus entry of the paper's evaluation.
type Benchmark = programs.Benchmark

// Mutant is a semantics-preserving program mutation.
type Mutant = mutate.Mutant

// BaselineResult is the Domino baseline's compilation outcome.
type BaselineResult = domino.Result

// Parse parses Domino source into a Program.
func Parse(name, src string) (*Program, error) { return parser.Parse(name, src) }

// MustParse is Parse for known-good sources; it panics on error.
func MustParse(name, src string) *Program { return parser.MustParse(name, src) }

// ParseExpr parses a standalone Domino expression (e.g. a care predicate).
func ParseExpr(src string) (Expr, error) { return parser.ParseExpr(src) }

// Compile runs the Chipmunk synthesis-based code generator. Bound its
// runtime with the context; an expired context yields Report.TimedOut.
func Compile(ctx context.Context, prog *Program, opts Options) (*Report, error) {
	return core.Compile(ctx, prog, opts)
}

// CompileBaseline runs the classical Domino compiler against the given
// stateful ALU template, returning its placement or rejection reason.
func CompileBaseline(prog *Program, kind alu.Kind, constBits int) (*BaselineResult, error) {
	return domino.Compile(prog, kind, constBits)
}

// Corpus returns the paper's eight benchmark programs.
func Corpus() []Benchmark { return programs.Corpus() }

// BenchmarkByName returns one corpus entry.
func BenchmarkByName(name string) (Benchmark, error) { return programs.ByName(name) }

// Mutate generates n semantics-preserving mutants of a program,
// deterministically from seed.
func Mutate(prog *Program, n int, seed int64) []Mutant {
	return mutate.Generate(prog, n, seed)
}

// EvalOptions configures an evaluation run over the corpus.
type EvalOptions = eval.Options

// MutantOutcome is one mutant's result under both compilers.
type MutantOutcome = eval.MutantOutcome

// Evaluate compiles every mutant of every corpus program with both
// compilers — the raw data behind Table 2 and Figure 5. Aggregate with
// eval.Table2 / eval.Figure5 or this package's Table2/Figure5.
func Evaluate(ctx context.Context, opts EvalOptions) ([]MutantOutcome, error) {
	return eval.Run(ctx, opts)
}

// Table2 renders the paper's Table 2 from evaluation outcomes.
func Table2(outcomes []MutantOutcome) string {
	return eval.RenderTable2(eval.Table2(outcomes))
}

// Figure5 renders the paper's Figure 5 data from evaluation outcomes.
func Figure5(outcomes []MutantOutcome) string {
	return eval.RenderFigure5(eval.Figure5(outcomes))
}

// --- Observability ----------------------------------------------------------

// Tracer collects a hierarchical span trace of the synthesis pipeline
// (compile → attempt → CEGIS iteration → phase → SAT solve). Install one
// into the context passed to Compile with WithTracer, then export with
// StreamTo (JSONL) or Summary (indented tree).
type Tracer = obs.Tracer

// Metrics is a registry of named counters, gauges and histograms the
// pipeline populates (sat.conflicts, cegis.iterations, cnf.vars, ...).
// Install with WithMetrics; it is safe to share across concurrent compiles.
type Metrics = obs.Registry

// Effort summarizes a compilation's solver work (Report.Effort).
type Effort = core.Effort

// NewTracer returns an empty span tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WithTracer returns a context that records synthesis spans into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return obs.ContextWithTracer(ctx, tr)
}

// WithMetrics returns a context that accumulates pipeline metrics into m.
func WithMetrics(ctx context.Context, m *Metrics) context.Context {
	return obs.ContextWithMetrics(ctx, m)
}

// --- Compilation as a service ----------------------------------------------

// SolutionCache memoizes compilation results by canonical problem
// fingerprint (internal/solcache): warm hits skip CEGIS entirely, and
// concurrent compilations of the same canonical program share one
// synthesis run. Attach one via Options.Cache; it is safe to share across
// goroutines.
type SolutionCache = solcache.Cache

// CacheOption configures a SolutionCache.
type CacheOption = solcache.Option

// NewSolutionCache returns a cache holding at most capacity solutions
// (<= 0 means solcache.DefaultCapacity).
func NewSolutionCache(capacity int, opts ...CacheOption) *SolutionCache {
	return solcache.New(capacity, opts...)
}

// CacheWithPersistPath persists the cache to a JSON file across runs, with
// versioned invalidation.
func CacheWithPersistPath(path string) CacheOption {
	return solcache.WithPersistPath(path)
}

// ServerConfig configures an embedded compile service (see cmd/chipmunkd
// for the standalone daemon).
type ServerConfig = server.Config

// CompileServer is the compilation-as-a-service subsystem: an HTTP job API
// over a bounded queue and worker pool. Serve its Handler(); stop with
// Shutdown (graceful drain).
type CompileServer = server.Server

// NewCompileServer builds a compile service and starts its worker pool.
func NewCompileServer(cfg ServerConfig) *CompileServer { return server.New(cfg) }

// RemoteClient is a thin client for a chipmunkd daemon (the transport
// behind `chipmunk -remote`).
type RemoteClient = server.Client

// CompileRequest is the wire form of a remote compilation job.
type CompileRequest = server.CompileRequest

// JobStatus is the wire form of a remote job's state and result.
type JobStatus = server.JobStatus

// NewRemoteClient targets a chipmunkd daemon at base, e.g.
// "http://localhost:8926".
func NewRemoteClient(base string) *RemoteClient { return server.NewClient(base) }

// --- The paper's §5 future-work directions, implemented --------------------

// SuperoptOptions configures the §5.1 superoptimizer.
type SuperoptOptions = superopt.Options

// SuperoptResult reports a superoptimization run; Seq is the minimal
// instruction sequence found.
type SuperoptResult = superopt.Result

// Superoptimize searches for a minimal instruction sequence implementing a
// stateless packet transaction on a small processor ISA (§5.1,
// "Synthesizing Fast Processor Code").
func Superoptimize(ctx context.Context, prog *Program, opts SuperoptOptions) (*SuperoptResult, error) {
	return superopt.Superoptimize(ctx, prog, opts)
}

// ApproxOptions configures §5.2 approximate synthesis; set Care to a Domino
// expression describing the inputs whose behaviour matters.
type ApproxOptions = approx.Options

// ApproxResult reports an approximate-synthesis run.
type ApproxResult = approx.Result

// SynthesizeApproximate fits a program onto a grid requiring correctness
// only on inputs satisfying the care predicate (§5.2, "Approximate Program
// Synthesis") — trading accuracy for stages and ALUs.
func SynthesizeApproximate(ctx context.Context, prog *Program, grid GridSpec, opts ApproxOptions) (*ApproxResult, error) {
	return approx.Synthesize(ctx, prog, grid, opts)
}

// RepairOptions bounds the §5.3 repair-hint search.
type RepairOptions = repair.Options

// RepairResult carries the rewrite hints that make the baseline accept a
// rejected program.
type RepairResult = repair.Result

// RepairProgram searches for small semantics-preserving rewrites after
// which the classical Domino compiler accepts the program (§5.3,
// "Synthesizing Program Repairs").
func RepairProgram(prog *Program, kind alu.Kind, constBits int, opts RepairOptions) (*RepairResult, error) {
	return repair.Repair(prog, kind, constBits, opts)
}

// EmitGo translates a synthesized configuration into a standalone Go
// program (the backend translator of §3.1's Limitations). The emitted
// main() pushes `packets` deterministic pseudo-random packets through the
// pipeline and prints one CSV line each.
func EmitGo(cfg *Config, packets int, seed uint64) (string, error) {
	return emit.Go(cfg, packets, seed)
}

// EmitP4 renders a synthesized configuration as a P4-16-flavored program.
func EmitP4(cfg *Config) (string, error) {
	return emit.P4(cfg)
}
