// Benchmarks regenerating the paper's evaluation artifacts, one bench per
// table and figure, plus ablations of Chipmunk's design choices. Custom
// metrics attach the non-time quantities each artifact reports:
//
//	BenchmarkTable2     — per-program Chipmunk code-generation time over
//	                      mutants (Table 2's time column) with success rate
//	                      and counterexample-iteration metrics, against
//	                      BenchmarkTable2Domino for the baseline column.
//	BenchmarkFigure5    — per-program resource usage (stages, max ALUs per
//	                      stage) for both compilers on the originals.
//	BenchmarkCEGIS      — the Figure 3 loop in isolation: iterations and
//	                      SAT conflicts per synthesis run.
//	BenchmarkAblation   — canonicalization (Figure 4), opcode-mask
//	                      restriction (§3.1), two-tier verification widths
//	                      (§3.1), and iterative deepening (Figure 5's
//	                      no-variance property).
//	BenchmarkSimulator  — packets/second through synthesized
//	                      configurations (the substrate's line-rate proxy).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package chipmunk_test

import (
	"context"
	"os"
	"testing"
	"time"

	chipmunk "repro"
	"repro/internal/alu"
	"repro/internal/cegis"
	"repro/internal/domino"
	"repro/internal/mutate"
	"repro/internal/pisa"
	"repro/internal/word"
	"repro/internal/workload"
)

// benchOutPath resolves a benchmark artifact path: CHIPMUNK_BENCH_OUT
// overrides the per-benchmark default when set.
func benchOutPath(def string) string {
	if out := os.Getenv("CHIPMUNK_BENCH_OUT"); out != "" {
		return out
	}
	return def
}

func benchOptions(b chipmunk.Benchmark) chipmunk.Options {
	return chipmunk.Options{
		Width:        b.Width,
		MaxStages:    b.MaxStages,
		StatelessALU: chipmunk.StatelessALU{ConstBits: b.ConstBits},
		StatefulALU:  chipmunk.StatefulALU{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		Seed:         7,
	}
}

// BenchmarkTable2 measures Chipmunk code-generation time per benchmark
// program across its mutation set — the paper's Table 2 "Chipmunk time"
// column. The success-rate metric must stay at 1.0 (the 100% column).
func BenchmarkTable2(b *testing.B) {
	for _, bench := range chipmunk.Corpus() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			prog := bench.Parse()
			mutants := chipmunk.Mutate(prog, 10, 42)
			ok, total, iters := 0, 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := mutants[i%len(mutants)]
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				rep, err := chipmunk.Compile(ctx, m.Program, benchOptions(bench))
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				total++
				if rep.Feasible {
					ok++
				}
				for _, d := range rep.Depths {
					iters += d.Iters
				}
			}
			b.ReportMetric(float64(ok)/float64(total), "success-rate")
			b.ReportMetric(float64(iters)/float64(total), "cegis-iters/op")
		})
	}
}

// BenchmarkTable2Domino is the baseline column: compile time and success
// rate of the classical compiler over the same mutants.
func BenchmarkTable2Domino(b *testing.B) {
	for _, bench := range chipmunk.Corpus() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			mutants := chipmunk.Mutate(bench.Parse(), 10, 42)
			ok, total := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := mutants[i%len(mutants)]
				res, err := chipmunk.CompileBaseline(m.Program, bench.StatefulALU, bench.ConstBits)
				if err != nil {
					b.Fatal(err)
				}
				total++
				if res.OK {
					ok++
				}
			}
			b.ReportMetric(float64(ok)/float64(total), "success-rate")
		})
	}
}

// BenchmarkFigure5 compiles each original with both compilers and attaches
// the figure's two metrics per bar: pipeline stages and max ALUs per stage.
func BenchmarkFigure5(b *testing.B) {
	for _, bench := range chipmunk.Corpus() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			prog := bench.Parse()
			var cu, du pisa.Usage
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				rep, err := chipmunk.Compile(ctx, prog, benchOptions(bench))
				cancel()
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Feasible {
					b.Fatal("original must compile")
				}
				cu = rep.Usage
				res, err := chipmunk.CompileBaseline(prog, bench.StatefulALU, bench.ConstBits)
				if err != nil || !res.OK {
					b.Fatalf("baseline must compile the original: %v %s", err, res.Reason)
				}
				du = res.Usage
			}
			b.ReportMetric(float64(cu.Stages), "chipmunk-stages")
			b.ReportMetric(float64(du.Stages), "domino-stages")
			b.ReportMetric(float64(cu.MaxALUsPerStage), "chipmunk-alus/stage")
			b.ReportMetric(float64(du.MaxALUsPerStage), "domino-alus/stage")
		})
	}
}

// minStages records each corpus program's minimal feasible pipeline depth
// (what iterative deepening settles on), so BenchmarkCEGIS measures the
// solve Chipmunk actually performs rather than an inflated-depth search.
var minStages = map[string]int{
	"rcp": 1, "stateful_fw": 1, "sampling": 1, "blue_increase": 1,
	"blue_decrease": 1, "flowlet": 1, "marple_new_flow": 1, "marple_reorder": 2,
}

// BenchmarkCEGIS isolates the Figure 3 loop at a fixed grid, reporting the
// iteration and SAT-conflict counts that dominate synthesis time.
func BenchmarkCEGIS(b *testing.B) {
	for _, bench := range chipmunk.Corpus() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			prog := bench.Parse()
			grid := pisa.GridSpec{
				Stages:       minStages[bench.Name],
				Width:        bench.Width,
				WordWidth:    10,
				StatelessALU: alu.Stateless{ConstBits: bench.ConstBits},
				StatefulALU:  alu.Stateful{Kind: bench.StatefulALU, ConstBits: bench.ConstBits},
			}
			var iters, conflicts int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cegis.Synthesize(context.Background(), prog, grid, cegis.Options{Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Feasible {
					b.Fatal("must be feasible")
				}
				iters += int64(res.Iters)
				conflicts += res.SynthConflicts + res.VerifyConflicts
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
			b.ReportMetric(float64(conflicts)/float64(b.N), "sat-conflicts/op")
		})
	}
}

// BenchmarkAblation quantifies the design choices DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	sampling, _ := chipmunk.BenchmarkByName("sampling")

	// Figure 4: canonical vs indicator-variable packet-field allocation.
	b.Run("canonicalization/canonical", func(b *testing.B) {
		opts := benchOptions(sampling)
		runCompile(b, sampling, opts)
	})
	b.Run("canonicalization/indicator", func(b *testing.B) {
		opts := benchOptions(sampling)
		opts.IndicatorAlloc = true
		runCompile(b, sampling, opts)
	})

	// §3.1: restricting opcode holes "can sometimes speed up synthesis...
	// provided the program can be fully expressed using those opcodes".
	arith := chipmunk.MustParse("arith", "pkt.a = pkt.a + pkt.b; pkt.b = pkt.b - 3;")
	for name, mask := range map[string]uint32{"full": 0, "arith-only": alu.ArithOnlyMask} {
		mask := mask
		b.Run("opcode_restriction/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				rep, err := chipmunk.Compile(ctx, arith, chipmunk.Options{
					Width:        2,
					MaxStages:    2,
					StatelessALU: chipmunk.StatelessALU{OpcodeMask: mask},
					StatefulALU:  chipmunk.StatefulALU{Kind: chipmunk.Counter},
					Seed:         7,
				})
				cancel()
				if err != nil || !rep.Feasible {
					b.Fatalf("must compile: %v", err)
				}
			}
		})
	}

	// §3.1 scaling: two-tier widths. Synthesis at narrow widths with
	// 10-bit verification versus single-tier synthesis at the full width.
	for _, sw := range []word.Width{4, 6, 8, 10} {
		sw := sw
		name := "two_tier/synth-width-" + string(rune('0'+sw/10)) + string(rune('0'+sw%10))
		b.Run(name, func(b *testing.B) {
			opts := benchOptions(sampling)
			opts.SynthWidth = sw
			runCompile(b, sampling, opts)
		})
	}

	// Iterative deepening vs direct synthesis at the stage budget: the
	// deepening run pays for infeasibility proofs but returns minimal
	// depth (Figure 5's no-variance bars).
	reorder, _ := chipmunk.BenchmarkByName("marple_reorder")
	b.Run("deepening/minimize", func(b *testing.B) {
		runCompile(b, reorder, benchOptions(reorder))
	})
	b.Run("deepening/fixed-max", func(b *testing.B) {
		opts := benchOptions(reorder)
		opts.FixedStages = true
		runCompile(b, reorder, opts)
	})
}

func mustExpr(b *testing.B, src string) chipmunk.Expr {
	b.Helper()
	e, err := chipmunk.ParseExpr(src)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func runCompile(b *testing.B, bench chipmunk.Benchmark, opts chipmunk.Options) {
	b.Helper()
	prog := bench.Parse()
	var stages int
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		rep, err := chipmunk.Compile(ctx, prog, opts)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Feasible {
			b.Fatal("must compile")
		}
		stages = rep.Usage.Stages
	}
	b.ReportMetric(float64(stages), "stages")
}

// BenchmarkSimulator measures packet throughput of a synthesized
// configuration — the simulator-side cost of one packet per clock.
func BenchmarkSimulator(b *testing.B) {
	for _, name := range []string{"sampling", "flowlet"} {
		bench, _ := chipmunk.BenchmarkByName(name)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		rep, err := chipmunk.Compile(ctx, bench.Parse(), benchOptions(bench))
		cancel()
		if err != nil || !rep.Feasible {
			b.Fatalf("setup compile failed: %v", err)
		}
		b.Run(name, func(b *testing.B) {
			pkt := map[string]uint64{}
			for _, f := range rep.Config.Fields {
				pkt[f] = 3
			}
			state := map[string]uint64{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, state = rep.Config.Exec(pkt, state)
			}
		})
	}
}

// BenchmarkMutationGeneration covers the evaluation harness's other moving
// part.
func BenchmarkMutationGeneration(b *testing.B) {
	prog := chipmunk.MustParse("sampling", `
int count = 0;
if (count == 10) { count = 0; pkt.sample = 1; }
else { count = count + 1; pkt.sample = 0; }
`)
	for i := 0; i < b.N; i++ {
		if got := len(mutate.Generate(prog, 10, int64(i))); got == 0 {
			b.Fatal("no mutants")
		}
	}
}

// BenchmarkDominoBaseline measures the classical compiler's speed (Table 2
// notes Domino compiles in seconds; this reimplementation is far faster,
// but the point is the orders-of-magnitude gap to synthesis).
func BenchmarkDominoBaseline(b *testing.B) {
	for _, bench := range chipmunk.Corpus() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			prog := bench.Parse()
			for i := 0; i < b.N; i++ {
				res, err := domino.Compile(prog, bench.StatefulALU, bench.ConstBits)
				if err != nil || !res.OK {
					b.Fatal("baseline must compile the original")
				}
			}
		})
	}
}

// --- Future-work extensions (§5) ------------------------------------------

// BenchmarkSuperopt measures the §5.1 superoptimizer on the paper's
// Figure 1 specification and a harder identity.
func BenchmarkSuperopt(b *testing.B) {
	for _, c := range []struct{ name, src string }{
		{"figure1_x5", "pkt.y = pkt.x * 5;"},
		{"or_plus_and", "pkt.r = (pkt.x | pkt.y) + (pkt.x & pkt.y);"},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			prog := chipmunk.MustParse(c.name, c.src)
			var length int
			for i := 0; i < b.N; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
				res, err := chipmunk.Superoptimize(ctx, prog, chipmunk.SuperoptOptions{Seed: 1})
				cancel()
				if err != nil || !res.Feasible {
					b.Fatalf("superopt failed: %v", err)
				}
				length = res.Length
			}
			b.ReportMetric(float64(length), "instrs")
		})
	}
}

// BenchmarkApprox contrasts exact and approximate synthesis of the
// mask-AND program (§5.2): the approximate run fits a smaller grid.
func BenchmarkApprox(b *testing.B) {
	prog := chipmunk.MustParse("mask", "pkt.out = pkt.a & 7;")
	b.Run("exact-2-stages", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			res, err := chipmunk.SynthesizeApproximate(ctx, prog, chipmunk.GridSpec{
				Stages: 2, Width: 2, WordWidth: 10,
				StatefulALU: chipmunk.StatefulALU{Kind: chipmunk.Counter},
			}, chipmunk.ApproxOptions{Seed: 3})
			cancel()
			if err != nil || !res.Feasible {
				b.Fatalf("exact synthesis failed: %v", err)
			}
		}
	})
	b.Run("approx-1-stage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			res, err := chipmunk.SynthesizeApproximate(ctx, prog, chipmunk.GridSpec{
				Stages: 1, Width: 2, WordWidth: 10,
				StatefulALU: chipmunk.StatefulALU{Kind: chipmunk.Counter},
			}, chipmunk.ApproxOptions{Seed: 3, Care: mustExpr(b, "pkt.a >= 0 && pkt.a < 8")})
			cancel()
			if err != nil || !res.Feasible {
				b.Fatalf("approximate synthesis failed: %v", err)
			}
		}
	})
}

// BenchmarkRepair measures the §5.3 repair-hint search over rejected
// mutants of the sampling program.
func BenchmarkRepair(b *testing.B) {
	bench, _ := chipmunk.BenchmarkByName("sampling")
	var rejected []*chipmunk.Program
	for _, m := range chipmunk.Mutate(bench.Parse(), 10, 42) {
		res, err := chipmunk.CompileBaseline(m.Program, bench.StatefulALU, bench.ConstBits)
		if err == nil && !res.OK {
			rejected = append(rejected, m.Program)
		}
	}
	if len(rejected) == 0 {
		b.Skip("no rejected mutants at this seed")
	}
	repairedN, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := rejected[i%len(rejected)]
		res, err := chipmunk.RepairProgram(prog, bench.StatefulALU, bench.ConstBits, chipmunk.RepairOptions{})
		if err != nil {
			b.Fatal(err)
		}
		total++
		if res.Repaired {
			repairedN++
		}
	}
	b.ReportMetric(float64(repairedN)/float64(total), "repair-rate")
}

// BenchmarkWorkload measures trace generation throughput.
func BenchmarkWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace := workload.Generate(workload.Spec{
			Flows: 64, Packets: 10000, ZipfS: 1.1, ReorderProb: 0.05, Seed: int64(i),
		})
		if len(trace) != 10000 {
			b.Fatal("short trace")
		}
	}
	b.ReportMetric(10000, "packets/op")
}

// BenchmarkEmit measures backend translation of a synthesized pipeline.
func BenchmarkEmit(b *testing.B) {
	bench, _ := chipmunk.BenchmarkByName("flowlet")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	rep, err := chipmunk.Compile(ctx, bench.Parse(), benchOptions(bench))
	cancel()
	if err != nil || !rep.Feasible {
		b.Fatalf("setup compile failed: %v", err)
	}
	b.Run("go", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chipmunk.EmitGo(rep.Config, 100, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("p4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chipmunk.EmitP4(rep.Config); err != nil {
				b.Fatal(err)
			}
		}
	})
}
