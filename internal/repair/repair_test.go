package repair

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/domino"
	"repro/internal/interp"
	"repro/internal/mutate"
	"repro/internal/parser"
	"repro/internal/programs"
)

func repair(t *testing.T, src string, kind alu.Kind) *Result {
	t.Helper()
	prog := parser.MustParse("t", src)
	res, err := Repair(prog, kind, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAlreadyAcceptedNeedsNoRepair(t *testing.T) {
	res := repair(t, "if (pkt.a == 0) { s = s + 1; }", alu.PredRaw)
	if !res.Repaired || len(res.Steps) != 0 {
		t.Fatalf("accepted program should repair trivially: %+v", res)
	}
}

func TestRepairsCommutedUpdate(t *testing.T) {
	// "1 + s" is rejected; commuting repairs it.
	res := repair(t, "if (pkt.a == 0) { s = 1 + s; }", alu.PredRaw)
	if !res.Repaired {
		t.Fatalf("commuted update should be repairable; last reason: %s", res.Reason)
	}
	if len(res.Steps) != 1 || res.Steps[0] != RwCommute {
		t.Fatalf("want a single commute hint, got %v", res.Steps)
	}
}

func TestRepairsNegatedGuard(t *testing.T) {
	res := repair(t, "if (!(pkt.a >= 1)) { s = s + 1; }", alu.PredRaw)
	if !res.Repaired {
		t.Fatalf("negated guard should be repairable; last reason: %s", res.Reason)
	}
}

func TestRepairsFlippedIf(t *testing.T) {
	src := "if (!(s == 10)) { s = s + 1; pkt.out = 0; } else { s = 0; pkt.out = 1; }"
	res := repair(t, src, alu.IfElseRaw)
	if !res.Repaired {
		t.Fatalf("flipped if should be repairable; last reason: %s", res.Reason)
	}
	// Two distinct one-step repairs exist: flip the if back, or rewrite
	// the guard !(s == 10) as s != 10. Either is a valid hint.
	if len(res.Steps) != 1 || (res.Steps[0] != RwFlipIf && res.Steps[0] != RwUnNegateRel) {
		t.Fatalf("expected a single flip_if or unnegate_rel hint, got %v", res.Steps)
	}
}

func TestRepairsIdentityNoise(t *testing.T) {
	res := repair(t, "if (pkt.a == 0) { s = -(-(s + (1 + 0) * 1)); }", alu.PredRaw)
	if !res.Repaired {
		t.Fatalf("identity noise should fold away; last reason: %s", res.Reason)
	}
}

func TestRepairsMultipleRewrites(t *testing.T) {
	// Needs both folding and a commute.
	res := repair(t, "if (pkt.a == 0) { s = (1 + 0) + s; }", alu.PredRaw)
	if !res.Repaired {
		t.Fatalf("fold+commute should repair; last reason: %s", res.Reason)
	}
	if len(res.Steps) < 1 || len(res.Steps) > 3 {
		t.Fatalf("unexpected hint length: %v", res.Steps)
	}
}

func TestUnrepairableProgram(t *testing.T) {
	// Genuine expressiveness gap: multiply is absent from the hardware,
	// and no semantics-preserving local rewrite removes it.
	res := repair(t, "pkt.a = pkt.a * pkt.b;", alu.Counter)
	if res.Repaired {
		t.Fatal("multiply should not be repairable by local rewrites")
	}
	if res.Reason == "" || res.Explored == 0 {
		t.Fatalf("unrepaired result should carry diagnostics: %+v", res)
	}
}

// TestRepairedProgramsStayEquivalent re-verifies every repair output
// against the original exhaustively (belt and braces over the internal
// gate).
func TestRepairedProgramsStayEquivalent(t *testing.T) {
	srcs := []string{
		"if (pkt.a == 0) { s = 1 + s; }",
		"if (!(pkt.a >= 1)) { s = s + 1; }",
		"if (pkt.a == 0) { s = (1 + 0) + s; }",
	}
	in := interp.MustNew(3)
	for _, src := range srcs {
		prog := parser.MustParse("t", src)
		res, err := Repair(prog, alu.PredRaw, 5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Repaired {
			t.Fatalf("%q not repaired", src)
		}
		eq, cex, err := in.Equivalent(prog, res.Program)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("repair of %q changed semantics at %v", src, cex)
		}
	}
}

// TestRepairClosesTheMutationLoop: mutants of corpus programs that the
// baseline rejects are mostly repairable back to acceptance — the Table 2
// failure mode, undone.
func TestRepairClosesTheMutationLoop(t *testing.T) {
	repaired, rejected := 0, 0
	for _, name := range []string{"sampling", "marple_new_flow", "stateful_fw"} {
		b, err := programs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog := b.Parse()
		for _, m := range mutate.Generate(prog, 10, 42) {
			base, err := domino.Compile(m.Program, b.StatefulALU, b.ConstBits)
			if err != nil {
				t.Fatal(err)
			}
			if base.OK {
				continue
			}
			rejected++
			res, err := Repair(m.Program, b.StatefulALU, b.ConstBits, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Repaired {
				repaired++
			}
		}
	}
	if rejected == 0 {
		t.Fatal("expected some rejected mutants to exercise repair")
	}
	t.Logf("repaired %d of %d rejected mutants", repaired, rejected)
	if repaired*2 < rejected {
		t.Fatalf("repair rate too low: %d/%d", repaired, rejected)
	}
}

func TestSearchBudgets(t *testing.T) {
	prog := parser.MustParse("t", "pkt.a = pkt.a * pkt.b;")
	res, err := Repair(prog, alu.Counter, 5, Options{MaxDepth: 1, MaxExplored: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored > 5 {
		t.Fatalf("budget exceeded: %d", res.Explored)
	}
}

func TestEquivalenceSpaceTooLarge(t *testing.T) {
	// Seven variables at check width 8 exceed the exhaustive limit; the
	// program must first be rejected (multiply) so the search reaches the
	// equivalence gate, which must refuse rather than skip soundness.
	src := "pkt.a = pkt.b * pkt.c * pkt.d * pkt.e * pkt.f * s;"
	prog := parser.MustParse("t", src)
	if _, err := Repair(prog, alu.Counter, 5, Options{CheckWidth: 8}); err == nil {
		t.Fatal("oversized equivalence space should error, not silently pass")
	}
}
