// Package repair implements the paper's third future-work direction (§5.3,
// "Synthesizing Program Repairs"): automatically generating
// human-interpretable rewrite hints that fix a packet program the
// classical compiler rejects.
//
// The paper asks: "Is it possible to generate local rewrites to fit a
// problematic network program into a packet-processing pipeline?" This
// package answers for the Domino baseline: given a program the baseline's
// syntactic atom matcher rejects, it searches breadth-first over a
// database of small, semantics-preserving local rewrites — commuting
// operands back into template order, folding arithmetic identities,
// un-negating relational guards, flipping branches, converting between
// statement and expression conditionals — for a short rewrite sequence
// after which the baseline accepts the program. Every candidate is proven
// equivalent to the original by exhaustive simulation at a small bit width
// before it is reported, so a hint never changes the program's meaning
// (the paper's "semantic distance" is held at zero; lossy repairs are
// approx's territory).
//
// The rewrite database is intentionally the mirror image of
// internal/mutate's operators: what the mutation generator scrambles, the
// repairer unscrambles — closing the loop on the Table 2 experiment.
package repair

import (
	"fmt"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/domino"
	"repro/internal/interp"
	"repro/internal/word"
)

// Rewrite names one local rewrite applied by a repair.
type Rewrite string

// The rewrite database.
const (
	RwCommute      Rewrite = "commute"        // b+a -> a+b (put the state variable first)
	RwFoldIdentity Rewrite = "fold_identity"  // e+0, e*1, -(-e), ~~e -> e (whole-program)
	RwUnNegateRel  Rewrite = "unnegate_rel"   // !(a >= b) -> a < b
	RwFlipIf       Rewrite = "flip_if"        // if (!c) A else B -> if (c) B else A
	RwFlipTernary  Rewrite = "flip_ternary"   // !c ? t : f -> c ? f : t
	RwRelFlip      Rewrite = "rel_flip"       // b > a -> a < b
	RwTernaryToIf  Rewrite = "ternary_to_if"  // x = c ? e : x -> if (c) x = e
	RwAssocLeft    Rewrite = "assoc_left"     // a+(b+c) -> (a+b)+c
	RwAddNegToSub  Rewrite = "add_neg_to_sub" // a + (-b) -> a - b
)

// Step is one applied rewrite, with before/after renderings of the
// affected statement list for the human-readable hint.
type Step struct {
	Rewrite Rewrite
}

// Result reports a repair search.
type Result struct {
	// Repaired is true when a rewrite sequence was found after which the
	// baseline accepts the program.
	Repaired bool
	// Program is the repaired program (nil when not repaired).
	Program *ast.Program
	// Steps names the rewrites applied, in order — the hint shown to the
	// developer.
	Steps []Rewrite
	// Reason is the baseline's final rejection reason when not repaired.
	Reason string
	// Explored counts candidate programs visited.
	Explored int
	Elapsed  time.Duration
}

// Options bounds the search.
type Options struct {
	// MaxDepth bounds the rewrite-sequence length. 0 means 4.
	MaxDepth int
	// MaxExplored bounds total candidates. 0 means 2000.
	MaxExplored int
	// CheckWidth is the exhaustive-equivalence width. 0 means 3. The
	// program's total input bits at this width must stay enumerable.
	CheckWidth word.Width
}

func (o *Options) maxDepth() int {
	if o.MaxDepth == 0 {
		return 4
	}
	return o.MaxDepth
}

func (o *Options) maxExplored() int {
	if o.MaxExplored == 0 {
		return 2000
	}
	return o.MaxExplored
}

func (o *Options) checkWidth() word.Width {
	if o.CheckWidth == 0 {
		return 3
	}
	return o.CheckWidth
}

// Repair searches for rewrites that make the baseline accept prog with the
// given stateful ALU template.
func Repair(prog *ast.Program, kind alu.Kind, constBits int, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{}

	check, err := interp.New(opts.checkWidth())
	if err != nil {
		return nil, err
	}

	accepts := func(p *ast.Program) (bool, string, error) {
		r, err := domino.Compile(p, kind, constBits)
		if err != nil {
			return false, "", err
		}
		return r.OK, r.Reason, nil
	}

	ok, reason, err := accepts(prog)
	if err != nil {
		return nil, err
	}
	if ok {
		res.Repaired = true
		res.Program = prog
		res.Elapsed = time.Since(start)
		return res, nil
	}
	res.Reason = reason

	type node struct {
		prog  *ast.Program
		steps []Rewrite
	}
	queue := []node{{prog: prog}}
	seen := map[string]bool{prog.Print(): true}

	for len(queue) > 0 && res.Explored < opts.maxExplored() {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.steps) >= opts.maxDepth() {
			continue
		}
		for _, cand := range neighbors(cur.prog) {
			key := cand.prog.Print()
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Explored++

			// Soundness gate: a hint must preserve semantics.
			eq, _, err := check.Equivalent(prog, cand.prog)
			if err != nil {
				// Input space too large for exhaustive checking: treat
				// as an option error rather than silently trusting.
				return nil, fmt.Errorf("repair: equivalence check failed: %w", err)
			}
			if !eq {
				// A rewrite rule is broken; fail loudly — this is a bug,
				// not a search miss.
				return nil, fmt.Errorf("repair: rewrite %s changed semantics:\n%s", cand.rw, cand.prog.Print())
			}

			ok, reason, err := accepts(cand.prog)
			if err != nil {
				return nil, err
			}
			steps := append(append([]Rewrite{}, cur.steps...), cand.rw)
			if ok {
				res.Repaired = true
				res.Program = cand.prog
				res.Steps = steps
				res.Elapsed = time.Since(start)
				return res, nil
			}
			res.Reason = reason
			if res.Explored >= opts.maxExplored() {
				break
			}
			queue = append(queue, node{prog: cand.prog, steps: steps})
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

type candidate struct {
	prog *ast.Program
	rw   Rewrite
}

// neighbors enumerates every single-rewrite variant of p.
func neighbors(p *ast.Program) []candidate {
	var out []candidate

	// Whole-program identity folding (one candidate, often decisive).
	folded := domino.Simplify(p)
	if !ast.EqualStmts(folded.Stmts, p.Stmts) {
		out = append(out, candidate{prog: folded, rw: RwFoldIdentity})
	}

	// Expression-local rewrites.
	addExprRewrites(p, &out)

	// Statement-local rewrites.
	addStmtRewrites(p, &out)

	return out
}

// addExprRewrites enumerates expression-local rewrites: for each slot index
// and rule, clone the program, apply the rule at that slot, and keep the
// clone if the rule matched.
func addExprRewrites(p *ast.Program, out *[]candidate) {
	total := 0
	forEachExprSlot(p.Stmts, func(*ast.Expr) { total++ })

	try := func(idx int, rw Rewrite, fn func(slot *ast.Expr) bool) {
		q := p.Clone()
		i := 0
		applied := false
		forEachExprSlot(q.Stmts, func(slot *ast.Expr) {
			if i == idx {
				applied = fn(slot)
			}
			i++
		})
		if applied {
			*out = append(*out, candidate{prog: q, rw: rw})
		}
	}

	for idx := 0; idx < total; idx++ {
		try(idx, RwCommute, func(slot *ast.Expr) bool {
			b, ok := (*slot).(*ast.Binary)
			if !ok || !b.Op.IsCommutative() {
				return false
			}
			b.X, b.Y = b.Y, b.X
			return true
		})
		try(idx, RwRelFlip, func(slot *ast.Expr) bool {
			b, ok := (*slot).(*ast.Binary)
			if !ok {
				return false
			}
			flip, ok := relFlip[b.Op]
			if !ok {
				return false
			}
			b.Op = flip
			b.X, b.Y = b.Y, b.X
			return true
		})
		try(idx, RwUnNegateRel, func(slot *ast.Expr) bool {
			u, ok := (*slot).(*ast.Unary)
			if !ok || u.Op != ast.OpNot {
				return false
			}
			b, ok := u.X.(*ast.Binary)
			if !ok {
				return false
			}
			inv, ok := relInvert[b.Op]
			if !ok {
				return false
			}
			*slot = &ast.Binary{Op: inv, X: b.X, Y: b.Y}
			return true
		})
		try(idx, RwFlipTernary, func(slot *ast.Expr) bool {
			t, ok := (*slot).(*ast.Ternary)
			if !ok {
				return false
			}
			u, ok := t.Cond.(*ast.Unary)
			if !ok || u.Op != ast.OpNot {
				return false
			}
			*slot = &ast.Ternary{Cond: u.X, T: t.F, F: t.T}
			return true
		})
		try(idx, RwAssocLeft, func(slot *ast.Expr) bool {
			b, ok := (*slot).(*ast.Binary)
			if !ok || b.Op != ast.OpAdd {
				return false
			}
			inner, ok := b.Y.(*ast.Binary)
			if !ok || inner.Op != ast.OpAdd {
				return false
			}
			*slot = &ast.Binary{Op: ast.OpAdd,
				X: &ast.Binary{Op: ast.OpAdd, X: b.X, Y: inner.X}, Y: inner.Y}
			return true
		})
		try(idx, RwAddNegToSub, func(slot *ast.Expr) bool {
			b, ok := (*slot).(*ast.Binary)
			if !ok || b.Op != ast.OpAdd {
				return false
			}
			u, ok := b.Y.(*ast.Unary)
			if !ok || u.Op != ast.OpNeg {
				return false
			}
			*slot = &ast.Binary{Op: ast.OpSub, X: b.X, Y: u.X}
			return true
		})
	}
}

func addStmtRewrites(p *ast.Program, out *[]candidate) {
	// Count statements.
	total := 0
	forEachStmtSlot(p.Stmts, func([]ast.Stmt, int) { total++ })

	try := func(idx int, rw Rewrite, fn func(list []ast.Stmt, i int) bool) {
		q := p.Clone()
		i := 0
		applied := false
		forEachStmtSlot(q.Stmts, func(list []ast.Stmt, j int) {
			if i == idx {
				applied = fn(list, j)
			}
			i++
		})
		if applied {
			*out = append(*out, candidate{prog: q, rw: rw})
		}
	}

	for idx := 0; idx < total; idx++ {
		try(idx, RwFlipIf, func(list []ast.Stmt, i int) bool {
			ifs, ok := list[i].(*ast.If)
			if !ok {
				return false
			}
			u, ok := ifs.Cond.(*ast.Unary)
			if !ok || u.Op != ast.OpNot {
				return false
			}
			ifs.Cond = u.X
			ifs.Then, ifs.Else = ifs.Else, ifs.Then
			return true
		})
		try(idx, RwTernaryToIf, func(list []ast.Stmt, i int) bool {
			a, ok := list[i].(*ast.Assign)
			if !ok {
				return false
			}
			t, ok := a.RHS.(*ast.Ternary)
			if !ok {
				return false
			}
			// Only the guarded-update shape x = c ? e : x converts.
			if !ast.EqualExpr(t.F, a.LHS.Ref()) {
				return false
			}
			list[i] = &ast.If{Cond: t.Cond, Then: []ast.Stmt{
				&ast.Assign{LHS: a.LHS, RHS: t.T},
			}}
			return true
		})
	}
}

var relFlip = map[ast.Op]ast.Op{
	ast.OpLt: ast.OpGt, ast.OpLe: ast.OpGe, ast.OpGt: ast.OpLt, ast.OpGe: ast.OpLe,
}

var relInvert = map[ast.Op]ast.Op{
	ast.OpEq: ast.OpNe, ast.OpNe: ast.OpEq,
	ast.OpLt: ast.OpGe, ast.OpLe: ast.OpGt, ast.OpGt: ast.OpLe, ast.OpGe: ast.OpLt,
}

// forEachExprSlot mirrors mutate's traversal.
func forEachExprSlot(stmts []ast.Stmt, fn func(*ast.Expr)) {
	var walkExpr func(slot *ast.Expr)
	walkExpr = func(slot *ast.Expr) {
		fn(slot)
		switch e := (*slot).(type) {
		case *ast.Unary:
			walkExpr(&e.X)
		case *ast.Binary:
			walkExpr(&e.X)
			walkExpr(&e.Y)
		case *ast.Ternary:
			walkExpr(&e.Cond)
			walkExpr(&e.T)
			walkExpr(&e.F)
		}
	}
	var walkStmts func([]ast.Stmt)
	walkStmts = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Assign:
				walkExpr(&s.RHS)
			case *ast.If:
				walkExpr(&s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			}
		}
	}
	walkStmts(stmts)
}

func forEachStmtSlot(stmts []ast.Stmt, fn func(list []ast.Stmt, i int)) {
	for i, s := range stmts {
		fn(stmts, i)
		if ifs, ok := s.(*ast.If); ok {
			forEachStmtSlot(ifs.Then, fn)
			forEachStmtSlot(ifs.Else, fn)
		}
	}
}
