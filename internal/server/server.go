// Package server implements compilation-as-a-service: an HTTP job API over
// a bounded work queue and worker pool, fronting core.Compile with the
// content-addressed solution cache (internal/solcache).
//
// The API surface:
//
//	POST /compile            submit a compilation job (JSON CompileRequest).
//	                         Returns 202 with the job's status, or the final
//	                         status directly when "wait" is set. 400 on a
//	                         parse or validation error, 429 when the queue
//	                         is full, 503 while draining.
//	GET  /jobs/{id}          poll a job's status.
//	GET  /jobs/{id}/events   Server-Sent Events stream of the job's live
//	                         progress (phase transitions, CEGIS iterations,
//	                         portfolio member starts/cancels, SAT progress
//	                         milestones), ending with a "done" event that
//	                         carries the final status. Works for queued
//	                         jobs — events begin when the job starts.
//	GET  /healthz            liveness: 200 normally, 503 while draining,
//	                         with a JSON body (drain state, queue depth,
//	                         inflight count, uptime, job counters).
//	GET  /metrics            obs registry snapshot. JSON (expvar-style) by
//	                         default; Prometheus text format when the
//	                         Accept header asks for text/plain or
//	                         openmetrics.
//	GET  /metrics/prom       Prometheus text format unconditionally.
//
// Robustness properties: per-job timeouts, queue-full backpressure (429),
// context-propagated cancellation, and graceful drain — Shutdown lets
// in-flight jobs complete, rejects still-queued jobs, and leaves the
// listener to close cleanly.
//
// Observability: every job runs under its own obs.Tracer feeding both the
// SSE stream and a bounded flight recorder (internal/obs/flight); on
// timeout, failure, cancellation, or an infeasible verdict the recorder's
// tail is attached to the job status and, with Config.TraceDir set,
// dumped as JSONL into the job's trace directory. Jobs exceeding Config.SlowJobThreshold get a
// CPU profile for their remainder. Lifecycle events are logged through
// Config.Logger (log/slog) with job_id and fingerprint fields that join
// log lines, dumps, and streams on the same job.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/bpf"
	"repro/internal/cegis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/parser"
	"repro/internal/perfhist"
	"repro/internal/sat"
	"repro/internal/solcache"
	"repro/internal/word"
)

// Config configures a compile server.
type Config struct {
	// Workers is the worker-pool size. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs; a full
	// queue rejects submissions with 429. 0 means 64.
	QueueDepth int
	// JobTimeout bounds each compilation. 0 means 120s.
	JobTimeout time.Duration
	// MaxFinishedJobs caps how many finished jobs (done, error, or
	// rejected) remain pollable at /jobs/{id}; beyond it the oldest are
	// evicted so a long-running daemon's job table stays bounded. 0 means
	// 1024.
	MaxFinishedJobs int
	// JobParallelism caps the intra-job portfolio parallelism a request
	// may ask for (CompileRequest.Parallel). 0 or 1 means jobs always run
	// the classic sequential search. See Validate for the oversubscription
	// guard against Workers * JobParallelism.
	JobParallelism int
	// Cache, when non-nil, memoizes results across jobs.
	Cache *solcache.Cache
	// History, when non-nil, appends one performance-history record per
	// compiled job (internal/perfhist) — the daemon's contribution to the
	// compile-effort trajectory cmd/chipreport trends.
	History *perfhist.Store
	// Metrics receives queue/in-flight gauges and compilation counters.
	// Nil allocates a private registry.
	Metrics *obs.Registry
	// TraceDir, when set, gives each failed/timed-out job a directory
	// <TraceDir>/<jobID>/ holding its flight-recorder dump
	// (flight.jsonl) and, for slow jobs, a CPU profile (cpu.pprof).
	TraceDir string
	// SlowJobThreshold starts a CPU profile for the remainder of any job
	// still running after this long (requires TraceDir; at most one
	// profile at a time process-wide). 0 disables.
	SlowJobThreshold time.Duration
	// FlightCapacity bounds each job's flight-recorder ring (entries).
	// 0 means flight.DefaultCapacity.
	FlightCapacity int
	// Logger receives structured job-lifecycle logs carrying job_id and
	// fingerprint fields. Nil discards.
	Logger *slog.Logger
}

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c *Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c *Config) jobTimeout() time.Duration {
	if c.JobTimeout <= 0 {
		return 120 * time.Second
	}
	return c.JobTimeout
}

func (c *Config) maxFinishedJobs() int {
	if c.MaxFinishedJobs <= 0 {
		return 1024
	}
	return c.MaxFinishedJobs
}

func (c *Config) jobParallelism() int {
	if c.JobParallelism <= 1 {
		return 1
	}
	return c.JobParallelism
}

func (c *Config) logger() *slog.Logger {
	if c.Logger == nil {
		return slog.New(slog.DiscardHandler)
	}
	return c.Logger
}

// Validate rejects configurations whose worst case oversubscribes the
// machine: Workers jobs each racing JobParallelism portfolio members is
// fine up to 2x GOMAXPROCS (portfolio members are often blocked on
// staggers or cancel early), but beyond that the compile workers thrash
// each other's SAT solvers and every job slows down.
func (c *Config) Validate() error {
	cores := runtime.GOMAXPROCS(0)
	if load := c.workers() * c.jobParallelism(); load > 2*cores {
		return fmt.Errorf("server: %d workers x %d job parallelism = %d concurrent attempts oversubscribes %d cores by more than 2x; lower -workers or -job-parallelism", c.workers(), c.jobParallelism(), load, cores)
	}
	return nil
}

// CompileRequest is the JSON body of POST /compile. Source is required;
// everything else falls back to the quickstart defaults.
type CompileRequest struct {
	// Name labels the program in job status and traces.
	Name string `json:"name"`
	// Source is the Domino program text.
	Source string `json:"source"`
	// Target selects the compile backend: "pisa" (default) or "bpf".
	Target string `json:"target,omitempty"`
	// Width is the PHV width (containers / ALUs per stage). 0 means 2.
	Width int `json:"width,omitempty"`
	// MaxStages bounds iterative deepening. 0 means 4.
	MaxStages int `json:"max_stages,omitempty"`
	// ALU names the stateful ALU template (alu.KindByName). Empty means
	// if_else_raw.
	ALU string `json:"alu,omitempty"`
	// ConstBits is the immediate hole width. 0 means the ALU default.
	ConstBits int `json:"const_bits,omitempty"`
	// SynthWidth / VerifyWidth are the CEGIS tier widths (0 = defaults).
	SynthWidth  int `json:"synth_width,omitempty"`
	VerifyWidth int `json:"verify_width,omitempty"`
	// Seed drives CEGIS's random test inputs.
	Seed int64 `json:"seed,omitempty"`
	// Parallel asks for portfolio search with this many concurrent
	// attempts inside the job. The server clamps it to its per-job budget
	// (Config.JobParallelism); 0 or 1 runs the classic sequential search.
	Parallel int `json:"parallel,omitempty"`
	// SeedFanout is how many diversified CEGIS seeds race per stage depth
	// in portfolio mode (clamped to [1, 8]; ignored unless Parallel > 1).
	SeedFanout int `json:"seed_fanout,omitempty"`
	// Explain runs the infeasibility-forensics pass when the job's fresh
	// search concludes infeasible: the result then carries a structured
	// Explanation naming the binding resource dimension and the minimal
	// blamed constraint groups. Feasible and cached jobs are unaffected.
	Explain bool `json:"explain,omitempty"`
	// CEGISMode selects the refinement strategy: "cex" (default,
	// counterexample-guided) or "holes" (hole elimination). Rejected at
	// submission when it names no known mode.
	CEGISMode string `json:"cegis_mode,omitempty"`
	// RaceModes additionally races the other CEGIS strategy per depth in
	// portfolio mode (ignored unless Parallel > 1).
	RaceModes bool `json:"race_modes,omitempty"`
	// SymmetryBreak adds the grid's symmetry-breaking clauses to the
	// synthesis encoding (pisa target only; bpf ignores it).
	SymmetryBreak bool `json:"symmetry_break,omitempty"`
	// Wait blocks the HTTP request until the job finishes and returns the
	// final status instead of 202.
	Wait bool `json:"wait,omitempty"`
}

// CompileResult is the outcome portion of a finished job's status.
type CompileResult struct {
	Feasible bool `json:"feasible"`
	TimedOut bool `json:"timed_out"`
	// Cached reports a solution-cache hit (no CEGIS run).
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Target echoes the backend that compiled the job ("pisa", "bpf").
	Target string `json:"target,omitempty"`
	// Resource usage (Figure 5's axes) when feasible. For the bpf target
	// Stages is the slot count and the ALU axes are zero.
	Stages          int `json:"stages,omitempty"`
	MaxALUsPerStage int `json:"max_alus_per_stage,omitempty"`
	TotalALUs       int `json:"total_alus,omitempty"`
	// Config is the synthesized hardware configuration when feasible.
	Config json.RawMessage `json:"config,omitempty"`
	// Winner names the portfolio member that produced the solution
	// (e.g. "d2.s0.canon") and WastedConflicts totals the losing
	// members' solver work; both are zero-valued for sequential jobs.
	Winner          string `json:"winner,omitempty"`
	WastedConflicts int64  `json:"wasted_conflicts,omitempty"`
	// Mode is the CEGIS strategy that produced the verdict ("cex" or
	// "holes") — the winning member's mode under RaceModes.
	Mode string `json:"mode,omitempty"`
	// Explanation is the infeasibility-forensics report, present when the
	// request asked for Explain and the job concluded infeasible.
	Explanation *core.Explanation `json:"explanation,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateError    = "error"
	StateRejected = "rejected" // drained from the queue during shutdown
)

// JobStatus is the JSON representation of a job.
type JobStatus struct {
	ID       string         `json:"id"`
	State    string         `json:"state"`
	Program  string         `json:"program"`
	Queued   time.Time      `json:"queued"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *CompileResult `json:"result,omitempty"`
	// Fingerprint is the job's canonical-problem content address — the
	// correlation key shared by the daemon's log lines, flight dumps,
	// and solution-cache entries.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Flight is the truncated tail of the job's flight recorder,
	// attached when the job timed out, failed, or was cancelled, so a
	// postmortem no longer requires re-running with tracing enabled.
	Flight []flight.Entry `json:"flight,omitempty"`
	// FlightDump is the server-side path of the full JSONL dump (set
	// only when the server runs with a trace directory).
	FlightDump string `json:"flight_dump,omitempty"`
}

type job struct {
	id   string
	req  CompileRequest
	prog *ast.Program
	opts core.Options
	fp   string // canonical-problem fingerprint
	feed *feed  // live event fan-out; set when the job is admitted

	mu         sync.Mutex
	state      string
	queued     time.Time
	started    time.Time
	finished   time.Time
	err        string
	result     *CompileResult
	flight     []flight.Entry
	flightDump string
	done       chan struct{}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Program:     j.prog.Name,
		Queued:      j.queued,
		Error:       j.err,
		Result:      j.result,
		Fingerprint: j.fp,
		Flight:      j.flight,
		FlightDump:  j.flightDump,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Server is a compile service: an HTTP handler plus the worker pool behind
// it. Create with New, serve Handler(), stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *obs.Registry
	logger  *slog.Logger
	started time.Time
	mux     *http.ServeMux

	mu       sync.Mutex // guards queue sends vs. close, jobs, finished, draining
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first, capped by MaxFinishedJobs
	queue    chan *job
	draining bool
	nextID   int64

	workers sync.WaitGroup
	// baseCtx parents every job context; forceCancel aborts in-flight
	// jobs when a graceful drain runs out of time.
	baseCtx     context.Context
	forceCancel context.CancelFunc

	// compile is the job execution function; tests substitute stubs with
	// controllable latency.
	compile func(ctx context.Context, j *job) (*core.Report, error)

	now func() time.Time
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		metrics: cfg.Metrics,
		logger:  cfg.logger(),
		started: time.Now(),
		jobs:    map[string]*job{},
		queue:   make(chan *job, cfg.queueDepth()),
		now:     time.Now,
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.baseCtx, s.forceCancel = context.WithCancel(context.Background())
	s.compile = func(ctx context.Context, j *job) (*core.Report, error) {
		return core.Compile(ctx, j.prog, j.opts)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /compile", s.handleCompile)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics/prom", s.handleMetricsProm)

	for i := 0; i < cfg.workers(); i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry (queue depth, in-flight jobs, job
// counters, plus whatever the compilations record).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Shutdown drains the server: no new jobs are accepted, jobs still queued
// are rejected, and in-flight jobs run to completion. If ctx expires
// first, in-flight job contexts are cancelled (they finish quickly with
// TimedOut) and Shutdown returns ctx.Err after the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Reject everything still queued. Sends happen only under s.mu
		// with draining false, so draining and closing here cannot race
		// with a send.
	drain:
		for {
			select {
			case j := <-s.queue:
				s.finishRejected(j)
				s.retireLocked(j.id)
			default:
				break drain
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceCancel()
		<-done
		return ctx.Err()
	}
}

func (s *Server) finishRejected(j *job) {
	j.mu.Lock()
	j.state = StateRejected
	j.err = "server shutting down before the job started"
	j.finished = s.now()
	j.mu.Unlock()
	close(j.done)
	j.feed.close(j.status())
	s.metrics.Counter("server.jobs.rejected").Add(1)
	s.logger.Warn("job rejected during drain", "job_id", j.id, "program", j.prog.Name)
}

// retireLocked enrolls a finished job in the eviction FIFO and evicts the
// oldest finished jobs beyond the retention cap, keeping the job table
// bounded on a long-running daemon. s.mu must be held.
func (s *Server) retireLocked(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.maxFinishedJobs() {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retireLocked(id)
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.metrics.Gauge("server.queue.depth").Set(int64(len(s.queue)))
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			// Pulled after drain began (racing the drain loop): still a
			// queued job, so reject rather than start it.
			s.finishRejected(j)
			s.retire(j.id)
			continue
		}
		s.run(j)
	}
}

func (s *Server) run(j *job) {
	s.metrics.Gauge("server.inflight").Add(1)
	defer s.metrics.Gauge("server.inflight").Add(-1)

	j.mu.Lock()
	j.state = StateRunning
	j.started = s.now()
	waited := j.started.Sub(j.queued)
	j.mu.Unlock()
	s.metrics.Histogram("server.queue_wait_ms").Observe(waited.Milliseconds())
	j.feed.publish("state", StateRunning, 0, s.now().UnixNano(), nil)
	s.logger.Info("job started", "job_id", j.id, "program", j.prog.Name,
		"fingerprint", shortFP(j.fp), "queue_wait_ms", durMS(waited))

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.jobTimeout())
	defer cancel()
	ctx = obs.ContextWithMetrics(ctx, s.metrics)

	// Every job gets its own tracer: the flight recorder keeps a bounded
	// tail for postmortems, and the SSE feed relays each record live.
	tracer := obs.NewTracer()
	ctx = obs.ContextWithTracer(ctx, tracer)
	rec := flight.New(s.cfg.FlightCapacity)
	rec.Attach(tracer)
	defer rec.Close()
	feedSub := tracer.Subscribe(j.feed.publishRecord, false)
	defer feedSub.Close()
	j.opts.Progress = func(phase string, st sat.Stats) {
		attrs := map[string]any{"phase": phase, "conflicts": st.Conflicts,
			"decisions": st.Decisions, "restarts": st.Restarts}
		rec.Note("sat.progress", attrs)
		j.feed.publish("note", "sat.progress", 0, time.Now().UnixNano(), attrs)
	}

	stopSlowWatch := s.startSlowJobWatch(j)
	rep, err := s.compile(ctx, j)
	stopSlowWatch()

	rec.Close()
	if err != nil || rep.TimedOut || !rep.Feasible {
		s.dumpFlight(j, rec)
	}

	j.mu.Lock()
	j.finished = s.now()
	elapsed := j.finished.Sub(j.started)
	if err != nil {
		j.state = StateError
		j.err = err.Error()
		s.metrics.Counter("server.jobs.failed").Add(1)
	} else {
		j.state = StateDone
		res := &CompileResult{
			Feasible:        rep.Feasible,
			TimedOut:        rep.TimedOut,
			Cached:          rep.Cached,
			ElapsedMS:       float64(rep.Elapsed.Microseconds()) / 1000,
			Target:          rep.Target,
			Winner:          rep.Winner,
			Mode:            rep.Mode,
			WastedConflicts: rep.WastedConflicts,
			Explanation:     rep.Explanation,
		}
		if rep.Explanation != nil {
			s.metrics.Counter("server.jobs.explained").Add(1)
		}
		if rep.Feasible {
			res.Stages = rep.Usage.Stages
			res.MaxALUsPerStage = rep.Usage.MaxALUsPerStage
			res.TotalALUs = rep.Usage.TotalALUs
			if bc, ok := rep.Artifact.(*bpf.Config); ok {
				res.Stages = bc.Spec.Slots
			}
			if cfg, merr := json.Marshal(rep.Artifact); merr == nil {
				res.Config = cfg
			}
		}
		j.result = res
		s.metrics.Counter("server.jobs.completed").Add(1)
	}
	j.mu.Unlock()
	s.metrics.Histogram("server.job_runtime_ms").Observe(elapsed.Milliseconds())
	close(j.done)
	j.feed.close(j.status())
	s.logJobFinished(j, rep, err, elapsed)
	s.retire(j.id)
}

// logJobFinished emits the job's terminal log line, correlated by job_id
// and fingerprint with the flight dump and SSE stream.
func (s *Server) logJobFinished(j *job, rep *core.Report, err error, elapsed time.Duration) {
	attrs := []any{"job_id", j.id, "program", j.prog.Name,
		"fingerprint", shortFP(j.fp), "elapsed_ms", durMS(elapsed)}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
		s.logger.Error("job failed", attrs...)
		return
	}
	attrs = append(attrs, "feasible", rep.Feasible, "cached", rep.Cached)
	if rep.Winner != "" {
		attrs = append(attrs, "winner", rep.Winner, "wasted_conflicts", rep.WastedConflicts)
	}
	if rep.Explanation != nil {
		attrs = append(attrs, "binding_dimension", rep.Explanation.Dimension,
			"blamed_groups", len(rep.Explanation.BlamedGroups))
	}
	if rep.TimedOut {
		s.logger.Warn("job timed out", attrs...)
		return
	}
	s.logger.Info("job finished", attrs...)
}

// dumpFlight preserves the flight recorder's tail after a timeout,
// failure, or cancellation: a truncated summary is attached to the job
// status, and with a trace directory configured the full tail is dumped
// as JSONL next to any CPU profile.
func (s *Server) dumpFlight(j *job, rec *flight.Recorder) {
	tail := rec.Tail()
	if len(tail) == 0 {
		return
	}
	// statusFlightTail bounds the summary attached to the job result so
	// status responses stay small; the JSONL dump holds the full ring.
	const statusFlightTail = 20
	sum := tail
	if len(sum) > statusFlightTail {
		sum = sum[len(sum)-statusFlightTail:]
	}
	j.mu.Lock()
	j.flight = append([]flight.Entry(nil), sum...)
	j.mu.Unlock()
	if s.cfg.TraceDir == "" {
		return
	}
	dir := filepath.Join(s.cfg.TraceDir, j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.logger.Error("flight dump failed", "job_id", j.id, "error", err.Error())
		return
	}
	path := filepath.Join(dir, "flight.jsonl")
	f, err := os.Create(path)
	if err != nil {
		s.logger.Error("flight dump failed", "job_id", j.id, "error", err.Error())
		return
	}
	werr := rec.WriteJSONL(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		s.logger.Error("flight dump failed", "job_id", j.id, "error", werr.Error())
		return
	}
	j.mu.Lock()
	j.flightDump = path
	j.mu.Unlock()
	s.logger.Warn("flight recorder dumped", "job_id", j.id,
		"fingerprint", shortFP(j.fp), "path", path,
		"entries", len(tail), "dropped", rec.Dropped())
}

// cpuProfileActive guards runtime/pprof's process-wide CPU profiler:
// when several jobs cross the slow threshold at once, only the first
// gets a profile.
var cpuProfileActive atomic.Bool

// startSlowJobWatch arms the slow-job profiler: if the job is still
// running after Config.SlowJobThreshold, a CPU profile of the job's
// remainder is captured into its trace directory. The returned stop
// function must be called when the job finishes.
func (s *Server) startSlowJobWatch(j *job) (stop func()) {
	if s.cfg.TraceDir == "" || s.cfg.SlowJobThreshold <= 0 {
		return func() {}
	}
	var (
		mu       sync.Mutex
		jobDone  bool
		profFile *os.File
	)
	timer := time.AfterFunc(s.cfg.SlowJobThreshold, func() {
		mu.Lock()
		defer mu.Unlock()
		if jobDone || !cpuProfileActive.CompareAndSwap(false, true) {
			return
		}
		dir := filepath.Join(s.cfg.TraceDir, j.id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			cpuProfileActive.Store(false)
			return
		}
		f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
		if err != nil {
			cpuProfileActive.Store(false)
			return
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			cpuProfileActive.Store(false)
			return
		}
		profFile = f
		s.logger.Warn("slow job: capturing CPU profile",
			"job_id", j.id, "fingerprint", shortFP(j.fp),
			"threshold", s.cfg.SlowJobThreshold.String(), "path", f.Name())
	})
	return func() {
		timer.Stop()
		// If the timer callback is mid-flight, the lock makes us wait for
		// it, so a started profile is always stopped exactly once.
		mu.Lock()
		defer mu.Unlock()
		jobDone = true
		if profFile != nil {
			pprof.StopCPUProfile()
			profFile.Close()
			profFile = nil
			cpuProfileActive.Store(false)
		}
	}
}

// shortFP abbreviates a fingerprint for log lines; dumps and cache
// entries keep the full hash.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// --- HTTP handlers -----------------------------------------------------------

// maxRequestBody bounds POST /compile bodies (a Domino program is tiny).
const maxRequestBody = 1 << 20

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	j, err := s.newJob(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	// The feed must exist before the job is visible to a worker, so a
	// subscriber attaching to a queued job never races its start.
	j.feed = newFeed(j.id)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.Counter("server.jobs.throttled").Add(1)
		s.logger.Warn("job throttled: queue full", "program", j.prog.Name, "queue_depth", cap(s.queue))
		httpError(w, http.StatusTooManyRequests, "compile queue full (%d jobs)", cap(s.queue))
		return
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	j.feed.publish("state", StateQueued, 0, s.now().UnixNano(), nil)
	s.metrics.Counter("server.jobs.accepted").Add(1)
	s.metrics.Gauge("server.queue.depth").Set(int64(len(s.queue)))
	s.logger.Info("job accepted", "job_id", j.id, "program", j.prog.Name,
		"fingerprint", shortFP(j.fp), "parallel", j.opts.Parallelism)

	if req.Wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client went away; the job keeps running and remains
			// pollable at /jobs/{id}.
		}
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) newJob(req CompileRequest) (*job, error) {
	if req.Source == "" {
		return nil, fmt.Errorf("missing program source")
	}
	name := req.Name
	if name == "" {
		name = "anonymous"
	}
	prog, err := parser.Parse(name, req.Source)
	if err != nil {
		return nil, fmt.Errorf("parsing program: %w", err)
	}
	kindName := req.ALU
	if kindName == "" {
		kindName = "if_else_raw"
	}
	kind, err := alu.KindByName(kindName)
	if err != nil {
		return nil, err
	}
	if _, err := cegis.ParseMode(req.CEGISMode); err != nil {
		return nil, err
	}
	switch req.Target {
	case "", "pisa", "bpf":
	default:
		return nil, fmt.Errorf("unknown target %q (want pisa or bpf)", req.Target)
	}
	width := req.Width
	if width <= 0 {
		width = 2
	}
	// Clamp the requested portfolio parallelism to the server's per-job
	// budget rather than rejecting: callers tuned for a bigger machine
	// still compile, just with less intra-job racing.
	parallel := req.Parallel
	if cap := s.cfg.jobParallelism(); parallel > cap {
		parallel = cap
	}
	fanout := req.SeedFanout
	if fanout > 8 {
		fanout = 8
	}
	j := &job{
		req:  req,
		prog: prog,
		opts: core.Options{
			Target:        req.Target,
			Width:         width,
			MaxStages:     req.MaxStages,
			StatelessALU:  alu.Stateless{ConstBits: req.ConstBits},
			StatefulALU:   alu.Stateful{Kind: kind, ConstBits: req.ConstBits},
			SynthWidth:    word.Width(req.SynthWidth),
			VerifyWidth:   word.Width(req.VerifyWidth),
			Seed:          req.Seed,
			Explain:       req.Explain,
			CEGISMode:     req.CEGISMode,
			RaceModes:     req.RaceModes,
			SymmetryBreak: req.SymmetryBreak,
			Parallelism:   parallel,
			SeedFanout:    fanout,
			Cache:         s.cfg.Cache,
			History:       s.cfg.History,
		},
		state:  StateQueued,
		queued: s.now(),
		done:   make(chan struct{}),
	}
	j.fp = core.Fingerprint(prog, j.opts)
	return j, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// LatencySummary is the percentile digest of one server-side latency
// histogram (estimates from power-of-two buckets, see
// obs.Histogram.Quantiles).
type LatencySummary struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS int64   `json:"max_ms"`
}

func summarize(h *obs.Histogram) LatencySummary {
	snap := h.Snapshot()
	qs := h.Quantiles(0.5, 0.95, 0.99)
	return LatencySummary{Count: snap.Count, P50MS: qs[0], P95MS: qs[1], P99MS: qs[2], MaxMS: snap.Max}
}

// Health is the JSON body of GET /healthz: the same drain/load signal
// for load balancers (via the status code) and humans (via the fields).
type Health struct {
	Status        string  `json:"status"` // "ok" or "draining"
	Draining      bool    `json:"draining"`
	QueueDepth    int     `json:"queue_depth"`
	Inflight      int64   `json:"inflight"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	JobsAccepted  int64   `json:"jobs_accepted"`
	JobsCompleted int64   `json:"jobs_completed"`
	JobsFailed    int64   `json:"jobs_failed"`
	// QueueWait and JobRuntime digest the queue-wait and job-runtime
	// distributions since process start.
	QueueWait  LatencySummary `json:"queue_wait"`
	JobRuntime LatencySummary `json:"job_runtime"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{
		Status:        "ok",
		Draining:      draining,
		QueueDepth:    len(s.queue),
		Inflight:      s.metrics.Gauge("server.inflight").Value(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		JobsAccepted:  s.metrics.Counter("server.jobs.accepted").Value(),
		JobsCompleted: s.metrics.Counter("server.jobs.completed").Value(),
		JobsFailed:    s.metrics.Counter("server.jobs.failed").Value(),
		QueueWait:     summarize(s.metrics.Histogram("server.queue_wait_ms")),
		JobRuntime:    summarize(s.metrics.Histogram("server.job_runtime_ms")),
	}
	code := http.StatusOK
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Gauge("server.queue.depth").Set(int64(len(s.queue)))
	s.cfg.Cache.Publish(s.metrics)
	// Content-negotiate: Prometheus scrapers ask for text/plain (or
	// OpenMetrics); everything else keeps the expvar-style JSON snapshot.
	if accept := r.Header.Get("Accept"); strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics") {
		s.writeProm(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	s.metrics.Gauge("server.queue.depth").Set(int64(len(s.queue)))
	s.cfg.Cache.Publish(s.metrics)
	s.writeProm(w)
}

func (s *Server) writeProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
