// Package server implements compilation-as-a-service: an HTTP job API over
// a bounded work queue and worker pool, fronting core.Compile with the
// content-addressed solution cache (internal/solcache).
//
// The API surface:
//
//	POST /compile     submit a compilation job (JSON CompileRequest).
//	                  Returns 202 with the job's status, or the final
//	                  status directly when "wait" is set. 400 on a parse
//	                  or validation error, 429 when the queue is full,
//	                  503 while draining.
//	GET  /jobs/{id}   poll a job's status.
//	GET  /healthz     liveness: 200 normally, 503 while draining.
//	GET  /metrics     expvar-style JSON snapshot of the obs registry
//	                  (queue depth, in-flight jobs, cache hit/miss, SAT
//	                  counters from compilations, and — for portfolio
//	                  jobs — the portfolio.inflight gauge of attempts
//	                  currently racing plus wasted-work counters).
//
// Robustness properties: per-job timeouts, queue-full backpressure (429),
// context-propagated cancellation, and graceful drain — Shutdown lets
// in-flight jobs complete, rejects still-queued jobs, and leaves the
// listener to close cleanly.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/solcache"
	"repro/internal/word"
)

// Config configures a compile server.
type Config struct {
	// Workers is the worker-pool size. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs; a full
	// queue rejects submissions with 429. 0 means 64.
	QueueDepth int
	// JobTimeout bounds each compilation. 0 means 120s.
	JobTimeout time.Duration
	// MaxFinishedJobs caps how many finished jobs (done, error, or
	// rejected) remain pollable at /jobs/{id}; beyond it the oldest are
	// evicted so a long-running daemon's job table stays bounded. 0 means
	// 1024.
	MaxFinishedJobs int
	// JobParallelism caps the intra-job portfolio parallelism a request
	// may ask for (CompileRequest.Parallel). 0 or 1 means jobs always run
	// the classic sequential search. See Validate for the oversubscription
	// guard against Workers * JobParallelism.
	JobParallelism int
	// Cache, when non-nil, memoizes results across jobs.
	Cache *solcache.Cache
	// Metrics receives queue/in-flight gauges and compilation counters.
	// Nil allocates a private registry.
	Metrics *obs.Registry
}

func (c *Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c *Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c *Config) jobTimeout() time.Duration {
	if c.JobTimeout <= 0 {
		return 120 * time.Second
	}
	return c.JobTimeout
}

func (c *Config) maxFinishedJobs() int {
	if c.MaxFinishedJobs <= 0 {
		return 1024
	}
	return c.MaxFinishedJobs
}

func (c *Config) jobParallelism() int {
	if c.JobParallelism <= 1 {
		return 1
	}
	return c.JobParallelism
}

// Validate rejects configurations whose worst case oversubscribes the
// machine: Workers jobs each racing JobParallelism portfolio members is
// fine up to 2x GOMAXPROCS (portfolio members are often blocked on
// staggers or cancel early), but beyond that the compile workers thrash
// each other's SAT solvers and every job slows down.
func (c *Config) Validate() error {
	cores := runtime.GOMAXPROCS(0)
	if load := c.workers() * c.jobParallelism(); load > 2*cores {
		return fmt.Errorf("server: %d workers x %d job parallelism = %d concurrent attempts oversubscribes %d cores by more than 2x; lower -workers or -job-parallelism", c.workers(), c.jobParallelism(), load, cores)
	}
	return nil
}

// CompileRequest is the JSON body of POST /compile. Source is required;
// everything else falls back to the quickstart defaults.
type CompileRequest struct {
	// Name labels the program in job status and traces.
	Name string `json:"name"`
	// Source is the Domino program text.
	Source string `json:"source"`
	// Width is the PHV width (containers / ALUs per stage). 0 means 2.
	Width int `json:"width,omitempty"`
	// MaxStages bounds iterative deepening. 0 means 4.
	MaxStages int `json:"max_stages,omitempty"`
	// ALU names the stateful ALU template (alu.KindByName). Empty means
	// if_else_raw.
	ALU string `json:"alu,omitempty"`
	// ConstBits is the immediate hole width. 0 means the ALU default.
	ConstBits int `json:"const_bits,omitempty"`
	// SynthWidth / VerifyWidth are the CEGIS tier widths (0 = defaults).
	SynthWidth  int `json:"synth_width,omitempty"`
	VerifyWidth int `json:"verify_width,omitempty"`
	// Seed drives CEGIS's random test inputs.
	Seed int64 `json:"seed,omitempty"`
	// Parallel asks for portfolio search with this many concurrent
	// attempts inside the job. The server clamps it to its per-job budget
	// (Config.JobParallelism); 0 or 1 runs the classic sequential search.
	Parallel int `json:"parallel,omitempty"`
	// SeedFanout is how many diversified CEGIS seeds race per stage depth
	// in portfolio mode (clamped to [1, 8]; ignored unless Parallel > 1).
	SeedFanout int `json:"seed_fanout,omitempty"`
	// Wait blocks the HTTP request until the job finishes and returns the
	// final status instead of 202.
	Wait bool `json:"wait,omitempty"`
}

// CompileResult is the outcome portion of a finished job's status.
type CompileResult struct {
	Feasible bool `json:"feasible"`
	TimedOut bool `json:"timed_out"`
	// Cached reports a solution-cache hit (no CEGIS run).
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Resource usage (Figure 5's axes) when feasible.
	Stages          int `json:"stages,omitempty"`
	MaxALUsPerStage int `json:"max_alus_per_stage,omitempty"`
	TotalALUs       int `json:"total_alus,omitempty"`
	// Config is the synthesized hardware configuration when feasible.
	Config json.RawMessage `json:"config,omitempty"`
	// Winner names the portfolio member that produced the solution
	// (e.g. "d2.s0.canon") and WastedConflicts totals the losing
	// members' solver work; both are zero-valued for sequential jobs.
	Winner          string `json:"winner,omitempty"`
	WastedConflicts int64  `json:"wasted_conflicts,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateError    = "error"
	StateRejected = "rejected" // drained from the queue during shutdown
)

// JobStatus is the JSON representation of a job.
type JobStatus struct {
	ID       string         `json:"id"`
	State    string         `json:"state"`
	Program  string         `json:"program"`
	Queued   time.Time      `json:"queued"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *CompileResult `json:"result,omitempty"`
}

type job struct {
	id   string
	req  CompileRequest
	prog *ast.Program
	opts core.Options

	mu       sync.Mutex
	state    string
	queued   time.Time
	started  time.Time
	finished time.Time
	err      string
	result   *CompileResult
	done     chan struct{}
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.id,
		State:   j.state,
		Program: j.prog.Name,
		Queued:  j.queued,
		Error:   j.err,
		Result:  j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Server is a compile service: an HTTP handler plus the worker pool behind
// it. Create with New, serve Handler(), stop with Shutdown.
type Server struct {
	cfg     Config
	metrics *obs.Registry
	mux     *http.ServeMux

	mu       sync.Mutex // guards queue sends vs. close, jobs, finished, draining
	jobs     map[string]*job
	finished []string // finished job IDs, oldest first, capped by MaxFinishedJobs
	queue    chan *job
	draining bool
	nextID   int64

	workers sync.WaitGroup
	// baseCtx parents every job context; forceCancel aborts in-flight
	// jobs when a graceful drain runs out of time.
	baseCtx     context.Context
	forceCancel context.CancelFunc

	// compile is the job execution function; tests substitute stubs with
	// controllable latency.
	compile func(ctx context.Context, j *job) (*core.Report, error)

	now func() time.Time
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		metrics: cfg.Metrics,
		jobs:    map[string]*job{},
		queue:   make(chan *job, cfg.queueDepth()),
		now:     time.Now,
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.baseCtx, s.forceCancel = context.WithCancel(context.Background())
	s.compile = func(ctx context.Context, j *job) (*core.Report, error) {
		return core.Compile(ctx, j.prog, j.opts)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /compile", s.handleCompile)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	for i := 0; i < cfg.workers(); i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's registry (queue depth, in-flight jobs, job
// counters, plus whatever the compilations record).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Shutdown drains the server: no new jobs are accepted, jobs still queued
// are rejected, and in-flight jobs run to completion. If ctx expires
// first, in-flight job contexts are cancelled (they finish quickly with
// TimedOut) and Shutdown returns ctx.Err after the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// Reject everything still queued. Sends happen only under s.mu
		// with draining false, so draining and closing here cannot race
		// with a send.
	drain:
		for {
			select {
			case j := <-s.queue:
				s.finishRejected(j)
				s.retireLocked(j.id)
			default:
				break drain
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceCancel()
		<-done
		return ctx.Err()
	}
}

func (s *Server) finishRejected(j *job) {
	j.mu.Lock()
	j.state = StateRejected
	j.err = "server shutting down before the job started"
	j.finished = s.now()
	j.mu.Unlock()
	close(j.done)
	s.metrics.Counter("server.jobs.rejected").Add(1)
}

// retireLocked enrolls a finished job in the eviction FIFO and evicts the
// oldest finished jobs beyond the retention cap, keeping the job table
// bounded on a long-running daemon. s.mu must be held.
func (s *Server) retireLocked(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.maxFinishedJobs() {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

func (s *Server) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retireLocked(id)
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.metrics.Gauge("server.queue.depth").Set(int64(len(s.queue)))
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			// Pulled after drain began (racing the drain loop): still a
			// queued job, so reject rather than start it.
			s.finishRejected(j)
			s.retire(j.id)
			continue
		}
		s.run(j)
	}
}

func (s *Server) run(j *job) {
	s.metrics.Gauge("server.inflight").Add(1)
	defer s.metrics.Gauge("server.inflight").Add(-1)

	j.mu.Lock()
	j.state = StateRunning
	j.started = s.now()
	j.mu.Unlock()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.jobTimeout())
	defer cancel()
	ctx = obs.ContextWithMetrics(ctx, s.metrics)

	rep, err := s.compile(ctx, j)

	j.mu.Lock()
	j.finished = s.now()
	if err != nil {
		j.state = StateError
		j.err = err.Error()
		s.metrics.Counter("server.jobs.failed").Add(1)
	} else {
		j.state = StateDone
		res := &CompileResult{
			Feasible:        rep.Feasible,
			TimedOut:        rep.TimedOut,
			Cached:          rep.Cached,
			ElapsedMS:       float64(rep.Elapsed.Microseconds()) / 1000,
			Winner:          rep.Winner,
			WastedConflicts: rep.WastedConflicts,
		}
		if rep.Feasible {
			res.Stages = rep.Usage.Stages
			res.MaxALUsPerStage = rep.Usage.MaxALUsPerStage
			res.TotalALUs = rep.Usage.TotalALUs
			if cfg, merr := json.Marshal(rep.Config); merr == nil {
				res.Config = cfg
			}
		}
		j.result = res
		s.metrics.Counter("server.jobs.completed").Add(1)
	}
	j.mu.Unlock()
	close(j.done)
	s.retire(j.id)
}

// --- HTTP handlers -----------------------------------------------------------

// maxRequestBody bounds POST /compile bodies (a Domino program is tiny).
const maxRequestBody = 1 << 20

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	j, err := s.newJob(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	s.nextID++
	j.id = fmt.Sprintf("j%06d", s.nextID)
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.Counter("server.jobs.throttled").Add(1)
		httpError(w, http.StatusTooManyRequests, "compile queue full (%d jobs)", cap(s.queue))
		return
	}
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.metrics.Counter("server.jobs.accepted").Add(1)
	s.metrics.Gauge("server.queue.depth").Set(int64(len(s.queue)))

	if req.Wait {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client went away; the job keeps running and remains
			// pollable at /jobs/{id}.
		}
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) newJob(req CompileRequest) (*job, error) {
	if req.Source == "" {
		return nil, fmt.Errorf("missing program source")
	}
	name := req.Name
	if name == "" {
		name = "anonymous"
	}
	prog, err := parser.Parse(name, req.Source)
	if err != nil {
		return nil, fmt.Errorf("parsing program: %w", err)
	}
	kindName := req.ALU
	if kindName == "" {
		kindName = "if_else_raw"
	}
	kind, err := alu.KindByName(kindName)
	if err != nil {
		return nil, err
	}
	width := req.Width
	if width <= 0 {
		width = 2
	}
	// Clamp the requested portfolio parallelism to the server's per-job
	// budget rather than rejecting: callers tuned for a bigger machine
	// still compile, just with less intra-job racing.
	parallel := req.Parallel
	if cap := s.cfg.jobParallelism(); parallel > cap {
		parallel = cap
	}
	fanout := req.SeedFanout
	if fanout > 8 {
		fanout = 8
	}
	return &job{
		req:  req,
		prog: prog,
		opts: core.Options{
			Width:        width,
			MaxStages:    req.MaxStages,
			StatelessALU: alu.Stateless{ConstBits: req.ConstBits},
			StatefulALU:  alu.Stateful{Kind: kind, ConstBits: req.ConstBits},
			SynthWidth:   word.Width(req.SynthWidth),
			VerifyWidth:  word.Width(req.VerifyWidth),
			Seed:         req.Seed,
			Parallelism:  parallel,
			SeedFanout:   fanout,
			Cache:        s.cfg.Cache,
		},
		state:  StateQueued,
		queued: s.now(),
		done:   make(chan struct{}),
	}, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.metrics.Gauge("server.queue.depth").Set(int64(len(s.queue)))
	s.cfg.Cache.Publish(s.metrics)
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
