package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a thin HTTP client for a chipmunkd daemon — the `chipmunk
// -remote` transport. The zero value is not usable; construct with
// NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a daemon at base (e.g. "http://localhost:8926"). The
// default http.Client is used; compile requests rely on the server-side
// job timeout, so no client timeout is imposed beyond the context's.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient}
}

// Compile submits a job and blocks until it finishes (Wait is forced on),
// returning the final status. A job that the daemon rejects or fails is
// still a successful round trip: inspect JobStatus.State.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*JobStatus, error) {
	req.Wait = true
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/compile", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.roundTrip(hreq)
}

// Submit enqueues a job without waiting for it (Wait is forced off) and
// returns its queued status; follow up with Job polling or Watch.
func (c *Client) Submit(ctx context.Context, req CompileRequest) (*JobStatus, error) {
	req.Wait = false
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/compile", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.roundTrip(hreq)
}

// Watch streams a job's live events (GET /jobs/{id}/events, Server-Sent
// Events), invoking fn — which may be nil — for every event as it
// arrives, and returns the job's final status from the stream's terminal
// "done" event. If the stream ends without one (daemon restart, proxy
// timeout), the final status is fetched by polling instead, so Watch
// always returns the job's terminal state unless ctx expires first.
func (c *Client) Watch(ctx context.Context, id string, fn func(JobEvent)) (*JobStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("daemon: %s (%s)", e.Error, resp.Status)
		}
		return nil, fmt.Errorf("daemon: %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		data, ok := strings.CutPrefix(line, "data:")
		if !ok {
			continue // event:/id:/retry: fields and blank separators
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(strings.TrimSpace(data)), &ev); err != nil {
			return nil, fmt.Errorf("decoding event: %w", err)
		}
		if fn != nil {
			fn(ev)
		}
		if ev.Type == "done" && ev.Status != nil {
			return ev.Status, nil
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	// Stream ended without a terminal event; fall back to polling.
	return c.Job(ctx, id)
}

// Job polls a job's status by ID.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.roundTrip(hreq)
}

// Health checks the daemon's /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon unhealthy: %s", resp.Status)
	}
	return nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) roundTrip(hreq *http.Request) (*JobStatus, error) {
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	default:
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("daemon: %s (%s)", e.Error, resp.Status)
		}
		return nil, fmt.Errorf("daemon: %s", resp.Status)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("decoding job status: %w", err)
	}
	return &st, nil
}
