package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a thin HTTP client for a chipmunkd daemon — the `chipmunk
// -remote` transport. The zero value is not usable; construct with
// NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a daemon at base (e.g. "http://localhost:8926"). The
// default http.Client is used; compile requests rely on the server-side
// job timeout, so no client timeout is imposed beyond the context's.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient}
}

// Compile submits a job and blocks until it finishes (Wait is forced on),
// returning the final status. A job that the daemon rejects or fails is
// still a successful round trip: inspect JobStatus.State.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*JobStatus, error) {
	req.Wait = true
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/compile", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.roundTrip(hreq)
}

// Job polls a job's status by ID.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	return c.roundTrip(hreq)
}

// Health checks the daemon's /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon unhealthy: %s", resp.Status)
	}
	return nil
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: %s", resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) roundTrip(hreq *http.Request) (*JobStatus, error) {
	resp, err := c.http.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	default:
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("daemon: %s (%s)", e.Error, resp.Status)
		}
		return nil, fmt.Errorf("daemon: %s", resp.Status)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("decoding job status: %w", err)
	}
	return &st, nil
}
