package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// JobEvent is one frame of a job's live event stream (GET
// /jobs/{id}/events, Server-Sent Events). Span events mirror the job's
// tracer records — phase transitions (compile/attempt/portfolio spans),
// CEGIS iterations (cegis.iter span ends carry outcome and iteration
// attrs), portfolio member starts and cancels — and note events carry
// in-solve SAT progress milestones. The terminal "done" event carries
// the job's final status (which reports cache hit/miss and the portfolio
// winner) and closes the stream.
type JobEvent struct {
	JobID string `json:"job_id"`
	// Seq numbers events per job; a gap after Dropped>0 shows where a
	// slow consumer's queue shed load.
	Seq  uint64 `json:"seq"`
	Type string `json:"type"` // "state", "span_start", "span_end", "note", "done"
	// Name is the state ("queued", "running"), span, or note name.
	Name   string         `json:"name,omitempty"`
	Span   int64          `json:"span,omitempty"`
	TimeNS int64          `json:"t,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
	// Dropped counts events this subscriber lost to drop-oldest
	// backpressure before this one was delivered.
	Dropped uint64     `json:"dropped,omitempty"`
	Status  *JobStatus `json:"status,omitempty"`
}

// subQueueDepth bounds each SSE subscriber's event queue; a consumer
// that cannot keep up loses the oldest undelivered events rather than
// stalling the compile or growing without bound.
const subQueueDepth = 256

// feed fans one job's events out to any number of subscribers. It exists
// for the job's whole life (subscribing to a still-queued job works —
// events start flowing when the job does) and is closed exactly once
// with the job's final status.
type feed struct {
	jobID string

	mu    sync.Mutex
	seq   uint64
	subs  map[*feedSub]struct{}
	done  bool
	final *JobStatus
}

func newFeed(jobID string) *feed {
	return &feed{jobID: jobID, subs: map[*feedSub]struct{}{}}
}

// publish fans an event out to every subscriber, dropping each
// subscriber's oldest queued event when its bounded queue is full.
func (f *feed) publish(typ, name string, span int64, timeNS int64, attrs map[string]any) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	ev := JobEvent{JobID: f.jobID, Seq: f.seq, Type: typ, Name: name, Span: span, TimeNS: timeNS, Attrs: attrs}
	f.seq++
	for sub := range f.subs {
		sub.push(ev)
	}
}

// publishRecord translates one tracer record into a span event.
func (f *feed) publishRecord(rec obs.Record) {
	if f == nil {
		return
	}
	typ := "span_start"
	if rec.Type == obs.RecordEnd {
		typ = "span_end"
	}
	f.publish(typ, rec.Name, rec.ID, rec.TimeNS, rec.Attrs)
}

// close marks the feed terminal with the job's final status and wakes
// every subscriber; late subscribers receive the done event immediately.
func (f *feed) close(final JobStatus) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return
	}
	f.done = true
	f.final = &final
	for sub := range f.subs {
		sub.finish(f.final)
	}
}

func (f *feed) subscribe() *feedSub {
	sub := &feedSub{f: f, notify: make(chan struct{}, 1)}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		sub.finish(f.final)
		return sub
	}
	f.subs[sub] = struct{}{}
	return sub
}

func (f *feed) subscriberCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// feedSub is one subscriber's bounded, drop-oldest event queue.
type feedSub struct {
	f      *feed
	notify chan struct{}

	mu      sync.Mutex
	queue   []JobEvent
	dropped uint64
	done    bool
	final   *JobStatus
	sentFin bool
}

func (s *feedSub) push(ev JobEvent) {
	s.mu.Lock()
	if len(s.queue) >= subQueueDepth {
		n := len(s.queue) - subQueueDepth + 1
		s.queue = append(s.queue[:0], s.queue[n:]...)
		s.dropped += uint64(n)
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	s.wake()
}

func (s *feedSub) finish(final *JobStatus) {
	s.mu.Lock()
	s.done = true
	s.final = final
	s.mu.Unlock()
	s.wake()
}

func (s *feedSub) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// next blocks until an event is available or ctx ends. The second result
// is false when the stream is over: after the terminal done event has
// been returned, or on ctx cancellation.
func (s *feedSub) next(done <-chan struct{}) (JobEvent, bool) {
	for {
		s.mu.Lock()
		if len(s.queue) > 0 {
			ev := s.queue[0]
			s.queue = append(s.queue[:0], s.queue[1:]...)
			ev.Dropped = s.dropped
			s.dropped = 0
			s.mu.Unlock()
			return ev, true
		}
		if s.done {
			if s.sentFin {
				s.mu.Unlock()
				return JobEvent{}, false
			}
			s.sentFin = true
			ev := JobEvent{JobID: s.f.jobID, Type: "done", Status: s.final}
			s.mu.Unlock()
			return ev, true
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-done:
			return JobEvent{}, false
		}
	}
}

// close detaches the subscriber from its feed so publishes stop reaching
// it (client disconnects must not leak queues on a long-running daemon).
func (s *feedSub) close() {
	s.f.mu.Lock()
	delete(s.f.subs, s)
	s.f.mu.Unlock()
}

// handleJobEvents serves GET /jobs/{id}/events: a Server-Sent Events
// stream of the job's live progress. Subscribing to a queued job is
// valid (events begin when a worker picks the job up); subscribing to a
// finished job yields the terminal done event immediately.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := j.feed.subscribe()
	defer sub.close()
	for {
		ev, ok := sub.next(r.Context().Done())
		if !ok {
			return
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return
		}
		flusher.Flush()
		if ev.Type == "done" {
			return
		}
	}
}
