package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pisa"
	"repro/internal/solcache"
)

const samplingSrc = `
int count = 0;
if (count == 10) {
  count = 0;
  pkt.sample = 1;
} else {
  count = count + 1;
  pkt.sample = 0;
}
`

func compileReq(wait bool) CompileRequest {
	return CompileRequest{
		Name:      "sampling",
		Source:    samplingSrc,
		Width:     2,
		MaxStages: 3,
		ALU:       "if_else_raw",
		Wait:      wait,
	}
}

func postCompile(t *testing.T, ts *httptest.Server, req CompileRequest) (*http.Response, JobStatus) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

// TestCompileEndToEnd exercises the real pipeline over HTTP: a compile
// succeeds, its configuration deserializes and simulates, and the second
// identical request is served from the solution cache.
func TestCompileEndToEnd(t *testing.T) {
	cache := solcache.New(8)
	s := New(Config{Workers: 2, QueueDepth: 4, JobTimeout: 2 * time.Minute, Cache: cache})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postCompile(t, ts, compileReq(true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job state %q result=%v", st.State, st.Result)
	}
	if !st.Result.Feasible || st.Result.Cached {
		t.Fatalf("first compile: feasible=%v cached=%v", st.Result.Feasible, st.Result.Cached)
	}
	var cfg pisa.Config
	if err := json.Unmarshal(st.Result.Config, &cfg); err != nil {
		t.Fatalf("config does not deserialize: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("returned config invalid: %v", err)
	}

	resp2, st2 := postCompile(t, ts, compileReq(true))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status %d", resp2.StatusCode)
	}
	if !st2.Result.Cached || !st2.Result.Feasible {
		t.Fatalf("second compile: cached=%v feasible=%v, want a cache hit", st2.Result.Cached, st2.Result.Feasible)
	}

	// The job remains pollable.
	jresp, err := http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Errorf("GET /jobs/%s = %d", st.ID, jresp.StatusCode)
	}
	if r, err := http.Get(ts.URL + "/jobs/nope"); err == nil {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job = %d, want 404", r.StatusCode)
		}
	}
}

// TestCompileBPFTarget exercises the target field end to end: a bpf
// compile over HTTP returns a register-machine artifact whose JSON
// deserializes as a bpf.Config, with Stages reporting the slot count.
func TestCompileBPFTarget(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := CompileRequest{
		Name:   "new_flow",
		Source: "int seen = 0; if (seen == 0) { pkt.new_flow = 1; seen = 1; } else { pkt.new_flow = 0; }",
		Target: "bpf",
		// Iterative deepening stops at the first feasible slot count.
		MaxStages: 5,
		Seed:      1,
		Wait:      true,
	}
	resp, st := postCompile(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if st.State != StateDone || st.Result == nil || !st.Result.Feasible {
		t.Fatalf("job state %q result=%+v", st.State, st.Result)
	}
	if st.Result.Target != "bpf" {
		t.Fatalf("result target = %q, want bpf", st.Result.Target)
	}
	if st.Result.Stages < 1 || st.Result.Stages > 5 {
		t.Fatalf("slot count %d out of range", st.Result.Stages)
	}
	var cfg bpf.Config
	if err := json.Unmarshal(st.Result.Config, &cfg); err != nil {
		t.Fatalf("config does not deserialize as bpf.Config: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("returned bpf config invalid: %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, req := range map[string]CompileRequest{
		"empty source": {Name: "x"},
		"parse error":  {Name: "x", Source: "if (((("},
		"bad alu":      {Name: "x", Source: samplingSrc, ALU: "quantum"},
		"bad target":   {Name: "x", Source: samplingSrc, Target: "riscv"},
	} {
		resp, _ := postCompile(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// stubCompiles replaces the server's compile function with one that blocks
// until released, so tests control queue occupancy deterministically.
func stubCompiles(s *Server) (started chan string, release chan struct{}) {
	started = make(chan string, 16)
	release = make(chan struct{})
	s.compile = func(ctx context.Context, j *job) (*core.Report, error) {
		started <- j.prog.Name
		select {
		case <-release:
			return &core.Report{Program: j.prog.Name, Feasible: true}, nil
		case <-ctx.Done():
			return &core.Report{Program: j.prog.Name, TimedOut: true}, nil
		}
	}
	return started, release
}

// TestQueueFullBackpressure: one worker busy, a one-slot queue occupied —
// the next submission must be rejected with 429, and the metrics must
// record the throttle.
func TestQueueFullBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, QueueDepth: 1, Metrics: reg})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	started, release := stubCompiles(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r1 := compileReq(false)
	r1.Name = "inflight"
	resp, _ := postCompile(t, ts, r1)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started // the worker now holds job 1

	r2 := compileReq(false)
	r2.Name = "queued"
	if resp, _ := postCompile(t, ts, r2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	r3 := compileReq(false)
	r3.Name = "rejected"
	if resp, _ := postCompile(t, ts, r3); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp.StatusCode)
	}
	if got := reg.Counter("server.jobs.throttled").Value(); got != 1 {
		t.Errorf("server.jobs.throttled = %d, want 1", got)
	}
	close(release)
}

// TestFinishedJobEviction: the job table must stay bounded — beyond
// MaxFinishedJobs, the oldest finished jobs stop being pollable while the
// newest remain.
func TestFinishedJobEviction(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, MaxFinishedJobs: 2})
	defer s.Shutdown(context.Background())
	_, release := stubCompiles(s)
	close(release) // every compile returns immediately
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		resp, st := postCompile(t, ts, compileReq(true))
		if resp.StatusCode != http.StatusOK || st.State != StateDone {
			t.Fatalf("job %d: status %d state %q", i, resp.StatusCode, st.State)
		}
		ids = append(ids, st.ID)
	}

	// Retirement runs just after the waiter is released; poll briefly for
	// the oldest job to fall out of the table.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		_, resident := s.jobs[ids[0]]
		s.mu.Unlock()
		if !resident {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if resp, err := http.Get(ts.URL + "/jobs/" + ids[0]); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("oldest finished job still pollable: %d, want 404", resp.StatusCode)
		}
	}
	for _, id := range ids[1:] {
		if st := getJob(t, ts, id); st.State != StateDone {
			t.Errorf("recent job %s state %q, want done", id, st.State)
		}
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 2 {
		t.Errorf("job table holds %d entries, want 2", n)
	}
}

// TestGracefulShutdown is the acceptance-criteria test: on drain,
// in-flight jobs complete, queued jobs are rejected, new submissions are
// refused, and the worker pool exits cleanly.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	started, release := stubCompiles(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflightReq := compileReq(false)
	inflightReq.Name = "inflight"
	_, inflightSt := postCompile(t, ts, inflightReq)
	<-started // worker holds it

	queuedReq := compileReq(false)
	queuedReq.Name = "queued"
	_, queuedSt := postCompile(t, ts, queuedReq)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The drain must reject the queued job promptly, while the in-flight
	// job is still running.
	waitForState(t, ts, queuedSt.ID, StateRejected)
	if st := getJob(t, ts, inflightSt.ID); st.State != StateRunning {
		t.Fatalf("in-flight job state %q during drain, want running", st.State)
	}

	// New submissions and health checks are refused while draining.
	if resp, _ := postCompile(t, ts, compileReq(false)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain: %d, want 503", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Errorf("healthz body during drain: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz during drain: %d, want 503", resp.StatusCode)
		}
		if h.Status != "draining" || !h.Draining {
			t.Errorf("healthz body during drain: %+v, want status=draining", h)
		}
	}

	// Let the in-flight job finish; Shutdown must then return cleanly.
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if st := getJob(t, ts, inflightSt.ID); st.State != StateDone || !st.Result.Feasible {
		t.Errorf("in-flight job after drain: state=%q, want done+feasible", st.State)
	}
}

// TestShutdownForceCancel: when the drain grace expires, in-flight job
// contexts are cancelled and the pool still exits.
func TestShutdownForceCancel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	started, _ := stubCompiles(s) // never released: only ctx can end it
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := compileReq(false)
	_, st := postCompile(t, ts, req)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced shutdown returned %v, want deadline exceeded", err)
	}
	if got := getJob(t, ts, st.ID); got.State != StateDone || !got.Result.TimedOut {
		t.Errorf("force-cancelled job: state=%q result=%+v, want done+timed_out", got.State, got.Result)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	cache := solcache.New(8)
	s := New(Config{Workers: 1, Cache: cache})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postCompile(t, ts, compileReq(true))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"server.jobs.accepted", "server.jobs.completed", "solcache.misses", "solcache.size"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics snapshot missing %q (have %v)", key, keys(snap))
		}
	}
}

// TestHealthzBody: a healthy daemon reports its operational state as
// JSON, not just a status code.
func TestHealthzBody(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postCompile(t, ts, compileReq(true))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d, want 200", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Errorf("healthz body: %+v, want status=ok", h)
	}
	if h.JobsAccepted != 1 || h.JobsCompleted != 1 {
		t.Errorf("healthz counters: accepted=%d completed=%d, want 1/1", h.JobsAccepted, h.JobsCompleted)
	}
	if h.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", h.UptimeSeconds)
	}
	if h.Inflight != 0 || h.QueueDepth != 0 {
		t.Errorf("idle daemon reports inflight=%d queue_depth=%d", h.Inflight, h.QueueDepth)
	}
	// One completed job: the latency digests must each hold one sample
	// with ordered percentiles.
	for name, ls := range map[string]LatencySummary{"queue_wait": h.QueueWait, "job_runtime": h.JobRuntime} {
		if ls.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, ls.Count)
		}
		if ls.P50MS > ls.P95MS || ls.P95MS > ls.P99MS || ls.P99MS > float64(ls.MaxMS) {
			t.Errorf("%s percentiles out of order: %+v", name, ls)
		}
	}
}

// TestMetricsPrometheus: /metrics/prom and content-negotiated /metrics
// serve the Prometheus text format; plain GET /metrics stays JSON.
func TestMetricsPrometheus(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postCompile(t, ts, compileReq(true))
	fetch := func(path, accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return sb.String(), resp.Header.Get("Content-Type")
	}

	prom, ct := fetch("/metrics/prom", "")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics/prom Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE server_jobs_completed counter",
		"server_jobs_completed 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics/prom missing %q:\n%s", want, prom)
		}
	}

	negotiated, ct2 := fetch("/metrics", "text/plain")
	if !strings.HasPrefix(ct2, "text/plain") {
		t.Errorf("negotiated /metrics Content-Type = %q", ct2)
	}
	if !strings.Contains(negotiated, "server_jobs_completed 1") {
		t.Errorf("negotiated /metrics is not Prometheus text:\n%s", negotiated)
	}

	jsonOut, ct3 := fetch("/metrics", "")
	if !strings.HasPrefix(ct3, "application/json") {
		t.Errorf("default /metrics Content-Type = %q", ct3)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(jsonOut), &snap); err != nil {
		t.Errorf("default /metrics is not JSON: %v", err)
	}
}

// TestExplainInfeasibleJob submits a known-infeasible job (marple_reorder
// needs two stages; the request allows one) with the explain knob set and
// checks the full forensics surface: the result carries a structured
// Explanation naming the binding dimension with a minimal blame set, the
// flight-recorder tail is attached to the status even though the job
// neither failed nor timed out, and the explain counters reach the
// Prometheus endpoint.
func TestExplainInfeasibleJob(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := CompileRequest{
		Name:      "marple_reorder",
		Source:    "int max_seq = 0; if (pkt.seq < max_seq) { pkt.reordered = 1; } else { pkt.reordered = 0; max_seq = pkt.seq; }",
		Width:     2,
		MaxStages: 1,
		ALU:       "pred_raw",
		Explain:   true,
		Wait:      true,
	}
	resp, st := postCompile(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job state %q result=%v error=%q", st.State, st.Result, st.Error)
	}
	if st.Result.Feasible || st.Result.TimedOut {
		t.Fatalf("marple_reorder at 1 stage should be infeasible, got %+v", st.Result)
	}
	exp := st.Result.Explanation
	if exp == nil {
		t.Fatal("infeasible job with explain set must return an explanation")
	}
	if exp.Dimension != core.DimStageDepth {
		t.Fatalf("binding dimension = %q (core %v), want %q", exp.Dimension, exp.BlamedGroups, core.DimStageDepth)
	}
	if !exp.Minimal || len(exp.BlamedGroups) == 0 || len(exp.BlamedStatements) == 0 {
		t.Fatalf("expected a minimal blame set with statements, got %+v", exp)
	}
	if len(st.Flight) == 0 {
		t.Fatal("infeasible verdict should attach the flight-recorder tail")
	}

	mresp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"explain_runs 1", "explain_minimal_cores 1", "server_jobs_explained 1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("/metrics/prom missing %q", want)
		}
	}

	// A feasible job with the knob set stays explanation-free.
	freq := compileReq(true)
	freq.Explain = true
	_, fst := postCompile(t, ts, freq)
	if fst.Result == nil || !fst.Result.Feasible {
		t.Fatalf("sampling should compile: %+v", fst.Result)
	}
	if fst.Result.Explanation != nil {
		t.Fatal("feasible job must not carry an explanation")
	}
	if len(fst.Flight) != 0 {
		t.Fatal("feasible job must not attach a flight tail")
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitForState(t *testing.T, ts *httptest.Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := getJob(t, ts, id); st.State == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q (now %q)", id, want, getJob(t, ts, id).State)
}

// TestClientRoundTrip drives the thin client against a live server.
func TestClientRoundTrip(t *testing.T) {
	cache := solcache.New(8)
	s := New(Config{Workers: 2, Cache: cache})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := c.Compile(ctx, compileReq(false)) // Wait is forced on
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Result.Feasible {
		t.Fatalf("client compile: %+v", st)
	}
	st2, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != st.ID || st2.State != StateDone {
		t.Errorf("job poll mismatch: %+v", st2)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["server.jobs.completed"]; !ok {
		t.Errorf("client metrics missing completion counter: %v", keys(snap))
	}
	if _, err := c.Compile(ctx, CompileRequest{}); err == nil {
		t.Error("client accepted an empty request")
	} else if !strings.Contains(err.Error(), "source") {
		t.Errorf("error should surface the server message, got: %v", err)
	}
}

// TestJobParallelismClamp: the server caps a request's portfolio
// parallelism at Config.JobParallelism and passes the seed fanout through
// (itself clamped to a sane bound).
func TestJobParallelismClamp(t *testing.T) {
	cases := []struct {
		name         string
		cfgCap       int
		reqParallel  int
		reqFanout    int
		wantParallel int
		wantFanout   int
	}{
		{"default cap is sequential", 0, 8, 2, 1, 2},
		{"within cap", 4, 3, 2, 3, 2},
		{"above cap clamped", 2, 16, 2, 2, 2},
		{"sequential request unchanged", 4, 0, 0, 0, 0},
		{"fanout clamped", 4, 4, 99, 4, 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New(Config{Workers: 1, JobParallelism: c.cfgCap})
			defer s.Shutdown(context.Background())
			j, err := s.newJob(CompileRequest{Name: "x", Source: samplingSrc,
				Parallel: c.reqParallel, SeedFanout: c.reqFanout})
			if err != nil {
				t.Fatal(err)
			}
			if j.opts.Parallelism != c.wantParallel {
				t.Errorf("Parallelism = %d, want %d", j.opts.Parallelism, c.wantParallel)
			}
			if j.opts.SeedFanout != c.wantFanout {
				t.Errorf("SeedFanout = %d, want %d", j.opts.SeedFanout, c.wantFanout)
			}
		})
	}
}

// TestConfigValidateOversubscription: workers x job-parallelism beyond
// 2x GOMAXPROCS is a configuration error; anything at or below passes.
func TestConfigValidateOversubscription(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	ok := Config{Workers: 2, JobParallelism: cores}
	if err := ok.Validate(); err != nil {
		t.Fatalf("2 workers x %d parallelism should validate: %v", cores, err)
	}
	seq := Config{Workers: 1}
	if err := seq.Validate(); err != nil {
		t.Fatalf("sequential default should validate: %v", err)
	}
	bad := Config{Workers: 2*cores + 1, JobParallelism: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("oversubscribed config validated")
	}
}

// TestPortfolioJobReportsWinner: a portfolio job's result carries the
// winning member's attribution so clients can see which depth/seed/alloc
// produced the solution.
func TestPortfolioJobReportsWinner(t *testing.T) {
	s := New(Config{Workers: 1, JobParallelism: 2, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := compileReq(true)
	req.Parallel = 2
	req.SeedFanout = 2
	resp, st := postCompile(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if st.State != StateDone || st.Result == nil || !st.Result.Feasible {
		t.Fatalf("job state %q result=%+v", st.State, st.Result)
	}
	if st.Result.Winner == "" {
		t.Fatalf("portfolio job result has no winner attribution: %+v", st.Result)
	}
}
