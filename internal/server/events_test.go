package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// waitForSubscribers polls a job's feed until it has n subscribers, so
// tests can order "watcher attached" before "job released".
func waitForSubscribers(t *testing.T, s *Server, id string, n int) {
	t.Helper()
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		t.Fatalf("no such job %s", id)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.feed.subscriberCount() == n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %d subscribers (now %d)", id, n, j.feed.subscriberCount())
}

// TestWatchLiveCompile is the SSE acceptance test: a client watching a
// job observes at least one in-flight progress event (span or note,
// delivered while the compile is running) before the terminal done
// event arrives. A blocker job pins the single worker so the watcher is
// attached before the real compile starts.
func TestWatchLiveCompile(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, JobTimeout: 2 * time.Minute})
	defer s.Shutdown(context.Background())
	blockerStarted := make(chan struct{}, 1)
	release := make(chan struct{})
	s.compile = func(ctx context.Context, j *job) (*core.Report, error) {
		if j.prog.Name == "blocker" {
			blockerStarted <- struct{}{}
			<-release
			return &core.Report{Program: j.prog.Name, Feasible: true}, nil
		}
		return core.Compile(ctx, j.prog, j.opts)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blocker := compileReq(false)
	blocker.Name = "blocker"
	if resp, _ := postCompile(t, ts, blocker); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: %d", resp.StatusCode)
	}
	<-blockerStarted

	resp, st := postCompile(t, ts, compileReq(false))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.State != StateQueued {
		t.Fatalf("job state %q, want queued (blocker should hold the worker)", st.State)
	}

	c := NewClient(ts.URL)
	var progress, doneEvents atomic.Int64
	watchErr := make(chan error, 1)
	final := make(chan *JobStatus, 1)
	go func() {
		fin, err := c.Watch(context.Background(), st.ID, func(ev JobEvent) {
			switch ev.Type {
			case "span_start", "span_end", "note":
				progress.Add(1)
			case "done":
				doneEvents.Add(1)
			}
		})
		watchErr <- err
		final <- fin
	}()

	// Only release the worker once the watcher is attached, so observed
	// events are genuinely in-flight.
	waitForSubscribers(t, s, st.ID, 1)
	close(release)

	if err := <-watchErr; err != nil {
		t.Fatal(err)
	}
	fin := <-final
	if fin.State != StateDone || fin.Result == nil || !fin.Result.Feasible {
		t.Fatalf("final status: %+v", fin)
	}
	if progress.Load() < 1 {
		t.Errorf("watched 0 in-flight progress events, want >= 1")
	}
	if doneEvents.Load() != 1 {
		t.Errorf("saw %d done events, want 1", doneEvents.Load())
	}
}

// TestSlowConsumerDropOldest: a subscriber that never drains its queue
// loses the oldest events, keeps the newest, and learns how many were
// shed from the next delivered event's Dropped field.
func TestSlowConsumerDropOldest(t *testing.T) {
	f := newFeed("j1")
	sub := f.subscribe()
	defer sub.close()

	const extra = 50
	for i := 0; i < subQueueDepth+extra; i++ {
		f.publish("note", "tick", 0, int64(i), nil)
	}

	ev, ok := sub.next(nil)
	if !ok {
		t.Fatal("no event available")
	}
	if ev.Dropped != extra {
		t.Errorf("first event Dropped = %d, want %d", ev.Dropped, extra)
	}
	if ev.Seq != extra {
		t.Errorf("first event Seq = %d, want %d (oldest shed)", ev.Seq, extra)
	}
	// Drain the rest: exactly subQueueDepth events survive, ending with
	// the newest, then the closed feed yields the terminal event.
	n := 1
	for {
		ev2, ok := sub.next(nil)
		if !ok {
			t.Fatal("queue drained early")
		}
		if ev2.Type == "done" {
			t.Fatal("done before close")
		}
		n++
		if ev2.Seq == subQueueDepth+extra-1 {
			break
		}
	}
	if n != subQueueDepth {
		t.Errorf("drained %d events, want %d", n, subQueueDepth)
	}

	f.close(JobStatus{ID: "j1", State: StateDone})
	if ev, ok := sub.next(nil); !ok || ev.Type != "done" || ev.Status == nil {
		t.Fatalf("terminal event = %+v ok=%v, want done with status", ev, ok)
	}
	if _, ok := sub.next(nil); ok {
		t.Error("stream yielded events past done")
	}
}

// TestDisconnectFreesSubscriber: an SSE client that goes away mid-stream
// must be detached from the feed — a long-running daemon cannot leak a
// queue per dropped connection.
func TestDisconnectFreesSubscriber(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	started, release := stubCompiles(s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := postCompile(t, ts, compileReq(false))
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		NewClient(ts.URL).Watch(ctx, st.ID, nil)
	}()
	waitForSubscribers(t, s, st.ID, 1)

	cancel()
	<-watchDone
	// The handler unsubscribes on its way out; poll for it.
	waitForSubscribers(t, s, st.ID, 0)
	close(release)
}

// TestWatchFinishedJob: subscribing to an already-finished job delivers
// the terminal done event immediately.
func TestWatchFinishedJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	_, release := stubCompiles(s)
	close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := postCompile(t, ts, compileReq(true))
	var events atomic.Int64
	fin, err := NewClient(ts.URL).Watch(context.Background(), st.ID, func(JobEvent) { events.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("final state %q", fin.State)
	}
	if events.Load() != 1 {
		t.Errorf("finished job delivered %d events, want exactly the done event", events.Load())
	}
}

// TestWatchUnknownJob: the events endpoint 404s like the status endpoint.
func TestWatchUnknownJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := NewClient(ts.URL).Watch(context.Background(), "nope", nil); err == nil {
		t.Fatal("watch of unknown job succeeded")
	}
}

// TestSSEWireFormat: the raw stream is well-formed SSE — event/data
// field pairs separated by blank lines, ending with a done event.
func TestSSEWireFormat(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	_, release := stubCompiles(s)
	close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := postCompile(t, ts, compileReq(true))
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var sawDone bool
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "", strings.HasPrefix(line, "event: "):
		case strings.HasPrefix(line, "data: "):
			var ev JobEvent
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
			if ev.Type == "done" {
				sawDone = true
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if !sawDone {
		t.Error("stream ended without a done event")
	}
}

// TestFlightDumpOnTimeout is the flight-recorder acceptance test: a
// compile driven to timeout leaves a bounded JSONL dump whose tail holds
// the last CEGIS iteration events, and the job status carries the
// truncated summary; a fast successful job leaves neither.
func TestFlightDumpOnTimeout(t *testing.T) {
	traceDir := t.TempDir()
	s := New(Config{Workers: 1, JobTimeout: 60 * time.Millisecond,
		TraceDir: traceDir, FlightCapacity: 64})
	defer s.Shutdown(context.Background())
	const iters = 100
	s.compile = func(ctx context.Context, j *job) (*core.Report, error) {
		if j.prog.Name == "fast" {
			_, sp := obs.StartSpan(ctx, "compile")
			sp.End()
			return &core.Report{Program: j.prog.Name, Feasible: true}, nil
		}
		for i := 0; i < iters; i++ {
			_, sp := obs.StartSpan(ctx, "cegis.iter", obs.Int("iter", i))
			sp.End()
		}
		<-ctx.Done()
		return &core.Report{Program: j.prog.Name, TimedOut: true}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postCompile(t, ts, compileReq(true))
	if resp.StatusCode != http.StatusOK || st.State != StateDone || !st.Result.TimedOut {
		t.Fatalf("timeout job: status %d state %q result %+v", resp.StatusCode, st.State, st.Result)
	}
	if len(st.Flight) == 0 || len(st.Flight) > 20 {
		t.Fatalf("status flight tail holds %d entries, want 1..20", len(st.Flight))
	}
	lastIter := false
	for _, e := range st.Flight {
		if e.Name == "cegis.iter" {
			if v, ok := e.Attrs["iter"].(float64); ok && int(v) == iters-1 {
				lastIter = true
			}
		}
	}
	if !lastIter {
		t.Errorf("flight tail misses the last CEGIS iteration: %+v", st.Flight)
	}

	if st.FlightDump == "" {
		t.Fatal("no flight dump path on the timed-out job")
	}
	if !strings.HasPrefix(st.FlightDump, traceDir) {
		t.Fatalf("dump %q escaped trace dir %q", st.FlightDump, traceDir)
	}
	data, err := os.ReadFile(st.FlightDump)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 64 {
		t.Errorf("dump holds %d lines, want 64 (= FlightCapacity; ring must bound it)", len(lines))
	}
	sawLast := false
	for _, line := range lines {
		var e struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("dump line not JSON: %q: %v", line, err)
		}
		if e.Name == "cegis.iter" {
			if v, ok := e.Attrs["iter"].(float64); ok && int(v) == iters-1 {
				sawLast = true
			}
		}
	}
	if !sawLast {
		t.Error("dump does not contain the last CEGIS iteration events")
	}

	// Happy path: no dump, no tail, no per-job trace dir.
	fast := compileReq(true)
	fast.Name = "fast"
	_, fastSt := postCompile(t, ts, fast)
	if fastSt.State != StateDone || fastSt.Result == nil || !fastSt.Result.Feasible {
		t.Fatalf("fast job: %+v", fastSt)
	}
	if len(fastSt.Flight) != 0 || fastSt.FlightDump != "" {
		t.Errorf("fast successful job carries flight data: %+v", fastSt)
	}
	if _, err := os.Stat(filepath.Join(traceDir, fastSt.ID)); !os.IsNotExist(err) {
		t.Errorf("fast job left a trace dir (err=%v)", err)
	}
}

// TestSlowJobCPUProfile: a job outlasting the slow threshold leaves a
// CPU profile in its trace dir; the profiler is released for later jobs.
func TestSlowJobCPUProfile(t *testing.T) {
	traceDir := t.TempDir()
	s := New(Config{Workers: 1, JobTimeout: 5 * time.Second,
		TraceDir: traceDir, SlowJobThreshold: 20 * time.Millisecond})
	defer s.Shutdown(context.Background())
	s.compile = func(ctx context.Context, j *job) (*core.Report, error) {
		select {
		case <-time.After(200 * time.Millisecond):
		case <-ctx.Done():
		}
		return &core.Report{Program: j.prog.Name, Feasible: true}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := postCompile(t, ts, compileReq(true))
	if st.State != StateDone {
		t.Fatalf("job state %q", st.State)
	}
	prof := filepath.Join(traceDir, st.ID, "cpu.pprof")
	fi, err := os.Stat(prof)
	if err != nil {
		t.Fatalf("no CPU profile for the slow job: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("CPU profile is empty")
	}
	if cpuProfileActive.Load() {
		t.Error("profiler still marked active after the job finished")
	}
}
