package domino

import (
	"strings"
	"testing"

	"repro/internal/alu"
	"repro/internal/parser"
)

// TestFieldOnlyElseUnderComplexCondition: a non-relational condition whose
// else branch writes only fields predicates via generic negation (state
// writes would be rejected, field writes are fine).
func TestFieldOnlyElseUnderComplexCondition(t *testing.T) {
	prog := parser.MustParse("t", `
if ((pkt.a == 1) && (pkt.b == 2)) { pkt.r = 1; } else { pkt.r = 0; }
`)
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("field-only else under && condition should compile: %s", res.Reason)
	}
	checkFlatEquivalent(t, prog, res, 41)
}

// TestStateWriteUnderComplexConditionRejected: the same condition guarding
// a state write cannot be inverted syntactically -> rejection.
func TestStateWriteUnderComplexConditionRejected(t *testing.T) {
	res := compile(t, "if ((pkt.a == 1) && (pkt.b == 2)) { pkt.r = 1; } else { s = s + 1; }", alu.PredRaw)
	if res.OK {
		t.Fatal("state write in non-invertible else should be rejected")
	}
	if !strings.Contains(res.Reason, "eliminate else-branch") {
		t.Fatalf("reason: %s", res.Reason)
	}
}

// TestNeverWrittenStateRead: reading state that is never written allocates
// a passive atom exporting the old value.
func TestNeverWrittenStateRead(t *testing.T) {
	prog := parser.MustParse("t", "int thresh = 5;\npkt.r = pkt.a + thresh;")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("read-only state should compile: %s", res.Reason)
	}
	// One passive atom plus one add op.
	atoms := 0
	for _, st := range res.Pipeline.Stages {
		atoms += len(st.Atoms)
	}
	if atoms != 1 {
		t.Fatalf("passive atom count = %d, want 1", atoms)
	}
	checkFlatEquivalent(t, prog, res, 43)
}

func TestUnaryLoweringPaths(t *testing.T) {
	// !x, ~x and -x all lower; -x costs a materialized zero.
	prog := parser.MustParse("t", "pkt.r = !pkt.a; pkt.q = ~pkt.b; pkt.p = -pkt.c;")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("unary lowering failed: %s", res.Reason)
	}
	checkFlatEquivalent(t, prog, res, 47)
}

func TestShiftRejected(t *testing.T) {
	res := compile(t, "pkt.r = pkt.a << pkt.b;", alu.Counter)
	if res.OK {
		t.Fatal("variable shift is not in the stateless instruction set")
	}
}

func TestConstantLeftOperandMaterialized(t *testing.T) {
	prog := parser.MustParse("t", "pkt.r = 3 - pkt.a;")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("const-left sub should compile via materialization: %s", res.Reason)
	}
	// The materialized constant rides action data (a free move, like RMT
	// immediate action parameters); only the sub consumes an ALU.
	if res.Usage.TotalALUs != 1 || res.Usage.Stages != 1 {
		t.Fatalf("usage: %+v, want 1 ALU in 1 stage", res.Usage)
	}
	checkFlatEquivalent(t, prog, res, 53)
}

func TestComparisonWithImmediateMaterializes(t *testing.T) {
	// lt has no immediate form: the constant is materialized (free action
	// data) and the comparison costs one ALU, same total as eqi.
	prog := parser.MustParse("t", "pkt.r = pkt.a < 3;")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal(res.Reason)
	}
	if res.Usage.TotalALUs != 1 {
		t.Fatalf("lt-with-imm should cost 1 ALU, got %+v", res.Usage)
	}
	checkFlatEquivalent(t, prog, res, 59)
}

func TestPairGroupingOddStateCount(t *testing.T) {
	// Three states with the pair ALU: two groups (2+1).
	prog := parser.MustParse("t", `
int a = 0;
int b = 0;
int c = 0;
a = pkt.x;
b = pkt.x;
c = pkt.x;
`)
	res, err := Compile(prog, alu.Pair, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("odd state count should still group: %s", res.Reason)
	}
	atoms := 0
	for _, st := range res.Pipeline.Stages {
		atoms += len(st.Atoms)
	}
	if atoms != 2 {
		t.Fatalf("3 states should occupy 2 pair atoms, got %d", atoms)
	}
}

func TestLogicalOverNonBooleanRejected(t *testing.T) {
	res := compile(t, "pkt.r = pkt.a && pkt.b;", alu.Counter)
	if res.OK {
		t.Fatal("&& over raw fields should be rejected (non-boolean operands)")
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	prog := parser.MustParse("t", "pkt.a = (pkt.b + 0) * 1; s = -(-s);")
	once := Simplify(prog)
	twice := Simplify(once)
	if once.Print() != twice.Print() {
		t.Fatalf("Simplify not idempotent:\n%s\nvs\n%s", once.Print(), twice.Print())
	}
}
