package domino

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/word"
)

func compile(t *testing.T, src string, kind alu.Kind) *Result {
	t.Helper()
	prog := parser.MustParse("test", src)
	res, err := Compile(prog, kind, 5)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkFlatEquivalent differential-tests the flat program against the
// original on random inputs over the original's variables.
func checkFlatEquivalent(t *testing.T, prog *ast.Program, res *Result, seed int64) {
	t.Helper()
	const w = word.Width(8)
	in := interp.MustNew(w)
	rng := rand.New(rand.NewSource(seed))
	vars := prog.Variables()
	for trial := 0; trial < 150; trial++ {
		snap := interp.NewSnapshot()
		for _, f := range vars.Fields {
			snap.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range vars.States {
			snap.State[s] = w.Trunc(rng.Uint64())
		}
		want, err := in.Run(prog, snap)
		if err != nil {
			t.Fatal(err)
		}
		got, err := in.Run(res.Flat, snap)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range vars.Fields {
			if got.Pkt[f] != want.Pkt[f] {
				t.Fatalf("input %s: flat pkt.%s = %d, want %d\nflat:\n%s",
					snap, f, got.Pkt[f], want.Pkt[f], res.Flat.Print())
			}
		}
		for _, s := range vars.States {
			if got.State[s] != want.State[s] {
				t.Fatalf("input %s: flat %s = %d, want %d\nflat:\n%s",
					snap, s, got.State[s], want.State[s], res.Flat.Print())
			}
		}
	}
}

// TestCorpusCompilesAndIsEquivalent: per §4, Domino generates code for all
// eight original benchmark programs; the emitted flat program must be
// semantically equivalent to the source.
func TestCorpusCompilesAndIsEquivalent(t *testing.T) {
	wantStages := map[string]int{
		"rcp": 1, "stateful_fw": 3, "sampling": 2,
		"blue_increase": 1, "blue_decrease": 1, "flowlet": 1,
		"marple_new_flow": 2, "marple_reorder": 2,
	}
	for _, b := range programs.Corpus() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog := b.Parse()
			res, err := Compile(prog, b.StatefulALU, b.ConstBits)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK {
				t.Fatalf("rejected: %s", res.Reason)
			}
			if res.Usage.Stages != wantStages[b.Name] {
				t.Errorf("stages = %d, want %d (scheduling regression)", res.Usage.Stages, wantStages[b.Name])
			}
			checkFlatEquivalent(t, prog, res, 31)
		})
	}
}

// --- Template matching -------------------------------------------------------

func TestCounterMatches(t *testing.T) {
	res := compile(t, "c = c + 1;", alu.Counter)
	if !res.OK {
		t.Fatalf("constant counter should match: %s", res.Reason)
	}
	res = compile(t, "c = pkt.x;", alu.Counter)
	if !res.OK {
		t.Fatalf("set-from-packet should match counter: %s", res.Reason)
	}
	// Conditional update exceeds the counter.
	res = compile(t, "if (pkt.x == 1) { c = c + 1; }", alu.Counter)
	if res.OK {
		t.Fatal("guarded update should exceed the counter template")
	}
}

func TestPredRawMatches(t *testing.T) {
	res := compile(t, "if (pkt.rtt < 30) { s = s + pkt.rtt; }", alu.PredRaw)
	if !res.OK {
		t.Fatalf("guarded accumulate should match pred_raw: %s", res.Reason)
	}
	// Two writes exceed pred_raw.
	res = compile(t, "if (pkt.a == 0) { s = 1; } else { s = 2; }", alu.PredRaw)
	if res.OK {
		t.Fatal("two-way update should exceed pred_raw")
	}
}

func TestIfElseRawMatchesTwoWay(t *testing.T) {
	res := compile(t, "if (s == 10) { s = 0; } else { s = s + 1; }", alu.IfElseRaw)
	if !res.OK {
		t.Fatalf("two-way update should match if_else_raw: %s", res.Reason)
	}
}

func TestPairMatchesSharedGuard(t *testing.T) {
	src := `
int a = 0;
int b = 0;
if (pkt.t - a > 5) { b = b + 1; a = pkt.t; }
`
	res := compile(t, src, alu.Pair)
	if !res.OK {
		t.Fatalf("shared-guard pair should match: %s", res.Reason)
	}
	// Conflicting guards cannot share a pair atom.
	src2 := `
int a = 0;
int b = 0;
if (pkt.t - a > 5) { a = pkt.t; }
if (pkt.t - b > 9) { b = pkt.t; }
`
	res = compile(t, src2, alu.Pair)
	if res.OK {
		t.Fatal("two different guards should not share one pair atom")
	}
}

// --- Rejection modes (the brittleness Table 2 measures) ----------------------

func TestRejectsCommutedUpdate(t *testing.T) {
	// "1 + s" is semantically "s + 1" but does not match syntactically.
	res := compile(t, "if (pkt.a == 0) { s = 1 + s; }", alu.PredRaw)
	if res.OK {
		t.Fatal("commuted update should be rejected")
	}
	if !strings.Contains(res.Reason, "does not match") {
		t.Fatalf("unexpected reason: %s", res.Reason)
	}
}

func TestRejectsNegatedGuard(t *testing.T) {
	res := compile(t, "if (!(pkt.a == 0)) { s = s + 1; }", alu.PredRaw)
	if res.OK {
		t.Fatal("negated guard should be rejected")
	}
}

func TestRejectsNestedStateUpdate(t *testing.T) {
	res := compile(t, "if (pkt.a) { if (pkt.b) { s = s + 1; } }", alu.NestedIfs)
	if res.OK {
		t.Fatal("state update under two nested ifs should be rejected")
	}
	if !strings.Contains(res.Reason, "nested") {
		t.Fatalf("unexpected reason: %s", res.Reason)
	}
}

func TestRejectsWideImmediate(t *testing.T) {
	res := compile(t, "s = s + 100;", alu.Counter) // constBits=5 -> max 31
	if res.OK {
		t.Fatal("immediate 100 exceeds 5-bit operands")
	}
}

func TestRejectsMultiply(t *testing.T) {
	res := compile(t, "pkt.a = pkt.a * pkt.b;", alu.Counter)
	if res.OK {
		t.Fatal("multiply is not in the stateless instruction set")
	}
}

func TestRejectsTwoNonConstantArms(t *testing.T) {
	res := compile(t, "pkt.a = pkt.c ? pkt.x : pkt.y;", alu.Counter)
	if res.OK {
		t.Fatal("ternary with two container arms exceeds the ALU muxes")
	}
	if !strings.Contains(res.Reason, "non-constant arms") {
		t.Fatalf("unexpected reason: %s", res.Reason)
	}
}

func TestRejectsInterleavedStateRead(t *testing.T) {
	src := "s = 1; pkt.a = s; s = 2;"
	res := compile(t, src, alu.PredRaw)
	if res.OK {
		t.Fatal("read between writes should be rejected")
	}
}

func TestRejectsReadAfterWriteInBranch(t *testing.T) {
	res := compile(t, "if (pkt.c == 0) { s = 1; pkt.a = s; }", alu.PredRaw)
	if res.OK {
		t.Fatal("same-branch read-after-write should be rejected")
	}
}

func TestRejectsComputedFieldInAtom(t *testing.T) {
	res := compile(t, "pkt.a = pkt.b + 1; if (pkt.a == 0) { s = s + 1; }", alu.PredRaw)
	if res.OK {
		t.Fatal("atom guard over a computed field should be rejected")
	}
}

func TestRejectsCrossStateDependence(t *testing.T) {
	res := compile(t, "s = t + 1;", alu.PredRaw)
	if res.OK {
		t.Fatal("update reading another atom's state should be rejected")
	}
}

// --- Accepted rewrites --------------------------------------------------------

func TestAcceptsFoldedIdentities(t *testing.T) {
	// The simplifier neutralizes arithmetic-identity mutations.
	cases := []string{
		"if (pkt.a == 0) { s = s + 1 + 0; }",
		"if (pkt.a == 0) { s = s + 1 * 1; }",
		"if (pkt.a == 0) { s = -(-(s + 1)); }",
		"if (pkt.a == 0) { s = s + (0 + 1); }",
	}
	for _, src := range cases {
		res := compile(t, src, alu.PredRaw)
		if !res.OK {
			t.Errorf("%q should compile after folding: %s", src, res.Reason)
		}
	}
}

func TestAcceptsElseViaRelInversion(t *testing.T) {
	// State updated in the else branch: the guard inverts syntactically.
	res := compile(t, "if (pkt.seq < s) { pkt.r = 1; } else { pkt.r = 0; s = pkt.seq; }", alu.PredRaw)
	if !res.OK {
		t.Fatalf("else-branch update should compile via relational inversion: %s", res.Reason)
	}
}

func TestAcceptsUnconditionalAfterIf(t *testing.T) {
	src := `
int last = 0;
int hop = 0;
if (pkt.t - last > 5) { hop = pkt.h; }
pkt.out = hop;
last = pkt.t;
`
	prog := parser.MustParse("t", src)
	res, err := Compile(prog, alu.Pair, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("flowlet shape should compile: %s", res.Reason)
	}
	checkFlatEquivalent(t, prog, res, 5)
}

// --- Stateless lowering and scheduling -----------------------------------------

func TestStagesGrowWithDependencyChains(t *testing.T) {
	// Each assignment depends on the previous one's output.
	res := compile(t, "pkt.a = pkt.a + 1; pkt.b = pkt.a + 2; pkt.c = pkt.b + 3;", alu.Counter)
	if !res.OK {
		t.Fatalf("chain should compile: %s", res.Reason)
	}
	if res.Usage.Stages != 3 {
		t.Fatalf("3-deep chain should need 3 stages, got %d", res.Usage.Stages)
	}
	// Independent assignments share a stage.
	res = compile(t, "pkt.a = pkt.a + 1; pkt.b = pkt.b + 2;", alu.Counter)
	if res.Usage.Stages != 1 || res.Usage.MaxALUsPerStage != 2 {
		t.Fatalf("independent ops: %+v", res.Usage)
	}
}

func TestMovesAreFree(t *testing.T) {
	res := compile(t, "pkt.a = pkt.b;", alu.Counter)
	if !res.OK {
		t.Fatal(res.Reason)
	}
	if res.Usage.TotalALUs != 0 || res.Usage.Stages != 0 {
		t.Fatalf("pure move should use no ALUs: %+v", res.Usage)
	}
}

func TestBooleanTernaryCollapse(t *testing.T) {
	res := compile(t, "if (pkt.a == 5) { pkt.r = 1; } else { pkt.r = 0; }", alu.Counter)
	if !res.OK {
		t.Fatal(res.Reason)
	}
	// Collapses to one eq-immediate instruction.
	if res.Usage.TotalALUs != 1 {
		t.Fatalf("boolean ternary should collapse to 1 ALU: %+v", res.Usage)
	}
	prog := parser.MustParse("t", "if (pkt.a == 5) { pkt.r = 1; } else { pkt.r = 0; }")
	r2, _ := Compile(prog, alu.Counter, 5)
	checkFlatEquivalent(t, prog, r2, 11)
}

func TestLogicalOperatorsLower(t *testing.T) {
	prog := parser.MustParse("t", "pkt.r = (pkt.a == 1) && (pkt.b == 2) || (pkt.c == 3);")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("boolean combination should lower to bitwise ops: %s", res.Reason)
	}
	checkFlatEquivalent(t, prog, res, 13)
}

func TestLeGtLowerViaSwap(t *testing.T) {
	prog := parser.MustParse("t", "pkt.r = pkt.a <= pkt.b; pkt.q = pkt.a > pkt.b;")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("<= and > should lower via operand swap: %s", res.Reason)
	}
	checkFlatEquivalent(t, prog, res, 17)
}

func TestGuardedFieldWriteWithConstArm(t *testing.T) {
	// A guarded field write with a constant arm lowers to the cond
	// instruction (possibly via condition inversion).
	prog := parser.MustParse("t", "if (pkt.a < 3) { pkt.r = 7; }")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("guarded constant write should compile: %s", res.Reason)
	}
	checkFlatEquivalent(t, prog, res, 19)
}

func TestGuardedFieldWriteNonConstArmRejected(t *testing.T) {
	// "pkt.r = cond ? pkt.b+1 : pkt.r" needs three live inputs (condition,
	// new value, old value) — beyond the two-input stateless ALU, so the
	// baseline rejects. (Chipmunk can in principle discover the rewrite
	// r + (cond ? (b+1-r) : 0) across several stages; at that grid size its
	// search routinely exceeds the compile timeout, the paper's observed
	// failure mode.)
	prog := parser.MustParse("t", "if (pkt.a < 3) { pkt.r = pkt.b + 1; }")
	res, err := Compile(prog, alu.Counter, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("guarded non-constant write should exceed the stateless ALU")
	}
}

// --- Simplifier ----------------------------------------------------------------

func TestSimplify(t *testing.T) {
	cases := []struct{ in, want string }{
		{"pkt.a = pkt.b + 0;", "pkt.a = pkt.b;\n"},
		{"pkt.a = 0 + pkt.b;", "pkt.a = pkt.b;\n"},
		{"pkt.a = pkt.b * 1;", "pkt.a = pkt.b;\n"},
		{"pkt.a = 1 * pkt.b;", "pkt.a = pkt.b;\n"},
		{"pkt.a = pkt.b * 0;", "pkt.a = 0;\n"},
		{"pkt.a = pkt.b - 0;", "pkt.a = pkt.b;\n"},
		{"pkt.a = -(-pkt.b);", "pkt.a = pkt.b;\n"},
		{"pkt.a = ~~pkt.b;", "pkt.a = pkt.b;\n"},
		{"pkt.a = 2 + 3;", "pkt.a = 5;\n"},
		{"pkt.a = 2 * 3 + 1;", "pkt.a = 7;\n"},
		{"pkt.a = (4 - 1) + pkt.b * 1;", "pkt.a = (3 + pkt.b);\n"},
		// Comparisons between constants must NOT fold (width-dependent).
		{"pkt.a = 3 < 5;", "pkt.a = (3 < 5);\n"},
	}
	for _, c := range cases {
		p := parser.MustParse("t", c.in)
		got := Simplify(p).Print()
		if got != c.want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	srcs := []string{
		"pkt.a = (pkt.b + 0) * 1 - (0 + 0); s = s + (2 - 1);",
		"if ((pkt.a * 1) == (pkt.b + 0)) { pkt.r = 1 + 2; } else { pkt.r = -(-4); }",
	}
	in := interp.MustNew(4)
	for _, src := range srcs {
		p := parser.MustParse("t", src)
		q := Simplify(p)
		eq, cex, err := in.Equivalent(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("Simplify changed semantics of %q at %v:\n%s", src, cex, q.Print())
		}
	}
}

func TestRejectReasonsAreInformative(t *testing.T) {
	res := compile(t, "if (pkt.a) { s = s + 1; }", alu.PredRaw)
	if res.OK {
		t.Fatal("bare truthiness guard should be rejected (not a relational test)")
	}
	if res.Reason == "" {
		t.Fatal("rejection must carry a reason")
	}
}

func TestDominoCompileIsFast(t *testing.T) {
	// Table 2 notes Domino compiles in seconds; ours should be far under.
	for _, b := range programs.Corpus() {
		res, err := Compile(b.Parse(), b.StatefulALU, b.ConstBits)
		if err != nil {
			t.Fatal(err)
		}
		if res.Elapsed.Seconds() > 1 {
			t.Fatalf("%s took %v", b.Name, res.Elapsed)
		}
	}
}
