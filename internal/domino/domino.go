// Package domino reimplements the baseline the paper evaluates against: the
// Domino compiler (Sivaraman et al., SIGCOMM 2016), which generates PISA
// code "based largely on classical compiler techniques that use rewrite
// rules on the abstract syntax tree of the program, e.g., branch
// elimination and data flow analysis" (paper §4).
//
// The pipeline is:
//
//  1. stateful codelet extraction — every state variable's read-modify-write
//     group is collected along with its guarding conditions;
//  2. atom template matching — each codelet is matched *syntactically*
//     against the configured stateful ALU template. The matcher implements
//     the small set of rewrite rules Domino has (constant folding of
//     negated relational guards, boolean-ternary collapsing) and nothing
//     more: a semantically equivalent program written in an unexpected
//     shape is rejected as "too expressive for the pipeline's ALUs", the
//     exact failure mode Table 2 measures;
//  3. branch elimination (predication) of the remaining packet-field
//     computation into straight-line guarded assignments;
//  4. flattening to three-address code, with each operation checked
//     against the stateless ALU's instruction set; and
//  5. ASAP dependency scheduling into pipeline stages: a value produced in
//     stage i is consumable from stage i+1, so the stage count is the
//     length of the critical dependency chain — typically deeper than what
//     Chipmunk's exhaustive search finds (Figure 5).
//
// The compiler also emits the predicated, flattened program (Flat), which
// is semantically equivalent to the input by construction and is used for
// differential testing and for executing the baseline's output.
package domino

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/pisa"
)

// Result is the outcome of a baseline compilation.
type Result struct {
	// OK reports whether code generation succeeded.
	OK bool
	// Reason explains a rejection (empty when OK).
	Reason string
	// Pipeline is the scheduled placement when OK.
	Pipeline *Pipeline
	// Flat is the predicated, flattened equivalent of the source program
	// (temporaries appear as packet fields named "_tN").
	Flat *ast.Program
	// Usage reports Figure 5's resource metrics for the placement.
	Usage pisa.Usage
	// Elapsed is compile time (Table 2 notes Domino compiles in seconds).
	Elapsed time.Duration
}

// Pipeline is the baseline's placement of work into stages.
type Pipeline struct {
	Stages []Stage
}

// Stage holds the operations placed in one pipeline stage.
type Stage struct {
	// Ops are stateless three-address operations (dst = expr).
	Ops []PlacedOp
	// Atoms are stateful codelets bound to stateful ALUs.
	Atoms []PlacedAtom
}

// PlacedOp is one stateless ALU instruction.
type PlacedOp struct {
	Dst  string
	Expr ast.Expr
}

// PlacedAtom is one stateful ALU codelet.
type PlacedAtom struct {
	// States lists the state variables the atom owns (two for pair).
	States []string
	// Kind is the matched template.
	Kind alu.Kind
}

// Compile runs the baseline on a program against the given stateful ALU
// template and stateless immediate width.
func Compile(prog *ast.Program, kind alu.Kind, constBits int) (*Result, error) {
	start := time.Now()
	c := &compiler{
		prog:      Simplify(prog),
		kind:      kind,
		constMax:  int64(1)<<uint(constBitsOrDefault(constBits)) - 1,
		stateWire: map[string]*atomInfo{},
	}
	res := c.run()
	res.Elapsed = time.Since(start)
	return res, nil
}

func constBitsOrDefault(b int) int {
	if b == 0 {
		return alu.DefaultConstBits
	}
	return b
}

// reject produces a failed Result. Reasons use the paper's vocabulary: the
// baseline concludes the program is too expressive for the hardware.
func reject(format string, args ...any) *Result {
	return &Result{OK: false, Reason: fmt.Sprintf(format, args...)}
}

type atomInfo struct {
	states []string
	stage  int // assigned during scheduling
	// firstIdx and writeIdx give, per state variable, the top-level
	// statement indices of its first and last writes (writeIdx -1 when
	// never written). They drive old/new wire classification.
	firstIdx map[string]int
	writeIdx map[string]int
}

func newAtomInfo(states []string) *atomInfo {
	a := &atomInfo{states: states, firstIdx: map[string]int{}, writeIdx: map[string]int{}}
	for _, s := range states {
		a.firstIdx[s] = 1 << 30
		a.writeIdx[s] = -1
	}
	return a
}

type compiler struct {
	prog     *ast.Program
	kind     alu.Kind
	constMax int64

	atoms     []*atomInfo
	stateWire map[string]*atomInfo

	tempN int
	flat  []ast.Stmt // predicated three-address statements
	ops   []*opNode
}

type opNode struct {
	dst   string
	expr  ast.Expr
	stage int
}

func (c *compiler) run() *Result {
	// Phase 0: dataflow sanity the wire classification depends on.
	if r := c.checkNoReadAfterWriteInBranch(); r != nil {
		return r
	}
	// Phase 1+2: extract and match stateful codelets.
	if r := c.matchStateful(); r != nil {
		return r
	}
	// Phase 3+4: predicate and flatten the packet-field side.
	if r := c.lowerStateless(); r != nil {
		return r
	}
	// Phase 5: schedule.
	return c.schedule()
}

// --- Stateful codelet extraction and matching --------------------------------

// stateWrite is one write to a state variable with its guard chain.
type stateWrite struct {
	guard   ast.Expr // nil when unconditional
	rhs     ast.Expr
	stmtIdx int
	depth   int // if-nesting depth
}

// collectStateWrites gathers every state write with its guard. Guards for
// else branches are the syntactic relational inversion of the if condition
// — the one branch-elimination rewrite Domino's frontend performs — or a
// rejection if the condition cannot be inverted syntactically.
func (c *compiler) collectStateWrites() (map[string][]stateWrite, *Result) {
	writes := map[string][]stateWrite{}
	var rej *Result
	var walk func(stmts []ast.Stmt, guard ast.Expr, idx int, depth int)
	walk = func(stmts []ast.Stmt, guard ast.Expr, topIdx int, depth int) {
		for i, s := range stmts {
			idx := topIdx
			if depth == 0 {
				idx = i
			}
			switch s := s.(type) {
			case *ast.Assign:
				if s.LHS.IsField {
					continue
				}
				writes[s.LHS.Name] = append(writes[s.LHS.Name], stateWrite{
					guard: guard, rhs: s.RHS, stmtIdx: idx, depth: depth,
				})
			case *ast.If:
				thenGuard := conjoin(guard, s.Cond)
				walk(s.Then, thenGuard, idx, depth+1)
				if len(s.Else) > 0 {
					neg := invertRel(s.Cond)
					if neg == nil {
						if stmtsWriteState(s.Else) {
							rej = reject("cannot eliminate else-branch of condition %s: not a relational test", s.Cond)
							return
						}
						// Else branch only writes fields; predication of
						// fields can use a generic negation later.
						neg = &ast.Unary{Op: ast.OpNot, X: ast.CloneExpr(s.Cond)}
					}
					walk(s.Else, conjoin(guard, neg), idx, depth+1)
				}
			}
		}
	}
	walk(c.prog.Stmts, nil, 0, 0)
	return writes, rej
}

func stmtsWriteState(stmts []ast.Stmt) bool {
	found := false
	var walk func([]ast.Stmt)
	walk = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Assign:
				if !s.LHS.IsField {
					found = true
				}
			case *ast.If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(stmts)
	return found
}

func conjoin(a, b ast.Expr) ast.Expr {
	if a == nil {
		return b
	}
	return &ast.Binary{Op: ast.OpLAnd, X: ast.CloneExpr(a), Y: ast.CloneExpr(b)}
}

// invertRel syntactically negates a relational comparison; it returns nil
// for anything else (the baseline's rewrite rules stop there).
func invertRel(e ast.Expr) ast.Expr {
	b, ok := e.(*ast.Binary)
	if !ok {
		return nil
	}
	var inv ast.Op
	switch b.Op {
	case ast.OpEq:
		inv = ast.OpNe
	case ast.OpNe:
		inv = ast.OpEq
	case ast.OpLt:
		inv = ast.OpGe
	case ast.OpLe:
		inv = ast.OpGt
	case ast.OpGt:
		inv = ast.OpLe
	case ast.OpGe:
		inv = ast.OpLt
	default:
		return nil
	}
	return &ast.Binary{Op: inv, X: ast.CloneExpr(b.X), Y: ast.CloneExpr(b.Y)}
}

// isAtomOperand reports whether e is a packet field, a small constant, or
// one of the atom's own state variables.
func (c *compiler) isAtomOperand(e ast.Expr, states []string) bool {
	switch e := e.(type) {
	case *ast.Num:
		return e.Value >= 0 && e.Value <= c.constMax
	case *ast.Field:
		return true
	case *ast.State:
		for _, s := range states {
			if s == e.Name {
				return true
			}
		}
	}
	return false
}

// matchUpdate checks that rhs is one of the update forms every stateful
// template supports: s, s + x, s - x, or x, where s is a group state and x
// is an atom operand. The check is deliberately literal: "s + 1" matches,
// "1 + s" does not.
func (c *compiler) matchUpdate(rhs ast.Expr, states []string) bool {
	if c.isAtomOperand(rhs, states) {
		return true
	}
	b, ok := rhs.(*ast.Binary)
	if !ok || (b.Op != ast.OpAdd && b.Op != ast.OpSub) {
		return false
	}
	lhsState, ok := b.X.(*ast.State)
	if !ok {
		return false
	}
	owned := false
	for _, s := range states {
		if s == lhsState.Name {
			owned = true
		}
	}
	return owned && c.isAtomOperand(b.Y, states)
}

// matchGuard checks the guard against the template's predicate forms:
// relop(a, b) over atom operands, plus — for Sub and Pair — relop(a - b, k).
func (c *compiler) matchGuard(g ast.Expr, states []string) bool {
	if g == nil {
		return true
	}
	b, ok := g.(*ast.Binary)
	if !ok || !isRelOp(b.Op) {
		return false
	}
	if c.isAtomOperand(b.X, states) && c.isAtomOperand(b.Y, states) {
		return true
	}
	if c.kind == alu.Sub || c.kind == alu.Pair {
		if sub, ok := b.X.(*ast.Binary); ok && sub.Op == ast.OpSub &&
			c.isAtomOperand(sub.X, states) && c.isAtomOperand(sub.Y, states) &&
			c.isAtomOperand(b.Y, states) {
			return true
		}
	}
	return false
}

func isRelOp(op ast.Op) bool {
	switch op {
	case ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
		return true
	}
	return false
}

// matchStateful groups state variables into atoms and matches each group
// against the configured template.
func (c *compiler) matchStateful() *Result {
	writes, rej := c.collectStateWrites()
	if rej != nil {
		return rej
	}
	vars := c.prog.Variables()
	if len(vars.States) == 0 {
		return nil
	}

	// Group states: pair groups two states that share a guard; the other
	// templates hold one state each.
	var groups [][]string
	if c.kind == alu.Pair {
		// Pair the states in canonical order, two per atom — the same
		// grouping Chipmunk's canonicalization uses.
		states := append([]string{}, vars.States...)
		sort.Strings(states)
		for i := 0; i < len(states); i += 2 {
			end := i + 2
			if end > len(states) {
				end = len(states)
			}
			groups = append(groups, states[i:end])
		}
	} else {
		for _, s := range vars.States {
			groups = append(groups, []string{s})
		}
	}

	// Fields the program itself writes: atoms are scheduled in stage 0 and
	// read raw header fields, so a state update consuming a *computed*
	// field is beyond this baseline's scheduling and is rejected.
	writtenFields := map[string]bool{}
	var collectFieldWrites func([]ast.Stmt)
	collectFieldWrites = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.Assign:
				if s.LHS.IsField {
					writtenFields[s.LHS.Name] = true
				}
			case *ast.If:
				collectFieldWrites(s.Then)
				collectFieldWrites(s.Else)
			}
		}
	}
	collectFieldWrites(c.prog.Stmts)
	readsComputedField := func(e ast.Expr) string {
		if e == nil {
			return ""
		}
		bad := ""
		ast.WalkExprs([]ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "x", IsField: true}, RHS: e}},
			func(e ast.Expr) {
				if f, ok := e.(*ast.Field); ok && writtenFields[f.Name] {
					bad = f.Name
				}
			})
		return bad
	}

	for _, group := range groups {
		info := newAtomInfo(group)
		var groupGuard ast.Expr
		guardSeen := false
		for _, s := range group {
			ws := writes[s]
			if len(ws) == 0 {
				continue
			}
			for _, w := range ws {
				if f := readsComputedField(w.guard); f != "" {
					return reject("state %s guard reads computed field pkt.%s", s, f)
				}
				if f := readsComputedField(w.rhs); f != "" {
					return reject("state %s update reads computed field pkt.%s", s, f)
				}
				if w.depth > 1 {
					return reject("state %s updated under nested conditions: needs a deeper predicate tree than ALU %s provides", s, c.kind)
				}
				if w.stmtIdx < info.firstIdx[s] {
					info.firstIdx[s] = w.stmtIdx
				}
				if w.stmtIdx > info.writeIdx[s] {
					info.writeIdx[s] = w.stmtIdx
				}
				if !c.matchUpdate(w.rhs, group) {
					return reject("state update %s = %s does not match ALU template %s", s, w.rhs, c.kind)
				}
				if !c.matchGuard(w.guard, group) {
					return reject("guard %s of state %s does not match ALU template %s predicate", w.guard, s, c.kind)
				}
				if w.guard != nil {
					if guardSeen && !ast.EqualExpr(groupGuard, w.guard) {
						// Two different predicates cannot share one atom,
						// except complementary branches of the same if.
						if inv := invertRel(groupGuard); inv == nil || !ast.EqualExpr(inv, w.guard) {
							return reject("state group %v has conflicting guards %s and %s", group, groupGuard, w.guard)
						}
					} else if !guardSeen {
						groupGuard = w.guard
						guardSeen = true
					}
				}
			}
			// Per-template arity checks.
			switch c.kind {
			case alu.Counter:
				if len(ws) > 1 || ws[0].guard != nil {
					return reject("state %s has conditional updates but ALU %s is an unconditional counter", s, c.kind)
				}
			case alu.PredRaw:
				if len(ws) > 1 {
					return reject("state %s written more than once but ALU %s supports a single guarded update", s, c.kind)
				}
			case alu.IfElseRaw, alu.Sub:
				if len(ws) > 2 {
					return reject("state %s written %d times but ALU %s supports two-way updates", s, len(ws), c.kind)
				}
			case alu.NestedIfs:
				if len(ws) > 4 {
					return reject("state %s written %d times, exceeding ALU %s", s, len(ws), c.kind)
				}
			case alu.Pair:
				if len(ws) > 2 {
					return reject("state %s written %d times but ALU %s supports two-way updates", s, len(ws), c.kind)
				}
			}
		}
		c.atoms = append(c.atoms, info)
		for _, s := range group {
			c.stateWire[s] = info
		}
	}
	return nil
}

// --- Stateless lowering --------------------------------------------------------

// lowerStateless predicates field assignments and flattens them to
// three-address operations, replacing state reads with atom output wires.
func (c *compiler) lowerStateless() *Result {
	var rej *Result
	var walk func(stmts []ast.Stmt, guard ast.Expr, topIdx int)
	walk = func(stmts []ast.Stmt, guard ast.Expr, topIdx int) {
		for i, s := range stmts {
			if rej != nil {
				return
			}
			idx := topIdx
			if topIdx == -1 {
				idx = i
			}
			switch s := s.(type) {
			case *ast.Assign:
				if !s.LHS.IsField {
					continue // handled by an atom
				}
				rhs := s.RHS
				if guard != nil {
					rhs = &ast.Ternary{Cond: ast.CloneExpr(guard), T: ast.CloneExpr(s.RHS), F: s.LHS.Ref()}
				}
				if r := c.emitAssign(s.LHS, rhs, idx); r != nil {
					rej = r
					return
				}
			case *ast.If:
				// Branch merging: a field assigned exactly once directly
				// in each branch becomes one conditional assignment
				// f = cond ? thenRHS : elseRHS — Domino's if-conversion.
				thenSingles := directFieldAssigns(s.Then)
				elseSingles := directFieldAssigns(s.Else)
				merged := map[string]bool{}
				for name, tRHS := range thenSingles {
					eRHS, ok := elseSingles[name]
					if !ok {
						continue
					}
					rhs := ast.Expr(&ast.Ternary{
						Cond: ast.CloneExpr(s.Cond),
						T:    ast.CloneExpr(tRHS),
						F:    ast.CloneExpr(eRHS),
					})
					lv := ast.LValue{Name: name, IsField: true}
					if guard != nil {
						rhs = &ast.Ternary{Cond: ast.CloneExpr(guard), T: rhs, F: lv.Ref()}
					}
					if r := c.emitAssign(lv, rhs, idx); r != nil {
						rej = r
						return
					}
					merged[name] = true
				}
				walk(dropMerged(s.Then, merged), conjoin(guard, s.Cond), idx)
				if rej != nil {
					return
				}
				rest := dropMerged(s.Else, merged)
				if len(rest) > 0 {
					neg := invertRel(s.Cond)
					if neg == nil {
						neg = &ast.Unary{Op: ast.OpNot, X: ast.CloneExpr(s.Cond)}
					}
					walk(rest, conjoin(guard, neg), idx)
				}
			}
		}
	}
	walk(c.prog.Stmts, nil, -1)
	return rej
}

// directFieldAssigns maps fields assigned exactly once at the top level of
// a branch (and nowhere in its nested ifs) to their RHS.
func directFieldAssigns(stmts []ast.Stmt) map[string]ast.Expr {
	counts := map[string]int{}
	rhs := map[string]ast.Expr{}
	nested := map[string]bool{}
	var markNested func([]ast.Stmt)
	markNested = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Assign:
				if s.LHS.IsField {
					nested[s.LHS.Name] = true
				}
			case *ast.If:
				markNested(s.Then)
				markNested(s.Else)
			}
		}
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			if s.LHS.IsField {
				counts[s.LHS.Name]++
				rhs[s.LHS.Name] = s.RHS
			}
		case *ast.If:
			markNested(s.Then)
			markNested(s.Else)
		}
	}
	out := map[string]ast.Expr{}
	for name, n := range counts {
		if n == 1 && !nested[name] {
			out[name] = rhs[name]
		}
	}
	return out
}

// dropMerged removes top-level assignments to already-merged fields.
func dropMerged(stmts []ast.Stmt, merged map[string]bool) []ast.Stmt {
	if len(merged) == 0 {
		return stmts
	}
	var out []ast.Stmt
	for _, s := range stmts {
		if a, ok := s.(*ast.Assign); ok && a.LHS.IsField && merged[a.LHS.Name] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// emitAssign flattens one (possibly predicated) field assignment.
func (c *compiler) emitAssign(lhs ast.LValue, rhs ast.Expr, stmtIdx int) *Result {
	operand, r := c.flatten(rhs, stmtIdx)
	if r != nil {
		return r
	}
	c.flat = append(c.flat, &ast.Assign{LHS: lhs, RHS: operand})
	c.ops = append(c.ops, &opNode{dst: "pkt." + lhs.Name, expr: operand})
	return nil
}

// newTemp allocates a fresh temporary, modeled as a packet field.
func (c *compiler) newTemp() string {
	c.tempN++
	return fmt.Sprintf("_t%d", c.tempN)
}

// flatten reduces an expression to an atom (field, temp, const) by emitting
// three-address temporaries, checking every operation against the stateless
// ALU's instruction set.
func (c *compiler) flatten(e ast.Expr, stmtIdx int) (ast.Expr, *Result) {
	switch e := e.(type) {
	case *ast.Num:
		if e.Value < 0 || e.Value > c.constMax {
			return nil, reject("immediate %d exceeds the ALU's %d-bit operand", e.Value, bitsFor(c.constMax))
		}
		return ast.CloneExpr(e), nil
	case *ast.Field:
		return ast.CloneExpr(e), nil
	case *ast.State:
		// A state read becomes the owning atom's exported wire: the old
		// value for reads before the atom's writes, the new value after.
		info := c.stateWire[e.Name]
		if info == nil {
			// Never-written state: reads as its initial value; Domino
			// still allocates an atom for it. Treat as old wire of a
			// fresh passive atom.
			info = newAtomInfo([]string{e.Name})
			c.atoms = append(c.atoms, info)
			c.stateWire[e.Name] = info
		}
		wire := c.wireName(e.Name, stmtIdx, info)
		if wire == "" {
			return nil, reject("read of state %s interleaves with its updates", e.Name)
		}
		return &ast.Field{Name: wire}, nil
	case *ast.Unary:
		x, r := c.flatten(e.X, stmtIdx)
		if r != nil {
			return nil, r
		}
		switch e.Op {
		case ast.OpBitNot:
			return c.emitOp(&ast.Unary{Op: ast.OpBitNot, X: x}), nil
		case ast.OpNot:
			// !x lowers to the stateless eqi instruction: x == 0.
			return c.emitOp(&ast.Binary{Op: ast.OpEq, X: x, Y: &ast.Num{Value: 0}}), nil
		case ast.OpNeg:
			// -x lowers to 0 - x... but sub takes two containers; Domino
			// materializes the zero, so: const 0 then sub.
			zero := c.emitOp(&ast.Num{Value: 0})
			return c.emitOp(&ast.Binary{Op: ast.OpSub, X: zero, Y: x}), nil
		}
		return nil, reject("unary operator %s unsupported by stateless ALU", e.Op)
	case *ast.Binary:
		return c.flattenBinary(e, stmtIdx)
	case *ast.Ternary:
		return c.flattenTernary(e, stmtIdx)
	default:
		return nil, reject("expression %s unsupported", e)
	}
}

func bitsFor(max int64) int {
	b := 0
	for v := max; v > 0; v >>= 1 {
		b++
	}
	return b
}

// emitOp appends a three-address operation and returns the temp that holds
// its result.
func (c *compiler) emitOp(expr ast.Expr) ast.Expr {
	t := c.newTemp()
	c.flat = append(c.flat, &ast.Assign{LHS: ast.LValue{Name: t, IsField: true}, RHS: expr})
	c.ops = append(c.ops, &opNode{dst: "pkt." + t, expr: expr})
	return &ast.Field{Name: t}
}

// statelessBinOps lists the binary operators the Banzai-style stateless ALU
// implements directly on two container operands.
var statelessBinOps = map[ast.Op]bool{
	ast.OpAdd: true, ast.OpSub: true,
	ast.OpBitAnd: true, ast.OpBitOr: true, ast.OpBitXor: true,
	ast.OpEq: true, ast.OpNe: true, ast.OpLt: true, ast.OpGe: true,
}

func (c *compiler) flattenBinary(e *ast.Binary, stmtIdx int) (ast.Expr, *Result) {
	switch e.Op {
	case ast.OpLAnd, ast.OpLOr:
		// Logical operators over 0/1 comparison results lower to bitwise
		// ones; Domino requires boolean-typed operands here.
		if !isBooleanExpr(e.X) || !isBooleanExpr(e.Y) {
			return nil, reject("logical %s over non-boolean operands unsupported", e.Op)
		}
		x, r := c.flatten(e.X, stmtIdx)
		if r != nil {
			return nil, r
		}
		y, r := c.flatten(e.Y, stmtIdx)
		if r != nil {
			return nil, r
		}
		op := ast.OpBitAnd
		if e.Op == ast.OpLOr {
			op = ast.OpBitOr
		}
		return c.emitOp(&ast.Binary{Op: op, X: x, Y: y}), nil
	case ast.OpLe, ast.OpGt:
		// a <= b rewrites to b >= a; a > b to b < a (operand swap is one
		// of the baseline's legal rewrites, since the hardware only has
		// lt and ge).
		swapped := &ast.Binary{Op: ast.OpGe, X: e.Y, Y: e.X}
		if e.Op == ast.OpGt {
			swapped = &ast.Binary{Op: ast.OpLt, X: e.Y, Y: e.X}
		}
		return c.flattenBinary(swapped, stmtIdx)
	}
	if !statelessBinOps[e.Op] {
		return nil, reject("operator %s unsupported by stateless ALU", e.Op)
	}
	x, r := c.flatten(e.X, stmtIdx)
	if r != nil {
		return nil, r
	}
	y, r := c.flatten(e.Y, stmtIdx)
	if r != nil {
		return nil, r
	}
	// Immediate operands: add/sub/eq have immediate forms; the other
	// operators need the constant materialized by a const instruction.
	if n, ok := y.(*ast.Num); ok {
		switch e.Op {
		case ast.OpAdd, ast.OpSub, ast.OpEq:
			// direct immediate form
		default:
			y = c.emitOp(&ast.Num{Value: n.Value})
		}
	}
	if _, ok := x.(*ast.Num); ok {
		// Constant on the left has no immediate form (deliberately: the
		// hardware's operand A is always a container).
		x = c.emitOp(x)
	}
	return c.emitOp(&ast.Binary{Op: e.Op, X: x, Y: y}), nil
}

func (c *compiler) flattenTernary(e *ast.Ternary, stmtIdx int) (ast.Expr, *Result) {
	// Boolean collapsing: cond ? 1 : 0 is just cond when cond is boolean.
	if isBooleanExpr(e.Cond) {
		if tn, ok := e.T.(*ast.Num); ok {
			if fn, ok := e.F.(*ast.Num); ok && tn.Value == 1 && fn.Value == 0 {
				return c.flatten(e.Cond, stmtIdx)
			}
		}
	}
	cond, r := c.flatten(e.Cond, stmtIdx)
	if r != nil {
		return nil, r
	}
	t, r := c.flatten(e.T, stmtIdx)
	if r != nil {
		return nil, r
	}
	f, r := c.flatten(e.F, stmtIdx)
	if r != nil {
		return nil, r
	}
	// The stateless cond instruction computes A ? B : imm. Direct form
	// needs a constant else-arm; a constant then-arm uses the inverted
	// condition (one more rewrite rule). Two non-constant arms exceed the
	// ALU's two input muxes.
	if _, ok := f.(*ast.Num); ok {
		if _, ok := t.(*ast.Num); ok {
			// Both arms constant: materialize the then-arm, since operand
			// B of the cond instruction is a container.
			t = c.emitOp(t)
		}
		return c.emitOp(&ast.Ternary{Cond: cond, T: t, F: f}), nil
	}
	if _, ok := t.(*ast.Num); ok {
		notCond := c.emitOp(&ast.Binary{Op: ast.OpEq, X: cond, Y: &ast.Num{Value: 0}})
		return c.emitOp(&ast.Ternary{Cond: notCond, T: f, F: t}), nil
	}
	return nil, reject("conditional with two non-constant arms exceeds the stateless ALU's operand muxes")
}

// isBooleanExpr reports whether an expression statically yields 0/1.
func isBooleanExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Binary:
		return e.Op.IsComparison()
	case *ast.Unary:
		return e.Op == ast.OpNot
	case *ast.Num:
		return e.Value == 0 || e.Value == 1
	}
	return false
}

// wireName resolves a state read to the atom's old or new output wire. A
// read in the same top-level statement as the variable's only write sees
// the old value: it is either the guard (evaluated before the update) or a
// read in the complementary branch, where old and new coincide. Reads
// strictly after the last write see the new value; anything interleaved is
// rejected.
func (c *compiler) wireName(state string, readIdx int, info *atomInfo) string {
	first, last := info.firstIdx[state], info.writeIdx[state]
	switch {
	case last < 0 || readIdx < first:
		return "_old_" + state
	case readIdx == first && last == first:
		return "_old_" + state
	case readIdx > last:
		return "_new_" + state
	default:
		// Read between two writes at different statements.
		return ""
	}
}

// checkNoReadAfterWriteInBranch rejects the one pattern the old/new wire
// classification cannot express: reading a state variable later in the same
// if-branch that already wrote it (e.g. "if (c) { s = 1; pkt.x = s; }").
// Reads after writes at *top level* are fine — they resolve to the atom's
// new-value wire.
func (c *compiler) checkNoReadAfterWriteInBranch() *Result {
	readsState := func(e ast.Expr, written map[string]bool) string {
		bad := ""
		ast.WalkExprs([]ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "x", IsField: true}, RHS: e}},
			func(e ast.Expr) {
				if s, ok := e.(*ast.State); ok && written[s.Name] {
					bad = s.Name
				}
			})
		return bad
	}
	// scan walks one branch scope, accumulating writes and flagging any
	// later read of an already-written state within the same scope.
	var scan func(stmts []ast.Stmt, written map[string]bool) *Result
	scan = func(stmts []ast.Stmt, written map[string]bool) *Result {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.Assign:
				if bad := readsState(s.RHS, written); bad != "" {
					return reject("state %s read after write within one branch", bad)
				}
				if !s.LHS.IsField {
					written[s.LHS.Name] = true
				}
			case *ast.If:
				if bad := readsState(s.Cond, written); bad != "" {
					return reject("condition reads state %s written earlier in the same branch", bad)
				}
				for _, body := range [][]ast.Stmt{s.Then, s.Else} {
					inner := map[string]bool{}
					for k := range written {
						inner[k] = true
					}
					if r := scan(body, inner); r != nil {
						return r
					}
				}
			}
		}
		return nil
	}
	// Apply to every top-level if-branch; top-level assignments are exempt.
	for _, s := range c.prog.Stmts {
		if ifs, ok := s.(*ast.If); ok {
			for _, body := range [][]ast.Stmt{ifs.Then, ifs.Else} {
				if r := scan(body, map[string]bool{}); r != nil {
					return r
				}
			}
		}
	}
	return nil
}

// --- Scheduling ------------------------------------------------------------------

// schedule assigns stages by ASAP dependency levels and assembles the
// result.
func (c *compiler) schedule() *Result {
	// Producer stages: raw packet fields are available at stage 0; an op
	// or atom placed in stage i produces values consumable at stage i+1.
	avail := map[string]int{} // value name -> first stage it can be consumed
	vars := c.prog.Variables()
	for _, f := range vars.Fields {
		avail["pkt."+f] = 0
	}

	// Atoms depend only on raw fields and constants (the matcher enforced
	// that), so they are placed at stage 0 and their wires are available
	// from stage 1.
	for _, a := range c.atoms {
		a.stage = 0
		for _, s := range a.states {
			avail["pkt._old_"+s] = 1
			avail["pkt._new_"+s] = 1
		}
	}

	// Ops in c.ops are already topologically ordered by construction.
	maxStage := 0
	hasAtoms := len(c.atoms) > 0
	for _, op := range c.ops {
		stage := 0
		ast.WalkExprs([]ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "x", IsField: true}, RHS: op.expr}},
			func(e ast.Expr) {
				if f, ok := e.(*ast.Field); ok {
					if s, ok := avail["pkt."+f.Name]; ok && s > stage {
						stage = s
					}
				}
			})
		op.stage = stage
		if isMove(op.expr) {
			// Pure moves are realized by output-mux routing, consuming no
			// ALU and adding no stage; the destination aliases its source
			// availability.
			avail[op.dst] = stage
			continue
		}
		avail[op.dst] = stage + 1
		if stage > maxStage {
			maxStage = stage
		}
	}

	realOps := 0
	for _, op := range c.ops {
		if !isMove(op.expr) {
			realOps++
		}
	}
	nStages := maxStage + 1
	if !hasAtoms && realOps == 0 {
		nStages = 0
	}
	pipe := &Pipeline{Stages: make([]Stage, nStages)}
	if hasAtoms && nStages == 0 {
		pipe.Stages = make([]Stage, 1)
		nStages = 1
	}
	for _, a := range c.atoms {
		pipe.Stages[a.stage].Atoms = append(pipe.Stages[a.stage].Atoms, PlacedAtom{
			States: a.states, Kind: c.kind,
		})
	}
	for _, op := range c.ops {
		if isMove(op.expr) {
			continue
		}
		pipe.Stages[op.stage].Ops = append(pipe.Stages[op.stage].Ops, PlacedOp{Dst: op.dst, Expr: op.expr})
	}

	usage := pisa.Usage{Stages: nStages}
	for _, st := range pipe.Stages {
		n := len(st.Ops) + len(st.Atoms)
		usage.TotalALUs += n
		if n > usage.MaxALUsPerStage {
			usage.MaxALUsPerStage = n
		}
	}

	flat := c.buildFlat()
	return &Result{OK: true, Pipeline: pipe, Flat: flat, Usage: usage}
}

// buildFlat assembles the executable predicated program: the atoms' old
// wires, the state-update skeleton (the original control flow with field
// assignments stripped — exactly what each atom computes), the new wires,
// and finally the flattened stateless operations that consume the wires.
// The result is semantically equivalent to the source on the source's own
// variables; temporaries and wires live in fields prefixed "_".
func (c *compiler) buildFlat() *ast.Program {
	var stmts []ast.Stmt
	states := append([]string{}, c.prog.Variables().States...)
	sort.Strings(states)
	for _, s := range states {
		stmts = append(stmts, &ast.Assign{
			LHS: ast.LValue{Name: "_old_" + s, IsField: true},
			RHS: &ast.State{Name: s},
		})
	}
	stmts = append(stmts, stripFieldWrites(ast.CloneStmts(c.prog.Stmts))...)
	for _, s := range states {
		stmts = append(stmts, &ast.Assign{
			LHS: ast.LValue{Name: "_new_" + s, IsField: true},
			RHS: &ast.State{Name: s},
		})
	}
	stmts = append(stmts, c.flat...)
	flat := &ast.Program{
		Name:  c.prog.Name + "_flat",
		Stmts: stmts,
		Init:  map[string]int64{},
	}
	for k, v := range c.prog.Init {
		flat.Init[k] = v
	}
	return flat
}

// stripFieldWrites removes packet-field assignments, leaving the state
// skeleton (conditions are pure, so removing field writes cannot change
// state evolution: any condition reading a program-written field would
// have been rejected earlier as a wire violation — fields written by the
// program are never read by guards in matched programs).
func stripFieldWrites(stmts []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			if !s.LHS.IsField {
				out = append(out, s)
			}
		case *ast.If:
			out = append(out, &ast.If{
				Cond: s.Cond,
				Then: stripFieldWrites(s.Then),
				Else: stripFieldWrites(s.Else),
			})
		}
	}
	return out
}

// isMove reports a pure copy (field/const to field), realizable by routing.
func isMove(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Field, *ast.Num:
		return true
	}
	return false
}
