package domino

import (
	"repro/internal/ast"
)

// Simplify performs the baseline's preprocessing rewrites: constant folding
// of ring operations and elimination of arithmetic identities. These are
// the cheap, always-sound AST rewrites a classical compiler applies before
// pattern matching; they neutralize some semantics-preserving mutations
// (x+0, x*1, double negation, split constants) while others — commuted
// operands, flipped branches, re-associated sums over variables — still
// defeat the syntactic atom matcher, which is the behaviour Table 2 of the
// paper measures.
//
// Every rewrite here must be sound at *all* bit widths, because compiled
// programs run at widths the compiler does not know. Addition, subtraction
// and multiplication fold soundly (truncation is a ring homomorphism);
// comparisons between constants do NOT fold, since a constant's sign
// depends on the width it is truncated to.
func Simplify(p *ast.Program) *ast.Program {
	q := p.Clone()
	q.Stmts = simplifyStmts(q.Stmts)
	return q
}

func simplifyStmts(stmts []ast.Stmt) []ast.Stmt {
	out := make([]ast.Stmt, len(stmts))
	for i, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			out[i] = &ast.Assign{LHS: s.LHS, RHS: simplifyExpr(s.RHS)}
		case *ast.If:
			out[i] = &ast.If{
				Cond: simplifyExpr(s.Cond),
				Then: simplifyStmts(s.Then),
				Else: simplifyStmts(s.Else),
			}
		default:
			out[i] = s
		}
	}
	return out
}

func simplifyExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.Unary:
		x := simplifyExpr(e.X)
		switch e.Op {
		case ast.OpNeg:
			if n, ok := x.(*ast.Num); ok {
				return &ast.Num{Value: -n.Value}
			}
			// -(-e) == e at every width.
			if u, ok := x.(*ast.Unary); ok && u.Op == ast.OpNeg {
				return u.X
			}
		case ast.OpBitNot:
			// ~~e == e at every width.
			if u, ok := x.(*ast.Unary); ok && u.Op == ast.OpBitNot {
				return u.X
			}
		}
		return &ast.Unary{Op: e.Op, X: x}
	case *ast.Binary:
		x := simplifyExpr(e.X)
		y := simplifyExpr(e.Y)
		nx, xConst := x.(*ast.Num)
		ny, yConst := y.(*ast.Num)
		switch e.Op {
		case ast.OpAdd:
			if xConst && yConst {
				return &ast.Num{Value: nx.Value + ny.Value}
			}
			if yConst && ny.Value == 0 {
				return x
			}
			if xConst && nx.Value == 0 {
				return y
			}
		case ast.OpSub:
			if xConst && yConst {
				return &ast.Num{Value: nx.Value - ny.Value}
			}
			if yConst && ny.Value == 0 {
				return x
			}
		case ast.OpMul:
			if xConst && yConst {
				return &ast.Num{Value: nx.Value * ny.Value}
			}
			if yConst && ny.Value == 1 {
				return x
			}
			if xConst && nx.Value == 1 {
				return y
			}
			if (yConst && ny.Value == 0) || (xConst && nx.Value == 0) {
				return &ast.Num{Value: 0}
			}
		}
		return &ast.Binary{Op: e.Op, X: x, Y: y}
	case *ast.Ternary:
		return &ast.Ternary{
			Cond: simplifyExpr(e.Cond),
			T:    simplifyExpr(e.T),
			F:    simplifyExpr(e.F),
		}
	default:
		return e
	}
}
