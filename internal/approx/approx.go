// Package approx implements the paper's second future-work direction
// (§5.2, "Approximate Program Synthesis"): trading accuracy for data-plane
// resources.
//
// The idea (after Bornholt et al.'s approximate-synthesis framework the
// paper cites) is to weaken the CEGIS correctness condition from
//
//	∀x : S(x) = P(x, c)
//
// to
//
//	∀x : care(x) ≠ 0 → S(x) = P(x, c)
//
// where care is a programmer-supplied predicate over the packet and state
// describing the inputs whose behaviour matters — e.g. "counters below the
// overflow threshold", "RTTs inside the measurable window". Everything the
// unmodified Chipmunk pipeline needs carries over: the sketch, the SAT
// backend, the two-tier widths. Only the two CEGIS phases change: synthesis
// discards test inputs outside the care set, and verification conjoins the
// care predicate with the disagreement condition, so counterexamples are
// always inputs the programmer cares about.
//
// The payoff mirrors the paper's motivation: programs that do not fit a
// grid exactly often fit once the don't-care space absorbs the difference,
// saving stages or ALUs (see the package tests and the ablation bench).
package approx

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/arith"
	"repro/internal/ast"
	"repro/internal/circuit"
	"repro/internal/interp"
	"repro/internal/pisa"
	"repro/internal/sat"
	"repro/internal/sketch"
	"repro/internal/word"
)

// Options mirrors cegis.Options plus the care predicate.
type Options struct {
	// Care is a Domino expression over pkt.* and state variables; inputs
	// where it evaluates to zero are don't-cares. nil means exact
	// synthesis (care ≡ 1).
	Care ast.Expr
	// SynthWidth and VerifyWidth are the CEGIS tier widths (0 = 4 / 10).
	SynthWidth  word.Width
	VerifyWidth word.Width
	// MaxIters bounds CEGIS iterations. 0 means 64.
	MaxIters int
	// Seed drives initial test inputs.
	Seed int64
}

func (o *Options) synthWidth() word.Width {
	if o.SynthWidth == 0 {
		return 4
	}
	return o.SynthWidth
}

func (o *Options) verifyWidth() word.Width {
	if o.VerifyWidth == 0 {
		return 10
	}
	return o.VerifyWidth
}

func (o *Options) maxIters() int {
	if o.MaxIters == 0 {
		return 64
	}
	return o.MaxIters
}

// Result reports an approximate-synthesis run.
type Result struct {
	Feasible bool
	TimedOut bool
	Config   *pisa.Config
	Iters    int
	Elapsed  time.Duration
}

// Synthesize fits prog onto the grid, required to be correct only on
// inputs satisfying opts.Care.
func Synthesize(ctx context.Context, prog *ast.Program, grid pisa.GridSpec, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{}

	vars := prog.Variables()
	fields, states := vars.Fields, vars.States
	if len(fields) > grid.Width || len(states) > grid.StateSlots() {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	b := circuit.New()
	sk, err := sketch.New(b, grid, len(fields), len(states), sketch.Options{})
	if err != nil {
		return nil, err
	}
	solver := sat.New()
	cnf := circuit.NewCNF(b, solver)
	sk.AssertDomains(cnf)

	sw, vw := opts.synthWidth(), opts.verifyWidth()
	if mw := sk.MinWidth(); sw < mw {
		sw = mw
	}
	if vw < sw {
		vw = sw
	}

	// cares evaluates the care predicate concretely at width w.
	cares := func(x interp.Snapshot, w word.Width) (bool, error) {
		if opts.Care == nil {
			return true, nil
		}
		env := arith.NewEnv[uint64]()
		for _, f := range fields {
			env.Pkt[f] = w.Trunc(x.Pkt[f])
		}
		for _, s := range states {
			env.State[s] = w.Trunc(x.State[s])
		}
		v, err := arith.EvalExpr[uint64](arith.Conc{W: w}, opts.Care, env)
		if err != nil {
			return false, err
		}
		return word.Truthy(v), nil
	}

	addTest := func(x interp.Snapshot, w word.Width) error {
		in := interp.MustNew(w)
		spec, err := in.Run(prog, x)
		if err != nil {
			return err
		}
		fw := make([]circuit.Word, len(fields))
		for i, f := range fields {
			fw[i] = b.ConstWord(w.Trunc(x.Pkt[f]), w)
		}
		swd := make([]circuit.Word, len(states))
		for i, s := range states {
			swd[i] = b.ConstWord(w.Trunc(x.State[s]), w)
		}
		outF, outS := sk.Instantiate(w, fw, swd)
		for i, f := range fields {
			cnf.Assert(b.EqW(outF[i], b.ConstWord(spec.Pkt[f], w)))
		}
		for i, s := range states {
			cnf.Assert(b.EqW(outS[i], b.ConstWord(spec.State[s], w)))
		}
		return nil
	}

	// Seed with caring inputs only.
	rng := rand.New(rand.NewSource(opts.Seed))
	seeded := 0
	for attempts := 0; seeded < 3 && attempts < 200; attempts++ {
		x := interp.NewSnapshot()
		if attempts > 0 { // first attempt: all-zeros
			for _, f := range fields {
				x.Pkt[f] = sw.Trunc(rng.Uint64())
			}
			for _, s := range states {
				x.State[s] = sw.Trunc(rng.Uint64())
			}
		}
		ok, err := cares(x, sw)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := addTest(x, sw); err != nil {
			return nil, err
		}
		seeded++
	}

	for iter := 1; iter <= opts.maxIters(); iter++ {
		res.Iters = iter
		st, timedOut := solveChunked(ctx, solver)
		if timedOut {
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if st == sat.Unsat {
			res.Elapsed = time.Since(start)
			return res, nil
		}
		cfg := sk.ExtractConfig(cnf, fields, states, vw)

		cex, verified, timedOut, err := verify(ctx, prog, cfg, opts.Care, fields, states, vw)
		if err != nil {
			return nil, err
		}
		if timedOut {
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if verified {
			res.Feasible = true
			res.Config = cfg
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if err := addTest(cex, vw); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	return res, fmt.Errorf("approx: CEGIS did not converge after %d iterations", res.Iters)
}

// verify searches for a caring input where the pipeline and spec disagree.
func verify(ctx context.Context, prog *ast.Program, cfg *pisa.Config, care ast.Expr, fields, states []string, w word.Width) (interp.Snapshot, bool, bool, error) {
	b := circuit.New()
	cc := arith.Circ{B: b, W: w}
	env := arith.NewEnv[circuit.Word]()
	fw := make([]circuit.Word, len(fields))
	for i, f := range fields {
		fw[i] = b.InputWord("pkt."+f, w)
		env.Pkt[f] = fw[i]
	}
	swd := make([]circuit.Word, len(states))
	for i, s := range states {
		swd[i] = b.InputWord(s, w)
		env.State[s] = swd[i]
	}

	g := cfg.Grid
	g.WordWidth = w
	holes := pisa.MapHoles(cfg.Values, func(v uint64) circuit.Word { return b.ConstWord(v, w) })
	pipeF, pipeS := pisa.Datapath[circuit.Word](cc, g, holes, fw, swd)

	specEnv, err := arith.EvalProgram[circuit.Word](cc, prog, env)
	if err != nil {
		return interp.Snapshot{}, false, false, err
	}

	equal := circuit.True
	for i, f := range fields {
		equal = b.And(equal, b.EqW(pipeF[i], specEnv.Pkt[f]))
	}
	for i, s := range states {
		equal = b.And(equal, b.EqW(pipeS[i], specEnv.State[s]))
	}

	solver := sat.New()
	cnf := circuit.NewCNF(b, solver)
	// Disagreement AND care: don't-care inputs cannot refute.
	cnf.Assert(b.Not(equal))
	if care != nil {
		careW, err := arith.EvalExpr[circuit.Word](cc, care, env)
		if err != nil {
			return interp.Snapshot{}, false, false, err
		}
		cnf.Assert(b.NonZero(careW))
	}
	st, timedOut := solveChunked(ctx, solver)
	if timedOut {
		return interp.Snapshot{}, false, true, nil
	}
	if st == sat.Unsat {
		return interp.Snapshot{}, true, false, nil
	}
	cex := interp.NewSnapshot()
	for i, f := range fields {
		cex.Pkt[f] = cnf.WordValue(fw[i])
	}
	for i, s := range states {
		cex.State[s] = cnf.WordValue(swd[i])
	}
	return cex, false, false, nil
}

func solveChunked(ctx context.Context, s *sat.Solver) (sat.Status, bool) {
	for {
		select {
		case <-ctx.Done():
			return sat.Unknown, true
		default:
		}
		st, err := s.SolveWithBudget(2000)
		if err == nil {
			return st, false
		}
	}
}
