package approx

import (
	"context"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/pisa"
	"repro/internal/word"
)

func grid(stages, width int) pisa.GridSpec {
	return pisa.GridSpec{
		Stages:       stages,
		Width:        width,
		WordWidth:    10,
		StatelessALU: alu.Stateless{},
		StatefulALU:  alu.Stateful{Kind: alu.Counter},
	}
}

func synth(t *testing.T, src, care string, g pisa.GridSpec) *Result {
	t.Helper()
	prog := parser.MustParse("t", src)
	opts := Options{Seed: 3}
	if care != "" {
		c, err := parser.ParseExpr(care)
		if err != nil {
			t.Fatal(err)
		}
		opts.Care = c
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := Synthesize(ctx, prog, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestApproximationSavesAStage is the package's headline: pkt.out = pkt.a & 7
// needs two stages exactly (materialize the mask, then AND), but under the
// care predicate 0 <= pkt.a < 8 (comparisons are signed, so both bounds
// matter) the AND is the identity and fits one stage.
func TestApproximationSavesAStage(t *testing.T) {
	src := "pkt.out = pkt.a & 7;"

	exact := synth(t, src, "", grid(1, 2))
	if exact.Feasible {
		t.Fatal("mask-AND should not fit one stage exactly")
	}
	exact2 := synth(t, src, "", grid(2, 2))
	if !exact2.Feasible {
		t.Fatal("mask-AND should fit two stages exactly")
	}

	approxRes := synth(t, src, "pkt.a >= 0 && pkt.a < 8", grid(1, 2))
	if !approxRes.Feasible {
		t.Fatal("under care 0<=a<8 one stage must suffice")
	}

	// The approximate configuration must be exact on every caring input...
	const w = word.Width(10)
	cfg := approxRes.Config
	for a := uint64(0); a < 8; a++ {
		out, _ := cfg.Exec(map[string]uint64{"a": a, "out": 0}, nil)
		if out["out"] != a&7 {
			t.Fatalf("caring input %d: out=%d want %d", a, out["out"], a&7)
		}
	}
	// ...and is allowed (indeed expected) to differ somewhere outside.
	differs := false
	for a := uint64(8); a < w.Size(); a++ {
		out, _ := cfg.Exec(map[string]uint64{"a": a, "out": 0}, nil)
		if out["out"] != a&7 {
			differs = true
			break
		}
	}
	if !differs {
		t.Log("note: approximation happened to be exact everywhere (legal but unexpected)")
	}
}

// TestNilCareIsExact: with no care predicate the result must satisfy the
// spec on all inputs, same as plain CEGIS.
func TestNilCareIsExact(t *testing.T) {
	src := "pkt.out = pkt.a + 3;"
	res := synth(t, src, "", grid(1, 2))
	if !res.Feasible {
		t.Fatal("increment should fit")
	}
	prog := parser.MustParse("t", src)
	const w = word.Width(6)
	cfg := *res.Config
	cfg.Grid.WordWidth = w
	in := interp.MustNew(w)
	for a := uint64(0); a < w.Size(); a++ {
		snap := interp.NewSnapshot()
		snap.Pkt["a"] = a
		want, _ := in.Run(prog, snap)
		got, _ := cfg.Exec(map[string]uint64{"a": a, "out": 0}, nil)
		if got["out"] != want.Pkt["out"] {
			t.Fatalf("a=%d: got %d want %d", a, got["out"], want.Pkt["out"])
		}
	}
}

// TestCareOverState: the care predicate may constrain switch state, e.g.
// only small counter values matter (the measurement-sketch scenario of
// §5.2 where counters saturate).
func TestCareOverState(t *testing.T) {
	// s doubles each packet: needs s+s. The counter ALU cannot double
	// (only +const), so exact synthesis fails at any depth on this ALU;
	// but if we only care about s == 0, s stays 0 and the constant 0
	// update works.
	src := "s = s + s;"
	g := grid(1, 1)
	exact := synth(t, src, "", g)
	if exact.Feasible {
		t.Fatal("doubling should not fit the counter ALU exactly")
	}
	res := synth(t, src, "s == 0", g)
	if !res.Feasible {
		t.Fatal("under care s==0 the zero counter suffices")
	}
	_, state := res.Config.Exec(map[string]uint64{}, map[string]uint64{"s": 0})
	if state["s"] != 0 {
		t.Fatalf("caring trajectory violated: s=%d", state["s"])
	}
}

// TestUnsatisfiableEvenApproximately: if no hole assignment matches even on
// the care set, the result is infeasible.
func TestUnsatisfiableEvenApproximately(t *testing.T) {
	// Care set {a=1, a=2} but output must be a*a (1 and 4): the 1-wide
	// stateless datapath has no way to square... actually a*a on {1,2}
	// equals cond-style mappings, so use a harder care set {1,2,3}:
	// outputs 1,4,9 with 9 wrapping — no single ALU op yields that.
	src := "pkt.out = pkt.a * pkt.a;"
	res := synth(t, src, "pkt.a == 1 || pkt.a == 2 || pkt.a == 3", grid(1, 2))
	if res.Feasible {
		// Verify the claim before failing the test: maybe some op does
		// interpolate; then this test's premise is wrong and we check
		// correctness on the care set instead.
		for _, a := range []uint64{1, 2, 3} {
			out, _ := res.Config.Exec(map[string]uint64{"a": a, "out": 0}, nil)
			if out["out"] != a*a {
				t.Fatalf("feasible result wrong on care set: a=%d out=%d", a, out["out"])
			}
		}
		t.Log("note: hardware interpolated the care set; approximation succeeded legitimately")
	}
}

func TestCapacityPrecheck(t *testing.T) {
	src := "pkt.a = pkt.b + pkt.c;"
	res := synth(t, src, "", grid(1, 2)) // 3 fields, 2 containers
	if res.Feasible {
		t.Fatal("capacity violation should be infeasible")
	}
}

func TestTimeoutReported(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog := parser.MustParse("t", "pkt.out = pkt.a + 1;")
	res, err := Synthesize(ctx, prog, grid(1, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("cancelled context must report TimedOut")
	}
}
