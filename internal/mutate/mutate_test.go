package mutate

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/word"
)

// TestCorpusMutantsEquivalentExhaustive is the mutation generator's core
// property, checked the strongest available way: every mutant of every
// corpus program is exhaustively equivalent to its original at width 3.
func TestCorpusMutantsEquivalentExhaustive(t *testing.T) {
	in := interp.MustNew(3)
	for _, b := range programs.Corpus() {
		prog := b.Parse()
		muts := Generate(prog, 10, 42)
		if len(muts) != 10 {
			t.Fatalf("%s: generated %d mutants, want 10", b.Name, len(muts))
		}
		for i, m := range muts {
			eq, cex, err := in.Equivalent(prog, m.Program)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("%s mutant %d (%v) differs at %v:\n%s",
					b.Name, i, m.Applied, cex, m.Program.Print())
			}
		}
	}
}

// TestCorpusMutantsEquivalentAtVerifyWidth repeats the check with random
// sampling at the CEGIS verification width (10 bits), where constants no
// longer wrap.
func TestCorpusMutantsEquivalentAtVerifyWidth(t *testing.T) {
	const w = word.Width(10)
	in := interp.MustNew(w)
	rng := rand.New(rand.NewSource(77))
	for _, b := range programs.Corpus() {
		prog := b.Parse()
		vars := prog.Variables()
		for _, m := range Generate(prog, 10, 42) {
			for trial := 0; trial < 50; trial++ {
				snap := interp.NewSnapshot()
				for _, f := range vars.Fields {
					snap.Pkt[f] = w.Trunc(rng.Uint64())
				}
				for _, s := range vars.States {
					snap.State[s] = w.Trunc(rng.Uint64())
				}
				want, err := in.Run(prog, snap)
				if err != nil {
					t.Fatal(err)
				}
				got, err := in.Run(m.Program, snap)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want, vars.Fields, vars.States) {
					t.Fatalf("%s %s (%v) differs at %s", b.Name, m.Program.Name, m.Applied, snap)
				}
			}
		}
	}
}

func TestMutantsAreDistinct(t *testing.T) {
	prog := parser.MustParse("t", "if (s == 10) { s = 0; pkt.a = 1; } else { s = s + 1; pkt.a = 0; }")
	muts := Generate(prog, 10, 3)
	if len(muts) != 10 {
		t.Fatalf("generated %d", len(muts))
	}
	for i := range muts {
		if ast.EqualStmts(muts[i].Program.Stmts, prog.Stmts) {
			t.Fatalf("mutant %d equals the original", i)
		}
		for j := i + 1; j < len(muts); j++ {
			if ast.EqualStmts(muts[i].Program.Stmts, muts[j].Program.Stmts) {
				t.Fatalf("mutants %d and %d identical", i, j)
			}
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	prog := parser.MustParse("t", "s = s + pkt.v; pkt.r = s < 5;")
	a := Generate(prog, 10, 99)
	b := Generate(prog, 10, 99)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !ast.EqualStmts(a[i].Program.Stmts, b[i].Program.Stmts) {
			t.Fatalf("mutant %d differs across runs with same seed", i)
		}
	}
	c := Generate(prog, 10, 100)
	same := 0
	for i := range a {
		if i < len(c) && ast.EqualStmts(a[i].Program.Stmts, c[i].Program.Stmts) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical mutant sets")
	}
}

func TestAppliedOpsRecorded(t *testing.T) {
	prog := parser.MustParse("t", "s = s + 1;")
	for _, m := range Generate(prog, 5, 1) {
		if len(m.Applied) == 0 {
			t.Fatal("mutant without recorded operators")
		}
		if m.Program.Name == prog.Name {
			t.Fatal("mutant should be renamed")
		}
	}
}

func TestMutantsReparse(t *testing.T) {
	// Printed mutants must remain valid Domino source (CLI round-trip).
	for _, b := range programs.Corpus() {
		for _, m := range Generate(b.Parse(), 10, 8) {
			if _, err := parser.Parse(m.Program.Name, m.Program.Print()); err != nil {
				t.Fatalf("%s does not reparse: %v\n%s", m.Program.Name, err, m.Program.Print())
			}
		}
	}
}

func TestOperatorsAllReachable(t *testing.T) {
	// Over many mutants of a rich program, every operator kind should
	// eventually fire.
	src := `
int s = 0;
int u = 0;
if (pkt.a - s > 5) { s = s + 1 + 2; u = pkt.a; }
pkt.r = pkt.b < 3 ? pkt.c + 1 : 0;
if (pkt.c == 1) { pkt.q = 4; }
`
	prog := parser.MustParse("rich", src)
	seen := map[Op]bool{}
	for seedI := int64(0); seedI < 40; seedI++ {
		for _, m := range Generate(prog, 10, seedI) {
			for _, op := range m.Applied {
				seen[op] = true
			}
		}
	}
	all := []Op{
		OpCommute, OpAddZero, OpMulOne, OpDoubleNeg, OpBitNotNot, OpFlipIf,
		OpRelFlip, OpTernaryFlip, OpSubToAddNeg, OpNegateRel, OpConstSplit,
		OpAssocRotate, OpIfToTernary,
	}
	for _, op := range all {
		if !seen[op] {
			t.Errorf("operator %s never fired", op)
		}
	}
}

func TestNoSitesNoMutants(t *testing.T) {
	// A program with a single bare read offers only identity sites; those
	// still mutate it, so we get mutants. But an empty program offers
	// nothing.
	prog := &ast.Program{Name: "empty", Init: map[string]int64{}}
	if muts := Generate(prog, 5, 1); len(muts) != 0 {
		t.Fatalf("empty program produced %d mutants", len(muts))
	}
}

func TestRandomProgramsSurviveMutation(t *testing.T) {
	// Mutating randomly generated programs preserves equivalence
	// (exhaustive at width 2 over up to 5 variables).
	rng := rand.New(rand.NewSource(4))
	in := interp.MustNew(2)
	for trial := 0; trial < 30; trial++ {
		prog := randomProgram(rng)
		for _, m := range Generate(prog, 3, int64(trial)) {
			eq, cex, err := in.Equivalent(prog, m.Program)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("trial %d (%v): differs at %v\noriginal:\n%s\nmutant:\n%s",
					trial, m.Applied, cex, prog.Print(), m.Program.Print())
			}
		}
	}
}

// randomProgram builds a small random program over 2 fields and 1 state.
func randomProgram(rng *rand.Rand) *ast.Program {
	atoms := []func() ast.Expr{
		func() ast.Expr { return &ast.Num{Value: int64(rng.Intn(6))} },
		func() ast.Expr { return &ast.Field{Name: "a"} },
		func() ast.Expr { return &ast.Field{Name: "b"} },
		func() ast.Expr { return &ast.State{Name: "s"} },
	}
	ops := []ast.Op{ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpBitXor, ast.OpLt, ast.OpEq, ast.OpShl}
	var expr func(d int) ast.Expr
	expr = func(d int) ast.Expr {
		if d == 0 || rng.Intn(2) == 0 {
			return atoms[rng.Intn(len(atoms))]()
		}
		return &ast.Binary{Op: ops[rng.Intn(len(ops))], X: expr(d - 1), Y: expr(d - 1)}
	}
	stmts := []ast.Stmt{
		&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: expr(2)},
	}
	if rng.Intn(2) == 0 {
		stmts = append(stmts, &ast.If{
			Cond: expr(1),
			Then: []ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "s"}, RHS: expr(1)}},
			Else: []ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "b", IsField: true}, RHS: expr(1)}},
		})
	}
	return &ast.Program{Name: "rand", Stmts: stmts, Init: map[string]int64{"s": 0}}
}

// TestEachOperatorClassEquivalent isolates every mutation operator: each
// applicable site in a suite of rich programs is applied ALONE to a fresh
// clone, and the single-rewrite mutant must be interpreter-equivalent to
// the original — exhaustively at width 3, and on random packets at the
// CEGIS verification width (10 bits), where constants no longer wrap. This
// pins the per-class semantics-preservation property that the combined
// mutant tests above only check in aggregate, and verifies that every one
// of the 13 operator classes is actually exercised.
func TestEachOperatorClassEquivalent(t *testing.T) {
	sources := []string{
		// Arithmetic, comparison, and ternary coverage.
		`int s = 2;
		 s = s + pkt.a + 1;
		 pkt.r = pkt.a < pkt.b ? pkt.a - pkt.b : s * 3;
		 pkt.q = (pkt.a + pkt.b) + 4;`,
		// Branch coverage: flip_if, if_to_ternary, negate_rel.
		`int s = 0;
		 if (pkt.a >= 3) { s = s - 1; } else { s = s + 1; }
		 if (pkt.b == 2) { pkt.r = pkt.b; }
		 pkt.q = pkt.a != s;`,
		// Remaining relations and shifts.
		`int s = 5;
		 if (pkt.a <= pkt.b) { pkt.r = s; }
		 pkt.q = pkt.a > 1;`,
	}
	in3 := interp.MustNew(3)
	const w10 = word.Width(10)
	in10 := interp.MustNew(w10)
	rng := rand.New(rand.NewSource(21))
	applied := map[Op]int{}
	for pi, src := range sources {
		prog := parser.MustParse("percls", src)
		vars := prog.Variables()
		nSites := len(collectSites(prog.Clone()))
		for idx := 0; idx < nSites; idx++ {
			// collectSites walks the AST deterministically, so the idx-th
			// site on a fresh clone is the same rewrite every time.
			m := prog.Clone()
			sites := collectSites(m)
			if idx >= len(sites) {
				t.Fatalf("program %d: site list shrank: %d -> %d", pi, nSites, len(sites))
			}
			s := sites[idx]
			s.apply()
			applied[s.op]++
			eq, cex, err := in3.Equivalent(prog, m)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("program %d site %d (%s) differs at %v:\noriginal:\n%s\nmutant:\n%s",
					pi, idx, s.op, cex, prog.Print(), m.Print())
			}
			for trial := 0; trial < 20; trial++ {
				snap := interp.NewSnapshot()
				for _, f := range vars.Fields {
					snap.Pkt[f] = w10.Trunc(rng.Uint64())
				}
				for _, st := range vars.States {
					snap.State[st] = w10.Trunc(rng.Uint64())
				}
				want, err := in10.Run(prog, snap)
				if err != nil {
					t.Fatal(err)
				}
				got, err := in10.Run(m, snap)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want, vars.Fields, vars.States) {
					t.Fatalf("program %d site %d (%s) differs at width 10 on %s", pi, idx, s.op, snap)
				}
			}
		}
	}
	all := []Op{
		OpCommute, OpAddZero, OpMulOne, OpDoubleNeg, OpBitNotNot, OpFlipIf,
		OpRelFlip, OpTernaryFlip, OpSubToAddNeg, OpNegateRel, OpConstSplit,
		OpAssocRotate, OpIfToTernary,
	}
	for _, op := range all {
		if applied[op] == 0 {
			t.Errorf("operator class %s has no applicable site in the suite", op)
		}
	}
}
