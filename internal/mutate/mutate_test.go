package mutate

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/word"
)

// TestCorpusMutantsEquivalentExhaustive is the mutation generator's core
// property, checked the strongest available way: every mutant of every
// corpus program is exhaustively equivalent to its original at width 3.
func TestCorpusMutantsEquivalentExhaustive(t *testing.T) {
	in := interp.MustNew(3)
	for _, b := range programs.Corpus() {
		prog := b.Parse()
		muts := Generate(prog, 10, 42)
		if len(muts) != 10 {
			t.Fatalf("%s: generated %d mutants, want 10", b.Name, len(muts))
		}
		for i, m := range muts {
			eq, cex, err := in.Equivalent(prog, m.Program)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("%s mutant %d (%v) differs at %v:\n%s",
					b.Name, i, m.Applied, cex, m.Program.Print())
			}
		}
	}
}

// TestCorpusMutantsEquivalentAtVerifyWidth repeats the check with random
// sampling at the CEGIS verification width (10 bits), where constants no
// longer wrap.
func TestCorpusMutantsEquivalentAtVerifyWidth(t *testing.T) {
	const w = word.Width(10)
	in := interp.MustNew(w)
	rng := rand.New(rand.NewSource(77))
	for _, b := range programs.Corpus() {
		prog := b.Parse()
		vars := prog.Variables()
		for _, m := range Generate(prog, 10, 42) {
			for trial := 0; trial < 50; trial++ {
				snap := interp.NewSnapshot()
				for _, f := range vars.Fields {
					snap.Pkt[f] = w.Trunc(rng.Uint64())
				}
				for _, s := range vars.States {
					snap.State[s] = w.Trunc(rng.Uint64())
				}
				want, err := in.Run(prog, snap)
				if err != nil {
					t.Fatal(err)
				}
				got, err := in.Run(m.Program, snap)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want, vars.Fields, vars.States) {
					t.Fatalf("%s %s (%v) differs at %s", b.Name, m.Program.Name, m.Applied, snap)
				}
			}
		}
	}
}

func TestMutantsAreDistinct(t *testing.T) {
	prog := parser.MustParse("t", "if (s == 10) { s = 0; pkt.a = 1; } else { s = s + 1; pkt.a = 0; }")
	muts := Generate(prog, 10, 3)
	if len(muts) != 10 {
		t.Fatalf("generated %d", len(muts))
	}
	for i := range muts {
		if ast.EqualStmts(muts[i].Program.Stmts, prog.Stmts) {
			t.Fatalf("mutant %d equals the original", i)
		}
		for j := i + 1; j < len(muts); j++ {
			if ast.EqualStmts(muts[i].Program.Stmts, muts[j].Program.Stmts) {
				t.Fatalf("mutants %d and %d identical", i, j)
			}
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	prog := parser.MustParse("t", "s = s + pkt.v; pkt.r = s < 5;")
	a := Generate(prog, 10, 99)
	b := Generate(prog, 10, 99)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !ast.EqualStmts(a[i].Program.Stmts, b[i].Program.Stmts) {
			t.Fatalf("mutant %d differs across runs with same seed", i)
		}
	}
	c := Generate(prog, 10, 100)
	same := 0
	for i := range a {
		if i < len(c) && ast.EqualStmts(a[i].Program.Stmts, c[i].Program.Stmts) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical mutant sets")
	}
}

func TestAppliedOpsRecorded(t *testing.T) {
	prog := parser.MustParse("t", "s = s + 1;")
	for _, m := range Generate(prog, 5, 1) {
		if len(m.Applied) == 0 {
			t.Fatal("mutant without recorded operators")
		}
		if m.Program.Name == prog.Name {
			t.Fatal("mutant should be renamed")
		}
	}
}

func TestMutantsReparse(t *testing.T) {
	// Printed mutants must remain valid Domino source (CLI round-trip).
	for _, b := range programs.Corpus() {
		for _, m := range Generate(b.Parse(), 10, 8) {
			if _, err := parser.Parse(m.Program.Name, m.Program.Print()); err != nil {
				t.Fatalf("%s does not reparse: %v\n%s", m.Program.Name, err, m.Program.Print())
			}
		}
	}
}

func TestOperatorsAllReachable(t *testing.T) {
	// Over many mutants of a rich program, every operator kind should
	// eventually fire.
	src := `
int s = 0;
int u = 0;
if (pkt.a - s > 5) { s = s + 1 + 2; u = pkt.a; }
pkt.r = pkt.b < 3 ? pkt.c + 1 : 0;
if (pkt.c == 1) { pkt.q = 4; }
`
	prog := parser.MustParse("rich", src)
	seen := map[Op]bool{}
	for seedI := int64(0); seedI < 40; seedI++ {
		for _, m := range Generate(prog, 10, seedI) {
			for _, op := range m.Applied {
				seen[op] = true
			}
		}
	}
	all := []Op{
		OpCommute, OpAddZero, OpMulOne, OpDoubleNeg, OpBitNotNot, OpFlipIf,
		OpRelFlip, OpTernaryFlip, OpSubToAddNeg, OpNegateRel, OpConstSplit,
		OpAssocRotate, OpIfToTernary,
	}
	for _, op := range all {
		if !seen[op] {
			t.Errorf("operator %s never fired", op)
		}
	}
}

func TestNoSitesNoMutants(t *testing.T) {
	// A program with a single bare read offers only identity sites; those
	// still mutate it, so we get mutants. But an empty program offers
	// nothing.
	prog := &ast.Program{Name: "empty", Init: map[string]int64{}}
	if muts := Generate(prog, 5, 1); len(muts) != 0 {
		t.Fatalf("empty program produced %d mutants", len(muts))
	}
}

func TestRandomProgramsSurviveMutation(t *testing.T) {
	// Mutating randomly generated programs preserves equivalence
	// (exhaustive at width 2 over up to 5 variables).
	rng := rand.New(rand.NewSource(4))
	in := interp.MustNew(2)
	for trial := 0; trial < 30; trial++ {
		prog := randomProgram(rng)
		for _, m := range Generate(prog, 3, int64(trial)) {
			eq, cex, err := in.Equivalent(prog, m.Program)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatalf("trial %d (%v): differs at %v\noriginal:\n%s\nmutant:\n%s",
					trial, m.Applied, cex, prog.Print(), m.Program.Print())
			}
		}
	}
}

// randomProgram builds a small random program over 2 fields and 1 state.
func randomProgram(rng *rand.Rand) *ast.Program {
	atoms := []func() ast.Expr{
		func() ast.Expr { return &ast.Num{Value: int64(rng.Intn(6))} },
		func() ast.Expr { return &ast.Field{Name: "a"} },
		func() ast.Expr { return &ast.Field{Name: "b"} },
		func() ast.Expr { return &ast.State{Name: "s"} },
	}
	ops := []ast.Op{ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpBitXor, ast.OpLt, ast.OpEq, ast.OpShl}
	var expr func(d int) ast.Expr
	expr = func(d int) ast.Expr {
		if d == 0 || rng.Intn(2) == 0 {
			return atoms[rng.Intn(len(atoms))]()
		}
		return &ast.Binary{Op: ops[rng.Intn(len(ops))], X: expr(d - 1), Y: expr(d - 1)}
	}
	stmts := []ast.Stmt{
		&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: expr(2)},
	}
	if rng.Intn(2) == 0 {
		stmts = append(stmts, &ast.If{
			Cond: expr(1),
			Then: []ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "s"}, RHS: expr(1)}},
			Else: []ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "b", IsField: true}, RHS: expr(1)}},
		})
	}
	return &ast.Program{Name: "rand", Stmts: stmts, Init: map[string]int64{"s": 0}}
}
