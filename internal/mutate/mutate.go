// Package mutate generates semantics-preserving mutations of Domino
// programs, reproducing the paper's evaluation methodology (§4): "we
// mutated these programs in semantic-preserving ways to generate 10
// mutations of each of the 8 programs", because the originals were written
// to compile with Domino and a fair comparison needs syntactic diversity.
//
// Every operator below preserves program semantics at every bit width
// under two's-complement wrapping arithmetic — a property the test suite
// verifies exhaustively at small widths and randomly at the verification
// width. The operators deliberately include exactly the kinds of rewrites
// that break a syntactic pattern matcher while leaving semantics intact:
// commuting operands, inserting arithmetic identities, flipping branches
// and comparisons, re-associating sums, and converting between statement
// and expression conditionals.
package mutate

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
)

// Op names a mutation operator, for reporting which rewrites a mutant
// received.
type Op string

// The mutation operator catalog.
const (
	OpCommute     Op = "commute"        // a+b -> b+a (commutative operators)
	OpAddZero     Op = "add_zero"       // e -> e + 0
	OpMulOne      Op = "mul_one"        // e -> e * 1
	OpDoubleNeg   Op = "double_neg"     // e -> -(-e)
	OpBitNotNot   Op = "bitnot_not"     // e -> ~~e
	OpFlipIf      Op = "flip_if"        // if (c) A else B -> if (!c) B else A
	OpRelFlip     Op = "rel_flip"       // a < b -> b > a, etc.
	OpTernaryFlip Op = "ternary_flip"   // c ? t : f -> !c ? f : t
	OpSubToAddNeg Op = "sub_to_add_neg" // a - b -> a + (-b)
	OpNegateRel   Op = "negate_rel"     // a < b -> !(a >= b)
	OpConstSplit  Op = "const_split"    // k -> (k-1) + 1
	OpAssocRotate Op = "assoc_rotate"   // (a+b)+c -> a+(b+c)
	OpIfToTernary Op = "if_to_ternary"  // if (c) x = e -> x = c ? e : x
)

// Mutant is a generated program plus the operators applied to it.
type Mutant struct {
	Program *ast.Program
	Applied []Op
}

// site is one applicable rewrite on a cloned AST.
type site struct {
	op    Op
	apply func()
}

// Generate derives n distinct mutants of prog, deterministically from seed.
// Each mutant receives one or two rewrites at random sites. Mutants are
// pairwise structurally distinct and distinct from the original.
func Generate(prog *ast.Program, n int, seed int64) []Mutant {
	rng := rand.New(rand.NewSource(seed))
	var out []Mutant
	var shapes []*ast.Program
	for attempts := 0; len(out) < n && attempts < n*40; attempts++ {
		m := prog.Clone()
		m.Name = fmt.Sprintf("%s_mut%d", prog.Name, len(out))
		var applied []Op
		rounds := 2 + rng.Intn(2)
		for r := 0; r < rounds; r++ {
			sites := collectSites(m)
			if len(sites) == 0 {
				break
			}
			// Pick an operator uniformly first, then a site within it:
			// identity insertions apply at every expression slot and
			// would otherwise dominate the site pool, skewing mutants
			// toward rewrites a constant folder undoes.
			byOp := map[Op][]site{}
			var ops []Op
			for _, s := range sites {
				if len(byOp[s.op]) == 0 {
					ops = append(ops, s.op)
				}
				byOp[s.op] = append(byOp[s.op], s)
			}
			group := byOp[ops[rng.Intn(len(ops))]]
			s := group[rng.Intn(len(group))]
			s.apply()
			applied = append(applied, s.op)
		}
		if len(applied) == 0 {
			break
		}
		if ast.EqualStmts(m.Stmts, prog.Stmts) {
			continue
		}
		dup := false
		for _, prev := range shapes {
			if ast.EqualStmts(m.Stmts, prev.Stmts) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		shapes = append(shapes, m)
		out = append(out, Mutant{Program: m, Applied: applied})
	}
	return out
}

// collectSites enumerates every applicable rewrite on the program.
func collectSites(p *ast.Program) []site {
	var sites []site

	// Expression-slot rewrites.
	forEachExprSlot(p.Stmts, func(slot *ast.Expr) {
		e := *slot
		switch e := e.(type) {
		case *ast.Binary:
			if e.Op.IsCommutative() {
				b := e
				sites = append(sites, site{OpCommute, func() { b.X, b.Y = b.Y, b.X }})
			}
			if rel, ok := relFlipped[e.Op]; ok {
				b := e
				flipped := rel
				sites = append(sites, site{OpRelFlip, func() {
					b.X, b.Y = b.Y, b.X
					b.Op = flipped
				}})
			}
			if inv, ok := relInverted[e.Op]; ok {
				b, s, op := e, slot, inv
				sites = append(sites, site{OpNegateRel, func() {
					*s = &ast.Unary{Op: ast.OpNot,
						X: &ast.Binary{Op: op, X: b.X, Y: b.Y}}
				}})
			}
			if e.Op == ast.OpSub {
				b, s := e, slot
				sites = append(sites, site{OpSubToAddNeg, func() {
					*s = &ast.Binary{Op: ast.OpAdd, X: b.X, Y: &ast.Unary{Op: ast.OpNeg, X: b.Y}}
				}})
			}
			if e.Op == ast.OpAdd {
				if inner, ok := e.X.(*ast.Binary); ok && inner.Op == ast.OpAdd {
					b, in, s := e, inner, slot
					sites = append(sites, site{OpAssocRotate, func() {
						*s = &ast.Binary{Op: ast.OpAdd, X: in.X,
							Y: &ast.Binary{Op: ast.OpAdd, X: in.Y, Y: b.Y}}
					}})
				}
			}
		case *ast.Ternary:
			t, s := e, slot
			sites = append(sites, site{OpTernaryFlip, func() {
				*s = &ast.Ternary{
					Cond: &ast.Unary{Op: ast.OpNot, X: t.Cond},
					T:    t.F,
					F:    t.T,
				}
			}})
		case *ast.Num:
			if e.Value > 0 {
				n, s := e, slot
				sites = append(sites, site{OpConstSplit, func() {
					*s = &ast.Binary{Op: ast.OpAdd,
						X: &ast.Num{Value: n.Value - 1}, Y: &ast.Num{Value: 1}}
				}})
			}
		}
		// Identity insertions apply to any expression slot.
		s := slot
		sites = append(sites,
			site{OpAddZero, func() {
				*s = &ast.Binary{Op: ast.OpAdd, X: *s, Y: &ast.Num{Value: 0}}
			}},
			site{OpMulOne, func() {
				*s = &ast.Binary{Op: ast.OpMul, X: *s, Y: &ast.Num{Value: 1}}
			}},
			site{OpDoubleNeg, func() {
				*s = &ast.Unary{Op: ast.OpNeg, X: &ast.Unary{Op: ast.OpNeg, X: *s}}
			}},
			site{OpBitNotNot, func() {
				*s = &ast.Unary{Op: ast.OpBitNot, X: &ast.Unary{Op: ast.OpBitNot, X: *s}}
			}},
		)
	})

	// Statement rewrites.
	forEachStmtList(p.Stmts, func(list []ast.Stmt, i int) {
		switch s := list[i].(type) {
		case *ast.If:
			ifs := s
			sites = append(sites, site{OpFlipIf, func() {
				ifs.Cond = &ast.Unary{Op: ast.OpNot, X: ifs.Cond}
				ifs.Then, ifs.Else = ifs.Else, ifs.Then
			}})
			if len(s.Then) == 1 && len(s.Else) == 0 {
				if a, ok := s.Then[0].(*ast.Assign); ok {
					l, idx, cond, asn := list, i, s.Cond, a
					sites = append(sites, site{OpIfToTernary, func() {
						l[idx] = &ast.Assign{LHS: asn.LHS, RHS: &ast.Ternary{
							Cond: cond, T: asn.RHS, F: asn.LHS.Ref(),
						}}
					}})
				}
			}
		}
	})

	return sites
}

var relFlipped = map[ast.Op]ast.Op{
	ast.OpLt: ast.OpGt,
	ast.OpLe: ast.OpGe,
	ast.OpGt: ast.OpLt,
	ast.OpGe: ast.OpLe,
}

// relInverted maps each comparison to its negation, so that
// rel(a,b) == !inv(a,b) at every width.
var relInverted = map[ast.Op]ast.Op{
	ast.OpEq: ast.OpNe,
	ast.OpNe: ast.OpEq,
	ast.OpLt: ast.OpGe,
	ast.OpLe: ast.OpGt,
	ast.OpGt: ast.OpLe,
	ast.OpGe: ast.OpLt,
}

// forEachExprSlot visits every position in the statement tree that holds an
// expression, passing a pointer through which the expression can be
// replaced.
func forEachExprSlot(stmts []ast.Stmt, fn func(*ast.Expr)) {
	var walkExpr func(slot *ast.Expr)
	walkExpr = func(slot *ast.Expr) {
		fn(slot)
		switch e := (*slot).(type) {
		case *ast.Unary:
			walkExpr(&e.X)
		case *ast.Binary:
			walkExpr(&e.X)
			walkExpr(&e.Y)
		case *ast.Ternary:
			walkExpr(&e.Cond)
			walkExpr(&e.T)
			walkExpr(&e.F)
		}
	}
	var walkStmts func([]ast.Stmt)
	walkStmts = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Assign:
				walkExpr(&s.RHS)
			case *ast.If:
				walkExpr(&s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			}
		}
	}
	walkStmts(stmts)
}

// forEachStmtList visits every statement with its containing list and
// index, enabling in-place statement replacement.
func forEachStmtList(stmts []ast.Stmt, fn func(list []ast.Stmt, i int)) {
	for i, s := range stmts {
		fn(stmts, i)
		if ifs, ok := s.(*ast.If); ok {
			forEachStmtList(ifs.Then, fn)
			forEachStmtList(ifs.Else, fn)
		}
	}
}
