// Package backendtest is the conformance suite for backend.Backend
// implementations: a shared battery of properties every compile target
// must satisfy for the CEGIS core to be sound on it. New backends get
// these checks for free by adding one test that calls Run — the same
// pattern the standard library uses for filesystem and hash conformance.
//
// The properties are exactly the seams cegis.SynthesizeOn trusts:
//
//   - the hole inventory is consistent (HoleCount equals the inventory's
//     totals, names are unique, widths positive);
//   - a synthesized configuration decodes into something valid whose
//     variables echo the program's (decode(encode) identity at the
//     interface level);
//   - the decoded config's concrete interpreter agrees with its own
//     symbolic re-encoding on random inputs — the exact coherence the
//     verification phase relies on when it re-encodes an extracted
//     config instead of the sketch;
//   - the interpreter is deterministic and does not mutate its inputs,
//     which the difftest oracles and the solution cache assume;
//   - the backend's domain constraints carry named constraint groups from
//     the shared vocabulary when groups are enabled, and are emitted
//     bit-identically when they are not (the feasible path must not see
//     the forensics machinery);
//   - on a known-infeasible fixture (RunInfeasible), the UNSAT-core
//     forensics pass produces a minimal blame set whose every group maps
//     back to a real program entity or a documented domain family.
package backendtest

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/cegis"
	"repro/internal/circuit"
	"repro/internal/sat"
)

// Run executes the full conformance battery: be must synthesize prog at
// the given program size (known-feasible by construction of the caller's
// fixture) and the resulting configuration must satisfy every interface
// contract. seed feeds both CEGIS and the random probing.
func Run(t *testing.T, be backend.Backend, prog *ast.Program, size int, seed int64) {
	t.Helper()
	vars := prog.Variables()
	nf, ns := len(vars.Fields), len(vars.States)

	checkInventory(t, be, size, nf, ns)
	checkNamedGroups(t, be, size, nf, ns)
	checkSymmetrySeam(t, be, size, nf, ns)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := cegis.SynthesizeOn(ctx, prog, be, size, cegis.Options{Seed: seed})
	if err != nil {
		t.Fatalf("%s: synthesize: %v", be.Target(), err)
	}
	if !res.Feasible {
		t.Fatalf("%s: conformance fixture must be feasible at size %d (timedout=%v)", be.Target(), size, res.TimedOut)
	}
	cfg := res.TargetConfig
	if cfg == nil {
		t.Fatalf("%s: feasible result carries no TargetConfig", be.Target())
	}
	if cfg.Target() != be.Target() {
		t.Errorf("config target = %q, backend = %q", cfg.Target(), be.Target())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("%s: synthesized config invalid: %v", be.Target(), err)
	}
	gotF, gotS := cfg.Vars()
	if !sameStrings(gotF, vars.Fields) || !sameStrings(gotS, vars.States) {
		t.Errorf("%s: Vars() = (%v, %v), want (%v, %v)", be.Target(), gotF, gotS, vars.Fields, vars.States)
	}
	if err := cfg.RunWidth().Validate(); err != nil {
		t.Errorf("%s: RunWidth invalid: %v", be.Target(), err)
	}

	checkDeterminism(t, cfg, seed)
	checkSymbolicAgreement(t, cfg, seed)
}

// RunInfeasible executes the forensics half of the conformance battery:
// prog must be infeasible on be at the given size, and the explanation
// pass must produce a nonempty blame set, proven minimal by re-solve,
// whose every group is either a documented domain family or maps back to
// one of the program's packet fields or state variables.
func RunInfeasible(t *testing.T, be backend.Backend, prog *ast.Program, size int, seed int64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	res, err := cegis.Explain(ctx, prog, be, size, cegis.Options{Seed: seed})
	if err != nil {
		t.Fatalf("%s: explain: %v", be.Target(), err)
	}
	if res.Feasible || res.TimedOut || res.CapacityExceeded {
		t.Fatalf("%s: infeasible fixture expected at size %d, got %+v", be.Target(), size, res)
	}
	if len(res.Core) == 0 {
		t.Fatalf("%s: infeasible fixture produced an empty blame set", be.Target())
	}
	if !res.Minimal {
		t.Fatalf("%s: minimization did not complete", be.Target())
	}
	vars := prog.Variables()
	for _, g := range res.Core {
		if isDomainGroup(g) {
			continue
		}
		kind, output, ok := circuit.ParseOutputGroup(g)
		if !ok {
			t.Errorf("%s: blamed group %q is neither a domain family nor an output group", be.Target(), g)
			continue
		}
		pool := vars.Fields
		if kind == "state" {
			pool = vars.States
		}
		found := false
		for _, v := range pool {
			if v == output {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: blamed group %q names no %s variable of the program (%v/%v)",
				be.Target(), g, kind, vars.Fields, vars.States)
		}
	}
}

func isDomainGroup(g string) bool {
	switch g {
	case circuit.GroupOpcodeMask, circuit.GroupMuxRange,
		circuit.GroupStateAlloc, circuit.GroupFieldAlloc,
		circuit.GroupSymmetry:
		return true
	}
	return false
}

// checkSymmetrySeam pins the opt-in contract for symmetry breaking:
// AssertDomains may emit circuit.GroupSymmetry constraints exactly when
// the backend advertises them via backend.SymmetryBreaker. A backend
// that does not implement the interface (or reports false) must never
// emit the group — symmetry clauses are target-specific pruning, and a
// backend that has not vouched for their soundness on its datapath must
// not inherit them through the shared seam.
func checkSymmetrySeam(t *testing.T, be backend.Backend, size, nf, ns int) {
	t.Helper()
	wantSym := false
	if sb, ok := be.(backend.SymmetryBreaker); ok {
		wantSym = sb.SymmetryBreaking()
	}
	b := circuit.New()
	sk, err := be.NewSketch(b, size, nf, ns)
	if err != nil {
		t.Fatalf("%s: NewSketch: %v", be.Target(), err)
	}
	cnf := circuit.NewCNF(b, sat.New())
	cnf.EnableGroups()
	sk.AssertDomains(cnf)
	gotSym := false
	for _, g := range cnf.Groups() {
		if g == circuit.GroupSymmetry {
			gotSym = true
		}
	}
	if gotSym != wantSym {
		t.Errorf("%s: symmetry group emitted=%v, SymmetryBreaker opt-in=%v", be.Target(), gotSym, wantSym)
	}
}

// checkNamedGroups asserts the forensics contract on AssertDomains: with
// groups enabled every emitted domain constraint carries a name from the
// shared vocabulary, and with groups disabled (the default) the clause
// stream is bit-identical to a build that never mentions groups — the
// feasible path must not pay for, or be perturbed by, the machinery.
func checkNamedGroups(t *testing.T, be backend.Backend, size, nf, ns int) {
	t.Helper()
	build := func(enable bool) (*circuit.CNF, error) {
		b := circuit.New()
		sk, err := be.NewSketch(b, size, nf, ns)
		if err != nil {
			return nil, err
		}
		cnf := circuit.NewCNF(b, sat.New())
		if enable {
			cnf.EnableGroups()
		}
		sk.AssertDomains(cnf)
		return cnf, nil
	}
	gated, err := build(true)
	if err != nil {
		t.Fatalf("%s: NewSketch: %v", be.Target(), err)
	}
	groups := gated.Groups()
	if len(groups) == 0 {
		t.Fatalf("%s: AssertDomains emitted no named constraint groups", be.Target())
	}
	for _, g := range groups {
		if !isDomainGroup(g) {
			t.Errorf("%s: AssertDomains produced group %q outside the domain vocabulary", be.Target(), g)
		}
	}
	if got := len(gated.GroupAssumptions(groups)); got != len(groups) {
		t.Errorf("%s: %d groups but %d assumption selectors", be.Target(), len(groups), got)
	}
	plain, err := build(false)
	if err != nil {
		t.Fatalf("%s: NewSketch: %v", be.Target(), err)
	}
	// The gated build adds exactly one selector variable per group and one
	// extra literal per gated clause; the ungated build must match a
	// groups-free build exactly, which it does trivially since SetGroup is
	// a no-op without EnableGroups — so just pin the invariant the perf
	// baselines rely on: ungated NumVars/NumClauses are strictly smaller
	// than the gated build's (the selectors exist only when enabled).
	if plain.NumVars() >= gated.NumVars() {
		t.Errorf("%s: ungated build has %d vars, gated %d — selectors missing?",
			be.Target(), plain.NumVars(), gated.NumVars())
	}
}

// checkInventory verifies HoleCount against HoleInventory and basic
// sanity of names and widths.
func checkInventory(t *testing.T, be backend.Backend, size, nf, ns int) {
	t.Helper()
	b := circuit.New()
	sk, err := be.NewSketch(b, size, nf, ns)
	if err != nil {
		t.Fatalf("%s: NewSketch: %v", be.Target(), err)
	}
	holes, bits := sk.HoleCount()
	names, widths := sk.HoleInventory()
	if len(names) != len(widths) {
		t.Fatalf("%s: inventory lengths differ: %d names, %d widths", be.Target(), len(names), len(widths))
	}
	if len(names) != holes {
		t.Errorf("%s: HoleCount holes = %d, inventory has %d", be.Target(), holes, len(names))
	}
	sum := 0
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" {
			t.Errorf("%s: hole %d has empty name", be.Target(), i)
		}
		if seen[n] {
			t.Errorf("%s: duplicate hole name %q", be.Target(), n)
		}
		seen[n] = true
		if widths[i] < 1 {
			t.Errorf("%s: hole %q has width %d", be.Target(), n, widths[i])
		}
		sum += widths[i]
	}
	if sum != bits {
		t.Errorf("%s: HoleCount bits = %d, inventory sums to %d", be.Target(), bits, sum)
	}
	words := sk.HoleWords()
	if len(words) != holes {
		t.Errorf("%s: HoleWords returns %d words, inventory has %d holes", be.Target(), len(words), holes)
	}
	wsum := 0
	for i, w := range words {
		if len(w) < 1 {
			t.Errorf("%s: hole word %d is empty", be.Target(), i)
		}
		wsum += len(w)
	}
	if wsum != bits {
		t.Errorf("%s: HoleWords spans %d bits, inventory sums to %d — hole elimination would quotient the space",
			be.Target(), wsum, bits)
	}
	if err := sk.MinWidth().Validate(); err != nil {
		t.Errorf("%s: MinWidth invalid: %v", be.Target(), err)
	}
}

// checkDeterminism runs the concrete interpreter twice on the same input
// and verifies identical outputs and untouched input maps.
func checkDeterminism(t *testing.T, cfg backend.Config, seed int64) {
	t.Helper()
	fields, states := cfg.Vars()
	w := cfg.RunWidth()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 64; trial++ {
		pkt := map[string]uint64{}
		st := map[string]uint64{}
		for _, f := range fields {
			pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range states {
			st[s] = w.Trunc(rng.Uint64())
		}
		inPkt, inSt := cloneMap(pkt), cloneMap(st)
		p1, s1 := cfg.Exec(pkt, st)
		p2, s2 := cfg.Exec(pkt, st)
		if !sameMap(p1, p2) || !sameMap(s1, s2) {
			t.Fatalf("%s: Exec nondeterministic on pkt=%v state=%v", cfg.Target(), inPkt, inSt)
		}
		if !sameMap(pkt, inPkt) || !sameMap(st, inSt) {
			t.Fatalf("%s: Exec mutated its inputs: %v/%v -> %v/%v", cfg.Target(), inPkt, inSt, pkt, st)
		}
	}
}

// checkSymbolicAgreement evaluates the config's symbolic re-encoding as a
// concrete circuit and compares it with Exec on random inputs at the run
// width — the width verification re-encoded the extracted config at, so
// this is exactly the coherence CEGIS trusted.
func checkSymbolicAgreement(t *testing.T, cfg backend.Config, seed int64) {
	t.Helper()
	fields, states := cfg.Vars()
	ww := cfg.RunWidth()
	b := circuit.New()
	fw := make([]circuit.Word, len(fields))
	for i, f := range fields {
		fw[i] = b.InputWord("pkt_"+f, ww)
	}
	sw := make([]circuit.Word, len(states))
	for i, s := range states {
		sw[i] = b.InputWord("state_"+s, ww)
	}
	outF, outS := cfg.Symbolic(b, ww, fw, sw)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 64; trial++ {
		pkt := map[string]uint64{}
		st := map[string]uint64{}
		inputs := map[circuit.Bit]bool{}
		for i, f := range fields {
			v := ww.Trunc(rng.Uint64())
			pkt[f] = v
			circuit.SetWordInputs(inputs, fw[i], v)
		}
		for i, s := range states {
			v := ww.Trunc(rng.Uint64())
			st[s] = v
			circuit.SetWordInputs(inputs, sw[i], v)
		}
		wantP, wantS := cfg.Exec(pkt, st)
		for i, f := range fields {
			if got := b.EvalWord(inputs, outF[i]); got != wantP[f] {
				t.Fatalf("%s: width %d pkt.%s: symbolic=%d concrete=%d (input %v/%v)",
					cfg.Target(), ww, f, got, wantP[f], pkt, st)
			}
		}
		for i, s := range states {
			if got := b.EvalWord(inputs, outS[i]); got != wantS[s] {
				t.Fatalf("%s: width %d state %s: symbolic=%d concrete=%d (input %v/%v)",
					cfg.Target(), ww, s, got, wantS[s], pkt, st)
			}
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMap(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func cloneMap(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
