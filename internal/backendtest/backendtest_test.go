package backendtest

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/bpf"
	"repro/internal/pisa"
	"repro/internal/programs"
	"repro/internal/sketch"
)

// conformanceFixture is marple_new_flow: the cheapest stateful corpus
// program, feasible on both targets at small sizes (1 pipeline stage,
// 5 register slots).
func fixture(t *testing.T) (prog *programs.Benchmark, constBits int) {
	t.Helper()
	b, err := programs.ByName("marple_new_flow")
	if err != nil {
		t.Fatal(err)
	}
	return &b, b.ConstBits
}

func TestPISAConformance(t *testing.T) {
	b, constBits := fixture(t)
	be := sketch.PISABackend{
		Grid: pisa.GridSpec{
			Width:        b.Width,
			WordWidth:    10, // placeholder; CEGIS manages widths
			StatelessALU: alu.Stateless{ConstBits: constBits},
			StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: constBits},
		},
	}
	Run(t, be, b.Parse(), 1, 7)
}

func TestBPFConformance(t *testing.T) {
	b, constBits := fixture(t)
	be := bpf.Backend{Spec: bpf.MachineSpec{ConstBits: constBits}}
	Run(t, be, b.Parse(), 5, 1)
}

// TestPISASymmetryConformance runs the full battery against the grid
// backend with symmetry breaking opted in: the pruned encoding must
// still synthesize a correct config, and checkSymmetrySeam flips to
// requiring the symmetry group's presence.
func TestPISASymmetryConformance(t *testing.T) {
	b, constBits := fixture(t)
	be := sketch.PISABackend{
		Grid: pisa.GridSpec{
			Width:        b.Width,
			WordWidth:    10,
			StatelessALU: alu.Stateless{ConstBits: constBits},
			StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: constBits},
		},
		Opts: sketch.Options{SymmetryBreak: true},
	}
	Run(t, be, b.Parse(), 1, 7)
}

// The infeasible fixtures drive the forensics half of the battery:
// marple_reorder needs two pipeline stages on the grid, and
// marple_new_flow needs five register slots — one size below each is the
// cheapest proven-infeasible problem per target.
func TestPISAInfeasibleConformance(t *testing.T) {
	b, err := programs.ByName("marple_reorder")
	if err != nil {
		t.Fatal(err)
	}
	be := sketch.PISABackend{
		Grid: pisa.GridSpec{
			Width:        b.Width,
			WordWidth:    10,
			StatelessALU: alu.Stateless{ConstBits: b.ConstBits},
			StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		},
	}
	RunInfeasible(t, be, b.Parse(), 1, 7)
}

func TestBPFInfeasibleConformance(t *testing.T) {
	b, constBits := fixture(t)
	be := bpf.Backend{Spec: bpf.MachineSpec{ConstBits: constBits}}
	RunInfeasible(t, be, b.Parse(), 3, 1)
}
