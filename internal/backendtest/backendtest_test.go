package backendtest

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/bpf"
	"repro/internal/pisa"
	"repro/internal/programs"
	"repro/internal/sketch"
)

// conformanceFixture is marple_new_flow: the cheapest stateful corpus
// program, feasible on both targets at small sizes (1 pipeline stage,
// 5 register slots).
func fixture(t *testing.T) (prog *programs.Benchmark, constBits int) {
	t.Helper()
	b, err := programs.ByName("marple_new_flow")
	if err != nil {
		t.Fatal(err)
	}
	return &b, b.ConstBits
}

func TestPISAConformance(t *testing.T) {
	b, constBits := fixture(t)
	be := sketch.PISABackend{
		Grid: pisa.GridSpec{
			Width:        b.Width,
			WordWidth:    10, // placeholder; CEGIS manages widths
			StatelessALU: alu.Stateless{ConstBits: constBits},
			StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: constBits},
		},
	}
	Run(t, be, b.Parse(), 1, 7)
}

func TestBPFConformance(t *testing.T) {
	b, constBits := fixture(t)
	be := bpf.Backend{Spec: bpf.MachineSpec{ConstBits: constBits}}
	Run(t, be, b.Parse(), 5, 1)
}
