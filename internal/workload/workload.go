// Package workload generates synthetic packet traces for driving
// simulated pipelines — the traffic side of the evaluation substrate.
//
// The corpus programs are written, as in the paper, over a single logical
// flow; deployed switches run them per flow behind a match-action lookup.
// This package supplies both pieces: a deterministic multi-flow traffic
// generator with the heavy-tailed flow-size and bursty arrival structure
// real traces exhibit (Zipf-distributed flow sizes, on/off burst arrivals,
// occasional packet reordering), and a PerFlow wrapper that gives each
// flow its own state snapshot in front of a synthesized configuration —
// the "memory-heavy forwarding" half the paper's §2.1 contrasts with the
// compute-heavy transactions Chipmunk targets.
//
// Everything is deterministic given a seed, so examples, tests, and
// benchmarks reproduce exactly.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/pisa"
	"repro/internal/word"
)

// Packet is one generated packet: a flow identifier plus arbitrary field
// values (time, size, sequence number...).
type Packet struct {
	Flow   int
	Fields map[string]uint64
}

// Spec configures the generator.
type Spec struct {
	// Flows is the number of concurrent flows. Must be >= 1.
	Flows int
	// Packets is the trace length.
	Packets int
	// ZipfS is the skew of the flow-popularity distribution; 0 disables
	// skew (uniform). Typical Internet traffic is s ≈ 1.
	ZipfS float64
	// MeanGap is the mean inter-packet gap in ticks (>=1). Within a
	// burst, packets of a flow arrive back to back; between bursts the
	// gap stretches by BurstGapFactor.
	MeanGap int
	// BurstLen is the mean packets per burst (>= 1).
	BurstLen int
	// BurstGapFactor stretches inter-burst gaps. 0 means 8.
	BurstGapFactor int
	// ReorderProb is the per-packet probability of swapping with the next
	// packet of the same flow (sequence-number inversion).
	ReorderProb float64
	// Seed drives all randomness.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.Flows < 1 {
		s.Flows = 1
	}
	if s.Packets < 0 {
		s.Packets = 0
	}
	if s.MeanGap < 1 {
		s.MeanGap = 1
	}
	if s.BurstLen < 1 {
		s.BurstLen = 4
	}
	if s.BurstGapFactor == 0 {
		s.BurstGapFactor = 8
	}
	return s
}

// Generate produces the trace. Every packet carries the fields:
//
//	now      — arrival time in ticks (monotone per trace)
//	size     — packet size (64..1500, bimodal like real traffic)
//	seq      — per-flow sequence number, with ReorderProb inversions
//	rtt      — a per-flow base RTT plus jitter
//
// Field values are raw; truncate to a datapath width before feeding a
// pipeline (PerFlow does this automatically).
func Generate(spec Spec) []Packet {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))

	// Flow popularity: Zipf over flow ids.
	weights := make([]float64, spec.Flows)
	total := 0.0
	for i := range weights {
		w := 1.0
		if spec.ZipfS > 0 {
			w = 1.0 / math.Pow(float64(i+1), spec.ZipfS)
		}
		weights[i] = w
		total += w
	}
	pick := func() int {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return i
			}
		}
		return spec.Flows - 1
	}

	type flowState struct {
		seq      uint64
		baseRTT  uint64
		inBurst  int
		lastTime uint64
	}
	flows := make([]flowState, spec.Flows)
	for i := range flows {
		flows[i].baseRTT = uint64(5 + rng.Intn(25))
	}

	now := uint64(1)
	out := make([]Packet, 0, spec.Packets)
	for len(out) < spec.Packets {
		f := pick()
		st := &flows[f]
		// Burst structure: while in a burst, small gaps; at burst end, a
		// long gap for this flow (but global time advances per packet).
		gap := 1 + rng.Intn(spec.MeanGap)
		if st.inBurst <= 0 {
			st.inBurst = 1 + rng.Intn(2*spec.BurstLen)
			gap *= spec.BurstGapFactor
		}
		st.inBurst--
		now += uint64(gap)

		size := uint64(64)
		if rng.Float64() < 0.4 { // bimodal: ACK-sized vs MTU-sized
			size = uint64(1400 + rng.Intn(100))
		} else {
			size = uint64(64 + rng.Intn(200))
		}
		st.seq++
		pkt := Packet{Flow: f, Fields: map[string]uint64{
			"now":  now,
			"size": size,
			"seq":  st.seq,
			"rtt":  st.baseRTT + uint64(rng.Intn(10)),
		}}
		st.lastTime = now
		out = append(out, pkt)
	}

	// Reordering: swap adjacent same-flow packets with probability.
	if spec.ReorderProb > 0 {
		lastIdx := map[int]int{}
		for i := range out {
			f := out[i].Flow
			if j, ok := lastIdx[f]; ok && rng.Float64() < spec.ReorderProb {
				out[i].Fields["seq"], out[j].Fields["seq"] =
					out[j].Fields["seq"], out[i].Fields["seq"]
			}
			lastIdx[f] = i
		}
	}
	return out
}

// Stats summarizes a trace for reports and tests.
type Stats struct {
	Packets      int
	Flows        int
	TopFlowShare float64 // fraction of packets in the most popular flow
	Reordered    int     // packets whose seq is below the running per-flow max
}

// Summarize computes trace statistics.
func Summarize(trace []Packet) Stats {
	st := Stats{Packets: len(trace)}
	perFlow := map[int]int{}
	maxSeq := map[int]uint64{}
	for _, p := range trace {
		perFlow[p.Flow]++
		if p.Fields["seq"] < maxSeq[p.Flow] {
			st.Reordered++
		}
		if p.Fields["seq"] > maxSeq[p.Flow] {
			maxSeq[p.Flow] = p.Fields["seq"]
		}
	}
	st.Flows = len(perFlow)
	top := 0
	for _, n := range perFlow {
		if n > top {
			top = n
		}
	}
	if st.Packets > 0 {
		st.TopFlowShare = float64(top) / float64(st.Packets)
	}
	return st
}

// PerFlow runs a synthesized configuration with per-flow state — the
// match-action front half of a deployed switch program: flow id indexes a
// state table, the pipeline transforms (packet, state[flow]).
type PerFlow struct {
	cfg   *pisa.Config
	w     word.Width
	state map[int]map[string]uint64
}

// NewPerFlow wraps a configuration.
func NewPerFlow(cfg *pisa.Config) *PerFlow {
	return &PerFlow{cfg: cfg, w: cfg.Grid.WordWidth, state: map[int]map[string]uint64{}}
}

// Process pushes one packet through the pipeline against its flow's state,
// returning the output packet fields. Field values are truncated to the
// datapath width.
func (pf *PerFlow) Process(p Packet) map[string]uint64 {
	st, ok := pf.state[p.Flow]
	if !ok {
		st = map[string]uint64{}
		pf.state[p.Flow] = st
	}
	pkt := map[string]uint64{}
	for k, v := range p.Fields {
		pkt[k] = pf.w.Trunc(v)
	}
	outPkt, outState := pf.cfg.Exec(pkt, st)
	pf.state[p.Flow] = outState
	return outPkt
}

// StateOf returns a copy of one flow's current state.
func (pf *PerFlow) StateOf(flow int) map[string]uint64 {
	out := map[string]uint64{}
	for k, v := range pf.state[flow] {
		out[k] = v
	}
	return out
}

// FlowIDs returns the flows with state, sorted.
func (pf *PerFlow) FlowIDs() []int {
	ids := make([]int, 0, len(pf.state))
	for id := range pf.state {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// String renders stats for reports.
func (s Stats) String() string {
	return fmt.Sprintf("%d packets, %d flows, top flow %.0f%%, %d reordered",
		s.Packets, s.Flows, s.TopFlowShare*100, s.Reordered)
}

// Flatten serializes a trace into the flat layout the line-rate engine
// replays: per-packet flow ids plus a row-major packets × len(fields)
// value matrix in the given field order. Fields a packet doesn't carry
// read zero, mirroring how the simulators treat absent map keys. nFlows
// is one past the highest flow id seen (0 for an empty trace).
func Flatten(trace []Packet, fields []string) (flows []int, vals []uint64, nFlows int) {
	flows = make([]int, len(trace))
	vals = make([]uint64, len(trace)*len(fields))
	for i, p := range trace {
		flows[i] = p.Flow
		if p.Flow >= nFlows {
			nFlows = p.Flow + 1
		}
		row := vals[i*len(fields) : (i+1)*len(fields)]
		for k, name := range fields {
			row[k] = p.Fields[name]
		}
	}
	return flows, vals, nFlows
}
