package workload

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/programs"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Flows: 8, Packets: 500, ZipfS: 1, Seed: 3}
	a := Generate(spec)
	b := Generate(spec)
	if len(a) != len(b) || len(a) != 500 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Flow != b[i].Flow {
			t.Fatalf("packet %d: flows differ", i)
		}
		for k, v := range a[i].Fields {
			if b[i].Fields[k] != v {
				t.Fatalf("packet %d field %s differs", i, k)
			}
		}
	}
	c := Generate(Spec{Flows: 8, Packets: 500, ZipfS: 1, Seed: 4})
	diff := 0
	for i := range a {
		if a[i].Flow != c[i].Flow {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestTimeIsMonotone(t *testing.T) {
	trace := Generate(Spec{Flows: 4, Packets: 300, Seed: 1})
	prev := uint64(0)
	for i, p := range trace {
		if p.Fields["now"] <= prev {
			t.Fatalf("packet %d: time %d not after %d", i, p.Fields["now"], prev)
		}
		prev = p.Fields["now"]
	}
}

func TestSequenceNumbersPerFlow(t *testing.T) {
	trace := Generate(Spec{Flows: 3, Packets: 300, Seed: 2})
	count := map[int]uint64{}
	maxSeq := map[int]uint64{}
	for _, p := range trace {
		count[p.Flow]++
		if p.Fields["seq"] > maxSeq[p.Flow] {
			maxSeq[p.Flow] = p.Fields["seq"]
		}
	}
	for f, n := range count {
		if maxSeq[f] != n {
			t.Fatalf("flow %d: %d packets but max seq %d (no reordering requested)", f, n, maxSeq[f])
		}
	}
}

func TestZipfSkew(t *testing.T) {
	uniform := Summarize(Generate(Spec{Flows: 16, Packets: 4000, ZipfS: 0, Seed: 5}))
	skewed := Summarize(Generate(Spec{Flows: 16, Packets: 4000, ZipfS: 1.2, Seed: 5}))
	if skewed.TopFlowShare <= uniform.TopFlowShare {
		t.Fatalf("zipf should concentrate traffic: %.2f vs %.2f",
			skewed.TopFlowShare, uniform.TopFlowShare)
	}
	if skewed.TopFlowShare < 0.2 {
		t.Fatalf("s=1.2 over 16 flows should give the top flow >20%%: %.2f", skewed.TopFlowShare)
	}
}

func TestReordering(t *testing.T) {
	clean := Summarize(Generate(Spec{Flows: 4, Packets: 1000, Seed: 6}))
	if clean.Reordered != 0 {
		t.Fatalf("no reordering requested but %d reordered", clean.Reordered)
	}
	dirty := Summarize(Generate(Spec{Flows: 4, Packets: 1000, ReorderProb: 0.2, Seed: 6}))
	if dirty.Reordered == 0 {
		t.Fatal("requested reordering produced none")
	}
}

func TestStatsString(t *testing.T) {
	s := Summarize(Generate(Spec{Flows: 2, Packets: 10, Seed: 1}))
	if !strings.Contains(s.String(), "10 packets") {
		t.Fatalf("stats render: %s", s)
	}
}

func TestDefaults(t *testing.T) {
	trace := Generate(Spec{Packets: 5, Seed: 1}) // zero-value everything else
	if len(trace) != 5 {
		t.Fatalf("len %d", len(trace))
	}
	for _, p := range trace {
		if p.Flow != 0 {
			t.Fatal("single default flow expected")
		}
	}
	if got := Generate(Spec{Packets: -3, Seed: 1}); len(got) != 0 {
		t.Fatal("negative packet count should yield empty trace")
	}
}

// TestPerFlowIsolation drives the synthesized new-flow detector with
// per-flow state: exactly one new-flow flag per flow, regardless of
// interleaving — the property a shared-state run would violate.
func TestPerFlowIsolation(t *testing.T) {
	b, err := programs.ByName("marple_new_flow")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := core.Compile(ctx, b.Parse(), core.Options{
		Width:        b.Width,
		MaxStages:    b.MaxStages,
		StatelessALU: alu.Stateless{ConstBits: b.ConstBits},
		StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		Seed:         7,
	})
	if err != nil || !rep.Feasible {
		t.Fatalf("setup compile failed: %v", err)
	}

	pf := NewPerFlow(rep.Config)
	trace := Generate(Spec{Flows: 6, Packets: 400, ZipfS: 1, Seed: 9})
	newFlags := map[int]int{}
	for _, p := range trace {
		p.Fields["new_flow"] = 0
		out := pf.Process(p)
		if out["new_flow"] == 1 {
			newFlags[p.Flow]++
		}
	}
	seen := Summarize(trace).Flows
	if len(newFlags) != seen {
		t.Fatalf("flows flagged: %d, flows present: %d", len(newFlags), seen)
	}
	for f, n := range newFlags {
		if n != 1 {
			t.Fatalf("flow %d flagged %d times, want exactly once", f, n)
		}
	}
	if got := len(pf.FlowIDs()); got != seen {
		t.Fatalf("state table has %d flows, want %d", got, seen)
	}
}

// TestPerFlowMatchesInterpreter differential-tests the per-flow wrapper:
// each flow's trajectory must equal running the program per flow in the
// reference interpreter.
func TestPerFlowMatchesInterpreter(t *testing.T) {
	b, _ := programs.ByName("marple_reorder")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := core.Compile(ctx, b.Parse(), core.Options{
		Width:        b.Width,
		MaxStages:    b.MaxStages,
		StatelessALU: alu.Stateless{ConstBits: b.ConstBits},
		StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		Seed:         7,
	})
	if err != nil || !rep.Feasible {
		t.Fatalf("setup compile failed: %v", err)
	}
	prog := b.Parse()
	w := rep.Config.Grid.WordWidth
	in := interp.MustNew(w)

	pf := NewPerFlow(rep.Config)
	refState := map[int]map[string]uint64{}
	trace := Generate(Spec{Flows: 5, Packets: 300, ReorderProb: 0.15, Seed: 11})
	for i, p := range trace {
		p.Fields["reordered"] = 0
		got := pf.Process(p)

		snap := interp.NewSnapshot()
		for k, v := range p.Fields {
			snap.Pkt[k] = w.Trunc(v)
		}
		if st := refState[p.Flow]; st != nil {
			snap.State = st
		}
		want, err := in.Run(prog, snap)
		if err != nil {
			t.Fatal(err)
		}
		refState[p.Flow] = want.State
		if got["reordered"] != want.Pkt["reordered"] {
			t.Fatalf("packet %d flow %d: reordered=%d, interp says %d",
				i, p.Flow, got["reordered"], want.Pkt["reordered"])
		}
	}
}
