package sat

import (
	"math/rand"
	"testing"
)

// mkVars allocates n fresh variables.
func mkVars(s *Solver, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestTrivialSat(t *testing.T) {
	s := New()
	v := s.NewVar()
	if !s.AddClause(PosLit(v)) {
		t.Fatal("unit clause rejected")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(v) {
		t.Fatal("unit-propagated variable should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if s.AddClause(NegLit(v)) {
		t.Fatal("contradicting unit should report top-level conflict")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause should make formula unsat")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestTautologyAccepted(t *testing.T) {
	s := New()
	v := s.NewVar()
	if !s.AddClause(PosLit(v), NegLit(v)) {
		t.Fatal("tautology should be accepted")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	s.AddClause(PosLit(v), PosLit(v), PosLit(w))
	s.AddClause(NegLit(w))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.Value(v) || s.Value(w) {
		t.Fatalf("model v=%v w=%v, want v=true w=false", s.Value(v), s.Value(w))
	}
}

func TestChainImplication(t *testing.T) {
	// x0 and (x_i -> x_{i+1}) forces all true.
	s := New()
	const n = 50
	vs := mkVars(s, n)
	s.AddClause(PosLit(vs[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(NegLit(vs[i]), PosLit(vs[i+1]))
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	for i, v := range vs {
		if !s.Value(v) {
			t.Fatalf("var %d should be true", i)
		}
	}
}

func TestXorChainUnsat(t *testing.T) {
	// (a xor b), (b xor c), (a xor c) with odd parity is unsat:
	// encode each xor=1 as two clauses.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	xor1 := func(x, y Var) {
		s.AddClause(PosLit(x), PosLit(y))
		s.AddClause(NegLit(x), NegLit(y))
	}
	xor1(a, b)
	xor1(b, c)
	xor1(a, c)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes, always unsat and
// requires real conflict analysis to refute quickly.
func pigeonhole(s *Solver, pigeons, holes int) {
	p := make([][]Var, pigeons)
	for i := range p {
		p[i] = mkVars(s, holes)
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = PosLit(p[i][j])
		}
		s.AddClause(lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(NegLit(p[i][j]), NegLit(p[k][j]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want Unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5) // equal pigeons and holes: satisfiable
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5) = %v, want Sat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), PosLit(b)) // a -> b
	if got := s.Solve(PosLit(a), NegLit(b)); got != Unsat {
		t.Fatalf("Solve(a, !b) = %v, want Unsat", got)
	}
	// Same database must remain satisfiable without assumptions.
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	if got := s.Solve(PosLit(a)); got != Sat {
		t.Fatalf("Solve(a) = %v, want Sat", got)
	}
	if !s.Value(b) {
		t.Fatal("under assumption a, b must be true")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	vs := mkVars(s, 3)
	s.AddClause(PosLit(vs[0]), PosLit(vs[1]))
	if got := s.Solve(); got != Sat {
		t.Fatalf("first Solve = %v, want Sat", got)
	}
	s.AddClause(NegLit(vs[0]))
	s.AddClause(NegLit(vs[1]))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after narrowing, Solve = %v, want Unsat", got)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8) // hard enough to exceed a tiny budget
	st, err := s.SolveWithBudget(1)
	if err != ErrBudget || st != Unknown {
		t.Fatalf("SolveWithBudget(1) = (%v, %v), want (Unknown, ErrBudget)", st, err)
	}
	// Full solve must still work after a budgeted attempt.
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve after budget = %v, want Unsat", got)
	}
}

// brute checks satisfiability of a CNF over n vars by enumeration.
func brute(n int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(n); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m&(1<<uint(l.Var())) != 0
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// modelSatisfies checks the solver's model against the original CNF.
func modelSatisfies(s *Solver, cnf [][]Lit) bool {
	for _, cl := range cnf {
		sat := false
		for _, l := range cl {
			if s.Value(l.Var()) != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// TestRandomCNFAgainstBruteForce is the solver's main correctness property:
// on random 3-SAT near the phase transition, agree with exhaustive search,
// and return genuine models on SAT instances.
func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10) // 3..12 vars
		m := int(float64(n)*4.26) + rng.Intn(5)
		cnf := make([][]Lit, m)
		for i := range cnf {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New()
		mkVars(s, n)
		early := false
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				early = true
			}
		}
		got := s.Solve()
		want := brute(n, cnf)
		if early && want {
			t.Fatalf("trial %d: AddClause reported unsat but formula is sat", trial)
		}
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v (n=%d m=%d)", trial, got, want, n, m)
		}
		if got == Sat && !modelSatisfies(s, cnf) {
			t.Fatalf("trial %d: model does not satisfy formula", trial)
		}
	}
}

func TestRandomCNFWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(6)
		m := n * 3
		cnf := make([][]Lit, m)
		for i := range cnf {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		s := New()
		mkVars(s, n)
		ok := true
		for _, cl := range cnf {
			ok = s.AddClause(cl...) && ok
		}
		// Assume the first two variables; brute force with the assumptions
		// added as unit clauses.
		assume := []Lit{MkLit(0, rng.Intn(2) == 1), MkLit(1, rng.Intn(2) == 1)}
		withUnits := append(append([][]Lit{}, cnf...), []Lit{assume[0]}, []Lit{assume[1]})
		want := brute(n, withUnits)
		got := s.Solve(assume...)
		if !ok {
			// Formula already unsat at top level; assumptions cannot help.
			if want {
				t.Fatalf("trial %d: inconsistent top-level unsat", trial)
			}
			continue
		}
		if (got == Sat) != want {
			t.Fatalf("trial %d: solver=%v brute=%v under assumptions", trial, got, want)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	v := Var(13)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatal("Var round-trip failed")
	}
	if p.Neg() || !n.Neg() {
		t.Fatal("Neg flags wrong")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatal("Not is not an involution pair")
	}
	if p.String() != "14" || n.String() != "-14" {
		t.Fatalf("String() = %q / %q", p.String(), n.String())
	}
}

func TestStatsPopulated(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Fatalf("expected non-zero search stats, got %+v", st)
	}
	if st.MaxVar != 30 {
		t.Fatalf("MaxVar = %d, want 30", st.MaxVar)
	}
}

func TestQuickSelectMedian(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if m := quickSelectMedian(xs); m != 3 {
		t.Fatalf("median = %v, want 3", m)
	}
	xs = []float64{2, 1}
	if m := quickSelectMedian(xs); m != 2 {
		t.Fatalf("median of pair = %v, want 2", m)
	}
	xs = []float64{7}
	if m := quickSelectMedian(xs); m != 7 {
		t.Fatalf("median of singleton = %v, want 7", m)
	}
}

func TestHeapOrdering(t *testing.T) {
	act := make([]float64, 10)
	h := newVarHeap(&act)
	for i := 0; i < 10; i++ {
		act[i] = float64(i % 5)
		h.insert(Var(i))
	}
	act[3] = 100
	h.update(3)
	if top := h.removeMax(); top != 3 {
		t.Fatalf("removeMax = %d, want 3", top)
	}
	prev := 1e18
	for !h.empty() {
		v := h.removeMax()
		if act[v] > prev {
			t.Fatalf("heap order violated: %v after %v", act[v], prev)
		}
		prev = act[v]
	}
}

func BenchmarkSolverPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("PHP should be unsat")
		}
	}
}

func BenchmarkSolverRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		n := 60
		s := New()
		mkVars(s, n)
		for j := 0; j < int(float64(n)*4.2); j++ {
			var cl [3]Lit
			for k := range cl {
				cl[k] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
			}
			s.AddClause(cl[:]...)
		}
		s.Solve()
	}
}

// TestStatsDeltaSumsToCumulative runs several incremental solves against
// one solver, taking a delta after each; the deltas must sum exactly to
// the cumulative snapshot.
func TestStatsDeltaSumsToCumulative(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)

	var sum Stats
	add := func(d Stats) {
		sum.Conflicts += d.Conflicts
		sum.Decisions += d.Decisions
		sum.Propagations += d.Propagations
		sum.Restarts += d.Restarts
		sum.Learnt += d.Learnt
		sum.DeletedLearnt += d.DeletedLearnt
	}

	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(6,5) = %v, want Unsat", got)
	}
	first := s.StatsDelta()
	if first.Conflicts == 0 || first.Decisions == 0 {
		t.Fatalf("first delta should cover the whole solve: %+v", first)
	}
	add(first)

	// More incremental work on the same solver: a fresh satisfiable
	// sub-problem sharing the database.
	vs := mkVars(s, 8)
	for i := 0; i+1 < len(vs); i++ {
		s.AddClause(PosLit(vs[i]), PosLit(vs[i+1]))
	}
	s.Solve()
	add(s.StatsDelta())
	s.Solve(NegLit(vs[0]))
	add(s.StatsDelta())

	cum := s.Stats()
	if sum.Conflicts != cum.Conflicts || sum.Decisions != cum.Decisions ||
		sum.Propagations != cum.Propagations || sum.Restarts != cum.Restarts ||
		sum.Learnt != cum.Learnt || sum.DeletedLearnt != cum.DeletedLearnt {
		t.Fatalf("delta sum %+v != cumulative %+v", sum, cum)
	}

	// An immediate second call sees no new work.
	if d := s.StatsDelta(); d.Conflicts != 0 || d.Decisions != 0 || d.Propagations != 0 {
		t.Fatalf("idle delta should be zero: %+v", d)
	}
	// Levels pass through as current values.
	if d := s.StatsDelta(); d.MaxVar != cum.MaxVar || d.Clauses != cum.Clauses {
		t.Fatalf("levels should carry current values: %+v vs %+v", d, cum)
	}
}

func TestProgressCallback(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	var calls []int64
	s.SetProgress(10, func(st Stats) { calls = append(calls, st.Conflicts) })
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(8,7) = %v, want Unsat", got)
	}
	total := s.Stats().Conflicts
	if want := total / 10; int64(len(calls)) != want {
		t.Fatalf("progress called %d times for %d conflicts, want %d", len(calls), total, want)
	}
	for i, c := range calls {
		if c != int64(i+1)*10 {
			t.Fatalf("call %d at %d conflicts, want %d", i, c, (i+1)*10)
		}
	}
	// Disabling stops further calls.
	s.SetProgress(0, nil)
	n := len(calls)
	s.Solve()
	if len(calls) != n {
		t.Fatal("progress fired after being disabled")
	}
}

func TestStopHookImmediate(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	s.SetStop(func() bool { return true })
	st, err := s.SolveWithBudget(-1)
	if st != Unknown || err != ErrStopped {
		t.Fatalf("SolveWithBudget = %v, %v; want Unknown, ErrStopped", st, err)
	}
}

func TestStopHookMidSolve(t *testing.T) {
	// A hard UNSAT instance: without the stop the solve takes many
	// thousands of conflicts. Stop after the first poll fires.
	s := New()
	pigeonhole(s, 9, 8)
	var polls int
	s.SetStop(func() bool {
		polls++
		return polls > 1
	})
	st, err := s.SolveWithBudget(-1)
	if st != Unknown || err != ErrStopped {
		t.Fatalf("SolveWithBudget = %v, %v; want Unknown, ErrStopped", st, err)
	}
	if s.Stats().Conflicts == 0 {
		t.Fatal("solver stopped before doing any work")
	}
}

func TestStopHookClearedSolveCompletes(t *testing.T) {
	// A stop that fired must not poison later solves once cleared.
	s := New()
	pigeonhole(s, 6, 5)
	stop := true
	s.SetStop(func() bool { return stop })
	if st, err := s.SolveWithBudget(-1); st != Unknown || err != ErrStopped {
		t.Fatalf("stopped solve = %v, %v; want Unknown, ErrStopped", st, err)
	}
	stop = false
	if got := s.Solve(); got != Unsat {
		t.Fatalf("resumed solve = %v, want Unsat", got)
	}
	s.SetStop(nil)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("re-solve with hook cleared = %v, want Unsat", got)
	}
}

func TestStopHookNeverFiringKeepsResult(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	s.SetStop(func() bool { return false })
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	s2 := New()
	pigeonhole(s2, 5, 5)
	s2.SetStop(func() bool { return false })
	if got := s2.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
}
