// Reference solvers: deliberately naive decision procedures used only as
// testing oracles for the CDCL solver. The whole repository's correctness
// claim — synthesized configurations are *provably* equivalent to their
// Domino source — ultimately rests on this package, so the differential
// harness (internal/difftest, cmd/chipfuzz) and the package's own tests
// cross-check every CDCL verdict on small instances against two
// independent implementations that share no code with the optimized
// solver: exhaustive model enumeration and a textbook DPLL procedure.
//
// Both operate on a Formula (the clause-list interchange form), not on a
// Solver, so they cannot be perturbed by watch-list, clause-learning, or
// restart bugs. They are exponential and must only be fed small instances.

package sat

import "fmt"

// EnumMaxVars bounds EnumSolve: enumerating 2^24 models of a formula is
// the practical ceiling for a test-time oracle.
const EnumMaxVars = 24

// assignmentSatisfies reports whether the model (bit i of m = variable i)
// satisfies every clause of the formula.
func assignmentSatisfies(m uint64, clauses [][]Lit) bool {
	for _, cl := range clauses {
		ok := false
		for _, l := range cl {
			if (m>>uint(l.Var()))&1 == 1 != l.Neg() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// EnumSolve decides the formula by exhaustive enumeration of all 2^n
// assignments. It returns Sat with a witness model (indexed by variable)
// or Unsat. Formulas with more than EnumMaxVars variables are refused.
func EnumSolve(f *Formula) (Status, []bool, error) {
	if f.NumVars > EnumMaxVars {
		return Unknown, nil, fmt.Errorf("sat: EnumSolve limited to %d variables, got %d", EnumMaxVars, f.NumVars)
	}
	for m := uint64(0); m < 1<<uint(f.NumVars); m++ {
		if assignmentSatisfies(m, f.Clauses) {
			model := make([]bool, f.NumVars)
			for i := range model {
				model[i] = (m>>uint(i))&1 == 1
			}
			return Sat, model, nil
		}
	}
	return Unsat, nil, nil
}

// DPLLSolve decides the formula with the Davis–Putnam–Logemann–Loveland
// procedure: unit propagation plus chronological backtracking on the first
// unassigned variable. No watched literals, no learning, no heuristics —
// an independent implementation whose only shared surface with the CDCL
// solver is the Lit encoding. It returns Sat with a total witness model or
// Unsat.
func DPLLSolve(f *Formula) (Status, []bool) {
	assign := make([]lbool, f.NumVars)
	for i := range assign {
		assign[i] = lUndef
	}
	if dpll(f.Clauses, assign) {
		model := make([]bool, f.NumVars)
		for i, a := range assign {
			model[i] = a == lTrue
		}
		return Sat, model
	}
	return Unsat, nil
}

// dpllLitValue evaluates a literal under a partial assignment.
func dpllLitValue(assign []lbool, l Lit) lbool {
	a := assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	return a ^ lbool(l&1)
}

// dpll recursively decides the clause set under the partial assignment,
// which it extends in place (and restores on backtrack).
func dpll(clauses [][]Lit, assign []lbool) bool {
	// Unit propagation to fixpoint, recording the trail for backtracking.
	var trail []Var
	undo := func() {
		for _, v := range trail {
			assign[v] = lUndef
		}
	}
	for {
		unitFound := false
		for _, cl := range clauses {
			var unit Lit = -1
			satisfied, unassigned := false, 0
			for _, l := range cl {
				switch dpllLitValue(assign, l) {
				case lTrue:
					satisfied = true
				case lUndef:
					unassigned++
					unit = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unassigned {
			case 0: // falsified clause
				undo()
				return false
			case 1:
				v := unit.Var()
				if unit.Neg() {
					assign[v] = lFalse
				} else {
					assign[v] = lTrue
				}
				trail = append(trail, v)
				unitFound = true
			}
		}
		if !unitFound {
			break
		}
	}

	// Find a branching variable.
	branch := Var(-1)
	for v := range assign {
		if assign[v] == lUndef {
			branch = Var(v)
			break
		}
	}
	if branch == -1 {
		// Total assignment with no falsified clause: a model.
		return true
	}
	for _, val := range []lbool{lTrue, lFalse} {
		assign[branch] = val
		if dpll(clauses, assign) {
			return true
		}
	}
	assign[branch] = lUndef
	undo()
	return false
}
