package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const uf8Sat = `c classic satisfiable instance
p cnf 8 12
1 2 0
-1 3 0
-3 4 0
2 -4 5 0
-5 6 0
-2 -6 7 0
7 -8 0
8 1 0
-7 2 0
3 5 -1 0
-4 -6 0
6 -3 8 0
`

const tinyUnsat = `p cnf 1 2
1 0
-1 0
`

func TestParseDIMACSAndSolve(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader(uf8Sat))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 8 || len(f.Clauses) != 12 {
		t.Fatalf("parsed %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	s, ok := f.Load()
	if !ok {
		t.Fatal("instance should not be trivially unsat")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	// The model must satisfy the original clause list.
	for i, cl := range f.Clauses {
		sat := false
		for _, l := range cl {
			if s.Value(l.Var()) != l.Neg() {
				sat = true
			}
		}
		if !sat {
			t.Fatalf("clause %d unsatisfied by model", i)
		}
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	f, err := ParseDIMACS(strings.NewReader(tinyUnsat))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := f.Load()
	if ok && s.Solve() != Unsat {
		t.Fatal("want Unsat")
	}
}

func TestDIMACSRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := &Formula{}
	for i := 0; i < 30; i++ {
		var cl []Lit
		for j := 0; j < 1+rng.Intn(4); j++ {
			cl = append(cl, MkLit(Var(rng.Intn(12)), rng.Intn(2) == 1))
		}
		f.AddClause(cl...)
	}
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("roundtrip shape: %d/%d vs %d/%d", g.NumVars, len(g.Clauses), f.NumVars, len(f.Clauses))
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d length changed", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
	// Same satisfiability.
	s1, _ := f.Load()
	s2, _ := g.Load()
	if s1.Solve() != s2.Solve() {
		t.Fatal("roundtrip changed satisfiability")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                               // no problem line
		"p cnf x 1\n1 0\n",               // bad var count
		"p cnf 2 nope\n1 0\n",            // bad clause count
		"p dnf 2 1\n1 0\n",               // wrong format tag
		"p cnf 2 1\n3 0\n",               // literal out of range
		"p cnf 2 2\n1 0\n",               // clause count mismatch
		"p cnf 2 1\n1 bogus 0\n",         // bad literal token
		"p cnf -3 1\n1 0\n",              // negative variable count
		"p cnf 2 -1\n1 0\n",              // negative clause count
		"1 0\np cnf 2 1\n",               // clause data before problem line
		"p cnf 2 1\np cnf 2 1\n1 0\n",    // duplicate problem line
		"c only a comment\n1 0\n",        // clause with no problem line at all
		"p cnf 99999999999999999999 1\n", // overflowing variable count
	}
	for _, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDIMACS(%q) should fail", src)
		}
	}
}

func TestParseDIMACSTrailingClause(t *testing.T) {
	// A final clause without the 0 terminator is tolerated.
	f, err := ParseDIMACS(strings.NewReader("p cnf 2 2\n1 2 0\n-1 -2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
}

func TestFormulaGrowsNumVars(t *testing.T) {
	f := &Formula{}
	f.AddClause(PosLit(0), NegLit(6))
	if f.NumVars != 7 {
		t.Fatalf("NumVars = %d, want 7", f.NumVars)
	}
}

// TestParseDIMACSRejectionsCannotPanicLoad pins the parser's contract with
// the solver: any formula ParseDIMACS accepts must load without panicking,
// because every literal was range-checked against the declared variable
// count. The inputs here are shapes that used to slip through (negative
// counts, clause data ahead of the problem line) and crash AddClause on an
// unallocated variable.
func TestParseDIMACSRejectionsCannotPanicLoad(t *testing.T) {
	inputs := []string{
		"p cnf -3 1\n1 0\n",
		"p cnf -1 -1\n",
		"5 0\np cnf 1 1\n",
		"-7 3 0\np cnf 2 1\n",
	}
	for _, src := range inputs {
		f, err := ParseDIMACS(strings.NewReader(src))
		if err != nil {
			continue // rejected: nothing to load
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("accepted %q but Load panicked: %v", src, r)
				}
			}()
			f.Load()
		}()
	}
}

// TestDIMACSRoundtripRandomMany is the property-test form of the round
// trip: many random CNFs — including empty clauses, unit clauses, repeated
// literals, and wide clauses — must survive write+parse with the clause
// list preserved exactly.
func TestDIMACSRoundtripRandomMany(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		f := &Formula{NumVars: 1 + rng.Intn(20)}
		nClauses := rng.Intn(30)
		for i := 0; i < nClauses; i++ {
			k := rng.Intn(8) // 0 permitted: empty clause
			cl := make([]Lit, k)
			for j := range cl {
				cl[j] = MkLit(Var(rng.Intn(f.NumVars)), rng.Intn(2) == 1)
			}
			f.AddClause(cl...)
		}
		var buf bytes.Buffer
		if err := f.WriteDIMACS(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		g, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: re-parse: %v\n%s", trial, err, buf.String())
		}
		if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
			t.Fatalf("trial %d: shape %d/%d -> %d/%d", trial, f.NumVars, len(f.Clauses), g.NumVars, len(g.Clauses))
		}
		for i := range f.Clauses {
			if len(g.Clauses[i]) != len(f.Clauses[i]) {
				t.Fatalf("trial %d: clause %d length changed", trial, i)
			}
			for j := range f.Clauses[i] {
				if g.Clauses[i][j] != f.Clauses[i][j] {
					t.Fatalf("trial %d: clause %d literal %d changed", trial, i, j)
				}
			}
		}
	}
}
