package sat

import (
	"math/rand"
	"testing"
)

// These tests pin the retention contract hole-elimination CEGIS leans
// on: one Solver accumulating clauses across many Solve(assumptions...)
// rounds must give, at every round, the same verdict as a fresh solver
// built from scratch over the cumulative clause set — no matter what
// learnt clauses, phase saving, or activity state the retained solver
// carried over from earlier rounds.

// checkRound compares the retained solver's verdict on the cumulative
// clause set (under assumptions) against a fresh solver and, when the
// instance is small enough, against exhaustive enumeration.
func checkRound(t *testing.T, retained *Solver, n int, cum [][]Lit, assume []Lit) {
	t.Helper()
	got := retained.Solve(assume...)
	if got == Unknown {
		t.Fatal("unbudgeted Solve returned Unknown")
	}

	fresh := New()
	mkVars(fresh, n)
	for _, cl := range cum {
		fresh.AddClause(cl...)
	}
	want := fresh.Solve(assume...)
	if got != want {
		t.Fatalf("retained solver %v, fresh solver %v (%d clauses, %d assumptions)",
			got, want, len(cum), len(assume))
	}

	if n <= 16 {
		withUnits := append([][]Lit{}, cum...)
		for _, a := range assume {
			withUnits = append(withUnits, []Lit{a})
		}
		if enum := brute(n, withUnits); (got == Sat) != enum {
			t.Fatalf("retained solver %v, enumeration sat=%v (%d clauses, %d assumptions)",
				got, enum, len(cum), len(assume))
		}
	}

	if got == Sat {
		if !modelSatisfies(retained, cum) {
			t.Fatalf("retained model violates the cumulative formula after %d clauses", len(cum))
		}
		for _, a := range assume {
			if retained.Value(a.Var()) == a.Neg() {
				t.Fatalf("retained model violates assumption %v", a)
			}
		}
	}
}

// TestIncrementalRetentionMatchesFresh grows one solver through many
// add-clauses/solve rounds on random 3-SAT and cross-checks every round.
func TestIncrementalRetentionMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		retained := New()
		mkVars(retained, n)
		var cum [][]Lit
		for round := 0; round < 8; round++ {
			batch := 1 + rng.Intn(2*n)
			for i := 0; i < batch; i++ {
				cl := make([]Lit, 1+rng.Intn(3))
				for j := range cl {
					cl[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)
				}
				cum = append(cum, cl)
				retained.AddClause(cl...)
			}
			var assume []Lit
			for v := 0; v < n && len(assume) < rng.Intn(3); v++ {
				assume = append(assume, MkLit(Var(v), rng.Intn(2) == 1))
			}
			checkRound(t, retained, n, cum, assume)
		}
	}
}

// TestIncrementalBlockingClauseEnumeration is the hole-elimination access
// pattern in miniature: repeatedly ask for a model, then add the clause
// negating it. The solver must enumerate each of the 2^n models of the
// unconstrained formula exactly once and then prove UNSAT.
func TestIncrementalBlockingClauseEnumeration(t *testing.T) {
	const n = 4
	s := New()
	vars := mkVars(s, n)
	seen := map[uint64]bool{}
	for round := 0; ; round++ {
		if round > 1<<n {
			t.Fatalf("enumeration did not terminate after %d rounds", round)
		}
		if s.Solve() != Sat {
			break
		}
		var m uint64
		block := make([]Lit, n)
		for i, v := range vars {
			if s.Value(v) {
				m |= 1 << uint(i)
				block[i] = NegLit(v)
			} else {
				block[i] = PosLit(v)
			}
		}
		if seen[m] {
			t.Fatalf("model %b repeated: blocking clause not retained", m)
		}
		seen[m] = true
		s.AddClause(block...)
	}
	if len(seen) != 1<<n {
		t.Fatalf("enumerated %d models, want %d", len(seen), 1<<n)
	}
}

// TestIncrementalUnsatCoreAfterRetainedRounds: the UnsatCore contract —
// a subset of the assumptions whose conjunction is already unsatisfiable
// — must survive earlier SAT rounds on the same solver.
func TestIncrementalUnsatCoreAfterRetainedRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(5)
		s := New()
		vars := mkVars(s, n)
		var cum [][]Lit
		add := func(cl ...Lit) {
			cum = append(cum, cl)
			s.AddClause(cl...)
		}
		// An implication chain v0 -> v1 -> ... -> v(n-1) plus noise keeps
		// the formula satisfiable on its own.
		for i := 0; i+1 < n; i++ {
			add(NegLit(vars[i]), PosLit(vars[i+1]))
		}
		for i := 0; i < n; i++ {
			add(MkLit(Var(rng.Intn(n)), true), MkLit(Var(rng.Intn(n)), false))
		}
		// A few retained SAT rounds first.
		for round := 0; round < 3; round++ {
			checkRound(t, s, n, cum, []Lit{MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)})
		}
		// Contradictory assumptions across the chain: v0 and not v(n-1).
		assume := []Lit{PosLit(vars[0]), NegLit(vars[n-1]),
			MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1)}
		if st := s.Solve(assume...); st != Unsat {
			continue // noise clauses may have made the chain moot; not this test's concern
		}
		core := s.UnsatCore()
		if len(core) == 0 {
			t.Fatalf("trial %d: Unsat under assumptions with empty core", trial)
		}
		inAssume := map[Lit]bool{}
		for _, a := range assume {
			inAssume[a] = true
		}
		withCore := append([][]Lit{}, cum...)
		for _, l := range core {
			if !inAssume[l] {
				t.Fatalf("trial %d: core literal %v is not an assumption %v", trial, l, assume)
			}
			withCore = append(withCore, []Lit{l})
		}
		// The blamed subset alone must already be unsatisfiable.
		if brute(n, withCore) {
			t.Fatalf("trial %d: core %v does not refute the formula", trial, core)
		}
	}
}

// TestIncrementalSolveAfterFormulaUnsat: once the clause set itself is
// refuted at the top level, every later round must stay Unsat regardless
// of assumptions — the solver must not resurrect.
func TestIncrementalSolveAfterFormulaUnsat(t *testing.T) {
	s := New()
	vars := mkVars(s, 3)
	s.AddClause(PosLit(vars[0]))
	if s.Solve() != Sat {
		t.Fatal("single unit must be Sat")
	}
	s.AddClause(NegLit(vars[0]))
	for round := 0; round < 3; round++ {
		if st := s.Solve(PosLit(vars[1])); st != Unsat {
			t.Fatalf("round %d after top-level refutation: %v, want Unsat", round, st)
		}
	}
}

// FuzzIncrementalSolve drives a retained solver through a fuzzer-chosen
// interleaving of clause additions and assumption solves, checking every
// solve against a fresh solver and exhaustive enumeration.
func FuzzIncrementalSolve(f *testing.F) {
	f.Add([]byte{3, 1, 5, 2, 130, 0, 7})
	f.Add([]byte{0, 4, 128, 1, 3, 0, 255, 2, 9, 17, 0, 0})
	f.Add([]byte{7, 1, 1, 1, 129, 0, 64, 2, 2, 3, 1, 130, 131, 0, 200})
	f.Add([]byte{5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := 3 + int(data[0])%6 // 3..8 variables
		s := New()
		mkVars(s, n)
		var cum [][]Lit
		solves := 0
		i := 1
		for i < len(data) && solves < 10 && len(cum) < 48 {
			op := data[i]
			i++
			if op%4 == 0 {
				// Solve under one assumption derived from the next byte.
				var assume []Lit
				if i < len(data) {
					b := data[i]
					i++
					assume = []Lit{MkLit(Var(int(b)%n), b >= 128)}
				}
				checkRound(t, s, n, cum, assume)
				solves++
				continue
			}
			// Add a clause of 1..3 literals from the following bytes.
			ln := 1 + int(op)%3
			var cl []Lit
			for k := 0; k < ln && i < len(data); k++ {
				b := data[i]
				i++
				cl = append(cl, MkLit(Var(int(b)%n), b >= 128))
			}
			if len(cl) == 0 {
				break
			}
			cum = append(cum, cl)
			s.AddClause(cl...)
		}
		checkRound(t, s, n, cum, nil)
	})
}
