package sat

import (
	"bytes"
	"testing"
)

// FuzzDIMACS feeds arbitrary bytes to the DIMACS parser. The parser must
// never panic, and any formula it accepts must survive an emit → re-parse
// round trip exactly.
func FuzzDIMACS(f *testing.F) {
	f.Add([]byte("p cnf 2 2\n1 -2 0\n-1 2 0\n"))
	f.Add([]byte("c comment\np cnf 1 1\n1 0\n"))
	f.Add([]byte("p cnf 3 1\n1 2 3 0"))
	f.Add([]byte("p cnf 0 0\n"))
	f.Add([]byte("p cnf 1 1\n2 0\n"))    // literal out of range
	f.Add([]byte("p cnf 1 1\n1 0\n1 0")) // more clauses than declared
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		formula, err := ParseDIMACS(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := formula.WriteDIMACS(&buf); err != nil {
			t.Fatalf("accepted formula fails to emit: %v\ninput: %q", err, data)
		}
		back, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("emitted DIMACS does not re-parse: %v\n%s", err, buf.String())
		}
		if back.NumVars != formula.NumVars || len(back.Clauses) != len(formula.Clauses) {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				formula.NumVars, len(formula.Clauses), back.NumVars, len(back.Clauses))
		}
		for i := range formula.Clauses {
			if len(back.Clauses[i]) != len(formula.Clauses[i]) {
				t.Fatalf("clause %d length changed", i)
			}
			for j, l := range formula.Clauses[i] {
				if back.Clauses[i][j] != l {
					t.Fatalf("clause %d literal %d changed: %v -> %v", i, j, l, back.Clauses[i][j])
				}
			}
		}
	})
}
