// Package sat implements a conflict-driven clause-learning (CDCL) boolean
// satisfiability solver.
//
// This is the solver substrate that stands in for the two external engines
// the Chipmunk paper depends on: the SAT core inside the SKETCH synthesizer
// (used for the synthesis phase of CEGIS, Equation 2 of the paper) and the
// Z3 theorem prover (used for the widened verification phase, Equation 3).
// Both phases of CEGIS reduce to SAT once the bit-vector circuits are
// bit-blasted (internal/circuit performs the Tseitin transformation), so a
// single sound and complete SAT solver serves for both.
//
// The design follows MiniSat: two-literal watching for unit propagation,
// VSIDS variable activity with exponential decay, first-UIP conflict
// analysis with clause learning and non-chronological backjumping, Luby
// restarts, learnt-clause database reduction, and phase saving. Incremental
// solving under assumptions is supported so callers can reuse a clause
// database across related queries.
package sat

import (
	"errors"
	"fmt"
	"time"
)

// Var is a boolean variable index. Variables are allocated densely from 0.
type Var int32

// Lit is a literal: a variable or its negation, encoded as var<<1|sign with
// sign==1 meaning negated. The zero-adjacent encoding keeps watch lists and
// assignment lookups branch-free.
type Lit int32

// MkLit builds a literal from a variable and a sign (true = negated).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal in DIMACS style (1-based, minus for negation).
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a three-valued boolean: true, false, or undefined.
type lbool int8

const (
	lTrue  lbool = 0
	lFalse lbool = 1
	lUndef lbool = 2
)

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver was interrupted (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found; read it with Value.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrBudget is returned by SolveWithBudget when the conflict budget is
// exhausted before a result is determined.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// ErrStopped is returned by SolveWithBudget when the caller-installed stop
// hook (SetStop) reported true mid-search. The solver state remains valid:
// a later Solve call resumes from the same clause database.
var ErrStopped = errors.New("sat: solve stopped by caller")

// stopCheckInterval is how many conflicts run between stop-hook polls — a
// much finer grain than the budgeted-chunk fallback, so a cancelled
// portfolio member abandons its solve almost immediately.
const stopCheckInterval = 256

// clauseRef indexes into the solver's clause arena. The special value
// refUndef marks "no reason" (decision variables); refBinary+lit encodes a
// binary-clause reason inline.
type clauseRef int32

const refUndef clauseRef = -1

// clause is a disjunction of literals plus learnt-clause metadata.
type clause struct {
	lits     []Lit
	activity float64
	learnt   bool
	deleted  bool
}

// watcher pairs a watched clause with a "blocker" literal whose truth lets
// propagation skip the clause without touching its literal array.
type watcher struct {
	ref     clauseRef
	blocker Lit
}

// Stats reports cumulative solver counters, used by the evaluation harness
// to report synthesis effort alongside wall-clock time.
type Stats struct {
	Decisions     int64
	Propagations  int64
	Conflicts     int64
	Restarts      int64
	Learnt        int64
	DeletedLearnt int64
	// SolveNS is cumulative wall-clock nanoseconds spent inside Solve /
	// SolveWithBudget — the in-solver share of a compilation, as opposed
	// to encoding time spent building circuits and loading clauses. The
	// performance observatory uses the delta to attribute each phase's
	// time to "solve" vs "encode" even when no tracer is installed.
	SolveNS int64
	MaxVar  int
	Clauses int
}

// Sub returns the counter-wise difference s - o. MaxVar and Clauses are
// levels rather than counters, so they carry s's current values.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Decisions:     s.Decisions - o.Decisions,
		Propagations:  s.Propagations - o.Propagations,
		Conflicts:     s.Conflicts - o.Conflicts,
		Restarts:      s.Restarts - o.Restarts,
		Learnt:        s.Learnt - o.Learnt,
		DeletedLearnt: s.DeletedLearnt - o.DeletedLearnt,
		SolveNS:       s.SolveNS - o.SolveNS,
		MaxVar:        s.MaxVar,
		Clauses:       s.Clauses,
	}
}

// Solver is a CDCL SAT solver. The zero value is not usable; create one
// with New.
type Solver struct {
	clauses []clause // arena; learnt and problem clauses interleaved
	learnts []clauseRef

	watches [][]watcher // indexed by Lit

	assign   []lbool // indexed by Var
	level    []int32 // decision level per var
	reason   []clauseRef
	polarity []bool // phase saving: last assigned sign

	trail    []Lit
	trailLim []int32 // decision-level boundaries in trail
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap

	claInc float64

	seen     []bool // scratch for conflict analysis
	analyzeT []Lit  // scratch
	conflLit []Lit  // scratch learnt clause

	model []lbool // snapshot of the assignment at the last Sat result

	ok    bool // false once a top-level conflict proves UNSAT
	stats Stats
	mark  Stats // StatsDelta baseline: counters as of the previous call

	progressEvery int64
	progressFn    func(Stats)

	stopFn  func() bool // polled every stopCheckInterval conflicts
	stopped bool        // set by search when stopFn fired

	assumptions []Lit
	core        []Lit // assumption subset blamed for the last Unsat
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc: 1.0,
		claInc: 1.0,
		ok:     true,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar allocates and returns a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assign))
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, refUndef)
	s.polarity = append(s.polarity, true) // default phase: false (negated)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	s.stats.MaxVar = len(s.assign)
	return v
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// NumClauses returns the number of live problem clauses.
func (s *Solver) NumClauses() int { return s.stats.Clauses }

// Stats returns a snapshot of the solver counters.
func (s *Solver) Stats() Stats { return s.stats }

// StatsDelta returns the counters accumulated since the previous
// StatsDelta call (or since creation, on the first call) and advances the
// baseline. Because Stats is cumulative across incremental Solve calls,
// this is how callers attribute effort to an individual solve: CEGIS reads
// one delta per synthesis-phase query against its persistent solver. The
// deltas of successive calls sum to the cumulative snapshot (MaxVar and
// Clauses, being levels, carry the current values instead).
func (s *Solver) StatsDelta() Stats {
	d := s.stats.Sub(s.mark)
	s.mark = s.stats
	return d
}

// SetProgress registers fn to be invoked with a counter snapshot every
// `every` conflicts during search, so long solves (the paper's hour-long
// flowlet mutants) remain observable from outside. every <= 0 or a nil fn
// disables progress reporting.
func (s *Solver) SetProgress(every int64, fn func(Stats)) {
	if every <= 0 || fn == nil {
		s.progressEvery, s.progressFn = 0, nil
		return
	}
	s.progressEvery, s.progressFn = every, fn
}

// SetStop installs a cancellation hook polled every stopCheckInterval
// conflicts during search. When fn returns true the in-flight
// SolveWithBudget call returns (Unknown, ErrStopped) without finishing the
// query, so losing portfolio members abort mid-solve instead of waiting
// for the next budget-chunk boundary. A nil fn removes the hook. The hook
// must be cheap and race-free: it runs on the solving goroutine.
func (s *Solver) SetStop(fn func() bool) {
	s.stopFn = fn
}

// litValue returns the current value of a literal.
func (s *Solver) litValue(l Lit) lbool {
	a := s.assign[l.Var()]
	if a == lUndef {
		return lUndef
	}
	// a is lTrue(0) or lFalse(1); negation flips it.
	return a ^ lbool(l&1)
}

// Value returns the value of v in the most recent satisfying model. It is
// only meaningful after Solve returned Sat. Unassigned variables (possible
// when the formula does not constrain them) read as false.
func (s *Solver) Value(v Var) bool {
	if int(v) >= len(s.model) {
		return false
	}
	return s.model[v] == lTrue
}

// AddClause adds a clause to the solver. It returns false if the clause
// addition makes the formula trivially unsatisfiable at the top level.
// Literals are deduplicated; tautological clauses are silently accepted.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause called below decision level 0")
	}
	// Normalize: sort-free dedup and tautology/falsified-literal removal.
	out := s.conflLit[:0]
	for _, l := range lits {
		if int(l.Var()) >= len(s.assign) {
			panic(fmt.Sprintf("sat: clause references unallocated variable %d", l.Var()))
		}
		switch s.litValue(l) {
		case lTrue:
			s.conflLit = out
			return true // clause already satisfied at level 0
		case lFalse:
			continue // drop falsified literal
		}
		dup := false
		for _, m := range out {
			if m == l {
				dup = true
				break
			}
			if m == l.Not() {
				s.conflLit = out
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	s.conflLit = out[:0]
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], refUndef)
		if s.propagate() != refUndef {
			s.ok = false
			return false
		}
		return true
	}
	cl := make([]Lit, len(out))
	copy(cl, out)
	ref := s.allocClause(cl, false)
	s.attachClause(ref)
	s.stats.Clauses++
	return true
}

func (s *Solver) allocClause(lits []Lit, learnt bool) clauseRef {
	ref := clauseRef(len(s.clauses))
	s.clauses = append(s.clauses, clause{lits: lits, learnt: learnt})
	return ref
}

func (s *Solver) attachClause(ref clauseRef) {
	c := &s.clauses[ref]
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{ref, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{ref, l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from clauseRef) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the two-watched-literal scheme.
// It returns the conflicting clause reference, or refUndef if no conflict.
func (s *Solver) propagate() clauseRef {
	var pops int
	for s.qhead < len(s.trail) {
		// Poll the stop hook here as well as on conflicts: if propagation
		// itself is the runaway loop (which a corrupted clause database or
		// a broken watcher scheme can produce without ever conflicting),
		// the conflict-path poll in search never runs and the solve would
		// be uncancellable. A healthy propagate call drains a bounded
		// queue, so counting pops within this call polls only when
		// something is wrong. Aborting between trail pops leaves the
		// assignment and queue consistent.
		pops++
		if s.stopFn != nil && pops&0x1fff == 0 && s.stopFn() {
			s.stopped = true
			return refUndef
		}
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.litValue(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := &s.clauses[w.ref]
			lits := c.lits
			// Ensure the false literal (p.Not()) is at position 1.
			if lits[0] == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.litValue(first) == lTrue {
				ws[n] = watcher{w.ref, first}
				n++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.litValue(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nl := lits[1].Not()
					s.watches[nl] = append(s.watches[nl], watcher{w.ref, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[n] = watcher{w.ref, first}
			n++
			if s.litValue(first) == lFalse {
				// Conflict: copy back remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return w.ref
			}
			s.stats.Propagations++
			s.uncheckedEnqueue(first, w.ref)
		}
		s.watches[p] = ws[:n]
	}
	return refUndef
}

// analyze performs first-UIP conflict analysis. It fills s.conflLit with the
// learnt clause (asserting literal first) and returns the backjump level.
func (s *Solver) analyze(confl clauseRef) int {
	learnt := s.conflLit[:0]
	learnt = append(learnt, 0) // placeholder for asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Remember every marked literal so the seen flags can be fully cleared
	// even for literals the minimization below removes.
	s.analyzeT = append(s.analyzeT[:0], learnt...)

	// Clause minimization: drop literals implied by the rest of the clause
	// (local form — a literal whose reason's literals are all already seen).
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		redundant := false
		if r != refUndef {
			redundant = true
			for _, q := range s.clauses[r].lits[1:] {
				if !s.seen[q.Var()] && s.level[q.Var()] != 0 {
					redundant = false
					break
				}
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Backjump level: second-highest decision level in the clause.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}
	for _, l := range s.analyzeT {
		s.seen[l.Var()] = false
	}
	s.conflLit = learnt
	return bt
}

// analyzeFinal expresses the final conflict in terms of assumption
// literals (the MiniSat procedure of the same name). It is called from
// search at the moment an assumption a is found falsified: it seeds the
// core with a, then walks the trail top-down resolving each marked
// variable through its reason clause. Marked variables with no reason are
// decisions, and every decision below the assumption prefix is an
// assumption literal verbatim, so they join the core; level-0 variables
// are facts and never marked. The result — stored in s.core and read via
// UnsatCore — is a subset of the caller's assumptions whose conjunction
// already makes the formula unsatisfiable.
func (s *Solver) analyzeFinal(a Lit) {
	s.core = append(s.core[:0], a)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[a.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == refUndef {
			s.core = append(s.core, s.trail[i])
		} else {
			for _, q := range s.clauses[r].lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	// a may have been falsified at level 0, in which case the walk above
	// never visits it; clear its mark explicitly.
	s.seen[a.Var()] = false
}

// UnsatCore returns the subset of the most recent Solve call's assumption
// literals that the solver used to derive unsatisfiability. It is
// meaningful only after a Solve/SolveWithBudget call returned Unsat; any
// other outcome (including formula-level UNSAT with no assumptions
// involved) yields an empty slice. The core is not guaranteed minimal —
// callers wanting a minimal core re-solve under subsets (see
// internal/cegis's explanation pass).
func (s *Solver) UnsatCore() []Lit {
	out := make([]Lit, len(s.core))
	copy(out, s.core)
	return out
}

// cancelUntil undoes assignments above the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := int(s.trailLim[lvl])
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.trail[i].Neg()
		s.assign[v] = lUndef
		s.reason[v] = refUndef
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(ref clauseRef) {
	c := &s.clauses[ref]
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, r := range s.learnts {
			s.clauses[r].activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

// pickBranchVar selects the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() Var {
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB removes roughly half of the learnt clauses, keeping the most
// active ones and all binary clauses / current reasons.
func (s *Solver) reduceDB() {
	if len(s.learnts) == 0 {
		return
	}
	// Partial selection: compute median activity by sampling is overkill at
	// our scale; sort a copy of activities instead.
	acts := make([]float64, len(s.learnts))
	for i, r := range s.learnts {
		acts[i] = s.clauses[r].activity
	}
	med := quickSelectMedian(acts)
	kept := s.learnts[:0]
	for _, r := range s.learnts {
		c := &s.clauses[r]
		locked := false
		if s.litValue(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == r {
			locked = true
		}
		if locked || len(c.lits) <= 2 || c.activity >= med {
			kept = append(kept, r)
			continue
		}
		s.detachClause(r)
		c.deleted = true
		c.lits = nil
		s.stats.DeletedLearnt++
	}
	s.learnts = kept
}

func (s *Solver) detachClause(ref clauseRef) {
	c := &s.clauses[ref]
	for _, l := range []Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[l]
		for i, w := range ws {
			if w.ref == ref {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// quickSelectMedian returns the median of xs, mutating xs.
func quickSelectMedian(xs []float64) float64 {
	k := len(xs) / 2
	lo, hi := 0, len(xs)-1
	for lo < hi {
		pivot := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}

// luby returns the i-th element (1-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,...
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<uint(k))-1 {
			return int64(1) << uint(k-1)
		}
		if i >= int64(1)<<uint(k-1) && i < (int64(1)<<uint(k))-1 {
			return luby(i - (int64(1) << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals. The
// clause database persists across calls, enabling incremental use.
func (s *Solver) Solve(assumptions ...Lit) Status {
	st, _ := s.SolveWithBudget(-1, assumptions...)
	return st
}

// SolveWithBudget is Solve with a conflict budget; budget < 0 means
// unlimited. If the budget is exhausted it returns (Unknown, ErrBudget).
func (s *Solver) SolveWithBudget(budget int64, assumptions ...Lit) (Status, error) {
	s.core = s.core[:0]
	if !s.ok {
		return Unsat, nil
	}
	if s.stopFn != nil && s.stopFn() {
		return Unknown, ErrStopped
	}
	start := time.Now()
	defer func() { s.stats.SolveNS += time.Since(start).Nanoseconds() }()
	s.assumptions = assumptions
	defer s.cancelUntil(0)

	restartN := int64(0)
	for {
		restartN++
		maxConfl := luby(restartN) * 100
		st := s.search(maxConfl, &budget)
		if st == Sat {
			s.model = append(s.model[:0], s.assign...)
		}
		if st != Unknown {
			return st, nil
		}
		if s.stopped {
			s.stopped = false
			return Unknown, ErrStopped
		}
		if budget == 0 {
			return Unknown, ErrBudget
		}
		s.stats.Restarts++
		s.cancelUntil(0)
	}
}

// search runs CDCL until a result, a restart (maxConfl conflicts), or budget
// exhaustion. Returns Unknown to signal restart/budget.
func (s *Solver) search(maxConfl int64, budget *int64) Status {
	var conflicts int64
	for {
		confl := s.propagate()
		if s.stopped {
			return Unknown
		}
		if confl != refUndef {
			conflicts++
			s.stats.Conflicts++
			if s.progressEvery > 0 && s.stats.Conflicts%s.progressEvery == 0 {
				s.progressFn(s.stats)
			}
			if *budget > 0 {
				*budget--
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			bt := s.analyze(confl)
			s.cancelUntil(bt)
			learnt := s.conflLit
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], refUndef)
			} else {
				cl := make([]Lit, len(learnt))
				copy(cl, learnt)
				ref := s.allocClause(cl, true)
				s.learnts = append(s.learnts, ref)
				s.attachClause(ref)
				s.bumpClause(ref)
				s.stats.Learnt++
				s.uncheckedEnqueue(learnt[0], ref)
			}
			s.decayVar()
			s.decayClause()
			if int64(len(s.learnts)) > int64(s.stats.Clauses)*2+10000 {
				s.reduceDB()
			}
			// Poll the stop hook after the conflict is fully resolved
			// (clause learnt, backjump done) so an abort never leaves the
			// trail mid-analysis.
			if s.stopFn != nil && s.stats.Conflicts%stopCheckInterval == 0 && s.stopFn() {
				s.stopped = true
				return Unknown
			}
			continue
		}
		if conflicts >= maxConfl || (*budget == 0) {
			return Unknown
		}
		// All propagated; pick assumptions first, then decide.
		next := Lit(-1)
		for s.decisionLevel() < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case lTrue:
				// Already satisfied: introduce an empty decision level so
				// the assumption indexing stays aligned.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				continue
			case lFalse:
				// Assumptions conflict with the formula. Record which
				// assumptions participate before the deferred cancelUntil
				// tears down the trail.
				s.analyzeFinal(a)
				return Unsat
			}
			next = a
			break
		}
		if next == -1 {
			v := s.pickBranchVar()
			if v == -1 {
				return Sat // all variables assigned
			}
			s.stats.Decisions++
			next = MkLit(v, s.polarity[v])
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(next, refUndef)
	}
}
