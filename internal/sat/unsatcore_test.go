package sat

import (
	"math/rand"
	"testing"
)

// coreSet runs Solve under assumptions, requires Unsat, and returns the
// core as a set for membership checks.
func coreSet(t *testing.T, s *Solver, assumptions ...Lit) map[Lit]bool {
	t.Helper()
	if got := s.Solve(assumptions...); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	core := s.UnsatCore()
	set := map[Lit]bool{}
	for _, l := range core {
		set[l] = true
	}
	if len(set) != len(core) {
		t.Fatalf("core has duplicate literals: %v", core)
	}
	allowed := map[Lit]bool{}
	for _, a := range assumptions {
		allowed[a] = true
	}
	for _, l := range core {
		if !allowed[l] {
			t.Fatalf("core literal %v is not among the assumptions %v", l, assumptions)
		}
	}
	return set
}

func TestUnsatCoreSubsetStillUnsat(t *testing.T) {
	// x AND y AND (¬x ∨ ¬y) is UNSAT; z is an irrelevant assumption that
	// must not be blamed.
	s := New()
	vs := mkVars(s, 3)
	x, y, z := PosLit(vs[0]), PosLit(vs[1]), PosLit(vs[2])
	s.AddClause(x.Not(), y.Not())
	set := coreSet(t, s, x, y, z)
	if set[z] {
		t.Fatalf("irrelevant assumption z blamed: core %v", set)
	}
	if !set[x] || !set[y] {
		t.Fatalf("core should blame x and y, got %v", set)
	}
	// Re-solving under just the core must still be UNSAT.
	var coreLits []Lit
	for l := range set {
		coreLits = append(coreLits, l)
	}
	if got := s.Solve(coreLits...); got != Unsat {
		t.Fatalf("re-solve under core = %v, want Unsat", got)
	}
	// ...and the solver remains usable: dropping one core member is SAT.
	if got := s.Solve(x, z); got != Sat {
		t.Fatalf("solve under {x,z} = %v, want Sat", got)
	}
	if len(s.UnsatCore()) != 0 {
		t.Fatal("Sat outcome should clear the core")
	}
}

func TestUnsatCoreThroughPropagationChain(t *testing.T) {
	// a → b → c and assumption ¬c: the conflict reaches the assumption a
	// only through reason clauses, so analyzeFinal must resolve the chain.
	s := New()
	vs := mkVars(s, 3)
	a, b, c := PosLit(vs[0]), PosLit(vs[1]), PosLit(vs[2])
	s.AddClause(a.Not(), b)
	s.AddClause(b.Not(), c)
	set := coreSet(t, s, a, c.Not())
	if !set[a] || !set[c.Not()] {
		t.Fatalf("core should blame a and ¬c, got %v", set)
	}
}

func TestUnsatCoreLevelZeroFalsified(t *testing.T) {
	// The formula fixes ¬x at level 0; assuming x must yield core {x}.
	s := New()
	vs := mkVars(s, 2)
	x, pad := PosLit(vs[0]), PosLit(vs[1])
	s.AddClause(x.Not())
	set := coreSet(t, s, pad, x)
	if !set[x] {
		t.Fatalf("core should contain the level-0-falsified assumption, got %v", set)
	}
	if set[pad] {
		t.Fatalf("unrelated leading assumption blamed: %v", set)
	}
}

func TestUnsatCoreEmptyWithoutAssumptions(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	s.AddClause(NegLit(v))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	if core := s.UnsatCore(); len(core) != 0 {
		t.Fatalf("formula-level UNSAT should have empty core, got %v", core)
	}
}

func TestUnsatCoreContradictoryAssumptions(t *testing.T) {
	s := New()
	v := s.NewVar()
	x := PosLit(v)
	set := coreSet(t, s, x, x.Not())
	if !set[x] || !set[x.Not()] {
		t.Fatalf("core should blame both contradictory assumptions, got %v", set)
	}
}

// TestUnsatCoreRandomSelectors mimics the clause-group usage pattern:
// random 3-CNF formulas gated by selector literals, solved under the
// all-selectors assumption. Whenever the gated formula is UNSAT, the core
// must (a) be a subset of the selectors and (b) remain UNSAT when
// re-solved alone, on a fresh solver as well as incrementally.
func TestUnsatCoreRandomSelectors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(5)
		nGroups := 2 + rng.Intn(4)
		nClauses := 8 + rng.Intn(20)

		type gated struct {
			sel  Lit
			lits [][]Lit
		}
		s := New()
		vars := mkVars(s, n)
		sels := make([]Lit, nGroups)
		groups := make([]gated, nGroups)
		for g := range sels {
			sels[g] = PosLit(s.NewVar())
			groups[g].sel = sels[g]
		}
		for i := 0; i < nClauses; i++ {
			g := rng.Intn(nGroups)
			cl := make([]Lit, 0, 3)
			for k := 0; k < 3; k++ {
				cl = append(cl, MkLit(vars[rng.Intn(n)], rng.Intn(2) == 0))
			}
			groups[g].lits = append(groups[g].lits, cl)
			s.AddClause(append([]Lit{sels[g].Not()}, cl...)...)
		}
		st := s.Solve(sels...)
		if st != Unsat {
			continue
		}
		core := s.UnsatCore()
		if len(core) == 0 {
			t.Fatalf("trial %d: UNSAT under assumptions but empty core", trial)
		}
		inCore := map[Lit]bool{}
		for _, l := range core {
			inCore[l] = true
		}
		for _, l := range core {
			found := false
			for _, sel := range sels {
				if l == sel {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: core literal %v is not a selector", trial, l)
			}
		}
		// Incremental re-solve under the core alone stays UNSAT.
		if got := s.Solve(core...); got != Unsat {
			t.Fatalf("trial %d: incremental re-solve under core = %v, want Unsat", trial, got)
		}
		// Fresh-solver replay of only the core groups' clauses is UNSAT too
		// (the core names sufficient groups, independent of learnt state).
		fresh := New()
		mkVars(fresh, n)
		freshSels := make(map[Lit]Lit, nGroups)
		for _, sel := range sels {
			freshSels[sel] = PosLit(fresh.NewVar())
		}
		var assume []Lit
		for _, grp := range groups {
			if !inCore[grp.sel] {
				continue
			}
			fs := freshSels[grp.sel]
			assume = append(assume, fs)
			for _, cl := range grp.lits {
				fresh.AddClause(append([]Lit{fs.Not()}, cl...)...)
			}
		}
		if got := fresh.Solve(assume...); got != Unsat {
			t.Fatalf("trial %d: fresh re-solve of core groups = %v, want Unsat", trial, got)
		}
	}
}
