package sat

import (
	"math/rand"
	"testing"
)

// refTable is a table of small formulas with known status, shared by the
// reference-solver tests.
func refTable() []struct {
	name    string
	nVars   int
	clauses [][]Lit
	want    Status
} {
	p, n := func(v int) Lit { return PosLit(Var(v)) }, func(v int) Lit { return NegLit(Var(v)) }
	return []struct {
		name    string
		nVars   int
		clauses [][]Lit
		want    Status
	}{
		{"empty formula", 0, nil, Sat},
		{"single unit", 1, [][]Lit{{p(0)}}, Sat},
		{"contradictory units", 1, [][]Lit{{p(0)}, {n(0)}}, Unsat},
		{"implication chain", 4, [][]Lit{{n(0), p(1)}, {n(1), p(2)}, {n(2), p(3)}, {p(0)}}, Sat},
		{"chain forced unsat", 3, [][]Lit{{n(0), p(1)}, {n(1), p(2)}, {p(0)}, {n(2)}}, Unsat},
		{"xor pair sat", 2, [][]Lit{{p(0), p(1)}, {n(0), n(1)}}, Sat},
		{"all four binary combos", 2, [][]Lit{{p(0), p(1)}, {p(0), n(1)}, {n(0), p(1)}, {n(0), n(1)}}, Unsat},
		{"pigeonhole 2 into 1", 2, [][]Lit{{p(0)}, {p(1)}, {n(0), n(1)}}, Unsat},
		{"3-clause sat", 5, [][]Lit{{p(0), p(1), p(2)}, {n(0), p(3)}, {n(3), p(4), n(1)}}, Sat},
	}
}

func refFormula(nVars int, clauses [][]Lit) *Formula {
	f := &Formula{NumVars: nVars}
	for _, cl := range clauses {
		f.Clauses = append(f.Clauses, append([]Lit{}, cl...))
	}
	return f
}

// modelSatisfiesFormula checks a reference model against the clause list.
func modelSatisfiesFormula(model []bool, f *Formula) bool {
	for _, cl := range f.Clauses {
		ok := false
		for _, l := range cl {
			if model[l.Var()] != l.Neg() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestReferenceSolversTable checks EnumSolve and DPLLSolve against known
// verdicts, and that both return genuine witness models on SAT instances.
func TestReferenceSolversTable(t *testing.T) {
	for _, tc := range refTable() {
		f := refFormula(tc.nVars, tc.clauses)
		st, model, err := EnumSolve(f)
		if err != nil {
			t.Fatalf("%s: EnumSolve: %v", tc.name, err)
		}
		if st != tc.want {
			t.Errorf("%s: EnumSolve = %v, want %v", tc.name, st, tc.want)
		}
		if st == Sat && !modelSatisfiesFormula(model, f) {
			t.Errorf("%s: EnumSolve model does not satisfy formula", tc.name)
		}
		dst, dmodel := DPLLSolve(f)
		if dst != tc.want {
			t.Errorf("%s: DPLLSolve = %v, want %v", tc.name, dst, tc.want)
		}
		if dst == Sat && !modelSatisfiesFormula(dmodel, f) {
			t.Errorf("%s: DPLLSolve model does not satisfy formula", tc.name)
		}
	}
}

func TestEnumSolveRefusesLargeFormulas(t *testing.T) {
	f := &Formula{NumVars: EnumMaxVars + 1}
	if _, _, err := EnumSolve(f); err == nil {
		t.Fatal("EnumSolve accepted a formula above its enumeration bound")
	}
}

// randomFormula builds a random k-SAT formula near the given
// clause-to-variable density.
func randomFormula(rng *rand.Rand, nVars, nClauses, k int) *Formula {
	f := &Formula{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		cl := make([]Lit, k)
		for j := range cl {
			cl[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// TestCDCLAgreesWithReferencesRandom is the satellite's core property: on
// random instances up to 20 variables, every CDCL verdict — including
// UNSAT results reached through clause learning — agrees with brute-force
// enumeration and with DPLL, and SAT models check out against the clause
// list.
func TestCDCLAgreesWithReferencesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	trials := 400
	if testing.Short() {
		trials = 120
	}
	for trial := 0; trial < trials; trial++ {
		nVars := 3 + rng.Intn(18) // 3..20 vars
		k := 2 + rng.Intn(2)      // 2-SAT and 3-SAT mixes
		density := 3.0 + rng.Float64()*2.0
		nClauses := int(float64(nVars)*density) + rng.Intn(4)
		f := randomFormula(rng, nVars, nClauses, k)

		est, _, err := EnumSolve(f)
		if err != nil {
			t.Fatal(err)
		}
		dst, _ := DPLLSolve(f)
		if est != dst {
			t.Fatalf("trial %d: EnumSolve=%v DPLLSolve=%v on the same formula — reference oracles disagree", trial, est, dst)
		}

		s, ok := f.Load()
		got := Unsat
		if ok {
			got = s.Solve()
		} else if est == Sat {
			t.Fatalf("trial %d: AddClause reported top-level unsat but formula is sat", trial)
		}
		if got != est {
			t.Fatalf("trial %d: CDCL=%v reference=%v (n=%d m=%d k=%d)\nlearnt clauses: %d",
				trial, got, est, nVars, nClauses, k, s.Stats().Learnt)
		}
		if got == Sat {
			model := make([]bool, f.NumVars)
			for v := 0; v < f.NumVars; v++ {
				model[v] = s.Value(Var(v))
			}
			if !modelSatisfiesFormula(model, f) {
				t.Fatalf("trial %d: CDCL model does not satisfy formula", trial)
			}
		}
	}
}

// TestCDCLLearnedUnsatAgainstEnumeration drives the solver into instances
// dense enough that UNSAT verdicts come from learned-clause conflicts at
// decision level 0, then cross-checks every one against enumeration.
func TestCDCLLearnedUnsatAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	unsatSeen := 0
	for trial := 0; trial < 200; trial++ {
		nVars := 4 + rng.Intn(9) // 4..12
		nClauses := nVars * 6    // well above the 3-SAT threshold: mostly UNSAT
		f := randomFormula(rng, nVars, nClauses, 3)
		s, ok := f.Load()
		got := Unsat
		if ok {
			got = s.Solve()
		}
		est, _, err := EnumSolve(f)
		if err != nil {
			t.Fatal(err)
		}
		if got != est {
			t.Fatalf("trial %d: CDCL=%v enumeration=%v (n=%d m=%d)", trial, got, est, nVars, nClauses)
		}
		if got == Unsat {
			unsatSeen++
		}
	}
	if unsatSeen < 100 {
		t.Fatalf("only %d/200 dense instances were UNSAT; generator no longer stresses the learned-clause path", unsatSeen)
	}
}

// TestDPLLAgreesUnderAssumptions mirrors the incremental-solve usage: the
// CDCL solver under assumptions must agree with DPLL on the formula with
// the assumptions appended as unit clauses.
func TestDPLLAgreesUnderAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 100; trial++ {
		nVars := 4 + rng.Intn(8)
		f := randomFormula(rng, nVars, nVars*3, 3)
		s, ok := f.Load()
		assume := []Lit{MkLit(0, rng.Intn(2) == 1), MkLit(1, rng.Intn(2) == 1)}
		withUnits := refFormula(f.NumVars, f.Clauses)
		withUnits.AddClause(assume[0])
		withUnits.AddClause(assume[1])
		want, _ := DPLLSolve(withUnits)
		if !ok {
			if base, _ := DPLLSolve(f); base == Sat {
				t.Fatalf("trial %d: top-level unsat on a satisfiable formula", trial)
			}
			continue
		}
		if got := s.Solve(assume...); got != want {
			t.Fatalf("trial %d: CDCL under assumptions=%v, DPLL with units=%v", trial, got, want)
		}
	}
}
