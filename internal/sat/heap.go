package sat

// varHeap is a binary max-heap over variables ordered by VSIDS activity.
// It indexes positions per variable so activity bumps can sift in place.
type varHeap struct {
	activity *[]float64 // shared with the solver; grows as vars are added
	heap     []Var
	indices  []int32 // position of each var in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act}
}

func (h *varHeap) act(v Var) float64 { return (*h.activity)[v] }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) inHeap(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

// insert adds v to the heap if not already present.
func (h *varHeap) insert(v Var) {
	for int(v) >= len(h.indices) {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.indices[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.siftUp(int(h.indices[v]))
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if h.inHeap(v) {
		h.siftUp(int(h.indices[v]))
	}
}

// removeMax pops the highest-activity variable.
func (h *varHeap) removeMax() Var {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[top] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.siftDown(0)
	}
	return top
}

func (h *varHeap) siftUp(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := h.heap[parent]
		if h.act(v) <= h.act(p) {
			break
		}
		h.heap[i] = p
		h.indices[p] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}

func (h *varHeap) siftDown(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && h.act(h.heap[child+1]) > h.act(h.heap[child]) {
			child++
		}
		c := h.heap[child]
		if h.act(c) <= h.act(v) {
			break
		}
		h.heap[i] = c
		h.indices[c] = int32(i)
		i = child
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}
