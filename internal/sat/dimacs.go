package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Formula is a CNF formula in clause-list form — the interchange
// representation for DIMACS import/export. The solver itself simplifies
// clauses on AddClause, so round-tripping solver state is lossy by design;
// a Formula preserves the original clause list for debugging and for
// feeding instances to external solvers.
type Formula struct {
	NumVars int
	Clauses [][]Lit
}

// AddClause appends a clause, growing NumVars as needed.
func (f *Formula) AddClause(lits ...Lit) {
	cl := append([]Lit{}, lits...)
	for _, l := range cl {
		if int(l.Var())+1 > f.NumVars {
			f.NumVars = int(l.Var()) + 1
		}
	}
	f.Clauses = append(f.Clauses, cl)
}

// Load transfers the formula into a fresh solver, allocating its
// variables. It returns the solver and whether the formula survived
// top-level simplification (false means trivially UNSAT).
func (f *Formula) Load() (*Solver, bool) {
	s := New()
	return s, f.LoadInto(s)
}

// LoadInto transfers the formula into an existing (fresh) solver,
// allocating its variables. Use this instead of Load when solver options —
// notably a SetStop hook, which clause loading's top-level unit propagation
// respects — must be in place before the first clause is added. It reports
// whether the formula survived top-level simplification (false means
// trivially UNSAT).
func (f *Formula) LoadInto(s *Solver) bool {
	for i := 0; i < f.NumVars; i++ {
		s.NewVar()
	}
	ok := true
	for _, cl := range f.Clauses {
		if !s.AddClause(cl...) {
			ok = false
		}
	}
	return ok
}

// WriteDIMACS renders the formula in the standard DIMACS CNF format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, cl := range f.Clauses {
		parts := make([]string, 0, len(cl)+1)
		for _, l := range cl {
			parts = append(parts, l.String())
		}
		parts = append(parts, "0")
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// ParseDIMACS reads a DIMACS CNF file. Comment lines (c ...) are skipped;
// the problem line is validated against the clause list.
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	f := &Formula{}
	declaredVars, declaredClauses := -1, -1
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if declaredVars >= 0 {
				return nil, fmt.Errorf("sat: duplicate problem line %q", line)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			var err error
			declaredVars, err = strconv.Atoi(fields[2])
			if err != nil || declaredVars < 0 {
				return nil, fmt.Errorf("sat: bad variable count in %q", line)
			}
			declaredClauses, err = strconv.Atoi(fields[3])
			if err != nil || declaredClauses < 0 {
				return nil, fmt.Errorf("sat: bad clause count in %q", line)
			}
			continue
		}
		if declaredVars < 0 {
			// Clause data before the problem line would dodge the literal
			// range check below, letting out-of-range literals through to
			// panic the solver's clause loader.
			return nil, fmt.Errorf("sat: clause data before problem line: %q", line)
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", tok)
			}
			if v == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			neg := v < 0
			if neg {
				v = -v
			}
			if declaredVars >= 0 && v > declaredVars {
				return nil, fmt.Errorf("sat: literal %d exceeds declared %d variables", v, declaredVars)
			}
			cur = append(cur, MkLit(Var(v-1), neg))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		f.Clauses = append(f.Clauses, cur)
	}
	if declaredVars < 0 {
		return nil, fmt.Errorf("sat: missing problem line")
	}
	if declaredClauses >= 0 && len(f.Clauses) != declaredClauses {
		return nil, fmt.Errorf("sat: declared %d clauses, found %d", declaredClauses, len(f.Clauses))
	}
	f.NumVars = declaredVars
	return f, nil
}
