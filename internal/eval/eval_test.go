package eval

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/pisa"
)

// runSubset performs a small but real evaluation (2 programs x 3 mutants).
func runSubset(t *testing.T) []MutantOutcome {
	t.Helper()
	outcomes, err := Run(context.Background(), Options{
		Mutants:  3,
		Seed:     42,
		Timeout:  2 * time.Minute,
		Programs: []string{"sampling", "stateful_fw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return outcomes
}

func TestRunProducesAllOutcomes(t *testing.T) {
	outcomes := runSubset(t)
	if len(outcomes) != 6 {
		t.Fatalf("got %d outcomes, want 6", len(outcomes))
	}
	for _, o := range outcomes {
		if o.Program == "" || len(o.Ops) == 0 {
			t.Fatalf("incomplete outcome: %+v", o)
		}
		// Chipmunk must compile every semantics-preserving mutant of these
		// small programs (the Table 2 headline).
		if !o.ChipmunkOK {
			t.Errorf("%s mutant %d: Chipmunk failed (timeout=%v)", o.Program, o.Index, o.ChipmunkTimeout)
		}
		if o.ChipmunkOK && o.ChipmunkUsage.Stages == 0 {
			t.Errorf("%s mutant %d: missing usage", o.Program, o.Index)
		}
	}
}

func TestTable2Aggregation(t *testing.T) {
	outcomes := runSubset(t)
	rows := Table2(outcomes)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Mutants != 3 {
			t.Errorf("%s: %d mutants", r.Program, r.Mutants)
		}
		if r.ChipmunkRate != 1.0 {
			t.Errorf("%s: Chipmunk rate %.2f, want 1.0", r.Program, r.ChipmunkRate)
		}
		if r.DominoRate < 0 || r.DominoRate > 1 {
			t.Errorf("%s: Domino rate %.2f out of range", r.Program, r.DominoRate)
		}
		if r.ChipmunkMeanTime <= 0 || r.ChipmunkMaxTime < r.ChipmunkMeanTime {
			t.Errorf("%s: times mean=%v max=%v", r.Program, r.ChipmunkMeanTime, r.ChipmunkMaxTime)
		}
	}
	rendered := RenderTable2(rows)
	for _, want := range []string{"sampling", "stateful_fw", "Chipmunk", "Domino"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

func TestFigure5Aggregation(t *testing.T) {
	outcomes := runSubset(t)
	rows := Figure5(outcomes)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Both > 3 {
			t.Errorf("%s: both=%d > mutants", r.Program, r.Both)
		}
		if r.Both > 0 {
			// Figure 5's headline: Chipmunk has no variance and uses no
			// more stages than Domino.
			if r.ChipmunkStages.Variance() != 0 {
				t.Errorf("%s: Chipmunk stage variance %d", r.Program, r.ChipmunkStages.Variance())
			}
			if r.ChipmunkStages.Mean > r.DominoStages.Mean {
				t.Errorf("%s: Chipmunk deeper than Domino (%v vs %v)",
					r.Program, r.ChipmunkStages.Mean, r.DominoStages.Mean)
			}
		}
	}
	rendered := RenderFigure5(rows)
	if !strings.Contains(rendered, "Pipeline stages") || !strings.Contains(rendered, "Max ALUs") {
		t.Errorf("render incomplete:\n%s", rendered)
	}
}

func TestCSVWellFormed(t *testing.T) {
	outcomes := runSubset(t)
	csv := CSV(outcomes)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(outcomes) {
		t.Fatalf("%d CSV lines for %d outcomes", len(lines), len(outcomes))
	}
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		// The reason column is quoted and may contain commas; count a
		// minimum instead of an exact match.
		if got := len(strings.Split(line, ",")); got < len(header) {
			t.Fatalf("CSV row has %d fields, want >= %d: %s", got, len(header), line)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	s := newSeries([]int{2, 5, 3})
	if s.Mean != 10.0/3 || s.Min != 2 || s.Max != 5 || s.Variance() != 3 {
		t.Fatalf("series = %+v", s)
	}
	empty := newSeries(nil)
	if empty.Mean != 0 || empty.Variance() != 0 {
		t.Fatalf("empty series = %+v", empty)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := &Options{}
	if o.mutants() != 10 || o.timeout() != 120*time.Second || o.parallel() < 1 {
		t.Fatalf("defaults: %d %v %d", o.mutants(), o.timeout(), o.parallel())
	}
}

func TestUnknownProgramRejected(t *testing.T) {
	_, err := Run(context.Background(), Options{Programs: []string{"nope"}})
	if err == nil {
		t.Fatal("unknown program should error")
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outcomes, err := Run(ctx, Options{Mutants: 2, Programs: []string{"sampling"}})
	if err == nil {
		// All jobs skipped before start is also acceptable if no error —
		// but outcomes should then be empty-ish. Accept either contract.
		for _, o := range outcomes {
			_ = o
		}
	}
}

func TestUsageTypeIsShared(t *testing.T) {
	// Both compilers report the same Usage type so Figure 5 compares
	// like with like.
	var u pisa.Usage
	o := MutantOutcome{ChipmunkUsage: u, DominoUsage: u}
	_ = o
}
