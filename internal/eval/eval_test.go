package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pisa"
	"repro/internal/programs"
	"repro/internal/solcache"
)

// runSubset performs a small but real evaluation (2 programs x 3 mutants).
func runSubset(t *testing.T) []MutantOutcome {
	t.Helper()
	outcomes, err := Run(context.Background(), Options{
		Mutants:  3,
		Seed:     42,
		Timeout:  2 * time.Minute,
		Programs: []string{"sampling", "stateful_fw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return outcomes
}

func TestRunProducesAllOutcomes(t *testing.T) {
	outcomes := runSubset(t)
	if len(outcomes) != 6 {
		t.Fatalf("got %d outcomes, want 6", len(outcomes))
	}
	for _, o := range outcomes {
		if o.Program == "" || len(o.Ops) == 0 {
			t.Fatalf("incomplete outcome: %+v", o)
		}
		// Chipmunk must compile every semantics-preserving mutant of these
		// small programs (the Table 2 headline).
		if !o.ChipmunkOK {
			t.Errorf("%s mutant %d: Chipmunk failed (timeout=%v)", o.Program, o.Index, o.ChipmunkTimeout)
		}
		if o.ChipmunkOK && o.ChipmunkUsage.Stages == 0 {
			t.Errorf("%s mutant %d: missing usage", o.Program, o.Index)
		}
	}
}

func TestTable2Aggregation(t *testing.T) {
	outcomes := runSubset(t)
	rows := Table2(outcomes)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Mutants != 3 {
			t.Errorf("%s: %d mutants", r.Program, r.Mutants)
		}
		if r.ChipmunkRate != 1.0 {
			t.Errorf("%s: Chipmunk rate %.2f, want 1.0", r.Program, r.ChipmunkRate)
		}
		if r.DominoRate < 0 || r.DominoRate > 1 {
			t.Errorf("%s: Domino rate %.2f out of range", r.Program, r.DominoRate)
		}
		if r.ChipmunkMeanTime <= 0 || r.ChipmunkMaxTime < r.ChipmunkMeanTime {
			t.Errorf("%s: times mean=%v max=%v", r.Program, r.ChipmunkMeanTime, r.ChipmunkMaxTime)
		}
	}
	rendered := RenderTable2(rows)
	for _, want := range []string{"sampling", "stateful_fw", "Chipmunk", "Domino"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

func TestFigure5Aggregation(t *testing.T) {
	outcomes := runSubset(t)
	rows := Figure5(outcomes)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Both > 3 {
			t.Errorf("%s: both=%d > mutants", r.Program, r.Both)
		}
		if r.Both > 0 {
			// Figure 5's headline: Chipmunk has no variance and uses no
			// more stages than Domino.
			if r.ChipmunkStages.Variance() != 0 {
				t.Errorf("%s: Chipmunk stage variance %d", r.Program, r.ChipmunkStages.Variance())
			}
			if r.ChipmunkStages.Mean > r.DominoStages.Mean {
				t.Errorf("%s: Chipmunk deeper than Domino (%v vs %v)",
					r.Program, r.ChipmunkStages.Mean, r.DominoStages.Mean)
			}
		}
	}
	rendered := RenderFigure5(rows)
	if !strings.Contains(rendered, "Pipeline stages") || !strings.Contains(rendered, "Max ALUs") {
		t.Errorf("render incomplete:\n%s", rendered)
	}
}

func TestCSVWellFormed(t *testing.T) {
	outcomes := runSubset(t)
	csv := CSV(outcomes)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(outcomes) {
		t.Fatalf("%d CSV lines for %d outcomes", len(lines), len(outcomes))
	}
	header := strings.Split(lines[0], ",")
	for _, line := range lines[1:] {
		// The reason column is quoted and may contain commas; count a
		// minimum instead of an exact match.
		if got := len(strings.Split(line, ",")); got < len(header) {
			t.Fatalf("CSV row has %d fields, want >= %d: %s", got, len(header), line)
		}
	}
}

// TestCSVHeaderPinned pins the exact CSV header. External plotting scripts
// address columns by these names and positions; any schema change must land
// here deliberately, appending rather than reordering where possible.
func TestCSVHeaderPinned(t *testing.T) {
	const want = "program,mutant,ops,chipmunk_ok,chipmunk_timeout,chipmunk_ms,chipmunk_stages,chipmunk_max_alus,chipmunk_iters,chipmunk_conflicts,chipmunk_decisions,chipmunk_propagations,chipmunk_peak_cnf_vars,chipmunk_infeasible_dim,chipmunk_mode,domino_ok,domino_ms,domino_stages,domino_max_alus,bpf_ran,bpf_ok,bpf_timeout,bpf_ms,bpf_instrs,bpf_iters,bpf_conflicts,bpf_infeasible_dim,domino_reason"
	if CSVHeader != want {
		t.Fatalf("CSV header drifted:\n got %s\nwant %s", CSVHeader, want)
	}
	if got := strings.SplitN(CSV(nil), "\n", 2)[0]; got != want {
		t.Fatalf("CSV() emits a different header than CSVHeader:\n%s", got)
	}
}

// TestCSVModeColumn checks the chipmunk_mode cell lands between the
// infeasibility dimension and the domino columns.
func TestCSVModeColumn(t *testing.T) {
	csv := CSV([]MutantOutcome{{Program: "sampling", ChipmunkOK: true, ChipmunkMode: "holes"}})
	row := strings.Split(strings.SplitN(csv, "\n", 3)[1], ",")
	header := strings.Split(CSVHeader, ",")
	idx := -1
	for i, h := range header {
		if h == "chipmunk_mode" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatal("chipmunk_mode missing from header")
	}
	if row[idx] != "holes" {
		t.Fatalf("chipmunk_mode cell = %q, want \"holes\" (row %v)", row[idx], row)
	}
}

// TestCSVInfeasibleDimColumns checks the infeasibility columns: the
// header names them for both targets and a forensics-annotated outcome
// renders its binding dimensions in the right fields.
func TestCSVInfeasibleDimColumns(t *testing.T) {
	csv := CSV([]MutantOutcome{{
		Program:               "marple_reorder",
		ChipmunkInfeasibleDim: "stage-depth",
		BPFRan:                true,
		BPFInfeasibleDim:      "instruction-slots",
	}})
	header := strings.Split(strings.SplitN(csv, "\n", 2)[0], ",")
	for _, col := range []string{"chipmunk_infeasible_dim", "bpf_infeasible_dim"} {
		found := false
		for _, h := range header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Errorf("CSV header missing %q", col)
		}
	}
	row := strings.SplitN(csv, "\n", 3)[1]
	if !strings.Contains(row, ",stage-depth,") || !strings.Contains(row, ",instruction-slots,") {
		t.Errorf("CSV row missing dimensions: %s", row)
	}

	// A feasible sweep with the knob on leaves the columns empty.
	outcomes, err := Run(context.Background(), Options{
		Mutants:  1,
		Seed:     42,
		Timeout:  2 * time.Minute,
		Programs: []string{"marple_new_flow"},
		Explain:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.ChipmunkOK {
			t.Fatalf("%s mutant %d should compile", o.Program, o.Index)
		}
		if o.ChipmunkInfeasibleDim != "" {
			t.Errorf("feasible mutant carries infeasibility dimension %q", o.ChipmunkInfeasibleDim)
		}
	}
}

func TestSeriesStats(t *testing.T) {
	s := newSeries([]int{2, 5, 3})
	if s.Mean != 10.0/3 || s.Min != 2 || s.Max != 5 || s.Variance() != 3 {
		t.Fatalf("series = %+v", s)
	}
	empty := newSeries(nil)
	if empty.Mean != 0 || empty.Variance() != 0 {
		t.Fatalf("empty series = %+v", empty)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := &Options{}
	if o.mutants() != 10 || o.timeout() != 120*time.Second || o.parallel() < 1 {
		t.Fatalf("defaults: %d %v %d", o.mutants(), o.timeout(), o.parallel())
	}
}

func TestUnknownProgramRejected(t *testing.T) {
	_, err := Run(context.Background(), Options{Programs: []string{"nope"}})
	if err == nil {
		t.Fatal("unknown program should error")
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outcomes, err := Run(ctx, Options{Mutants: 2, Programs: []string{"sampling"}})
	if err == nil {
		// All jobs skipped before start is also acceptable if no error —
		// but outcomes should then be empty-ish. Accept either contract.
		for _, o := range outcomes {
			_ = o
		}
	}
}

func TestUsageTypeIsShared(t *testing.T) {
	// Both compilers report the same Usage type so Figure 5 compares
	// like with like.
	var u pisa.Usage
	o := MutantOutcome{ChipmunkUsage: u, DominoUsage: u}
	_ = o
}

// TestEffortMetricsAndTraces runs a small parallel evaluation with a shared
// registry and a trace directory, checking (a) per-mutant effort lands in
// the outcomes and CSV, (b) the shared registry's conflict total equals the
// sum over outcomes (race-safe accumulation), and (c) each mutant writes a
// well-formed JSONL trace.
func TestEffortMetricsAndTraces(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	outcomes, err := Run(context.Background(), Options{
		Mutants:  3,
		Seed:     42,
		Timeout:  2 * time.Minute,
		Parallel: 4,
		Programs: []string{"sampling", "stateful_fw"},
		Metrics:  reg,
		TraceDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}

	var conflicts, decisions int64
	for _, o := range outcomes {
		if o.ChipmunkOK && o.ChipmunkEffort.Iters == 0 {
			t.Errorf("%s mutant %d: compiled with zero CEGIS iterations", o.Program, o.Index)
		}
		conflicts += o.ChipmunkEffort.Conflicts
		decisions += o.ChipmunkEffort.Decisions
	}
	if got := reg.Counter("sat.conflicts").Value(); got != conflicts {
		t.Errorf("registry sat.conflicts = %d, outcomes sum to %d", got, conflicts)
	}
	if got := reg.Counter("sat.decisions").Value(); got != decisions {
		t.Errorf("registry sat.decisions = %d, outcomes sum to %d", got, decisions)
	}
	if got := reg.Counter("core.attempts").Value(); got < int64(len(outcomes)) {
		t.Errorf("core.attempts = %d, want >= %d", got, len(outcomes))
	}

	for _, o := range outcomes {
		path := filepath.Join(dir, fmt.Sprintf("%s_m%02d.jsonl", o.Program, o.Index))
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("missing trace: %v", err)
		}
		recs, err := obs.ReadRecords(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if err := obs.CheckWellFormed(recs); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		if len(recs) == 0 || recs[0].Name != "compile" {
			t.Errorf("%s: trace should open with a compile span", path)
		}
	}

	csv := CSV(outcomes)
	header := strings.Split(strings.SplitN(csv, "\n", 2)[0], ",")
	for _, col := range []string{"chipmunk_iters", "chipmunk_conflicts",
		"chipmunk_decisions", "chipmunk_propagations", "chipmunk_peak_cnf_vars"} {
		found := false
		for _, h := range header {
			if h == col {
				found = true
			}
		}
		if !found {
			t.Errorf("CSV header missing %q", col)
		}
	}

	footer := RenderTable2(Table2(outcomes))
	if !strings.Contains(footer, "solver effort:") || !strings.Contains(footer, "SAT conflicts") {
		t.Errorf("Table 2 render missing effort footer:\n%s", footer)
	}
}

// TestRunWithBPFTarget exercises the per-target column: with Options.BPF
// set, mutants of a budgeted program carry register-machine outcomes, the
// Table 2 render grows the BPF columns, and the CSV rows record them.
func TestRunWithBPFTarget(t *testing.T) {
	outcomes, err := Run(context.Background(), Options{
		Mutants:  2,
		Seed:     42,
		Timeout:  2 * time.Minute,
		Programs: []string{"marple_new_flow"},
		BPF:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if !o.BPFRan {
			t.Errorf("%s mutant %d: BPF target not attempted", o.Program, o.Index)
		}
		if !o.BPFOK {
			t.Errorf("%s mutant %d: BPF infeasible at the hand-worked budget (timeout=%v)",
				o.Program, o.Index, o.BPFTimeout)
		}
		if o.BPFOK && (o.BPFInstrs < 1 || o.BPFEffort.Iters == 0) {
			t.Errorf("%s mutant %d: BPF outcome missing instrs/effort: %+v", o.Program, o.Index, o)
		}
	}
	rendered := RenderTable2(Table2(outcomes))
	if !strings.Contains(rendered, "BPF mean(s)") {
		t.Errorf("render missing BPF columns:\n%s", rendered)
	}
	if !strings.Contains(CSV(outcomes), "bpf_ok") {
		t.Error("CSV missing bpf columns")
	}

	// Without the flag the render must keep its pre-BPF shape.
	plain := RenderTable2(Table2([]MutantOutcome{{Program: "sampling", ChipmunkOK: true}}))
	if strings.Contains(plain, "BPF") {
		t.Errorf("BPF columns leaked into a non-BPF render:\n%s", plain)
	}
}

// TestPerProgramMutationSeedsDistinct guards the seed-derivation fix: the
// old len(name)*7919 offset collided for same-length program names
// (blue_increase / blue_decrease), giving them structurally parallel
// mutant sets. The FNV-based derivation must separate every corpus pair.
func TestPerProgramMutationSeedsDistinct(t *testing.T) {
	names := programs.Names()
	seen := map[int64]string{}
	for _, n := range names {
		s := programSeed(n)
		if s < 0 {
			t.Errorf("programSeed(%q) = %d, want non-negative", n, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("programSeed collision: %q and %q both map to %d", prev, n, s)
		}
		seen[s] = n
	}
	if programSeed("blue_increase") == programSeed("blue_decrease") {
		t.Error("the regression pair still collides")
	}
}

// TestRunWithCacheWarmSweep: a second evaluation sweep over the same
// corpus slice with a shared solution cache must serve every compilation
// from the cache.
func TestRunWithCacheWarmSweep(t *testing.T) {
	cache := solcache.New(64)
	opts := Options{
		Mutants:  3,
		Seed:     42,
		Timeout:  2 * time.Minute,
		Programs: []string{"sampling"},
		Cache:    cache,
	}
	cold, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 && st.Size == 0 {
		t.Fatalf("cold sweep stats: %+v", st)
	}
	warm, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("sweep sizes differ: %d vs %d", len(warm), len(cold))
	}
	st := cache.Stats()
	if st.Hits < int64(len(warm)) {
		t.Errorf("warm sweep: %d cache hits, want >= %d (every Chipmunk compile)", st.Hits, len(warm))
	}
	for i := range warm {
		if !warm[i].ChipmunkOK {
			t.Errorf("warm mutant %d failed", i)
		}
	}
}
