// Package eval regenerates the paper's evaluation (§4): Table 2 (code
// generation rate and time for Chipmunk and Domino over 8 programs × 10
// semantics-preserving mutations) and Figure 5 (pipeline stages and maximum
// ALUs per stage when both compilers succeed).
//
// The harness is deterministic given a seed: the same mutants are generated
// and the same CEGIS search runs every time. Compilations run in parallel
// across worker goroutines (each compilation itself is single-threaded), so
// wall-clock time per mutant is measured inside the worker.
package eval

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/alu"
	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/domino"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/perfhist"
	"repro/internal/pisa"
	"repro/internal/programs"
	"repro/internal/solcache"
)

// Options configures an evaluation run.
type Options struct {
	// Mutants per program (the paper uses 10). 0 means 10.
	Mutants int
	// Seed drives mutation generation and CEGIS test inputs.
	Seed int64
	// Timeout bounds each Chipmunk compilation (the paper's runs also
	// timed out on some flowlet mutations). 0 means 120s.
	Timeout time.Duration
	// Parallel is the number of concurrent compilations. 0 means
	// GOMAXPROCS.
	Parallel int
	// IntraParallelism, when above 1, runs each compilation as a racing
	// portfolio of that many workers (core.Options.Parallelism). Combine
	// with Parallel thoughtfully: total concurrency is the product.
	IntraParallelism int
	// SeedFanout is how many diversified CEGIS seeds race per stage depth
	// when IntraParallelism enables portfolio search.
	SeedFanout int
	// Programs restricts the corpus (empty = all 8).
	Programs []string
	// Metrics, when non-nil, accumulates solver-effort counters across
	// every compilation (workers share the registry; it is race-safe).
	Metrics *obs.Registry
	// TraceDir, when non-empty, writes one JSONL span trace per mutant
	// compilation into the directory as <program>_m<index>.jsonl.
	TraceDir string
	// Cache, when non-nil, memoizes compilation results by canonical
	// problem fingerprint: mutants that canonicalize identically (and
	// repeat sweeps over the same corpus) share one CEGIS run. Workers
	// share the cache; it is race-safe.
	Cache *solcache.Cache
	// History, when non-nil, appends one performance-history record per
	// mutant compilation (internal/perfhist): the full corpus sweep
	// becomes a per-program sample pool the regression sentinel can test.
	// Workers share the store; it is race-safe.
	History *perfhist.Store
	// BPF additionally compiles each mutant for the bpf register-machine
	// target at the hand-worked per-program slot budgets (bpfBudgets),
	// adding per-target columns to Table 2 and the CSV so PISA and BPF
	// feasibility/effort can be compared on the same corpus. Programs
	// without a worked-out budget report the BPF target as not attempted.
	BPF bool
	// Explain runs the infeasibility-forensics pass (core.Options.Explain)
	// on mutants whose compile concludes infeasible, recording each
	// target's binding resource dimension in the CSV infeasibility
	// columns. Feasible and timed-out mutants are unaffected.
	Explain bool
	// CEGISMode selects the CEGIS strategy for the PISA compilations
	// (core.Options.CEGISMode): "" or "cex" for counterexample-guided,
	// "holes" for hole elimination. The mode that concluded each mutant is
	// recorded in the CSV chipmunk_mode column either way.
	CEGISMode string
}

func (o *Options) mutants() int {
	if o.Mutants == 0 {
		return 10
	}
	return o.Mutants
}

func (o *Options) timeout() time.Duration {
	if o.Timeout == 0 {
		return 120 * time.Second
	}
	return o.Timeout
}

func (o *Options) parallel() int {
	if o.Parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

func (o *Options) corpus() ([]programs.Benchmark, error) {
	all := programs.Corpus()
	if len(o.Programs) == 0 {
		return all, nil
	}
	var out []programs.Benchmark
	for _, name := range o.Programs {
		b, err := programs.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	_ = all
	return out, nil
}

// MutantOutcome is one mutant's result under both compilers.
type MutantOutcome struct {
	Program string
	Index   int
	Ops     []mutate.Op

	ChipmunkOK      bool
	ChipmunkTimeout bool
	ChipmunkTime    time.Duration
	ChipmunkUsage   pisa.Usage
	// ChipmunkEffort records the compilation's solver effort (CEGIS
	// iterations, SAT conflicts, peak CNF size) for the CSV effort columns.
	ChipmunkEffort core.Effort
	// ChipmunkMode names the CEGIS strategy that concluded the compile
	// ("cex" or "holes"), so per-mode sweeps can be joined on one CSV.
	ChipmunkMode string

	// ChipmunkInfeasibleDim names the binding resource dimension (a
	// core.Dim* constant) when the mutant was infeasible and forensics ran
	// (Options.Explain); empty otherwise.
	ChipmunkInfeasibleDim string

	DominoOK     bool
	DominoReason string
	DominoTime   time.Duration
	DominoUsage  pisa.Usage

	// BPF target (Options.BPF). BPFRan is false when the target was not
	// requested or the program has no hand-worked slot budget; BPFInstrs
	// is the live (non-nop) instruction count of the synthesized program.
	BPFRan     bool
	BPFOK      bool
	BPFTimeout bool
	BPFTime    time.Duration
	BPFInstrs  int
	BPFEffort  core.Effort
	// BPFInfeasibleDim mirrors ChipmunkInfeasibleDim for the bpf target.
	BPFInfeasibleDim string
}

// reorderMask restricts marple_reorder's opcode vocabulary to the lean ISA
// a reorder detector needs (the select idiom plus map ops) — on the full
// ISA this benchmark's search does not converge in eval time. Mirrors the
// difftest acceptance table.
var reorderMask = uint32(1)<<bpf.OpNop | 1<<bpf.OpMov | 1<<bpf.OpAdd |
	1<<bpf.OpSub | 1<<bpf.OpMul | 1<<bpf.OpLt | 1<<bpf.OpLdMap | 1<<bpf.OpStMap

// bpfBudgets are hand-worked slot budgets (and, where needed, opcode
// vocabulary restrictions) for the corpus programs whose register-program
// encodings synthesize in eval time. Mutations are semantics-preserving
// and the sketch depends only on variable counts and semantics, so a
// budget worked out for the source program is valid for its mutants.
var bpfBudgets = map[string]struct {
	Slots int
	Mask  uint32
}{
	"marple_new_flow": {Slots: 5},
	"stateful_fw":     {Slots: 6},
	"marple_reorder":  {Slots: 7, Mask: reorderMask},
	"sampling":        {Slots: 8},
}

// Run compiles every mutant of every selected program with both compilers
// and returns the raw outcomes, which Table2 and Figure5 aggregate.
func Run(ctx context.Context, opts Options) ([]MutantOutcome, error) {
	corpus, err := opts.corpus()
	if err != nil {
		return nil, err
	}

	type job struct {
		bench  programs.Benchmark
		mutant mutate.Mutant
		index  int
	}
	var jobs []job
	for _, b := range corpus {
		prog := b.Parse()
		muts := mutate.Generate(prog, opts.mutants(), opts.Seed+programSeed(b.Name))
		for i, m := range muts {
			jobs = append(jobs, job{bench: b, mutant: m, index: i})
		}
	}

	outcomes := make([]MutantOutcome, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.parallel())
	for i, j := range jobs {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			outcomes[i] = compileBoth(ctx, j.bench, j.mutant, j.index, opts)
		}(i, j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	return outcomes, nil
}

// programSeed derives a per-program offset for the mutation stream from an
// FNV-1a hash of the program name. The previous derivation
// (len(name)*7919) collided for same-length names — blue_increase and
// blue_decrease received identical seeds and therefore structurally
// parallel mutant sets. The offset is masked positive so adding it to a
// user seed cannot overflow surprisingly.
func programSeed(name string) int64 {
	h := fnv.New64a()
	io.WriteString(h, name)
	return int64(h.Sum64() & (1<<62 - 1))
}

func compileBoth(ctx context.Context, b programs.Benchmark, m mutate.Mutant, idx int, opts Options) MutantOutcome {
	out := MutantOutcome{Program: b.Name, Index: idx, Ops: m.Applied}

	// Domino baseline.
	dres, err := domino.Compile(m.Program, b.StatefulALU, b.ConstBits)
	if err == nil {
		out.DominoOK = dres.OK
		out.DominoReason = dres.Reason
		out.DominoTime = dres.Elapsed
		if dres.OK {
			out.DominoUsage = dres.Usage
		}
	}

	// Chipmunk.
	cctx, cancel := context.WithTimeout(ctx, opts.timeout())
	defer cancel()
	if opts.Metrics != nil {
		cctx = obs.ContextWithMetrics(cctx, opts.Metrics)
	}
	if opts.TraceDir != "" {
		tr := obs.NewTracer()
		cctx = obs.ContextWithTracer(cctx, tr)
		defer func() {
			path := filepath.Join(opts.TraceDir, fmt.Sprintf("%s_m%02d.jsonl", b.Name, idx))
			if f, ferr := os.Create(path); ferr == nil {
				tr.StreamTo(f)
				f.Close()
			}
		}()
	}
	rep, err := core.Compile(cctx, m.Program, core.Options{
		Width:        b.Width,
		MaxStages:    b.MaxStages,
		StatelessALU: alu.Stateless{ConstBits: b.ConstBits},
		StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		Seed:         opts.Seed + int64(idx),
		Parallelism:  opts.IntraParallelism,
		SeedFanout:   opts.SeedFanout,
		Cache:        opts.Cache,
		History:      opts.History,
		Explain:      opts.Explain,
		CEGISMode:    opts.CEGISMode,
	})
	if err == nil {
		out.ChipmunkOK = rep.Feasible
		out.ChipmunkTimeout = rep.TimedOut
		out.ChipmunkTime = rep.Elapsed
		out.ChipmunkEffort = rep.Effort()
		out.ChipmunkMode = rep.Mode
		if rep.Feasible {
			out.ChipmunkUsage = rep.Usage
		}
		if rep.Explanation != nil {
			out.ChipmunkInfeasibleDim = rep.Explanation.Dimension
		}
	}

	// BPF register-machine target (opt-in): same frontend program, same
	// ALU immediates, retargeted at the hand-worked slot budget.
	if bb, known := bpfBudgets[b.Name]; opts.BPF && known {
		bctx, bcancel := context.WithTimeout(ctx, opts.timeout())
		defer bcancel()
		brep, berr := core.Compile(bctx, m.Program, core.Options{
			Target:        "bpf",
			MaxStages:     bb.Slots,
			FixedStages:   true,
			BPFOpcodeMask: bb.Mask,
			StatelessALU:  alu.Stateless{ConstBits: b.ConstBits},
			StatefulALU:   alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
			Seed:          opts.Seed + int64(idx),
			Cache:         opts.Cache,
			History:       opts.History,
			Explain:       opts.Explain,
		})
		if berr == nil {
			out.BPFRan = true
			out.BPFOK = brep.Feasible
			out.BPFTimeout = brep.TimedOut
			out.BPFTime = brep.Elapsed
			out.BPFEffort = brep.Effort()
			if cfg, isBPF := brep.Artifact.(*bpf.Config); isBPF && brep.Feasible {
				out.BPFInstrs = cfg.LiveInstrs()
			}
			if brep.Explanation != nil {
				out.BPFInfeasibleDim = brep.Explanation.Dimension
			}
		}
	}
	return out
}

// --- Table 2 -------------------------------------------------------------------

// Table2Row aggregates one program's Table 2 entry.
type Table2Row struct {
	Program          string
	Mutants          int
	ChipmunkRate     float64 // fraction of mutants Chipmunk compiles
	DominoRate       float64
	ChipmunkTimeouts int
	ChipmunkMeanTime time.Duration
	ChipmunkMaxTime  time.Duration
	DominoMeanTime   time.Duration
	// Solver-effort totals across the program's mutants.
	ChipmunkIters     int
	ChipmunkConflicts int64
	PeakCNFVars       int
	// BPF per-target column (Options.BPF): mutants attempted on the
	// register machine, their success rate, and mean synthesis time.
	BPFAttempts int
	BPFRate     float64
	BPFTimeouts int
	BPFMeanTime time.Duration
}

// Table2 aggregates outcomes into the paper's Table 2 rows, in corpus
// order.
func Table2(outcomes []MutantOutcome) []Table2Row {
	byProg := map[string][]MutantOutcome{}
	for _, o := range outcomes {
		byProg[o.Program] = append(byProg[o.Program], o)
	}
	var rows []Table2Row
	for _, name := range programs.Names() {
		os := byProg[name]
		if len(os) == 0 {
			continue
		}
		row := Table2Row{Program: name, Mutants: len(os)}
		var cOK, dOK, bOK int
		var cSum, dSum, bSum time.Duration
		for _, o := range os {
			if o.ChipmunkOK {
				cOK++
			}
			if o.ChipmunkTimeout {
				row.ChipmunkTimeouts++
			}
			if o.DominoOK {
				dOK++
			}
			if o.BPFRan {
				row.BPFAttempts++
				bSum += o.BPFTime
				if o.BPFOK {
					bOK++
				}
				if o.BPFTimeout {
					row.BPFTimeouts++
				}
			}
			cSum += o.ChipmunkTime
			dSum += o.DominoTime
			if o.ChipmunkTime > row.ChipmunkMaxTime {
				row.ChipmunkMaxTime = o.ChipmunkTime
			}
			row.ChipmunkIters += o.ChipmunkEffort.Iters
			row.ChipmunkConflicts += o.ChipmunkEffort.Conflicts
			if o.ChipmunkEffort.PeakCNFVars > row.PeakCNFVars {
				row.PeakCNFVars = o.ChipmunkEffort.PeakCNFVars
			}
		}
		row.ChipmunkRate = float64(cOK) / float64(len(os))
		row.DominoRate = float64(dOK) / float64(len(os))
		row.ChipmunkMeanTime = cSum / time.Duration(len(os))
		row.DominoMeanTime = dSum / time.Duration(len(os))
		if row.BPFAttempts > 0 {
			row.BPFRate = float64(bOK) / float64(row.BPFAttempts)
			row.BPFMeanTime = bSum / time.Duration(row.BPFAttempts)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable2 formats rows in the layout of the paper's Table 2. When any
// row carries BPF outcomes (Options.BPF), per-target columns are appended
// so PISA and register-machine feasibility/time sit side by side; rows
// whose program has no worked-out slot budget show "-".
func RenderTable2(rows []Table2Row) string {
	hasBPF := false
	for _, r := range rows {
		if r.BPFAttempts > 0 {
			hasBPF = true
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %10s %10s %14s %14s %9s",
		"Program", "Chipmunk", "Domino", "Chip mean(s)", "Chip max(s)", "timeouts")
	if hasBPF {
		fmt.Fprintf(&sb, " %10s %13s", "BPF", "BPF mean(s)")
	}
	sb.WriteByte('\n')
	var iters int
	var conflicts int64
	peak := 0
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %9.0f%% %9.0f%% %14.3f %14.3f %9d",
			r.Program, r.ChipmunkRate*100, r.DominoRate*100,
			r.ChipmunkMeanTime.Seconds(), r.ChipmunkMaxTime.Seconds(), r.ChipmunkTimeouts)
		if hasBPF {
			if r.BPFAttempts > 0 {
				fmt.Fprintf(&sb, " %9.0f%% %13.3f", r.BPFRate*100, r.BPFMeanTime.Seconds())
			} else {
				fmt.Fprintf(&sb, " %10s %13s", "-", "-")
			}
		}
		sb.WriteByte('\n')
		iters += r.ChipmunkIters
		conflicts += r.ChipmunkConflicts
		if r.PeakCNFVars > peak {
			peak = r.PeakCNFVars
		}
	}
	fmt.Fprintf(&sb, "solver effort: %d CEGIS iterations, %d SAT conflicts, peak CNF %d vars\n",
		iters, conflicts, peak)
	return sb.String()
}

// --- Figure 5 ------------------------------------------------------------------

// Series summarizes a metric across mutants: mean with min/max error bars
// (the paper plots Domino with error bars and notes Chipmunk has none).
type Series struct {
	Mean     float64
	Min, Max int
}

func newSeries(xs []int) Series {
	if len(xs) == 0 {
		return Series{}
	}
	s := Series{Min: xs[0], Max: xs[0]}
	total := 0
	for _, x := range xs {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = float64(total) / float64(len(xs))
	return s
}

// Variance reports the error-bar spread.
func (s Series) Variance() int { return s.Max - s.Min }

// Figure5Row is one program's bar group in Figure 5: resource usage of the
// two compilers over mutants where both succeeded.
type Figure5Row struct {
	Program string
	// Both counts mutants where both compilers generated code.
	Both int
	// Stage usage (left plot of Figure 5).
	ChipmunkStages Series
	DominoStages   Series
	// Max ALUs per stage (right plot).
	ChipmunkALUs Series
	DominoALUs   Series
}

// Figure5 aggregates outcomes into the Figure 5 bar groups.
func Figure5(outcomes []MutantOutcome) []Figure5Row {
	byProg := map[string][]MutantOutcome{}
	for _, o := range outcomes {
		byProg[o.Program] = append(byProg[o.Program], o)
	}
	var rows []Figure5Row
	for _, name := range programs.Names() {
		os := byProg[name]
		if len(os) == 0 {
			continue
		}
		var cs, ds, ca, da []int
		both := 0
		for _, o := range os {
			if !o.ChipmunkOK || !o.DominoOK {
				continue
			}
			both++
			cs = append(cs, o.ChipmunkUsage.Stages)
			ds = append(ds, o.DominoUsage.Stages)
			ca = append(ca, o.ChipmunkUsage.MaxALUsPerStage)
			da = append(da, o.DominoUsage.MaxALUsPerStage)
		}
		rows = append(rows, Figure5Row{
			Program:        name,
			Both:           both,
			ChipmunkStages: newSeries(cs),
			DominoStages:   newSeries(ds),
			ChipmunkALUs:   newSeries(ca),
			DominoALUs:     newSeries(da),
		})
	}
	return rows
}

// RenderFigure5 formats the Figure 5 data as two text "plots" with
// mean [min,max] bars.
func RenderFigure5(rows []Figure5Row) string {
	var sb strings.Builder
	sb.WriteString("Pipeline stages used (mean [min,max] over mutants where both succeed)\n")
	fmt.Fprintf(&sb, "%-18s %6s %20s %20s\n", "Program", "both", "Chipmunk", "Domino")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %6d %20s %20s\n", r.Program, r.Both,
			renderSeries(r.ChipmunkStages), renderSeries(r.DominoStages))
	}
	sb.WriteString("\nMax ALUs per stage (mean [min,max])\n")
	fmt.Fprintf(&sb, "%-18s %6s %20s %20s\n", "Program", "both", "Chipmunk", "Domino")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %6d %20s %20s\n", r.Program, r.Both,
			renderSeries(r.ChipmunkALUs), renderSeries(r.DominoALUs))
	}
	return sb.String()
}

func renderSeries(s Series) string {
	return fmt.Sprintf("%.1f [%d,%d]", s.Mean, s.Min, s.Max)
}

// CSVHeader is the exact column list CSV emits. External plotting scripts
// key on these names, so the header is pinned by test: adding a column means
// updating the pin deliberately, and existing columns must never move.
const CSVHeader = "program,mutant,ops,chipmunk_ok,chipmunk_timeout,chipmunk_ms,chipmunk_stages,chipmunk_max_alus,chipmunk_iters,chipmunk_conflicts,chipmunk_decisions,chipmunk_propagations,chipmunk_peak_cnf_vars,chipmunk_infeasible_dim,chipmunk_mode,domino_ok,domino_ms,domino_stages,domino_max_alus,bpf_ran,bpf_ok,bpf_timeout,bpf_ms,bpf_instrs,bpf_iters,bpf_conflicts,bpf_infeasible_dim,domino_reason"

// CSV renders outcomes as a flat CSV for external plotting.
func CSV(outcomes []MutantOutcome) string {
	var sb strings.Builder
	sb.WriteString(CSVHeader + "\n")
	sorted := append([]MutantOutcome{}, outcomes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Program != sorted[j].Program {
			return sorted[i].Program < sorted[j].Program
		}
		return sorted[i].Index < sorted[j].Index
	})
	for _, o := range sorted {
		ops := make([]string, len(o.Ops))
		for i, op := range o.Ops {
			ops[i] = string(op)
		}
		fmt.Fprintf(&sb, "%s,%d,%s,%t,%t,%.1f,%d,%d,%d,%d,%d,%d,%d,%s,%s,%t,%.3f,%d,%d,%t,%t,%t,%.1f,%d,%d,%d,%s,%q\n",
			o.Program, o.Index, strings.Join(ops, "+"),
			o.ChipmunkOK, o.ChipmunkTimeout, float64(o.ChipmunkTime.Microseconds())/1000,
			o.ChipmunkUsage.Stages, o.ChipmunkUsage.MaxALUsPerStage,
			o.ChipmunkEffort.Iters, o.ChipmunkEffort.Conflicts,
			o.ChipmunkEffort.Decisions, o.ChipmunkEffort.Propagations,
			o.ChipmunkEffort.PeakCNFVars, o.ChipmunkInfeasibleDim, o.ChipmunkMode,
			o.DominoOK, float64(o.DominoTime.Microseconds())/1000,
			o.DominoUsage.Stages, o.DominoUsage.MaxALUsPerStage,
			o.BPFRan, o.BPFOK, o.BPFTimeout, float64(o.BPFTime.Microseconds())/1000,
			o.BPFInstrs, o.BPFEffort.Iters, o.BPFEffort.Conflicts,
			o.BPFInfeasibleDim, o.DominoReason)
	}
	return sb.String()
}
