package emit

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/linerate"
	"repro/internal/pisa"
	"repro/internal/programs"
)

// interpCSV replays the emitted harness's input stream through the
// reference interpreter running the *source program* — not the config —
// producing the same CSV the emitted binary prints.
func interpCSV(t *testing.T, name string, cfg *pisa.Config, packets int, seed uint64) string {
	t.Helper()
	b, err := programs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Parse()
	w := cfg.Grid.WordWidth
	in := interp.MustNew(w)
	fields := append([]string{}, cfg.Fields...)
	states := append([]string{}, cfg.States...)
	sortStrings(fields)
	sortStrings(states)
	var sb strings.Builder
	rngState := seed
	next := func() uint64 {
		rngState += 0x9e3779b97f4a7c15
		z := rngState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	state := map[string]uint64{}
	for i := 0; i < packets; i++ {
		snap := interp.NewSnapshot()
		for _, f := range fields {
			snap.Pkt[f] = w.Trunc(next())
		}
		for s, v := range state {
			snap.State[s] = v
		}
		res, err := in.Run(prog, snap)
		if err != nil {
			t.Fatal(err)
		}
		state = map[string]uint64{}
		for _, s := range states {
			state[s] = res.State[s]
		}
		fmt.Fprintf(&sb, "%d", i)
		for _, f := range fields {
			fmt.Fprintf(&sb, ",%d", res.Pkt[f])
		}
		for _, s := range states {
			fmt.Fprintf(&sb, ",%d", res.State[s])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// linerateCSV replays the same stream through the compiled line-rate
// engine.
func linerateCSV(t *testing.T, cfg *pisa.Config, packets int, seed uint64) string {
	t.Helper()
	eng, err := linerate.Compile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := cfg.Grid.WordWidth
	fields := append([]string{}, cfg.Fields...)
	states := append([]string{}, cfg.States...)
	sortStrings(fields)
	sortStrings(states)
	// The engine works in cfg order; build index maps for sorted output.
	fi := make([]int, len(fields))
	for i, f := range fields {
		for j, cf := range cfg.Fields {
			if cf == f {
				fi[i] = j
			}
		}
	}
	si := make([]int, len(states))
	for i, s := range states {
		for j, cs := range cfg.States {
			if cs == s {
				si[i] = j
			}
		}
	}
	buf := eng.NewBuf()
	fv := make([]uint64, len(cfg.Fields))
	sv := make([]uint64, len(cfg.States))
	var sb strings.Builder
	rngState := seed
	next := func() uint64 {
		rngState += 0x9e3779b97f4a7c15
		z := rngState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < packets; i++ {
		// The stream draws per sorted field name, like the emitted main.
		for _, j := range fi {
			fv[j] = w.Trunc(next())
		}
		eng.ExecInto(buf, fv, sv)
		fmt.Fprintf(&sb, "%d", i)
		for _, j := range fi {
			fmt.Fprintf(&sb, ",%d", fv[j])
		}
		for _, j := range si {
			fmt.Fprintf(&sb, ",%d", sv[j])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestThreeWayCorpusDifferential cross-checks three independent execution
// paths on every corpus program: the reference interpreter running the
// source program, the compiled line-rate engine running the synthesized
// config, and the emitted standalone Go program built and run with the
// real toolchain. Agreement pins the whole lowering chain — any
// miscompile in sketch extraction, engine compilation, or emission shows
// up as a CSV diff.
func TestThreeWayCorpusDifferential(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	const packets = 200
	const seed = 41
	for _, b := range programs.Corpus() {
		name := b.Name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := compileBench(t, name)

			want := interpCSV(t, name, cfg, packets, seed)
			if got := linerateCSV(t, cfg, packets, seed); strings.TrimSpace(got) != strings.TrimSpace(want) {
				t.Fatalf("linerate engine diverges from interpreter.\ngot:\n%s\nwant:\n%s",
					firstLines(got, 5), firstLines(want, 5))
			}

			src, err := Go(cfg, packets, seed)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module emitted\n\ngo 1.22\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(goBin, "run", ".")
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("emitted program failed: %v\n%s", err, out)
			}
			if got := strings.TrimSpace(string(out)); got != strings.TrimSpace(want) {
				t.Fatalf("emitted Go diverges from interpreter.\ngot:\n%s\nwant:\n%s",
					firstLines(got, 5), firstLines(want, 5))
			}
		})
	}
}
