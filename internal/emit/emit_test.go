package emit

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/pisa"
	"repro/internal/programs"
)

// compileBench synthesizes one corpus program for emission tests.
func compileBench(t *testing.T, name string) *pisa.Config {
	t.Helper()
	b, err := programs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := core.Compile(ctx, b.Parse(), core.Options{
		Width:        b.Width,
		MaxStages:    b.MaxStages,
		StatelessALU: alu.Stateless{ConstBits: b.ConstBits},
		StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		Seed:         7,
	})
	if err != nil || !rep.Feasible {
		t.Fatalf("setup compile of %s failed: %v", name, err)
	}
	return rep.Config
}

// TestGoBackendDifferential is the translator's proof: emit Go for a
// synthesized pipeline, build and run it with the real toolchain, and
// compare its packet-by-packet output with the simulator.
func TestGoBackendDifferential(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	for _, name := range []string{"sampling", "flowlet", "rcp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := compileBench(t, name)
			const packets = 200
			const seed = 99
			src, err := Go(cfg, packets, seed)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module emitted\n\ngo 1.22\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(goBin, "run", ".")
			cmd.Dir = dir
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("emitted program failed to run: %v\n%s\n--- source ---\n%s", err, out, src)
			}

			// Recompute the same stream with the simulator.
			want := simulateCSV(cfg, packets, seed)
			if got := strings.TrimSpace(string(out)); got != strings.TrimSpace(want) {
				t.Fatalf("emitted program diverges from simulator.\nfirst lines got:\n%s\nwant:\n%s",
					firstLines(got, 5), firstLines(want, 5))
			}
		})
	}
}

// simulateCSV mirrors the emitted harness: same splitmix stream, same CSV.
func simulateCSV(cfg *pisa.Config, packets int, seed uint64) string {
	fields := append([]string{}, cfg.Fields...)
	states := append([]string{}, cfg.States...)
	sortStrings(fields)
	sortStrings(states)
	var sb strings.Builder
	rngState := seed
	next := func() uint64 {
		rngState += 0x9e3779b97f4a7c15
		z := rngState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	state := map[string]uint64{}
	w := cfg.Grid.WordWidth
	for i := 0; i < packets; i++ {
		pkt := map[string]uint64{}
		for _, f := range fields {
			pkt[f] = w.Trunc(next())
		}
		outPkt, outState := cfg.Exec(pkt, state)
		state = outState
		fmt.Fprintf(&sb, "%d", i)
		for _, f := range fields {
			fmt.Fprintf(&sb, ",%d", outPkt[f])
		}
		for _, s := range states {
			fmt.Fprintf(&sb, ",%d", outState[s])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestGoBackendIsResolved(t *testing.T) {
	// The emitted code must contain no hole lookups or mux-chain
	// interpretation artifacts — compilation, not interpretation.
	cfg := compileBench(t, "sampling")
	src, err := Go(cfg, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"Holes", "map[string]uint64{\"opcode\"", "selectBy"} {
		if strings.Contains(src, banned) {
			t.Fatalf("emitted source leaks configuration machinery (%q)", banned)
		}
	}
	if !strings.Contains(src, "func process(") || !strings.Contains(src, "func main()") {
		t.Fatal("emitted source missing entry points")
	}
}

func TestGoBackendRejectsInvalidConfig(t *testing.T) {
	cfg := compileBench(t, "sampling")
	bad := *cfg
	bad.Grid.Stages = 0
	if _, err := Go(&bad, 10, 1); err == nil {
		t.Fatal("invalid config should be rejected")
	}
	if _, err := P4(&bad); err == nil {
		t.Fatal("invalid config should be rejected by P4 too")
	}
}

func TestP4BackendStructure(t *testing.T) {
	cfg := compileBench(t, "sampling")
	src, err := P4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#include <v1model.p4>",
		"header chipmunk_h",
		"bit<10> sample;",
		"register<bit<10>>(1) reg_count;",
		"@atomic",
		"control ChipmunkPipe",
		"---- stage 0 ----",
		"hdr.sample = meta.phv_",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("P4 output missing %q:\n%s", want, src)
		}
	}
}

func TestP4StatelessOpcodes(t *testing.T) {
	// Every opcode must render to something containing its operands.
	for op := uint64(0); op < alu.NumStatelessOpcodes; op++ {
		h := map[string]uint64{"opcode": op, "imm": 3, "imux1": 0, "imux2": 1}
		expr := statelessP4Expr(h)
		if expr == "" {
			t.Fatalf("opcode %d rendered empty", op)
		}
		if op != alu.SlOpConst && !strings.Contains(expr, "meta.phv_0") {
			t.Errorf("opcode %s does not reference operand A: %q", alu.StatelessOpName(op), expr)
		}
	}
}

// TestEmittedGoForHandWrittenConfig emits a tiny hand-built config and
// runs it, covering the non-synthesized path.
func TestEmittedGoForHandWrittenConfig(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	_ = goBin
	prog := parser.MustParse("inc", "pkt.a = pkt.a + 1;")
	_ = prog
	g := pisa.GridSpec{Stages: 1, Width: 1, WordWidth: 8,
		StatelessALU: alu.Stateless{}, StatefulALU: alu.Stateful{Kind: alu.Counter}}
	h := pisa.NewHoles[uint64](g, false, 1, func(string, int, bool) uint64 { return 0 })
	h.Stateless[0][0]["opcode"] = alu.SlOpAddImm
	h.Stateless[0][0]["imm"] = 1
	h.OMux[0][0] = 1
	cfg := &pisa.Config{Grid: g, Fields: []string{"a"}, Values: h}
	src, err := Go(cfg, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644)
	os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module emitted\n\ngo 1.22\n"), 0o644)
	cmd := exec.Command(goBin, "run", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	want := simulateCSV(cfg, 50, 7)
	if strings.TrimSpace(string(out)) != strings.TrimSpace(want) {
		t.Fatal("hand-built config emission diverges")
	}
}

var update = flag.Bool("update", false, "rewrite golden files")

// TestP4Golden pins the exact P4 rendering of the sampling pipeline.
// Regenerate with: go test ./internal/emit -run TestP4Golden -update
func TestP4Golden(t *testing.T) {
	cfg := compileBench(t, "sampling")
	got, err := P4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sampling.p4.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Fatalf("P4 output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
