package emit

import (
	"strings"
	"testing"

	"repro/internal/bpf"
)

// handBPF is the hand-written sampling register program (mirrors the one
// in internal/bpf's tests): count==10 → sample=1, count=0; else count++.
func handBPF() *bpf.Config {
	return &bpf.Config{
		Spec:   bpf.MachineSpec{Slots: 9, Regs: 3, WordWidth: 10, ConstBits: 4},
		Fields: []string{"sample"},
		States: []string{"count"},
		Instrs: []bpf.Instr{
			{Op: bpf.OpLdMap, Dst: 1, Cell: 0},
			{Op: bpf.OpMov, Dst: 0, Src: 1},
			{Op: bpf.OpEqImm, Dst: 0, Imm: 10},
			{Op: bpf.OpNop},
			{Op: bpf.OpAddImm, Dst: 1, Imm: 1},
			{Op: bpf.OpMov, Dst: 2, Src: 0},
			{Op: bpf.OpEqImm, Dst: 2, Imm: 0},
			{Op: bpf.OpMul, Dst: 1, Src: 2},
			{Op: bpf.OpStMap, Cell: 0, Src: 1},
		},
	}
}

// TestBPFCStructure checks the emitted C contains the load-bearing
// constructs: the state map, the masked-width defines, the inline
// processing function with one statement per live instruction, and the
// license stanza the loader requires. Without clang/libbpf in this
// offline environment the output is checked structurally, like P4.
func TestBPFCStructure(t *testing.T) {
	cfg := handBPF()
	src, err := BPFC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"#include <linux/bpf.h>",
		"#define CHIPMUNK_WIDTH 10",
		"#define CHIPMUNK_MASK 0x3ffULL",
		"struct chipmunk_state",
		"__u64 count; /* m[0] */",
		"BPF_MAP_TYPE_ARRAY",
		"static __always_inline void chipmunk_process",
		"__u64 r0 = pkt->sample & CHIPMUNK_MASK;",
		"r1 = st->count & CHIPMUNK_MASK;",
		"r0 = (r0 == 10ULL) ? 1 : 0;",
		"r1 = (r1 + 1ULL) & CHIPMUNK_MASK;",
		"st->count = r1;",
		"pkt->sample = r0;",
		"SEC(\"xdp\")",
		"char _license[] SEC(\"license\") = \"GPL\";",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("BPFC output missing %q:\n%s", want, src)
		}
	}
	// Nop elision: slot 3 must not produce a statement.
	if strings.Contains(src, "/* 3: nop */") || strings.Contains(src, "nop;") {
		t.Errorf("nop slot leaked into output:\n%s", src)
	}
	if !strings.Contains(src, "8 live instructions") {
		t.Errorf("live-instruction count missing:\n%s", src)
	}
}

// TestBPFCSemanticsMirrorExec spot-checks that the emitted statements
// implement the machine's semantics by mentally executing the C against
// Config.Exec on a couple of inputs — here automated by string-level
// expectations on the comparison/select/signed forms.
func TestBPFCSemanticsMirrorExec(t *testing.T) {
	cfg := &bpf.Config{
		Spec:   bpf.MachineSpec{Slots: 4, Regs: 3, WordWidth: 8, ConstBits: 4},
		Fields: []string{"a", "b"},
		Instrs: []bpf.Instr{
			{Op: bpf.OpLt, Dst: 0, Src: 1},
			{Op: bpf.OpSel, Dst: 0, Src: 1, Imm: 3},
			{Op: bpf.OpGeImm, Dst: 1, Imm: 7},
			{Op: bpf.OpNeg, Dst: 1},
		},
	}
	src, err := BPFC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"r0 = (SEXT(r0) < SEXT(r1)) ? 1 : 0;",
		"r0 = r0 ? r1 : 3ULL;",
		"r1 = (SEXT(r1) >= SEXT(7ULL)) ? 1 : 0;",
		"r1 = (0 - r1) & CHIPMUNK_MASK;",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("missing %q in:\n%s", want, src)
		}
	}
	// Stateless config: no map, no state parameter.
	if strings.Contains(src, "chipmunk_state") || strings.Contains(src, "bpf_map_lookup_elem") {
		t.Errorf("stateless program should not emit state machinery:\n%s", src)
	}
	if _, err := BPFC(&bpf.Config{Spec: bpf.MachineSpec{Slots: 0}}); err == nil {
		t.Fatal("invalid config should be rejected")
	}
}
