// Package emit translates synthesized hardware configurations into
// low-level code — the backend translator the paper lists as pending work
// (§3.1, Limitations: "running Chipmunk on a real switch such as Tofino
// requires translating Chipmunk's holes to low-level switch
// configurations... We are currently designing such a translator").
//
// Two backends are provided:
//
//   - Go translates a pisa.Config into a standalone, dependency-free Go
//     program that implements the same packet transaction. The translation
//     reuses the repository's core trick one more time: arith.Arith is
//     instantiated with V = string, where each operation emits one SSA
//     assignment into the output buffer and returns the fresh variable's
//     name. Because the datapath is evaluated with the configuration's
//     *concrete* hole values, every mux chain and opcode dispatch is
//     resolved at emission, not run time — this is compilation, not
//     interpretation — and the emitted program is differential-tested
//     against the simulator by actually building and running it.
//
//   - P4 renders the configuration as a P4-16-flavored program (headers,
//     registers with @atomic apply blocks, one action per used ALU, a
//     stage-ordered control). It documents how each Table 1 hole maps onto
//     switch-facing constructs; without a vendor toolchain in this offline
//     environment it is checked structurally, not compiled.
package emit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alu"
	"repro/internal/arith"
	"repro/internal/pisa"
	"repro/internal/word"
)

// --- Go backend ----------------------------------------------------------------

// goEmitter implements arith.Arith[string]: every operation appends one SSA
// assignment and returns the variable holding the result. Constants embed
// directly as literals.
type goEmitter struct {
	n     int
	lines []ssaLine
}

type ssaLine struct {
	name string
	expr string
}

var _ arith.Arith[string] = (*goEmitter)(nil)

func (e *goEmitter) emit(expr string) string {
	e.n++
	v := fmt.Sprintf("v%d", e.n)
	e.lines = append(e.lines, ssaLine{name: v, expr: expr})
	return v
}

// liveLines performs dead-code elimination: only SSA assignments reachable
// from the root variables survive. The datapath computes every ALU's
// output whether or not the output muxes route it; the emitted program
// keeps just the used cone, like a real backend.
func (e *goEmitter) liveLines(roots []string) []ssaLine {
	live := map[string]bool{}
	for _, r := range roots {
		for _, v := range ssaVars(r) {
			live[v] = true
		}
	}
	// Reverse sweep: SSA order guarantees deps precede uses.
	keep := make([]bool, len(e.lines))
	for i := len(e.lines) - 1; i >= 0; i-- {
		if !live[e.lines[i].name] {
			continue
		}
		keep[i] = true
		for _, v := range ssaVars(e.lines[i].expr) {
			live[v] = true
		}
	}
	var out []ssaLine
	for i, l := range e.lines {
		if keep[i] {
			out = append(out, l)
		}
	}
	return out
}

// ssaVars extracts the v<N> identifiers referenced by an expression.
func ssaVars(expr string) []string {
	var out []string
	for i := 0; i < len(expr); i++ {
		if expr[i] != 'v' {
			continue
		}
		// Must not be part of a longer identifier.
		if i > 0 && (isAlnum(expr[i-1]) || expr[i-1] == '_') {
			continue
		}
		j := i + 1
		for j < len(expr) && expr[j] >= '0' && expr[j] <= '9' {
			j++
		}
		if j == i+1 {
			continue // bare 'v'
		}
		if j < len(expr) && (isAlnum(expr[j]) || expr[j] == '_') {
			continue
		}
		out = append(out, expr[i:j])
		i = j - 1
	}
	return out
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ConstInt implements Arith; values are emitted as decimal literals so the
// generated source stays readable.
func (e *goEmitter) ConstInt(v int64) string {
	return fmt.Sprintf("c(%d)", v)
}

// Binary operations delegate to the tiny runtime emitted in the prelude,
// which reproduces internal/word's semantics at the config's width.
func (e *goEmitter) Add(a, b string) string    { return e.emit(fmt.Sprintf("add(%s, %s)", a, b)) }
func (e *goEmitter) Sub(a, b string) string    { return e.emit(fmt.Sprintf("sub(%s, %s)", a, b)) }
func (e *goEmitter) Mul(a, b string) string    { return e.emit(fmt.Sprintf("mul(%s, %s)", a, b)) }
func (e *goEmitter) BitAnd(a, b string) string { return e.emit(fmt.Sprintf("band(%s, %s)", a, b)) }
func (e *goEmitter) BitOr(a, b string) string  { return e.emit(fmt.Sprintf("bor(%s, %s)", a, b)) }
func (e *goEmitter) BitXor(a, b string) string { return e.emit(fmt.Sprintf("bxor(%s, %s)", a, b)) }
func (e *goEmitter) BitNot(a string) string    { return e.emit(fmt.Sprintf("bnot(%s)", a)) }
func (e *goEmitter) Neg(a string) string       { return e.emit(fmt.Sprintf("neg(%s)", a)) }
func (e *goEmitter) Shl(a, b string) string    { return e.emit(fmt.Sprintf("shl(%s, %s)", a, b)) }
func (e *goEmitter) Shr(a, b string) string    { return e.emit(fmt.Sprintf("shr(%s, %s)", a, b)) }
func (e *goEmitter) Eq(a, b string) string     { return e.emit(fmt.Sprintf("eq(%s, %s)", a, b)) }
func (e *goEmitter) Ne(a, b string) string     { return e.emit(fmt.Sprintf("ne(%s, %s)", a, b)) }
func (e *goEmitter) Lt(a, b string) string     { return e.emit(fmt.Sprintf("lt(%s, %s)", a, b)) }
func (e *goEmitter) Le(a, b string) string     { return e.emit(fmt.Sprintf("le(%s, %s)", a, b)) }
func (e *goEmitter) Gt(a, b string) string     { return e.emit(fmt.Sprintf("lt(%s, %s)", b, a)) }
func (e *goEmitter) Ge(a, b string) string     { return e.emit(fmt.Sprintf("le(%s, %s)", b, a)) }
func (e *goEmitter) LAnd(a, b string) string   { return e.emit(fmt.Sprintf("land(%s, %s)", a, b)) }
func (e *goEmitter) LOr(a, b string) string    { return e.emit(fmt.Sprintf("lor(%s, %s)", a, b)) }
func (e *goEmitter) LNot(a string) string      { return e.emit(fmt.Sprintf("lnot(%s)", a)) }
func (e *goEmitter) Mux(c, t, f string) string {
	return e.emit(fmt.Sprintf("mux(%s, %s, %s)", c, t, f))
}

// Go translates the configuration into a self-contained Go source file.
// The generated program exposes
//
//	func process(pkt, state map[string]uint64) (map[string]uint64, map[string]uint64)
//
// and a main() that runs `packets` deterministic pseudo-random packets
// through it, printing one CSV line per packet — the harness the
// differential test drives.
func Go(cfg *pisa.Config, packets int, seed uint64) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	e := &goEmitter{}
	w := cfg.Grid.WordWidth

	// Field and state loads.
	fieldVars := make([]string, len(cfg.Fields))
	for i, f := range cfg.Fields {
		fieldVars[i] = e.emit(fmt.Sprintf("trunc(pkt[%q])", f))
	}
	stateVars := make([]string, len(cfg.States))
	for i, s := range cfg.States {
		stateVars[i] = e.emit(fmt.Sprintf("trunc(state[%q])", s))
	}

	// The datapath, fully resolved: hole values are concrete, so the
	// emitter sees literals everywhere a configuration bit is consulted.
	holes := pisa.MapHoles(cfg.Values, func(v uint64) string {
		return fmt.Sprintf("c(%d)", v)
	})
	outF, outS := pisa.Datapath[string](e, cfg.Grid, holes, fieldVars, stateVars)

	roots := append(append([]string{}, outF...), outS...)
	var sb strings.Builder
	fmt.Fprintf(&sb, goPrelude, w, w.Mask())
	sb.WriteString("func process(pkt, state map[string]uint64) (map[string]uint64, map[string]uint64) {\n")
	if len(cfg.States) == 0 {
		sb.WriteString("\t_ = state\n")
	}
	for _, line := range e.liveLines(roots) {
		fmt.Fprintf(&sb, "\t%s := %s\n", line.name, line.expr)
	}
	sb.WriteString("\toutPkt := map[string]uint64{}\n")
	for k := range cfg.Fields {
		fmt.Fprintf(&sb, "\toutPkt[%q] = %s\n", cfg.Fields[k], outF[k])
	}
	sb.WriteString("\toutState := map[string]uint64{}\n")
	for k := range cfg.States {
		fmt.Fprintf(&sb, "\toutState[%q] = %s\n", cfg.States[k], outS[k])
	}
	sb.WriteString("\treturn outPkt, outState\n}\n\n")

	// Test-harness main: deterministic packet stream, CSV output.
	fields := append([]string{}, cfg.Fields...)
	states := append([]string{}, cfg.States...)
	sort.Strings(fields)
	sort.Strings(states)
	fmt.Fprintf(&sb, "func main() {\n")
	fmt.Fprintf(&sb, "\trngState := uint64(%d)\n", seed)
	fmt.Fprintf(&sb, "\tstate := map[string]uint64{}\n")
	fmt.Fprintf(&sb, "\tfor i := 0; i < %d; i++ {\n", packets)
	fmt.Fprintf(&sb, "\t\tpkt := map[string]uint64{}\n")
	for _, f := range fields {
		fmt.Fprintf(&sb, "\t\tpkt[%q] = trunc(next(&rngState))\n", f)
	}
	fmt.Fprintf(&sb, "\t\toutPkt, outState := process(pkt, state)\n")
	fmt.Fprintf(&sb, "\t\tstate = outState\n")
	fmt.Fprintf(&sb, "\t\tfmt.Printf(\"%%d\", i)\n")
	for _, f := range fields {
		fmt.Fprintf(&sb, "\t\tfmt.Printf(\",%%d\", outPkt[%q])\n", f)
	}
	for _, s := range states {
		fmt.Fprintf(&sb, "\t\tfmt.Printf(\",%%d\", outState[%q])\n", s)
	}
	fmt.Fprintf(&sb, "\t\tfmt.Println()\n")
	fmt.Fprintf(&sb, "\t}\n}\n")
	return sb.String(), nil
}

// goPrelude is the emitted runtime: internal/word's semantics at a fixed
// width, in ~40 lines of dependency-free Go. %[1]d is the width, %[2]d the
// mask.
const goPrelude = `// Code generated by repro/internal/emit. DO NOT EDIT.
//
// A packet-processing pipeline synthesized by Chipmunk, translated to
// plain Go. All arithmetic is %[1]d-bit two's complement.
package main

import "fmt"

const mask = uint64(%[2]d)

func trunc(v uint64) uint64 { return v & mask }
func c(v int64) uint64      { return uint64(v) & mask }
func toInt(v uint64) int64 {
	v &= mask
	if v&(mask>>1+1) != 0 {
		return int64(v | ^mask)
	}
	return int64(v)
}
func b2w(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
func add(a, b uint64) uint64  { return (a + b) & mask }
func sub(a, b uint64) uint64  { return (a - b) & mask }
func mul(a, b uint64) uint64  { return (a * b) & mask }
func band(a, b uint64) uint64 { return a & b & mask }
func bor(a, b uint64) uint64  { return (a | b) & mask }
func bxor(a, b uint64) uint64 { return (a ^ b) & mask }
func bnot(a uint64) uint64    { return (^a) & mask }
func neg(a uint64) uint64     { return (-a) & mask }
func shl(a, b uint64) uint64 {
	if b >= %[1]d {
		return 0
	}
	return (a << b) & mask
}
func shr(a, b uint64) uint64 {
	if b >= %[1]d {
		return 0
	}
	return (a & mask) >> b
}
func eq(a, b uint64) uint64   { return b2w(a&mask == b&mask) }
func ne(a, b uint64) uint64   { return b2w(a&mask != b&mask) }
func lt(a, b uint64) uint64   { return b2w(toInt(a) < toInt(b)) }
func le(a, b uint64) uint64   { return b2w(toInt(a) <= toInt(b)) }
func land(a, b uint64) uint64 { return b2w(a != 0 && b != 0) }
func lor(a, b uint64) uint64  { return b2w(a != 0 || b != 0) }
func lnot(a uint64) uint64    { return b2w(a == 0) }
func mux(s, t, f uint64) uint64 {
	if s != 0 {
		return t
	}
	return f
}
func next(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

`

// --- P4 backend ----------------------------------------------------------------

// P4 renders the configuration as a P4-16-flavored program. Each PHV
// container becomes a metadata field; each active stateful ALU becomes a
// register with an @atomic read-modify-write; each used stateless ALU and
// output mux becomes an action in the stage's control block. The emitted
// text documents the hole values it was derived from.
func P4(cfg *pisa.Config) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	g := cfg.Grid
	var sb strings.Builder
	w := int(g.WordWidth)

	fmt.Fprintf(&sb, "// Auto-generated from a Chipmunk-synthesized configuration.\n")
	fmt.Fprintf(&sb, "// Grid: %d stages x %d containers, %d-bit datapath, stateful ALU %q.\n\n",
		g.Stages, g.Width, w, g.StatefulALU.Kind)
	fmt.Fprintf(&sb, "#include <core.p4>\n#include <v1model.p4>\n\n")

	// Headers: program fields.
	fmt.Fprintf(&sb, "header chipmunk_h {\n")
	for _, f := range cfg.Fields {
		fmt.Fprintf(&sb, "    bit<%d> %s;\n", w, f)
	}
	fmt.Fprintf(&sb, "}\n\n")

	// PHV containers as metadata.
	fmt.Fprintf(&sb, "struct metadata_t {\n")
	for c := 0; c < g.Width; c++ {
		fmt.Fprintf(&sb, "    bit<%d> phv_%d;\n", w, c)
	}
	fmt.Fprintf(&sb, "}\n\n")

	// Registers: one per active stateful ALU slot and state element.
	ns := g.StatefulALU.NumStates()
	for j, s := range cfg.States {
		fmt.Fprintf(&sb, "register<bit<%d>>(1) reg_%s; // state slot %d element %d\n",
			w, s, j/ns, j%ns)
	}
	sb.WriteString("\n")

	fmt.Fprintf(&sb, "control ChipmunkPipe(inout chipmunk_h hdr, inout metadata_t meta) {\n")

	// Field -> container loads (canonical or indicator allocation).
	fmt.Fprintf(&sb, "    apply {\n")
	for i, f := range cfg.Fields {
		c := i
		if cfg.Values.FieldAlloc != nil {
			for cc, bit := range cfg.Values.FieldAlloc[i] {
				if bit == 1 {
					c = cc
				}
			}
		}
		fmt.Fprintf(&sb, "        meta.phv_%d = hdr.%s; // field allocation\n", c, f)
	}

	for i := 0; i < g.Stages; i++ {
		fmt.Fprintf(&sb, "\n        // ---- stage %d ----\n", i)
		// Stateful ALUs first (their outputs feed the output muxes).
		for j := 0; j < g.Width; j++ {
			if cfg.Values.SaluActive[i][j] == 0 {
				continue
			}
			h := cfg.Values.Stateful[i][j]
			states := statesOfSlot(cfg, j)
			fmt.Fprintf(&sb, "        @atomic { // stateful ALU %d: %s, holes: %s\n",
				j, g.StatefulALU.Kind, holeComment(h))
			for _, s := range states {
				fmt.Fprintf(&sb, "            // reg_%s.read/modify/write per template %q\n", s, g.StatefulALU.Kind)
			}
			fmt.Fprintf(&sb, "        }\n")
		}
		// Stateless ALUs and output muxes.
		for j := 0; j < g.Width; j++ {
			sel := cfg.Values.OMux[i][j]
			if int(sel) < g.Width {
				fmt.Fprintf(&sb, "        meta.phv_%d = /* stateful ALU %d output (omux=%d) */ meta.phv_%d;\n",
					j, sel, sel, j)
				continue
			}
			sl := cfg.Values.Stateless[i][j]
			fmt.Fprintf(&sb, "        meta.phv_%d = %s; // stateless ALU %d\n",
				j, statelessP4Expr(sl), j)
		}
	}

	// Container -> field stores.
	sb.WriteString("\n")
	for i, f := range cfg.Fields {
		c := i
		if cfg.Values.FieldAlloc != nil {
			for cc, bit := range cfg.Values.FieldAlloc[i] {
				if bit == 1 {
					c = cc
				}
			}
		}
		fmt.Fprintf(&sb, "        hdr.%s = meta.phv_%d;\n", f, c)
	}
	fmt.Fprintf(&sb, "    }\n}\n")
	return sb.String(), nil
}

func statesOfSlot(cfg *pisa.Config, slot int) []string {
	ns := cfg.Grid.StatefulALU.NumStates()
	var out []string
	for k := 0; k < ns; k++ {
		idx := slot*ns + k
		if idx < len(cfg.States) {
			out = append(out, cfg.States[idx])
		}
	}
	return out
}

// statelessP4Expr renders one configured stateless ALU as a P4 expression.
func statelessP4Expr(h map[string]uint64) string {
	a := fmt.Sprintf("meta.phv_%d", h["imux1"])
	b := fmt.Sprintf("meta.phv_%d", h["imux2"])
	imm := fmt.Sprintf("%d", h["imm"])
	switch h["opcode"] {
	case alu.SlOpConst:
		return imm
	case alu.SlOpPassA:
		return a
	case alu.SlOpAdd:
		return a + " + " + b
	case alu.SlOpSub:
		return a + " - " + b
	case alu.SlOpAddImm:
		return a + " + " + imm
	case alu.SlOpSubImm:
		return a + " - " + imm
	case alu.SlOpAnd:
		return a + " & " + b
	case alu.SlOpOr:
		return a + " | " + b
	case alu.SlOpXor:
		return a + " ^ " + b
	case alu.SlOpNot:
		return "~" + a
	case alu.SlOpEq:
		return boolToBit(a + " == " + b)
	case alu.SlOpNe:
		return boolToBit(a + " != " + b)
	case alu.SlOpLt:
		return boolToBit(signed(a) + " < " + signed(b))
	case alu.SlOpGe:
		return boolToBit(signed(a) + " >= " + signed(b))
	case alu.SlOpEqImm:
		return boolToBit(a + " == " + imm)
	case alu.SlOpCond:
		return fmt.Sprintf("(%s != 0 ? %s : %s)", a, b, imm)
	default:
		return fmt.Sprintf("/* opcode %d */ %s", h["opcode"], a)
	}
}

func boolToBit(cond string) string { return fmt.Sprintf("((%s) ? 1 : 0)", cond) }

func signed(v string) string { return "(int)" + v }

// holeComment renders hole values deterministically for emitted comments.
func holeComment(h map[string]uint64) string {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, h[k])
	}
	return strings.Join(parts, " ")
}

// Width re-exports the config's word width for emit clients (CLI display).
func Width(cfg *pisa.Config) word.Width { return cfg.Grid.WordWidth }
