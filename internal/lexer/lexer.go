// Package lexer tokenizes Domino packet-transaction source code.
//
// The lexer is a straightforward hand-written scanner over a byte slice,
// supporting line comments (//...), block comments (/*...*/), decimal and
// hexadecimal integer literals, and the operator set of internal/token.
package lexer

import (
	"fmt"

	"repro/internal/token"
)

// Lexer scans Domino source into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// New creates a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns accumulated lexical errors.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || ('a' <= c && c <= 'f') || ('A' <= c && c <= 'F')
}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()

	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if kw, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: kw, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}

	case isDigit(c):
		start := l.off - 1
		if c == '0' && (l.peek() == 'x' || l.peek() == 'X') {
			l.advance()
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return token.Token{Kind: token.NUM, Lit: l.src[start:l.off], Pos: pos}
	}

	two := func(second byte, twoKind, oneKind token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: twoKind, Pos: pos}
		}
		return token.Token{Kind: oneKind, Pos: pos}
	}

	switch c {
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Pos: pos}
		}
		return two('=', token.PLUSEQ, token.PLUS)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return token.Token{Kind: token.DEC, Pos: pos}
		}
		return two('=', token.MINUSEQ, token.MINUS)
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '!':
		return two('=', token.NE, token.NOT)
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AND)
	case '|':
		return two('|', token.LOR, token.OR)
	case '^':
		return token.Token{Kind: token.XOR, Pos: pos}
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GE, token.GT)
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMICOLON, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	}
	l.errorf(pos, "illegal character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// All tokenizes the entire input, ending with the EOF token.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out
		}
	}
}
