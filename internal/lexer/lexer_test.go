package lexer

import (
	"testing"

	"repro/internal/token"
)

func kinds(src string) []token.Kind {
	toks := New(src).All()
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestOperators(t *testing.T) {
	src := "= == != < <= > >= << >> + ++ += - -- -= * ! ~ & && | || ^ ? : . , ; ( ) { }"
	want := []token.Kind{
		token.ASSIGN, token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE,
		token.SHL, token.SHR, token.PLUS, token.INC, token.PLUSEQ,
		token.MINUS, token.DEC, token.MINUSEQ, token.STAR, token.NOT, token.TILDE,
		token.AND, token.LAND, token.OR, token.LOR, token.XOR,
		token.QUESTION, token.COLON, token.DOT, token.COMMA, token.SEMICOLON,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE, token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := New("if else int count pkt _tmp x9").All()
	want := []struct {
		kind token.Kind
		lit  string
	}{
		{token.IF, "if"}, {token.ELSE, "else"}, {token.INT, "int"},
		{token.IDENT, "count"}, {token.IDENT, "pkt"}, {token.IDENT, "_tmp"},
		{token.IDENT, "x9"}, {token.EOF, ""},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Lit != w.lit {
			t.Fatalf("token %d = %v, want %v(%q)", i, toks[i], w.kind, w.lit)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := New("0 42 0x1F 007").All()
	lits := []string{"0", "42", "0x1F", "007"}
	for i, want := range lits {
		if toks[i].Kind != token.NUM || toks[i].Lit != want {
			t.Fatalf("token %d = %v, want NUM(%q)", i, toks[i], want)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
a = 1; /* block
   spanning lines */ b = 2;
`
	got := kinds(src)
	want := []token.Kind{
		token.IDENT, token.ASSIGN, token.NUM, token.SEMICOLON,
		token.IDENT, token.ASSIGN, token.NUM, token.SEMICOLON, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	l := New("a /* never closed")
	l.All()
	if len(l.Errors()) == 0 {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestIllegalCharacter(t *testing.T) {
	l := New("a = $;")
	toks := l.All()
	if len(l.Errors()) == 0 {
		t.Fatal("expected error for illegal character")
	}
	foundIllegal := false
	for _, tok := range toks {
		if tok.Kind == token.ILLEGAL {
			foundIllegal = true
		}
	}
	if !foundIllegal {
		t.Fatal("expected an ILLEGAL token")
	}
}

func TestPositions(t *testing.T) {
	toks := New("a\n  bb").All()
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) {
		t.Fatalf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Fatalf("second token pos = %v", toks[1].Pos)
	}
}
