// Package sketch turns a PISA grid specification into a SKETCH-style
// partial program: a symbolic datapath whose hardware configurations
// (Table 1 of the paper — ALU opcodes, input/output mux controls, packet
// field and state variable allocations, immediate operands) are free
// bit-vector holes for the CEGIS engine to solve.
//
// A Sketch owns one circuit.Builder and one input word per hole. The
// datapath can be instantiated any number of times at any datapath width
// against the same hole words: the synthesis phase instantiates it once per
// concrete test input (constant folding shrinks those copies), and because
// hole words are width-independent, counterexamples found at the wide
// verification width can be constrained in the same solver as the narrow
// synthesis inputs — the paper's "outer-loop CEGIS" (§3.1, Scaling).
//
// The package implements both packet-field allocation modes of §3.1:
// canonical allocation (field k lives in container k; Figure 4 shows this
// loses no expressiveness on homogeneous grids) and indicator-variable
// allocation (a free 0/1 matrix with permutation assertions), kept for the
// ablation benchmarks.
package sketch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/alu"
	"repro/internal/arith"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/pisa"
	"repro/internal/word"
)

// Options selects sketch-construction variants.
type Options struct {
	// IndicatorAlloc uses the indicator-variable field allocation instead
	// of the canonical one (Figure 4 ablation).
	IndicatorAlloc bool
	// SymmetryBreak adds solution-space-pruning constraints to
	// AssertDomains (tagged circuit.GroupSymmetry): don't-care pinning of
	// dead ALUs and lex-ordering of interchangeable stateful columns.
	// Verdict-preserving at every width (see assertSymmetry); off by
	// default so the standard path's clause stream is untouched.
	SymmetryBreak bool
}

// Sketch is a symbolic PISA datapath with free holes.
type Sketch struct {
	Grid pisa.GridSpec
	Opts Options

	// B is the circuit builder holding holes and all instantiations.
	B *circuit.Builder

	// NumFields and NumStates are the program's variable counts after
	// canonicalization (states counted in variables, not slots).
	NumFields int
	NumStates int

	holes     *pisa.Holes[circuit.Word] // words at natural hole width
	holeBits  map[string]int
	holeNames []string       // deterministic order
	holeWords []circuit.Word // same order as holeNames
	minWidth  word.Width
}

// New builds a sketch for the grid and program shape. The grid's WordWidth
// field is ignored here; widths are chosen per instantiation.
func New(b *circuit.Builder, grid pisa.GridSpec, numFields, numStates int, opts Options) (*Sketch, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	if numFields > grid.Width {
		return nil, fmt.Errorf("sketch: %d packet fields exceed %d PHV containers (paper §3.1: one field per container)", numFields, grid.Width)
	}
	if numStates > grid.StateSlots() {
		return nil, fmt.Errorf("sketch: %d state variables exceed %d stateful slots", numStates, grid.StateSlots())
	}
	s := &Sketch{
		Grid:      grid,
		Opts:      opts,
		B:         b,
		NumFields: numFields,
		NumStates: numStates,
		holeBits:  map[string]int{},
	}
	s.minWidth = 1
	s.holes = pisa.NewHoles[circuit.Word](grid, opts.IndicatorAlloc, numFields,
		func(name string, bits int, data bool) circuit.Word {
			s.holeBits[name] = bits
			s.holeNames = append(s.holeNames, name)
			if !data && word.Width(bits) > s.minWidth {
				s.minWidth = word.Width(bits)
			}
			hw := b.InputWord(name, word.Width(bits))
			s.holeWords = append(s.holeWords, hw)
			return hw
		})
	return s, nil
}

// HoleCount returns the number of holes and their total bit count — the m
// of Equation 1, reported by the evaluation harness as search-space size.
func (s *Sketch) HoleCount() (holes, bits int) {
	for _, b := range s.holeBits {
		bits += b
	}
	return len(s.holeBits), bits
}

// HoleInventory returns each hole's name and bit width in deterministic
// (creation) order — the full search-space breakdown behind HoleCount.
func (s *Sketch) HoleInventory() (names []string, bits []int) {
	names = append([]string{}, s.holeNames...)
	bits = make([]int, len(names))
	for i, n := range names {
		bits[i] = s.holeBits[n]
	}
	return names, bits
}

// HoleWords returns every hole word in deterministic (creation) order —
// the complete configuration space hole-elimination CEGIS blocks refuted
// candidates over.
func (s *Sketch) HoleWords() []circuit.Word {
	return append([]circuit.Word{}, s.holeWords...)
}

// PublishMetrics records the sketch's hole inventory into the registry:
// the total hole count and search-space bits (Equation 1's m), plus
// per-hole-class bit subtotals keyed by the hole name's leading component
// (e.g. "sketch.hole_bits.stateless"). A nil registry is a no-op.
func (s *Sketch) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	holes, bits := s.HoleCount()
	reg.Gauge("sketch.holes").Set(int64(holes))
	reg.Gauge("sketch.hole_bits").Set(int64(bits))
	byClass := map[string]int64{}
	for name, b := range s.holeBits {
		byClass[holeClass(name)] += int64(b)
	}
	for class, b := range byClass {
		reg.Gauge("sketch.hole_bits." + class).Set(b)
	}
}

// holeClass reduces a hole name like "stateless_0_1_opcode" to its leading
// non-numeric components ("stateless"), grouping holes across grid
// coordinates.
func holeClass(name string) string {
	parts := strings.Split(name, "_")
	for i, p := range parts {
		if p != "" && p[0] >= '0' && p[0] <= '9' {
			return strings.Join(parts[:i], "_")
		}
	}
	return name
}

// MinWidth is the narrowest datapath width at which the sketch may be
// instantiated soundly: the width of the widest *control* hole. At
// narrower widths control encodings would truncate and alias (opcode 14
// read as opcode 6), making the synthesis constraints inconsistent with
// wide-width verification. Data holes (immediates) may truncate freely —
// truncation commutes with the arithmetic they feed.
func (s *Sketch) MinWidth() word.Width { return s.minWidth }

// widen zero-extends or truncates a hole word to the datapath width,
// mirroring how narrow configuration registers feed a wide datapath.
func widen(w word.Width, hw circuit.Word) circuit.Word {
	out := make(circuit.Word, w)
	for i := 0; i < int(w); i++ {
		if i < len(hw) {
			out[i] = hw[i]
		} else {
			out[i] = circuit.False
		}
	}
	return out
}

// holesAt returns the hole structure with every word adjusted to width w.
func (s *Sketch) holesAt(w word.Width) *pisa.Holes[circuit.Word] {
	return pisa.MapHoles(s.holes, func(hw circuit.Word) circuit.Word { return widen(w, hw) })
}

// Instantiate runs the symbolic datapath at width w over the given field
// and state words (each of width w), returning the output words. fields
// and states must have length NumFields and NumStates.
func (s *Sketch) Instantiate(w word.Width, fields, states []circuit.Word) (outFields, outStates []circuit.Word) {
	if len(fields) != s.NumFields || len(states) != s.NumStates {
		panic(fmt.Sprintf("sketch: instantiate with %d fields, %d states; want %d, %d",
			len(fields), len(states), s.NumFields, s.NumStates))
	}
	g := s.Grid
	g.WordWidth = w
	a := arith.Circ{B: s.B, W: w}
	return pisa.Datapath[circuit.Word](a, g, s.holesAt(w), fields, states)
}

// AssertDomains adds the hole-domain assertions to the CNF: opcode-mask
// membership, mux-range bounds, the exactly-one-stage allocation of state
// variables, and (in indicator mode) the partial-permutation constraints on
// the field allocation matrix. These are the paper's "allocation
// constraints ... expressed as SKETCH assertions" (§3.1).
func (s *Sketch) AssertDomains(cnf *circuit.CNF) {
	b := s.B
	g := s.Grid

	// Each category is tagged as a named constraint group; the tags are
	// no-ops unless the caller enabled blame tracking on the CNF
	// (circuit.EnableGroups), in which case an UNSAT core can name the
	// binding domain constraint.
	defer cnf.SetGroup("")

	// Opcode mask: each stateless opcode hole must name an allowed opcode.
	cnf.SetGroup(circuit.GroupOpcodeMask)
	mask := g.StatelessALU.EffectiveOpcodeMask()
	if mask != alu.FullOpcodeMask {
		for i := range s.holes.Stateless {
			for j := range s.holes.Stateless[i] {
				op := s.holes.Stateless[i][j]["opcode"]
				allowed := circuit.False
				for v := 0; v < alu.NumStatelessOpcodes; v++ {
					if mask&(1<<uint(v)) == 0 {
						continue
					}
					allowed = b.Or(allowed, b.EqW(op, b.ConstWord(uint64(v), word.Width(len(op)))))
				}
				cnf.Assert(allowed)
			}
		}
	}

	// Mux ranges (only needed when the option count is not a power of 2).
	cnf.SetGroup(circuit.GroupMuxRange)
	assertLess := func(hw circuit.Word, n int) {
		if n >= 1<<uint(len(hw)) {
			return
		}
		cnf.Assert(b.UltW(hw, b.ConstWord(uint64(n), word.Width(len(hw)))))
	}
	for i := range s.holes.Stateless {
		for j := range s.holes.Stateless[i] {
			assertLess(s.holes.Stateless[i][j]["imux1"], g.Width)
			assertLess(s.holes.Stateless[i][j]["imux2"], g.Width)
			for k := 0; k < g.StatefulALU.NumPacketOperands(); k++ {
				assertLess(s.holes.Stateful[i][j][fmt.Sprintf("imux%d", k)], g.Width)
			}
			assertLess(s.holes.OMux[i][j], g.Width+1)
			if g.StatefulALU.Kind == alu.Pair {
				// Pair's out_sel has 6 meaningful values in 3 bits.
				assertLess(s.holes.Stateful[i][j]["out_sel"], 6)
			}
		}
	}

	// State allocation: used slots are active in exactly one stage, unused
	// slots never (the appendix's salu_active assertions).
	cnf.SetGroup(circuit.GroupStateAlloc)
	ns := g.StatefulALU.NumStates()
	usedSlots := (s.NumStates + ns - 1) / ns
	cw := word.Width(pisa.MuxBits(g.Stages) + 1)
	for j := 0; j < g.Width; j++ {
		if j >= usedSlots {
			for i := 0; i < g.Stages; i++ {
				cnf.AssertNot(s.holes.SaluActive[i][j][0])
			}
			continue
		}
		sum := b.ConstWord(0, cw)
		for i := 0; i < g.Stages; i++ {
			sum = b.AddW(sum, widen(cw, s.holes.SaluActive[i][j]))
		}
		cnf.Assert(b.EqW(sum, b.ConstWord(1, cw)))
	}

	// Indicator allocation: each field in exactly one container, each
	// container holding at most one field.
	cnf.SetGroup(circuit.GroupFieldAlloc)
	if s.holes.FieldAlloc != nil {
		cw := word.Width(pisa.MuxBits(g.Width) + 1)
		for f := range s.holes.FieldAlloc {
			sum := b.ConstWord(0, cw)
			for c := range s.holes.FieldAlloc[f] {
				sum = b.AddW(sum, widen(cw, s.holes.FieldAlloc[f][c]))
			}
			cnf.Assert(b.EqW(sum, b.ConstWord(1, cw)))
		}
		for c := 0; c < g.Width; c++ {
			sum := b.ConstWord(0, cw)
			for f := range s.holes.FieldAlloc {
				sum = b.AddW(sum, widen(cw, s.holes.FieldAlloc[f][c]))
			}
			cnf.Assert(b.UltW(sum, b.ConstWord(2, cw)))
		}
	}

	if s.Opts.SymmetryBreak {
		cnf.SetGroup(circuit.GroupSymmetry)
		s.assertSymmetry(cnf)
	}
}

// assertSymmetry prunes grid symmetries from the hole space. Every
// constraint here is verdict-preserving at every datapath width: for any
// hole assignment there is a semantically identical one (same
// input/output function, obtained by zeroing dead ALUs and permuting
// interchangeable columns together with the output-mux values that
// reference them) that satisfies all of them jointly, so feasibility is
// unchanged — only the number of equivalent candidates the solver can
// propose shrinks. Three families:
//
//  1. Dead stateless ALUs are pinned. Container j's stateless output
//     dest[j] is read only when omux_j selects index Width (any smaller
//     value selects a stateful output instead), so under omux_j < Width
//     the ALU's holes are forced to a canonical value: the lowest allowed
//     opcode and zeros elsewhere.
//  2. Dead stateful ALUs are pinned to zero. Slot j's output in stage i
//     is read only by an omux selecting index j, and its state register
//     is touched only when salu_active is set; when neither holds the
//     ALU's holes are forced to zero (zero satisfies every stateful
//     domain constraint).
//  3. Unused stateful columns are sorted. Slots j >= usedSlots carry no
//     state variable, so within one stage any permutation of their hole
//     columns (with omux values remapped to follow) is equivalent;
//     adjacent columns are ordered by unsigned comparison of their
//     concatenated hole words. Jointly consistent with (2): zeroed dead
//     columns are the unsigned minimum, so sorting can always place them
//     first.
func (s *Sketch) assertSymmetry(cnf *circuit.CNF) {
	b := s.B
	g := s.Grid

	slKeys := sortedKeys(s.holes.Stateless[0][0])
	sfKeys := sortedKeys(s.holes.Stateful[0][0])

	mask := g.StatelessALU.EffectiveOpcodeMask()
	minOp := uint64(0)
	for v := 0; v < alu.NumStatelessOpcodes; v++ {
		if mask&(1<<uint(v)) != 0 {
			minOp = uint64(v)
			break
		}
	}

	pin := func(cond circuit.Bit, hw circuit.Word, val uint64) {
		cnf.Assert(b.Implies(cond, b.EqW(hw, b.ConstWord(val, word.Width(len(hw))))))
	}

	for i := 0; i < g.Stages; i++ {
		for j := 0; j < g.Width; j++ {
			omux := s.holes.OMux[i][j]
			deadSl := b.UltW(omux, b.ConstWord(uint64(g.Width), word.Width(len(omux))))
			for _, k := range slKeys {
				v := uint64(0)
				if k == "opcode" {
					v = minOp
				}
				pin(deadSl, s.holes.Stateless[i][j][k], v)
			}

			unread := circuit.True
			for c := 0; c < g.Width; c++ {
				om := s.holes.OMux[i][c]
				unread = b.And(unread, b.Not(b.EqW(om, b.ConstWord(uint64(j), word.Width(len(om))))))
			}
			deadSf := b.And(unread, b.Not(s.holes.SaluActive[i][j][0]))
			for _, k := range sfKeys {
				pin(deadSf, s.holes.Stateful[i][j][k], 0)
			}
		}
	}

	ns := g.StatefulALU.NumStates()
	usedSlots := (s.NumStates + ns - 1) / ns
	for i := 0; i < g.Stages; i++ {
		for j := usedSlots; j+1 < g.Width; j++ {
			lo := s.statefulColumn(i, j, sfKeys)
			hi := s.statefulColumn(i, j+1, sfKeys)
			cnf.AssertNot(b.UltW(hi, lo))
		}
	}
}

// statefulColumn concatenates slot j's stateful hole words in stage i
// into one word, in the given deterministic key order, for the symmetry
// lex comparison.
func (s *Sketch) statefulColumn(i, j int, keys []string) circuit.Word {
	var col circuit.Word
	for _, k := range keys {
		col = append(col, s.holes.Stateful[i][j][k]...)
	}
	return col
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ExtractConfig reads every hole's value from the solver model (via the
// CNF) and assembles a concrete configuration. fields and states are the
// canonical variable-name orders; runWidth is the datapath width recorded
// for subsequent simulation.
func (s *Sketch) ExtractConfig(cnf *circuit.CNF, fields, states []string, runWidth word.Width) *pisa.Config {
	vals := pisa.MapHoles(s.holes, func(hw circuit.Word) uint64 { return cnf.WordValue(hw) })
	grid := s.Grid
	grid.WordWidth = runWidth
	return &pisa.Config{Grid: grid, Fields: fields, States: states, Values: vals}
}
