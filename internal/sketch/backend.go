package sketch

import (
	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/pisa"
	"repro/internal/word"
)

// PISABackend adapts the PISA grid sketch onto the backend seam, making
// the paper's original target one implementation among several. The
// grid's Stages field is ignored: the size axis of backend.Backend (what
// the core's deepening loop minimizes) supplies it per sketch.
type PISABackend struct {
	Grid pisa.GridSpec
	Opts Options
}

// Target implements backend.Backend.
func (PISABackend) Target() string { return "pisa" }

// SymmetryBreaking implements backend.SymmetryBreaker: the PISA grid has
// interchangeable resources (dead ALUs, unused stateful columns) worth
// pruning, so the backend opts in whenever its options ask for it.
func (p PISABackend) SymmetryBreaking() bool { return p.Opts.SymmetryBreak }

// Check implements backend.Backend: grid validity is an error, capacity
// overflow (more fields than PHV containers, more states than stateful
// slots) a definitive infeasible. The grid's word width is substituted
// with a placeholder for validation — datapath widths are per-phase
// choices owned by the CEGIS loop, not the machine description.
func (p PISABackend) Check(size, numFields, numStates int) (bool, error) {
	g := p.Grid
	g.Stages = size
	g.WordWidth = 1
	if err := g.Validate(); err != nil {
		return false, err
	}
	return numFields <= g.Width && numStates <= g.StateSlots(), nil
}

// NewSketch implements backend.Backend.
func (p PISABackend) NewSketch(b *circuit.Builder, size, numFields, numStates int) (backend.Sketch, error) {
	g := p.Grid
	g.Stages = size
	sk, err := New(b, g, numFields, numStates, p.Opts)
	if err != nil {
		return nil, err
	}
	return sk, nil
}

// Extract implements backend.Sketch for *Sketch, wrapping ExtractConfig's
// concrete return type in the seam interface.
func (s *Sketch) Extract(cnf *circuit.CNF, fields, states []string, runWidth word.Width) backend.Config {
	return s.ExtractConfig(cnf, fields, states, runWidth)
}
