package sketch

import (
	"strings"
	"testing"

	"repro/internal/alu"
	"repro/internal/circuit"
	"repro/internal/obs"
	"repro/internal/pisa"
	"repro/internal/sat"
	"repro/internal/word"
)

func grid(stages, width int, kind alu.Kind) pisa.GridSpec {
	return pisa.GridSpec{
		Stages:       stages,
		Width:        width,
		WordWidth:    10,
		StatelessALU: alu.Stateless{},
		StatefulALU:  alu.Stateful{Kind: kind},
	}
}

func TestNewRejectsOverCapacity(t *testing.T) {
	b := circuit.New()
	if _, err := New(b, grid(1, 2, alu.Counter), 3, 0, Options{}); err == nil {
		t.Fatal("3 fields into 2 containers should fail")
	}
	if _, err := New(b, grid(1, 2, alu.Counter), 1, 3, Options{}); err == nil {
		t.Fatal("3 states into 2 slots should fail")
	}
	if _, err := New(b, grid(0, 2, alu.Counter), 1, 1, Options{}); err == nil {
		t.Fatal("invalid grid should fail")
	}
	// Pair doubles state capacity.
	if _, err := New(b, grid(1, 2, alu.Pair), 1, 4, Options{}); err != nil {
		t.Fatalf("4 states fit 2 pair slots: %v", err)
	}
}

func TestHoleCountScalesWithGrid(t *testing.T) {
	b1 := circuit.New()
	s1, err := New(b1, grid(1, 2, alu.Counter), 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b2 := circuit.New()
	s2, err := New(b2, grid(2, 2, alu.Counter), 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h1, bits1 := s1.HoleCount()
	h2, bits2 := s2.HoleCount()
	if h2 != 2*h1 || bits2 != 2*bits1 {
		t.Fatalf("2 stages should double holes: %d/%d vs %d/%d", h1, bits1, h2, bits2)
	}
}

func TestIndicatorModeAddsHoles(t *testing.T) {
	bc := circuit.New()
	canon, err := New(bc, grid(1, 2, alu.Counter), 2, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bi := circuit.New()
	indic, err := New(bi, grid(1, 2, alu.Counter), 2, 0, Options{IndicatorAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	hc, _ := canon.HoleCount()
	hi, _ := indic.HoleCount()
	if hi != hc+4 { // 2 fields x 2 containers indicator bits
		t.Fatalf("indicator mode holes = %d, want %d", hi, hc+4)
	}
}

func TestMinWidth(t *testing.T) {
	b := circuit.New()
	s, err := New(b, grid(1, 2, alu.Counter), 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The stateless opcode (4 bits) is the widest control hole.
	if s.MinWidth() != 4 {
		t.Fatalf("MinWidth = %d, want 4", s.MinWidth())
	}
}

// TestDomainConstraintsEnforced solves the domain constraints alone and
// checks the extracted configuration is valid per pisa.Config.Validate.
func TestDomainConstraintsEnforced(t *testing.T) {
	for _, kind := range []alu.Kind{alu.Counter, alu.Pair} {
		b := circuit.New()
		g := grid(2, 2, kind)
		s, err := New(b, g, 1, 1, Options{IndicatorAlloc: true})
		if err != nil {
			t.Fatal(err)
		}
		solver := sat.New()
		cnf := circuit.NewCNF(b, solver)
		s.AssertDomains(cnf)
		if solver.Solve() != sat.Sat {
			t.Fatalf("%s: domain constraints alone must be satisfiable", kind)
		}
		cfg := s.ExtractConfig(cnf, []string{"f"}, []string{"s"}, 10)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: extracted config violates constraints: %v", kind, err)
		}
	}
}

// TestOpcodeMaskAssertion checks that masked-out opcodes cannot appear in
// any model.
func TestOpcodeMaskAssertion(t *testing.T) {
	b := circuit.New()
	g := grid(1, 1, alu.Counter)
	g.StatelessALU.OpcodeMask = 1<<alu.SlOpAdd | 1<<alu.SlOpSub
	s, err := New(b, g, 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solver := sat.New()
	cnf := circuit.NewCNF(b, solver)
	s.AssertDomains(cnf)
	// Enumerate all models' opcodes by blocking: at most 2 distinct.
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		if solver.Solve() != sat.Sat {
			break
		}
		cfg := s.ExtractConfig(cnf, []string{"f"}, nil, 10)
		op := cfg.Values.Stateless[0][0]["opcode"]
		seen[op] = true
		if op != alu.SlOpAdd && op != alu.SlOpSub {
			t.Fatalf("model picked masked-out opcode %d", op)
		}
		// Block this opcode to find the next.
		hole := s.holes.Stateless[0][0]["opcode"]
		cnf.AssertNot(b.EqW(hole, b.ConstWord(op, word.Width(len(hole)))))
	}
	if len(seen) != 2 {
		t.Fatalf("expected exactly 2 reachable opcodes, saw %v", seen)
	}
}

// TestInstantiateWidths checks one sketch instantiates at several widths in
// the same builder without interference: a pass-through config must hold
// at every width simultaneously.
func TestInstantiateWidths(t *testing.T) {
	b := circuit.New()
	g := grid(1, 1, alu.Counter)
	s, err := New(b, g, 1, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	solver := sat.New()
	cnf := circuit.NewCNF(b, solver)
	s.AssertDomains(cnf)
	// At widths 4 and 8, constrain out = in + 1 for two concrete inputs.
	for _, w := range []word.Width{4, 8} {
		for _, x := range []uint64{3, 9} {
			in := []circuit.Word{b.ConstWord(w.Trunc(x), w)}
			outF, _ := s.Instantiate(w, in, nil)
			cnf.Assert(b.EqW(outF[0], b.ConstWord(w.Trunc(x+1), w)))
		}
	}
	if solver.Solve() != sat.Sat {
		t.Fatal("increment constraints at two widths should be satisfiable")
	}
	cfg := s.ExtractConfig(cnf, []string{"x"}, nil, 8)
	out, _ := cfg.Exec(map[string]uint64{"x": 100}, nil)
	if out["x"] != 101 {
		t.Fatalf("config does not increment: %d", out["x"])
	}
}

func TestInstantiatePanicsOnArityMismatch(t *testing.T) {
	b := circuit.New()
	s, err := New(b, grid(1, 2, alu.Counter), 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong field count")
		}
	}()
	s.Instantiate(4, []circuit.Word{b.ConstWord(0, 4)}, nil)
}

func TestHoleInventoryAndMetrics(t *testing.T) {
	b := circuit.New()
	g := pisa.GridSpec{Stages: 2, Width: 2, WordWidth: 4,
		StatefulALU: alu.Stateful{Kind: alu.Counter}}
	sk, err := New(b, g, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names, bits := sk.HoleInventory()
	if len(names) == 0 || len(names) != len(bits) {
		t.Fatalf("inventory: %d names, %d bit entries", len(names), len(bits))
	}
	wantHoles, wantBits := sk.HoleCount()
	total := 0
	for _, n := range bits {
		total += n
	}
	if len(names) != wantHoles || total != wantBits {
		t.Fatalf("inventory sums (%d holes, %d bits) != HoleCount (%d, %d)",
			len(names), total, wantHoles, wantBits)
	}

	reg := obs.NewRegistry()
	sk.PublishMetrics(reg)
	if got := reg.Gauge("sketch.hole_bits").Value(); got != int64(wantBits) {
		t.Fatalf("sketch.hole_bits = %d, want %d", got, wantBits)
	}
	if got := reg.Gauge("sketch.holes").Value(); got != int64(wantHoles) {
		t.Fatalf("sketch.holes = %d, want %d", got, wantHoles)
	}
	// Per-class subtotals partition the total.
	var classTotal int64
	for name, v := range reg.Snapshot() {
		if strings.HasPrefix(name, "sketch.hole_bits.") {
			classTotal += v.(int64)
		}
	}
	if classTotal != int64(wantBits) {
		t.Fatalf("class subtotals sum to %d, want %d", classTotal, wantBits)
	}
	// Publishing to a nil registry must not panic.
	sk.PublishMetrics(nil)
}

func TestHoleClass(t *testing.T) {
	cases := map[string]string{
		"stateless_0_1_opcode": "stateless",
		"stateful_2_0_imux1":   "stateful",
		"omux_0_0":             "omux",
		"salu_active_1_1":      "salu_active",
		"field_alloc_0_3":      "field_alloc",
		"oddball":              "oddball",
	}
	for in, want := range cases {
		if got := holeClass(in); got != want {
			t.Errorf("holeClass(%q) = %q, want %q", in, got, want)
		}
	}
}
