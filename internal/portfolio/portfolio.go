// Package portfolio expands one compilation request into a portfolio of
// candidate synthesis attempts and races them on a bounded worker pool.
//
// The paper's §4 evaluation shows CEGIS run time is the bottleneck and is
// heavy-tailed across random seeds and grid sizes. Instead of the strictly
// sequential iterative-deepening loop (probe 1 stage, on proof of
// infeasibility probe 2, ...), the scheduler here launches attempts at
// every candidate stage depth concurrently, optionally fans each depth out
// across K diversified CEGIS seeds, and optionally races both allocation
// modes (canonical vs indicator). First-SAT-wins semantics still return
// the minimum-depth solution:
//
//   - a SAT at depth d cancels all attempts at depth > d (and same-depth
//     siblings) but keeps shallower attempts running until they finish or
//     report UNSAT — the winner is only declared once every shallower
//     depth is proven infeasible;
//   - a depth-d UNSAT cancels all attempts at depth <= d: synthesis-phase
//     infeasibility on a finite test set is a definitive proof for that
//     grid, and feasibility is monotone in stage count, so shallower
//     attempts can only rediscover the same verdict.
//
// Scheduling policy. The seed-0, base-allocation member of the minimum
// unresolved depth (the "frontier") is always eligible — alone, the
// portfolio therefore replays the sequential deepening schedule exactly,
// with zero slowdown on single-core machines. On top of that baseline:
//
//   - seed hedges (slot k > 0) at the frontier depth join k*Stagger after
//     the depth became the frontier. Compiles that finish inside the
//     stagger never pay redundancy cost; heavy-tailed solves recruit
//     rivals that routinely win several times faster, even time-sliced on
//     one core, because the first SAT cancels the rest mid-solve (via the
//     sat.SetStop hook);
//   - deeper-than-frontier members run only while the pool has idle CPU
//     capacity (fewer running members than GOMAXPROCS), so multicore
//     machines race every depth at once while single-core machines never
//     steal cycles from the frontier.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Verdict classifies one portfolio member's outcome.
type Verdict int

const (
	// Unknown means the member never produced a verdict (it was skipped
	// before running).
	Unknown Verdict = iota
	// Feasible: the member synthesized a configuration at its depth.
	Feasible
	// Infeasible: the member proved its depth unsatisfiable.
	Infeasible
	// TimedOut: the compile deadline expired while the member ran.
	TimedOut
	// Canceled: a sibling's result made the member moot (superseded by a
	// SAT at its depth or shallower, or implied infeasible by a deeper
	// UNSAT) and the scheduler cancelled it.
	Canceled
	// Exhausted: the member gave up without a verdict and without the
	// compile deadline expiring — hole-elimination CEGIS ran out of its
	// candidate budget. Unlike TimedOut it does not end the portfolio:
	// the member simply lost, and its depth stays unresolved for the
	// remaining siblings.
	Exhausted
)

func (v Verdict) String() string {
	switch v {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case TimedOut:
		return "timeout"
	case Canceled:
		return "canceled"
	case Exhausted:
		return "exhausted"
	default:
		return "unknown"
	}
}

// Member is one attempt in the portfolio: a (stage depth, CEGIS seed,
// allocation mode, CEGIS mode) tuple.
type Member struct {
	// Index is the member's position in Spec.Members() order: depth
	// ascending, base allocation mode first, seed fanout last. Index 0 is
	// exactly the attempt the sequential path would run first.
	Index int
	// Label identifies the member in spans, traces, and reports, e.g.
	// "d2.s1.canon" (depth 2, seed slot 1, canonical allocation).
	Label string
	// Stages is the pipeline depth this member probes.
	Stages int
	// Seed is the member's diversified CEGIS seed.
	Seed int64
	// IndicatorAlloc selects the indicator-variable field allocation.
	IndicatorAlloc bool
	// Mode is the CEGIS refinement strategy this member runs ("cex" or
	// "holes"; empty means counterexample mode).
	Mode string
	// Hedge is how long after the member's depth becomes the frontier
	// (minimum unresolved depth) the member becomes eligible to run — the
	// seed-fanout stagger. Zero-hedge members run as soon as their depth
	// reaches the frontier; while their depth is deeper than the frontier,
	// members only run on spare CPU capacity regardless of Hedge.
	Hedge time.Duration
}

// seedStride separates diversified CEGIS seeds far enough that the
// per-seed random test sets share no obvious structure.
const seedStride = 1_000_003

// DefaultStagger is the per-seed-slot hedge delay used when Spec.Stagger
// is zero. A depth that resolves faster than this never pays any
// redundancy cost for seed fanout; heavy-tailed solves recruit a rival
// every DefaultStagger until the fanout is exhausted.
const DefaultStagger = 500 * time.Millisecond

// Spec describes the portfolio expansion of one compilation.
type Spec struct {
	// MinStages..MaxStages is the inclusive depth range to race. MinStages
	// below 1 is treated as 1.
	MinStages, MaxStages int
	// SeedFanout is how many diversified CEGIS seeds race per depth
	// (values below 1 mean 1: just BaseSeed).
	SeedFanout int
	// BaseSeed is seed slot 0; slot k uses BaseSeed + k*seedStride.
	BaseSeed int64
	// IndicatorAlloc is the base allocation mode (matches the sequential
	// path's choice).
	IndicatorAlloc bool
	// RaceAllocs additionally races the opposite allocation mode for
	// every depth/seed member.
	RaceAllocs bool
	// Mode is the base CEGIS refinement strategy every member runs
	// (empty means counterexample mode, matching the sequential path).
	Mode string
	// RaceModes additionally races the listed extra modes for every
	// depth/seed/alloc member — the upstream driver's counter_example vs
	// hole_elimination race. Members()[0] always keeps the base Mode.
	RaceModes []string
	// Stagger is the per-seed-slot hedge delay; 0 means DefaultStagger,
	// negative disables staggering entirely.
	Stagger time.Duration
}

func (s Spec) stagger() time.Duration {
	if s.Stagger == 0 {
		return DefaultStagger
	}
	if s.Stagger < 0 {
		return 0
	}
	return s.Stagger
}

// Members expands the spec into the ordered attempt list. Ordering is
// depth-ascending, base allocation before the raced one, seed slot 0
// before diversified slots, base CEGIS mode before raced modes — so
// Members()[0] is exactly the attempt the sequential iterative-deepening
// path would run first.
func (s Spec) Members() []Member {
	lo := s.MinStages
	if lo < 1 {
		lo = 1
	}
	fanout := s.SeedFanout
	if fanout < 1 {
		fanout = 1
	}
	allocs := []bool{s.IndicatorAlloc}
	if s.RaceAllocs {
		allocs = append(allocs, !s.IndicatorAlloc)
	}
	modes := []string{s.Mode}
	for _, m := range s.RaceModes {
		if m != s.Mode {
			modes = append(modes, m)
		}
	}
	var ms []Member
	for d := lo; d <= s.MaxStages; d++ {
		for k := 0; k < fanout; k++ {
			for _, ind := range allocs {
				name := "canon"
				if ind {
					name = "ind"
				}
				for _, mode := range modes {
					label := fmt.Sprintf("d%d.s%d.%s", d, k, name)
					if len(modes) > 1 {
						// The mode segment appears only when modes actually
						// race, so single-mode labels (and the baselines
						// keyed on them) are unchanged.
						seg := mode
						if seg == "" {
							seg = "cex"
						}
						label += "." + seg
					}
					ms = append(ms, Member{
						Index:          len(ms),
						Label:          label,
						Stages:         d,
						Seed:           s.BaseSeed + int64(k)*seedStride,
						IndicatorAlloc: ind,
						Mode:           mode,
						Hedge:          time.Duration(k) * s.stagger(),
					})
				}
			}
		}
	}
	return ms
}

// RunFunc executes one member's synthesis attempt. It must honour ctx
// cancellation (returning TimedOut when the context expires — the
// scheduler reclassifies cancellations it caused itself as Canceled) and
// must return Feasible only for a validated configuration.
type RunFunc[T any] func(ctx context.Context, m Member) (T, Verdict, error)

// Outcome is one member's final disposition.
type Outcome[T any] struct {
	Member  Member
	Verdict Verdict
	Value   T
	// Ran reports whether the member actually executed; false means the
	// scheduler resolved its depth before a worker picked it up.
	Ran bool
}

// Result is the portfolio's aggregate outcome.
type Result[T any] struct {
	// Winner is the minimum-depth feasible outcome, non-nil only when
	// every depth below it (within the raced range) is proven infeasible.
	Winner *Outcome[T]
	// Outcomes holds every member's disposition, indexed by Member.Index.
	Outcomes []Outcome[T]
	// TimedOut reports that the compile deadline expired before the
	// minimum feasible depth could be established.
	TimedOut bool
	// Infeasible reports that every raced depth was proven infeasible.
	Infeasible bool
}

// Cancellation causes, distinguished from genuine deadline expiry via
// context.Cause so the scheduler can tell "you lost" from "time ran out".
var (
	errSuperseded = errors.New("portfolio: superseded by a sibling's result")
	errImplied    = errors.New("portfolio: depth infeasible by a deeper UNSAT")
)

// numCores reports the CPU budget for deeper-than-frontier speculation;
// a variable so scheduler tests can simulate multicore machines.
var numCores = func() int { return runtime.GOMAXPROCS(0) }

type sched[T any] struct {
	ctx     context.Context
	members []Member
	run     RunFunc[T]
	reg     *obs.Registry
	depths  []int     // sorted unique raced depths
	cores   int       // spare-capacity gate for deeper-than-frontier members
	start   time.Time // when Run began, for the member-wait histogram

	mu            sync.Mutex
	wake          chan struct{} // closed and replaced on every state change
	claimed       []bool
	finished      []bool
	outcomes      []Outcome[T]
	cancels       []context.CancelCauseFunc
	reasons       []error // why the scheduler cancelled member i, if it did
	infeasible    map[int]bool
	feasibleAt    map[int]int // depth -> member index of first completed SAT
	minFeasible   int
	running       int       // claimed and not yet finished
	frontier      int       // minimum unresolved depth, -1 once all resolve
	frontierStart time.Time // when frontier last advanced (hedge epoch)
	winner        int       // member index, -1 until declared
	timedOut      bool
	done          bool
	fatal         error
}

// Run races the members on a pool of `workers` goroutines (clamped to the
// member count) and returns once every member has finished, been
// cancelled, or been skipped — no goroutines outlive the call. A non-nil
// error reports a member's internal failure (not infeasibility or
// timeout) and aborts the whole portfolio.
func Run[T any](ctx context.Context, members []Member, workers int, run RunFunc[T]) (Result[T], error) {
	if len(members) == 0 {
		return Result[T]{}, errors.New("portfolio: no members")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(members) {
		workers = len(members)
	}

	s := &sched[T]{
		ctx:           ctx,
		members:       members,
		run:           run,
		reg:           obs.MetricsFrom(ctx),
		cores:         numCores(),
		wake:          make(chan struct{}),
		claimed:       make([]bool, len(members)),
		finished:      make([]bool, len(members)),
		outcomes:      make([]Outcome[T], len(members)),
		cancels:       make([]context.CancelCauseFunc, len(members)),
		reasons:       make([]error, len(members)),
		infeasible:    map[int]bool{},
		feasibleAt:    map[int]int{},
		minFeasible:   int(^uint(0) >> 1),
		winner:        -1,
		start:         time.Now(),
		frontierStart: time.Now(),
	}
	seen := map[int]bool{}
	for _, m := range members {
		if !seen[m.Stages] {
			seen[m.Stages] = true
			s.depths = append(s.depths, m.Stages)
		}
	}
	sort.Ints(s.depths)
	s.frontier = s.depths[0]

	s.reg.Counter("portfolio.members").Add(int64(len(members)))

	// The caller participates as a worker instead of blocking: the first
	// claim (almost always the frontier member) then runs on the caller's
	// warm, already-grown stack. Fresh goroutines start at minimum stack
	// size and a solver-sized attempt pays the growth copying every
	// compile — a measurable constant cost on millisecond compiles.
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker()
		}()
	}
	s.worker()
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fatal != nil {
		return Result[T]{}, s.fatal
	}
	res := Result[T]{Outcomes: s.outcomes}
	if s.winner >= 0 {
		res.Winner = &s.outcomes[s.winner]
		return res, nil
	}
	if s.timedOut || s.ctx.Err() != nil {
		res.TimedOut = true
		return res, nil
	}
	res.Infeasible = true
	for _, d := range s.depths {
		if !s.infeasible[d] {
			// Should be unreachable: without a winner, a timeout, or a
			// fatal error every depth resolves infeasible. Report a
			// timeout rather than a wrong "infeasible".
			res.Infeasible = false
			res.TimedOut = true
			break
		}
	}
	return res, nil
}

func (s *sched[T]) worker() {
	for {
		i, wait := s.next()
		if i >= 0 {
			s.runMember(i)
			continue
		}
		if wait == 0 {
			return
		}
		// Members remain but none is eligible yet: sleep until the earliest
		// frontier hedge matures (wait > 0), or — when only pool-gated
		// deeper members remain (wait < 0) — until a sibling result frees
		// capacity or moves the frontier, or the compile deadline expires.
		s.mu.Lock()
		wake := s.wake
		s.mu.Unlock()
		var timer <-chan time.Time
		var t *time.Timer
		if wait > 0 {
			t = time.NewTimer(wait)
			timer = t.C
		}
		select {
		case <-timer:
		case <-wake:
		case <-s.ctx.Done():
		}
		if t != nil {
			t.Stop()
		}
	}
}

// next claims the next runnable member. It returns (index, 0) to run,
// (-1, wait>0) when the earliest frontier hedge matures in `wait`,
// (-1, -1) when only pool-gated members remain (park until a state
// change), and (-1, 0) when no members remain at all. Members whose depth
// is already resolved are consumed as skipped outcomes along the way.
func (s *sched[T]) next() (int, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sinceFrontier := time.Since(s.frontierStart)
	ctxDone := s.ctx.Err() != nil
	minWait := time.Duration(-1)
	blocked := false
	for i, m := range s.members {
		if s.claimed[i] {
			continue
		}
		if s.done || ctxDone || s.depthResolved(m.Stages) {
			s.claimed[i] = true
			s.finished[i] = true
			s.outcomes[i] = Outcome[T]{Member: m, Verdict: Canceled}
			s.reg.Counter("portfolio.skipped").Add(1)
			continue
		}
		if m.Stages == s.frontier {
			// Frontier members are hedge-staggered relative to when their
			// depth became the minimum unresolved one; the zero-hedge
			// member is always eligible, reproducing the sequential
			// schedule.
			if m.Hedge > sinceFrontier {
				if w := m.Hedge - sinceFrontier; minWait < 0 || w < minWait {
					minWait = w
				}
				continue
			}
		} else if s.running >= s.cores {
			// Deeper than the frontier: pure speculation, only worth CPU
			// the frontier isn't using.
			blocked = true
			continue
		}
		s.claimed[i] = true
		s.running++
		// How long the member sat waiting for a slot after Run began —
		// large waits mean hedges matured or the pool was saturated, i.e.
		// the portfolio is CPU-bound rather than frontier-bound.
		s.reg.Histogram("portfolio.member_wait_ms").Observe(time.Since(s.start).Milliseconds())
		return i, 0
	}
	if minWait > 0 {
		return -1, minWait
	}
	if blocked {
		return -1, -1
	}
	return -1, 0
}

// depthResolved reports whether depth d needs no further attempts: proven
// (or implied) infeasible, already satisfied, or superseded by a SAT at a
// shallower depth. Callers hold s.mu.
func (s *sched[T]) depthResolved(d int) bool {
	if s.infeasible[d] {
		return true
	}
	return d >= s.minFeasible
}

func (s *sched[T]) runMember(i int) {
	m := s.members[i]
	mctx, cancel := context.WithCancelCause(s.ctx)
	s.mu.Lock()
	s.cancels[i] = cancel
	s.mu.Unlock()
	defer cancel(nil)

	s.reg.Gauge("portfolio.inflight").Add(1)
	v, verdict, err := s.run(mctx, m)
	s.reg.Gauge("portfolio.inflight").Add(-1)

	s.report(i, v, verdict, err)
}

func (s *sched[T]) report(i int, v T, verdict Verdict, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.members[i]
	s.finished[i] = true
	s.cancels[i] = nil
	s.running--

	// A member the scheduler itself cancelled observes its context as
	// expired and reports TimedOut (or an error from the aborted run);
	// reclassify using the recorded cause.
	if s.reasons[i] != nil && (verdict == TimedOut || err != nil) {
		verdict, err = Canceled, nil
	}
	if err != nil {
		if s.fatal == nil {
			s.fatal = err
		}
		s.done = true
		s.cancelRunning(func(Member) bool { return true }, errSuperseded)
		s.broadcast()
		return
	}
	s.outcomes[i] = Outcome[T]{Member: m, Verdict: verdict, Value: v, Ran: true}
	switch verdict {
	case Feasible:
		if _, ok := s.feasibleAt[m.Stages]; !ok {
			s.feasibleAt[m.Stages] = i
		}
		if m.Stages < s.minFeasible {
			s.minFeasible = m.Stages
		}
		// First-SAT-wins: deeper attempts and same-depth siblings are
		// moot; strictly shallower attempts keep running.
		s.cancelRunning(func(o Member) bool { return o.Stages >= m.Stages }, errSuperseded)
	case Infeasible:
		// A depth-d UNSAT implies every depth <= d is infeasible
		// (feasibility is monotone in stage count), so cancel shallower
		// and same-depth attempts.
		for _, d := range s.depths {
			if d <= m.Stages {
				s.infeasible[d] = true
			}
		}
		s.cancelRunning(func(o Member) bool { return o.Stages <= m.Stages }, errImplied)
	case TimedOut:
		s.timedOut = true
		s.done = true
	case Canceled:
		s.reg.Counter("portfolio.canceled").Add(1)
	case Exhausted:
		s.reg.Counter("portfolio.exhausted").Add(1)
	}
	s.advanceFrontier()
	s.checkWinner()
	s.broadcast()
}

// advanceFrontier moves the frontier to the new minimum unresolved depth
// after a verdict resolves one, restarting the hedge epoch so the next
// depth's seed fanout staggers relative to when racing it became
// worthwhile. Callers hold s.mu.
func (s *sched[T]) advanceFrontier() {
	for _, d := range s.depths {
		if !s.depthResolved(d) {
			if d != s.frontier {
				s.frontier = d
				s.frontierStart = time.Now()
			}
			return
		}
	}
	s.frontier = -1
}

// checkWinner declares the winner once the minimum feasible depth has
// every shallower raced depth proven infeasible. Callers hold s.mu.
func (s *sched[T]) checkWinner() {
	if s.winner >= 0 {
		return
	}
	i, ok := s.feasibleAt[s.minFeasible]
	if !ok {
		return
	}
	for _, d := range s.depths {
		if d >= s.minFeasible {
			break
		}
		if !s.infeasible[d] {
			return
		}
	}
	s.winner = i
	s.done = true
	s.cancelRunning(func(Member) bool { return true }, errSuperseded)
}

// cancelRunning cancels every claimed-but-unfinished member matching the
// predicate, recording the cause. Callers hold s.mu.
func (s *sched[T]) cancelRunning(match func(Member) bool, cause error) {
	for j := range s.members {
		if s.claimed[j] && !s.finished[j] && s.cancels[j] != nil && match(s.members[j]) {
			if s.reasons[j] == nil {
				s.reasons[j] = cause
			}
			s.cancels[j](cause)
		}
	}
}

// broadcast wakes workers parked on the stagger timer. Callers hold s.mu.
func (s *sched[T]) broadcast() {
	close(s.wake)
	s.wake = make(chan struct{})
}
