package portfolio

import (
	"testing"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/cegis"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("floor_test", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDepthFloorCrossDependency(t *testing.T) {
	// s2 consumes s1's old value: the classic read-then-shift chain that a
	// 1-stage grid cannot express.
	prog := parse(t, "int s1 = 0; int s2 = 0; s2 = s1; s1 = s1 + pkt.x;")
	sfu := alu.Stateful{Kind: alu.PredRaw, ConstBits: 4}
	if got := DepthFloor(prog, sfu, cegis.DefaultVerifyWidth, 7); got != 2 {
		t.Fatalf("floor = %d, want 2", got)
	}
}

func TestDepthFloorSingleState(t *testing.T) {
	prog := parse(t, "int s = 0; s = s + pkt.x;")
	sfu := alu.Stateful{Kind: alu.PredRaw, ConstBits: 4}
	if got := DepthFloor(prog, sfu, cegis.DefaultVerifyWidth, 7); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

func TestDepthFloorIndependentStates(t *testing.T) {
	prog := parse(t, "int s1 = 0; int s2 = 0; s1 = s1 + pkt.x; s2 = s2 + pkt.y;")
	sfu := alu.Stateful{Kind: alu.PredRaw, ConstBits: 4}
	if got := DepthFloor(prog, sfu, cegis.DefaultVerifyWidth, 7); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

// A syntactic read that carries no information (s1 - s1 == 0) must not
// raise the floor: witnesses prove real dependencies only.
func TestDepthFloorIgnoresVacuousReads(t *testing.T) {
	prog := parse(t, "int s1 = 0; int s2 = 0; s2 = s1 - s1; s1 = s1 + pkt.x;")
	sfu := alu.Stateful{Kind: alu.PredRaw, ConstBits: 4}
	if got := DepthFloor(prog, sfu, cegis.DefaultVerifyWidth, 7); got != 1 {
		t.Fatalf("floor = %d, want 1", got)
	}
}

// Pair ALUs hold two states in one column, so a dependency between the
// pair imposes no cross-stage ordering.
func TestDepthFloorPairALUSharesColumn(t *testing.T) {
	prog := parse(t, "int s1 = 0; int s2 = 0; s2 = s1; s1 = s1 + pkt.x;")
	sfu := alu.Stateful{Kind: alu.Pair, ConstBits: 4}
	if got := DepthFloor(prog, sfu, cegis.DefaultVerifyWidth, 7); got != 1 {
		t.Fatalf("floor = %d, want 1 (both states share the pair column)", got)
	}
}
