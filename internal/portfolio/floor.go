// Witness-proven stage-count lower bounds.
//
// The PISA datapath (internal/pisa.Datapath) gives state variables no
// same-stage channel between stateful ALU columns: a column's state value
// can reach anything outside that column only through its result wire,
// which the output muxes write into the PHV containers *leaving* the
// column's active stage, and every ALU (stateless or stateful) reads its
// packet operands from the containers *entering* its own stage. So if one
// state group's update provably consumes another group's value, the two
// accesses must sit at distinct stages — a 1-stage grid cannot implement
// the program, and iterative deepening's depth-1 probe is a foregone
// UNSAT.
//
// The proof obligation is discharged with concrete interpreter witnesses
// rather than syntactic analysis: flipping state a's initial value in a
// random snapshot and observing state b's final value change is an
// ironclad information-flow proof (a syntactic read like `s2 = s1 - s1`
// is not a dependency; a witness never lies). Witnesses run at the CEGIS
// verification width, the width at which feasibility is defined.
//
// The bound deliberately stops at 2. Longer witness chains (a→b→c) do NOT
// compose into deeper bounds: a column may be active at several stages,
// so b's ALU can export b's old value at stage 1 and absorb a's value at
// stage 2, letting a 3-link chain — even a swap cycle — fit in two
// stages. Only the single-edge argument is sound.
package portfolio

import (
	"math/rand"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/cegis"
	"repro/internal/interp"
	"repro/internal/word"
)

// floorTrials is how many random witness probes test each state variable.
// Real cross-state dependencies are deterministic dataflow and witness on
// the first probe for almost any input; the extras only chase
// data-dependent flows. Misses are harmless (the floor stays
// conservative), but every trial costs two interpreter runs that are pure
// overhead on programs with no dependency, so the count is kept small.
const floorTrials = 6

// DepthFloor returns a sound lower bound on the pipeline depth any
// configuration equivalent to prog (at verification width w, on a grid
// whose stateful template is sfu) must have: 2 when a cross-group state
// dependency is witnessed, 1 otherwise. The portfolio scheduler prunes
// depths below the floor instead of spending SAT effort on proofs of
// known infeasibility.
//
// Groups follow the canonical state allocation (§3.1): sorted state k
// lives in stateful ALU column k/ns where ns is the states-per-ALU of the
// template (Pair ALUs hold two states in one column, which therefore
// impose no cross-stage ordering between them).
func DepthFloor(prog *ast.Program, sfu alu.Stateful, w word.Width, seed int64) int {
	fields, states := cegis.CanonicalVars(prog)
	ns := sfu.NumStates()
	if ns < 1 {
		ns = 1
	}
	if (len(states)+ns-1)/ns <= 1 {
		return 1 // zero or one state group: nothing to order
	}
	in, err := interp.New(w)
	if err != nil {
		return 1 // conservative: no pruning without a sound witness width
	}
	group := func(i int) int { return i / ns }

	rng := rand.New(rand.NewSource(seed*16777619 + 0x5eed))
	random := func() interp.Snapshot {
		x := interp.NewSnapshot()
		for _, f := range fields {
			x.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range states {
			x.State[s] = w.Trunc(rng.Uint64())
		}
		return x
	}

	for i, si := range states {
		for t := 0; t < floorTrials; t++ {
			base := random()
			want, err := in.Run(prog, base)
			if err != nil {
				return 1 // conservative on any interpreter failure
			}
			alt := base.Clone()
			// Perturb si to a guaranteed-different value.
			alt.State[si] = w.Trunc(base.State[si] + 1 + rng.Uint64()%3)
			if alt.State[si] == base.State[si] {
				continue
			}
			got, err := in.Run(prog, alt)
			if err != nil {
				return 1
			}
			for j, sj := range states {
				if group(j) == group(i) {
					continue
				}
				if want.State[sj] != got.State[sj] {
					// Concrete witness: sj's final value depends on si's
					// initial value across columns, forcing si's export
					// stage strictly before sj's update stage.
					return 2
				}
			}
		}
	}
	return 1
}
