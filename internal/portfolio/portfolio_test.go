package portfolio

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeRun builds a RunFunc whose members resolve according to a script:
// verdicts[label] gives the member's verdict, gates[label] (when present)
// blocks the member until the channel closes. Members without a script
// entry block until their context is cancelled (reporting TimedOut, as
// the real attempt does).
type fakeRun struct {
	mu      sync.Mutex
	started map[string]time.Time
}

func (f *fakeRun) fn(verdicts map[string]Verdict, gates map[string]chan struct{}) RunFunc[string] {
	return func(ctx context.Context, m Member) (string, Verdict, error) {
		f.mu.Lock()
		if f.started == nil {
			f.started = map[string]time.Time{}
		}
		f.started[m.Label] = time.Now()
		f.mu.Unlock()
		if g, ok := gates[m.Label]; ok {
			select {
			case <-g:
			case <-ctx.Done():
				return "", TimedOut, nil
			}
		}
		v, ok := verdicts[m.Label]
		if !ok {
			<-ctx.Done()
			return "", TimedOut, nil
		}
		return m.Label, v, nil
	}
}

func spec(minS, maxS, fanout int) Spec {
	return Spec{MinStages: minS, MaxStages: maxS, SeedFanout: fanout, BaseSeed: 7, Stagger: -1}
}

// manyCores lifts the deeper-than-frontier speculation gate so tests can
// exercise true multicore racing on any machine.
func manyCores(t *testing.T) {
	t.Helper()
	old := numCores
	numCores = func() int { return 64 }
	t.Cleanup(func() { numCores = old })
}

func TestMembersOrderingAndLabels(t *testing.T) {
	s := Spec{MinStages: 2, MaxStages: 3, SeedFanout: 2, BaseSeed: 5, RaceAllocs: true, Stagger: 10 * time.Millisecond}
	ms := s.Members()
	want := []string{"d2.s0.canon", "d2.s0.ind", "d2.s1.canon", "d2.s1.ind", "d3.s0.canon", "d3.s0.ind", "d3.s1.canon", "d3.s1.ind"}
	if len(ms) != len(want) {
		t.Fatalf("got %d members, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Label != want[i] {
			t.Errorf("member %d label %q, want %q", i, m.Label, want[i])
		}
		if m.Index != i {
			t.Errorf("member %d has Index %d", i, m.Index)
		}
		wantSeed := int64(5)
		if strings.Contains(m.Label, ".s1.") {
			wantSeed += seedStride
		}
		if m.Seed != wantSeed {
			t.Errorf("member %s seed %d, want %d", m.Label, m.Seed, wantSeed)
		}
		wantHedge := time.Duration(0)
		if strings.Contains(m.Label, ".s1.") {
			wantHedge = 10 * time.Millisecond
		}
		if m.Hedge != wantHedge {
			t.Errorf("member %s hedge %v, want %v", m.Label, m.Hedge, wantHedge)
		}
	}
	// Members()[0] must be the sequential path's first attempt: shallowest
	// depth, base allocation, seed slot 0.
	if m := ms[0]; m.Stages != 2 || m.IndicatorAlloc || m.Seed != 5 {
		t.Errorf("Members()[0] = %+v is not the sequential first attempt", m)
	}
}

func TestMinStagesBelowOneClamped(t *testing.T) {
	ms := Spec{MinStages: 0, MaxStages: 2, SeedFanout: 1}.Members()
	if ms[0].Stages != 1 {
		t.Fatalf("first depth %d, want 1", ms[0].Stages)
	}
}

// The winner must sit at the minimum feasible depth even when a deeper
// member finishes SAT first: the deep SAT must wait for the shallow
// verdicts.
func TestWinnerIsMinimumDepth(t *testing.T) {
	manyCores(t)
	f := &fakeRun{}
	d1gate := make(chan struct{})
	verdicts := map[string]Verdict{"d1.s0.canon": Feasible, "d2.s0.canon": Feasible, "d3.s0.canon": Feasible}
	gates := map[string]chan struct{}{"d1.s0.canon": d1gate}
	// Release depth 1 only after the deeper SATs had ample time to land.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(d1gate)
	}()
	res, err := Run(context.Background(), spec(1, 3, 1).Members(), 3, f.fn(verdicts, gates))
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == nil || res.Winner.Member.Stages != 1 {
		t.Fatalf("winner %+v, want depth 1", res.Winner)
	}
}

// A shallow UNSAT promotes the next depth's SAT to winner.
func TestUnsatPromotesDeeperSAT(t *testing.T) {
	f := &fakeRun{}
	verdicts := map[string]Verdict{"d1.s0.canon": Infeasible, "d2.s0.canon": Feasible}
	res, err := Run(context.Background(), spec(1, 3, 1).Members(), 3, f.fn(verdicts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == nil || res.Winner.Member.Stages != 2 {
		t.Fatalf("winner %+v, want depth 2", res.Winner)
	}
	// Depth 3 must not have been necessary: either skipped or cancelled.
	o := res.Outcomes[2]
	if o.Verdict == Feasible || o.Verdict == Infeasible {
		t.Fatalf("depth 3 outcome %v, want canceled/skipped", o.Verdict)
	}
}

// A deep UNSAT implies all shallower depths are infeasible and cancels
// their running attempts.
func TestDeepUnsatImpliesShallowInfeasible(t *testing.T) {
	manyCores(t)
	f := &fakeRun{}
	// Depth 1 and 2 hang; depth 3 proves UNSAT quickly. The portfolio as a
	// whole is then infeasible without waiting for the shallow attempts.
	verdicts := map[string]Verdict{"d3.s0.canon": Infeasible}
	res, err := Run(context.Background(), spec(1, 3, 1).Members(), 3, f.fn(verdicts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Infeasible || res.Winner != nil || res.TimedOut {
		t.Fatalf("got %+v, want Infeasible", res)
	}
	for _, o := range res.Outcomes[:2] {
		if o.Ran && o.Verdict != Canceled {
			t.Errorf("%s verdict %v, want Canceled", o.Member.Label, o.Verdict)
		}
	}
}

// With a single worker the schedule degrades to exactly sequential
// iterative deepening: depths probed in order, hedges skipped.
func TestSingleWorkerIsSequential(t *testing.T) {
	f := &fakeRun{}
	verdicts := map[string]Verdict{
		"d1.s0.canon": Infeasible, "d1.s1.canon": Infeasible,
		"d2.s0.canon": Feasible, "d2.s1.canon": Feasible,
	}
	res, err := Run(context.Background(), spec(1, 2, 2).Members(), 1, f.fn(verdicts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == nil || res.Winner.Member.Label != "d2.s0.canon" {
		t.Fatalf("winner %+v, want d2.s0.canon", res.Winner)
	}
	ran := 0
	for _, o := range res.Outcomes {
		if o.Ran {
			ran++
		}
	}
	if ran != 2 {
		t.Errorf("%d members ran, want 2 (d1.s0 then d2.s0)", ran)
	}
}

// Frontier hedges must not start before their stagger matures, and must
// start once it does while the incumbent is still solving.
func TestHedgeStaggerRelativeToFrontier(t *testing.T) {
	f := &fakeRun{}
	s := spec(1, 1, 2)
	s.Stagger = 30 * time.Millisecond
	gate := make(chan struct{})
	verdicts := map[string]Verdict{"d1.s0.canon": Feasible, "d1.s1.canon": Feasible}
	gates := map[string]chan struct{}{"d1.s0.canon": gate, "d1.s1.canon": gate}
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(gate)
	}()
	start := time.Now()
	res, err := Run(context.Background(), s.Members(), 2, f.fn(verdicts, gates))
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == nil {
		t.Fatal("no winner")
	}
	f.mu.Lock()
	hedgeStart, ok := f.started["d1.s1.canon"]
	f.mu.Unlock()
	if !ok {
		t.Fatal("hedge never started")
	}
	if d := hedgeStart.Sub(start); d < 30*time.Millisecond {
		t.Errorf("hedge started %v after frontier, want >= 30ms", d)
	}
}

// An attempt error aborts the whole portfolio.
func TestFatalError(t *testing.T) {
	boom := errors.New("boom")
	run := func(ctx context.Context, m Member) (string, Verdict, error) {
		if m.Label == "d1.s0.canon" {
			return "", Unknown, boom
		}
		<-ctx.Done()
		return "", TimedOut, nil
	}
	_, err := Run(context.Background(), spec(1, 2, 1).Members(), 2, run)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// Context expiry surfaces as TimedOut, not Infeasible.
func TestDeadlineTimesOut(t *testing.T) {
	f := &fakeRun{}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, spec(1, 2, 1).Members(), 2, f.fn(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Infeasible || res.Winner != nil {
		t.Fatalf("got %+v, want TimedOut", res)
	}
}

// No goroutines outlive Run: the inflight gauge returns to zero and every
// member has a final disposition.
func TestNoLeaks(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), reg)
	f := &fakeRun{}
	verdicts := map[string]Verdict{
		"d1.s0.canon": Infeasible, "d1.s1.canon": Infeasible,
		"d2.s0.canon": Feasible, "d2.s1.canon": Feasible,
		"d3.s0.canon": Feasible, "d3.s1.canon": Feasible,
	}
	res, err := Run(ctx, spec(1, 3, 2).Members(), 4, f.fn(verdicts, nil))
	if err != nil {
		t.Fatal(err)
	}
	if g := reg.Gauge("portfolio.inflight").Value(); g != 0 {
		t.Errorf("inflight gauge %d after Run, want 0", g)
	}
	for _, o := range res.Outcomes {
		if o.Verdict == Unknown {
			t.Errorf("%s has no final disposition", o.Member.Label)
		}
	}
	if got := reg.Counter("portfolio.members").Value(); got != 6 {
		t.Errorf("members counter %d, want 6", got)
	}
}

// Racing both allocation modes: an indicator-mode SAT wins when the
// canonical sibling is slower, at the same depth.
func TestRaceAllocs(t *testing.T) {
	f := &fakeRun{}
	s := spec(1, 1, 1)
	s.RaceAllocs = true
	gate := make(chan struct{})
	defer close(gate)
	verdicts := map[string]Verdict{"d1.s0.ind": Feasible}
	gates := map[string]chan struct{}{"d1.s0.canon": gate}
	res, err := Run(context.Background(), s.Members(), 2, f.fn(verdicts, gates))
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == nil || !res.Winner.Member.IndicatorAlloc {
		t.Fatalf("winner %+v, want indicator member", res.Winner)
	}
}

// Stress the scheduler under the race detector: many random portfolios.
func TestSchedulerStress(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		f := &fakeRun{}
		feasibleDepth := 1 + trial%3
		verdicts := map[string]Verdict{}
		for d := 1; d <= 3; d++ {
			for k := 0; k < 2; k++ {
				label := fmt.Sprintf("d%d.s%d.canon", d, k)
				if d < feasibleDepth {
					verdicts[label] = Infeasible
				} else {
					verdicts[label] = Feasible
				}
			}
		}
		res, err := Run(context.Background(), spec(1, 3, 2).Members(), 1+trial%4, f.fn(verdicts, nil))
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == nil || res.Winner.Member.Stages != feasibleDepth {
			t.Fatalf("trial %d: winner %+v, want depth %d", trial, res.Winner, feasibleDepth)
		}
	}
}

// TestMembersModeAxis checks the mode expansion: RaceModes adds a
// same-seed sibling per mode with a ".mode" label segment, single-mode
// portfolios keep their historical labels, and a RaceModes entry equal to
// the base mode is dropped rather than duplicated.
func TestMembersModeAxis(t *testing.T) {
	s := Spec{MinStages: 1, MaxStages: 2, SeedFanout: 1, BaseSeed: 7,
		Mode: "cex", RaceModes: []string{"holes"}}
	ms := s.Members()
	want := []struct {
		label string
		mode  string
	}{
		{"d1.s0.canon.cex", "cex"},
		{"d1.s0.canon.holes", "holes"},
		{"d2.s0.canon.cex", "cex"},
		{"d2.s0.canon.holes", "holes"},
	}
	if len(ms) != len(want) {
		t.Fatalf("got %d members, want %d", len(ms), len(want))
	}
	for i, m := range ms {
		if m.Label != want[i].label || m.Mode != want[i].mode {
			t.Errorf("member %d = %q mode %q, want %q mode %q", i, m.Label, m.Mode, want[i].label, want[i].mode)
		}
		if m.Seed != 7 {
			t.Errorf("member %s seed %d: mode siblings must share the slot seed", m.Label, m.Seed)
		}
	}

	// Single mode: no label segment, so baselines keyed on the historical
	// labels are unchanged even for a non-default mode.
	solo := Spec{MinStages: 1, MaxStages: 1, Mode: "holes"}.Members()
	if len(solo) != 1 || solo[0].Label != "d1.s0.canon" || solo[0].Mode != "holes" {
		t.Fatalf("single-mode members = %+v", solo)
	}

	// A redundant RaceModes entry must not duplicate members.
	dup := Spec{MinStages: 1, MaxStages: 1, Mode: "cex", RaceModes: []string{"cex"}}.Members()
	if len(dup) != 1 {
		t.Fatalf("RaceModes duplicating the base mode grew the portfolio: %+v", dup)
	}
}

// TestExhaustedMemberDoesNotEndRace: a hole-elimination member running out
// of candidates is a lost member, not a timed-out portfolio. The race must
// carry on to a deeper feasible sibling, with the winner's floor proven by
// the counterexample member's infeasible verdict.
func TestExhaustedMemberDoesNotEndRace(t *testing.T) {
	manyCores(t)
	f := &fakeRun{}
	s := Spec{MinStages: 1, MaxStages: 2, SeedFanout: 1, BaseSeed: 7, Stagger: -1,
		Mode: "cex", RaceModes: []string{"holes"}}
	verdicts := map[string]Verdict{
		"d1.s0.canon.cex":   Infeasible,
		"d1.s0.canon.holes": Exhausted,
		"d2.s0.canon.holes": Feasible,
		// d2 cex has no script entry: it blocks until the holes win
		// cancels it.
	}
	// Hold the depth-1 infeasible and the depth-2 SAT until every member
	// has started, so the exhausting member cannot be skipped as already
	// resolved — the verdict under test must come from a real run.
	gate := make(chan struct{})
	gates := map[string]chan struct{}{"d1.s0.canon.cex": gate, "d2.s0.canon.holes": gate}
	go func() {
		for {
			f.mu.Lock()
			n := len(f.started)
			f.mu.Unlock()
			if n == 4 {
				close(gate)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), reg)
	res, err := Run(ctx, s.Members(), 4, f.fn(verdicts, gates))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("an exhausted member timed out the whole portfolio")
	}
	if res.Winner == nil || res.Winner.Member.Label != "d2.s0.canon.holes" {
		t.Fatalf("winner %+v, want d2.s0.canon.holes", res.Winner)
	}
	if res.Winner.Member.Mode != "holes" {
		t.Fatalf("winner mode %q, want holes", res.Winner.Member.Mode)
	}
	for _, o := range res.Outcomes {
		if o.Member.Label == "d1.s0.canon.holes" && o.Verdict != Exhausted {
			t.Errorf("exhausted member recorded verdict %v", o.Verdict)
		}
	}
	if got := reg.Counter("portfolio.exhausted").Value(); got != 1 {
		t.Errorf("portfolio.exhausted = %d, want 1", got)
	}
}
