// Package word implements fixed-width two's-complement integer arithmetic.
//
// Every scalar in this repository — packet fields, switch state, immediate
// operands, ALU results — is a w-bit two's-complement integer for a
// configurable width w. The specification interpreter (internal/interp), the
// PISA datapath simulator (internal/pisa), and the bit-vector circuit encoder
// (internal/circuit) all use exactly the semantics defined here, which is the
// property that makes counterexample-guided synthesis sound: a hole
// assignment verified at width w is correct for every input at width w.
//
// Values are carried in uint64 with only the low w bits significant; all
// operations mask their results back to w bits. Comparison and boolean
// operators return the canonical truth values 0 and 1, matching C (and
// Domino) semantics.
package word

import "fmt"

// MaxWidth is the largest supported bit width. Widths beyond 32 are
// unnecessary for the paper's experiments (SKETCH defaults to 5-bit inputs
// and the Z3 outer loop verifies at 10 bits) and keeping products inside
// uint64 requires w <= 32.
const MaxWidth = 32

// Width is a bit width for scalar values.
type Width int

// Validate returns an error if the width is outside [1, MaxWidth].
func (w Width) Validate() error {
	if w < 1 || w > MaxWidth {
		return fmt.Errorf("word: width %d out of range [1, %d]", int(w), MaxWidth)
	}
	return nil
}

// Mask returns the bit mask with the low w bits set.
func (w Width) Mask() uint64 {
	return (uint64(1) << uint(w)) - 1
}

// Size returns the number of distinct values at this width, 2^w.
func (w Width) Size() uint64 {
	return uint64(1) << uint(w)
}

// Trunc truncates v to w bits.
func (w Width) Trunc(v uint64) uint64 {
	return v & w.Mask()
}

// FromInt converts a Go int64 to a w-bit word, wrapping two's-complement.
func (w Width) FromInt(v int64) uint64 {
	return uint64(v) & w.Mask()
}

// ToInt sign-extends a w-bit word to a Go int64.
func (w Width) ToInt(v uint64) int64 {
	v &= w.Mask()
	sign := uint64(1) << uint(w-1)
	if v&sign != 0 {
		return int64(v | ^w.Mask())
	}
	return int64(v)
}

// SignBit reports whether the w-bit word v is negative.
func (w Width) SignBit(v uint64) bool {
	return v&(1<<uint(w-1)) != 0
}

// Add returns a+b at width w.
func (w Width) Add(a, b uint64) uint64 { return (a + b) & w.Mask() }

// Sub returns a-b at width w.
func (w Width) Sub(a, b uint64) uint64 { return (a - b) & w.Mask() }

// Mul returns a*b at width w.
func (w Width) Mul(a, b uint64) uint64 { return (a * b) & w.Mask() }

// Neg returns -a at width w.
func (w Width) Neg(a uint64) uint64 { return (-a) & w.Mask() }

// And returns the bitwise AND at width w.
func (w Width) And(a, b uint64) uint64 { return a & b & w.Mask() }

// Or returns the bitwise OR at width w.
func (w Width) Or(a, b uint64) uint64 { return (a | b) & w.Mask() }

// Xor returns the bitwise XOR at width w.
func (w Width) Xor(a, b uint64) uint64 { return (a ^ b) & w.Mask() }

// Not returns the bitwise complement at width w.
func (w Width) Not(a uint64) uint64 { return (^a) & w.Mask() }

// Shl returns a << b at width w. Shift amounts >= w yield 0, matching the
// circuit encoder's barrel shifter (and avoiding C's undefined behaviour,
// which Domino programs must not rely on).
func (w Width) Shl(a, b uint64) uint64 {
	if b >= uint64(w) {
		return 0
	}
	return (a << b) & w.Mask()
}

// Shr returns the logical right shift a >> b at width w, with shifts >= w
// yielding 0.
func (w Width) Shr(a, b uint64) uint64 {
	if b >= uint64(w) {
		return 0
	}
	return (a & w.Mask()) >> b
}

// Bool converts a Go bool to the canonical word truth value.
func Bool(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Truthy reports whether a word is a C-style true value (non-zero).
func Truthy(v uint64) bool { return v != 0 }

// Eq returns 1 if a == b at width w, else 0.
func (w Width) Eq(a, b uint64) uint64 { return Bool(w.Trunc(a) == w.Trunc(b)) }

// Ne returns 1 if a != b at width w, else 0.
func (w Width) Ne(a, b uint64) uint64 { return Bool(w.Trunc(a) != w.Trunc(b)) }

// Lt returns 1 if a < b as signed w-bit integers, else 0.
func (w Width) Lt(a, b uint64) uint64 { return Bool(w.ToInt(a) < w.ToInt(b)) }

// Le returns 1 if a <= b as signed w-bit integers, else 0.
func (w Width) Le(a, b uint64) uint64 { return Bool(w.ToInt(a) <= w.ToInt(b)) }

// Gt returns 1 if a > b as signed w-bit integers, else 0.
func (w Width) Gt(a, b uint64) uint64 { return Bool(w.ToInt(a) > w.ToInt(b)) }

// Ge returns 1 if a >= b as signed w-bit integers, else 0.
func (w Width) Ge(a, b uint64) uint64 { return Bool(w.ToInt(a) >= w.ToInt(b)) }

// LAnd returns the C logical AND: 1 if both operands are non-zero.
func LAnd(a, b uint64) uint64 { return Bool(Truthy(a) && Truthy(b)) }

// LOr returns the C logical OR: 1 if either operand is non-zero.
func LOr(a, b uint64) uint64 { return Bool(Truthy(a) || Truthy(b)) }

// LNot returns the C logical NOT: 1 if the operand is zero.
func LNot(a uint64) uint64 { return Bool(!Truthy(a)) }

// Mux returns t if sel is truthy, else f. This is the ternary operator and
// the semantics of every mux in the PISA datapath.
func Mux(sel, t, f uint64) uint64 {
	if Truthy(sel) {
		return t
	}
	return f
}
