package word

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	for _, w := range []Width{1, 4, 10, 32} {
		if err := w.Validate(); err != nil {
			t.Errorf("width %d should validate: %v", w, err)
		}
	}
	for _, w := range []Width{0, -1, 33, 64} {
		if err := w.Validate(); err == nil {
			t.Errorf("width %d should be rejected", w)
		}
	}
}

func TestMaskSizeTrunc(t *testing.T) {
	w := Width(4)
	if w.Mask() != 0xF || w.Size() != 16 {
		t.Fatalf("mask=%x size=%d", w.Mask(), w.Size())
	}
	if w.Trunc(0x1F) != 0xF {
		t.Fatal("trunc")
	}
	if Width(32).Mask() != 0xFFFFFFFF {
		t.Fatal("32-bit mask")
	}
}

func TestSignConversion(t *testing.T) {
	w := Width(8)
	cases := []struct {
		in   int64
		word uint64
		back int64
	}{
		{0, 0, 0}, {1, 1, 1}, {-1, 255, -1}, {127, 127, 127},
		{-128, 128, -128}, {128, 128, -128}, {256, 0, 0}, {-257, 255, -1},
	}
	for _, c := range cases {
		if got := w.FromInt(c.in); got != c.word {
			t.Errorf("FromInt(%d) = %d, want %d", c.in, got, c.word)
		}
		if got := w.ToInt(c.word); got != c.back {
			t.Errorf("ToInt(%d) = %d, want %d", c.word, got, c.back)
		}
	}
}

func TestSignBit(t *testing.T) {
	w := Width(4)
	if w.SignBit(7) || !w.SignBit(8) {
		t.Fatal("sign bit at width 4")
	}
}

func TestArithmeticWrapping(t *testing.T) {
	w := Width(8)
	if w.Add(250, 10) != 4 {
		t.Fatal("add wrap")
	}
	if w.Sub(3, 5) != 254 {
		t.Fatal("sub wrap")
	}
	if w.Mul(16, 16) != 0 {
		t.Fatal("mul wrap")
	}
	if w.Neg(1) != 255 || w.Neg(0) != 0 {
		t.Fatal("neg")
	}
}

func TestShifts(t *testing.T) {
	w := Width(8)
	if w.Shl(1, 3) != 8 || w.Shl(1, 8) != 0 || w.Shl(1, 200) != 0 {
		t.Fatal("shl")
	}
	if w.Shr(0x80, 4) != 8 || w.Shr(0x80, 8) != 0 {
		t.Fatal("shr")
	}
}

func TestComparisonsAreSigned(t *testing.T) {
	w := Width(8)
	if w.Lt(255, 1) != 1 { // -1 < 1
		t.Fatal("lt signed")
	}
	if w.Gt(255, 1) != 0 || w.Ge(128, 127) != 0 || w.Le(128, 127) != 1 {
		t.Fatal("signed comparisons")
	}
	if w.Eq(256, 0) != 1 || w.Ne(256, 0) != 0 {
		t.Fatal("eq should truncate operands")
	}
}

func TestLogical(t *testing.T) {
	if LAnd(2, 3) != 1 || LAnd(2, 0) != 0 || LOr(0, 0) != 0 || LOr(0, 9) != 1 {
		t.Fatal("logical ops")
	}
	if LNot(0) != 1 || LNot(42) != 0 {
		t.Fatal("lnot")
	}
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Fatal("bool")
	}
	if !Truthy(5) || Truthy(0) {
		t.Fatal("truthy")
	}
	if Mux(1, 10, 20) != 10 || Mux(0, 10, 20) != 20 || Mux(7, 10, 20) != 10 {
		t.Fatal("mux")
	}
}

// TestRingHomomorphism is the property the whole two-tier CEGIS design
// rests on: truncation commutes with +, -, *.
func TestRingHomomorphism(t *testing.T) {
	narrow, wide := Width(4), Width(10)
	f := func(a, b uint16) bool {
		av, bv := uint64(a), uint64(b)
		return narrow.Add(wide.Add(av, bv), 0) == narrow.Add(narrow.Trunc(av), narrow.Trunc(bv)) &&
			narrow.Trunc(wide.Sub(av, bv)) == narrow.Sub(narrow.Trunc(av), narrow.Trunc(bv)) &&
			narrow.Trunc(wide.Mul(av, bv)) == narrow.Mul(narrow.Trunc(av), narrow.Trunc(bv))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestToIntFromIntRoundtrip: FromInt(ToInt(x)) == x for all w-bit words.
func TestToIntFromIntRoundtrip(t *testing.T) {
	for _, w := range []Width{1, 3, 8, 10} {
		for v := uint64(0); v < w.Size(); v++ {
			if got := w.FromInt(w.ToInt(v)); got != v {
				t.Fatalf("width %d: roundtrip of %d gave %d", w, v, got)
			}
		}
	}
}
