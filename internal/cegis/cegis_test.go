package cegis

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/circuit"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/pisa"
	"repro/internal/sat"
	"repro/internal/word"
)

func grid(stages, width int, kind alu.Kind, constBits int) pisa.GridSpec {
	return pisa.GridSpec{
		Stages:       stages,
		Width:        width,
		WordWidth:    10,
		StatelessALU: alu.Stateless{ConstBits: constBits},
		StatefulALU:  alu.Stateful{Kind: kind, ConstBits: constBits},
	}
}

func synth(t *testing.T, src string, g pisa.GridSpec, opts Options) *Result {
	t.Helper()
	prog := parser.MustParse("test", src)
	res, err := Synthesize(context.Background(), prog, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestStatelessIncrement(t *testing.T) {
	res := synth(t, "pkt.a = pkt.a + 1;", grid(1, 1, alu.Counter, 4), Options{Seed: 1})
	if !res.Feasible {
		t.Fatal("increment should fit a 1x1 grid")
	}
	outPkt, _ := res.Config.Exec(map[string]uint64{"a": 41}, nil)
	if outPkt["a"] != 42 {
		t.Fatalf("a = %d, want 42", outPkt["a"])
	}
}

func TestTwoFieldSwapNeedsWidth2(t *testing.T) {
	src := "pkt.tmp = pkt.a; pkt.a = pkt.b; pkt.b = pkt.tmp;"
	// Three fields cannot fit two containers: immediate infeasibility.
	res := synth(t, src, grid(2, 2, alu.Counter, 4), Options{Seed: 1})
	if res.Feasible || res.Iters != 0 {
		t.Fatal("3 fields in 2 containers must be rejected without search")
	}
	// With three containers it fits.
	res = synth(t, src, grid(1, 3, alu.Counter, 4), Options{Seed: 1})
	if !res.Feasible {
		t.Fatal("swap should fit a 1x3 grid")
	}
	outPkt, _ := res.Config.Exec(map[string]uint64{"a": 5, "b": 9, "tmp": 0}, nil)
	if outPkt["a"] != 9 || outPkt["b"] != 5 || outPkt["tmp"] != 5 {
		t.Fatalf("swap result %v", outPkt)
	}
}

func TestInfeasibleProgramRejected(t *testing.T) {
	// Multiplication of two packet fields is beyond both ALU types.
	res := synth(t, "pkt.a = pkt.a * pkt.b;", grid(1, 2, alu.Counter, 4), Options{Seed: 1})
	if res.Feasible {
		t.Fatal("field*field should be infeasible on this hardware")
	}
	if res.TimedOut {
		t.Fatal("should be proven infeasible, not timed out")
	}
}

func TestStatefulCounter(t *testing.T) {
	// The appendix's counter ALU can add a constant to state; the packet
	// field must simultaneously pass through untouched.
	res := synth(t, "total = total + 2;", grid(1, 1, alu.Counter, 4), Options{Seed: 3})
	if !res.Feasible {
		t.Fatal("constant counter should fit the counter ALU")
	}
	state := map[string]uint64{"total": 0}
	var pkt map[string]uint64
	for i := 0; i < 5; i++ {
		pkt, state = res.Config.Exec(map[string]uint64{"v": 7}, state)
		if pkt["v"] != 7 {
			t.Fatalf("packet field clobbered: %v", pkt)
		}
	}
	if state["total"] != 10 {
		t.Fatalf("total = %d, want 10", state["total"])
	}
}

func TestStatefulAccumulatorNeedsPredRaw(t *testing.T) {
	// total += pkt.v exceeds the counter ALU (which only adds constants)
	// but fits pred_raw, whose update operand can be the packet.
	src := "total = total + pkt.v;"
	res := synth(t, src, grid(1, 1, alu.Counter, 4), Options{Seed: 3})
	if res.Feasible {
		t.Fatal("counter ALU cannot add a packet value to state")
	}
	res = synth(t, src, grid(1, 1, alu.PredRaw, 4), Options{Seed: 3})
	if !res.Feasible {
		t.Fatal("accumulator should fit pred_raw")
	}
	state := map[string]uint64{"total": 0}
	for i := uint64(1); i <= 5; i++ {
		_, state = res.Config.Exec(map[string]uint64{"v": i}, state)
	}
	if state["total"] != 15 {
		t.Fatalf("total = %d, want 15", state["total"])
	}
}

func TestSamplingEndToEnd(t *testing.T) {
	src := `
int count = 0;
if (count == 10) { count = 0; pkt.sample = 1; }
else { count = count + 1; pkt.sample = 0; }
`
	res := synth(t, src, grid(1, 2, alu.IfElseRaw, 4), Options{Seed: 1})
	if !res.Feasible {
		t.Fatal("sampling should fit one stage with if_else_raw")
	}
	state := map[string]uint64{"count": 0}
	samples := 0
	for i := 0; i < 33; i++ {
		var pkt map[string]uint64
		pkt, state = res.Config.Exec(map[string]uint64{"sample": 0}, state)
		if pkt["sample"] == 1 {
			samples++
		}
	}
	if samples != 3 {
		t.Fatalf("sampled %d of 33, want 3", samples)
	}
}

// TestCounterexampleLoopConverges uses a program whose constant (20)
// exceeds the synthesis width's value range, so narrow-width synthesis
// cannot pin it down and verification counterexamples must drive
// convergence (the §3.1 outer loop).
func TestCounterexampleLoopConverges(t *testing.T) {
	src := "pkt.hit = pkt.a == 20;"
	var events []Event
	res := synth(t, src, grid(1, 2, alu.Counter, 5), Options{
		Seed:       5,
		SynthWidth: 4, // 20 wraps to 4 at this width: ambiguous constants
		Trace:      func(e Event) { events = append(events, e) },
	})
	if !res.Feasible {
		t.Fatal("equality test should be feasible")
	}
	outPkt, _ := res.Config.Exec(map[string]uint64{"a": 20, "hit": 9}, nil)
	if outPkt["hit"] != 1 {
		t.Fatalf("hit = %d, want 1", outPkt["hit"])
	}
	outPkt, _ = res.Config.Exec(map[string]uint64{"a": 4, "hit": 9}, nil)
	if outPkt["hit"] != 0 {
		t.Fatalf("hit(4) = %d, want 0 — synthesized constant wrapped", outPkt["hit"])
	}
	// The trace must show at least one verify-phase counterexample.
	cexs := 0
	for _, e := range events {
		if e.Phase == "verify" && e.Outcome == "sat" {
			cexs++
			if e.Counterexample == nil {
				t.Fatal("verify/sat event missing counterexample")
			}
		}
	}
	if cexs == 0 {
		t.Fatal("expected at least one counterexample at synth width 4")
	}
	if res.Tests <= 3 {
		t.Fatalf("tests = %d; counterexamples should have grown the set", res.Tests)
	}
}

// TestNarrowSynthWidthIsClamped checks the MinWidth safeguard: asking for a
// 2-bit synthesis width must not mis-synthesize or spuriously reject —
// control holes would alias below 4 bits, so the engine clamps.
func TestNarrowSynthWidthIsClamped(t *testing.T) {
	res := synth(t, "pkt.hit = pkt.a == 10;", grid(1, 2, alu.Counter, 4), Options{
		Seed:       5,
		SynthWidth: 2,
	})
	if !res.Feasible {
		t.Fatal("clamped narrow synthesis should still succeed")
	}
	outPkt, _ := res.Config.Exec(map[string]uint64{"a": 10, "hit": 0}, nil)
	if outPkt["hit"] != 1 {
		t.Fatalf("hit = %d, want 1", outPkt["hit"])
	}
}

func TestTimeoutReported(t *testing.T) {
	// An already-expired context must yield TimedOut, not an error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prog := parser.MustParse("t", "pkt.a = pkt.a + 1;")
	res, err := Synthesize(ctx, prog, grid(1, 1, alu.Counter, 4), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Feasible {
		t.Fatalf("expired context: TimedOut=%v Feasible=%v", res.TimedOut, res.Feasible)
	}
}

func TestIndicatorAllocationMode(t *testing.T) {
	// The indicator-variable allocation (Figure 4, left) must synthesize
	// the same programs as canonical allocation.
	src := "pkt.b = pkt.a + pkt.b;"
	res := synth(t, src, grid(1, 2, alu.Counter, 4), Options{Seed: 2, IndicatorAlloc: true})
	if !res.Feasible {
		t.Fatal("indicator allocation should also fit")
	}
	if res.Config.Values.FieldAlloc == nil {
		t.Fatal("indicator mode must populate the allocation matrix")
	}
	if err := res.Config.Validate(); err != nil {
		t.Fatal(err)
	}
	outPkt, _ := res.Config.Exec(map[string]uint64{"a": 3, "b": 4}, nil)
	if outPkt["b"] != 7 || outPkt["a"] != 3 {
		t.Fatalf("got %v", outPkt)
	}
}

func TestIndicatorVsCanonicalSearchSpace(t *testing.T) {
	// Figure 4's point: canonicalization removes indicator holes.
	prog := parser.MustParse("t", "pkt.b = pkt.a + pkt.b;")
	g := grid(1, 2, alu.Counter, 4)
	canon, err := Synthesize(context.Background(), prog, g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	indic, err := Synthesize(context.Background(), prog, g, Options{Seed: 2, IndicatorAlloc: true})
	if err != nil {
		t.Fatal(err)
	}
	if indic.HoleBits <= canon.HoleBits {
		t.Fatalf("indicator mode should have more hole bits: %d vs %d", indic.HoleBits, canon.HoleBits)
	}
}

func TestConfigWidthIndependence(t *testing.T) {
	// A verified configuration must run correctly at widths below the
	// verification width too (hole values are width-independent).
	res := synth(t, "pkt.a = pkt.a + 3;", grid(1, 1, alu.Counter, 4), Options{Seed: 4})
	if !res.Feasible {
		t.Fatal("feasible expected")
	}
	for _, w := range []word.Width{4, 6, 8, 10} {
		cfg := *res.Config
		cfg.Grid.WordWidth = w
		in := interp.MustNew(w)
		prog := parser.MustParse("t", "pkt.a = pkt.a + 3;")
		for a := uint64(0); a < 16; a++ {
			snap := interp.NewSnapshot()
			snap.Pkt["a"] = a
			want, err := in.Run(prog, snap)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := cfg.Exec(snap.Pkt, nil)
			if got["a"] != want.Pkt["a"] {
				t.Fatalf("width %d a=%d: got %d want %d", w, a, got["a"], want.Pkt["a"])
			}
		}
	}
}

func TestCanonicalVars(t *testing.T) {
	prog := parser.MustParse("t", "z = pkt.q + y; pkt.b = z;")
	fields, states := CanonicalVars(prog)
	if len(fields) != 2 || fields[0] != "b" || fields[1] != "q" {
		t.Fatalf("fields = %v", fields)
	}
	if len(states) != 2 || states[0] != "y" || states[1] != "z" {
		t.Fatalf("states = %v", states)
	}
}

func TestOpcodeMaskRestriction(t *testing.T) {
	// With an arithmetic-only stateless ALU, a bitwise program must be
	// infeasible (the §3.1 opcode-restriction heuristic's failure side).
	g := grid(1, 2, alu.Counter, 4)
	g.StatelessALU.OpcodeMask = alu.ArithOnlyMask
	res := synth(t, "pkt.a = pkt.a ^ pkt.b;", g, Options{Seed: 1})
	if res.Feasible {
		t.Fatal("xor should be infeasible under the arithmetic-only mask")
	}
	// But an arithmetic program still compiles.
	res = synth(t, "pkt.a = pkt.a + pkt.b;", g, Options{Seed: 1})
	if !res.Feasible {
		t.Fatal("add should remain feasible under the mask")
	}
}

// --- Figure 1: syntax-guided synthesis on the paper's opening example ------

// figure1Synthesize runs a minimal CEGIS directly over the circuit and SAT
// substrates for the sketch "x << ??(2) [+ x]": the paper's Figure 1.
// It returns (feasible, holeValue).
func figure1Synthesize(t *testing.T, withPlusX bool) (bool, uint64) {
	t.Helper()
	const w = word.Width(8)
	b := circuit.New()
	hole := b.InputWord("h", 2) // ??(2): a 2-bit hole

	synthSolver := sat.New()
	synthCNF := circuit.NewCNF(b, synthSolver)

	build := func(xv circuit.Word) circuit.Word {
		wide := make(circuit.Word, w)
		copy(wide, hole)
		for i := 2; i < int(w); i++ {
			wide[i] = circuit.False
		}
		out := b.ShlW(xv, wide)
		if withPlusX {
			out = b.AddW(out, xv)
		}
		return out
	}
	spec := func(x uint64) uint64 { return w.Mul(x, 5) }

	addTest := func(x uint64) {
		out := build(b.ConstWord(x, w))
		synthCNF.Assert(b.EqW(out, b.ConstWord(spec(x), w)))
	}
	addTest(1) // initial test input

	for iter := 0; iter < 20; iter++ {
		if synthSolver.Solve() != sat.Sat {
			return false, 0
		}
		h := synthCNF.WordValue(hole)
		// Verify exhaustively at width 8.
		cex := uint64(0)
		found := false
		for x := uint64(0); x < w.Size(); x++ {
			got := w.Shl(x, h)
			if withPlusX {
				got = w.Add(got, x)
			}
			if got != spec(x) {
				cex, found = x, true
				break
			}
		}
		if !found {
			return true, h
		}
		addTest(cex)
	}
	t.Fatal("figure 1 CEGIS did not converge")
	return false, 0
}

func TestFigure1FeasibleSketch(t *testing.T) {
	ok, h := figure1Synthesize(t, true)
	if !ok {
		t.Fatal("sketch1 (x<<h + x) should be feasible for spec x*5")
	}
	if h != 2 {
		t.Fatalf("hole = %d, want 2 (x<<2 + x == 5x)", h)
	}
}

func TestFigure1InfeasibleSketch(t *testing.T) {
	ok, _ := figure1Synthesize(t, false)
	if ok {
		t.Fatal("sketch2 (x<<h) cannot implement x*5: no power of two equals 5")
	}
}

func TestSynthesisIsDeterministic(t *testing.T) {
	src := "pkt.a = pkt.a + 1;"
	g := grid(1, 1, alu.Counter, 4)
	a := synth(t, src, g, Options{Seed: 11})
	b := synth(t, src, g, Options{Seed: 11})
	if a.Iters != b.Iters || a.Tests != b.Tests {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d iters/tests", a.Iters, a.Tests, b.Iters, b.Tests)
	}
}

func TestStateCapacityPrecheck(t *testing.T) {
	src := "s1 = s1 + 1; s2 = s2 + 1;"
	res := synth(t, src, grid(2, 1, alu.Counter, 4), Options{Seed: 1})
	if res.Feasible {
		t.Fatal("2 states into a width-1 counter grid should be infeasible")
	}
	if res.Iters != 0 {
		t.Fatal("capacity violation should be rejected before search")
	}
}

func TestTraceEventsWellFormed(t *testing.T) {
	var events []Event
	synth(t, "pkt.a = pkt.a + 1;", grid(1, 1, alu.Counter, 4), Options{
		Seed:  1,
		Trace: func(e Event) { events = append(events, e) },
	})
	if len(events) < 2 {
		t.Fatalf("expected synth+verify events, got %d", len(events))
	}
	for i, e := range events {
		if e.Phase != "synth" && e.Phase != "verify" {
			t.Fatalf("event %d has phase %q", i, e.Phase)
		}
		if e.Iter < 1 {
			t.Fatalf("event %d has iter %d", i, e.Iter)
		}
	}
	last := events[len(events)-1]
	if last.Phase != "verify" || last.Outcome != "unsat" {
		t.Fatalf("final event should be verify/unsat, got %s/%s", last.Phase, last.Outcome)
	}
}

func TestContextCancelMidSearch(t *testing.T) {
	// A very short timeout on a harder problem must return TimedOut
	// promptly rather than hanging.
	src := `
int last_time = 0;
int saved_hop = 0;
if (pkt.arrival - last_time > 5) { saved_hop = pkt.new_hop; }
pkt.next_hop = saved_hop;
last_time = pkt.arrival;
`
	ctx, cancel := context.WithTimeout(context.Background(), 1*time.Millisecond)
	defer cancel()
	prog := parser.MustParse("flowlet", src)
	start := time.Now()
	res, err := Synthesize(ctx, prog, grid(2, 3, alu.Pair, 4), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		// On a very fast machine the solve might legitimately finish;
		// only fail if it neither finished nor reported timeout.
		if !res.Feasible {
			t.Fatal("expected TimedOut or Feasible")
		}
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestHarnessEquivalenceOnAllInputs spot-checks the paper's Appendix A
// harness property on a synthesized config: pipeline(x) == program(x) for
// every input at a small exhaustive width.
func TestHarnessEquivalenceOnAllInputs(t *testing.T) {
	src := `
int seen = 0;
if (seen == 0) { pkt.new_flow = 1; seen = 1; }
else { pkt.new_flow = 0; }
`
	res := synth(t, src, grid(1, 2, alu.PredRaw, 4), Options{Seed: 9})
	if !res.Feasible {
		t.Fatal("new-flow should be feasible")
	}
	prog := parser.MustParse("t", src)
	const w = word.Width(6)
	cfg := *res.Config
	cfg.Grid.WordWidth = w
	in := interp.MustNew(w)
	for f := uint64(0); f < w.Size(); f++ {
		for s := uint64(0); s < w.Size(); s++ {
			snap := interp.NewSnapshot()
			snap.Pkt["new_flow"] = f
			snap.State["seen"] = s
			want, err := in.Run(prog, snap)
			if err != nil {
				t.Fatal(err)
			}
			gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
			if gotPkt["new_flow"] != want.Pkt["new_flow"] || gotState["seen"] != want.State["seen"] {
				t.Fatalf("input (%d,%d): got (%d,%d) want (%d,%d)",
					f, s, gotPkt["new_flow"], gotState["seen"],
					want.Pkt["new_flow"], want.State["seen"])
			}
		}
	}
}

func TestUnknownExpressionTypeErrors(t *testing.T) {
	prog := &ast.Program{Name: "bad", Stmts: []ast.Stmt{
		&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: nil},
	}, Init: map[string]int64{}}
	_, err := Synthesize(context.Background(), prog, grid(1, 1, alu.Counter, 4), Options{Seed: 1})
	if err == nil {
		t.Fatal("nil expression should surface an error")
	}
}

// TestObservabilityAgreement runs one synthesis with every telemetry sink
// attached and checks the three views agree: Trace event deltas sum to the
// Result's cumulative totals, the metrics registry's counters match the
// same sums, and the span trace is well-formed with the documented
// hierarchy.
func TestObservabilityAgreement(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(obs.ContextWithTracer(context.Background(), tr), reg)

	var events []Event
	prog := parser.MustParse("test", `
int count = 0;
if (count == 10) { count = 0; pkt.sample = 1; }
else { count = count + 1; pkt.sample = 0; }
`)
	res, err := Synthesize(ctx, prog, grid(1, 2, alu.IfElseRaw, 4), Options{
		Seed:  7,
		Trace: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("program should be feasible")
	}

	var evSynth, evVerify, evDecisions, evPropagations int64
	for _, e := range events {
		evSynth += e.SynthConflicts
		evVerify += e.VerifyConflicts
		evDecisions += e.Decisions
		evPropagations += e.Propagations
		if e.Conflicts() != e.SynthConflicts+e.VerifyConflicts {
			t.Fatalf("Conflicts() inconsistent: %+v", e)
		}
	}
	if evSynth != res.SynthConflicts {
		t.Fatalf("event synth conflict deltas sum to %d, Result says %d", evSynth, res.SynthConflicts)
	}
	if evVerify != res.VerifyConflicts {
		t.Fatalf("event verify conflict deltas sum to %d, Result says %d", evVerify, res.VerifyConflicts)
	}
	if evDecisions != res.Decisions || evPropagations != res.Propagations {
		t.Fatalf("event effort (%d dec, %d prop) != Result (%d, %d)",
			evDecisions, evPropagations, res.Decisions, res.Propagations)
	}

	// Registry counters are built from the same per-solve deltas.
	if got := reg.Counter("sat.conflicts").Value(); got != res.SynthConflicts+res.VerifyConflicts {
		t.Fatalf("registry sat.conflicts = %d, want %d", got, res.SynthConflicts+res.VerifyConflicts)
	}
	if got := reg.Counter("sat.decisions").Value(); got != res.Decisions {
		t.Fatalf("registry sat.decisions = %d, want %d", got, res.Decisions)
	}
	if got := reg.Counter("cegis.iterations").Value(); got != int64(res.Iters) {
		t.Fatalf("registry cegis.iterations = %d, want %d", got, res.Iters)
	}
	if got := reg.Counter("cegis.tests").Value(); got != int64(res.Tests) {
		t.Fatalf("registry cegis.tests = %d, want %d", got, res.Tests)
	}
	if got := reg.Gauge("sketch.hole_bits").Value(); got != int64(res.HoleBits) {
		t.Fatalf("registry sketch.hole_bits = %d, want %d", got, res.HoleBits)
	}
	if reg.Gauge("cnf.vars").Value() != int64(res.PeakCNFVars) {
		t.Fatalf("registry cnf.vars = %d, want %d", reg.Gauge("cnf.vars").Value(), res.PeakCNFVars)
	}
	if res.PeakCNFVars == 0 || res.PeakCNFClauses == 0 || res.Gates == 0 {
		t.Fatalf("encoding sizes not recorded: %+v", res)
	}

	// The span trace nests cegis.iter → synth/verify → sat.solve.
	recs := tr.Records()
	if err := obs.CheckWellFormed(recs); err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, r := range recs {
		if r.Type == obs.RecordStart {
			names[r.Name]++
		}
	}
	if names["cegis.iter"] != res.Iters {
		t.Fatalf("%d cegis.iter spans for %d iterations", names["cegis.iter"], res.Iters)
	}
	if names["synth"] == 0 || names["verify"] == 0 {
		t.Fatalf("missing phase spans: %v", names)
	}
	if names["sat.solve"] != names["synth"]+names["verify"] {
		t.Fatalf("each phase should contain one sat.solve: %v", names)
	}
}

func TestProgressCallbackDuringSynthesis(t *testing.T) {
	// A harder program reliably exceeds one progress interval only with a
	// tiny interval; the exported knob is fixed, so just check the wiring
	// does not fire for trivial solves and never reports a phase outside
	// the two CEGIS phases.
	phases := map[string]bool{}
	synth(t, "pkt.a = pkt.a + 1;", grid(1, 1, alu.Counter, 4), Options{
		Seed:     1,
		Progress: func(phase string, st sat.Stats) { phases[phase] = true },
	})
	for p := range phases {
		if p != "synth" && p != "verify" {
			t.Fatalf("unexpected progress phase %q", p)
		}
	}
}

// TestDefaultTierWidths pins the zero-value Options accessors to the
// exported defaults the solution cache folds into its content address;
// changing either constant requires a solcache.FormatVersion bump.
func TestDefaultTierWidths(t *testing.T) {
	var o Options
	if got := o.synthWidth(); got != DefaultSynthWidth {
		t.Errorf("zero-value synth width = %d, want DefaultSynthWidth (%d)", got, DefaultSynthWidth)
	}
	if got := o.verifyWidth(); got != DefaultVerifyWidth {
		t.Errorf("zero-value verify width = %d, want DefaultVerifyWidth (%d)", got, DefaultVerifyWidth)
	}
}

// TestNonzeroInitStateFeasible is the minimized regression for a bug found
// by the chipfuzz campaign: the initial all-zeros seed test left state
// entries out of the snapshot, so the interpreter seeded them from Init
// while the datapath side read 0, producing a contradictory constraint
// (pipeline(0) == spec(Init)) that made any program with a nonzero state
// initializer "infeasible" within one counterexample round.
func TestNonzeroInitStateFeasible(t *testing.T) {
	// The reproducers live in testdata/ as chipfuzz shrank them.
	cases := []struct {
		file string
		kind alu.Kind
	}{
		{"nonzero_init_identity.domino", alu.Counter},
		{"nonzero_init_counter.domino", alu.Counter},
		{"nonzero_init_guarded.domino", alu.IfElseRaw},
	}
	for _, tc := range cases {
		raw, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		src := string(raw)
		res := synth(t, src, grid(1, 1, tc.kind, 4), Options{Seed: 1})
		if !res.Feasible {
			t.Fatalf("%s: infeasible, but Init must not affect the transfer function", tc.file)
		}
		// The synthesized config must implement the transfer function for
		// arbitrary state inputs, not just the initializer.
		for s0 := uint64(0); s0 < 8; s0++ {
			in := interp.MustNew(word.Width(10))
			prog := parser.MustParse("t", src)
			snap := interp.NewSnapshot()
			snap.State["s"] = s0
			want, err := in.Run(prog, snap)
			if err != nil {
				t.Fatal(err)
			}
			_, state := res.Config.Exec(nil, map[string]uint64{"s": s0})
			if state["s"] != want.State["s"] {
				t.Fatalf("%q: config(s=%d) = %d, interpreter says %d", src, s0, state["s"], want.State["s"])
			}
		}
	}
}
