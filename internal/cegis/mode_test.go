package cegis

import (
	"testing"

	"repro/internal/alu"
)

func TestParseMode(t *testing.T) {
	good := map[string]Mode{
		"":                      ModeCounterexample,
		"cex":                   ModeCounterexample,
		"counterexample":        ModeCounterexample,
		"counter-example":       ModeCounterexample,
		"counter_example_mode":  ModeCounterexample,
		"holes":                 ModeHoleElimination,
		"hole-elimination":      ModeHoleElimination,
		"hole_elimination":      ModeHoleElimination,
		"hole_elimination_mode": ModeHoleElimination,
	}
	for in, want := range good {
		got, err := ParseMode(in)
		if err != nil {
			t.Errorf("ParseMode(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseMode(%q) = %q, want %q", in, got, want)
		}
	}
	for _, in := range []string{"hole", "ce", "both", "HOLES"} {
		if _, err := ParseMode(in); err == nil {
			t.Errorf("ParseMode(%q): want error", in)
		}
	}
}

func TestHoleEliminationFeasible(t *testing.T) {
	res := synth(t, "pkt.a = pkt.a + 1;", grid(1, 1, alu.Counter, 4), Options{Seed: 1, Mode: ModeHoleElimination})
	if !res.Feasible {
		t.Fatalf("increment should fit a 1x1 grid in hole-elimination mode (timedout=%v after %d iters)",
			res.TimedOut, res.Iters)
	}
	if res.Mode != ModeHoleElimination {
		t.Fatalf("Result.Mode = %q, want %q", res.Mode, ModeHoleElimination)
	}
	outPkt, _ := res.Config.Exec(map[string]uint64{"a": 41}, nil)
	if outPkt["a"] != 42 {
		t.Fatalf("a = %d, want 42", outPkt["a"])
	}
	// Hole elimination never grows the test set: every refinement is a
	// blocking clause, so Tests stays at the initial seeding — the zero
	// snapshot plus DefaultHoleElimInitialTests randoms per tier width —
	// no matter how many candidates were tried.
	if want := 1 + 2*DefaultHoleElimInitialTests; res.Tests != want {
		t.Fatalf("Tests = %d, want the initial %d (mode must not add counterexample tests)", res.Tests, want)
	}
}

func TestHoleEliminationStateful(t *testing.T) {
	res := synth(t, "total = total + pkt.v;", grid(1, 1, alu.PredRaw, 4), Options{Seed: 7, Mode: ModeHoleElimination})
	if !res.Feasible {
		t.Fatalf("accumulator should fit pred_raw in hole-elimination mode (timedout=%v after %d iters)",
			res.TimedOut, res.Iters)
	}
	state := map[string]uint64{"total": 0}
	for i := uint64(1); i <= 5; i++ {
		_, state = res.Config.Exec(map[string]uint64{"v": i}, state)
	}
	if state["total"] != 15 {
		t.Fatalf("total = %d, want 15", state["total"])
	}
}

func TestHoleEliminationCapacityInfeasible(t *testing.T) {
	// Capacity rejection happens before any solving, identically per mode.
	src := "pkt.tmp = pkt.a; pkt.a = pkt.b; pkt.b = pkt.tmp;"
	res := synth(t, src, grid(2, 2, alu.Counter, 4), Options{Seed: 1, Mode: ModeHoleElimination})
	if res.Feasible || res.TimedOut || res.Iters != 0 {
		t.Fatalf("3 fields in 2 containers must be rejected without search: %+v", res)
	}
}

func TestHoleEliminationNeverErrorsOnExhaustion(t *testing.T) {
	// A tight candidate budget must yield an inconclusive TimedOut result,
	// not counterexample mode's "no convergence" error: enumeration
	// routinely outlives any fixed bound without being wrong.
	res := synth(t, "pkt.a = pkt.a * pkt.b;", grid(1, 2, alu.Counter, 4),
		Options{Seed: 1, Mode: ModeHoleElimination, MaxIters: 1})
	if res.Feasible {
		t.Fatal("field*field must not be declared feasible")
	}
	if !res.TimedOut && res.Iters >= 1 && res.Tests > 1+2*DefaultHoleElimInitialTests {
		t.Fatalf("hole elimination added tests: %+v", res)
	}
}

func TestModeAgreementOnVerdicts(t *testing.T) {
	// Both modes must agree whenever both conclude; hole elimination may
	// instead report TimedOut (inconclusive), never the opposite verdict.
	cases := []struct {
		src  string
		kind alu.Kind
	}{
		{"pkt.a = pkt.a + 1;", alu.Counter},
		{"total = total + pkt.v;", alu.PredRaw},
		{"pkt.a = pkt.a * pkt.b;", alu.Counter},
	}
	for _, c := range cases {
		g := grid(1, 2, c.kind, 4)
		cex := synth(t, c.src, g, Options{Seed: 7})
		hol := synth(t, c.src, g, Options{Seed: 7, Mode: ModeHoleElimination})
		if hol.TimedOut {
			continue // inconclusive: allowed, just not a disagreement
		}
		if cex.Feasible != hol.Feasible {
			t.Errorf("%q: cex feasible=%v, holes feasible=%v", c.src, cex.Feasible, hol.Feasible)
		}
	}
}
