package cegis

import "fmt"

// Mode selects the CEGIS refinement strategy — the axis the upstream
// Chipmunk driver (repeated_solver.py) races as counter_example_mode vs
// hole_elimination_mode.
//
// In counterexample mode a failed candidate feeds the refuting input back
// into the synthesis solver as an additional concrete test (Figure 3's
// outer loop): each iteration constrains the hole space by a whole
// semantic slice of the specification. In hole-elimination mode the
// refuting input is discarded and the candidate itself is blocked — one
// clause over the hole bits forbidding exactly that assignment — so the
// persistent synthesis solver enumerates the candidate space directly.
// Counterexample mode usually converges in fewer iterations; elimination
// iterations are far cheaper (no datapath re-instantiation, no new
// Tseitin cone), which wins when the first consistent candidates verify
// or the hole space is small. Racing both is the point (see
// portfolio.Spec.RaceModes).
type Mode string

const (
	// ModeCounterexample is the default: refuted candidates contribute
	// their counterexample as a new concrete test input.
	ModeCounterexample Mode = "cex"
	// ModeHoleElimination blocks each refuted candidate's hole assignment
	// instead of adding its counterexample as a test.
	ModeHoleElimination Mode = "holes"
)

// DefaultHoleElimMaxIters is the iteration bound for hole-elimination
// mode when Options.MaxIters is zero. Elimination visits one candidate
// per iteration, so it routinely needs far more rounds than
// counterexample mode's default of 64; exhausting the bound is an
// ordinary inconclusive outcome (Result.TimedOut), not an error.
const DefaultHoleElimMaxIters = 512

// DefaultHoleElimInitialTests is the initial random test count for
// hole-elimination mode when Options.InitialTests is zero. Elimination
// never grows its test set — the initial sample is all the specification
// evidence a candidate must fit before verification — so it wants a much
// richer sample than counterexample mode's default of 2 (seeded at both
// tier widths; see SynthesizeOn). On the corpus, 16-per-tier moves most
// programs from budget exhaustion to convergence within a few candidates.
const DefaultHoleElimInitialTests = 16

// ParseMode canonicalizes a user-facing mode string, accepting both our
// short names and the upstream driver's spellings. The empty string is
// counterexample mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "cex", "counterexample", "counter-example", "counter_example_mode":
		return ModeCounterexample, nil
	case "holes", "hole-elimination", "hole_elimination", "hole_elimination_mode":
		return ModeHoleElimination, nil
	}
	return "", fmt.Errorf("cegis: unknown mode %q (want cex or holes)", s)
}

// Modes lists every mode, in racing order (counterexample first, so
// portfolio member 0 stays the historical sequential attempt).
func Modes() []Mode { return []Mode{ModeCounterexample, ModeHoleElimination} }
