// Package cegis implements counterexample-guided inductive synthesis — the
// algorithm of the paper's Figure 3 — over the sketch and SAT substrates.
//
// The synthesis problem (Equation 1) asks for hole values c such that the
// pipeline P equals the specification S on all inputs x:
//
//	∃c ∀x : S(x) = P(x, c)
//
// CEGIS splits this quantifier alternation into an alternation of two SAT
// queries:
//
//   - Synthesis (Equation 2): on a finite test set {x1..xk}, find c with
//     S(xi) = P(xi, c) for all i. Each test input becomes one datapath
//     instantiation with constant inputs inside a single incremental
//     solver, so learned clauses persist across iterations.
//   - Verification (Equation 3): with c fixed, search for an x with
//     S(x) ≠ P(x, c). A model is a counterexample, fed back to synthesis;
//     UNSAT means the configuration is correct for every input at the
//     verification width.
//
// Following §3.1 ("Scaling Chipmunk to a large number of input bits"), the
// two phases run at different bit widths: synthesis instantiates test
// inputs at a small width (SKETCH's role), verification at a wider one
// (Z3's role, default 10 bits). Hole words are width-independent, so
// wide-width counterexamples constrain the same synthesis solver.
package cegis

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"time"

	"repro/internal/arith"
	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/pisa"
	"repro/internal/sat"
	"repro/internal/sketch"
	"repro/internal/word"
)

// Default tier widths used when Options leaves SynthWidth / VerifyWidth
// zero. Exported because the solution cache (internal/solcache) folds these
// into its content address so that explicit defaults and zero values collide
// on the same key: changing either value changes the meaning of persisted
// cache entries and therefore requires a solcache.FormatVersion bump.
const (
	DefaultSynthWidth  word.Width = 4
	DefaultVerifyWidth word.Width = 10
)

// Options tunes the CEGIS loop.
type Options struct {
	// SynthWidth is the datapath width for synthesis-phase test inputs
	// (the paper notes SKETCH defaults to 5-bit integers; 4 is our
	// default, swept by the two-tier ablation bench). 0 means
	// DefaultSynthWidth.
	SynthWidth word.Width
	// VerifyWidth is the verification width (the paper's Z3 stage runs at
	// 10-bit integers). 0 means DefaultVerifyWidth.
	VerifyWidth word.Width
	// IndicatorAlloc selects the indicator-variable field allocation
	// (Figure 4 ablation) instead of canonical allocation.
	IndicatorAlloc bool
	// Mode selects the refinement strategy: counterexample feedback (the
	// default) or hole elimination. See Mode.
	Mode Mode
	// InitialTests is the number of random test inputs seeded before the
	// first synthesis call (Figure 3's "initialize X to random inputs").
	// 0 means 2.
	InitialTests int
	// MaxIters bounds CEGIS iterations. 0 means 64 in counterexample mode
	// and DefaultHoleElimMaxIters in hole-elimination mode. Exhausting the
	// bound is an error in counterexample mode (it signals divergence) but
	// an ordinary TimedOut result in hole-elimination mode (enumeration
	// commonly outlives any fixed bound without being wrong).
	MaxIters int
	// Seed drives the initial random test inputs.
	Seed int64
	// Trace, when non-nil, receives an event per phase transition; used by
	// tests and the evaluation harness to report convergence behaviour.
	// Events are derived from the span instrumentation (internal/obs):
	// each phase span's outcome and solver-effort attributes are mirrored
	// into an Event, so the callback keeps working unchanged alongside
	// the structured trace.
	Trace func(Event)
	// Progress, when non-nil, is invoked from inside long SAT solves every
	// few thousand conflicts with the phase name and a counter snapshot,
	// so multi-minute solves (Table 2's worst cases) stay observable.
	Progress func(phase string, st sat.Stats)
	// Member labels the portfolio attempt this synthesis run belongs to
	// (internal/portfolio). It is attached to iteration spans and trace
	// events so concurrent attempts within one compile stay attributable,
	// and echoed on the Result so the winner can be reported. Empty
	// outside portfolio mode.
	Member string
}

func (o *Options) synthWidth() word.Width {
	if o.SynthWidth == 0 {
		return DefaultSynthWidth
	}
	return o.SynthWidth
}

func (o *Options) verifyWidth() word.Width {
	if o.VerifyWidth == 0 {
		return DefaultVerifyWidth
	}
	return o.VerifyWidth
}

func (o *Options) initialTests() int {
	if o.InitialTests == 0 {
		if o.mode() == ModeHoleElimination {
			return DefaultHoleElimInitialTests
		}
		return 2
	}
	return o.InitialTests
}

func (o *Options) maxIters() int {
	if o.MaxIters == 0 {
		if o.mode() == ModeHoleElimination {
			return DefaultHoleElimMaxIters
		}
		return 64
	}
	return o.MaxIters
}

func (o *Options) mode() Mode {
	if o.Mode == "" {
		return ModeCounterexample
	}
	return o.Mode
}

// Event reports one CEGIS phase outcome for tracing.
type Event struct {
	Iter int
	// Member is the portfolio attempt label this event belongs to (empty
	// outside portfolio mode), so interleaved traces from racing attempts
	// can be demultiplexed.
	Member string
	// Mode is the refinement strategy the run uses ("cex" or "holes"), so
	// effort rows from a mode race stay attributable per strategy.
	Mode Mode
	// Phase is "synth" or "verify".
	Phase string
	// Outcome is "sat", "unsat", or "timeout".
	Outcome string
	// Counterexample is set on verify/sat events.
	Counterexample *interp.Snapshot
	Elapsed        time.Duration
	// SynthConflicts and VerifyConflicts carry the SAT conflicts this
	// event's solve contributed — a per-phase delta (sat.StatsDelta), not
	// the cumulative totals Result reports. The field matching Phase is
	// set; the other is zero.
	SynthConflicts  int64
	VerifyConflicts int64
	// Decisions and Propagations are this phase's solver-effort deltas.
	Decisions    int64
	Propagations int64
}

// Conflicts returns the phase's conflict delta regardless of which phase
// the event reports.
func (e Event) Conflicts() int64 { return e.SynthConflicts + e.VerifyConflicts }

// Result is the outcome of a synthesis run.
type Result struct {
	// Member echoes Options.Member so a portfolio scheduler racing many
	// Synthesize calls can attribute each result (in particular the
	// winner's) without extra bookkeeping.
	Member string
	// Mode is the refinement strategy that produced this result.
	Mode Mode
	// Target names the backend this run synthesized for ("pisa", "bpf").
	Target string
	// Feasible reports whether a configuration implementing the program
	// on this target exists (false also when the run timed out — check
	// TimedOut to distinguish).
	Feasible bool
	// TimedOut is true when the context expired before an answer.
	TimedOut bool
	// TargetConfig is the synthesized configuration when Feasible.
	TargetConfig backend.Config
	// Config is TargetConfig's concrete type for the PISA target, kept so
	// existing callers (and persisted cache entries) keep their static
	// typing; nil for other targets.
	Config *pisa.Config
	// Iters is the number of CEGIS iterations executed.
	Iters int
	// Tests is the final size of the concrete test set.
	Tests int
	// HoleBits is the total search-space size in bits (m of Equation 1).
	HoleBits int
	// SynthConflicts and VerifyConflicts aggregate SAT effort per phase.
	SynthConflicts  int64
	VerifyConflicts int64
	// Decisions and Propagations aggregate SAT effort across both phases.
	Decisions    int64
	Propagations int64
	// PeakCNFVars and PeakCNFClauses are the largest encoding any single
	// phase solver reached; Gates is the largest circuit DAG built.
	PeakCNFVars    int
	PeakCNFClauses int
	Gates          int
	// Elapsed is total wall-clock time.
	Elapsed time.Duration
}

// budgetChunk is how many SAT conflicts run between context checks.
const budgetChunk = 2000

// progressInterval is how many SAT conflicts run between Options.Progress
// callbacks.
const progressInterval = 5000

// solveTraced runs one budgeted solve inside a "sat.solve" span, wiring
// the optional progress callback, and returns the per-solve effort delta.
func solveTraced(ctx context.Context, s *sat.Solver, phase string, progress func(string, sat.Stats)) (st sat.Status, delta sat.Stats, timedOut bool) {
	if progress != nil {
		s.SetProgress(progressInterval, func(st sat.Stats) { progress(phase, st) })
		defer s.SetProgress(0, nil)
	}
	_, span := obs.StartSpan(ctx, "sat.solve")
	st, timedOut = solveWithContext(ctx, s)
	delta = s.StatsDelta()
	span.End(
		obs.String("status", st.String()),
		obs.Int64("conflicts", delta.Conflicts),
		obs.Int64("decisions", delta.Decisions),
		obs.Int64("propagations", delta.Propagations),
		obs.Int64("restarts", delta.Restarts),
		obs.Int64("solve_ns", delta.SolveNS),
		obs.Int("cnf_vars", delta.MaxVar),
	)
	return st, delta, timedOut
}

// publishSolve accumulates one solve's effort delta into the metrics
// registry (a nil registry no-ops).
func publishSolve(reg *obs.Registry, d sat.Stats) {
	reg.Counter("sat.solves").Add(1)
	reg.Counter("sat.conflicts").Add(d.Conflicts)
	reg.Counter("sat.decisions").Add(d.Decisions)
	reg.Counter("sat.propagations").Add(d.Propagations)
	reg.Counter("sat.restarts").Add(d.Restarts)
	reg.Counter("sat.learnt").Add(d.Learnt)
	reg.Counter("sat.solve_ns").Add(d.SolveNS)
	reg.Gauge("cnf.vars").SetMax(int64(d.MaxVar))
	reg.Gauge("cnf.clauses").SetMax(int64(d.Clauses))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// cexBits returns the widest significant bit count across a
// counterexample's field and state values — the "counterexample width"
// histogram metric (wide counterexamples mean verification is exercising
// the upper bits the narrow synthesis tier never saw).
func cexBits(cex interp.Snapshot) int {
	w := 0
	for _, v := range cex.Pkt {
		w = maxInt(w, bits.Len64(v))
	}
	for _, v := range cex.State {
		w = maxInt(w, bits.Len64(v))
	}
	return w
}

// Synthesize runs CEGIS to fit prog onto the PISA grid. The grid's
// WordWidth is ignored (widths come from Options); the returned
// configuration records the verification width as its run width, since
// that is the widest width at which it is proven correct.
func Synthesize(ctx context.Context, prog *ast.Program, grid pisa.GridSpec, opts Options) (*Result, error) {
	be := sketch.PISABackend{Grid: grid, Opts: sketch.Options{
		IndicatorAlloc: opts.IndicatorAlloc,
		// Hole elimination enumerates candidates one blocking clause at a
		// time, so symmetric duplicates of a refuted candidate cost a full
		// iteration each: quotient the space whenever the backend can.
		SymmetryBreak: opts.mode() == ModeHoleElimination,
	}}
	return SynthesizeOn(ctx, prog, be, grid.Stages, opts)
}

// SynthesizeOn runs CEGIS to fit prog onto any backend at the given
// program size (pipeline stages for PISA, instruction slots for BPF).
// This is the algorithm of the paper's Figure 3, target-independent: the
// backend supplies the sketch (Equation 2's P) and the synthesized
// config supplies its own symbolic re-encoding for verification
// (Equation 3); everything else — the two-tier widths, the incremental
// synthesis solver, the counterexample feedback — is shared.
func SynthesizeOn(ctx context.Context, prog *ast.Program, be backend.Backend, size int, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{Member: opts.Member, Mode: opts.mode(), Target: be.Target()}

	vars := prog.Variables()
	fields, states := vars.Fields, vars.States

	// Capacity pre-check: a definitive "does not fit" from the backend
	// (more fields than containers/registers) is a clean infeasible
	// result, not an error — a legitimate "rejected" outcome. An invalid
	// machine description or width is an error.
	fits, err := be.Check(size, len(fields), len(states))
	if err != nil {
		return nil, err
	}
	if err := opts.synthWidth().Validate(); err != nil {
		return nil, err
	}
	if !fits {
		res.Elapsed = time.Since(start)
		return res, nil
	}

	b := circuit.New()
	sk, err := be.NewSketch(b, size, len(fields), len(states))
	if err != nil {
		return nil, err
	}
	_, res.HoleBits = sk.HoleCount()
	reg := obs.MetricsFrom(ctx)
	sk.PublishMetrics(reg)

	synthSolver := sat.New()
	// Attach the cancellation hook before any clause is loaded: AddClause
	// runs top-level unit propagation, so loading must respect the context
	// just like in-search propagation does.
	if fn := contextStop(ctx); fn != nil {
		synthSolver.SetStop(fn)
	}
	synthCNF := circuit.NewCNF(b, synthSolver)
	sk.AssertDomains(synthCNF)

	// Hole elimination blocks candidates by clauses over the hole bits, so
	// every hole bit must exist as a solver variable before the first solve.
	// Counterexample mode leaves the cone lazy: bits outside the encoded
	// cone read as zero in Extract and are pinned later by wider tests, but
	// an enumeration that never adds tests would otherwise quotient the
	// hole space and prove bogus UNSATs.
	var holeWords []circuit.Word
	if opts.mode() == ModeHoleElimination {
		holeWords = sk.HoleWords()
		synthCNF.Touch(holeWords...)
	}

	// addTest encodes one concrete test input: instantiate the datapath at
	// the input's width with constant inputs and assert equality with the
	// specification's concrete outputs.
	//
	// Every canonical variable is materialized in the snapshot first. State
	// entries absent from the input would otherwise diverge: the datapath
	// side reads a missing map key as 0, while the interpreter seeds the
	// variable from the program's Init declaration — yielding a constraint
	// pipeline(0) == spec(Init) that contradicts later counterexamples and
	// drives synthesis to a bogus UNSAT for any program with a nonzero
	// initializer. Feasibility is a property of the transfer function over
	// free state inputs (exactly how verify encodes it); Init only sets a
	// register's deployed initial contents.
	addTest := func(x interp.Snapshot, w word.Width) error {
		x = x.Clone()
		for _, f := range fields {
			if _, ok := x.Pkt[f]; !ok {
				x.Pkt[f] = 0
			}
		}
		for _, s := range states {
			if _, ok := x.State[s]; !ok {
				x.State[s] = 0
			}
		}
		in := interp.MustNew(w)
		specOut, err := in.Run(prog, x)
		if err != nil {
			return err
		}
		fw := make([]circuit.Word, len(fields))
		for i, f := range fields {
			fw[i] = b.ConstWord(w.Trunc(x.Pkt[f]), w)
		}
		sw := make([]circuit.Word, len(states))
		for i, s := range states {
			sw[i] = b.ConstWord(w.Trunc(x.State[s]), w)
		}
		outF, outS := sk.Instantiate(w, fw, sw)
		for i, f := range fields {
			synthCNF.Assert(b.EqW(outF[i], b.ConstWord(specOut.Pkt[f], w)))
		}
		for i, s := range states {
			synthCNF.Assert(b.EqW(outS[i], b.ConstWord(specOut.State[s], w)))
		}
		res.Tests++
		reg.Counter("cegis.tests").Add(1)
		return nil
	}

	// Figure 3: initialize X to random inputs (plus all-zeros, which pins
	// down constant-output components cheaply). The synthesis width is
	// clamped to the sketch's minimum sound width: control holes must not
	// truncate (see sketch.MinWidth).
	rng := rand.New(rand.NewSource(opts.Seed))
	sw, vw := opts.synthWidth(), opts.verifyWidth()
	if mw := sk.MinWidth(); sw < mw {
		sw = mw
	}
	if vw < sw {
		vw = sw
	}
	if err := addTest(interp.NewSnapshot(), sw); err != nil {
		return nil, err
	}
	for i := 0; i < opts.initialTests(); i++ {
		if err := addTest(randomSnapshot(rng, sw, fields, states), sw); err != nil {
			return nil, err
		}
	}
	// Hole elimination never grows the test set, so the initial sample is
	// the only spec evidence candidates must fit before verification: seed
	// a second sample at the verification width, pinning upper-bit
	// behaviour the narrow tier cannot see. Counterexample mode gets wide
	// evidence for free from counterexamples, and its re-solved CNF should
	// stay minimal, so the extra instantiations are holes-only.
	if opts.mode() == ModeHoleElimination && vw > sw {
		for i := 0; i < opts.initialTests(); i++ {
			if err := addTest(randomSnapshot(rng, vw, fields, states), vw); err != nil {
				return nil, err
			}
		}
	}

	trace := func(ev Event) {
		if opts.Trace != nil {
			ev.Member = opts.Member
			ev.Mode = opts.mode()
			opts.Trace(ev)
		}
	}

	for iter := 1; iter <= opts.maxIters(); iter++ {
		res.Iters = iter
		reg.Counter("cegis.iterations").Add(1)
		iterAttrs := []obs.Attr{obs.Int("iter", iter)}
		if opts.Member != "" {
			iterAttrs = append(iterAttrs, obs.String("member", opts.Member))
		}
		iterCtx, iterSpan := obs.StartSpan(ctx, "cegis.iter", iterAttrs...)

		// --- Synthesis phase (Equation 2) ---
		phaseStart := time.Now()
		synthCtx, synthSpan := obs.StartSpan(iterCtx, "synth", obs.Int("tests", res.Tests))
		st, sd, timedOut := solveTraced(synthCtx, synthSolver, "synth", opts.Progress)
		publishSolve(reg, sd)
		reg.Gauge("circuit.gates").SetMax(int64(b.NumGates()))
		res.SynthConflicts = synthSolver.Stats().Conflicts
		res.Decisions += sd.Decisions
		res.Propagations += sd.Propagations
		res.PeakCNFVars = maxInt(res.PeakCNFVars, sd.MaxVar)
		res.PeakCNFClauses = maxInt(res.PeakCNFClauses, synthCNF.NumClauses())
		res.Gates = maxInt(res.Gates, b.NumGates())

		outcome := "sat"
		if timedOut {
			outcome = "timeout"
		} else if st == sat.Unsat {
			outcome = "unsat"
		}
		synthSpan.End(obs.String("outcome", outcome), obs.Int64("conflicts", sd.Conflicts))
		trace(Event{Iter: iter, Phase: "synth", Outcome: outcome, Elapsed: time.Since(phaseStart),
			SynthConflicts: sd.Conflicts, Decisions: sd.Decisions, Propagations: sd.Propagations})
		if timedOut {
			iterSpan.End(obs.String("outcome", "timeout"))
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if st == sat.Unsat {
			// No hole assignment matches the spec even on the current
			// finite test set: the sketch is infeasible (Figure 1 right).
			iterSpan.End(obs.String("outcome", "infeasible"))
			res.Elapsed = time.Since(start)
			return res, nil
		}
		cfg := sk.Extract(synthCNF, fields, states, vw)

		// --- Verification phase (Equation 3) ---
		phaseStart = time.Now()
		verifyCtx, verifySpan := obs.StartSpan(iterCtx, "verify")
		vo := verify(verifyCtx, prog, cfg, fields, states, vw, opts.Progress)
		publishSolve(reg, vo.stats)
		reg.Gauge("circuit.gates").SetMax(int64(vo.gates))
		res.VerifyConflicts += vo.stats.Conflicts
		res.Decisions += vo.stats.Decisions
		res.Propagations += vo.stats.Propagations
		res.PeakCNFVars = maxInt(res.PeakCNFVars, vo.stats.MaxVar)
		res.PeakCNFClauses = maxInt(res.PeakCNFClauses, vo.clauses)
		res.Gates = maxInt(res.Gates, vo.gates)

		outcome = "sat"
		if vo.timedOut {
			outcome = "timeout"
		} else if vo.verified {
			outcome = "unsat"
		}
		verifySpan.End(obs.String("outcome", outcome), obs.Int64("conflicts", vo.stats.Conflicts))
		ev := Event{Iter: iter, Phase: "verify", Outcome: outcome, Elapsed: time.Since(phaseStart),
			VerifyConflicts: vo.stats.Conflicts, Decisions: vo.stats.Decisions, Propagations: vo.stats.Propagations}
		if outcome == "sat" {
			ev.Counterexample = &vo.cex
		}
		trace(ev)
		if vo.timedOut {
			iterSpan.End(obs.String("outcome", "timeout"))
			res.TimedOut = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		if vo.verified {
			iterSpan.End(obs.String("outcome", "feasible"))
			res.Feasible = true
			res.TargetConfig = cfg
			if pc, ok := cfg.(*pisa.Config); ok {
				res.Config = pc
			}
			res.Elapsed = time.Since(start)
			return res, nil
		}
		reg.Histogram("cegis.cex_bits").Observe(int64(cexBits(vo.cex)))
		iterSpan.End(obs.String("outcome", "counterexample"))
		if opts.mode() == ModeHoleElimination {
			// Block the refuted candidate's hole assignment and keep the
			// synthesis solver (with all its learned clauses) alive — the
			// upstream driver's hole_elimination_mode. The counterexample
			// itself is discarded; its only role was refutation.
			synthCNF.BlockModel(holeWords...)
			continue
		}
		// Feed the counterexample back at the verification width (the
		// paper's outer loop: "rerun SKETCH using the counterexample as an
		// additional concrete input").
		if err := addTest(vo.cex, vw); err != nil {
			return nil, err
		}
	}
	res.Elapsed = time.Since(start)
	if opts.mode() == ModeHoleElimination {
		// Exhausting the candidate bound proves nothing either way:
		// report an inconclusive (timed-out) result, matching what a
		// wall-clock expiry would have reported, so racing schedulers and
		// campaigns treat it as "this strategy lost", not as an error.
		res.TimedOut = true
		return res, nil
	}
	return res, fmt.Errorf("cegis: no convergence after %d iterations (%d tests)", res.Iters, res.Tests)
}

// verifyOutcome carries one verification query's result and effort.
type verifyOutcome struct {
	cex      interp.Snapshot
	verified bool
	timedOut bool
	// stats is the verification solver's effort (a fresh solver per
	// query, so cumulative == delta); gates and clauses size the encoding.
	stats   sat.Stats
	gates   int
	clauses int
}

// verify searches for an input on which the configured machine and the
// specification disagree at width w. It returns the counterexample if one
// exists.
func verify(ctx context.Context, prog *ast.Program, cfg backend.Config, fields, states []string, w word.Width, progress func(string, sat.Stats)) verifyOutcome {
	b := circuit.New()
	cc := arith.Circ{B: b, W: w}

	fw := make([]circuit.Word, len(fields))
	env := arith.NewEnv[circuit.Word]()
	for i, f := range fields {
		fw[i] = b.InputWord("pkt."+f, w)
		env.Pkt[f] = fw[i]
	}
	sw := make([]circuit.Word, len(states))
	for i, s := range states {
		sw[i] = b.InputWord(s, w)
		env.State[s] = sw[i]
	}

	// Pipeline side: the configured machine with holes lifted to
	// constants, re-encoded by the config itself (for PISA this is the
	// exact Datapath construction this function historically inlined).
	pipeF, pipeS := cfg.Symbolic(b, w, fw, sw)

	// Specification side: the program as a circuit.
	specEnv, err := arith.EvalProgram[circuit.Word](cc, prog, env)
	if err != nil {
		// The program was already interpreted successfully during
		// synthesis; an encoding failure here is a programming error.
		panic(fmt.Sprintf("cegis: spec encoding failed: %v", err))
	}

	equal := circuit.True
	for i, f := range fields {
		specW := specEnv.Pkt[f]
		equal = b.And(equal, b.EqW(pipeF[i], specW))
	}
	for i, s := range states {
		specW := specEnv.State[s]
		equal = b.And(equal, b.EqW(pipeS[i], specW))
	}

	solver := sat.New()
	if fn := contextStop(ctx); fn != nil {
		solver.SetStop(fn)
	}
	cnf := circuit.NewCNF(b, solver)
	cnf.AssertNot(equal)
	st, delta, timedOut := solveTraced(ctx, solver, "verify", progress)
	out := verifyOutcome{stats: delta, gates: b.NumGates(), clauses: cnf.NumClauses()}
	if timedOut {
		out.timedOut = true
		return out
	}
	if st == sat.Unsat {
		out.verified = true
		return out
	}
	out.cex = interp.NewSnapshot()
	for i, f := range fields {
		out.cex.Pkt[f] = cnf.WordValue(fw[i])
	}
	for i, s := range states {
		out.cex.State[s] = cnf.WordValue(sw[i])
	}
	return out
}

// solveWithContext runs the solver under the context's cancellation. The
// primary mechanism is the solver's in-search stop hook (sat.SetStop),
// which polls the context every few hundred conflicts so cancelled
// portfolio members abort mid-solve; the budgeted-chunk loop remains as a
// fallback for solvers whose hook a caller has displaced.
func solveWithContext(ctx context.Context, s *sat.Solver) (sat.Status, bool) {
	if fn := contextStop(ctx); fn != nil {
		// Deliberately left installed after the solve returns: the hook
		// also guards top-level propagation when later clauses are loaded
		// into this solver (incremental CEGIS test constraints).
		s.SetStop(fn)
	}
	for {
		select {
		case <-ctx.Done():
			return sat.Unknown, true
		default:
		}
		st, err := s.SolveWithBudget(budgetChunk)
		switch {
		case err == nil:
			return st, false
		case errors.Is(err, sat.ErrStopped):
			return sat.Unknown, true
		}
		// sat.ErrBudget: chunk exhausted; re-check the context and keep
		// solving.
	}
}

// contextStop adapts a context to a solver stop hook, or nil for contexts
// that can never be cancelled.
func contextStop(ctx context.Context) func() bool {
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// randomSnapshot draws a uniformly random input at width w.
func randomSnapshot(rng *rand.Rand, w word.Width, fields, states []string) interp.Snapshot {
	x := interp.NewSnapshot()
	for _, f := range fields {
		x.Pkt[f] = w.Trunc(rng.Uint64())
	}
	for _, s := range states {
		x.State[s] = w.Trunc(rng.Uint64())
	}
	return x
}

// CanonicalVars returns the canonical (sorted) field and state orders used
// for allocation — the paper's §3.1 canonicalization (Figure 4). Exposed so
// CLIs and reports can display the allocation.
func CanonicalVars(prog *ast.Program) (fields, states []string) {
	v := prog.Variables()
	fields = append([]string{}, v.Fields...)
	states = append([]string{}, v.States...)
	sort.Strings(fields)
	sort.Strings(states)
	return fields, states
}
