package cegis

import (
	"context"
	"testing"

	"repro/internal/alu"
	"repro/internal/parser"
	"repro/internal/sketch"
)

func explain(t *testing.T, src string, stages, width int, kind alu.Kind, opts Options) *ExplainResult {
	t.Helper()
	prog := parser.MustParse("test", src)
	g := grid(stages, width, kind, 4)
	be := sketch.PISABackend{Grid: g, Opts: sketch.Options{IndicatorAlloc: opts.IndicatorAlloc}}
	res, err := Explain(context.Background(), prog, be, g.Stages, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExplainBlamesInfeasibleOutput(t *testing.T) {
	// Field*field multiplication is beyond the ALUs; pkt.c passes through
	// trivially. The minimal core must blame pkt.a's computation and not
	// pkt.c's.
	res := explain(t, "pkt.a = pkt.a * pkt.b; pkt.c = pkt.c;", 1, 3, alu.Counter, Options{Seed: 1})
	if res.Feasible || res.TimedOut || res.CapacityExceeded {
		t.Fatalf("expected a clean infeasibility explanation, got %+v", res)
	}
	if !res.Minimal {
		t.Fatal("minimization should complete without a deadline")
	}
	if len(res.Core) == 0 {
		t.Fatal("empty blame set for an infeasible program")
	}
	blamed := map[string]bool{}
	for _, g := range res.Core {
		blamed[g] = true
	}
	if !blamed["out:pkt.a"] {
		t.Fatalf("core should blame out:pkt.a, got %v", res.Core)
	}
	if blamed["out:pkt.c"] {
		t.Fatalf("trivial passthrough output blamed: %v", res.Core)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("explanation should carry an effort timeline")
	}
	// Every core member must be a known group.
	known := map[string]bool{}
	for _, g := range res.Groups {
		known[g] = true
	}
	for _, g := range res.Core {
		if !known[g] {
			t.Fatalf("core group %q not in group inventory %v", g, res.Groups)
		}
	}
}

func TestExplainCapacityExceeded(t *testing.T) {
	res := explain(t, "pkt.tmp = pkt.a; pkt.a = pkt.b; pkt.b = pkt.tmp;", 2, 2, alu.Counter, Options{Seed: 1})
	if !res.CapacityExceeded {
		t.Fatal("3 fields in 2 containers should report capacity exceeded")
	}
	if len(res.Core) != 0 {
		t.Fatalf("capacity rejection should have no core, got %v", res.Core)
	}
}

func TestExplainFeasibleProgramFindsNoCore(t *testing.T) {
	res := explain(t, "pkt.a = pkt.a + 1;", 1, 1, alu.Counter, Options{Seed: 1})
	if !res.Feasible {
		t.Fatalf("feasible program should be detected by the gated re-run, got %+v", res)
	}
	if len(res.Core) != 0 {
		t.Fatalf("feasible run must not produce a core, got %v", res.Core)
	}
}

func TestExplainCoreIsMinimalByReSolve(t *testing.T) {
	// Two states with a cross-stage dependency cannot fit one stage: the
	// classic depth-floor infeasibility. Dropping the whole blame set must
	// make the remaining groups satisfiable — verified here structurally:
	// minimization already re-solved every single-drop subset, so just
	// assert the advertised minimality flag and that the core is a strict
	// subset of the groups (the trivial "blame everything" answer would
	// indicate minimization never ran).
	res := explain(t, "int s1 = 0; int s2 = 0; s2 = s1; s1 = s1 + pkt.x;", 1, 2, alu.PredRaw, Options{Seed: 1})
	if res.Feasible || res.TimedOut || res.CapacityExceeded {
		t.Fatalf("expected infeasibility, got %+v", res)
	}
	if !res.Minimal || len(res.Core) == 0 {
		t.Fatalf("expected a minimal nonempty core, got %+v", res)
	}
	if len(res.Core) >= len(res.Groups) {
		t.Fatalf("core %v should be a strict subset of groups %v", res.Core, res.Groups)
	}
}

func TestBlamedStatements(t *testing.T) {
	prog := parser.MustParse("test", "int seen = 0;\nif (seen == 0) { pkt.new_flow = 1; seen = 1; } else { pkt.new_flow = 0; }")
	stmts := BlamedStatements(prog, []string{"out:pkt.new_flow", "domain:state-alloc"})
	if len(stmts) != 2 {
		t.Fatalf("BlamedStatements = %v, want both branch assignments to pkt.new_flow", stmts)
	}
	for _, s := range stmts {
		if s != "pkt.new_flow = 1;" && s != "pkt.new_flow = 0;" {
			t.Fatalf("unexpected blamed statement %q", s)
		}
	}
	if got := BlamedStatements(prog, []string{"domain:mux-range"}); got != nil {
		t.Fatalf("domain-only blame should map to no statements, got %v", got)
	}
	if got := BlamedStatements(prog, []string{"out:state.seen"}); len(got) != 1 || got[0] != "seen = 1;" {
		t.Fatalf("state blame = %v, want [seen = 1;]", got)
	}
}
