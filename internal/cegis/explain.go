// Infeasibility forensics: when CEGIS proves a program unmappable, re-run
// the synthesis encoding with named constraint groups and extract a
// minimal UNSAT core over them, so the caller can report *which* outputs
// and *which* domain constraints are jointly unsatisfiable instead of an
// opaque "infeasible".
//
// The pass is strictly post-hoc: the normal compile path never enables
// groups, so its clause stream and solver counters are untouched. Explain
// re-runs a gated mini-CEGIS at the failed size with the same seed, which
// costs roughly one extra compile attempt — acceptable because it only
// runs after a compile has already failed.

package cegis

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/interp"
	"repro/internal/sat"
	"repro/internal/word"
)

// ExplainStep is one entry of an explanation's effort timeline: a CEGIS
// phase or a core-minimization probe, with its solver effort.
type ExplainStep struct {
	Iter      int           `json:"iter"`
	Phase     string        `json:"phase"` // "synth", "verify", "minimize"
	Outcome   string        `json:"outcome"`
	Conflicts int64         `json:"conflicts"`
	Elapsed   time.Duration `json:"elapsed_ns"`
}

// ExplainResult is the raw outcome of the forensics pass: the blamed
// constraint groups and how much work it took to find them. Mapping the
// groups onto resource dimensions and source statements is the caller's
// job (internal/core), since it owns the notion of targets and budgets.
type ExplainResult struct {
	// Groups is every named constraint group the gated encoding emitted.
	Groups []string `json:"groups"`
	// Core is the blamed subset: solving under only these groups is
	// already UNSAT, and when Minimal is true, dropping any single one
	// flips the verdict to SAT.
	Core []string `json:"core"`
	// Minimal reports whether the deletion-based minimization pass ran to
	// completion (false when the context expired mid-minimization).
	Minimal bool `json:"minimal"`
	// Iters and Tests describe the gated mini-CEGIS run that produced the
	// UNSAT: iterations executed and concrete tests accumulated.
	Iters int `json:"iters"`
	Tests int `json:"tests"`
	// Timeline is the per-iteration and per-minimization-probe effort log.
	Timeline []ExplainStep `json:"timeline"`
	// CapacityExceeded is set when the backend's capacity pre-check
	// rejects the program outright (more variables than the machine has
	// containers); no solving happens and Core is empty.
	CapacityExceeded bool `json:"capacity_exceeded,omitempty"`
	// Feasible is set when the gated re-run unexpectedly synthesized a
	// configuration (possible when the original failure was
	// iteration-bounded rather than UNSAT); no core exists then.
	Feasible bool `json:"feasible,omitempty"`
	// TimedOut is set when the context expired before a core was found.
	TimedOut bool `json:"timed_out,omitempty"`
	// Elapsed is the total wall-clock cost of the forensics pass.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Explain re-runs synthesis for prog on be at the given size with
// constraint-group tracking enabled and returns a minimal set of named
// groups that is jointly unsatisfiable. It should be called only after a
// normal (ungated) run concluded infeasible; opts should carry the same
// seed and widths so the gated run retraces the same test inputs.
func Explain(ctx context.Context, prog *ast.Program, be backend.Backend, size int, opts Options) (*ExplainResult, error) {
	res, _, _, err := explainOn(ctx, prog, be, size, opts)
	return res, err
}

// AuditCore re-runs the forensics pass and then audits the blamed core
// in place, against the same gated encoding, by direct solver re-solves:
// the core alone must still be UNSAT under its group assumptions, and
// dropping any single member must flip the verdict to SAT. The audit
// exercises the whole assumption pipeline — selector allocation,
// final-conflict analysis, deletion minimization — end to end, so a
// defect means the forensics machinery is wrong, not the program.
// Defects come back as human-readable strings; the list is empty when
// the audit passes or does not apply (capacity rejection, timeout, a
// feasible rerun, or an incomplete minimization).
func AuditCore(ctx context.Context, prog *ast.Program, be backend.Backend, size int, opts Options) (*ExplainResult, []string, error) {
	res, solver, cnf, err := explainOn(ctx, prog, be, size, opts)
	if err != nil || res.CapacityExceeded || res.TimedOut || res.Feasible || !res.Minimal {
		return res, nil, err
	}
	if len(res.Core) == 0 {
		return res, []string{"minimal core is empty: the hard (ungrouped) clauses alone are unsatisfiable"}, nil
	}
	var defects []string
	st, timedOut := solveAssume(ctx, solver, cnf.GroupAssumptions(res.Core))
	if timedOut {
		return res, defects, nil
	}
	if st != sat.Unsat {
		defects = append(defects, fmt.Sprintf("blamed core %v re-solves %v under its own assumptions, want UNSAT", res.Core, st))
	}
	for i, g := range res.Core {
		rest := make([]string, 0, len(res.Core)-1)
		rest = append(rest, res.Core[:i]...)
		rest = append(rest, res.Core[i+1:]...)
		st, timedOut := solveAssume(ctx, solver, cnf.GroupAssumptions(rest))
		if timedOut {
			return res, defects, nil
		}
		if st == sat.Unsat {
			defects = append(defects, fmt.Sprintf("core not minimal: dropping %q still leaves %v unsatisfiable", g, rest))
		}
	}
	return res, defects, nil
}

// explainOn is Explain's body; it additionally hands back the live solver
// and gated CNF so AuditCore can run follow-up assumption solves against
// the exact clause set the core was extracted from. Solver and cnf are
// nil when the pass errored or was rejected before the encoding existed.
func explainOn(ctx context.Context, prog *ast.Program, be backend.Backend, size int, opts Options) (*ExplainResult, *sat.Solver, *circuit.CNF, error) {
	start := time.Now()
	res := &ExplainResult{}
	defer func() { res.Elapsed = time.Since(start) }()

	vars := prog.Variables()
	fields, states := vars.Fields, vars.States
	fits, err := be.Check(size, len(fields), len(states))
	if err != nil {
		return nil, nil, nil, err
	}
	if !fits {
		res.CapacityExceeded = true
		return res, nil, nil, nil
	}

	b := circuit.New()
	sk, err := be.NewSketch(b, size, len(fields), len(states))
	if err != nil {
		return nil, nil, nil, err
	}
	solver := sat.New()
	if fn := contextStop(ctx); fn != nil {
		solver.SetStop(fn)
	}
	cnf := circuit.NewCNF(b, solver)
	cnf.EnableGroups()
	sk.AssertDomains(cnf)

	// addTest mirrors SynthesizeOn's closure, with one difference: each
	// output's correctness assertions are tagged with that output's group,
	// so the core can blame individual packet-field and state-variable
	// computations — which map back to the statements assigning them.
	addTest := func(x interp.Snapshot, w word.Width) error {
		x = x.Clone()
		for _, f := range fields {
			if _, ok := x.Pkt[f]; !ok {
				x.Pkt[f] = 0
			}
		}
		for _, s := range states {
			if _, ok := x.State[s]; !ok {
				x.State[s] = 0
			}
		}
		in := interp.MustNew(w)
		specOut, err := in.Run(prog, x)
		if err != nil {
			return err
		}
		fw := make([]circuit.Word, len(fields))
		for i, f := range fields {
			fw[i] = b.ConstWord(w.Trunc(x.Pkt[f]), w)
		}
		sw := make([]circuit.Word, len(states))
		for i, s := range states {
			sw[i] = b.ConstWord(w.Trunc(x.State[s]), w)
		}
		outF, outS := sk.Instantiate(w, fw, sw)
		for i, f := range fields {
			cnf.SetGroup(circuit.GroupPktField(f))
			cnf.Assert(b.EqW(outF[i], b.ConstWord(specOut.Pkt[f], w)))
		}
		for i, s := range states {
			cnf.SetGroup(circuit.GroupStateVar(s))
			cnf.Assert(b.EqW(outS[i], b.ConstWord(specOut.State[s], w)))
		}
		cnf.SetGroup("")
		res.Tests++
		return nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	sw, vw := opts.synthWidth(), opts.verifyWidth()
	if mw := sk.MinWidth(); sw < mw {
		sw = mw
	}
	if vw < sw {
		vw = sw
	}
	if err := addTest(interp.NewSnapshot(), sw); err != nil {
		return nil, nil, nil, err
	}
	for i := 0; i < opts.initialTests(); i++ {
		if err := addTest(randomSnapshot(rng, sw, fields, states), sw); err != nil {
			return nil, nil, nil, err
		}
	}

	step := func(iter int, phase, outcome string, conflicts int64, since time.Time) {
		res.Timeline = append(res.Timeline, ExplainStep{
			Iter: iter, Phase: phase, Outcome: outcome,
			Conflicts: conflicts, Elapsed: time.Since(since),
		})
	}

	// Gated mini-CEGIS: solve under the assumption that every group holds.
	// Groups only ever grow (per-output groups are reused across tests),
	// so the assumption set is recomputed per iteration.
	for iter := 1; iter <= opts.maxIters(); iter++ {
		res.Iters = iter
		assume := cnf.GroupAssumptions(cnf.Groups())
		phaseStart := time.Now()
		st, timedOut := solveAssume(ctx, solver, assume)
		delta := solver.StatsDelta()
		switch {
		case timedOut:
			step(iter, "synth", "timeout", delta.Conflicts, phaseStart)
			res.TimedOut = true
			return res, solver, cnf, nil
		case st == sat.Unsat:
			step(iter, "synth", "unsat", delta.Conflicts, phaseStart)
			return res, solver, cnf, minimizeCore(ctx, res, solver, cnf, step)
		}
		step(iter, "synth", "sat", delta.Conflicts, phaseStart)

		cfg := sk.Extract(cnf, fields, states, vw)
		phaseStart = time.Now()
		vo := verify(ctx, prog, cfg, fields, states, vw, opts.Progress)
		switch {
		case vo.timedOut:
			step(iter, "verify", "timeout", vo.stats.Conflicts, phaseStart)
			res.TimedOut = true
			return res, solver, cnf, nil
		case vo.verified:
			step(iter, "verify", "unsat", vo.stats.Conflicts, phaseStart)
			res.Feasible = true
			return res, solver, cnf, nil
		}
		step(iter, "verify", "sat", vo.stats.Conflicts, phaseStart)
		if err := addTest(vo.cex, vw); err != nil {
			return nil, nil, nil, err
		}
	}
	// Iteration bound reached without an UNSAT: nothing to blame.
	res.Feasible = false
	res.TimedOut = true
	return res, solver, cnf, nil
}

// minimizeCore shrinks the solver's UNSAT core to a minimal group set by
// deletion: drop one group at a time and re-solve under the remainder;
// still-UNSAT means the dropped group was not needed. The discipline is
// the difftest shrinker's — destructive, deterministic, each probe either
// commits or reverts — applied to assumption sets instead of inputs. On
// completion every remaining group is necessary: dropping any one of them
// flips the verdict to SAT.
func minimizeCore(ctx context.Context, res *ExplainResult, solver *sat.Solver, cnf *circuit.CNF, step func(int, string, string, int64, time.Time)) error {
	res.Groups = cnf.Groups()
	core := coreNames(solver.UnsatCore(), cnf)
	probe := 0
	for i := 0; i < len(core); {
		cand := make([]string, 0, len(core)-1)
		cand = append(cand, core[:i]...)
		cand = append(cand, core[i+1:]...)
		probe++
		phaseStart := time.Now()
		st, timedOut := solveAssume(ctx, solver, cnf.GroupAssumptions(cand))
		delta := solver.StatsDelta()
		if timedOut {
			step(probe, "minimize", "timeout", delta.Conflicts, phaseStart)
			res.Core = core
			res.TimedOut = true
			return nil
		}
		if st == sat.Unsat {
			step(probe, "minimize", "unsat", delta.Conflicts, phaseStart)
			// The dropped group was redundant. The fresh core is a subset
			// of cand and may prune several groups at once.
			next := coreNames(solver.UnsatCore(), cnf)
			core = intersectOrdered(cand, next)
			if i > len(core) {
				i = len(core)
			}
			continue
		}
		step(probe, "minimize", "sat", delta.Conflicts, phaseStart)
		i++
	}
	res.Core = core
	res.Minimal = true
	return nil
}

// coreNames decodes an assumption core into group names, preserving order
// and dropping any literal that is not a group selector (there are none
// in practice: every assumption passed is a selector).
func coreNames(core []sat.Lit, cnf *circuit.CNF) []string {
	out := make([]string, 0, len(core))
	for _, l := range core {
		if name, ok := cnf.GroupName(l); ok {
			out = append(out, name)
		}
	}
	return out
}

// intersectOrdered returns the members of a that also appear in b, in a's
// order.
func intersectOrdered(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	out := a[:0]
	for _, s := range a {
		if in[s] {
			out = append(out, s)
		}
	}
	return out
}

// solveAssume is solveWithContext with assumption literals: chunked
// conflict budgets between context polls, aborting promptly via the
// solver's stop hook.
func solveAssume(ctx context.Context, s *sat.Solver, assumptions []sat.Lit) (sat.Status, bool) {
	if fn := contextStop(ctx); fn != nil {
		s.SetStop(fn)
	}
	for {
		select {
		case <-ctx.Done():
			return sat.Unknown, true
		default:
		}
		st, err := s.SolveWithBudget(budgetChunk, assumptions...)
		switch {
		case err == nil:
			return st, false
		case errors.Is(err, sat.ErrStopped):
			return sat.Unknown, true
		}
	}
}

// BlamedStatements maps blamed output groups (GroupPktField /
// GroupStateVar names) onto the source statements that assign those
// outputs, rendered back to Domino source. Assignments nested in if/else
// arms count: the branch writes the output on some inputs. Non-output
// (domain) groups contribute nothing. The result preserves program order
// without duplicates.
func BlamedStatements(prog *ast.Program, groups []string) []string {
	want := map[string]bool{} // "pkt.x" / state name → blamed
	for _, g := range groups {
		kind, output, ok := circuit.ParseOutputGroup(g)
		if !ok {
			continue
		}
		lv := ast.LValue{Name: output, IsField: kind == "pkt"}
		want[lv.String()] = true
	}
	if len(want) == 0 {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	var walk func(stmts []ast.Stmt)
	walk = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.Assign:
				if !want[s.LHS.String()] {
					continue
				}
				line := s.LHS.String() + " = " + s.RHS.String() + ";"
				if !seen[line] {
					seen[line] = true
					out = append(out, line)
				}
			case *ast.If:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(prog.Stmts)
	return out
}
