// Package arith abstracts w-bit two's-complement arithmetic over a value
// type, so that one definition of a computation can be executed two ways:
// concretely on uint64 words (for the PISA simulator and the CEGIS
// specification oracle) and symbolically on bit-vector circuits (for the
// sketch that CEGIS hands to the SAT solver).
//
// This single-source-of-truth pattern is what keeps Chipmunk sound: the ALU
// semantics, the datapath muxes, and the specification encoding are each
// written once against Arith, so the circuit the synthesizer reasons about
// provably matches what the simulator later executes (property tests in
// each client package cross-check the two instantiations anyway).
package arith

import (
	"repro/internal/ast"
	"repro/internal/circuit"
	"repro/internal/word"
)

// Arith is the operation set of the Domino language and the PISA ALUs at a
// fixed bit width. Comparison and logical operations return the canonical
// truth words 0 and 1; Mux treats any non-zero selector as true.
type Arith[V any] interface {
	// ConstInt embeds a signed constant, wrapping to the width.
	ConstInt(v int64) V

	Add(a, b V) V
	Sub(a, b V) V
	Mul(a, b V) V
	BitAnd(a, b V) V
	BitOr(a, b V) V
	BitXor(a, b V) V
	BitNot(a V) V
	Neg(a V) V
	Shl(a, b V) V
	Shr(a, b V) V

	Eq(a, b V) V
	Ne(a, b V) V
	Lt(a, b V) V // signed
	Le(a, b V) V
	Gt(a, b V) V
	Ge(a, b V) V

	LAnd(a, b V) V
	LOr(a, b V) V
	LNot(a V) V

	// Mux returns t if c is non-zero, else f.
	Mux(c, t, f V) V
}

// Binary dispatches an AST binary operator over an Arith.
func Binary[V any](a Arith[V], op ast.Op, x, y V) V {
	switch op {
	case ast.OpAdd:
		return a.Add(x, y)
	case ast.OpSub:
		return a.Sub(x, y)
	case ast.OpMul:
		return a.Mul(x, y)
	case ast.OpBitAnd:
		return a.BitAnd(x, y)
	case ast.OpBitOr:
		return a.BitOr(x, y)
	case ast.OpBitXor:
		return a.BitXor(x, y)
	case ast.OpShl:
		return a.Shl(x, y)
	case ast.OpShr:
		return a.Shr(x, y)
	case ast.OpEq:
		return a.Eq(x, y)
	case ast.OpNe:
		return a.Ne(x, y)
	case ast.OpLt:
		return a.Lt(x, y)
	case ast.OpLe:
		return a.Le(x, y)
	case ast.OpGt:
		return a.Gt(x, y)
	case ast.OpGe:
		return a.Ge(x, y)
	case ast.OpLAnd:
		return a.LAnd(x, y)
	case ast.OpLOr:
		return a.LOr(x, y)
	default:
		panic("arith: not a binary operator: " + op.String())
	}
}

// Unary dispatches an AST unary operator over an Arith.
func Unary[V any](a Arith[V], op ast.Op, x V) V {
	switch op {
	case ast.OpNeg:
		return a.Neg(x)
	case ast.OpNot:
		return a.LNot(x)
	case ast.OpBitNot:
		return a.BitNot(x)
	default:
		panic("arith: not a unary operator: " + op.String())
	}
}

// --- Concrete instantiation --------------------------------------------------

// Conc executes Arith concretely on w-bit words carried in uint64.
type Conc struct {
	W word.Width
}

var _ Arith[uint64] = Conc{}

// ConstInt implements Arith.
func (c Conc) ConstInt(v int64) uint64 { return c.W.FromInt(v) }

// Add implements Arith.
func (c Conc) Add(a, b uint64) uint64 { return c.W.Add(a, b) }

// Sub implements Arith.
func (c Conc) Sub(a, b uint64) uint64 { return c.W.Sub(a, b) }

// Mul implements Arith.
func (c Conc) Mul(a, b uint64) uint64 { return c.W.Mul(a, b) }

// BitAnd implements Arith.
func (c Conc) BitAnd(a, b uint64) uint64 { return c.W.And(a, b) }

// BitOr implements Arith.
func (c Conc) BitOr(a, b uint64) uint64 { return c.W.Or(a, b) }

// BitXor implements Arith.
func (c Conc) BitXor(a, b uint64) uint64 { return c.W.Xor(a, b) }

// BitNot implements Arith.
func (c Conc) BitNot(a uint64) uint64 { return c.W.Not(a) }

// Neg implements Arith.
func (c Conc) Neg(a uint64) uint64 { return c.W.Neg(a) }

// Shl implements Arith.
func (c Conc) Shl(a, b uint64) uint64 { return c.W.Shl(a, b) }

// Shr implements Arith.
func (c Conc) Shr(a, b uint64) uint64 { return c.W.Shr(a, b) }

// Eq implements Arith.
func (c Conc) Eq(a, b uint64) uint64 { return c.W.Eq(a, b) }

// Ne implements Arith.
func (c Conc) Ne(a, b uint64) uint64 { return c.W.Ne(a, b) }

// Lt implements Arith.
func (c Conc) Lt(a, b uint64) uint64 { return c.W.Lt(a, b) }

// Le implements Arith.
func (c Conc) Le(a, b uint64) uint64 { return c.W.Le(a, b) }

// Gt implements Arith.
func (c Conc) Gt(a, b uint64) uint64 { return c.W.Gt(a, b) }

// Ge implements Arith.
func (c Conc) Ge(a, b uint64) uint64 { return c.W.Ge(a, b) }

// LAnd implements Arith.
func (c Conc) LAnd(a, b uint64) uint64 { return word.LAnd(a, b) }

// LOr implements Arith.
func (c Conc) LOr(a, b uint64) uint64 { return word.LOr(a, b) }

// LNot implements Arith.
func (c Conc) LNot(a uint64) uint64 { return word.LNot(a) }

// Mux implements Arith.
func (c Conc) Mux(cond, t, f uint64) uint64 { return word.Mux(cond, t, f) }

// --- Symbolic instantiation ---------------------------------------------------

// Circ builds Arith operations as bit-vector circuits.
type Circ struct {
	B *circuit.Builder
	W word.Width
}

var _ Arith[circuit.Word] = Circ{}

// ConstInt implements Arith.
func (c Circ) ConstInt(v int64) circuit.Word { return c.B.ConstWord(c.W.FromInt(v), c.W) }

// Add implements Arith.
func (c Circ) Add(a, b circuit.Word) circuit.Word { return c.B.AddW(a, b) }

// Sub implements Arith.
func (c Circ) Sub(a, b circuit.Word) circuit.Word { return c.B.SubW(a, b) }

// Mul implements Arith.
func (c Circ) Mul(a, b circuit.Word) circuit.Word { return c.B.MulW(a, b) }

// BitAnd implements Arith.
func (c Circ) BitAnd(a, b circuit.Word) circuit.Word { return c.B.AndW(a, b) }

// BitOr implements Arith.
func (c Circ) BitOr(a, b circuit.Word) circuit.Word { return c.B.OrW(a, b) }

// BitXor implements Arith.
func (c Circ) BitXor(a, b circuit.Word) circuit.Word { return c.B.XorW(a, b) }

// BitNot implements Arith.
func (c Circ) BitNot(a circuit.Word) circuit.Word { return c.B.NotW(a) }

// Neg implements Arith.
func (c Circ) Neg(a circuit.Word) circuit.Word { return c.B.NegW(a) }

// Shl implements Arith.
func (c Circ) Shl(a, b circuit.Word) circuit.Word { return c.B.ShlW(a, b) }

// Shr implements Arith.
func (c Circ) Shr(a, b circuit.Word) circuit.Word { return c.B.ShrW(a, b) }

func (c Circ) fromBit(bit circuit.Bit) circuit.Word { return c.B.BoolToWord(bit, c.W) }

// Eq implements Arith.
func (c Circ) Eq(a, b circuit.Word) circuit.Word { return c.fromBit(c.B.EqW(a, b)) }

// Ne implements Arith.
func (c Circ) Ne(a, b circuit.Word) circuit.Word { return c.fromBit(c.B.Not(c.B.EqW(a, b))) }

// Lt implements Arith.
func (c Circ) Lt(a, b circuit.Word) circuit.Word { return c.fromBit(c.B.SltW(a, b)) }

// Le implements Arith.
func (c Circ) Le(a, b circuit.Word) circuit.Word { return c.fromBit(c.B.SleW(a, b)) }

// Gt implements Arith.
func (c Circ) Gt(a, b circuit.Word) circuit.Word { return c.fromBit(c.B.SltW(b, a)) }

// Ge implements Arith.
func (c Circ) Ge(a, b circuit.Word) circuit.Word { return c.fromBit(c.B.SleW(b, a)) }

// LAnd implements Arith.
func (c Circ) LAnd(a, b circuit.Word) circuit.Word {
	return c.fromBit(c.B.And(c.B.NonZero(a), c.B.NonZero(b)))
}

// LOr implements Arith.
func (c Circ) LOr(a, b circuit.Word) circuit.Word {
	return c.fromBit(c.B.Or(c.B.NonZero(a), c.B.NonZero(b)))
}

// LNot implements Arith.
func (c Circ) LNot(a circuit.Word) circuit.Word { return c.fromBit(c.B.Not(c.B.NonZero(a))) }

// Mux implements Arith.
func (c Circ) Mux(cond, t, f circuit.Word) circuit.Word {
	return c.B.MuxW(c.B.NonZero(cond), t, f)
}
