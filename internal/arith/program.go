package arith

import (
	"fmt"

	"repro/internal/ast"
)

// Env is a variable environment for generic program evaluation: packet
// fields and state variables mapped to values of the instantiation type.
type Env[V any] struct {
	Pkt   map[string]V
	State map[string]V
}

// NewEnv returns an empty environment.
func NewEnv[V any]() Env[V] {
	return Env[V]{Pkt: map[string]V{}, State: map[string]V{}}
}

// Clone copies the environment maps (values are shared, which is safe for
// both uint64 and circuit.Word — words are never mutated in place).
func (e Env[V]) Clone() Env[V] {
	c := Env[V]{Pkt: make(map[string]V, len(e.Pkt)), State: make(map[string]V, len(e.State))}
	for k, v := range e.Pkt {
		c.Pkt[k] = v
	}
	for k, v := range e.State {
		c.State[k] = v
	}
	return c
}

// EvalExpr evaluates a Domino expression over any Arith instantiation.
// Reading a variable absent from the environment yields the constant 0,
// matching the reference interpreter.
func EvalExpr[V any](a Arith[V], e ast.Expr, env Env[V]) (V, error) {
	switch e := e.(type) {
	case *ast.Num:
		return a.ConstInt(e.Value), nil
	case *ast.Field:
		if v, ok := env.Pkt[e.Name]; ok {
			return v, nil
		}
		return a.ConstInt(0), nil
	case *ast.State:
		if v, ok := env.State[e.Name]; ok {
			return v, nil
		}
		return a.ConstInt(0), nil
	case *ast.Unary:
		x, err := EvalExpr(a, e.X, env)
		if err != nil {
			var zero V
			return zero, err
		}
		return Unary(a, e.Op, x), nil
	case *ast.Binary:
		x, err := EvalExpr(a, e.X, env)
		if err != nil {
			var zero V
			return zero, err
		}
		y, err := EvalExpr(a, e.Y, env)
		if err != nil {
			var zero V
			return zero, err
		}
		return Binary(a, e.Op, x, y), nil
	case *ast.Ternary:
		c, err := EvalExpr(a, e.Cond, env)
		if err != nil {
			var zero V
			return zero, err
		}
		t, err := EvalExpr(a, e.T, env)
		if err != nil {
			var zero V
			return zero, err
		}
		f, err := EvalExpr(a, e.F, env)
		if err != nil {
			var zero V
			return zero, err
		}
		return a.Mux(c, t, f), nil
	default:
		var zero V
		return zero, fmt.Errorf("arith: unknown expression type %T", e)
	}
}

// EvalProgram evaluates a whole packet transaction over any Arith
// instantiation, returning the post-transaction environment. Control flow
// is handled by evaluating both branches of every if and merging the
// results with Mux — the standard predication transform for a pure,
// loop-free language. State variables declared in Init but absent from the
// input environment are seeded with their initial constants.
//
// Instantiated with Conc this is a second interpreter (differential-tested
// against internal/interp); instantiated with Circ it is the specification
// circuit S(x) used by the CEGIS verification phase.
func EvalProgram[V any](a Arith[V], p *ast.Program, input Env[V]) (Env[V], error) {
	env := input.Clone()
	for name, init := range p.Init {
		if _, ok := env.State[name]; !ok {
			env.State[name] = a.ConstInt(init)
		}
	}
	if err := evalStmts(a, p.Stmts, &env); err != nil {
		return Env[V]{}, fmt.Errorf("arith: %s: %w", p.Name, err)
	}
	return env, nil
}

func evalStmts[V any](a Arith[V], stmts []ast.Stmt, env *Env[V]) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			v, err := EvalExpr(a, s.RHS, *env)
			if err != nil {
				return err
			}
			if s.LHS.IsField {
				env.Pkt[s.LHS.Name] = v
			} else {
				env.State[s.LHS.Name] = v
			}
		case *ast.If:
			cond, err := EvalExpr(a, s.Cond, *env)
			if err != nil {
				return err
			}
			thenEnv := env.Clone()
			if err := evalStmts(a, s.Then, &thenEnv); err != nil {
				return err
			}
			elseEnv := env.Clone()
			if err := evalStmts(a, s.Else, &elseEnv); err != nil {
				return err
			}
			mergeEnv(a, cond, env, thenEnv, elseEnv)
		default:
			return fmt.Errorf("unknown statement type %T", s)
		}
	}
	return nil
}

// mergeEnv writes Mux(cond, thenV, elseV) for every variable either branch
// touched. Variables written in only one branch read their pre-branch value
// (or 0 if never set) on the other path, matching sequential semantics.
func mergeEnv[V any](a Arith[V], cond V, base *Env[V], thenEnv, elseEnv Env[V]) {
	zero := a.ConstInt(0)
	merge := func(dst, t, f map[string]V) {
		for k := range t {
			tv, fv := t[k], f[k]
			if _, ok := f[k]; !ok {
				fv = zero
			}
			dst[k] = a.Mux(cond, tv, fv)
		}
		for k := range f {
			if _, ok := t[k]; ok {
				continue
			}
			dst[k] = a.Mux(cond, zero, f[k])
		}
	}
	merge(base.Pkt, thenEnv.Pkt, elseEnv.Pkt)
	merge(base.State, thenEnv.State, elseEnv.State)
}
