package arith

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/circuit"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/word"
)

// allOps covers every binary and unary operator.
var binOps = []ast.Op{
	ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpBitAnd, ast.OpBitOr, ast.OpBitXor,
	ast.OpShl, ast.OpShr, ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt,
	ast.OpGe, ast.OpLAnd, ast.OpLOr,
}

var unOps = []ast.Op{ast.OpNeg, ast.OpNot, ast.OpBitNot}

// TestConcMatchesWord exhaustively checks the concrete instantiation against
// the word package at width 4 for every operator.
func TestConcMatchesWord(t *testing.T) {
	const w = word.Width(4)
	c := Conc{W: w}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			for _, op := range binOps {
				got := Binary[uint64](c, op, a, b)
				want := refBinary(w, op, a, b)
				if got != want {
					t.Fatalf("%v(%d,%d) = %d, want %d", op, a, b, got, want)
				}
			}
		}
		for _, op := range unOps {
			got := Unary[uint64](c, op, a)
			want := refUnary(w, op, a)
			if got != want {
				t.Fatalf("%v(%d) = %d, want %d", op, a, got, want)
			}
		}
	}
}

func refBinary(w word.Width, op ast.Op, a, b uint64) uint64 {
	switch op {
	case ast.OpAdd:
		return w.Add(a, b)
	case ast.OpSub:
		return w.Sub(a, b)
	case ast.OpMul:
		return w.Mul(a, b)
	case ast.OpBitAnd:
		return w.And(a, b)
	case ast.OpBitOr:
		return w.Or(a, b)
	case ast.OpBitXor:
		return w.Xor(a, b)
	case ast.OpShl:
		return w.Shl(a, b)
	case ast.OpShr:
		return w.Shr(a, b)
	case ast.OpEq:
		return w.Eq(a, b)
	case ast.OpNe:
		return w.Ne(a, b)
	case ast.OpLt:
		return w.Lt(a, b)
	case ast.OpLe:
		return w.Le(a, b)
	case ast.OpGt:
		return w.Gt(a, b)
	case ast.OpGe:
		return w.Ge(a, b)
	case ast.OpLAnd:
		return word.LAnd(a, b)
	case ast.OpLOr:
		return word.LOr(a, b)
	}
	panic("unhandled")
}

func refUnary(w word.Width, op ast.Op, a uint64) uint64 {
	switch op {
	case ast.OpNeg:
		return w.Neg(a)
	case ast.OpNot:
		return word.LNot(a)
	case ast.OpBitNot:
		return w.Not(a)
	}
	panic("unhandled")
}

// TestCircMatchesConc exhaustively cross-checks the symbolic instantiation
// against the concrete one at width 3 for every operator.
func TestCircMatchesConc(t *testing.T) {
	const w = word.Width(3)
	b := circuit.New()
	cc := Circ{B: b, W: w}
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)

	type probe struct {
		op    ast.Op
		out   circuit.Word
		unary bool
	}
	var probes []probe
	for _, op := range binOps {
		probes = append(probes, probe{op, Binary[circuit.Word](cc, op, x, y), false})
	}
	for _, op := range unOps {
		probes = append(probes, probe{op, Unary[circuit.Word](cc, op, x), true})
	}
	muxOut := cc.Mux(x, y, cc.ConstInt(5))

	conc := Conc{W: w}
	for a := uint64(0); a < 8; a++ {
		for bv := uint64(0); bv < 8; bv++ {
			in := map[circuit.Bit]bool{}
			circuit.SetWordInputs(in, x, a)
			circuit.SetWordInputs(in, y, bv)
			for _, p := range probes {
				got := b.EvalWord(in, p.out)
				var want uint64
				if p.unary {
					want = Unary[uint64](conc, p.op, a)
				} else {
					want = Binary[uint64](conc, p.op, a, bv)
				}
				if got != want {
					t.Fatalf("circ %v(%d,%d) = %d, want %d", p.op, a, bv, got, want)
				}
			}
			if got := b.EvalWord(in, muxOut); got != conc.Mux(a, bv, 5) {
				t.Fatalf("circ mux(%d,%d) = %d", a, bv, got)
			}
		}
	}
}

// randomProgram builds a random but well-formed Domino program.
func randomProgram(rng *rand.Rand) *ast.Program {
	fields := []string{"a", "b", "c"}
	states := []string{"s", "t"}
	var expr func(depth int) ast.Expr
	expr = func(depth int) ast.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				return &ast.Num{Value: int64(rng.Intn(8))}
			case 1:
				return &ast.Field{Name: fields[rng.Intn(len(fields))]}
			default:
				return &ast.State{Name: states[rng.Intn(len(states))]}
			}
		}
		switch rng.Intn(8) {
		case 0:
			return &ast.Unary{Op: unOps[rng.Intn(len(unOps))], X: expr(depth - 1)}
		case 1:
			return &ast.Ternary{Cond: expr(depth - 1), T: expr(depth - 1), F: expr(depth - 1)}
		default:
			return &ast.Binary{Op: binOps[rng.Intn(len(binOps))], X: expr(depth - 1), Y: expr(depth - 1)}
		}
	}
	var stmts func(depth, n int) []ast.Stmt
	stmts = func(depth, n int) []ast.Stmt {
		out := make([]ast.Stmt, 0, n)
		for i := 0; i < n; i++ {
			if depth > 0 && rng.Intn(4) == 0 {
				out = append(out, &ast.If{
					Cond: expr(2),
					Then: stmts(depth-1, 1+rng.Intn(2)),
					Else: stmts(depth-1, rng.Intn(2)),
				})
				continue
			}
			lv := ast.LValue{Name: fields[rng.Intn(len(fields))], IsField: true}
			if rng.Intn(2) == 0 {
				lv = ast.LValue{Name: states[rng.Intn(len(states))], IsField: false}
			}
			out = append(out, &ast.Assign{LHS: lv, RHS: expr(3)})
		}
		return out
	}
	return &ast.Program{
		Name:  "random",
		Init:  map[string]int64{"s": int64(rng.Intn(4)), "t": 0},
		Stmts: stmts(2, 2+rng.Intn(3)),
	}
}

// TestEvalProgramMatchesInterp differential-tests the generic concrete
// evaluator (with its if-to-mux predication) against the reference
// interpreter on random programs and random inputs.
func TestEvalProgramMatchesInterp(t *testing.T) {
	const w = word.Width(6)
	rng := rand.New(rand.NewSource(41))
	ref := interp.MustNew(w)
	for trial := 0; trial < 200; trial++ {
		p := randomProgram(rng)
		for rep := 0; rep < 10; rep++ {
			snap := interp.NewSnapshot()
			env := NewEnv[uint64]()
			for _, f := range []string{"a", "b", "c"} {
				v := w.Trunc(rng.Uint64())
				snap.Pkt[f] = v
				env.Pkt[f] = v
			}
			for _, s := range []string{"s", "t"} {
				v := w.Trunc(rng.Uint64())
				snap.State[s] = v
				env.State[s] = v
			}
			want, err := ref.Run(p, snap)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalProgram[uint64](Conc{W: w}, p, env)
			if err != nil {
				t.Fatal(err)
			}
			vars := p.Variables()
			for _, f := range vars.Fields {
				if got.Pkt[f] != want.Pkt[f] {
					t.Fatalf("trial %d: pkt.%s = %d, interp says %d\nprogram:\n%s",
						trial, f, got.Pkt[f], want.Pkt[f], p.Print())
				}
			}
			for _, s := range vars.States {
				if got.State[s] != want.State[s] {
					t.Fatalf("trial %d: state %s = %d, interp says %d\nprogram:\n%s",
						trial, s, got.State[s], want.State[s], p.Print())
				}
			}
		}
	}
}

// TestCircProgramMatchesInterp encodes random programs as circuits and
// checks the circuit output against the interpreter on random inputs —
// the exact soundness property the CEGIS verification phase relies on.
func TestCircProgramMatchesInterp(t *testing.T) {
	const w = word.Width(4)
	rng := rand.New(rand.NewSource(43))
	ref := interp.MustNew(w)
	for trial := 0; trial < 60; trial++ {
		p := randomProgram(rng)
		b := circuit.New()
		cc := Circ{B: b, W: w}
		env := NewEnv[circuit.Word]()
		inputs := map[string]circuit.Word{}
		for _, f := range []string{"a", "b", "c"} {
			wd := b.InputWord("pkt."+f, w)
			env.Pkt[f] = wd
			inputs["pkt."+f] = wd
		}
		for _, s := range []string{"s", "t"} {
			wd := b.InputWord(s, w)
			env.State[s] = wd
			inputs[s] = wd
		}
		out, err := EvalProgram[circuit.Word](cc, p, env)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 20; rep++ {
			snap := interp.NewSnapshot()
			assign := map[circuit.Bit]bool{}
			for _, f := range []string{"a", "b", "c"} {
				v := w.Trunc(rng.Uint64())
				snap.Pkt[f] = v
				circuit.SetWordInputs(assign, inputs["pkt."+f], v)
			}
			for _, s := range []string{"s", "t"} {
				v := w.Trunc(rng.Uint64())
				snap.State[s] = v
				circuit.SetWordInputs(assign, inputs[s], v)
			}
			want, err := ref.Run(p, snap)
			if err != nil {
				t.Fatal(err)
			}
			vars := p.Variables()
			for _, f := range vars.Fields {
				if got := b.EvalWord(assign, out.Pkt[f]); got != want.Pkt[f] {
					t.Fatalf("trial %d: circuit pkt.%s = %d, interp says %d\nprogram:\n%s",
						trial, f, got, want.Pkt[f], p.Print())
				}
			}
			for _, s := range vars.States {
				if got := b.EvalWord(assign, out.State[s]); got != want.State[s] {
					t.Fatalf("trial %d: circuit state %s = %d, interp says %d\nprogram:\n%s",
						trial, s, got, want.State[s], p.Print())
				}
			}
		}
	}
}

// TestEvalProgramSampling sanity-checks the paper's Figure 2 program through
// the generic evaluator.
func TestEvalProgramSampling(t *testing.T) {
	p := parser.MustParse("sampling", `
int count = 0;
if (count == 10) { count = 0; pkt.sample = 1; }
else { count = count + 1; pkt.sample = 0; }
`)
	c := Conc{W: 8}
	env := NewEnv[uint64]()
	env.State["count"] = 10
	out, err := EvalProgram[uint64](c, p, env)
	if err != nil {
		t.Fatal(err)
	}
	if out.Pkt["sample"] != 1 || out.State["count"] != 0 {
		t.Fatalf("sample=%d count=%d, want 1, 0", out.Pkt["sample"], out.State["count"])
	}
}

func TestEvalExprMissingVarsReadZero(t *testing.T) {
	c := Conc{W: 8}
	e, err := parser.ParseExpr("pkt.nothere + missing + 3")
	if err != nil {
		t.Fatal(err)
	}
	v, err := EvalExpr[uint64](c, e, NewEnv[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("missing vars should read 0; got %d", v)
	}
}

func TestBinaryPanicsOnUnary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binary should panic on a unary op")
		}
	}()
	Binary[uint64](Conc{W: 8}, ast.OpNeg, 1, 2)
}
