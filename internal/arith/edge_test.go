package arith

import (
	"testing"

	"repro/internal/ast"
)

func TestEvalProgramErrorPaths(t *testing.T) {
	c := Conc{W: 8}
	cases := []*ast.Program{
		{Name: "nil-stmt", Stmts: []ast.Stmt{nil}, Init: map[string]int64{}},
		{Name: "nil-rhs", Stmts: []ast.Stmt{
			&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: nil},
		}, Init: map[string]int64{}},
		{Name: "nil-cond", Stmts: []ast.Stmt{
			&ast.If{Cond: nil},
		}, Init: map[string]int64{}},
		{Name: "bad-then", Stmts: []ast.Stmt{
			&ast.If{Cond: &ast.Num{Value: 1}, Then: []ast.Stmt{
				&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: nil},
			}},
		}, Init: map[string]int64{}},
		{Name: "bad-else", Stmts: []ast.Stmt{
			&ast.If{Cond: &ast.Num{Value: 1}, Else: []ast.Stmt{
				&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: nil},
			}},
		}, Init: map[string]int64{}},
	}
	for _, p := range cases {
		if _, err := EvalProgram[uint64](c, p, NewEnv[uint64]()); err == nil {
			t.Errorf("%s: expected error", p.Name)
		}
	}
}

func TestEvalExprErrorPaths(t *testing.T) {
	c := Conc{W: 8}
	env := NewEnv[uint64]()
	exprs := []ast.Expr{
		&ast.Unary{Op: ast.OpNeg, X: nil},
		&ast.Binary{Op: ast.OpAdd, X: nil, Y: &ast.Num{Value: 1}},
		&ast.Binary{Op: ast.OpAdd, X: &ast.Num{Value: 1}, Y: nil},
		&ast.Ternary{Cond: nil, T: &ast.Num{Value: 1}, F: &ast.Num{Value: 1}},
		&ast.Ternary{Cond: &ast.Num{Value: 1}, T: nil, F: &ast.Num{Value: 1}},
		&ast.Ternary{Cond: &ast.Num{Value: 1}, T: &ast.Num{Value: 1}, F: nil},
	}
	for i, e := range exprs {
		if _, err := EvalExpr[uint64](c, e, env); err == nil {
			t.Errorf("expr %d: expected error", i)
		}
	}
}

func TestUnaryPanicsOnBinaryOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unary should panic on a binary op")
		}
	}()
	Unary[uint64](Conc{W: 8}, ast.OpAdd, 1)
}

func TestEnvCloneIndependence(t *testing.T) {
	e := NewEnv[uint64]()
	e.Pkt["a"] = 1
	e.State["s"] = 2
	c := e.Clone()
	c.Pkt["a"] = 9
	c.State["s"] = 9
	if e.Pkt["a"] != 1 || e.State["s"] != 2 {
		t.Fatal("Clone shares maps")
	}
}

// TestMergePartialWrites pins the if-to-mux merge semantics when a branch
// writes a variable the other branch (and the pre-state) never mentions.
func TestMergePartialWrites(t *testing.T) {
	c := Conc{W: 8}
	prog := &ast.Program{Name: "t", Init: map[string]int64{}, Stmts: []ast.Stmt{
		&ast.If{
			Cond: &ast.Field{Name: "c"},
			Then: []ast.Stmt{
				&ast.Assign{LHS: ast.LValue{Name: "x", IsField: true}, RHS: &ast.Num{Value: 7}},
			},
			Else: []ast.Stmt{
				&ast.Assign{LHS: ast.LValue{Name: "y", IsField: true}, RHS: &ast.Num{Value: 9}},
			},
		},
	}}
	for _, cond := range []uint64{0, 1} {
		env := NewEnv[uint64]()
		env.Pkt["c"] = cond
		out, err := EvalProgram[uint64](c, prog, env)
		if err != nil {
			t.Fatal(err)
		}
		wantX, wantY := uint64(0), uint64(9)
		if cond == 1 {
			wantX, wantY = 7, 0
		}
		if out.Pkt["x"] != wantX || out.Pkt["y"] != wantY {
			t.Fatalf("cond=%d: x=%d y=%d, want %d %d", cond, out.Pkt["x"], out.Pkt["y"], wantX, wantY)
		}
	}
}
