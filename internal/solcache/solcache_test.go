package solcache

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/pisa"
)

const samplingSrc = `
int count = 0;
if (count == 10) {
  count = 0;
  pkt.sample = 1;
} else {
  count = count + 1;
  pkt.sample = 0;
}
`

// samplingSrcRenamed is samplingSrc with count->tally and sample->tag: a
// pure alpha-renaming that preserves each class's sort order, so it must
// canonicalize (and fingerprint) identically.
const samplingSrcRenamed = `
int tally = 0;
if (tally == 10) {
  tally = 0;
  pkt.tag = 1;
} else {
  tally = tally + 1;
  pkt.tag = 0;
}
`

func mustParse(t *testing.T, name, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func problem(p *ast.Program) Problem {
	return Problem{
		Program: p,
		Grid: pisa.GridSpec{
			Width:        2,
			WordWidth:    10,
			StatefulALU:  alu.Stateful{Kind: alu.IfElseRaw},
			StatelessALU: alu.Stateless{},
		},
		MaxStages: 3,
	}
}

func TestCanonicalSourceAlphaRenaming(t *testing.T) {
	a := CanonicalSource(mustParse(t, "a", samplingSrc))
	b := CanonicalSource(mustParse(t, "b", samplingSrcRenamed))
	if a != b {
		t.Errorf("alpha-renamed programs canonicalize differently:\n%s\nvs\n%s", a, b)
	}
	for _, bad := range []string{"count", "tally", "sample", "tag"} {
		if strings.Contains(a, bad) {
			t.Errorf("canonical form leaks original name %q:\n%s", bad, a)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p := mustParse(t, "p", samplingSrc)
	base := problem(p)
	k0 := base.Fingerprint()

	if k := problem(mustParse(t, "q", samplingSrcRenamed)).Fingerprint(); k != k0 {
		t.Error("alpha-renamed program got a different fingerprint")
	}

	other := mustParse(t, "p", `pkt.out = pkt.in + 1;`)
	if k := problem(other).Fingerprint(); k == k0 {
		t.Error("different program collided")
	}

	wider := base
	wider.Grid.Width = 3
	if wider.Fingerprint() == k0 {
		t.Error("different grid width collided")
	}

	deeper := base
	deeper.MaxStages = 4
	if deeper.Fingerprint() == k0 {
		t.Error("different deepening bound collided")
	}

	ind := base
	ind.IndicatorAlloc = true
	if ind.Fingerprint() == k0 {
		t.Error("indicator allocation collided with canonical")
	}

	// Explicit defaults and zero values must normalize to the same key.
	expl := base
	expl.SynthWidth, expl.VerifyWidth = 4, 10
	if expl.Fingerprint() != k0 {
		t.Error("explicit default widths got a different fingerprint than zero values")
	}
}

// TestForProgramTranslatesNames: a cached config carries whichever names
// the original (leader) program used; ForProgram must rewrite them
// positionally onto the requesting program's variables without mutating
// the cached copy.
func TestForProgramTranslatesNames(t *testing.T) {
	cached := &pisa.Config{Fields: []string{"sample"}, States: []string{"count"}}
	sol := Solution{Feasible: true, Config: cached}

	out, err := sol.ForProgram(mustParse(t, "b", samplingSrcRenamed))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Config.Fields; len(got) != 1 || got[0] != "tag" {
		t.Errorf("translated fields = %v, want [tag]", got)
	}
	if got := out.Config.States; len(got) != 1 || got[0] != "tally" {
		t.Errorf("translated states = %v, want [tally]", got)
	}
	if cached.Fields[0] != "sample" || cached.States[0] != "count" {
		t.Errorf("ForProgram mutated the cached config: %v / %v", cached.Fields, cached.States)
	}

	// A variable-count mismatch cannot belong to the same canonical
	// problem: surface it instead of returning a nonsense config.
	bad := Solution{Config: &pisa.Config{Fields: []string{"a", "b"}}}
	if _, err := bad.ForProgram(mustParse(t, "b", samplingSrcRenamed)); err == nil {
		t.Error("field-count mismatch was not reported")
	}

	// Config-less verdicts (infeasible, timed out) pass through untouched.
	if out, err := (Solution{Feasible: false}).ForProgram(mustParse(t, "b", samplingSrcRenamed)); err != nil || out.Config != nil {
		t.Errorf("config-less solution: out=%+v err=%v", out, err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", Solution{Feasible: true, Stages: 1})
	c.Put("b", Solution{Feasible: true, Stages: 2})
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", Solution{Feasible: true, Stages: 3})
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be resident")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestPutIgnoresTimedOut(t *testing.T) {
	c := New(4)
	c.Put("t", Solution{TimedOut: true})
	if c.Len() != 0 {
		t.Error("timed-out solution was cached")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	c := New(8, WithPersistPath(path))
	c.Put("k1", Solution{Feasible: true, Stages: 2, Iters: 7})
	c.Put("k2", Solution{Feasible: false})
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	c2 := New(8, WithPersistPath(path))
	if c2.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", c2.Len())
	}
	sol, ok := c2.Get("k1")
	if !ok || !sol.Feasible || sol.Stages != 2 || sol.Iters != 7 {
		t.Errorf("k1 roundtrip mismatch: %+v ok=%v", sol, ok)
	}
	if sol, ok := c2.Get("k2"); !ok || sol.Feasible {
		t.Errorf("k2 (infeasible verdict) roundtrip mismatch: %+v ok=%v", sol, ok)
	}
}

func TestPersistenceVersionInvalidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	writeFile(t, path, fmt.Sprintf(`{"version":%d,"entries":[{"key":"k","solution":{"feasible":true}}]}`, FormatVersion+1))
	c := New(8, WithPersistPath(path))
	if c.Len() != 0 {
		t.Errorf("stale-version file loaded %d entries, want 0", c.Len())
	}

	writeFile(t, path, "{not json")
	c = New(8, WithPersistPath(path))
	if c.Len() != 0 {
		t.Errorf("corrupt file loaded %d entries, want 0", c.Len())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDoSingleflight is the satellite concurrency test: N goroutines
// requesting the same canonical program must trigger exactly one
// underlying run, observed both through the closure itself and through the
// obs counters Do records. Run under -race (CI does).
func TestDoSingleflight(t *testing.T) {
	const n = 16
	c := New(8)
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), reg)
	key := problem(mustParse(t, "p", samplingSrc)).Fingerprint()

	var runs atomic.Int64
	var release sync.WaitGroup
	release.Add(1)
	var wg sync.WaitGroup
	sols := make([]Solution, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, err := c.Do(ctx, key, func(context.Context) (Solution, bool, error) {
				runs.Add(1)
				release.Wait() // hold the flight open until all callers joined
				return Solution{Feasible: true, Stages: 2}, true, nil
			})
			if err != nil {
				t.Error(err)
			}
			sols[i] = sol
		}(i)
	}
	// Wait until every non-leader has had a chance to join the flight,
	// then let the leader finish. Polling the shared counter is the only
	// observable signal; give it a bounded spin.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("solcache.shared").Value()+reg.Counter("solcache.hits").Value() < n-1 &&
		time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	release.Done()
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("underlying run executed %d times, want exactly 1", got)
	}
	if got := reg.Counter("solcache.misses").Value(); got != 1 {
		t.Errorf("solcache.misses = %d, want 1", got)
	}
	if got := reg.Counter("solcache.shared").Value() + reg.Counter("solcache.hits").Value(); got != n-1 {
		t.Errorf("shared+hits = %d, want %d", got, n-1)
	}
	for i, sol := range sols {
		if !sol.Feasible || sol.Stages != 2 {
			t.Errorf("caller %d got %+v, want the shared solution", i, sol)
		}
	}
	// The flight's solution must now be resident: a fresh Do is a pure hit.
	var ranAgain bool
	if _, err := c.Do(ctx, key, func(context.Context) (Solution, bool, error) {
		ranAgain = true
		return Solution{}, false, nil
	}); err != nil {
		t.Fatal(err)
	}
	if ranAgain {
		t.Error("warm Do re-ran the closure")
	}
}

func TestDoFollowerContextExpiry(t *testing.T) {
	c := New(8)
	key := Key("k")
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key, func(context.Context) (Solution, bool, error) {
			close(started)
			<-release
			return Solution{Feasible: true}, true, nil
		})
	}()
	<-started
	fctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := c.Do(fctx, key, func(context.Context) (Solution, bool, error) {
		t.Error("follower must not run")
		return Solution{}, false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.TimedOut {
		t.Errorf("expired follower got %+v, want TimedOut", sol)
	}
	close(release)
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(8)
	wantErr := fmt.Errorf("boom")
	_, err := c.Do(context.Background(), "k", func(context.Context) (Solution, bool, error) {
		return Solution{}, true, wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if c.Len() != 0 {
		t.Error("errored run was cached")
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache hit")
	}
	c.Put("k", Solution{Feasible: true})
	ran := false
	sol, err := c.Do(context.Background(), "k", func(context.Context) (Solution, bool, error) {
		ran = true
		return Solution{Feasible: true}, true, nil
	})
	if err != nil || !ran || !sol.Feasible {
		t.Errorf("nil cache Do: ran=%v sol=%+v err=%v", ran, sol, err)
	}
}

// TestCrossTargetMiss: the same canonical program compiled for different
// backends must occupy different cache slots — a PISA pipeline
// configuration is not a BPF register program. The zero-value target
// normalizes to "pisa" so pre-v2 callers keep their keys stable within a
// format version.
func TestCrossTargetMiss(t *testing.T) {
	p := mustParse(t, "p", samplingSrc)
	base := problem(p)
	k0 := base.Fingerprint()

	expl := base
	expl.Target = "pisa"
	if expl.Fingerprint() != k0 {
		t.Error("explicit pisa target got a different fingerprint than the zero value")
	}

	bpfP := base
	bpfP.Target = "bpf"
	kb := bpfP.Fingerprint()
	if kb == k0 {
		t.Error("bpf target collided with pisa")
	}

	masked := bpfP
	masked.BPF.OpcodeMask = 0xff
	if masked.Fingerprint() == kb {
		t.Error("restricted bpf opcode mask collided with the full ISA")
	}

	constd := bpfP
	constd.BPF.ConstBits = 8
	if constd.Fingerprint() == kb {
		t.Error("different bpf immediate width collided")
	}

	// The bpf machine spec must not perturb pisa keys: it is folded into
	// the fingerprint only for the bpf target.
	pisaWithSpec := base
	pisaWithSpec.BPF.OpcodeMask = 0xff
	if pisaWithSpec.Fingerprint() != k0 {
		t.Error("bpf spec leaked into a pisa fingerprint")
	}
}
