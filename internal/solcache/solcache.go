// Package solcache provides content-addressed caching of Chipmunk
// compilation results. The paper's evaluation workload (Table 2: 8 programs
// × 10 semantics-preserving mutations, re-run across seeds and sessions)
// repeatedly poses synthesis problems that canonicalize to the same sketch;
// since CEGIS is the dominant cost, memoizing solved problems amortizes
// nearly all of it.
//
// The cache key is a content address: a SHA-256 fingerprint of the
// program's canonical form (the paper's §3.1 / Figure 4 canonicalization —
// variables renamed to their sorted allocation order, so alpha-renamed
// programs collide on purpose) together with every synthesis parameter that
// can change the answer (grid shape, ALU templates, tier widths, deepening
// bounds). The CEGIS seed is deliberately excluded: it perturbs the search
// path, never the validity of a solution.
//
// Three layers make the cache safe under a compile service's concurrency:
//
//   - an LRU bounding resident solutions;
//   - singleflight deduplication, so N concurrent requests for the same
//     canonical program share one underlying CEGIS run; and
//   - optional on-disk JSON persistence with versioned invalidation, so
//     repeat CLI invocations and daemon restarts start warm.
package solcache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/ast"
	"repro/internal/bpf"
	"repro/internal/cegis"
	"repro/internal/obs"
	"repro/internal/pisa"
	"repro/internal/word"
)

// FormatVersion is bumped whenever the fingerprint derivation or the
// persisted encoding changes — including a change to the cegis default tier
// widths (cegis.DefaultSynthWidth / DefaultVerifyWidth), which Fingerprint
// folds into the key so zero-valued options and explicit defaults collide.
// On-disk files written by another version are discarded wholesale at load
// time.
//
// Version history: 2 added the backend target (and, for bpf, the machine
// spec) to the fingerprint and a BPF configuration to Solution.
const FormatVersion = 2

// Key is a content address for a compilation problem.
type Key string

// Problem bundles everything that determines a compilation's outcome. It
// mirrors core.Options minus the fields that cannot change the answer
// (seed, callbacks, the cache itself).
type Problem struct {
	// Program is the specification; only its canonical form matters.
	Program *ast.Program
	// Target is the compile backend ("" is normalized to "pisa"). PISA
	// and BPF solutions for the same program must never collide on a
	// cache hit, so the target is part of the content address.
	Target string
	// Grid carries Width, WordWidth and the ALU templates. Stages is
	// ignored — the deepening bound is MaxStages below. Only meaningful
	// for the pisa target.
	Grid pisa.GridSpec
	// BPF is the register-machine description for the bpf target (Slots
	// ignored — the deepening bound is MaxStages below).
	BPF bpf.MachineSpec
	// MaxStages and FixedStages describe the iterative-deepening search.
	MaxStages   int
	FixedStages bool
	// SynthWidth and VerifyWidth are the CEGIS tier widths (0 = the cegis
	// defaults; normalized so explicit defaults and zero values collide).
	SynthWidth  word.Width
	VerifyWidth word.Width
	// IndicatorAlloc selects the Figure 4 ablation allocation.
	IndicatorAlloc bool
}

// Fingerprint computes the problem's content address.
func (p Problem) Fingerprint() Key {
	h := sha256.New()
	io.WriteString(h, CanonicalSource(p.Program))
	sw, vw := p.SynthWidth, p.VerifyWidth
	if sw == 0 {
		sw = cegis.DefaultSynthWidth
	}
	if vw == 0 {
		vw = cegis.DefaultVerifyWidth
	}
	target := p.Target
	if target == "" {
		target = "pisa"
	}
	fmt.Fprintf(h, "|v%d|tgt%s|w%d ww%d|sl%+v|sf%+v|ms%d fx%t|sw%d vw%d|ind%t",
		FormatVersion, target, p.Grid.Width, p.Grid.WordWidth,
		p.Grid.StatelessALU, p.Grid.StatefulALU,
		p.MaxStages, p.FixedStages, sw, vw, p.IndicatorAlloc)
	if target == "bpf" {
		fmt.Fprintf(h, "|bpf r%d cb%d om%d",
			p.BPF.Regs, p.BPF.ConstBits, p.BPF.EffectiveOpcodeMask())
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

// CanonicalSource renders the program in the §3.1 canonical form: packet
// fields renamed f0..fn and state variables s0..sm in their sorted
// (allocation) order — the same order cegis.CanonicalVars assigns grid
// resources — then printed back to Domino source. Programs that differ only
// by a sort-order-preserving variable renaming produce identical text.
func CanonicalSource(p *ast.Program) string {
	fields, states := cegis.CanonicalVars(p)
	rename := make(map[string]string, len(fields)+len(states))
	for i, f := range fields {
		rename["pkt."+f] = fmt.Sprintf("f%d", i)
	}
	for i, s := range states {
		rename[s] = fmt.Sprintf("s%d", i)
	}
	c := p.Clone()
	renameStmts(c.Stmts, rename)
	init := make(map[string]int64, len(c.Init))
	for n, v := range c.Init {
		init[renamed(rename, n)] = v
	}
	c.Init = init
	return c.Print()
}

// renamed looks name up in the rename map, falling back to the original
// name on a miss. CanonicalVars inventories every variable, so a miss
// should be impossible — but if it ever happens, keeping the original name
// makes genuinely different programs canonicalize differently (a cache
// miss) instead of both collapsing to "" (a wrong shared hit).
func renamed(rename map[string]string, name string) string {
	if n, ok := rename[name]; ok {
		return n
	}
	return name
}

// renamedField is renamed for packet fields, whose map keys carry the
// "pkt." prefix; the fallback is the bare original field name.
func renamedField(rename map[string]string, name string) string {
	if n, ok := rename["pkt."+name]; ok {
		return n
	}
	return name
}

func renameStmts(stmts []ast.Stmt, rename map[string]string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			if s.LHS.IsField {
				s.LHS.Name = renamedField(rename, s.LHS.Name)
			} else {
				s.LHS.Name = renamed(rename, s.LHS.Name)
			}
			renameExpr(s.RHS, rename)
		case *ast.If:
			renameExpr(s.Cond, rename)
			renameStmts(s.Then, rename)
			renameStmts(s.Else, rename)
		}
	}
}

func renameExpr(e ast.Expr, rename map[string]string) {
	switch e := e.(type) {
	case *ast.Field:
		e.Name = renamedField(rename, e.Name)
	case *ast.State:
		e.Name = renamed(rename, e.Name)
	case *ast.Unary:
		renameExpr(e.X, rename)
	case *ast.Binary:
		renameExpr(e.X, rename)
		renameExpr(e.Y, rename)
	case *ast.Ternary:
		renameExpr(e.Cond, rename)
		renameExpr(e.T, rename)
		renameExpr(e.F, rename)
	}
}

// Solution is a cached compilation outcome. Only definitive answers are
// stored: feasible configurations and proved-infeasible verdicts. Timed-out
// runs are never cached (a longer budget might succeed), but TimedOut is
// set on solutions handed to singleflight followers whose shared run
// expired.
type Solution struct {
	Feasible bool         `json:"feasible"`
	TimedOut bool         `json:"timed_out,omitempty"`
	Config   *pisa.Config `json:"config,omitempty"`
	// BPF is the synthesized register-machine program for bpf-target
	// problems (Config stays nil for those).
	BPF *bpf.Config `json:"bpf,omitempty"`
	// Stages is the minimized pipeline depth (pisa) or slot count (bpf)
	// when feasible.
	Stages int `json:"stages,omitempty"`
	// Iters is the CEGIS iteration count of the original run, kept so
	// warm hits can still report the effort they avoided.
	Iters int `json:"iters,omitempty"`
}

// ForProgram translates a solution's configuration onto prog's own variable
// names. The cache deliberately collides alpha-renamed programs, so a hit
// may return a configuration recorded under a *different* program's names;
// because Config.Fields and Config.States are stored in canonical (sorted
// allocation) order — the same order cegis.CanonicalVars yields — the
// translation is positional. The returned solution owns fresh name slices;
// the cached configuration is never mutated. A count mismatch means the
// solution cannot belong to prog's canonical problem (a fingerprint
// collision or a corrupted persisted entry) and is reported as an error.
func (s Solution) ForProgram(prog *ast.Program) (Solution, error) {
	if s.Config == nil && s.BPF == nil {
		return s, nil
	}
	fields, states := cegis.CanonicalVars(prog)
	if s.Config != nil {
		if len(fields) != len(s.Config.Fields) || len(states) != len(s.Config.States) {
			return Solution{}, fmt.Errorf(
				"solcache: cached config names %d fields / %d states but %s has %d / %d (fingerprint collision?)",
				len(s.Config.Fields), len(s.Config.States), prog.Name, len(fields), len(states))
		}
		cfg := *s.Config
		cfg.Fields = fields
		cfg.States = states
		s.Config = &cfg
	}
	if s.BPF != nil {
		if len(fields) != len(s.BPF.Fields) || len(states) != len(s.BPF.States) {
			return Solution{}, fmt.Errorf(
				"solcache: cached bpf config names %d fields / %d states but %s has %d / %d (fingerprint collision?)",
				len(s.BPF.Fields), len(s.BPF.States), prog.Name, len(fields), len(states))
		}
		cfg := *s.BPF
		cfg.Fields = fields
		cfg.States = states
		s.BPF = &cfg
	}
	return s, nil
}

// Cache is an in-memory LRU of solved compilation problems with
// singleflight deduplication and optional disk persistence. All methods are
// safe for concurrent use. A nil *Cache is a valid no-op (Get always
// misses, Do always runs).
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	flights map[Key]*flight
	path    string

	hits, misses, shared, evictions int64
}

type lruEntry struct {
	key Key
	sol Solution
}

type flight struct {
	done chan struct{}
	sol  Solution
	err  error
}

// Option configures a Cache.
type Option func(*Cache)

// WithPersistPath enables on-disk persistence at path. New loads the file
// if present (silently starting cold on version mismatch or corruption);
// Save writes it back.
func WithPersistPath(path string) Option {
	return func(c *Cache) { c.path = path }
}

// DefaultCapacity bounds the LRU when New is given a non-positive capacity.
const DefaultCapacity = 1024

// New returns a cache holding at most capacity solutions (<= 0 means
// DefaultCapacity). With WithPersistPath, previously saved solutions are
// loaded immediately.
func New(capacity int, opts ...Option) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	c := &Cache{
		cap:     capacity,
		entries: map[Key]*list.Element{},
		lru:     list.New(),
		flights: map[Key]*flight{},
	}
	for _, o := range opts {
		o(c)
	}
	if c.path != "" {
		c.Load() // best effort: a missing or stale file just starts cold
	}
	return c
}

// Get returns the cached solution for key, marking it recently used.
func (c *Cache) Get(key Key) (Solution, bool) {
	if c == nil {
		return Solution{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return Solution{}, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*lruEntry).sol, true
}

// Put stores a solution, evicting the least recently used entry when over
// capacity. Timed-out solutions are ignored — a bigger budget could still
// find an answer, so they are not definitive.
func (c *Cache) Put(key Key, sol Solution) {
	if c == nil || sol.TimedOut {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, sol)
}

func (c *Cache) putLocked(key Key, sol Solution) {
	if e, ok := c.entries[key]; ok {
		e.Value.(*lruEntry).sol = sol
		c.lru.MoveToFront(e)
		return
	}
	c.entries[key] = c.lru.PushFront(&lruEntry{key: key, sol: sol})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Len reports the number of resident solutions.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats is a point-in-time view of cache traffic.
type Stats struct {
	Size, Capacity                  int
	Hits, Misses, Shared, Evictions int64
}

// Stats snapshots the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Size: c.lru.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Shared: c.shared, Evictions: c.evictions,
	}
}

// Publish copies the traffic counters into an obs registry (the daemon
// calls this when serving its metrics endpoint).
func (c *Cache) Publish(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	st := c.Stats()
	reg.Gauge("solcache.size").Set(int64(st.Size))
	reg.Gauge("solcache.capacity").Set(int64(st.Capacity))
	reg.Gauge("solcache.evictions").Set(st.Evictions)
}

// Do returns the cached solution for key, or runs run to produce it.
// Concurrent Do calls for the same key share a single run (singleflight):
// one caller becomes the leader and executes run; the rest block until it
// finishes and receive the same solution. run reports whether its solution
// is definitive (cacheable); timed-out results must return false.
//
// A follower whose own context expires before the shared run completes
// receives a Solution with TimedOut set and a nil error, matching
// core.Compile's contract that deadline expiry is an outcome, not an
// error.
//
// Do records solcache.hits / solcache.misses / solcache.shared counters
// into the context's obs registry, if one is installed, and wraps the
// lookup portion — everything up to the hit/shared/miss decision,
// including a follower's wait on the shared flight — in a
// "solcache.lookup" span so CompileProfile can attribute cache-layer time
// separately from synthesis.
func (c *Cache) Do(ctx context.Context, key Key, run func(ctx context.Context) (sol Solution, cacheable bool, err error)) (Solution, error) {
	if c == nil {
		sol, _, err := run(ctx)
		return sol, err
	}
	m := obs.MetricsFrom(ctx)
	_, span := obs.StartSpan(ctx, "solcache.lookup")
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e)
		sol := e.Value.(*lruEntry).sol
		c.hits++
		c.mu.Unlock()
		m.Counter("solcache.hits").Add(1)
		span.End(obs.String("outcome", "hit"))
		return sol, nil
	}
	if f, ok := c.flights[key]; ok {
		c.shared++
		c.mu.Unlock()
		m.Counter("solcache.shared").Add(1)
		select {
		case <-f.done:
			span.End(obs.String("outcome", "shared"))
			return f.sol, f.err
		case <-ctx.Done():
			span.End(obs.String("outcome", "shared_timeout"))
			return Solution{TimedOut: true}, nil
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()
	m.Counter("solcache.misses").Add(1)
	span.End(obs.String("outcome", "miss"))

	sol, cacheable, err := run(ctx)
	f.sol, f.err = sol, err

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil && cacheable && !sol.TimedOut {
		c.putLocked(key, sol)
	}
	c.mu.Unlock()
	close(f.done)
	return sol, err
}

// --- Disk persistence --------------------------------------------------------

type diskFile struct {
	Version int         `json:"version"`
	Entries []diskEntry `json:"entries"` // least recently used first
}

type diskEntry struct {
	Key      Key      `json:"key"`
	Solution Solution `json:"solution"`
}

// Save writes the resident solutions to the persistence path as JSON,
// atomically (write temp + rename). It is a no-op without a path.
func (c *Cache) Save() error {
	if c == nil || c.path == "" {
		return nil
	}
	c.mu.Lock()
	file := diskFile{Version: FormatVersion}
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		le := e.Value.(*lruEntry)
		file.Entries = append(file.Entries, diskEntry{Key: le.key, Solution: le.sol})
	}
	c.mu.Unlock()
	data, err := json.Marshal(file)
	if err != nil {
		return err
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

// Load merges solutions from the persistence path into the cache. A
// missing file, a file written by a different FormatVersion, or a corrupt
// file leaves the cache unchanged and returns nil — persistence is an
// optimization, never a correctness dependency. Entries whose configuration
// fails validation are skipped individually.
func (c *Cache) Load() error {
	if c == nil || c.path == "" {
		return nil
	}
	data, err := os.ReadFile(c.path)
	if err != nil {
		return nil
	}
	var file diskFile
	if err := json.Unmarshal(data, &file); err != nil || file.Version != FormatVersion {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range file.Entries {
		if e.Solution.TimedOut {
			continue
		}
		if cfg := e.Solution.Config; cfg != nil {
			if err := cfg.Validate(); err != nil {
				continue
			}
		}
		if cfg := e.Solution.BPF; cfg != nil {
			if err := cfg.Validate(); err != nil {
				continue
			}
		}
		c.putLocked(e.Key, e.Solution)
	}
	return nil
}
