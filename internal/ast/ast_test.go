package ast

import (
	"strings"
	"testing"
)

func sampleProgram() *Program {
	// if (count == 10) { count = 0; pkt.sample = 1; }
	// else { count = count + 1; pkt.sample = 0; }
	return &Program{
		Name: "sampling",
		Init: map[string]int64{"count": 0},
		Stmts: []Stmt{
			&If{
				Cond: &Binary{Op: OpEq, X: &State{Name: "count"}, Y: &Num{Value: 10}},
				Then: []Stmt{
					&Assign{LHS: LValue{Name: "count"}, RHS: &Num{Value: 0}},
					&Assign{LHS: LValue{Name: "sample", IsField: true}, RHS: &Num{Value: 1}},
				},
				Else: []Stmt{
					&Assign{LHS: LValue{Name: "count"}, RHS: &Binary{Op: OpAdd, X: &State{Name: "count"}, Y: &Num{Value: 1}}},
					&Assign{LHS: LValue{Name: "sample", IsField: true}, RHS: &Num{Value: 0}},
				},
			},
		},
	}
}

func TestPrint(t *testing.T) {
	got := sampleProgram().Print()
	want := `int count = 0;
if ((count == 10)) {
  count = 0;
  pkt.sample = 1;
} else {
  count = (count + 1);
  pkt.sample = 0;
}
`
	if got != want {
		t.Fatalf("Print:\n%s\nwant:\n%s", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := sampleProgram()
	q := p.Clone()
	if !EqualStmts(p.Stmts, q.Stmts) {
		t.Fatal("clone should be structurally equal")
	}
	// Mutate the clone and confirm the original is untouched.
	q.Stmts[0].(*If).Cond.(*Binary).Y.(*Num).Value = 99
	q.Init["count"] = 5
	if p.Stmts[0].(*If).Cond.(*Binary).Y.(*Num).Value != 10 {
		t.Fatal("clone shares expression nodes with original")
	}
	if p.Init["count"] != 0 {
		t.Fatal("clone shares Init map with original")
	}
	if EqualStmts(p.Stmts, q.Stmts) {
		t.Fatal("mutated clone should no longer be equal")
	}
}

func TestEqualExpr(t *testing.T) {
	a := &Binary{Op: OpAdd, X: &Field{Name: "x"}, Y: &Num{Value: 1}}
	b := &Binary{Op: OpAdd, X: &Field{Name: "x"}, Y: &Num{Value: 1}}
	c := &Binary{Op: OpAdd, X: &Field{Name: "y"}, Y: &Num{Value: 1}}
	d := &Binary{Op: OpSub, X: &Field{Name: "x"}, Y: &Num{Value: 1}}
	if !EqualExpr(a, b) {
		t.Fatal("identical trees should be equal")
	}
	if EqualExpr(a, c) || EqualExpr(a, d) {
		t.Fatal("different trees should not be equal")
	}
	if EqualExpr(a, &Num{Value: 1}) {
		t.Fatal("different node types should not be equal")
	}
	if !EqualExpr(&Ternary{Cond: a, T: b, F: c}, &Ternary{Cond: a, T: b, F: c}) {
		t.Fatal("equal ternaries")
	}
	if !EqualExpr(&Unary{Op: OpNot, X: a}, &Unary{Op: OpNot, X: b}) {
		t.Fatal("equal unaries")
	}
}

func TestWalkExprsVisitsAll(t *testing.T) {
	p := sampleProgram()
	var kinds []string
	WalkExprs(p.Stmts, func(e Expr) {
		switch e.(type) {
		case *Num:
			kinds = append(kinds, "num")
		case *State:
			kinds = append(kinds, "state")
		case *Binary:
			kinds = append(kinds, "bin")
		}
	})
	joined := strings.Join(kinds, ",")
	// Cond binary + its two children, then 0, 1, add + children, 0.
	want := "bin,state,num,num,num,bin,state,num,num"
	if joined != want {
		t.Fatalf("walk order = %s, want %s", joined, want)
	}
}

func TestVariables(t *testing.T) {
	p := sampleProgram()
	v := p.Variables()
	if len(v.Fields) != 1 || v.Fields[0] != "sample" {
		t.Fatalf("fields = %v", v.Fields)
	}
	if len(v.States) != 1 || v.States[0] != "count" {
		t.Fatalf("states = %v", v.States)
	}
}

func TestLValue(t *testing.T) {
	f := LValue{Name: "x", IsField: true}
	s := LValue{Name: "y"}
	if f.String() != "pkt.x" || s.String() != "y" {
		t.Fatalf("LValue strings: %q, %q", f, s)
	}
	if _, ok := f.Ref().(*Field); !ok {
		t.Fatal("field lvalue ref should be *Field")
	}
	if _, ok := s.Ref().(*State); !ok {
		t.Fatal("state lvalue ref should be *State")
	}
}

func TestOpProperties(t *testing.T) {
	for _, op := range []Op{OpAdd, OpMul, OpBitAnd, OpBitOr, OpBitXor, OpEq, OpNe} {
		if !op.IsCommutative() {
			t.Errorf("%v should be commutative", op)
		}
	}
	for _, op := range []Op{OpSub, OpShl, OpShr, OpLt, OpLOr} {
		if op.IsCommutative() {
			t.Errorf("%v should not be commutative", op)
		}
	}
	for _, op := range []Op{OpEq, OpLt, OpLAnd, OpNot} {
		if !op.IsComparison() {
			t.Errorf("%v should be a comparison", op)
		}
	}
	if OpAdd.IsComparison() {
		t.Error("add is not a comparison")
	}
}

func TestNumString(t *testing.T) {
	if (&Num{Value: 5}).String() != "5" {
		t.Fatal("positive literal")
	}
	if (&Num{Value: -5}).String() != "(-5)" {
		t.Fatal("negative literal must parenthesize to stay reparseable")
	}
}

func TestPanicsOnUnknownNodes(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("CloneExpr(nil)", func() { CloneExpr(nil) })
	expectPanic("CloneStmts(nil stmt)", func() { CloneStmts([]Stmt{nil}) })
	expectPanic("EqualExpr(nil)", func() { EqualExpr(nil, nil) })
	expectPanic("EqualStmts(nil stmt)", func() { EqualStmts([]Stmt{nil}, []Stmt{nil}) })
	expectPanic("Print(nil stmt)", func() {
		(&Program{Stmts: []Stmt{nil}, Init: map[string]int64{}}).Print()
	})
}

func TestEqualStmtsShapeMismatches(t *testing.T) {
	assign := &Assign{LHS: LValue{Name: "x"}, RHS: &Num{Value: 1}}
	ifs := &If{Cond: &Num{Value: 1}}
	if EqualStmts([]Stmt{assign}, []Stmt{ifs}) {
		t.Fatal("assign vs if should differ")
	}
	if EqualStmts([]Stmt{assign}, []Stmt{assign, assign}) {
		t.Fatal("length mismatch should differ")
	}
	other := &Assign{LHS: LValue{Name: "y"}, RHS: &Num{Value: 1}}
	if EqualStmts([]Stmt{assign}, []Stmt{other}) {
		t.Fatal("different lvalues should differ")
	}
	ifs2 := &If{Cond: &Num{Value: 2}}
	if EqualStmts([]Stmt{ifs}, []Stmt{ifs2}) {
		t.Fatal("different conditions should differ")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if Op(999).String() != "" {
		// opStrings has no entry; the zero value is the empty string.
		t.Fatal("unknown op should render empty")
	}
}

func TestVariablesIncludesDeclaredOnly(t *testing.T) {
	// A state declared in Init but never referenced still counts.
	p := &Program{Name: "t", Init: map[string]int64{"ghost": 3}, Stmts: []Stmt{
		&Assign{LHS: LValue{Name: "a", IsField: true}, RHS: &Num{Value: 1}},
	}}
	v := p.Variables()
	if len(v.States) != 1 || v.States[0] != "ghost" {
		t.Fatalf("states = %v", v.States)
	}
}
