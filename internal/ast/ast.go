// Package ast defines the abstract syntax tree of the Domino
// packet-transaction language, together with utilities shared by the
// interpreter, the two compilers, and the mutation generator: cloning,
// structural equality, pretty-printing back to source, traversal, and
// variable inventory.
//
// A Domino program is a straight-line sequence of assignments and if/else
// statements executed atomically per packet (paper §2.1). Expressions read
// packet fields (pkt.f) and persistent state variables; assignments write
// them. There are no loops, pointers, or function calls.
package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates unary and binary operators.
type Op int

// Operators. Binary operators group by precedence in the parser; here they
// are flat.
const (
	OpAdd    Op = iota // +
	OpSub              // -
	OpMul              // *
	OpBitAnd           // &
	OpBitOr            // |
	OpBitXor           // ^
	OpShl              // <<
	OpShr              // >>
	OpEq               // ==
	OpNe               // !=
	OpLt               // <
	OpLe               // <=
	OpGt               // >
	OpGe               // >=
	OpLAnd             // &&
	OpLOr              // ||

	OpNeg    // unary -
	OpNot    // unary !
	OpBitNot // unary ~
)

var opStrings = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*",
	OpBitAnd: "&", OpBitOr: "|", OpBitXor: "^",
	OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpLAnd: "&&", OpLOr: "||",
	OpNeg: "-", OpNot: "!", OpBitNot: "~",
}

// String returns the source spelling of the operator.
func (o Op) String() string { return opStrings[o] }

// IsCommutative reports whether swapping a binary operator's operands
// preserves its value (used by the mutation generator).
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpBitAnd, OpBitOr, OpBitXor, OpEq, OpNe:
		return true
	}
	return false
}

// IsComparison reports whether the operator yields a 0/1 truth value.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLAnd, OpLOr, OpNot:
		return true
	}
	return false
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	String() string
}

// Num is an integer literal.
type Num struct {
	Value int64
}

func (*Num) exprNode() {}

func (n *Num) String() string {
	if n.Value < 0 {
		return fmt.Sprintf("(%d)", n.Value)
	}
	return fmt.Sprintf("%d", n.Value)
}

// Field reads a packet field pkt.Name.
type Field struct {
	Name string
}

func (*Field) exprNode() {}

func (f *Field) String() string { return "pkt." + f.Name }

// State reads a persistent state variable.
type State struct {
	Name string
}

func (*State) exprNode() {}

func (s *State) String() string { return s.Name }

// Unary applies a unary operator.
type Unary struct {
	Op Op
	X  Expr
}

func (*Unary) exprNode() {}

func (u *Unary) String() string { return fmt.Sprintf("%s(%s)", u.Op, u.X) }

// Binary applies a binary operator.
type Binary struct {
	Op   Op
	X, Y Expr
}

func (*Binary) exprNode() {}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.X, b.Op, b.Y)
}

// Ternary is the conditional expression Cond ? T : F.
type Ternary struct {
	Cond, T, F Expr
}

func (*Ternary) exprNode() {}

func (t *Ternary) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", t.Cond, t.T, t.F)
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
}

// LValue identifies an assignable location: a packet field or state var.
type LValue struct {
	Name    string
	IsField bool
}

// String renders the lvalue in source form.
func (l LValue) String() string {
	if l.IsField {
		return "pkt." + l.Name
	}
	return l.Name
}

// Ref returns the expression that reads this lvalue.
func (l LValue) Ref() Expr {
	if l.IsField {
		return &Field{Name: l.Name}
	}
	return &State{Name: l.Name}
}

// Assign is LHS = RHS.
type Assign struct {
	LHS LValue
	RHS Expr
}

func (*Assign) stmtNode() {}

// If is an if/else statement; Else may be empty.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*If) stmtNode() {}

// Program is a packet transaction: an ordered statement list plus declared
// initial values for state variables (zero if undeclared).
type Program struct {
	Name  string
	Stmts []Stmt
	// Init maps state variables to their declared initial value. Variables
	// absent from the map start at zero.
	Init map[string]int64
}

// --- Printing ---------------------------------------------------------------

// Print renders the program back to parseable Domino source.
func (p *Program) Print() string {
	var sb strings.Builder
	// Emit declarations in sorted order for deterministic output.
	names := make([]string, 0, len(p.Init))
	for n := range p.Init {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "int %s = %d;\n", n, p.Init[n])
	}
	printStmts(&sb, p.Stmts, 0)
	return sb.String()
}

func printStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *Assign:
			fmt.Fprintf(sb, "%s%s = %s;\n", ind, s.LHS, s.RHS)
		case *If:
			fmt.Fprintf(sb, "%sif (%s) {\n", ind, s.Cond)
			printStmts(sb, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", ind)
				printStmts(sb, s.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", ind)
		default:
			panic(fmt.Sprintf("ast: unknown statement %T", s))
		}
	}
}

// --- Cloning ----------------------------------------------------------------

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *Num:
		c := *e
		return &c
	case *Field:
		c := *e
		return &c
	case *State:
		c := *e
		return &c
	case *Unary:
		return &Unary{Op: e.Op, X: CloneExpr(e.X)}
	case *Binary:
		return &Binary{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *Ternary:
		return &Ternary{Cond: CloneExpr(e.Cond), T: CloneExpr(e.T), F: CloneExpr(e.F)}
	default:
		panic(fmt.Sprintf("ast: unknown expression %T", e))
	}
}

// CloneStmts deep-copies a statement list.
func CloneStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		switch s := s.(type) {
		case *Assign:
			out[i] = &Assign{LHS: s.LHS, RHS: CloneExpr(s.RHS)}
		case *If:
			out[i] = &If{Cond: CloneExpr(s.Cond), Then: CloneStmts(s.Then), Else: CloneStmts(s.Else)}
		default:
			panic(fmt.Sprintf("ast: unknown statement %T", s))
		}
	}
	return out
}

// Clone deep-copies a program.
func (p *Program) Clone() *Program {
	init := make(map[string]int64, len(p.Init))
	for k, v := range p.Init {
		init[k] = v
	}
	return &Program{Name: p.Name, Stmts: CloneStmts(p.Stmts), Init: init}
}

// --- Equality ----------------------------------------------------------------

// EqualExpr reports structural equality of two expressions.
func EqualExpr(a, b Expr) bool {
	switch a := a.(type) {
	case *Num:
		b, ok := b.(*Num)
		return ok && a.Value == b.Value
	case *Field:
		b, ok := b.(*Field)
		return ok && a.Name == b.Name
	case *State:
		b, ok := b.(*State)
		return ok && a.Name == b.Name
	case *Unary:
		b, ok := b.(*Unary)
		return ok && a.Op == b.Op && EqualExpr(a.X, b.X)
	case *Binary:
		b, ok := b.(*Binary)
		return ok && a.Op == b.Op && EqualExpr(a.X, b.X) && EqualExpr(a.Y, b.Y)
	case *Ternary:
		b, ok := b.(*Ternary)
		return ok && EqualExpr(a.Cond, b.Cond) && EqualExpr(a.T, b.T) && EqualExpr(a.F, b.F)
	default:
		panic(fmt.Sprintf("ast: unknown expression %T", a))
	}
}

// EqualStmts reports structural equality of two statement lists.
func EqualStmts(a, b []Stmt) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		switch sa := a[i].(type) {
		case *Assign:
			sb, ok := b[i].(*Assign)
			if !ok || sa.LHS != sb.LHS || !EqualExpr(sa.RHS, sb.RHS) {
				return false
			}
		case *If:
			sb, ok := b[i].(*If)
			if !ok || !EqualExpr(sa.Cond, sb.Cond) ||
				!EqualStmts(sa.Then, sb.Then) || !EqualStmts(sa.Else, sb.Else) {
				return false
			}
		default:
			panic(fmt.Sprintf("ast: unknown statement %T", a[i]))
		}
	}
	return true
}

// --- Traversal ---------------------------------------------------------------

// WalkExprs calls fn for every expression in the statement list, visiting
// parents before children.
func WalkExprs(stmts []Stmt, fn func(Expr)) {
	var walkE func(Expr)
	walkE = func(e Expr) {
		fn(e)
		switch e := e.(type) {
		case *Unary:
			walkE(e.X)
		case *Binary:
			walkE(e.X)
			walkE(e.Y)
		case *Ternary:
			walkE(e.Cond)
			walkE(e.T)
			walkE(e.F)
		}
	}
	var walkS func([]Stmt)
	walkS = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				walkE(s.RHS)
			case *If:
				walkE(s.Cond)
				walkS(s.Then)
				walkS(s.Else)
			}
		}
	}
	walkS(stmts)
}

// Vars is the variable inventory of a program.
type Vars struct {
	Fields []string // packet fields, sorted
	States []string // state variables, sorted
}

// Variables inventories all packet fields and state variables, in sorted
// order for determinism.
func (p *Program) Variables() Vars {
	fields := map[string]bool{}
	states := map[string]bool{}
	for n := range p.Init {
		states[n] = true
	}
	WalkExprs(p.Stmts, func(e Expr) {
		switch e := e.(type) {
		case *Field:
			fields[e.Name] = true
		case *State:
			states[e.Name] = true
		}
	})
	var walkS func([]Stmt)
	walkS = func(ss []Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *Assign:
				if s.LHS.IsField {
					fields[s.LHS.Name] = true
				} else {
					states[s.LHS.Name] = true
				}
			case *If:
				walkS(s.Then)
				walkS(s.Else)
			}
		}
	}
	walkS(p.Stmts)
	v := Vars{}
	for n := range fields {
		v.Fields = append(v.Fields, n)
	}
	for n := range states {
		v.States = append(v.States, n)
	}
	sort.Strings(v.Fields)
	sort.Strings(v.States)
	return v
}

// CountStmts returns the number of statements, counting nested bodies.
func CountStmts(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		if ifs, ok := s.(*If); ok {
			n += CountStmts(ifs.Then) + CountStmts(ifs.Else)
		}
	}
	return n
}
