package pisa

import (
	"repro/internal/arith"
	"repro/internal/circuit"
	"repro/internal/word"
)

// This file implements the backend.Config contract for *Config (the
// interface itself lives in internal/backend; Go's structural typing
// means pisa needs no import of it). Target/Vars/RunWidth expose the
// allocation metadata the generic CEGIS core and difftest oracles need,
// and Symbolic re-encodes the configured grid as a circuit — the exact
// construction cegis verification historically inlined, now owned by the
// config so every backend carries its own verification semantics.

// Target names the backend that produced this configuration.
func (c *Config) Target() string { return "pisa" }

// Vars returns the packet fields and state variables in allocation order.
func (c *Config) Vars() (fields, states []string) { return c.Fields, c.States }

// RunWidth is the datapath width the configuration is proven at.
func (c *Config) RunWidth() word.Width { return c.Grid.WordWidth }

// Symbolic renders the configured datapath at width w over free input
// words, with every hole lifted to a constant (ConstWord creates no
// gates, so hole-map iteration order cannot perturb the circuit).
func (c *Config) Symbolic(b *circuit.Builder, w word.Width, fields, states []circuit.Word) (outFields, outStates []circuit.Word) {
	g := c.Grid
	g.WordWidth = w
	holes := MapHoles(c.Values, func(v uint64) circuit.Word {
		return b.ConstWord(v, w)
	})
	cc := arith.Circ{B: b, W: w}
	return Datapath[circuit.Word](cc, g, holes, fields, states)
}
