package pisa

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/alu"
	"repro/internal/arith"
	"repro/internal/circuit"
	"repro/internal/word"
)

func testGrid(stages, width int, kind alu.Kind) GridSpec {
	return GridSpec{
		Stages:       stages,
		Width:        width,
		WordWidth:    5,
		StatelessALU: alu.Stateless{},
		StatefulALU:  alu.Stateful{Kind: kind},
	}
}

// randomConfig fills every hole with a random in-range value and activates
// each used state slot in exactly one random stage.
func randomConfig(rng *rand.Rand, g GridSpec, fields, states []string) *Config {
	holeBits := map[string]int{}
	h := NewHoles[uint64](g, false, len(fields), func(name string, bits int, data bool) uint64 {
		holeBits[name] = bits
		return rng.Uint64() & ((1 << uint(bits)) - 1)
	})
	// Rewrite SaluActive to satisfy the exactly-one-stage constraint.
	ns := g.StatefulALU.NumStates()
	usedSlots := (len(states) + ns - 1) / ns
	for j := 0; j < g.Width; j++ {
		for i := 0; i < g.Stages; i++ {
			h.SaluActive[i][j] = 0
		}
		if j < usedSlots {
			h.SaluActive[rng.Intn(g.Stages)][j] = 1
		}
	}
	return &Config{Grid: g, Fields: fields, States: states, Values: h}
}

func TestGridSpecValidate(t *testing.T) {
	if err := testGrid(2, 2, alu.IfElseRaw).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (GridSpec{Stages: 0, Width: 2, WordWidth: 5}).Validate(); err == nil {
		t.Fatal("0 stages should fail")
	}
	if err := (GridSpec{Stages: 1, Width: 0, WordWidth: 5}).Validate(); err == nil {
		t.Fatal("0 width should fail")
	}
	if err := (GridSpec{Stages: 1, Width: 1, WordWidth: 0}).Validate(); err == nil {
		t.Fatal("0 word width should fail")
	}
}

func TestMuxBits(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := MuxBits(n); got != want {
			t.Errorf("MuxBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestStateSlots(t *testing.T) {
	if got := testGrid(2, 3, alu.Counter).StateSlots(); got != 3 {
		t.Fatalf("counter slots = %d, want 3", got)
	}
	if got := testGrid(2, 3, alu.Pair).StateSlots(); got != 6 {
		t.Fatalf("pair slots = %d, want 6", got)
	}
}

// TestDatapathSymbolicMatchesConcrete is the package's core soundness
// property: instantiating the datapath with circuit words and evaluating
// the circuit equals executing it concretely, for random configurations,
// inputs, and every stateful ALU kind.
func TestDatapathSymbolicMatchesConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, kind := range []alu.Kind{alu.Counter, alu.PredRaw, alu.IfElseRaw, alu.Sub, alu.NestedIfs, alu.Pair} {
		g := testGrid(2, 2, kind)
		w := g.WordWidth
		fields := []string{"f0", "f1"}
		states := []string{"s0"}

		// Build the symbolic datapath with input words for holes and data.
		b := circuit.New()
		circ := arith.Circ{B: b, W: w}
		holeInputs := map[string]circuit.Word{}
		symHoles := NewHoles[circuit.Word](g, false, len(fields), func(name string, bits int, data bool) circuit.Word {
			in := b.InputWord(name, word.Width(bits))
			holeInputs[name] = in
			wide := make(circuit.Word, w)
			copy(wide, in)
			for i := bits; i < int(w); i++ {
				wide[i] = circuit.False
			}
			return wide
		})
		symFields := []circuit.Word{b.InputWord("f0", w), b.InputWord("f1", w)}
		symStates := []circuit.Word{b.InputWord("s0", w)}
		outF, outS := Datapath[circuit.Word](circ, g, symHoles, symFields, symStates)

		for trial := 0; trial < 40; trial++ {
			cfg := randomConfig(rng, g, fields, states)
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			pkt := map[string]uint64{"f0": w.Trunc(rng.Uint64()), "f1": w.Trunc(rng.Uint64())}
			st := map[string]uint64{"s0": w.Trunc(rng.Uint64())}
			gotPkt, gotSt := cfg.Exec(pkt, st)

			// Evaluate the symbolic datapath under the same hole values.
			assign := map[circuit.Bit]bool{}
			assignHoles := func(m map[string]uint64, prefix string) {
				for k, v := range m {
					circuit.SetWordInputs(assign, holeInputs[prefix+k], v)
				}
			}
			for i := 0; i < g.Stages; i++ {
				for j := 0; j < g.Width; j++ {
					assignHoles(cfg.Values.Stateless[i][j], sprintfName("stateless", i, j))
					assignHoles(cfg.Values.Stateful[i][j], sprintfName("stateful", i, j))
					circuit.SetWordInputs(assign, holeInputs[sprintfOmux(i, j)], cfg.Values.OMux[i][j])
					circuit.SetWordInputs(assign, holeInputs[sprintfSalu(i, j)], cfg.Values.SaluActive[i][j])
				}
			}
			circuit.SetWordInputs(assign, symFields[0], pkt["f0"])
			circuit.SetWordInputs(assign, symFields[1], pkt["f1"])
			circuit.SetWordInputs(assign, symStates[0], st["s0"])

			if got := b.EvalWord(assign, outF[0]); got != gotPkt["f0"] {
				t.Fatalf("%s trial %d: f0 circuit=%d concrete=%d", kind, trial, got, gotPkt["f0"])
			}
			if got := b.EvalWord(assign, outF[1]); got != gotPkt["f1"] {
				t.Fatalf("%s trial %d: f1 circuit=%d concrete=%d", kind, trial, got, gotPkt["f1"])
			}
			if got := b.EvalWord(assign, outS[0]); got != gotSt["s0"] {
				t.Fatalf("%s trial %d: s0 circuit=%d concrete=%d", kind, trial, got, gotSt["s0"])
			}
		}
	}
}

func sprintfName(prefix string, i, j int) string {
	return prefix + "_" + itoa(i) + "_" + itoa(j) + "_"
}
func sprintfOmux(i, j int) string { return "omux_" + itoa(i) + "_" + itoa(j) }
func sprintfSalu(i, j int) string { return "salu_active_" + itoa(i) + "_" + itoa(j) }
func itoa(n int) string           { return string(rune('0' + n)) }

// TestHandBuiltIncrementConfig wires a 1x1 grid whose stateless path adds an
// immediate to the only field and checks Exec end to end.
func TestHandBuiltIncrementConfig(t *testing.T) {
	g := testGrid(1, 1, alu.Counter)
	h := NewHoles[uint64](g, false, 1, func(string, int, bool) uint64 { return 0 })
	h.Stateless[0][0]["opcode"] = alu.SlOpAddImm
	h.Stateless[0][0]["imm"] = 3
	h.Stateless[0][0]["imux1"] = 0
	h.OMux[0][0] = 1 // width(1) == index 1 -> own stateless ALU
	cfg := &Config{Grid: g, Fields: []string{"x"}, States: nil, Values: h}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	outPkt, _ := cfg.Exec(map[string]uint64{"x": 30}, nil)
	if outPkt["x"] != 1 { // 30+3 mod 32 at width 5
		t.Fatalf("x = %d, want 1", outPkt["x"])
	}
}

// TestHandBuiltCounterConfig exercises a stateful counter across packets:
// state accumulates, and the old value is exported through the output mux.
func TestHandBuiltCounterConfig(t *testing.T) {
	g := testGrid(1, 1, alu.Counter)
	h := NewHoles[uint64](g, false, 1, func(string, int, bool) uint64 { return 0 })
	h.Stateful[0][0]["mode"] = 0  // state += const
	h.Stateful[0][0]["const"] = 2 //
	h.Stateful[0][0]["imux0"] = 0
	h.SaluActive[0][0] = 1
	h.OMux[0][0] = 0 // container <- stateful ALU output (old state)
	cfg := &Config{Grid: g, Fields: []string{"seen"}, States: []string{"cnt"}, Values: h}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	state := map[string]uint64{"cnt": 0}
	for i := 0; i < 4; i++ {
		var pkt map[string]uint64
		pkt, state = cfg.Exec(map[string]uint64{"seen": 99}, state)
		if pkt["seen"] != uint64(2*i) {
			t.Fatalf("packet %d: seen=%d, want %d", i, pkt["seen"], 2*i)
		}
	}
	if state["cnt"] != 8 {
		t.Fatalf("cnt = %d, want 8", state["cnt"])
	}
}

func TestConfigValidateRejectsBadStateAllocation(t *testing.T) {
	g := testGrid(2, 1, alu.Counter)
	h := NewHoles[uint64](g, false, 0, func(string, int, bool) uint64 { return 0 })
	cfg := &Config{Grid: g, Fields: nil, States: []string{"s"}, Values: h}
	if err := cfg.Validate(); err == nil {
		t.Fatal("state never activated should fail validation")
	}
	h.SaluActive[0][0], h.SaluActive[1][0] = 1, 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("state active twice should fail validation")
	}
	h.SaluActive[1][0] = 0
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRejectsOverflow(t *testing.T) {
	g := testGrid(1, 1, alu.Counter)
	h := NewHoles[uint64](g, false, 0, func(string, int, bool) uint64 { return 0 })
	cfg := &Config{Grid: g, Fields: []string{"a", "b"}, Values: h}
	if err := cfg.Validate(); err == nil {
		t.Fatal("2 fields into 1 container should fail")
	}
	cfg = &Config{Grid: g, Fields: nil, States: []string{"x", "y"}, Values: h}
	if err := cfg.Validate(); err == nil {
		t.Fatal("2 states into 1 slot should fail")
	}
}

func TestIndicatorAllocationValidation(t *testing.T) {
	g := testGrid(1, 2, alu.Counter)
	h := NewHoles[uint64](g, true, 2, func(string, int, bool) uint64 { return 0 })
	cfg := &Config{Grid: g, Fields: []string{"a", "b"}, Values: h}
	if err := cfg.Validate(); err == nil {
		t.Fatal("all-zero indicator matrix should fail")
	}
	h.FieldAlloc[0][0], h.FieldAlloc[1][1] = 1, 1
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two fields in one container.
	h.FieldAlloc[1][1] = 0
	h.FieldAlloc[1][0] = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("two fields sharing a container should fail")
	}
}

// TestIndicatorAllocationRouting checks the swapped allocation actually
// routes fields through swapped containers (Figure 4's premise).
func TestIndicatorAllocationRouting(t *testing.T) {
	g := testGrid(1, 2, alu.Counter)
	h := NewHoles[uint64](g, true, 2, func(string, int, bool) uint64 { return 0 })
	// Swap: field 0 -> container 1, field 1 -> container 0.
	h.FieldAlloc[0][1] = 1
	h.FieldAlloc[1][0] = 1
	// Identity datapath: each container passes itself through.
	for j := 0; j < 2; j++ {
		h.Stateless[0][j]["opcode"] = alu.SlOpPassA
		h.Stateless[0][j]["imux1"] = uint64(j)
		h.OMux[0][j] = 2 // own stateless output
	}
	cfg := &Config{Grid: g, Fields: []string{"a", "b"}, Values: h}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	outPkt, _ := cfg.Exec(map[string]uint64{"a": 3, "b": 9}, nil)
	if outPkt["a"] != 3 || outPkt["b"] != 9 {
		t.Fatalf("swapped allocation should still be the identity: %v", outPkt)
	}
}

func TestUsageAccounting(t *testing.T) {
	g := testGrid(3, 2, alu.Counter)
	h := NewHoles[uint64](g, false, 2, func(string, int, bool) uint64 { return 0 })
	// Make every stage a pass-through first.
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			h.Stateless[i][j]["opcode"] = alu.SlOpPassA
			h.Stateless[i][j]["imux1"] = uint64(j)
			h.OMux[i][j] = 2 // own stateless (pass-through)
		}
	}
	cfg := &Config{Grid: g, Fields: []string{"a", "b"}, Values: h}
	u := cfg.Usage()
	if u.Stages != 0 || u.MaxALUsPerStage != 0 || u.TotalALUs != 0 {
		t.Fatalf("pure pass-through should use nothing: %+v", u)
	}
	// Real work in stage 0 only.
	h.Stateless[0][0]["opcode"] = alu.SlOpAddImm
	u = cfg.Usage()
	if u.Stages != 1 || u.MaxALUsPerStage != 1 || u.TotalALUs != 1 {
		t.Fatalf("one ALU in stage 0: %+v", u)
	}
	// A stateful ALU active in stage 2 extends the used depth.
	h.SaluActive[2][1] = 1
	cfg.States = []string{"s"}
	// Move the state slot to slot 0 for validation simplicity? Slot 1 is
	// used here; validation requires slot 0 for 1 state. Skip validation
	// and just count.
	u = cfg.Usage()
	if u.Stages != 3 || u.TotalALUs != 2 {
		t.Fatalf("stateful in stage 2: %+v", u)
	}
}

func TestConfigJSONRoundtrip(t *testing.T) {
	g := testGrid(1, 2, alu.IfElseRaw)
	rng := rand.New(rand.NewSource(1))
	cfg := randomConfig(rng, g, []string{"a"}, []string{"s"})
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	pkt := map[string]uint64{"a": 7}
	st := map[string]uint64{"s": 3}
	p1, s1 := cfg.Exec(pkt, st)
	p2, s2 := back.Exec(pkt, st)
	if p1["a"] != p2["a"] || s1["s"] != s2["s"] {
		t.Fatal("JSON roundtrip changed behaviour")
	}
}

func TestConfigString(t *testing.T) {
	g := testGrid(1, 1, alu.Counter)
	h := NewHoles[uint64](g, false, 1, func(string, int, bool) uint64 { return 0 })
	h.SaluActive[0][0] = 1
	cfg := &Config{Grid: g, Fields: []string{"x"}, States: []string{"s"}, Values: h}
	s := cfg.String()
	for _, want := range []string{"stage 0", "stateless[0]", "stateful[0] (active)", "container[0]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestExecDoesNotMutateInputs(t *testing.T) {
	g := testGrid(1, 1, alu.Counter)
	h := NewHoles[uint64](g, false, 1, func(string, int, bool) uint64 { return 0 })
	h.Stateless[0][0]["opcode"] = alu.SlOpAddImm
	h.Stateless[0][0]["imm"] = 1
	h.OMux[0][0] = 1
	cfg := &Config{Grid: g, Fields: []string{"x"}, Values: h}
	pkt := map[string]uint64{"x": 5}
	st := map[string]uint64{}
	cfg.Exec(pkt, st)
	if pkt["x"] != 5 {
		t.Fatal("Exec mutated the input packet")
	}
}

// TestExecIntoMatchesExec pins the allocation-free concrete path to the
// generic Datapath across every stateful ALU template, canonical and
// indicator field allocation, and word widths both wider and narrower than
// the control holes (narrow widths exercise the truncating mux-selector
// aliasing ExecInto must reproduce bit for bit).
func TestExecIntoMatchesExec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	allFields := []string{"a", "b", "c", "d"}
	kinds := []alu.Kind{alu.Counter, alu.PredRaw, alu.IfElseRaw, alu.Sub, alu.NestedIfs, alu.Pair}
	for _, kind := range kinds {
		for _, ww := range []int{2, 3, 5, 8} {
			for trial := 0; trial < 25; trial++ {
				g := testGrid(1+rng.Intn(3), 1+rng.Intn(3), kind)
				g.WordWidth = word.Width(ww)
				nf := rng.Intn(min(len(allFields), g.Width) + 1)
				fields := allFields[:nf]
				states := make([]string, rng.Intn(g.StateSlots()+1))
				for i := range states {
					states[i] = fmt.Sprintf("s%d", i)
				}
				cfg := randomConfig(rng, g, fields, states)
				if rng.Intn(2) == 0 && nf > 0 {
					// Indicator allocation: a random partial permutation.
					perm := rng.Perm(g.Width)
					cfg.Values.FieldAlloc = make([][]uint64, nf)
					for f := range cfg.Values.FieldAlloc {
						cfg.Values.FieldAlloc[f] = make([]uint64, g.Width)
						cfg.Values.FieldAlloc[f][perm[f]] = 1
					}
				}
				if err := cfg.Validate(); err != nil {
					t.Fatalf("%v/w%d: invalid fixture: %v", kind, ww, err)
				}
				scratch := cfg.NewScratch()
				fv := make([]uint64, len(fields))
				sv := make([]uint64, len(states))
				for probe := 0; probe < 20; probe++ {
					pkt := map[string]uint64{}
					st := map[string]uint64{}
					for i, f := range fields {
						fv[i] = rng.Uint64()
						pkt[f] = fv[i]
					}
					for i, s := range states {
						sv[i] = rng.Uint64()
						st[s] = sv[i]
					}
					outPkt, outSt := cfg.Exec(pkt, st)
					cfg.ExecInto(scratch, fv, sv)
					for i, f := range fields {
						if fv[i] != outPkt[f] {
							t.Fatalf("%v/w%d trial %d: field %s: ExecInto=%d Exec=%d\n%s",
								kind, ww, trial, f, fv[i], outPkt[f], cfg)
						}
					}
					for i, s := range states {
						if sv[i] != outSt[s] {
							t.Fatalf("%v/w%d trial %d: state %s: ExecInto=%d Exec=%d\n%s",
								kind, ww, trial, s, sv[i], outSt[s], cfg)
						}
					}
				}
			}
		}
	}
}

// TestExecIntoDoesNotAllocate is the contract the hot loops depend on.
func TestExecIntoDoesNotAllocate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testGrid(3, 2, alu.Pair)
	cfg := randomConfig(rng, g, []string{"a", "b"}, []string{"s0", "s1", "s2"})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	scratch := cfg.NewScratch()
	fv := []uint64{5, 9}
	sv := []uint64{1, 2, 3}
	allocs := testing.AllocsPerRun(200, func() { cfg.ExecInto(scratch, fv, sv) })
	if allocs != 0 {
		t.Fatalf("ExecInto allocates %.1f objects per packet, want 0", allocs)
	}
}
