// Package interp executes Domino packet transactions with the paper's
// transactional semantics (§2.1): a program runs from start to finish
// atomically over one packet at a time, reading and writing packet fields
// and persistent switch state.
//
// The interpreter is the reference semantics for the entire repository. It
// serves as the specification oracle S(x) in the CEGIS loop (paper Figure 3
// and Equations 1–3), as the ground truth the mutation generator must
// preserve, and as the differential-test reference for the PISA simulator
// running synthesized configurations. All arithmetic is w-bit
// two's-complement via internal/word.
package interp

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/word"
)

// Snapshot is the (packet, state) pair that a packet transaction maps to a
// new (packet, state) pair — the StateAndPacket struct of the paper's
// Appendix A sketch.
type Snapshot struct {
	Pkt   map[string]uint64
	State map[string]uint64
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() Snapshot {
	return Snapshot{Pkt: map[string]uint64{}, State: map[string]uint64{}}
}

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	c := Snapshot{
		Pkt:   make(map[string]uint64, len(s.Pkt)),
		State: make(map[string]uint64, len(s.State)),
	}
	for k, v := range s.Pkt {
		c.Pkt[k] = v
	}
	for k, v := range s.State {
		c.State[k] = v
	}
	return c
}

// Equal reports whether two snapshots agree on the given field and state
// names (missing keys read as zero, matching the language semantics).
func (s Snapshot) Equal(o Snapshot, fields, states []string) bool {
	for _, f := range fields {
		if s.Pkt[f] != o.Pkt[f] {
			return false
		}
	}
	for _, st := range states {
		if s.State[st] != o.State[st] {
			return false
		}
	}
	return true
}

// String renders the snapshot deterministically for error messages.
func (s Snapshot) String() string {
	render := func(m map[string]uint64, prefix string) string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := ""
		for _, k := range keys {
			out += fmt.Sprintf(" %s%s=%d", prefix, k, m[k])
		}
		return out
	}
	return "{" + render(s.Pkt, "pkt.") + render(s.State, "") + " }"
}

// Interp evaluates programs at a fixed bit width.
type Interp struct {
	width word.Width
}

// New returns an interpreter at width w.
func New(w word.Width) (*Interp, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &Interp{width: w}, nil
}

// MustNew is New for known-valid widths.
func MustNew(w word.Width) *Interp {
	in, err := New(w)
	if err != nil {
		panic(err)
	}
	return in
}

// Width returns the interpreter's bit width.
func (in *Interp) Width() word.Width { return in.width }

// Run executes one packet transaction. The input snapshot is not modified;
// state variables declared in the program's Init map but absent from the
// input snapshot start at their declared initial value.
func (in *Interp) Run(p *ast.Program, input Snapshot) (Snapshot, error) {
	out := input.Clone()
	for name, init := range p.Init {
		if _, ok := out.State[name]; !ok {
			out.State[name] = in.width.FromInt(init)
		}
	}
	if err := in.runStmts(p.Stmts, &out); err != nil {
		return Snapshot{}, fmt.Errorf("interp: %s: %w", p.Name, err)
	}
	return out, nil
}

func (in *Interp) runStmts(stmts []ast.Stmt, env *Snapshot) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			v, err := in.Eval(s.RHS, env)
			if err != nil {
				return err
			}
			if s.LHS.IsField {
				env.Pkt[s.LHS.Name] = v
			} else {
				env.State[s.LHS.Name] = v
			}
		case *ast.If:
			c, err := in.Eval(s.Cond, env)
			if err != nil {
				return err
			}
			if word.Truthy(c) {
				if err := in.runStmts(s.Then, env); err != nil {
					return err
				}
			} else if err := in.runStmts(s.Else, env); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown statement type %T", s)
		}
	}
	return nil
}

// Eval evaluates an expression against a snapshot.
func (in *Interp) Eval(e ast.Expr, env *Snapshot) (uint64, error) {
	w := in.width
	switch e := e.(type) {
	case *ast.Num:
		return w.FromInt(e.Value), nil
	case *ast.Field:
		return w.Trunc(env.Pkt[e.Name]), nil
	case *ast.State:
		return w.Trunc(env.State[e.Name]), nil
	case *ast.Unary:
		x, err := in.Eval(e.X, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case ast.OpNeg:
			return w.Neg(x), nil
		case ast.OpNot:
			return word.LNot(x), nil
		case ast.OpBitNot:
			return w.Not(x), nil
		default:
			return 0, fmt.Errorf("unknown unary operator %v", e.Op)
		}
	case *ast.Binary:
		// Logical operators short-circuit, per C. The result is identical
		// to full evaluation in this pure language, but short-circuiting
		// here keeps the reference semantics obviously C-compatible.
		if e.Op == ast.OpLAnd || e.Op == ast.OpLOr {
			x, err := in.Eval(e.X, env)
			if err != nil {
				return 0, err
			}
			if e.Op == ast.OpLAnd && !word.Truthy(x) {
				return 0, nil
			}
			if e.Op == ast.OpLOr && word.Truthy(x) {
				return 1, nil
			}
			y, err := in.Eval(e.Y, env)
			if err != nil {
				return 0, err
			}
			return word.Bool(word.Truthy(y)), nil
		}
		x, err := in.Eval(e.X, env)
		if err != nil {
			return 0, err
		}
		y, err := in.Eval(e.Y, env)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case ast.OpAdd:
			return w.Add(x, y), nil
		case ast.OpSub:
			return w.Sub(x, y), nil
		case ast.OpMul:
			return w.Mul(x, y), nil
		case ast.OpBitAnd:
			return w.And(x, y), nil
		case ast.OpBitOr:
			return w.Or(x, y), nil
		case ast.OpBitXor:
			return w.Xor(x, y), nil
		case ast.OpShl:
			return w.Shl(x, y), nil
		case ast.OpShr:
			return w.Shr(x, y), nil
		case ast.OpEq:
			return w.Eq(x, y), nil
		case ast.OpNe:
			return w.Ne(x, y), nil
		case ast.OpLt:
			return w.Lt(x, y), nil
		case ast.OpLe:
			return w.Le(x, y), nil
		case ast.OpGt:
			return w.Gt(x, y), nil
		case ast.OpGe:
			return w.Ge(x, y), nil
		default:
			return 0, fmt.Errorf("unknown binary operator %v", e.Op)
		}
	case *ast.Ternary:
		c, err := in.Eval(e.Cond, env)
		if err != nil {
			return 0, err
		}
		if word.Truthy(c) {
			return in.Eval(e.T, env)
		}
		return in.Eval(e.F, env)
	default:
		return 0, fmt.Errorf("unknown expression type %T", e)
	}
}

// Equivalent exhaustively checks that two programs compute the same
// transaction over every (packet, state) input at the interpreter's width.
// It is feasible only for small widths and variable counts; the CEGIS
// verification phase uses the SAT backend for larger spaces. It returns the
// first differing input, if any.
func (in *Interp) Equivalent(a, b *ast.Program) (bool, Snapshot, error) {
	va, vb := a.Variables(), b.Variables()
	fields := unionSorted(va.Fields, vb.Fields)
	states := unionSorted(va.States, vb.States)
	nVars := len(fields) + len(states)
	totalBits := nVars * int(in.width)
	if totalBits > 24 {
		return false, Snapshot{}, fmt.Errorf("interp: exhaustive check over %d bits is infeasible", totalBits)
	}
	size := in.width.Size()
	counts := make([]uint64, nVars)
	for {
		input := NewSnapshot()
		for i, f := range fields {
			input.Pkt[f] = counts[i]
		}
		for i, s := range states {
			input.State[s] = counts[len(fields)+i]
		}
		ra, err := in.Run(a, input)
		if err != nil {
			return false, Snapshot{}, err
		}
		rb, err := in.Run(b, input)
		if err != nil {
			return false, Snapshot{}, err
		}
		if !ra.Equal(rb, fields, states) {
			return false, input, nil
		}
		// Odometer increment.
		i := 0
		for ; i < nVars; i++ {
			counts[i]++
			if counts[i] < size {
				break
			}
			counts[i] = 0
		}
		if i == nVars {
			return true, Snapshot{}, nil
		}
	}
}

func unionSorted(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
