package interp

import (
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/word"
)

func run(t *testing.T, w word.Width, src string, in Snapshot) Snapshot {
	t.Helper()
	p, err := parser.Parse("test", src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := MustNew(w).Run(p, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSamplingTransaction(t *testing.T) {
	// Figure 2: sample every 11th packet.
	src := `
int count = 0;
if (count == 10) {
  count = 0;
  pkt.sample = 1;
} else {
  count = count + 1;
  pkt.sample = 0;
}
`
	p := parser.MustParse("sampling", src)
	in := MustNew(8)
	snap := NewSnapshot()
	samples := 0
	for i := 0; i < 22; i++ {
		out, err := in.Run(p, snap)
		if err != nil {
			t.Fatal(err)
		}
		if out.Pkt["sample"] == 1 {
			samples++
			if (i+1)%11 != 0 {
				t.Fatalf("packet %d sampled, expected only every 11th", i)
			}
		}
		snap.State = out.State
		snap.Pkt = map[string]uint64{}
	}
	if samples != 2 {
		t.Fatalf("sampled %d of 22 packets, want 2", samples)
	}
}

func TestInitialValues(t *testing.T) {
	out := run(t, 8, "int x = 7; pkt.a = x;", NewSnapshot())
	if out.Pkt["a"] != 7 {
		t.Fatalf("pkt.a = %d, want 7", out.Pkt["a"])
	}
	// Explicit input state overrides the declared initial value.
	in := NewSnapshot()
	in.State["x"] = 3
	out = run(t, 8, "int x = 7; pkt.a = x;", in)
	if out.Pkt["a"] != 3 {
		t.Fatalf("pkt.a = %d, want 3 (input state wins)", out.Pkt["a"])
	}
}

func TestNegativeInitWraps(t *testing.T) {
	out := run(t, 8, "int x = -1; pkt.a = x;", NewSnapshot())
	if out.Pkt["a"] != 255 {
		t.Fatalf("pkt.a = %d, want 255", out.Pkt["a"])
	}
}

func TestOperatorSemantics(t *testing.T) {
	cases := []struct {
		expr string
		a, b uint64
		want uint64
	}{
		{"pkt.a + pkt.b", 250, 10, 4}, // 8-bit wrap
		{"pkt.a - pkt.b", 3, 5, 254},
		{"pkt.a * pkt.b", 16, 16, 0},
		{"pkt.a & pkt.b", 0xF0, 0x3C, 0x30},
		{"pkt.a | pkt.b", 0xF0, 0x0C, 0xFC},
		{"pkt.a ^ pkt.b", 0xFF, 0x0F, 0xF0},
		{"pkt.a << pkt.b", 1, 3, 8},
		{"pkt.a << pkt.b", 1, 9, 0}, // overshift
		{"pkt.a >> pkt.b", 0x80, 4, 8},
		{"pkt.a == pkt.b", 5, 5, 1},
		{"pkt.a != pkt.b", 5, 5, 0},
		{"pkt.a < pkt.b", 255, 1, 1}, // signed: -1 < 1
		{"pkt.a > pkt.b", 255, 1, 0},
		{"pkt.a <= pkt.b", 7, 7, 1},
		{"pkt.a >= pkt.b", 128, 127, 0}, // signed: -128 < 127
		{"pkt.a && pkt.b", 9, 0, 0},
		{"pkt.a && pkt.b", 9, 2, 1},
		{"pkt.a || pkt.b", 0, 0, 0},
		{"pkt.a || pkt.b", 0, 5, 1},
		{"!pkt.a", 0, 99, 1},
		{"!pkt.a", 3, 99, 0},
		{"~pkt.a", 0x0F, 99, 0xF0},
		{"-pkt.a", 1, 99, 255},
		{"pkt.a ? pkt.b : 42", 1, 7, 7},
		{"pkt.a ? pkt.b : 42", 0, 7, 42},
	}
	for _, c := range cases {
		in := NewSnapshot()
		in.Pkt["a"], in.Pkt["b"] = c.a, c.b
		out := run(t, 8, "pkt.r = "+c.expr+";", in)
		if out.Pkt["r"] != c.want {
			t.Errorf("%s with a=%d b=%d = %d, want %d", c.expr, c.a, c.b, out.Pkt["r"], c.want)
		}
	}
}

func TestSequencingWithinTransaction(t *testing.T) {
	// Later statements see earlier writes.
	src := "pkt.a = 1; pkt.b = pkt.a + 1; pkt.a = pkt.b * 2;"
	out := run(t, 8, src, NewSnapshot())
	if out.Pkt["a"] != 4 || out.Pkt["b"] != 2 {
		t.Fatalf("a=%d b=%d, want 4, 2", out.Pkt["a"], out.Pkt["b"])
	}
}

func TestNestedIf(t *testing.T) {
	src := `
if (pkt.x > 0) {
  if (pkt.x > 10) { pkt.r = 2; } else { pkt.r = 1; }
} else {
  pkt.r = 0;
}
`
	for _, c := range []struct{ x, want uint64 }{{0, 0}, {5, 1}, {20, 2}, {200, 0}} {
		in := NewSnapshot()
		in.Pkt["x"] = c.x
		out := run(t, 8, src, in)
		if out.Pkt["r"] != c.want {
			t.Errorf("x=%d: r=%d, want %d", c.x, out.Pkt["r"], c.want)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	p := parser.MustParse("t", "pkt.a = 5; s = 6;")
	in := NewSnapshot()
	in.Pkt["a"] = 1
	in.State["s"] = 2
	if _, err := MustNew(8).Run(p, in); err != nil {
		t.Fatal(err)
	}
	if in.Pkt["a"] != 1 || in.State["s"] != 2 {
		t.Fatal("Run must not mutate its input snapshot")
	}
}

func TestEquivalentDetectsEquality(t *testing.T) {
	a := parser.MustParse("a", "pkt.r = pkt.x + pkt.y;")
	b := parser.MustParse("b", "pkt.r = pkt.y + pkt.x;")
	in := MustNew(4)
	eq, _, err := in.Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("commuted add should be equivalent")
	}
}

func TestEquivalentFindsCounterexample(t *testing.T) {
	a := parser.MustParse("a", "pkt.r = pkt.x - pkt.y;")
	b := parser.MustParse("b", "pkt.r = pkt.y - pkt.x;")
	in := MustNew(4)
	eq, cex, err := in.Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("sub is not commutative; expected counterexample")
	}
	// The counterexample must actually distinguish the programs.
	ra, _ := in.Run(a, cex)
	rb, _ := in.Run(b, cex)
	if ra.Pkt["r"] == rb.Pkt["r"] {
		t.Fatalf("counterexample %v does not distinguish programs", cex)
	}
}

func TestEquivalentRefusesHugeSpace(t *testing.T) {
	a := parser.MustParse("a", "pkt.r = pkt.a + pkt.b + pkt.c + pkt.d;")
	in := MustNew(10)
	if _, _, err := in.Equivalent(a, a); err == nil {
		t.Fatal("expected infeasibility error for 50-bit input space")
	}
}

// TestInterpMatchesWordQuick property-tests arbitrary three-op expressions
// against direct word arithmetic.
func TestInterpMatchesWordQuick(t *testing.T) {
	const w = word.Width(8)
	p := parser.MustParse("q", "pkt.r = (pkt.a + pkt.b) * pkt.c - (pkt.a ^ pkt.c);")
	in := MustNew(w)
	f := func(a, b, c uint8) bool {
		snap := NewSnapshot()
		snap.Pkt["a"], snap.Pkt["b"], snap.Pkt["c"] = uint64(a), uint64(b), uint64(c)
		out, err := in.Run(p, snap)
		if err != nil {
			return false
		}
		want := w.Sub(w.Mul(w.Add(uint64(a), uint64(b)), uint64(c)), w.Xor(uint64(a), uint64(c)))
		return out.Pkt["r"] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotEqual(t *testing.T) {
	a, b := NewSnapshot(), NewSnapshot()
	a.Pkt["x"] = 0 // explicit zero equals missing key
	if !a.Equal(b, []string{"x"}, nil) {
		t.Fatal("explicit zero should equal missing key")
	}
	b.Pkt["x"] = 1
	if a.Equal(b, []string{"x"}, nil) {
		t.Fatal("differing field not detected")
	}
	if !a.Equal(b, nil, nil) {
		t.Fatal("equality over no keys should hold")
	}
}

func TestSnapshotString(t *testing.T) {
	s := NewSnapshot()
	s.Pkt["b"], s.Pkt["a"], s.State["z"] = 2, 1, 3
	if got := s.String(); got != "{ pkt.a=1 pkt.b=2 z=3 }" {
		t.Fatalf("String() = %q", got)
	}
}

func TestWidthValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("width 0 should be rejected")
	}
	if _, err := New(word.MaxWidth + 1); err == nil {
		t.Fatal("width beyond MaxWidth should be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on invalid width")
		}
	}()
	MustNew(0)
}

func TestCloneIndependence(t *testing.T) {
	s := NewSnapshot()
	s.Pkt["a"] = 1
	c := s.Clone()
	c.Pkt["a"] = 2
	if s.Pkt["a"] != 1 {
		t.Fatal("Clone must be independent")
	}
}

func TestEvalUnknownExprType(t *testing.T) {
	in := MustNew(8)
	snap := NewSnapshot()
	if _, err := in.Eval(nil, &snap); err == nil {
		t.Fatal("expected error for unknown expression type")
	}
}
