package interp

import (
	"testing"

	"repro/internal/ast"
)

func TestRunUnknownStatement(t *testing.T) {
	prog := &ast.Program{Name: "bad", Stmts: []ast.Stmt{nil}, Init: map[string]int64{}}
	if _, err := MustNew(8).Run(prog, NewSnapshot()); err == nil {
		t.Fatal("nil statement should error")
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	in := MustNew(8)
	env := NewSnapshot()
	// Errors inside composite expressions must propagate up.
	exprs := []ast.Expr{
		&ast.Unary{Op: ast.OpNeg, X: nil},
		&ast.Binary{Op: ast.OpAdd, X: nil, Y: &ast.Num{Value: 1}},
		&ast.Binary{Op: ast.OpAdd, X: &ast.Num{Value: 1}, Y: nil},
		&ast.Binary{Op: ast.OpLAnd, X: nil, Y: &ast.Num{Value: 1}},
		&ast.Binary{Op: ast.OpLAnd, X: &ast.Num{Value: 1}, Y: nil},
		&ast.Ternary{Cond: nil, T: &ast.Num{Value: 1}, F: &ast.Num{Value: 2}},
		&ast.Ternary{Cond: &ast.Num{Value: 1}, T: nil, F: &ast.Num{Value: 2}},
		&ast.Ternary{Cond: &ast.Num{Value: 0}, T: &ast.Num{Value: 1}, F: nil},
	}
	for i, e := range exprs {
		if _, err := in.Eval(e, &env); err == nil {
			t.Errorf("expr %d: expected error", i)
		}
	}
}

func TestEvalUnknownOperator(t *testing.T) {
	in := MustNew(8)
	env := NewSnapshot()
	if _, err := in.Eval(&ast.Unary{Op: ast.Op(999), X: &ast.Num{Value: 1}}, &env); err == nil {
		t.Fatal("unknown unary op should error")
	}
	if _, err := in.Eval(&ast.Binary{Op: ast.Op(999), X: &ast.Num{Value: 1}, Y: &ast.Num{Value: 2}}, &env); err == nil {
		t.Fatal("unknown binary op should error")
	}
}

func TestEquivalentPropagatesRunErrors(t *testing.T) {
	good := &ast.Program{Name: "g", Stmts: []ast.Stmt{
		&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: &ast.Num{Value: 1}},
	}, Init: map[string]int64{}}
	bad := &ast.Program{Name: "b", Stmts: []ast.Stmt{
		&ast.Assign{LHS: ast.LValue{Name: "a", IsField: true}, RHS: nil},
	}, Init: map[string]int64{}}
	in := MustNew(3)
	if _, _, err := in.Equivalent(good, bad); err == nil {
		t.Fatal("evaluation error should propagate from Equivalent")
	}
	if _, _, err := in.Equivalent(bad, good); err == nil {
		t.Fatal("evaluation error should propagate from Equivalent (first arg)")
	}
}

func TestIfErrorPaths(t *testing.T) {
	in := MustNew(8)
	mkIf := func(cond ast.Expr, then, els []ast.Stmt) *ast.Program {
		return &ast.Program{Name: "t", Stmts: []ast.Stmt{
			&ast.If{Cond: cond, Then: then, Else: els},
		}, Init: map[string]int64{}}
	}
	badAssign := []ast.Stmt{&ast.Assign{LHS: ast.LValue{Name: "x", IsField: true}, RHS: nil}}
	if _, err := in.Run(mkIf(nil, nil, nil), NewSnapshot()); err == nil {
		t.Fatal("bad condition should error")
	}
	if _, err := in.Run(mkIf(&ast.Num{Value: 1}, badAssign, nil), NewSnapshot()); err == nil {
		t.Fatal("bad then-branch should error")
	}
	if _, err := in.Run(mkIf(&ast.Num{Value: 0}, nil, badAssign), NewSnapshot()); err == nil {
		t.Fatal("bad else-branch should error")
	}
}

func TestShortCircuitSemantics(t *testing.T) {
	// Logical operators short-circuit; in this pure language the value is
	// identical either way, so pin the truth table.
	in := MustNew(4)
	env := NewSnapshot()
	env.Pkt["a"], env.Pkt["b"] = 0, 5
	land := &ast.Binary{Op: ast.OpLAnd, X: &ast.Field{Name: "a"}, Y: &ast.Field{Name: "b"}}
	if v, _ := in.Eval(land, &env); v != 0 {
		t.Fatalf("0 && 5 = %d", v)
	}
	lor := &ast.Binary{Op: ast.OpLOr, X: &ast.Field{Name: "b"}, Y: &ast.Field{Name: "a"}}
	if v, _ := in.Eval(lor, &env); v != 1 {
		t.Fatalf("5 || 0 = %d", v)
	}
}
