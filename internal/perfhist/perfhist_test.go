package perfhist

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestStoreAppendReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	s, err := Open(path, "TestBench")
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta().Bench != "TestBench" || s.Meta().Schema != Schema {
		t.Errorf("meta: %+v", s.Meta())
	}
	prof := obs.CompileProfile{Version: obs.ProfileVersion, Feasible: true, Conflicts: 99, TotalMS: 12.5}
	if err := s.AppendProfile("sampling", prof); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSamples("dep2", map[string]float64{"speedup": 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	r0 := recs[0]
	if r0.Program != "sampling" || r0.Meta.Bench != "TestBench" || r0.Meta.RunID == "" {
		t.Errorf("record 0: %+v", r0)
	}
	if r0.Samples["conflicts"] != 99 || r0.Samples["feasible"] != 1 {
		t.Errorf("record 0 samples: %v", r0.Samples)
	}
	if r0.Profile == nil || r0.Profile.Conflicts != 99 {
		t.Errorf("record 0 profile: %+v", r0.Profile)
	}
	if recs[1].Program != "dep2" || recs[1].Samples["speedup"] != 2.5 {
		t.Errorf("record 1: %+v", recs[1])
	}
	// Both records come from one process: one shared run.
	if recs[0].Meta.RunID != recs[1].Meta.RunID {
		t.Errorf("run IDs differ: %q vs %q", recs[0].Meta.RunID, recs[1].Meta.RunID)
	}
}

// A nil store (history capture disabled) must absorb every call.
func TestNilStore(t *testing.T) {
	var s *Store
	if err := s.Append(Record{}); err != nil {
		t.Error(err)
	}
	if err := s.AppendProfile("p", obs.CompileProfile{}); err != nil {
		t.Error(err)
	}
	if err := s.AppendSamples("p", nil); err != nil {
		t.Error(err)
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
	if m := s.Meta(); m.Schema != 0 {
		t.Errorf("nil store meta: %+v", m)
	}
}

func TestOpenFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if s := OpenFromEnv("b"); s != nil {
		t.Error("unset env must yield a nil store")
	}
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	t.Setenv(EnvVar, path)
	s := OpenFromEnv("b")
	if s == nil {
		t.Fatal("set env must open a store")
	}
	if err := s.AppendSamples("p", map[string]float64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if recs, err := ReadPath(path); err != nil || len(recs) != 1 {
		t.Fatalf("read back: %d records, err=%v", len(recs), err)
	}
}

// The daemon's workers share one store; appends must interleave without
// corrupting lines.
func TestStoreConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	s, err := Open(path, "race")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 50
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				s.AppendSamples("p", map[string]float64{"v": float64(w*n + i)})
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4*n {
		t.Errorf("read %d records, want %d", len(recs), 4*n)
	}
}

func TestBenchEnvelopeRoundTrip(t *testing.T) {
	type row struct {
		Program   string  `json:"program"`
		ColdMS    float64 `json:"cold_ms"`
		Speedup   float64 `json:"speedup"`
		Feasible  bool    `json:"feasible"`
		Conflicts int64   `json:"cold_conflicts"`
		Winner    string  `json:"winner"` // non-numeric: must not become a sample
	}
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	rows := []row{
		{Program: "sampling", ColdMS: 8.5, Speedup: 20, Feasible: true, Conflicts: 102, Winner: "d1s1"},
		{Program: "dep2", ColdMS: 100, Speedup: 1.5, Conflicts: 999},
	}
	if err := WriteBenchFile(path, "BenchmarkX", rows); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("envelope flattened to %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.Program != "sampling" || r.Meta.Bench != "BenchmarkX" || r.Meta.Schema != Schema {
		t.Errorf("record 0: %+v", r)
	}
	if r.Samples["cold_ms"] != 8.5 || r.Samples["cold_conflicts"] != 102 || r.Samples["feasible"] != 1 {
		t.Errorf("record 0 samples: %v", r.Samples)
	}
	if _, ok := r.Samples["winner"]; ok {
		t.Error("string field leaked into samples")
	}
	if recs[1].Samples["feasible"] != 0 {
		t.Errorf("false bool must flatten to 0: %v", recs[1].Samples)
	}
}

// Pre-observatory BENCH_*.json files ({bench, rows} with no schema/meta)
// must still read, so old committed artifacts remain comparable.
func TestLegacyEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cache.json")
	legacy := `{
  "bench": "BenchmarkCache",
  "rows": [
    {"program": "sampling", "cold_ms": 9.1, "warm_ms": 0.4, "speedup": 22.75, "feasible": true, "stages": 1}
  ]
}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("legacy envelope: %d records, want 1", len(recs))
	}
	if recs[0].Program != "sampling" || recs[0].Samples["speedup"] != 22.75 {
		t.Errorf("legacy record: %+v", recs[0])
	}
}

func TestReadDirMergesFiles(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(filepath.Join(dir, "a.jsonl"), "A")
	if err != nil {
		t.Fatal(err)
	}
	s1.AppendSamples("p", map[string]float64{"x": 1})
	s1.Close()
	if err := WriteBenchFile(filepath.Join(dir, "b.json"), "B", []map[string]any{{"program": "q", "y": 2.0}}); err != nil {
		t.Fatal(err)
	}
	// Non-history entries are ignored.
	os.WriteFile(filepath.Join(dir, "README.md"), []byte("# not history"), 0o644)

	recs, err := ReadPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("dir read: %d records, want 2", len(recs))
	}
}

func TestReadFileSchemaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.jsonl")
	line := `{"meta":{"schema":99,"time_unix_ns":1},"program":"p","samples":{"x":1}}`
	if err := os.WriteFile(path, []byte(line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPath(path); err == nil {
		t.Error("future-schema record must error, not silently mix")
	}
}
