package perfhist

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GateOptions tunes the regression gate.
type GateOptions struct {
	// Threshold is the median ratio beyond which a metric counts as
	// regressed (current/baseline for lower-is-better metrics). 0 means
	// DefaultThreshold.
	Threshold float64
	// Alpha is the Mann-Whitney significance level. 0 means DefaultAlpha.
	Alpha float64
	// MinSamples is the per-side sample count below which the U test is
	// unreliable and the gate decides on the median ratio alone — safe
	// because the gated metrics are deterministic at a fixed seed. 0 means
	// DefaultMinSamples.
	MinSamples int
	// Metrics, when non-empty, overrides the default gated-metric policy
	// with an explicit allowlist (exact names).
	Metrics []string
	// GateWallClock additionally gates *_ms / *_ns metrics. Off by
	// default: wall clock is machine-dependent, so cross-machine
	// comparisons (CI runner vs the baseline's recording box) would flag
	// hardware, not code.
	GateWallClock bool
}

// Gate policy defaults. A 2x slowdown must trip the gate (the acceptance
// fixture) with margin; 1.25x is above solver-effort jitter for the
// deterministic metrics (which at a fixed seed is zero) while catching
// meaningful growth.
const (
	DefaultThreshold  = 1.25
	DefaultAlpha      = 0.05
	DefaultMinSamples = 3
)

func (o GateOptions) threshold() float64 {
	if o.Threshold <= 0 {
		return DefaultThreshold
	}
	return o.Threshold
}

func (o GateOptions) alpha() float64 {
	if o.Alpha <= 0 {
		return DefaultAlpha
	}
	return o.Alpha
}

func (o GateOptions) minSamples() int {
	if o.MinSamples <= 0 {
		return DefaultMinSamples
	}
	return o.MinSamples
}

// gated reports whether the metric participates in the pass/fail decision
// under this policy (every metric still appears in the comparison report).
func (o GateOptions) gated(name string) bool {
	if len(o.Metrics) > 0 {
		for _, m := range o.Metrics {
			if m == name {
				return true
			}
		}
		return false
	}
	switch name {
	case "feasible", "timed_out", "cached", "identical_work", "stages", "version":
		// Outcome flags and shape fields: correctness tests own these.
		return false
	}
	if strings.HasSuffix(name, "_ms") || strings.HasSuffix(name, "_ns") {
		return o.GateWallClock
	}
	return true
}

// higherBetter reports metrics where a drop, not a rise, is the
// regression (cache speedup, fuzz throughput, replay packet rates).
func higherBetter(name string) bool {
	return name == "speedup" || name == "shard_scale" ||
		strings.HasSuffix(name, "_per_sec") ||
		strings.HasSuffix(name, "_pps") ||
		strings.HasSuffix(name, "_speedup")
}

// Comparison is one (bench, program, metric) cell of a baseline-vs-current
// comparison.
type Comparison struct {
	Bench   string
	Program string
	Metric  string

	BaselineN, CurrentN           int
	BaselineMedian, CurrentMedian float64
	// Ratio is CurrentMedian/BaselineMedian (+Inf when the baseline median
	// is zero and the current is not; 1 when both are zero).
	Ratio float64
	// P is the two-sided Mann-Whitney p-value, or NaN when either side is
	// below MinSamples (ratio-only decision).
	P float64
	// Gated reports whether this metric participates in pass/fail.
	Gated bool
	// Regressed is the gate's verdict for this cell.
	Regressed bool
}

// key groups records for comparison. Bench is included so the same program
// measured by different benchmarks (cold cache compile vs portfolio race)
// never pools samples.
type key struct{ bench, program string }

// collect pools per-metric samples by (bench, program).
func collect(recs []Record) map[key]map[string][]float64 {
	out := map[key]map[string][]float64{}
	for _, rec := range recs {
		k := key{rec.Meta.Bench, rec.Program}
		m := out[k]
		if m == nil {
			m = map[string][]float64{}
			out[k] = m
		}
		for name, v := range rec.Samples {
			m[name] = append(m[name], v)
		}
	}
	return out
}

// Compare evaluates every (bench, program, metric) present in both record
// sets, most-regressed first. Metrics present on only one side are skipped:
// a metric added or removed by the PR under test has no baseline to
// compare against (regenerating baselines picks it up).
func Compare(baseline, current []Record, opts GateOptions) []Comparison {
	base := collect(baseline)
	cur := collect(current)
	var out []Comparison
	for k, curMetrics := range cur {
		baseMetrics, ok := base[k]
		if !ok {
			continue
		}
		for name, curSamples := range curMetrics {
			baseSamples, ok := baseMetrics[name]
			if !ok {
				continue
			}
			c := Comparison{
				Bench:          k.bench,
				Program:        k.program,
				Metric:         name,
				BaselineN:      len(baseSamples),
				CurrentN:       len(curSamples),
				BaselineMedian: Median(baseSamples),
				CurrentMedian:  Median(curSamples),
				Gated:          opts.gated(name),
				P:              math.NaN(),
			}
			switch {
			case c.BaselineMedian != 0:
				c.Ratio = c.CurrentMedian / c.BaselineMedian
			case c.CurrentMedian == 0:
				c.Ratio = 1
			default:
				c.Ratio = math.Inf(1)
			}

			// Direction-normalized ratio: >1 always means "worse".
			worse := c.Ratio
			if higherBetter(name) && worse != 0 {
				worse = 1 / worse
			}
			exceeds := worse > opts.threshold()
			if len(baseSamples) >= opts.minSamples() && len(curSamples) >= opts.minSamples() {
				_, c.P = MannWhitneyU(baseSamples, curSamples)
				c.Regressed = c.Gated && exceeds && c.P < opts.alpha()
			} else {
				// Too few samples for the U test; the deterministic gated
				// metrics make a pure ratio decision safe.
				c.Regressed = c.Gated && exceeds
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Regressed != b.Regressed {
			return a.Regressed
		}
		aw, bw := a.worse(), b.worse()
		if aw != bw {
			return aw > bw
		}
		if a.Program != b.Program {
			return a.Program < b.Program
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		return a.Metric < b.Metric
	})
	return out
}

func (c Comparison) worse() float64 {
	if higherBetter(c.Metric) && c.Ratio != 0 {
		return 1 / c.Ratio
	}
	return c.Ratio
}

// Regressions filters a comparison down to the failing cells.
func Regressions(cmps []Comparison) []Comparison {
	var out []Comparison
	for _, c := range cmps {
		if c.Regressed {
			out = append(out, c)
		}
	}
	return out
}

// FormatComparison renders the comparison as an aligned text table. With
// full=false only gated and regressed rows appear (the CI report); with
// full=true every compared metric does.
func FormatComparison(cmps []Comparison, full bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-16s %-22s %10s %10s %7s %8s  %s\n",
		"BENCH", "PROGRAM", "METRIC", "BASE", "CURRENT", "RATIO", "P", "VERDICT")
	shown := 0
	for _, c := range cmps {
		if !full && !c.Gated {
			continue
		}
		verdict := "ok"
		switch {
		case c.Regressed:
			verdict = "REGRESSED"
		case !c.Gated:
			verdict = "info"
		}
		p := "-"
		if !math.IsNaN(c.P) {
			p = fmt.Sprintf("%.4f", c.P)
		}
		fmt.Fprintf(&sb, "%-12s %-16s %-22s %10s %10s %7s %8s  %s\n",
			truncate(c.Bench, 12), truncate(c.Program, 16), truncate(c.Metric, 22),
			formatNum(c.BaselineMedian), formatNum(c.CurrentMedian), formatRatio(c.Ratio), p, verdict)
		shown++
	}
	if shown == 0 {
		return "no overlapping metrics to compare\n"
	}
	return sb.String()
}

// --- Trend rendering ---------------------------------------------------------

// runInfo is one run column in a trend table.
type runInfo struct {
	id     string
	label  string
	timeNS int64
}

// FormatTrend renders the history of one metric as a table of programs
// (rows) by runs (columns, oldest first, labelled by short SHA or run ID),
// each cell the per-run median. Records missing the metric are skipped.
func FormatTrend(recs []Record, metric string) string {
	// Column per run (RunID when present, else SHA+bench), ordered by time.
	type cell struct{ samples []float64 }
	runs := map[string]*runInfo{}
	table := map[string]map[string]*cell{} // program -> runID -> cell
	var programs []string
	for _, rec := range recs {
		v, ok := rec.Samples[metric]
		if !ok {
			continue
		}
		id := rec.Meta.RunID
		if id == "" {
			id = rec.Meta.ShortSHA() + "/" + rec.Meta.Bench
		}
		if runs[id] == nil {
			label := rec.Meta.ShortSHA()
			if len(label) > 7 {
				label = label[:7]
			}
			runs[id] = &runInfo{id: id, label: label, timeNS: rec.Meta.TimeUnixNS}
		}
		prog := rec.Program
		if prog == "" {
			prog = "(all)"
		}
		if table[prog] == nil {
			table[prog] = map[string]*cell{}
			programs = append(programs, prog)
		}
		if table[prog][id] == nil {
			table[prog][id] = &cell{}
		}
		table[prog][id].samples = append(table[prog][id].samples, v)
	}
	if len(runs) == 0 {
		return fmt.Sprintf("no samples for metric %q\n", metric)
	}
	ordered := make([]*runInfo, 0, len(runs))
	for _, r := range runs {
		ordered = append(ordered, r)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].timeNS != ordered[j].timeNS {
			return ordered[i].timeNS < ordered[j].timeNS
		}
		return ordered[i].id < ordered[j].id
	})
	sort.Strings(programs)

	var sb strings.Builder
	fmt.Fprintf(&sb, "metric: %s (median per run)\n", metric)
	fmt.Fprintf(&sb, "%-20s", "PROGRAM")
	for _, r := range ordered {
		fmt.Fprintf(&sb, " %10s", r.label)
	}
	sb.WriteByte('\n')
	for _, prog := range programs {
		fmt.Fprintf(&sb, "%-20s", truncate(prog, 20))
		for _, r := range ordered {
			c := table[prog][r.id]
			if c == nil {
				fmt.Fprintf(&sb, " %10s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %10s", formatNum(Median(c.samples)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Metrics lists every sample name present in the records, sorted.
func Metrics(recs []Record) []string {
	seen := map[string]bool{}
	for _, rec := range recs {
		for name := range rec.Samples {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func formatNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func formatRatio(v float64) string {
	if math.IsInf(v, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%.2fx", v)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
