// Package perfhist is the persistent half of the performance observatory:
// an append-only JSONL history of compile-effort records that outlives any
// single process. In-flight telemetry (internal/obs spans, Prometheus, SSE)
// answers "what is the compiler doing now"; this package answers "what did
// compiles cost last week, at that SHA, on that machine" — the memory the
// paper's compile-time claims are judged against across PRs.
//
// One Record is one measured compilation (or one bench iteration): run
// metadata identifying the machine and source revision, a flat map of named
// numeric samples, and optionally the full per-phase CompileProfile.
// Records append to a file named by the CHIPMUNK_PERF_HISTORY environment
// variable (or an explicit path); cmd/chipreport reads them back to render
// trends and gate regressions.
package perfhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Schema is the history record schema version, bumped on incompatible
// changes so trend tooling refuses to mix records it cannot compare.
const Schema = 1

// EnvVar names the environment variable that, when set, routes compile
// profiles into a history file (see OpenFromEnv).
const EnvVar = "CHIPMUNK_PERF_HISTORY"

// Meta identifies one measurement run: where (machine), when, and at what
// source revision the samples were taken. Every record in a run shares one
// Meta, so grouping by RunID (or GitSHA) recovers the run structure from a
// flat record stream.
type Meta struct {
	Schema     int    `json:"schema"`
	RunID      string `json:"run_id,omitempty"`
	Bench      string `json:"bench,omitempty"`
	GitSHA     string `json:"git_sha,omitempty"`
	TimeUnixNS int64  `json:"time_unix_ns"`
	GoVersion  string `json:"go_version,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	CPUModel   string `json:"cpu_model,omitempty"`
	Host       string `json:"host,omitempty"`
}

// ShortSHA returns the abbreviated git SHA, or "unknown" when the run was
// measured outside a git checkout.
func (m Meta) ShortSHA() string {
	if len(m.GitSHA) >= 12 {
		return m.GitSHA[:12]
	}
	if m.GitSHA != "" {
		return m.GitSHA
	}
	return "unknown"
}

// Record is one measured compilation or bench iteration.
type Record struct {
	Meta    Meta   `json:"meta"`
	Program string `json:"program,omitempty"`
	// Samples is the flat metric map: deterministic effort counters
	// (iters, conflicts, decisions, propagations — identical across
	// machines at a fixed seed, so the regression gate trusts them) next
	// to machine-dependent wall-clock entries (*_ms, report-only).
	Samples map[string]float64 `json:"samples"`
	// Profile optionally carries the full per-phase attribution the
	// samples were flattened from.
	Profile *obs.CompileProfile `json:"profile,omitempty"`
}

// CaptureMeta collects the run metadata once per process: git SHA (from
// CHIPMUNK_GIT_SHA or GITHUB_SHA, falling back to `git rev-parse HEAD`),
// toolchain, CPU model (best effort, /proc/cpuinfo), host, and a RunID
// unique enough to group this process's records.
func CaptureMeta(bench string) Meta {
	now := time.Now()
	m := Meta{
		Schema:     Schema,
		RunID:      fmt.Sprintf("%x-%d", now.UnixNano(), os.Getpid()),
		Bench:      bench,
		GitSHA:     gitSHA(),
		TimeUnixNS: now.UnixNano(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
	if h, err := os.Hostname(); err == nil {
		m.Host = h
	}
	return m
}

func gitSHA() string {
	for _, env := range []string{"CHIPMUNK_GIT_SHA", "GITHUB_SHA"} {
		if sha := os.Getenv(env); sha != "" {
			return sha
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// cpuModel reads the CPU model name from /proc/cpuinfo; empty on
// platforms without it (the field is informational, never load-bearing).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// Store appends records to a JSONL history file. All methods are safe for
// concurrent use (the daemon's job workers share one store), and a nil
// *Store is a valid no-op sink — callers thread it unconditionally.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	meta Meta
}

// Open opens (creating if needed) the history file at path for appending.
// bench labels the run in the captured metadata.
func Open(path, bench string) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{f: f, w: bufio.NewWriter(f), meta: CaptureMeta(bench)}, nil
}

// OpenFromEnv opens the history file named by CHIPMUNK_PERF_HISTORY, or
// returns nil (a no-op store) when the variable is unset or the file cannot
// be opened — history capture is an observer, never a reason to fail a
// compile.
func OpenFromEnv(bench string) *Store {
	path := os.Getenv(EnvVar)
	if path == "" {
		return nil
	}
	s, err := Open(path, bench)
	if err != nil {
		return nil
	}
	return s
}

// Meta returns the store's captured run metadata (zero for a nil store).
func (s *Store) Meta() Meta {
	if s == nil {
		return Meta{}
	}
	return s.meta
}

// Append writes one record. A zero rec.Meta is filled from the store's
// captured run metadata (the common case); records with explicit metadata
// pass through unchanged.
func (s *Store) Append(rec Record) error {
	if s == nil {
		return nil
	}
	if rec.Meta.Schema == 0 {
		rec.Meta = s.meta
	}
	if rec.Samples == nil {
		rec.Samples = map[string]float64{}
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// AppendProfile records one compile's profile under the program name — the
// convenience every compile path uses.
func (s *Store) AppendProfile(program string, p obs.CompileProfile) error {
	if s == nil {
		return nil
	}
	return s.Append(Record{Program: program, Samples: p.Samples(), Profile: &p})
}

// AppendSamples records a bare sample map (bench rows, fuzz campaign
// summaries) under the program name.
func (s *Store) AppendSamples(program string, samples map[string]float64) error {
	if s == nil {
		return nil
	}
	return s.Append(Record{Program: program, Samples: samples})
}

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// --- Reading -----------------------------------------------------------------

// ReadPath reads history records from path: a JSONL history file, a
// versioned bench envelope (BENCH_*.json), or a directory of either
// (non-recursive, *.json and *.jsonl entries).
func ReadPath(path string) ([]Record, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return ReadDir(path)
	}
	return ReadFile(path)
}

// ReadDir reads every *.json / *.jsonl file in dir, sorted by name so
// record order is deterministic.
func ReadDir(dir string) ([]Record, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if ext := filepath.Ext(e.Name()); ext == ".json" || ext == ".jsonl" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var recs []Record
	for _, name := range names {
		rs, err := ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		recs = append(recs, rs...)
	}
	return recs, nil
}

// ReadFile reads one history file. JSONL streams (one Record per line) and
// single-object bench envelopes are both accepted; envelope rows are
// flattened into Records via their numeric fields, so old BENCH_*.json
// snapshots feed the same trend machinery as the JSONL history.
func ReadFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return nil, nil
	}
	if strings.HasPrefix(trimmed, "{") && !strings.Contains(trimmed[:len(trimmed)-1], "\n{") {
		// A single JSON object: try the bench envelope shape first.
		if recs, ok := parseEnvelope([]byte(trimmed)); ok {
			return recs, nil
		}
	}
	var recs []Record
	for i, line := range strings.Split(trimmed, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		if rec.Meta.Schema != 0 && rec.Meta.Schema != Schema {
			return nil, fmt.Errorf("line %d: history schema %d, this build reads %d", i+1, rec.Meta.Schema, Schema)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// BenchEnvelope is the unified bench-output schema: the pre-observatory
// {bench, rows} shape extended with a schema version and run metadata.
// Rows keep each benchmark's own field names so EXPERIMENTS.md tables
// reconcile unchanged.
type BenchEnvelope struct {
	Bench  string          `json:"bench"`
	Schema int             `json:"schema,omitempty"`
	Meta   Meta            `json:"meta,omitempty"`
	Rows   json.RawMessage `json:"rows"`
}

// WriteBenchFile writes rows under the versioned bench envelope with
// freshly captured run metadata.
func WriteBenchFile(path, bench string, rows any) error {
	raw, err := json.Marshal(rows)
	if err != nil {
		return err
	}
	env := BenchEnvelope{Bench: bench, Schema: Schema, Meta: CaptureMeta(bench), Rows: raw}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseEnvelope converts a bench envelope into flat Records: one per row,
// numeric row fields (and booleans, as 0/1) becoming samples keyed by their
// JSON name. Pre-observatory envelopes without meta/schema still parse.
func parseEnvelope(data []byte) ([]Record, bool) {
	var env BenchEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Bench == "" || len(env.Rows) == 0 {
		return nil, false
	}
	var rows []map[string]any
	if err := json.Unmarshal(env.Rows, &rows); err != nil {
		return nil, false
	}
	meta := env.Meta
	if meta.Bench == "" {
		meta.Bench = env.Bench
	}
	recs := make([]Record, 0, len(rows))
	for _, row := range rows {
		rec := Record{Meta: meta, Samples: map[string]float64{}}
		for k, v := range row {
			switch v := v.(type) {
			case float64:
				rec.Samples[k] = v
			case bool:
				if v {
					rec.Samples[k] = 1
				}
			case string:
				if k == "program" {
					rec.Program = v
				}
			}
		}
		recs = append(recs, rec)
	}
	return recs, true
}
