package perfhist

import (
	"math"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) must be NaN")
	}
}

func TestMannWhitneyUSeparated(t *testing.T) {
	// Full separation at 4v4: U = 0, two-sided p ≈ 0.0304 under the
	// normal approximation with continuity correction — significant at
	// α=0.05, which is why CI runs benches with -count 4.
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 11, 12, 13}
	u, p := MannWhitneyU(x, y)
	if u != 0 {
		t.Errorf("U = %v, want 0", u)
	}
	if p >= 0.05 || p < 0.01 {
		t.Errorf("p = %v, want ≈0.03", p)
	}
	// Symmetry: swapping sides must not change the two-sided p.
	_, p2 := MannWhitneyU(y, x)
	if math.Abs(p-p2) > 1e-12 {
		t.Errorf("asymmetric p: %v vs %v", p, p2)
	}
}

func TestMannWhitneyUIdentical(t *testing.T) {
	// All-ties: zero variance, no evidence of a shift — p must be 1 so
	// deterministic metrics at an unchanged SHA never trip the gate.
	x := []float64{5, 5, 5, 5}
	_, p := MannWhitneyU(x, x)
	if p != 1 {
		t.Errorf("all-ties p = %v, want 1", p)
	}
	// Same distribution, interleaved values: p must be large.
	a := []float64{1, 3, 5, 7}
	b := []float64{2, 4, 6, 8}
	if _, p := MannWhitneyU(a, b); p < 0.3 {
		t.Errorf("interleaved p = %v, want large", p)
	}
}

func TestMannWhitneyUSmallShift(t *testing.T) {
	// 3v3 cannot reach p<0.05 under the normal approximation even at
	// full separation — the reason the gate falls back to the median
	// ratio below MinSamples.
	x := []float64{1, 2, 3}
	y := []float64{10, 11, 12}
	if _, p := MannWhitneyU(x, y); p < 0.05 {
		t.Errorf("3v3 p = %v; must stay above 0.05", p)
	}
}
