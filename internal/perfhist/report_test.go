package perfhist

import (
	"math"
	"strings"
	"testing"
)

// mkrecs builds n records for (bench, program), one per sample set
// produced by gen(i).
func mkrecs(bench, program string, n int, gen func(i int) map[string]float64) []Record {
	var recs []Record
	for i := 0; i < n; i++ {
		recs = append(recs, Record{
			Meta:    Meta{Schema: Schema, Bench: bench, GitSHA: "deadbeefcafe", TimeUnixNS: int64(i)},
			Program: program,
			Samples: gen(i),
		})
	}
	return recs
}

func find(cmps []Comparison, metric string) *Comparison {
	for i := range cmps {
		if cmps[i].Metric == metric {
			return &cmps[i]
		}
	}
	return nil
}

// The acceptance pair: identical baselines pass, an injected 2× effort
// slowdown trips the gate with statistical backing.
func TestCompareGate(t *testing.T) {
	base := mkrecs("B", "sampling", 4, func(i int) map[string]float64 {
		return map[string]float64{"conflicts": 100 + float64(i), "total_ms": 8 + float64(i)}
	})

	t.Run("identical", func(t *testing.T) {
		cmps := Compare(base, base, GateOptions{})
		if regs := Regressions(cmps); len(regs) != 0 {
			t.Fatalf("identical histories regressed: %+v", regs)
		}
		c := find(cmps, "conflicts")
		if c == nil || !c.Gated || c.Ratio != 1 {
			t.Errorf("conflicts cell: %+v", c)
		}
	})

	t.Run("2x-slowdown", func(t *testing.T) {
		cur := mkrecs("B", "sampling", 4, func(i int) map[string]float64 {
			return map[string]float64{"conflicts": 2 * (100 + float64(i)), "total_ms": 8 + float64(i)}
		})
		cmps := Compare(base, cur, GateOptions{})
		c := find(cmps, "conflicts")
		if c == nil || !c.Regressed {
			t.Fatalf("2x conflicts not flagged: %+v", c)
		}
		if math.Abs(c.Ratio-2) > 0.02 {
			t.Errorf("ratio = %v, want ≈2", c.Ratio)
		}
		if math.IsNaN(c.P) || c.P >= 0.05 {
			t.Errorf("p = %v, want < 0.05 at 4v4", c.P)
		}
		// Most-regressed-first ordering puts the failure on top.
		if !Compare(base, cur, GateOptions{})[0].Regressed {
			t.Error("regressed cell not sorted first")
		}
	})

	t.Run("wall-clock-not-gated", func(t *testing.T) {
		cur := mkrecs("B", "sampling", 4, func(i int) map[string]float64 {
			return map[string]float64{"conflicts": 100 + float64(i), "total_ms": 5 * (8 + float64(i))}
		})
		if regs := Regressions(Compare(base, cur, GateOptions{})); len(regs) != 0 {
			t.Errorf("machine-dependent total_ms tripped the default gate: %+v", regs)
		}
		regs := Regressions(Compare(base, cur, GateOptions{GateWallClock: true}))
		if len(regs) != 1 || regs[0].Metric != "total_ms" {
			t.Errorf("GateWallClock: %+v", regs)
		}
	})
}

// speedup and *_per_sec regress on a DROP.
func TestCompareHigherIsBetter(t *testing.T) {
	base := mkrecs("B", "p", 4, func(i int) map[string]float64 {
		return map[string]float64{"speedup": 20 + float64(i), "iters_per_sec": 50}
	})
	cur := mkrecs("B", "p", 4, func(i int) map[string]float64 {
		return map[string]float64{"speedup": 10 + float64(i), "iters_per_sec": 100}
	})
	cmps := Compare(base, cur, GateOptions{})
	if c := find(cmps, "speedup"); c == nil || !c.Regressed {
		t.Errorf("halved speedup must regress: %+v", c)
	}
	if c := find(cmps, "iters_per_sec"); c == nil || c.Regressed {
		t.Errorf("doubled throughput must pass: %+v", c)
	}
	// And a RISE in speedup must pass.
	if regs := Regressions(Compare(cur, base, GateOptions{})); len(regs) != 0 {
		for _, r := range regs {
			if r.Metric == "speedup" {
				t.Errorf("improved speedup flagged: %+v", r)
			}
		}
	}
}

// Replay-throughput metrics (pps, per-engine speedups) are
// higher-is-better: a rate collapse regresses, a rate gain passes.
func TestComparePPSHigherIsBetter(t *testing.T) {
	base := mkrecs("BenchmarkPPS", "sampling", 4, func(i int) map[string]float64 {
		return map[string]float64{"compiled_pps": 2e7 + float64(i), "compiled_speedup": 60, "shard_scale": 3}
	})
	cur := mkrecs("BenchmarkPPS", "sampling", 4, func(i int) map[string]float64 {
		return map[string]float64{"compiled_pps": 5e6 + float64(i), "compiled_speedup": 15, "shard_scale": 1}
	})
	for _, m := range []string{"compiled_pps", "compiled_speedup", "shard_scale"} {
		if c := find(Compare(base, cur, GateOptions{}), m); c == nil || !c.Regressed {
			t.Errorf("collapsed %s must regress: %+v", m, c)
		}
		if c := find(Compare(cur, base, GateOptions{}), m); c == nil || c.Regressed {
			t.Errorf("improved %s flagged: %+v", m, c)
		}
	}
}

// Below MinSamples the gate decides on the median ratio alone (the
// deterministic metrics make that safe), with P reported as NaN.
func TestCompareRatioFallback(t *testing.T) {
	base := mkrecs("B", "p", 1, func(int) map[string]float64 { return map[string]float64{"conflicts": 100} })
	cur := mkrecs("B", "p", 1, func(int) map[string]float64 { return map[string]float64{"conflicts": 210} })
	cmps := Compare(base, cur, GateOptions{})
	c := find(cmps, "conflicts")
	if c == nil || !c.Regressed || !math.IsNaN(c.P) {
		t.Errorf("1v1 ratio fallback: %+v", c)
	}
	// Under the threshold nothing fires.
	ok := mkrecs("B", "p", 1, func(int) map[string]float64 { return map[string]float64{"conflicts": 110} })
	if regs := Regressions(Compare(base, ok, GateOptions{})); len(regs) != 0 {
		t.Errorf("1.1x under a 1.25x threshold regressed: %+v", regs)
	}
}

func TestComparePolicyKnobs(t *testing.T) {
	base := mkrecs("B", "p", 4, func(i int) map[string]float64 {
		return map[string]float64{"conflicts": 100, "decisions": 1000, "feasible": 1}
	})
	cur := mkrecs("B", "p", 4, func(i int) map[string]float64 {
		return map[string]float64{"conflicts": 200, "decisions": 2000, "feasible": 0}
	})
	// Outcome flags are never gated: correctness tests own them.
	for _, c := range Compare(base, cur, GateOptions{}) {
		if c.Metric == "feasible" && c.Gated {
			t.Error("feasible must not be gated")
		}
	}
	// An explicit allowlist narrows the gate.
	regs := Regressions(Compare(base, cur, GateOptions{Metrics: []string{"decisions"}}))
	if len(regs) != 1 || regs[0].Metric != "decisions" {
		t.Errorf("allowlist: %+v", regs)
	}
	// A generous threshold lets 2x through.
	if regs := Regressions(Compare(base, cur, GateOptions{Threshold: 3})); len(regs) != 0 {
		t.Errorf("threshold=3: %+v", regs)
	}
}

// Samples from different benches or programs must never pool.
func TestCompareKeying(t *testing.T) {
	base := append(
		mkrecs("BenchA", "p", 4, func(int) map[string]float64 { return map[string]float64{"conflicts": 100} }),
		mkrecs("BenchB", "p", 4, func(int) map[string]float64 { return map[string]float64{"conflicts": 10000} })...,
	)
	cmps := Compare(base, base, GateOptions{})
	if len(cmps) != 2 {
		t.Fatalf("want 2 cells (one per bench), got %d", len(cmps))
	}
	for _, c := range cmps {
		if c.Ratio != 1 {
			t.Errorf("pooled across benches: %+v", c)
		}
	}
	// A metric present only in current is skipped, not compared to nothing.
	cur := mkrecs("BenchA", "p", 4, func(int) map[string]float64 {
		return map[string]float64{"conflicts": 100, "brand_new": 7}
	})
	for _, c := range Compare(base, cur, GateOptions{}) {
		if c.Metric == "brand_new" {
			t.Errorf("one-sided metric compared: %+v", c)
		}
	}
}

func TestFormatComparisonAndTrend(t *testing.T) {
	base := mkrecs("B", "sampling", 4, func(i int) map[string]float64 {
		return map[string]float64{"conflicts": 100, "total_ms": 8}
	})
	cur := mkrecs("B", "sampling", 4, func(i int) map[string]float64 {
		return map[string]float64{"conflicts": 200, "total_ms": 8}
	})
	out := FormatComparison(Compare(base, cur, GateOptions{}), false)
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "conflicts") {
		t.Errorf("gated report:\n%s", out)
	}
	if strings.Contains(out, "total_ms") {
		t.Errorf("ungated metric shown without -full:\n%s", out)
	}
	full := FormatComparison(Compare(base, cur, GateOptions{}), true)
	if !strings.Contains(full, "total_ms") {
		t.Errorf("full report missing ungated metric:\n%s", full)
	}

	trend := FormatTrend(append(base, cur...), "conflicts")
	if !strings.Contains(trend, "sampling") || !strings.Contains(trend, "deadbee") {
		t.Errorf("trend table:\n%s", trend)
	}
	if !strings.Contains(FormatTrend(base, "no_such_metric"), "no samples") {
		t.Error("missing-metric trend must say so")
	}
}
