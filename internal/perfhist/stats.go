package perfhist

import (
	"math"
	"sort"
)

// Median returns the sample median (average of the middle pair for even
// counts), or NaN for an empty slice. The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// MannWhitneyU runs the two-sided Mann-Whitney U test on two independent
// samples and returns the U statistic (the smaller of U1/U2) and the
// p-value under the normal approximation with tie correction and
// continuity correction.
//
// The normal approximation is what a dependency-free implementation can
// carry, and it is adequate for the regression gate's use: at the CI
// sample size (4 vs 4) full separation yields p ≈ 0.030 against the exact
// 0.0286, and identical samples yield p = 1 exactly (zero variance).
// Callers with fewer than 3 samples per side should not trust p at all —
// the gate falls back to a pure ratio test there (see Compare).
func MannWhitneyU(x, y []float64) (u, p float64) {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 0, 1
	}
	type obs struct {
		v     float64
		fromX bool
	}
	all := make([]obs, 0, n+m)
	for _, v := range x {
		all = append(all, obs{v, true})
	}
	for _, v := range y {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks to ties and accumulate the tie-correction term
	// sum(t^3 - t) over tie groups.
	rankSumX := 0.0
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		if t > 1 {
			tieTerm += t*t*t - t
		}
		// Ranks are 1-based; the shared mid-rank of positions i..j-1.
		midRank := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if all[k].fromX {
				rankSumX += midRank
			}
		}
		i = j
	}

	nf, mf := float64(n), float64(m)
	u1 := rankSumX - nf*(nf+1)/2
	u2 := nf*mf - u1
	u = math.Min(u1, u2)

	nTotal := nf + mf
	mu := nf * mf / 2
	variance := nf * mf / 12 * ((nTotal + 1) - tieTerm/(nTotal*(nTotal-1)))
	if variance <= 0 {
		// Every observation identical: no evidence of any difference.
		return u, 1
	}
	// Continuity correction: shift half a unit toward the mean.
	z := (u - mu + 0.5) / math.Sqrt(variance)
	if z > 0 {
		z = 0
	}
	p = math.Erfc(-z / math.Sqrt2) // 2 * Phi(z) for z <= 0
	if p > 1 {
		p = 1
	}
	return u, p
}
