// Package difftest is the randomized differential-testing and fuzzing
// subsystem: it generates random Domino packet transactions, compiles them
// through the full Chipmunk stack (core.Compile), and re-validates every
// outcome against oracles that are independent of the SAT/CEGIS machinery
// being tested:
//
//   - feasible results are checked end-to-end by running the reference
//     interpreter against the simulated pisa.Config, exhaustively at a
//     small width and randomly at the verification width;
//   - infeasible (UNSAT-at-depth) claims are spot-checked by sampling
//     random hole assignments and looking for a configuration the solver
//     should have found;
//   - the CDCL solver itself is differentially tested on random CNFs
//     against the naive reference solvers in internal/sat (enumeration
//     and DPLL);
//   - semantics-preserving mutations (internal/mutate) give a metamorphic
//     oracle: a program and its mutants must agree on feasibility and on
//     minimum pipeline depth.
//
// Failing programs are minimized by the shrinker before being reported.
// cmd/chipfuzz drives campaigns over these oracles; the native Go fuzz
// targets reuse the same building blocks.
package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/pisa"
	"repro/internal/word"
)

// Chooser is the decision source for the random generators. *rand.Rand
// satisfies it for seeded campaigns; ByteChooser adapts a fuzz-engine byte
// string so native fuzzing can steer program shapes structurally.
type Chooser interface {
	// Intn returns a value in [0, n). n must be > 0.
	Intn(n int) int
}

var _ Chooser = (*rand.Rand)(nil)

// ByteChooser derives decisions from a byte stream, one byte per choice,
// wrapping around when exhausted (an empty stream yields all zeros). This
// gives a fuzzer byte-level control over every structural decision the
// generator makes.
type ByteChooser struct {
	data []byte
	pos  int
}

// NewByteChooser wraps a fuzz input.
func NewByteChooser(data []byte) *ByteChooser { return &ByteChooser{data: data} }

// Intn implements Chooser.
func (b *ByteChooser) Intn(n int) int {
	if len(b.data) == 0 {
		return 0
	}
	v := int(b.data[b.pos%len(b.data)])
	b.pos++
	return v % n
}

// GenOptions bounds the random program generator. The zero value gives the
// campaign defaults: small programs on small grids, sized so compiles take
// milliseconds and exhaustive oracle checks stay feasible.
type GenOptions struct {
	// MaxFields bounds the packet-field alphabet (1..MaxFields fields).
	// 0 means 3.
	MaxFields int
	// MaxStmts bounds the top-level statement count. 0 means 3.
	MaxStmts int
	// MaxDepth bounds expression nesting. 0 means 2.
	MaxDepth int
	// MaxConst bounds integer literals (exclusive). 0 means 8, within the
	// default 4-bit immediate holes.
	MaxConst int
}

func (o GenOptions) maxFields() int {
	if o.MaxFields == 0 {
		return 3
	}
	return o.MaxFields
}

func (o GenOptions) maxStmts() int {
	if o.MaxStmts == 0 {
		return 3
	}
	return o.MaxStmts
}

func (o GenOptions) maxDepth() int {
	if o.MaxDepth == 0 {
		return 2
	}
	return o.MaxDepth
}

func (o GenOptions) maxConst() int {
	if o.MaxConst == 0 {
		return 8
	}
	return o.MaxConst
}

// Scenario is one randomly drawn compile problem: a program plus the grid
// and ALU templates to compile it against.
type Scenario struct {
	Prog      *ast.Program
	Width     int
	MaxStages int
	Stateless alu.Stateless
	Stateful  alu.Stateful
}

var fieldNames = []string{"a", "b", "c", "d"}

// statefulKinds are the ALU templates the generator draws from. The richer
// templates (Sub, NestedIfs, Pair) blow up hole counts on even tiny grids;
// the campaign sticks to the three the corpus programs exercise most.
var statefulKinds = []alu.Kind{alu.Counter, alu.PredRaw, alu.IfElseRaw}

// statelessOps are operators the stateless ALU plausibly covers, so a
// reasonable fraction of generated programs is feasible. Comparisons are
// included: they exercise the relop datapath and legitimately infeasible
// shapes.
var statelessOps = []ast.Op{
	ast.OpAdd, ast.OpSub, ast.OpBitAnd, ast.OpBitOr, ast.OpBitXor,
	ast.OpEq, ast.OpNe, ast.OpLt, ast.OpGe,
}

// relOps are guard comparison operators.
var relOps = []ast.Op{ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe}

// RandomScenario draws a scenario from the chooser. Roughly half the
// programs are pure stateless field transforms (compiled against a
// width-matched grid), half are guarded stateful updates in the shapes the
// stateful ALU catalog targets.
func RandomScenario(c Chooser, opts GenOptions) Scenario {
	if c.Intn(2) == 0 {
		return randomStatelessScenario(c, opts)
	}
	return randomStatefulScenario(c, opts)
}

// randomExpr builds an expression over the given field names (and state s
// when stateful), bounded by depth.
func randomExpr(c Chooser, fields []string, withState bool, depth, maxConst int) ast.Expr {
	atom := func() ast.Expr {
		n := len(fields) + 1
		if withState {
			n++
		}
		switch k := c.Intn(n); {
		case k < len(fields):
			return &ast.Field{Name: fields[k]}
		case k == len(fields):
			return &ast.Num{Value: int64(c.Intn(maxConst))}
		default:
			return &ast.State{Name: "s"}
		}
	}
	var build func(d int) ast.Expr
	build = func(d int) ast.Expr {
		if d == 0 || c.Intn(3) == 0 {
			return atom()
		}
		switch c.Intn(8) {
		case 0:
			return &ast.Unary{Op: ast.OpNot, X: build(d - 1)}
		case 1:
			return &ast.Ternary{
				Cond: &ast.Binary{Op: relOps[c.Intn(len(relOps))], X: build(d - 1), Y: atom()},
				T:    build(d - 1),
				F:    atom(),
			}
		default:
			return &ast.Binary{Op: statelessOps[c.Intn(len(statelessOps))], X: build(d - 1), Y: build(d - 1)}
		}
	}
	return build(depth)
}

// randomStatelessScenario produces field-to-field transforms, occasionally
// under a packet-field guard.
func randomStatelessScenario(c Chooser, opts GenOptions) Scenario {
	nf := 1 + c.Intn(opts.maxFields())
	fields := fieldNames[:nf]
	n := 1 + c.Intn(opts.maxStmts())
	stmts := make([]ast.Stmt, 0, n)
	for i := 0; i < n; i++ {
		asn := &ast.Assign{
			LHS: ast.LValue{Name: fields[c.Intn(nf)], IsField: true},
			RHS: randomExpr(c, fields, false, 1+c.Intn(opts.maxDepth()), opts.maxConst()),
		}
		if c.Intn(4) == 0 {
			stmts = append(stmts, &ast.If{
				Cond: &ast.Binary{
					Op: relOps[c.Intn(len(relOps))],
					X:  &ast.Field{Name: fields[c.Intn(nf)]},
					Y:  &ast.Num{Value: int64(c.Intn(opts.maxConst()))},
				},
				Then: []ast.Stmt{asn},
			})
		} else {
			stmts = append(stmts, asn)
		}
	}
	return Scenario{
		Prog:      &ast.Program{Name: "fuzz_stateless", Stmts: stmts, Init: map[string]int64{}},
		Width:     nf,
		MaxStages: 1 + c.Intn(2),
		Stateful:  alu.Stateful{Kind: statefulKinds[c.Intn(len(statefulKinds))]},
	}
}

// randomStatefulScenario produces guarded single-state updates: the shapes
// the stateful ALU catalog exists for (counters, predicated raws,
// if/else raws), with an occasional stateless postlude on a packet field.
func randomStatefulScenario(c Chooser, opts GenOptions) Scenario {
	fields := fieldNames[:1+c.Intn(2)]
	mc := opts.maxConst()

	operand := func() ast.Expr {
		if c.Intn(2) == 0 {
			return &ast.Field{Name: fields[c.Intn(len(fields))]}
		}
		return &ast.Num{Value: int64(c.Intn(mc))}
	}
	update := func() ast.Stmt {
		var rhs ast.Expr
		switch c.Intn(3) {
		case 0: // s = s +/- u
			op := ast.OpAdd
			if c.Intn(2) == 0 {
				op = ast.OpSub
			}
			rhs = &ast.Binary{Op: op, X: &ast.State{Name: "s"}, Y: operand()}
		case 1: // s = u (reset / assignment)
			rhs = operand()
		default: // s = s + const
			rhs = &ast.Binary{Op: ast.OpAdd, X: &ast.State{Name: "s"}, Y: &ast.Num{Value: int64(c.Intn(mc))}}
		}
		return &ast.Assign{LHS: ast.LValue{Name: "s"}, RHS: rhs}
	}
	guardLHS := func() ast.Expr {
		if c.Intn(2) == 0 {
			return &ast.State{Name: "s"}
		}
		return &ast.Field{Name: fields[c.Intn(len(fields))]}
	}
	guard := &ast.Binary{
		Op: relOps[c.Intn(len(relOps))],
		X:  guardLHS(),
		Y:  &ast.Num{Value: int64(c.Intn(mc))},
	}

	var stmts []ast.Stmt
	switch c.Intn(3) {
	case 0: // unguarded update
		stmts = append(stmts, update())
	case 1: // if (g) upd
		stmts = append(stmts, &ast.If{Cond: guard, Then: []ast.Stmt{update()}})
	default: // if (g) upd else upd
		stmts = append(stmts, &ast.If{Cond: guard, Then: []ast.Stmt{update()}, Else: []ast.Stmt{update()}})
	}
	if c.Intn(3) == 0 {
		// Stateless postlude reading the packet, exercising mixed programs.
		stmts = append(stmts, &ast.Assign{
			LHS: ast.LValue{Name: fields[0], IsField: true},
			RHS: randomExpr(c, fields, false, 1, mc),
		})
	}
	return Scenario{
		Prog: &ast.Program{
			Name:  "fuzz_stateful",
			Stmts: stmts,
			Init:  map[string]int64{"s": int64(c.Intn(mc))},
		},
		Width:     len(fields),
		MaxStages: 1 + c.Intn(2),
		Stateful:  alu.Stateful{Kind: statefulKinds[c.Intn(len(statefulKinds))]},
	}
}

// allStatefulKinds covers every template, for layers that pay no synthesis
// cost per draw (the execution-engine fuzzer).
var allStatefulKinds = []alu.Kind{
	alu.Counter, alu.PredRaw, alu.IfElseRaw, alu.Sub, alu.NestedIfs, alu.Pair,
}

// RandomConfig draws a random valid configuration directly — no synthesis
// involved — for fuzzing the execution layers (Config.Exec, ExecInto, and
// the compiled line-rate engine) on grid shapes, hole values, and word
// widths the synthesizer would rarely emit. The word width deliberately
// ranges below the control-hole widths so mux-selector truncation
// aliasing is in scope.
func RandomConfig(c Chooser) *pisa.Config {
	g := pisa.GridSpec{
		Stages:       1 + c.Intn(3),
		Width:        1 + c.Intn(3),
		WordWidth:    word.Width(2 + c.Intn(7)),
		StatelessALU: alu.Stateless{ConstBits: 1 + c.Intn(6)},
		StatefulALU: alu.Stateful{
			Kind:      allStatefulKinds[c.Intn(len(allStatefulKinds))],
			ConstBits: 1 + c.Intn(6),
		},
	}
	nf := c.Intn(min(len(fieldNames), g.Width) + 1)
	fields := fieldNames[:nf]
	states := make([]string, c.Intn(g.StateSlots()+1))
	for i := range states {
		states[i] = fmt.Sprintf("s%d", i)
	}
	h := pisa.NewHoles[uint64](g, false, nf, func(name string, bits int, data bool) uint64 {
		if bits > 12 {
			bits = 12
		}
		return uint64(c.Intn(1 << bits))
	})
	// Exactly one active stage per used state column (Validate's rule).
	ns := g.StatefulALU.NumStates()
	used := (len(states) + ns - 1) / ns
	for j := 0; j < g.Width; j++ {
		for i := 0; i < g.Stages; i++ {
			h.SaluActive[i][j] = 0
		}
		if j < used {
			h.SaluActive[c.Intn(g.Stages)][j] = 1
		}
	}
	cfg := &pisa.Config{Grid: g, Fields: fields, States: states, Values: h}
	if nf > 0 && c.Intn(2) == 0 {
		// Indicator allocation: a random partial permutation, drawn from a
		// shrinking free list so any Chooser terminates.
		free := make([]int, g.Width)
		for j := range free {
			free[j] = j
		}
		alloc := make([][]uint64, nf)
		for f := range alloc {
			alloc[f] = make([]uint64, g.Width)
			idx := c.Intn(len(free))
			alloc[f][free[idx]] = 1
			free = append(free[:idx], free[idx+1:]...)
		}
		cfg.Values.FieldAlloc = alloc
	}
	return cfg
}
