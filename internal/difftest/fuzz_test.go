package difftest

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

// FuzzSolver derives a CNF from fuzz bytes and differentially tests the
// production CDCL solver against the enumeration and DPLL references,
// including model validation and the DIMACS round trip.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 0, 255, 0, 255, 0})
	f.Add([]byte("dense unsat region steering bytes"))
	f.Fuzz(func(t *testing.T, data []byte) {
		formula := RandomFormula(NewByteChooser(data))
		if d := CheckSolver(formula, nil); d != nil {
			t.Fatal(d)
		}
		if d := CheckDIMACSRoundTrip(formula); d != nil {
			t.Fatal(d)
		}
	})
}

// FuzzCompileEquivalence derives a compile scenario from fuzz bytes, runs
// it through the full stack, and re-validates a feasible result against
// the brute-force interpreter oracle. Infeasible and timed-out outcomes
// are accepted as-is (the campaign's hole-sampling spot check covers
// those); what the fuzzer hunts here is a config that CEGIS "verified"
// but that disagrees with the reference semantics.
func FuzzCompileEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{200, 13, 86, 42, 9, 111, 250, 3, 17})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := RandomScenario(NewByteChooser(data), GenOptions{})
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
		defer cancel()
		rep, err := core.Compile(ctx, sc.Prog, compileOptions(sc, 1))
		if err != nil {
			t.Fatalf("compile error on generated program: %v\n%s", err, sc.Prog.Print())
		}
		if rep.TimedOut || !rep.Feasible {
			return
		}
		if d := CheckConfigEquivalence(sc.Prog, rep.Config, 1); d != nil {
			t.Fatalf("%s\nprogram:\n%s", d, sc.Prog.Print())
		}
	})
}
