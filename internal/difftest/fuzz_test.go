package difftest

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bpf"
	"repro/internal/core"
)

// FuzzSolver derives a CNF from fuzz bytes and differentially tests the
// production CDCL solver against the enumeration and DPLL references,
// including model validation and the DIMACS round trip.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 0, 255, 0, 255, 0})
	f.Add([]byte("dense unsat region steering bytes"))
	f.Fuzz(func(t *testing.T, data []byte) {
		formula := RandomFormula(NewByteChooser(data))
		if d := CheckSolver(formula, nil); d != nil {
			t.Fatal(d)
		}
		if d := CheckDIMACSRoundTrip(formula); d != nil {
			t.Fatal(d)
		}
	})
}

// FuzzCompileEquivalence derives a compile scenario from fuzz bytes, runs
// it through the full stack, and re-validates a feasible result against
// the brute-force interpreter oracle. Infeasible and timed-out outcomes
// are accepted as-is (the campaign's hole-sampling spot check covers
// those); what the fuzzer hunts here is a config that CEGIS "verified"
// but that disagrees with the reference semantics.
func FuzzCompileEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{200, 13, 86, 42, 9, 111, 250, 3, 17})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := RandomScenario(NewByteChooser(data), GenOptions{})
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Second)
		defer cancel()
		rep, err := core.Compile(ctx, sc.Prog, compileOptions(sc, 1))
		if err != nil {
			t.Fatalf("compile error on generated program: %v\n%s", err, sc.Prog.Print())
		}
		if rep.TimedOut || !rep.Feasible {
			return
		}
		if d := CheckConfigEquivalence(sc.Prog, rep.Config, 1); d != nil {
			t.Fatalf("%s\nprogram:\n%s", d, sc.Prog.Print())
		}
	})
}

// FuzzBPFCompileEquivalence is the register-machine sibling of
// FuzzCompileEquivalence: the same scenario draw, compiled for the bpf
// target at the fixed fuzz slot budget, with feasible results re-validated
// against the BPF brute-force oracle. Infeasible and timed-out outcomes
// are accepted — register-machine synthesis is slower than the grid's, so
// timeouts are common under fuzz instrumentation; what matters is that a
// "verified" register program never disagrees with the reference
// interpreter.
func FuzzBPFCompileEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{200, 13, 86, 42, 9, 111, 250, 3, 17})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := RandomScenario(NewByteChooser(data), GenOptions{})
		// 5s rather than the grid target's 8s: register-machine synthesis
		// under fuzz instrumentation times out on a sizable fraction of
		// draws, and a shorter leash buys iteration throughput.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rep, err := core.Compile(ctx, sc.Prog, bpfScenarioOptions(sc, 1))
		if err != nil {
			t.Fatalf("compile error on generated program: %v\n%s", err, sc.Prog.Print())
		}
		if rep.TimedOut || !rep.Feasible {
			return
		}
		cfg, ok := rep.Artifact.(*bpf.Config)
		if !ok {
			t.Fatalf("bpf artifact is %T, want *bpf.Config", rep.Artifact)
		}
		if d := CheckBPFConfigEquivalence(sc.Prog, cfg, 1); d != nil {
			t.Fatalf("%s\nprogram:\n%s", d, sc.Prog.Print())
		}
	})
}

// FuzzCompiledExec derives a random configuration from fuzz bytes — no
// synthesis in the loop, so iterations are cheap — and differentially
// tests the three execution paths against each other: the map-based
// Config.Exec, the allocation-free Config.ExecInto, and the compiled
// line-rate engine, including an exhaustive small-space sweep when the
// input space fits a fuzz-friendly budget.
func FuzzCompiledExec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9})
	f.Add([]byte{0, 255, 0, 255, 8, 8, 8, 8})
	f.Add([]byte{42, 17, 99, 1, 2, 3, 250, 128, 64, 32, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := RandomConfig(NewByteChooser(data))
		if err := cfg.Validate(); err != nil {
			t.Fatalf("RandomConfig built an invalid config: %v", err)
		}
		// Budgets are deliberately small: under fuzz instrumentation each
		// transaction costs microseconds, and throughput matters more than
		// per-input depth (the campaign and linerate tests go deep).
		nVars := len(cfg.Fields) + len(cfg.States)
		if 5*nVars <= 10 {
			small := *cfg
			small.Grid.WordWidth = 5
			if d := engineSweep(&small, nil, 0); d != nil {
				t.Fatalf("%s\nconfig:\n%s", d, cfg)
			}
		}
		rng := rand.New(rand.NewSource(1))
		if d := engineSweep(cfg, rng, 512); d != nil {
			t.Fatalf("%s\nconfig:\n%s", d, cfg)
		}
		// Triangulate the map-based path against the flat path.
		w := cfg.Grid.WordWidth
		scratch := cfg.NewScratch()
		fv := make([]uint64, len(cfg.Fields))
		sv := make([]uint64, len(cfg.States))
		for trial := 0; trial < 32; trial++ {
			pkt := map[string]uint64{}
			st := map[string]uint64{}
			for i, name := range cfg.Fields {
				fv[i] = w.Trunc(rng.Uint64())
				pkt[name] = fv[i]
			}
			for i, name := range cfg.States {
				sv[i] = w.Trunc(rng.Uint64())
				st[name] = sv[i]
			}
			outPkt, outSt := cfg.Exec(pkt, st)
			cfg.ExecInto(scratch, fv, sv)
			for i, name := range cfg.Fields {
				if fv[i] != outPkt[name] {
					t.Fatalf("pkt.%s: ExecInto=%d Exec=%d\nconfig:\n%s", name, fv[i], outPkt[name], cfg)
				}
			}
			for i, name := range cfg.States {
				if sv[i] != outSt[name] {
					t.Fatalf("state %s: ExecInto=%d Exec=%d\nconfig:\n%s", name, sv[i], outSt[name], cfg)
				}
			}
		}
	})
}
