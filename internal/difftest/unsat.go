package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/cegis"
	"repro/internal/interp"
	"repro/internal/pisa"
	"repro/internal/word"
)

// SpotCheckInfeasible probes an UNSAT-at-depth claim: when core.Compile
// reports a program infeasible on a grid, this samples random hole
// assignments at that depth and checks whether any of them implements the
// program — a configuration CEGIS should have found. A surviving sample
// must match the specification exhaustively at the small check width, at
// the effective synthesis width, and on a large random sample at the
// verification width before it is reported, so a report means the solver
// stack genuinely missed a solution (or mis-encoded the sketch).
//
// The check is probabilistic: it can only ever find false UNSATs, never
// certify them, and its hit rate depends on how dense solutions are in the
// hole space. For the tiny grids the fuzzing campaign uses, gross
// unsoundness (e.g. broken unit propagation wrongly pruning the search)
// makes almost every feasible program report infeasible, and those dense
// solution spaces are exactly the ones random sampling hits.
func SpotCheckInfeasible(sc Scenario, stages, samples int, seed int64) *Discrepancy {
	vars := sc.Prog.Variables()
	fields, states := vars.Fields, vars.States

	grid := pisa.GridSpec{
		Stages:       stages,
		Width:        sc.Width,
		WordWidth:    cegis.DefaultVerifyWidth,
		StatelessALU: sc.Stateless,
		StatefulALU:  sc.Stateful,
	}
	// Capacity rejections are legitimately infeasible with no config to
	// find; nothing to probe.
	if len(fields) > grid.Width || len(states) > grid.StateSlots() {
		return nil
	}

	rng := rand.New(rand.NewSource(seed))
	quick := quickProbes(sc.Prog, fields, states, grid.WordWidth, rng)
	for i := 0; i < samples; i++ {
		cfg := randomConfig(rng, grid, fields, states)
		if cfg.Validate() != nil {
			continue
		}
		// Cheap rejection first: almost every random config dies on the
		// first probe, keeping the per-sample cost near one Exec call.
		if !agreesOnProbes(sc.Prog, cfg, quick) {
			continue
		}
		// Survivor: apply the full oracle battery before alleging a bug.
		if d := CheckConfigEquivalence(sc.Prog, cfg, seed+int64(i)); d != nil {
			continue
		}
		synthCfg := *cfg
		synthCfg.Grid.WordWidth = effectiveSynthWidth(grid)
		if len(fields)+len(states) > 0 &&
			int(synthCfg.Grid.WordWidth)*(len(fields)+len(states)) <= exhaustiveBitBudget {
			if d := sweepExhaustive(sc.Prog, &synthCfg); d != nil {
				continue
			}
		}
		return &Discrepancy{
			Kind: KindMissedSolution,
			Detail: fmt.Sprintf("claimed infeasible at %d stages (width %d, %s ALU), but random sample %d/%d implements the program; config:\n%s",
				stages, grid.Width, sc.Stateful.Kind, i, samples, cfg),
		}
	}
	return nil
}

// effectiveSynthWidth mirrors cegis's clamp of the synthesis width to the
// sketch's minimum sound width: the widest control hole must not truncate.
// The dominant control hole is the 4-bit stateless opcode, so the default
// synthesis width already sits at the clamp for the campaign's grids.
func effectiveSynthWidth(grid pisa.GridSpec) word.Width {
	w := cegis.DefaultSynthWidth
	min := word.Width(alu.OpcodeBits)
	probe := func(bits int) {
		if word.Width(bits) > min {
			min = word.Width(bits)
		}
	}
	probe(grid.InputMuxBits())
	probe(grid.OutputMuxBits())
	for _, d := range grid.StatefulALU.Holes() {
		if !d.Data {
			probe(d.Bits)
		}
	}
	if min > w {
		w = min
	}
	return w
}

// probe is one precomputed (input, expected output) pair.
type probe struct {
	in, want interp.Snapshot
}

// quickProbes draws a handful of random inputs used for fast candidate
// rejection.
func quickProbes(prog *ast.Program, fields, states []string, w word.Width, rng *rand.Rand) []probe {
	in := interp.MustNew(w)
	probes := make([]probe, 0, 8)
	for i := 0; i < 8; i++ {
		snap := interp.NewSnapshot()
		for _, f := range fields {
			snap.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range states {
			snap.State[s] = w.Trunc(rng.Uint64())
		}
		want, err := in.Run(prog, snap)
		if err != nil {
			continue
		}
		probes = append(probes, probe{in: snap, want: want})
	}
	return probes
}

// agreesOnProbes runs the candidate config over the precomputed probes.
func agreesOnProbes(prog *ast.Program, cfg *pisa.Config, probes []probe) bool {
	for _, p := range probes {
		gotPkt, gotState := cfg.Exec(p.in.Pkt, p.in.State)
		for _, f := range cfg.Fields {
			if gotPkt[f] != p.want.Pkt[f] {
				return false
			}
		}
		for _, s := range cfg.States {
			if gotState[s] != p.want.State[s] {
				return false
			}
		}
	}
	return true
}

// randomConfig samples a uniformly random hole assignment for the grid and
// fixes it up to satisfy the structural allocation constraints
// (pisa.Config.Validate): used state slots active in exactly one stage,
// unused slots inactive. Mux holes may draw out-of-range values; the
// datapath clamps those to the last option, so each sample is still
// equivalent to some in-domain configuration.
func randomConfig(rng *rand.Rand, grid pisa.GridSpec, fields, states []string) *pisa.Config {
	vals := pisa.NewHoles[uint64](grid, false, len(fields), func(name string, bits int, data bool) uint64 {
		return rng.Uint64() & ((1 << uint(bits)) - 1)
	})
	ns := grid.StatefulALU.NumStates()
	usedSlots := 0
	if ns > 0 {
		usedSlots = (len(states) + ns - 1) / ns
	}
	for j := 0; j < grid.Width; j++ {
		active := -1
		if j < usedSlots {
			active = rng.Intn(grid.Stages)
		}
		for i := 0; i < grid.Stages; i++ {
			if i == active {
				vals.SaluActive[i][j] = 1
			} else {
				vals.SaluActive[i][j] = 0
			}
		}
	}
	return &pisa.Config{Grid: grid, Fields: fields, States: states, Values: vals}
}
