package difftest

import (
	"context"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/parser"
	"repro/internal/programs"
)

// marple_reorder at one stage is the repo's canonical proven-infeasible
// problem: its two outputs (state.max_seq, pkt.reordered) form a
// read-after-write chain no single stage can fold. A healthy forensics
// stack must blame a core that survives the audit — jointly UNSAT,
// minimal under single-member drops — without raising a discrepancy.
func TestCheckExplainMinimalHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs gated CEGIS plus audit re-solves")
	}
	b, err := programs.ByName("marple_reorder")
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Prog:      b.Parse(),
		Width:     b.Width,
		MaxStages: 1,
		Stateless: alu.Stateless{ConstBits: b.ConstBits},
		Stateful:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if d := CheckExplainMinimal(ctx, sc, sc.MaxStages, 7); d != nil {
		t.Fatalf("healthy forensics flagged: %s", d)
	}
}

// Feeding the oracle a scenario that is actually feasible must surface
// the divergence kind: the gated rerun synthesizes a config, directly
// contradicting the (presumed) ungated infeasibility verdict it was
// called to explain.
func TestCheckExplainMinimalFlagsFeasibleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("runs gated CEGIS")
	}
	sc := Scenario{
		Prog:      parser.MustParse("copy", "pkt.a = pkt.b;"),
		Width:     2,
		MaxStages: 1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := CheckExplainMinimal(ctx, sc, sc.MaxStages, 7)
	if d == nil {
		t.Fatal("feasible scenario produced no discrepancy")
	}
	if d.Kind != KindExplainDiverged {
		t.Fatalf("discrepancy kind = %q, want %q", d.Kind, KindExplainDiverged)
	}
}
