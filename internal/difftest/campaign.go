package difftest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/bpf"
	"repro/internal/core"
)

// CampaignOptions configures a fuzzing campaign.
type CampaignOptions struct {
	// Iters is the number of iterations. 0 means 100. When Duration is
	// also set, the campaign stops at whichever limit hits first.
	Iters int
	// Duration optionally bounds wall-clock time.
	Duration time.Duration
	// Seed makes the campaign reproducible: iteration i derives all its
	// randomness from Seed+i, so a failure can be replayed by rerunning
	// its iteration alone.
	Seed int64
	// Parallelism is the worker count. 0 means 1.
	Parallelism int
	// CompileTimeout bounds each core.Compile call. 0 means 10s.
	CompileTimeout time.Duration
	// MutantsEvery runs the metamorphic oracle every n-th iteration
	// (compiling mutants is the campaign's most expensive stage).
	// 0 means 8.
	MutantsEvery int
	// UnsatSamples is the number of random hole assignments probed per
	// infeasible verdict. 0 means 64.
	UnsatSamples int
	// ExplainEvery audits infeasibility forensics on every n-th
	// iteration's infeasible verdict: the blamed UNSAT core must be
	// jointly unsatisfiable and minimal under re-solve, and the gated
	// rerun must not contradict the ungated verdict. Forensics costs
	// roughly one extra compile attempt plus the minimization probes, so
	// it is subsampled like the metamorphic oracle. 0 means 4; negative
	// disables.
	ExplainEvery int
	// BPFEvery additionally compiles every n-th iteration's scenario for
	// the bpf register-machine target and re-validates a feasible result
	// against the BPF brute-force oracle. 0 disables (register-machine
	// synthesis is the campaign's slowest stage, so it is opt-in and meant
	// for the nightly run). Negative disables explicitly.
	BPFEvery int
	// ModeEvery recompiles every n-th iteration's scenario under
	// hole-elimination CEGIS and requires verdict agreement with the
	// counterexample-mode compile (CheckModeAgreement). Timeouts and
	// candidate-budget exhaustion are inconclusive, not divergences.
	// 0 disables (hole elimination can enumerate large model sets, so
	// the oracle is opt-in like BPFEvery).
	ModeEvery int
	// Gen bounds the program generator.
	Gen GenOptions
	// Artifacts receives one JSON line per failure, if non-nil.
	Artifacts io.Writer
	// Log receives progress lines, if non-nil.
	Log io.Writer
}

func (o CampaignOptions) iters() int {
	if o.Iters == 0 {
		return 100
	}
	return o.Iters
}

func (o CampaignOptions) parallelism() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

func (o CampaignOptions) compileTimeout() time.Duration {
	if o.CompileTimeout == 0 {
		return 10 * time.Second
	}
	return o.CompileTimeout
}

func (o CampaignOptions) mutantsEvery() int {
	if o.MutantsEvery == 0 {
		return 8
	}
	return o.MutantsEvery
}

func (o CampaignOptions) unsatSamples() int {
	if o.UnsatSamples == 0 {
		return 64
	}
	return o.UnsatSamples
}

func (o CampaignOptions) explainEvery() int {
	if o.ExplainEvery == 0 {
		return 4
	}
	return o.ExplainEvery
}

// Failure is one reported discrepancy, serialized as a JSONL artifact.
// Program is a standalone reproducer: the (minimized) Domino source of the
// offending program, re-parseable with internal/parser.
type Failure struct {
	Iter     int    `json:"iter"`
	Seed     int64  `json:"seed"`
	Kind     string `json:"kind"`
	Detail   string `json:"detail"`
	Program  string `json:"program,omitempty"`
	Width    int    `json:"width,omitempty"`
	Stages   int    `json:"max_stages,omitempty"`
	ALU      string `json:"alu,omitempty"`
	Shrunken bool   `json:"shrunken,omitempty"`
}

// Summary aggregates a campaign run.
type Summary struct {
	Iters        int `json:"iters"`
	Compiles     int `json:"compiles"`
	Feasible     int `json:"feasible"`
	Infeasible   int `json:"infeasible"`
	TimedOut     int `json:"timed_out"`
	SolverChecks int `json:"solver_checks"`
	Mutants      int `json:"mutants"`
	UnsatProbes  int `json:"unsat_probes"`
	// ExplainChecks counts infeasible verdicts whose forensics blame set
	// was audited for joint unsatisfiability and minimality
	// (CampaignOptions.ExplainEvery).
	ExplainChecks int `json:"explain_checks"`
	// BPFCompiles/BPFFeasible count the opt-in register-machine oracle
	// iterations (CampaignOptions.BPFEvery); a feasible BPF config is
	// checked against the interpreter like its grid counterpart.
	BPFCompiles int `json:"bpf_compiles,omitempty"`
	BPFFeasible int `json:"bpf_feasible,omitempty"`
	// ModeChecks counts mode-agreement oracle runs that reached a
	// conclusive comparison; ModeDiverged counts the runs where the two
	// CEGIS strategies disagreed (always also recorded as failures).
	ModeChecks   int `json:"mode_checks,omitempty"`
	ModeDiverged int `json:"mode_diverged,omitempty"`
	// EngineProbes counts random compiled-engine-vs-interpreter probe
	// inputs fired by the line-rate differential oracle (the exhaustive
	// small-width sweeps it also runs are not counted here).
	EngineProbes int `json:"engine_probes"`
	Failures     int `json:"failures"`
	// Campaign effort: total wall clock, throughput, and the per-oracle
	// time split (summed across workers, so the *_ms fields can exceed
	// ElapsedMS under parallelism). These feed the performance history so
	// nightly fuzz throughput regressions are visible.
	ElapsedMS   float64 `json:"elapsed_ms"`
	ItersPerSec float64 `json:"iters_per_sec"`
	SolverMS    float64 `json:"solver_ms"`
	CompileMS   float64 `json:"compile_ms"`
	OracleMS    float64 `json:"oracle_ms"`
	MutantMS    float64 `json:"mutant_ms"`
	BPFMS       float64 `json:"bpf_ms,omitempty"`
}

// Samples flattens the summary for the performance history
// (internal/perfhist). iters_per_sec is the gate-worthy throughput
// metric; the rest give the trend tables their context.
func (s Summary) Samples() map[string]float64 {
	return map[string]float64{
		"iters":          float64(s.Iters),
		"compiles":       float64(s.Compiles),
		"feasible":       float64(s.Feasible),
		"infeasible":     float64(s.Infeasible),
		"timed_out":      float64(s.TimedOut),
		"solver_checks":  float64(s.SolverChecks),
		"mutants":        float64(s.Mutants),
		"explain_checks": float64(s.ExplainChecks),
		"engine_probes":  float64(s.EngineProbes),
		"failures":       float64(s.Failures),
		"bpf_compiles":   float64(s.BPFCompiles),
		"bpf_feasible":   float64(s.BPFFeasible),
		"mode_checks":    float64(s.ModeChecks),
		"mode_diverged":  float64(s.ModeDiverged),
		"elapsed_ms":     s.ElapsedMS,
		"iters_per_sec":  s.ItersPerSec,
		"solver_ms":      s.SolverMS,
		"compile_ms":     s.CompileMS,
		"oracle_ms":      s.OracleMS,
		"mutant_ms":      s.MutantMS,
		"bpf_ms":         s.BPFMS,
	}
}

// Run executes a campaign: every iteration differentially tests the SAT
// solver on a random CNF, round-trips it through DIMACS, compiles a random
// program through the full stack, cross-checks feasible results against
// the brute-force oracle, spot-checks infeasible claims by hole sampling,
// and periodically applies the metamorphic mutation oracle. It returns the
// summary plus all failures (minimized where a shrinker applies).
func Run(ctx context.Context, opts CampaignOptions) (Summary, []Failure, error) {
	var (
		mu       sync.Mutex
		sum      Summary
		failures []Failure
	)
	start := time.Now()
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = time.Now().Add(opts.Duration)
	}

	record := func(f Failure) {
		mu.Lock()
		defer mu.Unlock()
		failures = append(failures, f)
		sum.Failures++
		if opts.Artifacts != nil {
			if b, err := json.Marshal(f); err == nil {
				fmt.Fprintln(opts.Artifacts, string(b))
			}
		}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "FAIL iter=%d seed=%d kind=%s\n%s\n", f.Iter, f.Seed, f.Kind, f.Detail)
		}
	}

	iterCh := make(chan int)
	var wg sync.WaitGroup
	workers := opts.parallelism()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range iterCh {
				runIteration(ctx, i, opts, &mu, &sum, record)
			}
		}()
	}

feed:
	for i := 0; i < opts.iters(); i++ {
		if ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline)) {
			break feed
		}
		select {
		case iterCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(iterCh)
	wg.Wait()

	elapsed := time.Since(start)
	sum.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		sum.ItersPerSec = float64(sum.Iters) / elapsed.Seconds()
	}

	if opts.Log != nil {
		b, _ := json.Marshal(sum)
		fmt.Fprintf(opts.Log, "campaign summary: %s\n", string(b))
	}
	return sum, failures, nil
}

// runIteration is one unit of campaign work, fully determined by
// opts.Seed + i.
func runIteration(ctx context.Context, i int, opts CampaignOptions, mu *sync.Mutex, sum *Summary, record func(Failure)) {
	seed := opts.Seed + int64(i)
	rng := rand.New(rand.NewSource(seed))
	count := func(f func(s *Summary)) {
		mu.Lock()
		f(sum)
		mu.Unlock()
	}
	count(func(s *Summary) { s.Iters++ })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	// Stage 1: solver differential + DIMACS round trip. Cheap, every
	// iteration; this is what catches solver mutations within a few
	// hundred iterations regardless of how compiles behave.
	t0 := time.Now()
	f := RandomFormula(rng)
	count(func(s *Summary) { s.SolverChecks++ })
	if d := CheckSolver(f, nil); d != nil {
		record(Failure{Iter: i, Seed: seed, Kind: d.Kind, Detail: d.Detail})
	}
	if d := CheckDIMACSRoundTrip(f); d != nil {
		record(Failure{Iter: i, Seed: seed, Kind: d.Kind, Detail: d.Detail})
	}
	solverDur := time.Since(t0)
	count(func(s *Summary) { s.SolverMS += ms(solverDur) })

	// Stage 2: compile a random program and re-validate the outcome.
	sc := RandomScenario(rng, opts.Gen)
	cctx, cancel := context.WithTimeout(ctx, opts.compileTimeout())
	t0 = time.Now()
	rep, err := core.Compile(cctx, sc.Prog, compileOptions(sc, seed))
	compileDur := time.Since(t0)
	cancel()
	count(func(s *Summary) { s.Compiles++; s.CompileMS += ms(compileDur) })
	t0 = time.Now()
	fail := func(kind, detail string, prog string, shrunken bool) {
		record(Failure{
			Iter: i, Seed: seed, Kind: kind, Detail: detail,
			Program: prog, Width: sc.Width, Stages: sc.MaxStages,
			ALU: sc.Stateful.Kind.String(), Shrunken: shrunken,
		})
	}
	switch {
	case err != nil:
		fail(KindCompileError, err.Error(), sc.Prog.Print(), false)
	case rep.TimedOut:
		count(func(s *Summary) { s.TimedOut++ })
	case rep.Feasible:
		count(func(s *Summary) { s.Feasible++ })
		if d := CheckConfigEquivalence(sc.Prog, rep.Config, seed); d != nil {
			min := shrinkCompileFailure(ctx, sc, seed, opts.compileTimeout())
			fail(d.Kind, d.Detail, min.Print(), min != sc.Prog)
		}
		// The compiled engine must track the interpreted datapath too.
		// Both sides are allocation-free, so these probes are nearly free
		// next to the compile that produced the config.
		const engineProbes = 4096
		count(func(s *Summary) { s.EngineProbes += engineProbes })
		if d := CheckEngineEquivalence(rep.Config, seed, engineProbes); d != nil {
			fail(d.Kind, d.Detail, sc.Prog.Print(), false)
		}
	default:
		count(func(s *Summary) { s.Infeasible++ })
		count(func(s *Summary) { s.UnsatProbes += opts.unsatSamples() })
		if d := SpotCheckInfeasible(sc, sc.MaxStages, opts.unsatSamples(), seed); d != nil {
			fail(d.Kind, d.Detail, sc.Prog.Print(), false)
		}
		// Forensics minimality oracle on a subsample: re-derive the blamed
		// UNSAT core for this verdict and hold it to its contract.
		if opts.explainEvery() > 0 && i%opts.explainEvery() == 0 {
			count(func(s *Summary) { s.ExplainChecks++ })
			ectx, ecancel := context.WithTimeout(ctx, opts.compileTimeout())
			d := CheckExplainMinimal(ectx, sc, sc.MaxStages, seed)
			ecancel()
			if d != nil {
				fail(d.Kind, d.Detail, sc.Prog.Print(), false)
			}
		}
	}
	oracleDur := time.Since(t0)
	count(func(s *Summary) { s.OracleMS += ms(oracleDur) })

	// Stage 2b: register-machine oracle on a subsample of iterations. The
	// same scenario is recompiled for the bpf target at the fixed fuzz slot
	// budget; a feasible register program must agree with the interpreter.
	// Infeasible and timed-out outcomes are accepted (the two targets'
	// resource models are incomparable, so no cross-target metamorphic
	// claim is made).
	if opts.BPFEvery > 0 && i%opts.BPFEvery == 0 {
		t0 = time.Now()
		bctx, bcancel := context.WithTimeout(ctx, opts.compileTimeout())
		brep, berr := core.Compile(bctx, sc.Prog, bpfScenarioOptions(sc, seed))
		bcancel()
		count(func(s *Summary) { s.BPFCompiles++ })
		switch {
		case berr != nil:
			fail(KindCompileError, "bpf: "+berr.Error(), sc.Prog.Print(), false)
		case brep.TimedOut || !brep.Feasible:
			// Accepted as-is.
		default:
			count(func(s *Summary) { s.BPFFeasible++ })
			if cfg, ok := brep.Artifact.(*bpf.Config); ok {
				if d := CheckBPFConfigEquivalence(sc.Prog, cfg, seed); d != nil {
					fail(d.Kind, "bpf: "+d.Detail, sc.Prog.Print(), false)
				}
			} else {
				fail(KindConfigMismatch, fmt.Sprintf("bpf artifact is %T, want *bpf.Config", brep.Artifact), sc.Prog.Print(), false)
			}
		}
		count(func(s *Summary) { s.BPFMS += ms(time.Since(t0)) })
	}

	// Stage 2c: CEGIS-strategy differential on a subsample of iterations.
	// Both modes search the same candidate space, so conclusive verdicts
	// must agree; the whole comparison is inconclusive when either side
	// times out or exhausts its candidate budget.
	if opts.ModeEvery > 0 && i%opts.ModeEvery == 0 {
		t0 = time.Now()
		// Twice the single-compile budget: the oracle runs both modes.
		octx, ocancel := context.WithTimeout(ctx, 2*opts.compileTimeout())
		d, conclusive := CheckModeAgreement(octx, sc, seed)
		ocancel()
		if conclusive {
			count(func(s *Summary) { s.ModeChecks++ })
		}
		if d != nil {
			if d.Kind == KindModeDiverged {
				count(func(s *Summary) { s.ModeDiverged++ })
			}
			fail(d.Kind, d.Detail, sc.Prog.Print(), false)
		}
		count(func(s *Summary) { s.OracleMS += ms(time.Since(t0)) })
	}

	// Stage 3: metamorphic oracle on a subsample of iterations.
	if opts.mutantsEvery() > 0 && i%opts.mutantsEvery() == 0 && err == nil && rep != nil && !rep.TimedOut {
		t0 = time.Now()
		mctx, mcancel := context.WithTimeout(ctx, 4*opts.compileTimeout())
		ds, merr := CheckMetamorphic(mctx, sc, 2, seed)
		mcancel()
		mutantDur := time.Since(t0)
		count(func(s *Summary) { s.Mutants += 2; s.MutantMS += ms(mutantDur) })
		if merr != nil {
			fail(KindCompileError, merr.Error(), sc.Prog.Print(), false)
		}
		for _, d := range ds {
			fail(d.Kind, d.Detail, sc.Prog.Print(), false)
		}
	}
}

// shrinkCompileFailure minimizes a program whose feasible config failed
// the equivalence oracle: the failure predicate recompiles each candidate
// and keeps it only if it still produces a feasible-but-wrong config.
func shrinkCompileFailure(ctx context.Context, sc Scenario, seed int64, timeout time.Duration) *ast.Program {
	pred := func(cand *ast.Program) bool {
		cctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		rep, err := core.Compile(cctx, cand, compileOptions(Scenario{
			Prog: cand, Width: sc.Width, MaxStages: sc.MaxStages,
			Stateless: sc.Stateless, Stateful: sc.Stateful,
		}, seed))
		if err != nil || rep.TimedOut || !rep.Feasible {
			return false
		}
		return CheckConfigEquivalence(cand, rep.Config, seed) != nil
	}
	return Shrink(sc.Prog, pred)
}
