package difftest

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/sat"
	"repro/internal/word"
)

func TestByteChooser(t *testing.T) {
	c := NewByteChooser([]byte{0, 7, 255})
	for i, want := range []int{0, 7, 255 % 10, 0, 7 % 3} {
		n := []int{10, 10, 10, 10, 3}[i]
		if got := c.Intn(n); got != want {
			t.Fatalf("choice %d: Intn(%d) = %d, want %d", i, n, got, want)
		}
	}
	empty := NewByteChooser(nil)
	for i := 0; i < 5; i++ {
		if got := empty.Intn(7); got != 0 {
			t.Fatalf("empty chooser returned %d, want 0", got)
		}
	}
}

// TestRandomScenarioWellFormed checks every generated program prints to
// source the parser accepts back into an identical AST, and runs cleanly
// under the interpreter — the contract cmd/chipfuzz reproducer artifacts
// depend on.
func TestRandomScenarioWellFormed(t *testing.T) {
	in := interp.MustNew(word.Width(4))
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := RandomScenario(rng, GenOptions{})
		if sc.Width < 1 || sc.MaxStages < 1 {
			t.Fatalf("seed %d: degenerate scenario width=%d stages=%d", seed, sc.Width, sc.MaxStages)
		}
		src := sc.Prog.Print()
		back, err := parser.Parse(sc.Prog.Name, src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not re-parse: %v\n%s", seed, err, src)
		}
		if !ast.EqualStmts(sc.Prog.Stmts, back.Stmts) {
			t.Fatalf("seed %d: print/parse round trip changed the AST:\n%s", seed, src)
		}
		vars := sc.Prog.Variables()
		if len(vars.Fields) > sc.Width {
			t.Fatalf("seed %d: %d fields exceed declared width %d", seed, len(vars.Fields), sc.Width)
		}
		snap := interp.NewSnapshot()
		for _, f := range vars.Fields {
			snap.Pkt[f] = uint64(rng.Intn(16))
		}
		for _, s := range vars.States {
			snap.State[s] = uint64(rng.Intn(16))
		}
		if _, err := in.Run(sc.Prog, snap); err != nil {
			t.Fatalf("seed %d: interpreter rejected generated program: %v\n%s", seed, err, src)
		}
	}
}

// TestByteChooserDrivesGenerator checks the fuzz-facing path: arbitrary
// byte strings must always produce a valid scenario.
func TestByteChooserDrivesGenerator(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{255, 255, 255, 255},
		[]byte("arbitrary fuzz bytes \x00\x01\x02"),
	}
	for _, data := range inputs {
		sc := RandomScenario(NewByteChooser(data), GenOptions{})
		if _, err := parser.Parse("fuzz", sc.Prog.Print()); err != nil {
			t.Fatalf("bytes %q: invalid program: %v\n%s", data, err, sc.Prog.Print())
		}
	}
}

// TestCheckSolverDetectsFlippedVerdict proves the differential oracle
// catches a solver that inverts its verdict — the class of bug a broken
// watched-literal scheme produces.
func TestCheckSolverDetectsFlippedVerdict(t *testing.T) {
	flipped := func(f *sat.Formula) (sat.Status, []bool) {
		st, model := CDCLSolve(f)
		switch st {
		case sat.Sat:
			return sat.Unsat, nil
		case sat.Unsat:
			return sat.Sat, make([]bool, f.NumVars)
		}
		return st, model
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		f := RandomFormula(rng)
		if d := CheckSolver(f, flipped); d != nil {
			if d.Kind != KindSolverMismatch && d.Kind != KindModelInvalid {
				t.Fatalf("unexpected discrepancy kind %q", d.Kind)
			}
			return
		}
	}
	t.Fatal("flipped solver not detected in 50 formulas")
}

// TestCheckSolverDetectsBogusModel proves a correct verdict with an
// unsatisfying model is still rejected.
func TestCheckSolverDetectsBogusModel(t *testing.T) {
	bogus := func(f *sat.Formula) (sat.Status, []bool) {
		st, _ := CDCLSolve(f)
		return st, make([]bool, f.NumVars) // all-false, usually not a model
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		f := RandomFormula(rng)
		if d := CheckSolver(f, bogus); d != nil {
			if d.Kind != KindModelInvalid {
				t.Fatalf("unexpected discrepancy kind %q", d.Kind)
			}
			return
		}
	}
	t.Fatal("bogus model not detected in 100 formulas")
}

func TestCheckSolverPassesProductionSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		f := RandomFormula(rng)
		if d := CheckSolver(f, nil); d != nil {
			t.Fatalf("trial %d: %s", trial, d)
		}
		if d := CheckDIMACSRoundTrip(f); d != nil {
			t.Fatalf("trial %d: %s", trial, d)
		}
	}
}

// TestCheckConfigEquivalenceDetectsWrongConfig compiles one program and
// checks its config against a different program: the brute-force oracle
// must notice.
func TestCheckConfigEquivalenceDetectsWrongConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles through CEGIS")
	}
	prog := parser.MustParse("inc", "pkt.a = pkt.a + 1;")
	other := parser.MustParse("inc2", "pkt.a = pkt.a + 2;")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := core.Compile(ctx, prog, core.Options{Width: 1, MaxStages: 1})
	if err != nil || !rep.Feasible {
		t.Fatalf("baseline compile failed: err=%v rep=%+v", err, rep)
	}
	if d := CheckConfigEquivalence(prog, rep.Config, 1); d != nil {
		t.Fatalf("honest config flagged: %s", d)
	}
	d := CheckConfigEquivalence(other, rep.Config, 1)
	if d == nil {
		t.Fatal("config for pkt.a+1 passed as implementation of pkt.a+2")
	}
	if d.Kind != KindConfigMismatch {
		t.Fatalf("discrepancy kind = %q, want %q", d.Kind, KindConfigMismatch)
	}
}

func TestShrinkMinimizesToFailureCore(t *testing.T) {
	prog := parser.MustParse("big", `
int s = 5;
pkt.b = pkt.b + 3;
if (pkt.a < 4) {
  s = s + pkt.a;
  pkt.c = pkt.c ^ pkt.b;
}
pkt.a = (pkt.a + pkt.b) - (1 + 2);
`)
	// Failure: "the program subtracts somewhere". The shrinker should strip
	// everything except one subtraction.
	containsSub := func(p *ast.Program) bool {
		return strings.Contains(p.Print(), "-")
	}
	if !containsSub(prog) {
		t.Fatal("precondition: source must contain a subtraction")
	}
	min := Shrink(prog, containsSub)
	if !containsSub(min) {
		t.Fatalf("shrinker lost the failing property:\n%s", min.Print())
	}
	if len(min.Stmts) != 1 {
		t.Fatalf("shrunk to %d statements, want 1:\n%s", len(min.Stmts), min.Print())
	}
	if got := min.Init["s"]; got != 0 {
		t.Fatalf("Init[s] = %d, want shrunk to 0", got)
	}
	// The minimized program must still be valid, re-parseable source.
	if _, err := parser.Parse("min", min.Print()); err != nil {
		t.Fatalf("shrunk program does not parse: %v\n%s", err, min.Print())
	}
}

func TestShrinkRespectsStepBudget(t *testing.T) {
	prog := parser.MustParse("b", "pkt.a = pkt.a + pkt.b; pkt.b = pkt.b + 1;")
	calls := 0
	min := Shrink(prog, func(p *ast.Program) bool {
		calls++
		return true // everything "fails": worst case for the loop
	})
	if calls > 400 {
		t.Fatalf("predicate called %d times, budget is 400", calls)
	}
	if min == nil {
		t.Fatal("nil result")
	}
}

// TestCampaignSmoke runs a tiny end-to-end campaign: it must finish, count
// consistently, and find no discrepancies in a healthy tree.
func TestCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles through CEGIS")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var artifacts strings.Builder
	sum, failures, err := Run(ctx, CampaignOptions{
		Iters:          8,
		Seed:           7,
		Parallelism:    2,
		CompileTimeout: 20 * time.Second,
		MutantsEvery:   4,
		UnsatSamples:   16,
		Artifacts:      &artifacts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Iters != 8 {
		t.Fatalf("ran %d iterations, want 8", sum.Iters)
	}
	if sum.Compiles != 8 || sum.SolverChecks != 8 {
		t.Fatalf("inconsistent counters: %+v", sum)
	}
	if sum.Feasible+sum.Infeasible+sum.TimedOut > sum.Compiles {
		t.Fatalf("outcome counters exceed compiles: %+v", sum)
	}
	if len(failures) != 0 {
		t.Fatalf("campaign found %d discrepancies on a healthy tree:\n%s", len(failures), artifacts.String())
	}
	if artifacts.Len() != 0 {
		t.Fatalf("artifacts written with no failures:\n%s", artifacts.String())
	}
	// Campaign effort must be accounted: elapsed time, throughput, and a
	// nonzero per-oracle split for the stages that always run.
	if sum.ElapsedMS <= 0 || sum.ItersPerSec <= 0 {
		t.Errorf("effort totals: elapsed=%v iters/sec=%v", sum.ElapsedMS, sum.ItersPerSec)
	}
	if sum.SolverMS <= 0 || sum.CompileMS <= 0 {
		t.Errorf("per-oracle split: solver=%v compile=%v", sum.SolverMS, sum.CompileMS)
	}
	samples := sum.Samples()
	for _, name := range []string{"iters", "compiles", "iters_per_sec", "solver_ms", "compile_ms", "oracle_ms", "mutant_ms", "failures"} {
		if _, ok := samples[name]; !ok {
			t.Errorf("Samples missing %q", name)
		}
	}
	if samples["iters"] != 8 || samples["failures"] != 0 {
		t.Errorf("sample values: %v", samples)
	}
}

// TestCampaignSurfacesInjectedDiscrepancy routes the campaign's failure
// path end to end: a metamorphic scenario with a broken "mutant" is
// simulated by checking CheckMetamorphic directly on a program whose
// mutant set is healthy, then asserting the JSONL artifact writer fires
// for an injected record.
func TestCampaignArtifactFormat(t *testing.T) {
	var buf strings.Builder
	_, failures, err := Run(context.Background(), CampaignOptions{
		Iters:        1,
		Seed:         11,
		MutantsEvery: -1, // disable mutants: keep this test about plumbing
		Artifacts:    &buf,
		// Zero-iteration compile budget forces TimedOut, not failures.
		CompileTimeout: 1 * time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		if f.Kind == "" {
			t.Fatalf("failure with empty kind: %+v", f)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("artifact line is not a JSON object: %q", line)
		}
	}
}
