package difftest

import (
	"repro/internal/ast"
)

// Shrink minimizes a failing program: it greedily applies
// semantics-shrinking reductions (drop a statement, unwrap an if to one of
// its branches, replace an expression by a subexpression or a constant)
// and keeps any reduction on which the failure predicate still holds,
// iterating to a fixpoint. The predicate receives candidate programs and
// must be pure; it is called at most maxShrinkSteps times so shrinking a
// compile-backed failure stays bounded.
func Shrink(prog *ast.Program, failing func(*ast.Program) bool) *ast.Program {
	const maxShrinkSteps = 400
	steps := 0
	check := func(cand *ast.Program) bool {
		if steps >= maxShrinkSteps {
			return false
		}
		steps++
		return failing(cand)
	}

	cur := prog.Clone()
	for {
		reduced := false
		for _, cand := range reductions(cur) {
			if check(cand) {
				cur = cand
				reduced = true
				break
			}
		}
		if !reduced || steps >= maxShrinkSteps {
			return cur
		}
	}
}

// reductions enumerates candidate one-step reductions of the program, most
// aggressive first.
func reductions(p *ast.Program) []*ast.Program {
	var out []*ast.Program
	emit := func(mutate func(c *ast.Program)) {
		c := p.Clone()
		mutate(c)
		out = append(out, c)
	}

	// Drop each top-level statement (and statements inside if bodies).
	dropAt := func(list []ast.Stmt, i int) []ast.Stmt {
		cp := append([]ast.Stmt{}, list[:i]...)
		return append(cp, list[i+1:]...)
	}
	for i := range p.Stmts {
		i := i
		emit(func(c *ast.Program) { c.Stmts = dropAt(c.Stmts, i) })
	}

	// Unwrap each if to its then-branch or its else-branch.
	for i, s := range p.Stmts {
		if _, ok := s.(*ast.If); !ok {
			continue
		}
		i := i
		emit(func(c *ast.Program) {
			ifs := c.Stmts[i].(*ast.If)
			repl := append([]ast.Stmt{}, c.Stmts[:i]...)
			repl = append(repl, ifs.Then...)
			c.Stmts = append(repl, c.Stmts[i+1:]...)
		})
		emit(func(c *ast.Program) {
			ifs := c.Stmts[i].(*ast.If)
			repl := append([]ast.Stmt{}, c.Stmts[:i]...)
			repl = append(repl, ifs.Else...)
			c.Stmts = append(repl, c.Stmts[i+1:]...)
		})
	}

	// Drop statements nested inside if bodies.
	forEachIf(p.Stmts, func(path []int) {
		ifs := ifAt(p.Stmts, path)
		for bi, body := range [][]ast.Stmt{ifs.Then, ifs.Else} {
			for k := range body {
				bi, k, path := bi, k, append([]int{}, path...)
				emit(func(c *ast.Program) {
					ci := ifAt(c.Stmts, path)
					if bi == 0 {
						ci.Then = dropAt(ci.Then, k)
					} else {
						ci.Else = dropAt(ci.Else, k)
					}
				})
			}
		}
	})

	// Replace each expression slot by one of its direct subexpressions, or
	// by the constants 0 and 1.
	slots := exprSlots(p)
	for si := range slots {
		si := si
		sub := subExprs(*slots[si])
		for _, repl := range sub {
			repl := ast.CloneExpr(repl)
			emit(func(c *ast.Program) { *exprSlots(c)[si] = repl })
		}
		if _, isNum := (*slots[si]).(*ast.Num); !isNum {
			emit(func(c *ast.Program) { *exprSlots(c)[si] = &ast.Num{Value: 0} })
			emit(func(c *ast.Program) { *exprSlots(c)[si] = &ast.Num{Value: 1} })
		}
	}

	// Drop state initializers (shrinks Init toward zero values).
	for name, v := range p.Init {
		if v == 0 {
			continue
		}
		name := name
		emit(func(c *ast.Program) { c.Init[name] = 0 })
	}

	return out
}

// exprSlots collects pointers to every expression position, in a
// deterministic order that is stable across clones of the same shape.
func exprSlots(p *ast.Program) []*ast.Expr {
	var slots []*ast.Expr
	var walkExpr func(slot *ast.Expr)
	walkExpr = func(slot *ast.Expr) {
		slots = append(slots, slot)
		switch e := (*slot).(type) {
		case *ast.Unary:
			walkExpr(&e.X)
		case *ast.Binary:
			walkExpr(&e.X)
			walkExpr(&e.Y)
		case *ast.Ternary:
			walkExpr(&e.Cond)
			walkExpr(&e.T)
			walkExpr(&e.F)
		}
	}
	var walkStmts func(ss []ast.Stmt)
	walkStmts = func(ss []ast.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *ast.Assign:
				walkExpr(&s.RHS)
			case *ast.If:
				walkExpr(&s.Cond)
				walkStmts(s.Then)
				walkStmts(s.Else)
			}
		}
	}
	walkStmts(p.Stmts)
	return slots
}

// subExprs returns the direct subexpressions of e.
func subExprs(e ast.Expr) []ast.Expr {
	switch e := e.(type) {
	case *ast.Unary:
		return []ast.Expr{e.X}
	case *ast.Binary:
		return []ast.Expr{e.X, e.Y}
	case *ast.Ternary:
		return []ast.Expr{e.T, e.F, e.Cond}
	}
	return nil
}

// forEachIf visits every if statement by its path of statement indices.
func forEachIf(stmts []ast.Stmt, fn func(path []int)) {
	var walk func(ss []ast.Stmt, prefix []int)
	walk = func(ss []ast.Stmt, prefix []int) {
		for i, s := range ss {
			ifs, ok := s.(*ast.If)
			if !ok {
				continue
			}
			path := append(append([]int{}, prefix...), i)
			fn(path)
			walk(ifs.Then, append(path, 0))
			walk(ifs.Else, append(path, 1))
		}
	}
	walk(stmts, nil)
}

// ifAt resolves an if-statement path produced by forEachIf: indices
// alternate (stmt index, branch selector, stmt index, ...).
func ifAt(stmts []ast.Stmt, path []int) *ast.If {
	cur := stmts
	var ifs *ast.If
	for i := 0; i < len(path); i += 2 {
		ifs = cur[path[i]].(*ast.If)
		if i+1 < len(path) {
			if path[i+1] == 0 {
				cur = ifs.Then
			} else {
				cur = ifs.Else
			}
		}
	}
	return ifs
}
