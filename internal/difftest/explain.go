package difftest

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cegis"
	"repro/internal/pisa"
	"repro/internal/sketch"
)

// CheckExplainMinimal audits infeasibility forensics on a scenario the
// compiler judged unsatisfiable at its stage budget. It re-runs the gated
// explain pass (cegis.AuditCore) and verifies the advertised blame-set
// contract by direct re-solves against the same encoding: the blamed core
// alone must still be UNSAT under its group assumptions, and dropping any
// single member must flip the verdict to SAT. It also catches the gated
// rerun disagreeing with the ungated verdict — synthesizing a verified
// configuration at a size the plain encoding proved impossible — which
// would mean group gating changed the encoding's semantics.
//
// Unlike SpotCheckInfeasible this oracle is deterministic and complete
// for what it claims: a reported discrepancy always indicates a bug in
// the forensics machinery (selector allocation, final-conflict analysis,
// or deletion minimization), never bad luck. Timeouts and capacity
// rejections return nil: there is no completed claim to audit.
func CheckExplainMinimal(ctx context.Context, sc Scenario, stages int, seed int64) *Discrepancy {
	be := sketch.PISABackend{Grid: pisa.GridSpec{
		Width:        sc.Width,
		WordWidth:    cegis.DefaultVerifyWidth,
		StatelessALU: sc.Stateless,
		StatefulALU:  sc.Stateful,
	}}
	res, defects, err := cegis.AuditCore(ctx, sc.Prog, be, stages, cegis.Options{Seed: seed})
	if err != nil {
		return &Discrepancy{Kind: KindCompileError, Detail: "explain: " + err.Error()}
	}
	switch {
	case res.CapacityExceeded || res.TimedOut:
		return nil
	case res.Feasible:
		return &Discrepancy{Kind: KindExplainDiverged, Detail: fmt.Sprintf(
			"gated forensics rerun synthesized a verified config at %d stages (width %d, %s ALU) where the ungated compile proved infeasibility",
			stages, sc.Width, sc.Stateful.Kind)}
	case len(defects) > 0:
		return &Discrepancy{Kind: KindCoreNotMinimal, Detail: strings.Join(defects, "\n")}
	}
	return nil
}
