package difftest

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// CheckModeAgreement is the differential oracle over CEGIS strategies:
// counterexample-guided and hole-elimination search explore the same
// candidate space under the same correctness condition, so whenever both
// reach a verdict on a scenario they must reach the same one. A
// feasible hole-elimination result is additionally held to the
// interpreter- and engine-equivalence oracles, since its witness comes
// off a search path (model enumeration with blocking clauses) the
// default pipeline never exercises.
//
// Returns (discrepancy, conclusive): a timeout — including
// hole-elimination's candidate-budget exhaustion, which the core
// reports as TimedOut — on either side makes the comparison
// inconclusive, reported as (nil, false). Hard compile errors are
// discrepancies in their own right: the strategy axis must never change
// whether options validate.
func CheckModeAgreement(ctx context.Context, sc Scenario, seed int64) (*Discrepancy, bool) {
	cexOpts := compileOptions(sc, seed)
	cexRep, err := core.Compile(ctx, sc.Prog, cexOpts)
	if err != nil {
		return &Discrepancy{Kind: KindCompileError, Detail: "mode cex: " + err.Error()}, true
	}
	holOpts := compileOptions(sc, seed)
	holOpts.CEGISMode = "holes"
	holRep, err := core.Compile(ctx, sc.Prog, holOpts)
	if err != nil {
		return &Discrepancy{Kind: KindCompileError, Detail: "mode holes: " + err.Error()}, true
	}
	if cexRep.TimedOut || holRep.TimedOut {
		return nil, false
	}
	if cexRep.Feasible != holRep.Feasible {
		return &Discrepancy{
			Kind: KindModeDiverged,
			Detail: fmt.Sprintf("counterexample mode feasible=%v, hole-elimination mode feasible=%v\nprogram:\n%s",
				cexRep.Feasible, holRep.Feasible, sc.Prog.Print()),
		}, true
	}
	if !holRep.Feasible {
		return nil, true
	}
	if d := CheckConfigEquivalence(sc.Prog, holRep.Config, seed); d != nil {
		d.Detail = "mode holes: " + d.Detail
		return d, true
	}
	if d := CheckEngineEquivalence(holRep.Config, seed, 512); d != nil {
		d.Detail = "mode holes: " + d.Detail
		return d, true
	}
	return nil, true
}
