package difftest

import (
	"bytes"
	"fmt"

	"time"

	"repro/internal/sat"
)

// SolveFunc abstracts "run the production solver on a formula" so tests
// can substitute a deliberately broken implementation and prove the
// differential oracle detects it. It returns the verdict and, on Sat, a
// model indexed by variable.
type SolveFunc func(*sat.Formula) (sat.Status, []bool)

// cdclConflictBudget and cdclTimeLimit bound a differential solve. The
// formulas RandomFormula emits need well under a thousand conflicts and a
// few milliseconds on a healthy solver, so hitting either bound means the
// search itself is broken (a wrong learnt clause, or a livelocking
// propagation loop that never conflicts) — which CheckSolver reports as a
// discrepancy rather than hanging the campaign on it.
const (
	cdclConflictBudget = 200_000
	cdclTimeLimit      = 2 * time.Second
)

// CDCLSolve is the production SolveFunc: load the formula into a fresh
// CDCL solver and solve. A search that exhausts its conflict budget or its
// wall-clock limit returns Unknown, which never matches a reference
// verdict.
func CDCLSolve(f *sat.Formula) (sat.Status, []bool) {
	// The stop hook goes in before loading: clause loading runs top-level
	// unit propagation, which a broken solver can livelock too.
	s := sat.New()
	deadline := time.Now().Add(cdclTimeLimit)
	s.SetStop(func() bool { return time.Now().After(deadline) })
	if !f.LoadInto(s) {
		return sat.Unsat, nil
	}
	st, err := s.SolveWithBudget(cdclConflictBudget)
	if err != nil {
		return sat.Unknown, nil
	}
	if st != sat.Sat {
		return st, nil
	}
	model := make([]bool, f.NumVars)
	for v := 0; v < f.NumVars; v++ {
		model[v] = s.Value(sat.Var(v))
	}
	return sat.Sat, model
}

// RandomFormula draws a random CNF from the chooser: 3..14 variables and a
// clause density straddling the 3-SAT phase transition, so both SAT and
// UNSAT verdicts (and the learned-clause machinery behind the latter) are
// exercised.
func RandomFormula(c Chooser) *sat.Formula {
	nVars := 3 + c.Intn(12)
	// Density 2..6 clauses per variable: below, at, and above threshold.
	nClauses := nVars*2 + c.Intn(nVars*4+1)
	f := &sat.Formula{NumVars: nVars}
	for i := 0; i < nClauses; i++ {
		k := 2 + c.Intn(2)
		cl := make([]sat.Lit, k)
		for j := range cl {
			cl[j] = sat.MkLit(sat.Var(c.Intn(nVars)), c.Intn(2) == 1)
		}
		f.AddClause(cl...)
	}
	return f
}

// CheckSolver differentially tests one solve: the given SolveFunc's
// verdict must match both reference solvers (enumeration and DPLL), and a
// Sat verdict must come with a model that satisfies the clause list. A nil
// solve uses the production CDCL path.
func CheckSolver(f *sat.Formula, solve SolveFunc) *Discrepancy {
	if solve == nil {
		solve = CDCLSolve
	}
	est, _, err := sat.EnumSolve(f)
	if err != nil {
		// Formula too large for the reference; not an oracle violation.
		return nil
	}
	dst, _ := sat.DPLLSolve(f)
	if est != dst {
		return &Discrepancy{
			Kind:   KindSolverMismatch,
			Detail: fmt.Sprintf("reference solvers disagree: enumeration=%v dpll=%v on\n%s", est, dst, formulaDIMACS(f)),
		}
	}
	got, model := solve(f)
	if got != est {
		return &Discrepancy{
			Kind:   KindSolverMismatch,
			Detail: fmt.Sprintf("solver=%v reference=%v on\n%s", got, est, formulaDIMACS(f)),
		}
	}
	if got == sat.Sat && !modelSatisfies(model, f) {
		return &Discrepancy{
			Kind:   KindModelInvalid,
			Detail: fmt.Sprintf("solver returned Sat with a non-model %v on\n%s", model, formulaDIMACS(f)),
		}
	}
	return nil
}

// CheckDIMACSRoundTrip asserts that emitting a formula and re-parsing it
// preserves the clause list exactly.
func CheckDIMACSRoundTrip(f *sat.Formula) *Discrepancy {
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		return &Discrepancy{Kind: KindDIMACSRoundTrip, Detail: fmt.Sprintf("write failed: %v", err)}
	}
	got, err := sat.ParseDIMACS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return &Discrepancy{Kind: KindDIMACSRoundTrip, Detail: fmt.Sprintf("re-parse failed: %v on\n%s", err, buf.String())}
	}
	if got.NumVars != f.NumVars || len(got.Clauses) != len(f.Clauses) {
		return &Discrepancy{
			Kind:   KindDIMACSRoundTrip,
			Detail: fmt.Sprintf("shape changed: %d vars %d clauses -> %d vars %d clauses", f.NumVars, len(f.Clauses), got.NumVars, len(got.Clauses)),
		}
	}
	for i := range f.Clauses {
		if len(got.Clauses[i]) != len(f.Clauses[i]) {
			return &Discrepancy{Kind: KindDIMACSRoundTrip, Detail: fmt.Sprintf("clause %d length changed", i)}
		}
		for j := range f.Clauses[i] {
			if got.Clauses[i][j] != f.Clauses[i][j] {
				return &Discrepancy{Kind: KindDIMACSRoundTrip, Detail: fmt.Sprintf("clause %d literal %d changed: %v -> %v", i, j, f.Clauses[i][j], got.Clauses[i][j])}
			}
		}
	}
	return nil
}

// modelSatisfies checks a model against the clause list.
func modelSatisfies(model []bool, f *sat.Formula) bool {
	for _, cl := range f.Clauses {
		ok := false
		for _, l := range cl {
			if int(l.Var()) < len(model) && model[l.Var()] != l.Neg() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// formulaDIMACS renders a formula for failure reports.
func formulaDIMACS(f *sat.Formula) string {
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return buf.String()
}
