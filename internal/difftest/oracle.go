package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/linerate"
	"repro/internal/pisa"
	"repro/internal/word"
)

// Discrepancy is one oracle violation: concrete evidence that two layers
// of the toolchain disagree. Kind names the oracle; Detail is
// human-readable evidence including the offending input.
type Discrepancy struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (d *Discrepancy) String() string { return d.Kind + ": " + d.Detail }

// Oracle kinds.
const (
	KindConfigMismatch  = "config-mismatch"     // interpreter vs simulated config disagree
	KindSolverMismatch  = "solver-mismatch"     // CDCL vs reference solver verdicts disagree
	KindModelInvalid    = "model-invalid"       // CDCL SAT model does not satisfy the formula
	KindDIMACSRoundTrip = "dimacs-roundtrip"    // emit/parse round trip lost the formula
	KindMetamorphic     = "metamorphic"         // mutant compile outcome differs from source
	KindMutantInequiv   = "mutant-inequivalent" // a "semantics-preserving" rewrite changed semantics
	KindMissedSolution  = "missed-solution"     // infeasible claim, but sampling found a config
	KindCompileError    = "compile-error"       // Compile returned a hard error
	KindConfigInvalid   = "config-invalid"      // synthesized config fails validation
	KindEngineMismatch  = "engine-mismatch"     // compiled line-rate engine vs interpreted datapath disagree
	KindCoreNotMinimal  = "core-not-minimal"    // blamed UNSAT core fails its minimality contract on re-solve
	KindExplainDiverged = "explain-diverged"    // gated forensics rerun found a config where ungated proved UNSAT
	KindModeDiverged    = "mode-diverged"       // counterexample vs hole-elimination CEGIS verdicts disagree
)

// exhaustiveCheckWidth is the small width used for exhaustive
// interpreter-vs-simulator enumeration. It must be at least the sketch's
// minimum sound width (the widest control hole — the 4-bit stateless
// opcode), since Config.Exec truncates hole values to the datapath width.
const exhaustiveCheckWidth = word.Width(5)

// exhaustiveBitBudget caps the exhaustive input space (2^20 transactions).
const exhaustiveBitBudget = 20

// CheckConfigEquivalence is the brute-force reference oracle for feasible
// compile results: the synthesized configuration must agree with the
// reference interpreter input-for-input. It enumerates the full input
// space at a small width when that is feasible, and samples random inputs
// at the configuration's own (verification) width either way. CEGIS
// already proved equivalence via SAT; this re-proves it end-to-end without
// trusting internal/sat or internal/circuit.
func CheckConfigEquivalence(prog *ast.Program, cfg *pisa.Config, seed int64) *Discrepancy {
	nVars := len(cfg.Fields) + len(cfg.States)

	// Exhaustive sweep at a small width, if the input space fits.
	if int(exhaustiveCheckWidth)*nVars <= exhaustiveBitBudget {
		small := *cfg
		small.Grid.WordWidth = exhaustiveCheckWidth
		if d := sweepExhaustive(prog, &small); d != nil {
			return d
		}
	}

	// Random probing at the configuration's run width (VerifyWidth).
	rng := rand.New(rand.NewSource(seed))
	return probeRandom(prog, cfg, rng, 512)
}

// configProbe bundles a configuration with the reusable buffers of its
// allocation-free execution path, so the probe loops below run the config
// side without per-input allocation (the interpreter side still builds
// snapshots — it is the reference, not the bottleneck we control).
type configProbe struct {
	cfg     *pisa.Config
	scratch *pisa.ExecScratch
	fv, sv  []uint64
}

func newConfigProbe(cfg *pisa.Config) *configProbe {
	return &configProbe{
		cfg:     cfg,
		scratch: cfg.NewScratch(),
		fv:      make([]uint64, len(cfg.Fields)),
		sv:      make([]uint64, len(cfg.States)),
	}
}

// compareAt runs one input through the interpreter and the simulator and
// reports the first disagreement on the config's variables.
func (cp *configProbe) compareAt(in *interp.Interp, prog *ast.Program, snap interp.Snapshot) *Discrepancy {
	cfg := cp.cfg
	want, err := in.Run(prog, snap)
	if err != nil {
		return &Discrepancy{Kind: KindCompileError, Detail: fmt.Sprintf("interpreter rejected input %s: %v", snap, err)}
	}
	for i, f := range cfg.Fields {
		cp.fv[i] = snap.Pkt[f]
	}
	for i, s := range cfg.States {
		cp.sv[i] = snap.State[s]
	}
	cfg.ExecInto(cp.scratch, cp.fv, cp.sv)
	for i, f := range cfg.Fields {
		if cp.fv[i] != want.Pkt[f] {
			return &Discrepancy{
				Kind: KindConfigMismatch,
				Detail: fmt.Sprintf("width %d input %s: config pkt.%s = %d, interpreter says %d",
					cfg.Grid.WordWidth, snap, f, cp.fv[i], want.Pkt[f]),
			}
		}
	}
	for i, s := range cfg.States {
		if cp.sv[i] != want.State[s] {
			return &Discrepancy{
				Kind: KindConfigMismatch,
				Detail: fmt.Sprintf("width %d input %s: config state %s = %d, interpreter says %d",
					cfg.Grid.WordWidth, snap, s, cp.sv[i], want.State[s]),
			}
		}
	}
	return nil
}

// sweepExhaustive enumerates every (packet, state) input at the config's
// width via an odometer over the config's variables.
func sweepExhaustive(prog *ast.Program, cfg *pisa.Config) *Discrepancy {
	w := cfg.Grid.WordWidth
	in := interp.MustNew(w)
	cp := newConfigProbe(cfg)
	names := append(append([]string{}, cfg.Fields...), cfg.States...)
	counts := make([]uint64, len(names))
	size := w.Size()
	for {
		snap := interp.NewSnapshot()
		for i, f := range cfg.Fields {
			snap.Pkt[f] = counts[i]
		}
		for i, s := range cfg.States {
			snap.State[s] = counts[len(cfg.Fields)+i]
		}
		if d := cp.compareAt(in, prog, snap); d != nil {
			return d
		}
		i := 0
		for ; i < len(counts); i++ {
			counts[i]++
			if counts[i] < size {
				break
			}
			counts[i] = 0
		}
		if i == len(counts) {
			return nil
		}
	}
}

// randomEquivalent compares two programs on random inputs at the CEGIS
// verification width, returning a mutant-inequivalence discrepancy on the
// first disagreement.
func randomEquivalent(a, b *ast.Program, seed int64) *Discrepancy {
	const w = word.Width(10) // cegis.DefaultVerifyWidth without the import
	va, vb := a.Variables(), b.Variables()
	fields := append(append([]string{}, va.Fields...), vb.Fields...)
	states := append(append([]string{}, va.States...), vb.States...)
	in := interp.MustNew(w)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 64; trial++ {
		snap := interp.NewSnapshot()
		for _, f := range fields {
			snap.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range states {
			snap.State[s] = w.Trunc(rng.Uint64())
		}
		ra, err := in.Run(a, snap)
		if err != nil {
			return &Discrepancy{Kind: KindMutantInequiv, Detail: err.Error()}
		}
		rb, err := in.Run(b, snap)
		if err != nil {
			return &Discrepancy{Kind: KindMutantInequiv, Detail: err.Error()}
		}
		if !ra.Equal(rb, va.Fields, va.States) {
			return &Discrepancy{
				Kind:   KindMutantInequiv,
				Detail: fmt.Sprintf("programs differ at width %d input %s:\n%s\nvs\n%s", w, snap, a.Print(), b.Print()),
			}
		}
	}
	return nil
}

// probeRandom samples n random inputs at the config's width.
func probeRandom(prog *ast.Program, cfg *pisa.Config, rng *rand.Rand, n int) *Discrepancy {
	w := cfg.Grid.WordWidth
	in := interp.MustNew(w)
	cp := newConfigProbe(cfg)
	for trial := 0; trial < n; trial++ {
		snap := interp.NewSnapshot()
		for _, f := range cfg.Fields {
			snap.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range cfg.States {
			snap.State[s] = w.Trunc(rng.Uint64())
		}
		if d := cp.compareAt(in, prog, snap); d != nil {
			return d
		}
	}
	return nil
}

// CheckEngineEquivalence is the differential oracle for the line-rate
// subsystem: the compiled engine (internal/linerate) must agree with the
// interpreted datapath (Config.ExecInto) input-for-input. Like
// CheckConfigEquivalence it enumerates the full input space at a small
// width when the space fits the bit budget, then fires random probes at
// the configuration's own width — but both sides here are allocation-free,
// so the probe count can be orders of magnitude higher at the same time
// budget.
func CheckEngineEquivalence(cfg *pisa.Config, seed int64, probes int) *Discrepancy {
	nVars := len(cfg.Fields) + len(cfg.States)
	if int(exhaustiveCheckWidth)*nVars <= exhaustiveBitBudget {
		small := *cfg
		small.Grid.WordWidth = exhaustiveCheckWidth
		if d := engineSweep(&small, nil, 0); d != nil {
			return d
		}
	}
	rng := rand.New(rand.NewSource(seed))
	return engineSweep(cfg, rng, probes)
}

// engineSweep drives both execution paths over the same inputs: an
// exhaustive odometer when rng is nil, otherwise n random probes.
func engineSweep(cfg *pisa.Config, rng *rand.Rand, n int) *Discrepancy {
	eng, err := linerate.Compile(cfg)
	if err != nil {
		return &Discrepancy{Kind: KindEngineMismatch, Detail: fmt.Sprintf("engine compile failed: %v", err)}
	}
	w := cfg.Grid.WordWidth
	scratch := cfg.NewScratch()
	buf := eng.NewBuf()
	nf, ns := len(cfg.Fields), len(cfg.States)
	in := make([]uint64, nf+ns)
	ref := make([]uint64, nf+ns)
	got := make([]uint64, nf+ns)
	size := w.Size()
	for trial := 0; ; trial++ {
		if rng != nil {
			if trial == n {
				return nil
			}
			for i := range in {
				in[i] = w.Trunc(rng.Uint64())
			}
		}
		copy(ref, in)
		copy(got, in)
		cfg.ExecInto(scratch, ref[:nf], ref[nf:])
		eng.ExecInto(buf, got[:nf], got[nf:])
		for i := range ref {
			if got[i] != ref[i] {
				var name string
				if i < nf {
					name = "pkt." + cfg.Fields[i]
				} else {
					name = "state " + cfg.States[i-nf]
				}
				return &Discrepancy{
					Kind: KindEngineMismatch,
					Detail: fmt.Sprintf("width %d input %v: engine %s = %d, interpreter says %d",
						w, in, name, got[i], ref[i]),
				}
			}
		}
		if rng == nil {
			i := 0
			for ; i < len(in); i++ {
				in[i]++
				if in[i] < size {
					break
				}
				in[i] = 0
			}
			if i == len(in) {
				return nil
			}
		}
	}
}
