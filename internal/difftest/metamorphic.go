package difftest

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/mutate"
	"repro/internal/word"
)

// compileOptions builds the core.Options for a scenario.
func compileOptions(sc Scenario, seed int64) core.Options {
	return core.Options{
		Width:        sc.Width,
		MaxStages:    sc.MaxStages,
		StatelessALU: sc.Stateless,
		StatefulALU:  sc.Stateful,
		Seed:         seed,
	}
}

// CheckMetamorphic applies the metamorphic oracle: semantics-preserving
// rewrites (internal/mutate) of a program must not change its compile
// outcome. Feasibility and minimum pipeline depth are semantic properties
// of (program, grid, ALU) — the sketch depends only on variable counts,
// and mutation preserves both the variable set and the transaction
// semantics — so any disagreement is a compiler bug, the exact property
// the paper's Figure 5 "no variance across mutations" claim rests on.
//
// Before trusting a mutant as an oracle, each one is itself checked
// equivalent to the source program via the interpreter (exhaustively at a
// small width when feasible, randomly at the verification width
// otherwise), so a non-semantics-preserving rewrite is reported as a
// mutate bug rather than a bogus compiler discrepancy. Timeouts on either
// side make that comparison inconclusive and are skipped.
func CheckMetamorphic(ctx context.Context, sc Scenario, nMutants int, seed int64) ([]Discrepancy, error) {
	rep, err := core.Compile(ctx, sc.Prog, compileOptions(sc, seed))
	if err != nil {
		return []Discrepancy{{Kind: KindCompileError, Detail: err.Error()}}, nil
	}
	if rep.TimedOut {
		return nil, nil
	}

	var out []Discrepancy
	muts := mutate.Generate(sc.Prog, nMutants, seed)
	for _, m := range muts {
		if d := checkMutantEquivalent(sc, m, seed); d != nil {
			out = append(out, *d)
			continue
		}
		mrep, err := core.Compile(ctx, m.Program, compileOptions(sc, seed))
		if err != nil {
			out = append(out, Discrepancy{
				Kind:   KindCompileError,
				Detail: fmt.Sprintf("mutant %s (%v): %v", m.Program.Name, m.Applied, err),
			})
			continue
		}
		if mrep.TimedOut {
			continue
		}
		if mrep.Feasible != rep.Feasible {
			out = append(out, Discrepancy{
				Kind: KindMetamorphic,
				Detail: fmt.Sprintf("source feasible=%v but mutant %s (%v) feasible=%v\nsource:\n%s\nmutant:\n%s",
					rep.Feasible, m.Program.Name, m.Applied, mrep.Feasible, sc.Prog.Print(), m.Program.Print()),
			})
			continue
		}
		if rep.Feasible && mrep.Usage.Stages != rep.Usage.Stages {
			out = append(out, Discrepancy{
				Kind: KindMetamorphic,
				Detail: fmt.Sprintf("source needs %d stages but mutant %s (%v) needs %d\nsource:\n%s\nmutant:\n%s",
					rep.Usage.Stages, m.Program.Name, m.Applied, mrep.Usage.Stages, sc.Prog.Print(), m.Program.Print()),
			})
		}
	}
	return out, nil
}

// checkMutantEquivalent verifies the mutation itself preserved semantics.
func checkMutantEquivalent(sc Scenario, m mutate.Mutant, seed int64) *Discrepancy {
	vars := sc.Prog.Variables()
	nVars := len(vars.Fields) + len(vars.States)

	// Exhaustive at width 3 when the space fits (mirrors the interpreter's
	// own feasibility bound), random at the verification width otherwise.
	const w = word.Width(3)
	if int(w)*nVars <= exhaustiveBitBudget {
		in := interp.MustNew(w)
		eq, cex, err := in.Equivalent(sc.Prog, m.Program)
		if err != nil {
			return &Discrepancy{Kind: KindMutantInequiv, Detail: err.Error()}
		}
		if !eq {
			return &Discrepancy{
				Kind: KindMutantInequiv,
				Detail: fmt.Sprintf("mutant %v differs from source at width %d input %s\nsource:\n%s\nmutant:\n%s",
					m.Applied, w, cex, sc.Prog.Print(), m.Program.Print()),
			}
		}
	}
	return randomEquivalent(sc.Prog, m.Program, seed)
}
