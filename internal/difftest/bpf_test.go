package difftest

import (
	"context"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/programs"
)

// bpfBudget pairs a corpus program with a hand-worked slot budget: the
// instruction count a human eBPF developer would need on this machine
// (worked out by writing each program by hand, as the bpf package's
// hand-written sampling test does for one of them).
type bpfBudget struct {
	name  string
	slots int
	seed  int64
	// mask restricts the machine's opcode vocabulary for this benchmark
	// (0 = full ISA) — the register-machine analogue of the paper picking
	// a per-benchmark stateful ALU template: the machine description is a
	// per-deployment input.
	mask uint32
}

// reorderMask is the lean ISA a reorder detector needs: register moves,
// the signed compare, the arithmetic of the select idiom
// (max' = seq + reordered*(max-seq)), and the map ops. On the full
// 24-opcode ISA this benchmark's search does not converge in test time.
var reorderMask = uint32(1)<<bpf.OpNop | 1<<bpf.OpMov | 1<<bpf.OpAdd |
	1<<bpf.OpSub | 1<<bpf.OpMul | 1<<bpf.OpLt | 1<<bpf.OpLdMap | 1<<bpf.OpStMap

// bpfCorpus is the BPF acceptance slice of the Table-2 corpus: every
// program with a register-program encoding small enough to synthesize in
// test time, at hand-worked slot budgets. rcp is excluded — its three
// fields and running sums need a slot budget whose hole space outgrows a
// unit test.
var bpfCorpus = []bpfBudget{
	{"marple_new_flow", 5, 1, 0},
	{"stateful_fw", 6, 1, 0},
	{"marple_reorder", 7, 4, reorderMask},
	{"sampling", 8, 1, 0},
}

func bpfCompileOptions(b programs.Benchmark, bb bpfBudget) core.Options {
	return core.Options{
		Target:        "bpf",
		MaxStages:     bb.slots,
		FixedStages:   true,
		BPFOpcodeMask: bb.mask,
		StatelessALU:  alu.Stateless{ConstBits: b.ConstBits},
		StatefulALU:   alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		Seed:          bb.seed,
	}
}

// TestBPFCorpusEndToEnd is the BPF backend's flagship integration test,
// the register-machine analogue of core's TestCorpusCompiles: each corpus
// program must synthesize to a feasible BPF configuration at its
// hand-worked slot budget, and the configuration must agree with the
// reference interpreter under the brute-force oracle (width-5 exhaustive
// sweep plus 4096 random probes at the verification width).
func TestBPFCorpusEndToEnd(t *testing.T) {
	for _, bb := range bpfCorpus {
		bb := bb
		t.Run(bb.name, func(t *testing.T) {
			t.Parallel()
			b, err := programs.ByName(bb.name)
			if err != nil {
				t.Fatal(err)
			}
			prog := b.Parse()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			defer cancel()
			start := time.Now()
			rep, err := core.Compile(ctx, prog, bpfCompileOptions(b, bb))
			if err != nil {
				t.Fatal(err)
			}
			if rep.TimedOut {
				t.Fatalf("timed out after %v", time.Since(start))
			}
			if !rep.Feasible {
				t.Fatalf("infeasible at %d slots (budget worked out by hand)", bb.slots)
			}
			if rep.Target != "bpf" {
				t.Fatalf("report target = %q, want bpf", rep.Target)
			}
			cfg, ok := rep.Artifact.(*bpf.Config)
			if !ok {
				t.Fatalf("artifact is %T, want *bpf.Config", rep.Artifact)
			}
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			if d := CheckBPFConfigEquivalence(prog, cfg, bb.seed); d != nil {
				t.Fatalf("%s\nconfig:\n%s", d, cfg)
			}
			t.Logf("%s @%d slots in %v:\n%s", bb.name, bb.slots, time.Since(start), cfg)
		})
	}
}
