package difftest

import (
	"context"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/parser"
)

// TestModeAgreementOnCorpusSamples drives the strategy oracle over a
// feasible and an infeasible fixture: both must come back conclusive
// with no discrepancy.
func TestModeAgreementOnCorpusSamples(t *testing.T) {
	cases := []Scenario{
		{
			// Small enough for hole elimination to settle inside its
			// candidate budget (larger corpus programs legitimately
			// exhaust it, which the oracle treats as inconclusive).
			Prog:  parser.MustParse("inc", "pkt.a = pkt.a + 1;"),
			Width: 1, MaxStages: 1,
			Stateless: alu.Stateless{ConstBits: 4},
			Stateful:  alu.Stateful{Kind: alu.Counter, ConstBits: 4},
		},
		{
			Prog:  parser.MustParse("hard", "pkt.a = pkt.a * pkt.b;"),
			Width: 2, MaxStages: 1,
			Stateless: alu.Stateless{ConstBits: 4},
			Stateful:  alu.Stateful{Kind: alu.Counter, ConstBits: 4},
		},
	}
	for _, sc := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		d, conclusive := CheckModeAgreement(ctx, sc, 7)
		cancel()
		if d != nil {
			t.Errorf("%s: %s", sc.Prog.Name, d)
		}
		if !conclusive {
			t.Errorf("%s: oracle inconclusive on a fixture both modes settle quickly", sc.Prog.Name)
		}
	}
}

// TestModeAgreementCampaignStage wires ModeEvery through a tiny campaign
// and checks the summary accounting: every iteration runs the oracle,
// none may diverge.
func TestModeAgreementCampaignStage(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	sum, failures, err := Run(ctx, CampaignOptions{
		Iters:          8,
		Seed:           1,
		ModeEvery:      1,
		MutantsEvery:   -1,
		ExplainEvery:   -1,
		CompileTimeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range failures {
		t.Errorf("iter %d: %s: %s", f.Iter, f.Kind, f.Detail)
	}
	if sum.ModeDiverged != 0 {
		t.Fatalf("mode_diverged = %d, want 0", sum.ModeDiverged)
	}
	if sum.ModeChecks == 0 {
		t.Fatal("ModeEvery=1 over 8 iterations produced no conclusive mode checks")
	}
	if s := sum.Samples(); s["mode_checks"] != float64(sum.ModeChecks) || s["mode_diverged"] != 0 {
		t.Fatalf("summary samples missing mode metrics: %v", s)
	}
}
