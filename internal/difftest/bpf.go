package difftest

import (
	"fmt"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/interp"
)

// bpfFuzzSlots is the fixed slot budget for random-scenario BPF compiles.
// Generated programs are tiny, and a fixed budget admits anything smaller
// (the ISA has a nop), while keeping the per-compile hole space bounded so
// timeouts stay rare enough for useful fuzz throughput.
const bpfFuzzSlots = 5

// bpfScenarioOptions builds the bpf-target core.Options for a random
// scenario: the same width/ALU draw as the grid compile, retargeted at the
// register machine with the fixed fuzz slot budget.
func bpfScenarioOptions(sc Scenario, seed int64) core.Options {
	opts := compileOptions(sc, seed)
	opts.Target = "bpf"
	opts.FixedStages = true
	opts.MaxStages = bpfFuzzSlots
	return opts
}

// bpfProbeCount is the random-probe budget for the BPF oracle. The BPF
// datapath's Exec is map-based (no allocation-free fast path yet), but a
// few thousand probes are still cheap, and the register machine's larger
// per-slot hole space warrants more sampling than the grid datapath gets.
const bpfProbeCount = 4096

// CheckBPFConfigEquivalence is the brute-force reference oracle for the
// BPF backend: a synthesized register program must agree with the
// reference interpreter input-for-input. It enumerates the full input
// space at exhaustiveCheckWidth when it fits the bit budget, then fires
// random probes at the configuration's own (verification) width. The
// exhaustive width is sound here because it equals the machine's minimum
// width (the 5-bit opcode selector) — below it, Exec's truncating
// selection would alias opcodes.
func CheckBPFConfigEquivalence(prog *ast.Program, cfg *bpf.Config, seed int64) *Discrepancy {
	nVars := len(cfg.Fields) + len(cfg.States)

	if int(exhaustiveCheckWidth)*nVars <= exhaustiveBitBudget {
		small := *cfg
		small.Spec.WordWidth = exhaustiveCheckWidth
		if d := bpfSweepExhaustive(prog, &small); d != nil {
			return d
		}
	}

	rng := rand.New(rand.NewSource(seed))
	return bpfProbeRandom(prog, cfg, rng, bpfProbeCount)
}

// bpfCompareAt runs one input through the interpreter and the BPF machine
// and reports the first disagreement on the config's variables.
func bpfCompareAt(in *interp.Interp, prog *ast.Program, cfg *bpf.Config, snap interp.Snapshot) *Discrepancy {
	want, err := in.Run(prog, snap)
	if err != nil {
		return &Discrepancy{Kind: KindCompileError, Detail: fmt.Sprintf("interpreter rejected input %s: %v", snap, err)}
	}
	gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
	for _, f := range cfg.Fields {
		if gotPkt[f] != want.Pkt[f] {
			return &Discrepancy{
				Kind: KindConfigMismatch,
				Detail: fmt.Sprintf("width %d input %s: bpf pkt.%s = %d, interpreter says %d",
					cfg.Spec.WordWidth, snap, f, gotPkt[f], want.Pkt[f]),
			}
		}
	}
	for _, s := range cfg.States {
		if gotState[s] != want.State[s] {
			return &Discrepancy{
				Kind: KindConfigMismatch,
				Detail: fmt.Sprintf("width %d input %s: bpf state %s = %d, interpreter says %d",
					cfg.Spec.WordWidth, snap, s, gotState[s], want.State[s]),
			}
		}
	}
	return nil
}

// bpfSweepExhaustive enumerates every (packet, state) input at the
// config's width via an odometer over the config's variables.
func bpfSweepExhaustive(prog *ast.Program, cfg *bpf.Config) *Discrepancy {
	w := cfg.Spec.WordWidth
	in := interp.MustNew(w)
	counts := make([]uint64, len(cfg.Fields)+len(cfg.States))
	size := w.Size()
	for {
		snap := interp.NewSnapshot()
		for i, f := range cfg.Fields {
			snap.Pkt[f] = counts[i]
		}
		for i, s := range cfg.States {
			snap.State[s] = counts[len(cfg.Fields)+i]
		}
		if d := bpfCompareAt(in, prog, cfg, snap); d != nil {
			return d
		}
		i := 0
		for ; i < len(counts); i++ {
			counts[i]++
			if counts[i] < size {
				break
			}
			counts[i] = 0
		}
		if i == len(counts) {
			return nil
		}
	}
}

// bpfProbeRandom samples n random inputs at the config's width.
func bpfProbeRandom(prog *ast.Program, cfg *bpf.Config, rng *rand.Rand, n int) *Discrepancy {
	w := cfg.Spec.WordWidth
	in := interp.MustNew(w)
	for trial := 0; trial < n; trial++ {
		snap := interp.NewSnapshot()
		for _, f := range cfg.Fields {
			snap.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range cfg.States {
			snap.State[s] = w.Trunc(rng.Uint64())
		}
		if d := bpfCompareAt(in, prog, cfg, snap); d != nil {
			return d
		}
	}
	return nil
}
