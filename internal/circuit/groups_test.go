package circuit

import (
	"testing"

	"repro/internal/sat"
	"repro/internal/word"
)

func TestGroupsBlameConflictingAssertions(t *testing.T) {
	b := New()
	s := sat.New()
	c := NewCNF(b, s)
	c.EnableGroups()

	x := b.InputWord("x", 4)
	c.SetGroup("wants-3")
	c.Assert(b.EqW(x, b.ConstWord(3, 4)))
	c.SetGroup("wants-5")
	c.Assert(b.EqW(x, b.ConstWord(5, 4)))
	c.SetGroup("harmless")
	c.Assert(b.Or(x[0], b.Not(x[0])))
	c.SetGroup("")

	names := c.Groups()
	if len(names) != 3 {
		t.Fatalf("Groups() = %v, want 3 names", names)
	}
	all := c.GroupAssumptions(names)
	if got := s.Solve(all...); got != sat.Unsat {
		t.Fatalf("Solve under all groups = %v, want Unsat", got)
	}
	core := s.UnsatCore()
	blamed := map[string]bool{}
	for _, l := range core {
		name, ok := c.GroupName(l)
		if !ok {
			t.Fatalf("core literal %v is not a group selector", l)
		}
		blamed[name] = true
	}
	if !blamed["wants-3"] || !blamed["wants-5"] {
		t.Fatalf("core should blame both conflicting groups, got %v", blamed)
	}
	if blamed["harmless"] {
		t.Fatalf("tautological group blamed: %v", blamed)
	}

	// Dropping either blamed group restores satisfiability.
	for _, keep := range [][]string{{"wants-3", "harmless"}, {"wants-5", "harmless"}} {
		if got := s.Solve(c.GroupAssumptions(keep)...); got != sat.Sat {
			t.Fatalf("Solve under %v = %v, want Sat", keep, got)
		}
	}
}

func TestGroupFalseAssertionBlamesOnlyItself(t *testing.T) {
	b := New()
	s := sat.New()
	c := NewCNF(b, s)
	c.EnableGroups()

	x := b.Input("x")
	c.SetGroup("fine")
	c.Assert(x)
	c.SetGroup("impossible")
	c.Assert(False) // e.g. a domain constraint over an empty range
	c.SetGroup("")

	all := c.GroupAssumptions(c.Groups())
	if got := s.Solve(all...); got != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
	for _, l := range s.UnsatCore() {
		if name, _ := c.GroupName(l); name != "impossible" {
			t.Fatalf("blamed %q, want only the impossible group", name)
		}
	}
	// Without the impossible group the formula is satisfiable.
	if got := s.Solve(c.GroupAssumptions([]string{"fine"})...); got != sat.Sat {
		t.Fatal("dropping the impossible group should restore SAT")
	}
}

func TestGroupsOffByDefaultIsUngated(t *testing.T) {
	// Without EnableGroups, SetGroup must be a no-op and the clause stream
	// identical to one that never mentions groups: same solver variable
	// and clause counts, and a plain (assumption-free) Solve sees the
	// contradiction.
	build := func(withSetGroup bool) (*sat.Solver, *CNF) {
		b := New()
		s := sat.New()
		c := NewCNF(b, s)
		x := b.InputWord("x", word.Width(3))
		if withSetGroup {
			c.SetGroup("ignored")
		}
		c.Assert(b.EqW(x, b.ConstWord(1, 3)))
		if withSetGroup {
			c.SetGroup("other")
		}
		c.Assert(b.EqW(x, b.ConstWord(2, 3)))
		return s, c
	}
	sPlain, cPlain := build(false)
	sGrouped, cGrouped := build(true)
	if sPlain.NumVars() != sGrouped.NumVars() || cPlain.NumClauses() != cGrouped.NumClauses() {
		t.Fatalf("SetGroup without EnableGroups changed the encoding: vars %d vs %d, clauses %d vs %d",
			sPlain.NumVars(), sGrouped.NumVars(), cPlain.NumClauses(), cGrouped.NumClauses())
	}
	if got := sGrouped.Solve(); got != sat.Unsat {
		t.Fatalf("ungated contradictory assertions should be Unsat, got %v", got)
	}
	if len(cGrouped.Groups()) != 0 {
		t.Fatal("groups allocated despite EnableGroups never being called")
	}
}
