// Package circuit builds bit-vector combinational circuits and bit-blasts
// them to CNF for the SAT solver.
//
// Chipmunk's synthesis problem (paper §2.3, Equation 1) is a quantified
// formula over bit-vectors: does there exist a hole assignment c such that
// for all inputs x the sketch equals the specification? SKETCH decides the
// two CEGIS sub-problems (Equations 2 and 3) by bit-blasting to SAT; this
// package performs the same role. A Builder accumulates a gate DAG with
// structural hashing and aggressive constant folding; words are
// little-endian vectors of Bits with the same two's-complement semantics as
// internal/word (the reference semantics for the interpreter and the PISA
// simulator), which is verified by property tests cross-checking Eval
// against word operations.
//
// Gates are converted to clauses via the Tseitin transformation, restricted
// to the cone of influence of the asserted outputs, so large sketches with
// unused datapath pieces do not bloat the CNF.
package circuit

import (
	"fmt"
	"strings"

	"repro/internal/sat"
	"repro/internal/word"
)

// Bit identifies a node in the circuit DAG. The two constants False and
// True are predefined; inputs and gates are numbered from 2.
type Bit int32

// Predefined constant bits.
const (
	False Bit = 0
	True  Bit = 1
)

type gateOp uint8

const (
	opConst gateOp = iota // nodes 0 and 1 only
	opInput
	opAnd
	opXor
	opNot
	opMux // a ? b : c
)

type gate struct {
	op      gateOp
	a, b, c Bit
	name    string // inputs only, for diagnostics
}

// Word is a little-endian vector of bits representing a two's-complement
// integer of len(Word) bits.
type Word []Bit

// Builder accumulates a circuit. The zero value is not usable; call New.
type Builder struct {
	gates  []gate
	hash   map[[4]int32]Bit
	inputs []Bit
}

// New returns an empty circuit builder.
func New() *Builder {
	b := &Builder{hash: make(map[[4]int32]Bit)}
	b.gates = append(b.gates,
		gate{op: opConst}, // False
		gate{op: opConst}, // True
	)
	return b
}

// NumGates returns the number of nodes in the DAG (including constants and
// inputs), a proxy for sketch size used in evaluation reports.
func (b *Builder) NumGates() int { return len(b.gates) }

// Input allocates a fresh single-bit input.
func (b *Builder) Input(name string) Bit {
	bit := Bit(len(b.gates))
	b.gates = append(b.gates, gate{op: opInput, name: name})
	b.inputs = append(b.inputs, bit)
	return bit
}

// InputWord allocates a w-bit input word named name (bit i is name[i]).
func (b *Builder) InputWord(name string, w word.Width) Word {
	bits := make(Word, w)
	for i := range bits {
		bits[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return bits
}

// ConstBit returns the constant bit for v.
func ConstBit(v bool) Bit {
	if v {
		return True
	}
	return False
}

// ConstWord returns the w-bit constant with value v (truncated).
func (b *Builder) ConstWord(v uint64, w word.Width) Word {
	bits := make(Word, w)
	for i := range bits {
		bits[i] = ConstBit(v&(1<<uint(i)) != 0)
	}
	return bits
}

func (b *Builder) intern(g gate) Bit {
	key := [4]int32{int32(g.op), int32(g.a), int32(g.b), int32(g.c)}
	if bit, ok := b.hash[key]; ok {
		return bit
	}
	bit := Bit(len(b.gates))
	b.gates = append(b.gates, g)
	b.hash[key] = bit
	return bit
}

// Not returns the complement of a.
func (b *Builder) Not(a Bit) Bit {
	switch a {
	case False:
		return True
	case True:
		return False
	}
	// Double negation elimination.
	if g := b.gates[a]; g.op == opNot {
		return g.a
	}
	return b.intern(gate{op: opNot, a: a})
}

// And returns a AND b with constant folding and idempotence rules.
func (b *Builder) And(x, y Bit) Bit {
	if x == False || y == False {
		return False
	}
	if x == True {
		return y
	}
	if y == True {
		return x
	}
	if x == y {
		return x
	}
	if b.Not(x) == y {
		return False
	}
	if x > y { // canonical operand order for structural hashing
		x, y = y, x
	}
	return b.intern(gate{op: opAnd, a: x, b: y})
}

// Or returns a OR b (built from And/Not, De Morgan).
func (b *Builder) Or(x, y Bit) Bit {
	return b.Not(b.And(b.Not(x), b.Not(y)))
}

// Xor returns a XOR b.
func (b *Builder) Xor(x, y Bit) Bit {
	if x == False {
		return y
	}
	if y == False {
		return x
	}
	if x == True {
		return b.Not(y)
	}
	if y == True {
		return b.Not(x)
	}
	if x == y {
		return False
	}
	if b.Not(x) == y {
		return True
	}
	if x > y {
		x, y = y, x
	}
	return b.intern(gate{op: opXor, a: x, b: y})
}

// Mux returns sel ? t : f.
func (b *Builder) Mux(sel, t, f Bit) Bit {
	if sel == True {
		return t
	}
	if sel == False {
		return f
	}
	if t == f {
		return t
	}
	if t == True && f == False {
		return sel
	}
	if t == False && f == True {
		return b.Not(sel)
	}
	return b.intern(gate{op: opMux, a: sel, b: t, c: f})
}

// Implies returns NOT a OR b.
func (b *Builder) Implies(x, y Bit) Bit { return b.Or(b.Not(x), y) }

// Eq1 returns the single-bit equality a XNOR b.
func (b *Builder) Eq1(x, y Bit) Bit { return b.Not(b.Xor(x, y)) }

// --- Word-level operations -------------------------------------------------

func checkSameWidth(x, y Word) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: width mismatch %d vs %d", len(x), len(y)))
	}
}

// NotW is the bitwise complement.
func (b *Builder) NotW(x Word) Word {
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

// AndW is the bitwise AND.
func (b *Builder) AndW(x, y Word) Word {
	checkSameWidth(x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.And(x[i], y[i])
	}
	return out
}

// OrW is the bitwise OR.
func (b *Builder) OrW(x, y Word) Word {
	checkSameWidth(x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Or(x[i], y[i])
	}
	return out
}

// XorW is the bitwise XOR.
func (b *Builder) XorW(x, y Word) Word {
	checkSameWidth(x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// AddW is a ripple-carry adder at width len(x); the carry out is discarded
// (wrapping semantics).
func (b *Builder) AddW(x, y Word) Word {
	checkSameWidth(x, y)
	out := make(Word, len(x))
	carry := False
	for i := range x {
		s := b.Xor(x[i], y[i])
		out[i] = b.Xor(s, carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(s, carry))
	}
	return out
}

// NegW is two's-complement negation.
func (b *Builder) NegW(x Word) Word {
	one := b.ConstWord(1, word.Width(len(x)))
	return b.AddW(b.NotW(x), one)
}

// SubW returns x - y (wrapping).
func (b *Builder) SubW(x, y Word) Word {
	// x + ~y + 1 via ripple carry seeded with 1.
	checkSameWidth(x, y)
	out := make(Word, len(x))
	carry := True
	for i := range x {
		yn := b.Not(y[i])
		s := b.Xor(x[i], yn)
		out[i] = b.Xor(s, carry)
		carry = b.Or(b.And(x[i], yn), b.And(s, carry))
	}
	return out
}

// MulW is a shift-and-add multiplier truncated to the operand width.
func (b *Builder) MulW(x, y Word) Word {
	checkSameWidth(x, y)
	w := word.Width(len(x))
	acc := b.ConstWord(0, w)
	for i := range y {
		// Partial product: (x << i) ANDed with y[i], truncated to w bits.
		pp := make(Word, len(x))
		for j := range pp {
			if j < i {
				pp[j] = False
			} else {
				pp[j] = b.And(x[j-i], y[i])
			}
		}
		acc = b.AddW(acc, pp)
	}
	return acc
}

// MuxW selects t when sel is true, else f, bitwise.
func (b *Builder) MuxW(sel Bit, t, f Word) Word {
	checkSameWidth(t, f)
	out := make(Word, len(t))
	for i := range t {
		out[i] = b.Mux(sel, t[i], f[i])
	}
	return out
}

// EqW returns the single-bit equality of two words.
func (b *Builder) EqW(x, y Word) Bit {
	checkSameWidth(x, y)
	acc := True
	for i := range x {
		acc = b.And(acc, b.Eq1(x[i], y[i]))
	}
	return acc
}

// NonZero returns the C truthiness of a word (OR of all bits).
func (b *Builder) NonZero(x Word) Bit {
	acc := False
	for i := range x {
		acc = b.Or(acc, x[i])
	}
	return acc
}

// UltW returns the unsigned x < y comparison bit.
func (b *Builder) UltW(x, y Word) Bit {
	checkSameWidth(x, y)
	// Subtract and inspect the borrow: x < y iff x - y underflows.
	carry := True
	for i := range x {
		yn := b.Not(y[i])
		s := b.Xor(x[i], yn)
		carry = b.Or(b.And(x[i], yn), b.And(s, carry))
	}
	return b.Not(carry)
}

// SltW returns the signed x < y comparison bit at the word's width.
func (b *Builder) SltW(x, y Word) Bit {
	checkSameWidth(x, y)
	n := len(x)
	sx, sy := x[n-1], y[n-1]
	ult := b.UltW(x, y)
	// Same signs: unsigned comparison is correct. Different signs: x < y iff
	// x is the negative one.
	diff := b.Xor(sx, sy)
	return b.Mux(diff, sx, ult)
}

// SleW returns the signed x <= y bit.
func (b *Builder) SleW(x, y Word) Bit { return b.Not(b.SltW(y, x)) }

// BoolToWord widens a bit to a word with value 0 or 1.
func (b *Builder) BoolToWord(x Bit, w word.Width) Word {
	out := make(Word, w)
	out[0] = x
	for i := 1; i < int(w); i++ {
		out[i] = False
	}
	return out
}

// ShlW is a barrel shifter computing x << y with shift amounts >= width
// yielding zero, matching word.Shl.
func (b *Builder) ShlW(x, y Word) Word {
	return b.shift(x, y, true)
}

// ShrW is the logical right barrel shifter matching word.Shr.
func (b *Builder) ShrW(x, y Word) Word {
	return b.shift(x, y, false)
}

func (b *Builder) shift(x, y Word, left bool) Word {
	w := len(x)
	cur := x
	// Apply each shift-amount bit as a conditional fixed shift.
	for i := 0; i < len(y); i++ {
		amt := 1 << uint(i)
		shifted := make(Word, w)
		for j := 0; j < w; j++ {
			var src int
			if left {
				src = j - amt
			} else {
				src = j + amt
			}
			if src >= 0 && src < w {
				shifted[j] = cur[src]
			} else {
				shifted[j] = False
			}
		}
		if amt >= w {
			// Any set bit at or above log2(w) zeroes the result entirely.
			shifted = b.ConstWord(0, word.Width(w))
		}
		next := make(Word, w)
		for j := 0; j < w; j++ {
			next[j] = b.Mux(y[i], shifted[j], cur[j])
		}
		cur = next
	}
	return cur
}

// --- Concrete evaluation ---------------------------------------------------

// Eval computes the value of each requested bit given concrete input values.
// Inputs not present in the map default to false. It is used by tests to
// cross-check the circuit against the reference word semantics, and by CEGIS
// to evaluate specifications.
func (b *Builder) Eval(inputs map[Bit]bool, outs ...Bit) []bool {
	vals := make([]int8, len(b.gates)) // -1 unknown, 0 false, 1 true
	for i := range vals {
		vals[i] = -1
	}
	vals[False] = 0
	vals[True] = 1
	var eval func(Bit) int8
	eval = func(n Bit) int8 {
		if vals[n] >= 0 {
			return vals[n]
		}
		g := b.gates[n]
		var v int8
		switch g.op {
		case opInput:
			if inputs[n] {
				v = 1
			} else {
				v = 0
			}
		case opAnd:
			v = eval(g.a) & eval(g.b)
		case opXor:
			v = eval(g.a) ^ eval(g.b)
		case opNot:
			v = 1 - eval(g.a)
		case opMux:
			if eval(g.a) == 1 {
				v = eval(g.b)
			} else {
				v = eval(g.c)
			}
		default:
			panic("circuit: eval of const node reached default")
		}
		vals[n] = v
		return v
	}
	out := make([]bool, len(outs))
	for i, o := range outs {
		out[i] = eval(o) == 1
	}
	return out
}

// EvalWord evaluates a word to its uint64 value under the given inputs.
func (b *Builder) EvalWord(inputs map[Bit]bool, w Word) uint64 {
	bits := b.Eval(inputs, w...)
	var v uint64
	for i, bit := range bits {
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}

// SetWordInputs assigns the bits of an input word in the given input map.
func SetWordInputs(inputs map[Bit]bool, w Word, v uint64) {
	for i, bit := range w {
		inputs[bit] = v&(1<<uint(i)) != 0
	}
}

// --- Tseitin transformation ------------------------------------------------

// CNF incrementally encodes circuit nodes into a sat.Solver. Only the cone
// of influence of asserted/queried bits is encoded. A CNF may be used for
// several Assert calls against the same solver.
type CNF struct {
	b      *Builder
	solver *sat.Solver
	vars   []sat.Var // per-gate SAT variable; -1 if not yet encoded

	nVars    int // SAT variables this encoder allocated
	nClauses int // clauses this encoder added (Tseitin + assertions)

	// Constraint groups (EnableGroups): assertion clauses are gated by a
	// per-group selector literal so the solver's UNSAT core can blame
	// named groups. Off by default — the feasible path emits exactly the
	// same clause stream as before groups existed.
	groupsOn   bool
	groupSels  map[string]sat.Lit
	groupNames []string // insertion order
	curSel     sat.Lit
	curSet     bool
}

// NewCNF creates a Tseitin encoder targeting the given solver.
func NewCNF(b *Builder, s *sat.Solver) *CNF {
	c := &CNF{b: b, solver: s}
	return c
}

// NumVars returns the number of SAT variables this encoder has allocated —
// the encoding-size metric the observability layer reports as CNF
// variables (distinct from Builder.NumGates, which counts circuit nodes
// whether or not they reached the solver's cone of influence).
func (c *CNF) NumVars() int { return c.nVars }

// NumClauses returns the number of clauses this encoder has added.
func (c *CNF) NumClauses() int { return c.nClauses }

// addClause forwards to the solver while counting encoding size.
func (c *CNF) addClause(lits ...sat.Lit) {
	c.nClauses++
	c.solver.AddClause(lits...)
}

// Lit returns a SAT literal equivalent to circuit bit n, encoding the cone
// of influence on first use.
func (c *CNF) Lit(n Bit) sat.Lit {
	for len(c.vars) < len(c.b.gates) {
		c.vars = append(c.vars, -1)
	}
	return c.lit(n)
}

func (c *CNF) lit(n Bit) sat.Lit {
	g := c.b.gates[n]
	if g.op == opNot {
		return c.lit(g.a).Not()
	}
	if c.vars[n] >= 0 {
		return sat.PosLit(c.vars[n])
	}
	v := c.solver.NewVar()
	c.nVars++
	c.vars[n] = v
	out := sat.PosLit(v)
	switch g.op {
	case opConst:
		if n == True {
			c.addClause(out)
		} else {
			c.addClause(out.Not())
		}
	case opInput:
		// Free variable; no clauses.
	case opAnd:
		a, b := c.lit(g.a), c.lit(g.b)
		c.addClause(out.Not(), a)
		c.addClause(out.Not(), b)
		c.addClause(out, a.Not(), b.Not())
	case opXor:
		a, b := c.lit(g.a), c.lit(g.b)
		c.addClause(out.Not(), a, b)
		c.addClause(out.Not(), a.Not(), b.Not())
		c.addClause(out, a.Not(), b)
		c.addClause(out, a, b.Not())
	case opMux:
		s, t, f := c.lit(g.a), c.lit(g.b), c.lit(g.c)
		c.addClause(s.Not(), t.Not(), out)
		c.addClause(s.Not(), t, out.Not())
		c.addClause(s, f.Not(), out)
		c.addClause(s, f, out.Not())
	default:
		panic("circuit: unreachable gate op in Tseitin")
	}
	return out
}

// --- Constraint groups -----------------------------------------------------

// Well-known constraint-group names shared by the backends and the
// explanation pass. Domain groups gate the sketch's allocation/domain
// assertions; output groups (GroupPktField/GroupStateVar) gate the
// per-test correctness assertions of one observable output, which is what
// lets an UNSAT core blame individual program statements.
const (
	GroupOpcodeMask = "domain:opcode-mask"
	GroupMuxRange   = "domain:mux-range"
	GroupStateAlloc = "domain:state-alloc"
	GroupFieldAlloc = "domain:field-alloc"
	GroupSymmetry   = "domain:symmetry"

	groupPktPrefix   = "out:pkt."
	groupStatePrefix = "out:state."
)

// GroupPktField names the constraint group asserting the packet field f is
// computed correctly on every test input.
func GroupPktField(f string) string { return groupPktPrefix + f }

// GroupStateVar names the constraint group asserting the state variable v
// is updated correctly on every test input.
func GroupStateVar(v string) string { return groupStatePrefix + v }

// ParseOutputGroup decodes a GroupPktField/GroupStateVar name back into
// the output it asserts. ok is false for domain (non-output) groups.
func ParseOutputGroup(name string) (kind, output string, ok bool) {
	if rest, found := strings.CutPrefix(name, groupPktPrefix); found {
		return "pkt", rest, true
	}
	if rest, found := strings.CutPrefix(name, groupStatePrefix); found {
		return "state", rest, true
	}
	return "", "", false
}

// EnableGroups switches the encoder into blame-tracking mode: assertion
// clauses emitted while a group is active (SetGroup) are gated behind a
// fresh per-group selector literal as (¬sel ∨ lit). Solving under the
// assumption that every selector is true is equisatisfiable with the
// ungated encoding, but an UNSAT outcome now yields a core of selector
// literals — i.e. a set of named constraint groups that is jointly
// unsatisfiable. Tseitin definitional clauses are never gated: they are
// equivalences, not constraints, and must hold in every group subset.
//
// Groups are off by default and EnableGroups is deliberately the only way
// to turn them on, so the normal compile path's clause stream (and hence
// its solver-effort counters) is bit-identical to a build without this
// machinery.
func (c *CNF) EnableGroups() {
	c.groupsOn = true
	if c.groupSels == nil {
		c.groupSels = make(map[string]sat.Lit)
	}
	c.curSet = false
}

// SetGroup makes subsequent Assert/AssertNot calls members of the named
// group, allocating the group's selector on first use. The empty name
// reverts to ungated assertions. A no-op unless EnableGroups was called.
func (c *CNF) SetGroup(name string) {
	if !c.groupsOn {
		return
	}
	if name == "" {
		c.curSet = false
		return
	}
	sel, ok := c.groupSels[name]
	if !ok {
		sel = sat.PosLit(c.solver.NewVar())
		c.nVars++
		c.groupSels[name] = sel
		c.groupNames = append(c.groupNames, name)
	}
	c.curSel, c.curSet = sel, true
}

// Groups returns the names of all groups allocated so far, in first-use
// order.
func (c *CNF) Groups() []string {
	out := make([]string, len(c.groupNames))
	copy(out, c.groupNames)
	return out
}

// GroupAssumptions returns the selector literal of each named group, in
// the same order as the names. Passing all of them to Solve enforces every
// group; passing a subset leaves the omitted groups' constraints off.
func (c *CNF) GroupAssumptions(names []string) []sat.Lit {
	out := make([]sat.Lit, 0, len(names))
	for _, n := range names {
		sel, ok := c.groupSels[n]
		if !ok {
			panic(fmt.Sprintf("circuit: unknown constraint group %q", n))
		}
		out = append(out, sel)
	}
	return out
}

// GroupName maps a selector literal (e.g. an UNSAT-core member) back to
// its group name.
func (c *CNF) GroupName(l sat.Lit) (string, bool) {
	for name, sel := range c.groupSels {
		if sel == l {
			return name, true
		}
	}
	return "", false
}

// Assert adds the constraint that bit n is true.
func (c *CNF) Assert(n Bit) {
	if n == True {
		return
	}
	if c.curSet {
		if n == False {
			// The group is unconditionally violated: asserting its
			// selector alone forces UNSAT.
			c.addClause(c.curSel.Not())
			return
		}
		c.addClause(c.curSel.Not(), c.Lit(n))
		return
	}
	if n == False {
		// Force unsatisfiability explicitly.
		c.addClause()
		return
	}
	c.addClause(c.Lit(n))
}

// AssertNot adds the constraint that bit n is false.
func (c *CNF) AssertNot(n Bit) {
	if n == False {
		return
	}
	if c.curSet {
		if n == True {
			c.addClause(c.curSel.Not())
			return
		}
		c.addClause(c.curSel.Not(), c.Lit(n).Not())
		return
	}
	if n == True {
		c.addClause()
		return
	}
	c.addClause(c.Lit(n).Not())
}

// Touch forces a solver variable into existence for every non-constant
// bit of the given words, encoding each bit's cone of influence. For pure
// input bits (holes) this allocates a free variable with no clauses.
//
// Hole-elimination CEGIS needs this before its first solve: Extract reads
// unencoded bits as zero, which is fine when later (wider) tests would
// encode them, but a blocking-clause enumeration never adds tests — so
// every hole bit must be a real solver variable or the enumeration would
// silently quotient the hole space and make its UNSAT verdicts unsound.
func (c *CNF) Touch(words ...Word) {
	for _, w := range words {
		for _, bit := range w {
			if bit == True || bit == False {
				continue
			}
			c.Lit(bit)
		}
	}
}

// BlockModel adds one clause forbidding the solver's current assignment
// to the given words: the disjunction, over every non-constant bit, of
// the literal that disagrees with the model. With the words being a
// sketch's holes this is the hole-elimination step — the candidate just
// refuted by a counterexample can never be proposed again.
func (c *CNF) BlockModel(words ...Word) {
	var clause []sat.Lit
	for _, w := range words {
		for _, bit := range w {
			if bit == True || bit == False {
				continue
			}
			l := c.Lit(bit)
			if c.BitValue(bit) {
				l = l.Not()
			}
			clause = append(clause, l)
		}
	}
	c.addClause(clause...)
}

// WordValue reads the value of a word from the solver's current model.
func (c *CNF) WordValue(w Word) uint64 {
	var v uint64
	for i, bit := range w {
		if c.BitValue(bit) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// BitValue reads a bit from the solver's current model. Bits outside the
// encoded cone default to false (they were unconstrained).
func (c *CNF) BitValue(n Bit) bool {
	switch n {
	case False:
		return false
	case True:
		return true
	}
	g := c.b.gates[n]
	if g.op == opNot {
		return !c.BitValue(g.a)
	}
	if int(n) >= len(c.vars) || c.vars[n] < 0 {
		return false
	}
	return c.solver.Value(c.vars[n])
}
