package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sat"
	"repro/internal/word"
)

// evalBinop builds a fresh circuit computing op over two input words,
// evaluates it on (a, b), and returns the result.
func evalBinop(t *testing.T, w word.Width, op func(b *Builder, x, y Word) Word, a, bv uint64) uint64 {
	t.Helper()
	b := New()
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	out := op(b, x, y)
	in := map[Bit]bool{}
	SetWordInputs(in, x, a)
	SetWordInputs(in, y, bv)
	return b.EvalWord(in, out)
}

// exhaustive4 checks a circuit binop against a reference over all pairs of
// 4-bit words.
func exhaustive4(t *testing.T, name string, op func(b *Builder, x, y Word) Word, ref func(w word.Width, a, b uint64) uint64) {
	t.Helper()
	const w = word.Width(4)
	b := New()
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	out := op(b, x, y)
	for a := uint64(0); a < 16; a++ {
		for c := uint64(0); c < 16; c++ {
			in := map[Bit]bool{}
			SetWordInputs(in, x, a)
			SetWordInputs(in, y, c)
			got := b.EvalWord(in, out)
			want := ref(w, a, c)
			if got != want {
				t.Fatalf("%s(%d, %d) = %d, want %d", name, a, c, got, want)
			}
		}
	}
}

func TestAddExhaustive(t *testing.T) {
	exhaustive4(t, "add", (*Builder).AddW, word.Width.Add)
}

func TestSubExhaustive(t *testing.T) {
	exhaustive4(t, "sub", (*Builder).SubW, word.Width.Sub)
}

func TestMulExhaustive(t *testing.T) {
	exhaustive4(t, "mul", (*Builder).MulW, word.Width.Mul)
}

func TestBitwiseExhaustive(t *testing.T) {
	exhaustive4(t, "and", (*Builder).AndW, word.Width.And)
	exhaustive4(t, "or", (*Builder).OrW, word.Width.Or)
	exhaustive4(t, "xor", (*Builder).XorW, word.Width.Xor)
}

func TestShiftExhaustive(t *testing.T) {
	exhaustive4(t, "shl", (*Builder).ShlW, word.Width.Shl)
	exhaustive4(t, "shr", (*Builder).ShrW, word.Width.Shr)
}

func TestComparisonsExhaustive(t *testing.T) {
	boolOp := func(f func(b *Builder, x, y Word) Bit) func(b *Builder, x, y Word) Word {
		return func(b *Builder, x, y Word) Word {
			return b.BoolToWord(f(b, x, y), word.Width(len(x)))
		}
	}
	exhaustive4(t, "eq", boolOp((*Builder).EqW), word.Width.Eq)
	exhaustive4(t, "slt", boolOp((*Builder).SltW), word.Width.Lt)
	exhaustive4(t, "sle", boolOp((*Builder).SleW), word.Width.Le)
	exhaustive4(t, "ult", boolOp((*Builder).UltW), func(w word.Width, a, b uint64) uint64 {
		return word.Bool(w.Trunc(a) < w.Trunc(b))
	})
}

func TestNegNotExhaustive(t *testing.T) {
	const w = word.Width(5)
	b := New()
	x := b.InputWord("x", w)
	neg := b.NegW(x)
	not := b.NotW(x)
	nz := b.BoolToWord(b.NonZero(x), w)
	for a := uint64(0); a < 32; a++ {
		in := map[Bit]bool{}
		SetWordInputs(in, x, a)
		if got := b.EvalWord(in, neg); got != w.Neg(a) {
			t.Fatalf("neg(%d) = %d, want %d", a, got, w.Neg(a))
		}
		if got := b.EvalWord(in, not); got != w.Not(a) {
			t.Fatalf("not(%d) = %d, want %d", a, got, w.Not(a))
		}
		if got := b.EvalWord(in, nz); got != word.Bool(a != 0) {
			t.Fatalf("nonzero(%d) = %d", a, got)
		}
	}
}

// TestWideOpsQuick property-tests 10-bit operations (the paper's Z3
// verification width) against the word reference using testing/quick.
func TestWideOpsQuick(t *testing.T) {
	const w = word.Width(10)
	b := New()
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	add := b.AddW(x, y)
	sub := b.SubW(x, y)
	mul := b.MulW(x, y)
	slt := b.BoolToWord(b.SltW(x, y), w)
	f := func(a, c uint16) bool {
		av, cv := w.Trunc(uint64(a)), w.Trunc(uint64(c))
		in := map[Bit]bool{}
		SetWordInputs(in, x, av)
		SetWordInputs(in, y, cv)
		return b.EvalWord(in, add) == w.Add(av, cv) &&
			b.EvalWord(in, sub) == w.Sub(av, cv) &&
			b.EvalWord(in, mul) == w.Mul(av, cv) &&
			b.EvalWord(in, slt) == w.Lt(av, cv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMuxWord(t *testing.T) {
	const w = word.Width(6)
	b := New()
	s := b.Input("s")
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	m := b.MuxW(s, x, y)
	for _, sel := range []bool{false, true} {
		in := map[Bit]bool{s: sel}
		SetWordInputs(in, x, 42)
		SetWordInputs(in, y, 17)
		want := uint64(17)
		if sel {
			want = 42
		}
		if got := b.EvalWord(in, m); got != want {
			t.Fatalf("mux(%v) = %d, want %d", sel, got, want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	b := New()
	x := b.Input("x")
	if b.And(x, False) != False || b.And(False, x) != False {
		t.Fatal("AND with false should fold")
	}
	if b.And(x, True) != x {
		t.Fatal("AND with true should fold to operand")
	}
	if b.And(x, x) != x {
		t.Fatal("AND idempotence")
	}
	if b.And(x, b.Not(x)) != False {
		t.Fatal("AND with complement should fold to false")
	}
	if b.Xor(x, x) != False || b.Xor(x, False) != x {
		t.Fatal("XOR folding")
	}
	if b.Xor(x, b.Not(x)) != True {
		t.Fatal("XOR with complement should fold to true")
	}
	if b.Not(b.Not(x)) != x {
		t.Fatal("double negation should fold")
	}
	if b.Mux(True, x, False) != x || b.Mux(False, False, x) != x {
		t.Fatal("MUX constant select should fold")
	}
	if b.Mux(x, True, False) != x {
		t.Fatal("MUX to identity should fold")
	}
}

func TestStructuralHashing(t *testing.T) {
	b := New()
	x, y := b.Input("x"), b.Input("y")
	a1 := b.And(x, y)
	a2 := b.And(y, x) // commuted operands must hash to the same node
	if a1 != a2 {
		t.Fatal("structural hashing should dedupe commuted AND")
	}
	n := b.NumGates()
	_ = b.And(x, y)
	if b.NumGates() != n {
		t.Fatal("repeated construction should not grow the DAG")
	}
}

// TestTseitinAgainstEval is the bit-blasting soundness property: for random
// circuits, assert the output, solve, and check that the model's inputs
// actually make the output true under concrete evaluation.
func TestTseitinAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		b := New()
		nIn := 3 + rng.Intn(5)
		nodes := make([]Bit, 0, 40)
		for i := 0; i < nIn; i++ {
			nodes = append(nodes, b.Input("i"))
		}
		for i := 0; i < 25; i++ {
			a := nodes[rng.Intn(len(nodes))]
			c := nodes[rng.Intn(len(nodes))]
			var n Bit
			switch rng.Intn(4) {
			case 0:
				n = b.And(a, c)
			case 1:
				n = b.Xor(a, c)
			case 2:
				n = b.Not(a)
			case 3:
				n = b.Mux(a, c, nodes[rng.Intn(len(nodes))])
			}
			nodes = append(nodes, n)
		}
		out := nodes[len(nodes)-1]

		// Determine ground truth by enumerating all inputs.
		satisfiable := false
		for m := 0; m < 1<<uint(nIn); m++ {
			in := map[Bit]bool{}
			for i := 0; i < nIn; i++ {
				in[nodes[i]] = m&(1<<uint(i)) != 0
			}
			if b.Eval(in, out)[0] {
				satisfiable = true
				break
			}
		}

		s := sat.New()
		cnf := NewCNF(b, s)
		cnf.Assert(out)
		got := s.Solve()
		if (got == sat.Sat) != satisfiable {
			t.Fatalf("trial %d: solver=%v enumeration=%v", trial, got, satisfiable)
		}
		if got == sat.Sat {
			in := map[Bit]bool{}
			for i := 0; i < nIn; i++ {
				in[nodes[i]] = cnf.BitValue(nodes[i])
			}
			if !b.Eval(in, out)[0] {
				t.Fatalf("trial %d: SAT model does not satisfy circuit", trial)
			}
		}
	}
}

// TestTseitinAddEquivalence proves via SAT that the ripple-carry adder is
// commutative: no input makes x+y differ from y+x.
func TestTseitinAddEquivalence(t *testing.T) {
	const w = word.Width(8)
	b := New()
	x := b.InputWord("x", w)
	y := b.InputWord("y", w)
	lhs := b.AddW(x, y)
	rhs := b.AddW(y, x)
	s := sat.New()
	cnf := NewCNF(b, s)
	cnf.AssertNot(b.EqW(lhs, rhs)) // search for a counterexample
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("adder commutativity counterexample search = %v, want Unsat", got)
	}
}

// TestTseitinFindsSolution solves x + 3 == 10 at width 8 through the SAT
// backend and checks the discovered model.
func TestTseitinFindsSolution(t *testing.T) {
	const w = word.Width(8)
	b := New()
	x := b.InputWord("x", w)
	sum := b.AddW(x, b.ConstWord(3, w))
	eq := b.EqW(sum, b.ConstWord(10, w))
	s := sat.New()
	cnf := NewCNF(b, s)
	cnf.Assert(eq)
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if v := cnf.WordValue(x); v != 7 {
		t.Fatalf("model x = %d, want 7", v)
	}
}

// TestTseitinUnsatEquation checks that 2*x == 1 has no solution at width 8
// (left side always even).
func TestTseitinUnsatEquation(t *testing.T) {
	const w = word.Width(8)
	b := New()
	x := b.InputWord("x", w)
	dbl := b.AddW(x, x)
	eq := b.EqW(dbl, b.ConstWord(1, w))
	s := sat.New()
	cnf := NewCNF(b, s)
	cnf.Assert(eq)
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestAssertConstants(t *testing.T) {
	s := sat.New()
	b := New()
	cnf := NewCNF(b, s)
	cnf.Assert(True) // no-op
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("after Assert(True): %v, want Sat", got)
	}
	cnf.AssertNot(False) // no-op
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("after AssertNot(False): %v, want Sat", got)
	}
	cnf.Assert(False)
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("after Assert(False): %v, want Unsat", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	b := New()
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 5)
	b.AddW(x, y)
}

func BenchmarkBuildAdder32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := New()
		x := bld.InputWord("x", 32)
		y := bld.InputWord("y", 32)
		_ = bld.AddW(x, y)
	}
}

func BenchmarkTseitinMul10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := New()
		x := bld.InputWord("x", 10)
		y := bld.InputWord("y", 10)
		m := bld.MulW(x, y)
		s := sat.New()
		cnf := NewCNF(bld, s)
		cnf.Assert(bld.EqW(m, bld.ConstWord(391, 10)))
		s.Solve()
	}
}

func TestCNFEncodingSizeCounters(t *testing.T) {
	b := New()
	s := sat.New()
	cnf := NewCNF(b, s)
	if cnf.NumVars() != 0 || cnf.NumClauses() != 0 {
		t.Fatalf("fresh CNF reports vars=%d clauses=%d", cnf.NumVars(), cnf.NumClauses())
	}
	x := b.InputWord("x", 4)
	y := b.InputWord("y", 4)
	cnf.Assert(b.EqW(b.AddW(x, y), b.ConstWord(5, 4)))
	if cnf.NumVars() == 0 || cnf.NumClauses() == 0 {
		t.Fatalf("encoding produced vars=%d clauses=%d", cnf.NumVars(), cnf.NumClauses())
	}
	// Every variable the encoder allocated is visible to the solver, and
	// the encoder saw at least as many clause adds as the solver retained
	// (the solver drops satisfied/tautological clauses).
	if cnf.NumVars() != s.NumVars() {
		t.Fatalf("CNF vars %d != solver vars %d (sole encoder)", cnf.NumVars(), s.NumVars())
	}
	if cnf.NumClauses() < s.NumClauses() {
		t.Fatalf("CNF clauses %d < solver clauses %d", cnf.NumClauses(), s.NumClauses())
	}
	// Re-asserting the same cone adds one clause, no new vars.
	v, cl := cnf.NumVars(), cnf.NumClauses()
	cnf.Assert(b.EqW(b.AddW(x, y), b.ConstWord(5, 4)))
	if cnf.NumVars() != v || cnf.NumClauses() != cl+1 {
		t.Fatalf("re-assert changed vars %d->%d clauses %d->%d", v, cnf.NumVars(), cl, cnf.NumClauses())
	}
}
