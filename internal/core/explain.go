// Infeasibility forensics at the compiler level: map the CEGIS
// explanation pass's blamed constraint groups onto a resource dimension
// and source statements, and attach the result to the compile Report.

package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/cegis"
	"repro/internal/circuit"
	"repro/internal/obs"
)

// Binding resource dimensions an Explanation can name.
const (
	// DimStageDepth: the program needs more pipeline stages than allowed
	// (pisa).
	DimStageDepth = "stage-depth"
	// DimSlots: the program needs more instruction slots than allowed
	// (bpf).
	DimSlots = "instruction-slots"
	// DimALUBudget: not enough containers/ALUs per stage for the
	// program's packet fields.
	DimALUBudget = "alu-budget"
	// DimStateCells: not enough stateful-ALU cells for the program's
	// state variables, or the state-allocation constraints bind.
	DimStateCells = "state-cells"
	// DimOpcodeMask: the per-deployment opcode vocabulary excludes an
	// operation the program needs.
	DimOpcodeMask = "opcode-mask"
)

// Explanation is the structured forensics report attached to an
// infeasible compile when Options.Explain is set: which resource
// dimension binds, which constraint groups (and hence source statements)
// are jointly unsatisfiable, and what the diagnosis cost.
type Explanation struct {
	// Dimension is the binding resource (Dim* constants).
	Dimension string `json:"dimension"`
	// Size is the program size (stages or slots) the forensics re-run
	// probed — the most generous size the failed search was allowed.
	Size int `json:"size"`
	// BlamedGroups is the minimal set of named constraint groups that is
	// jointly unsatisfiable (see circuit group vocabulary). Empty when
	// the rejection needed no solving (capacity pre-check).
	BlamedGroups []string `json:"blamed_groups,omitempty"`
	// Minimal reports that dropping any single blamed group flips the
	// verdict to SAT (deletion-minimization ran to completion).
	Minimal bool `json:"minimal"`
	// BlamedStatements renders the source statements assigning the
	// blamed outputs, in program order.
	BlamedStatements []string `json:"blamed_statements,omitempty"`
	// Iters and Tests describe the gated re-run; Timeline is its
	// per-iteration effort log (plus minimization probes).
	Iters    int                 `json:"iters"`
	Tests    int                 `json:"tests"`
	Timeline []cegis.ExplainStep `json:"timeline,omitempty"`
	// Elapsed is the wall-clock cost of the forensics pass alone.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Incomplete notes why the explanation is partial ("timeout" when
	// the context expired mid-forensics, "error: ..." when the pass
	// failed); empty for a complete diagnosis.
	Incomplete string `json:"incomplete,omitempty"`
}

// Render formats the explanation as the human-readable report the CLI
// prints under -explain.
func (e *Explanation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "binding resource: %s (at size %d)\n", e.Dimension, e.Size)
	if len(e.BlamedGroups) > 0 {
		min := "minimal"
		if !e.Minimal {
			min = "not proven minimal"
		}
		fmt.Fprintf(&sb, "blamed constraint groups (%s):\n", min)
		for _, g := range e.BlamedGroups {
			fmt.Fprintf(&sb, "  %s\n", g)
		}
	}
	if len(e.BlamedStatements) > 0 {
		sb.WriteString("blamed statements:\n")
		for _, s := range e.BlamedStatements {
			fmt.Fprintf(&sb, "  %s\n", s)
		}
	}
	fmt.Fprintf(&sb, "forensics effort: %d iterations, %d tests, %d timeline steps in %s\n",
		e.Iters, e.Tests, len(e.Timeline), e.Elapsed.Round(time.Millisecond))
	if e.Incomplete != "" {
		fmt.Fprintf(&sb, "explanation incomplete: %s\n", e.Incomplete)
	}
	return sb.String()
}

// maybeExplain runs the forensics pass after a search that concluded
// infeasible (not timed out, not cached) when Options.Explain is set, and
// attaches the Explanation to the report. It never fails the compile:
// forensics errors are recorded on the Explanation itself.
func maybeExplain(ctx context.Context, prog *ast.Program, opts Options, rep *Report) {
	if !opts.Explain || rep.Feasible || rep.TimedOut || rep.Cached {
		return
	}
	// Symmetry breaking is deliberately stripped here: its constraints are
	// search-space pruning, not physics, and letting them into the gated
	// encoding could surface circuit.GroupSymmetry in UNSAT cores and
	// shift the blamed dimension. Forensics verdicts (and the -explain
	// output) are therefore identical with symmetry breaking on or off.
	be, err := backendFor(opts, opts.IndicatorAlloc, false)
	if err != nil {
		return
	}
	size := opts.maxStages()
	ectx, espan := obs.StartSpan(ctx, "explain", obs.Int("size", size))
	reg := obs.MetricsFrom(ectx)
	reg.Counter("explain.runs").Add(1)

	exp := &Explanation{Size: size}
	rep.Explanation = exp
	defer func() {
		espan.End(obs.String("dimension", exp.Dimension),
			obs.Int("blamed_groups", len(exp.BlamedGroups)),
			obs.Bool("minimal", exp.Minimal))
	}()

	xres, err := cegis.Explain(ectx, prog, be, size, cegis.Options{
		SynthWidth:     opts.SynthWidth,
		VerifyWidth:    opts.VerifyWidth,
		IndicatorAlloc: opts.IndicatorAlloc,
		Seed:           opts.Seed,
		Progress:       opts.Progress,
	})
	if err != nil {
		reg.Counter("explain.errors").Add(1)
		exp.Incomplete = "error: " + err.Error()
		exp.Dimension = capacityDimension(prog, opts)
		return
	}
	exp.Iters = xres.Iters
	exp.Tests = xres.Tests
	exp.Timeline = xres.Timeline
	exp.Elapsed = xres.Elapsed
	exp.BlamedGroups = xres.Core
	exp.Minimal = xres.Minimal
	exp.BlamedStatements = cegis.BlamedStatements(prog, xres.Core)

	switch {
	case xres.CapacityExceeded:
		exp.Dimension = capacityDimension(prog, opts)
	case xres.TimedOut:
		reg.Counter("explain.timeouts").Add(1)
		exp.Incomplete = "timeout"
		exp.Dimension = inferDimension(opts, xres.Core)
	case xres.Feasible:
		// The gated re-run found a solution the original search missed
		// (possible only when the original failure was iteration-bounded).
		exp.Incomplete = "gated re-run found the sketch feasible"
		exp.Dimension = inferDimension(opts, nil)
	default:
		exp.Dimension = inferDimension(opts, xres.Core)
		if xres.Minimal {
			reg.Counter("explain.minimal_cores").Add(1)
		}
	}
	reg.Counter("explain.blamed_groups").Add(int64(len(exp.BlamedGroups)))
}

// inferDimension names the binding resource from a minimal core's group
// composition: a domain group in the core means that constraint family is
// part of every refutation; a core of output groups alone means the
// machine at this size simply cannot compute those outputs — the size
// axis (stages or slots) binds.
func inferDimension(opts Options, core []string) string {
	hasOpcode, hasState, hasField := false, false, false
	for _, g := range core {
		switch g {
		case circuit.GroupOpcodeMask:
			hasOpcode = true
		case circuit.GroupStateAlloc:
			hasState = true
		case circuit.GroupFieldAlloc:
			hasField = true
		}
	}
	switch {
	case hasOpcode:
		return DimOpcodeMask
	case hasState:
		return DimStateCells
	case hasField:
		return DimALUBudget
	case opts.targetName() == "bpf":
		return DimSlots
	}
	return DimStageDepth
}

// capacityDimension names the binding resource for capacity-pre-check
// rejections, which fail before any CNF exists: too many state variables
// for the grid's stateful cells, or too many packet fields for its
// containers/registers.
func capacityDimension(prog *ast.Program, opts Options) string {
	vars := prog.Variables()
	if opts.targetName() == "pisa" {
		g := gridSpec(opts)
		g.Stages = opts.maxStages()
		if len(vars.States) > g.StateSlots() {
			return DimStateCells
		}
		return DimALUBudget
	}
	return DimALUBudget
}
