package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/solcache"
)

// dep2 needs two stages (s2 reads s1's old value); chain3's template
// limits force three. Both are fast enough for race-enabled CI.
const dep2Src = "int s1 = 0; int s2 = 0; s2 = s1; s1 = s1 + pkt.x;"

func dep2Options() Options {
	return Options{
		Width:        2,
		MaxStages:    3,
		StatelessALU: alu.Stateless{ConstBits: 4},
		StatefulALU:  alu.Stateful{Kind: alu.PredRaw, ConstBits: 4},
		Seed:         7,
	}
}

// scrubTimes zeroes every wall-clock field so reports from separate runs
// can be compared structurally.
func scrubTimes(rep *Report) {
	rep.Elapsed = 0
	for i := range rep.Depths {
		rep.Depths[i].Elapsed = 0
	}
}

// Parallelism<=1 must take the classic sequential path: the report (and
// in particular the synthesized configuration) is identical to one from
// default options, bit for bit.
func TestParallelismOnePreservesSequential(t *testing.T) {
	b, err := programs.ByName("sampling")
	if err != nil {
		t.Fatal(err)
	}
	prog := b.Parse()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	base, err := Compile(ctx, prog, benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 1} {
		opts := benchOptions(b)
		opts.Parallelism = par
		opts.SeedFanout = 4 // must be inert without Parallelism > 1
		rep, err := Compile(ctx, prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		scrubTimes(base)
		scrubTimes(rep)
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("Parallelism=%d report differs from sequential:\n%+v\nvs\n%+v", par, rep, base)
		}
	}
}

// The portfolio winner must carry the minimum feasible stage count, match
// the sequential result, and behave exactly like the source program.
func TestPortfolioFindsMinimumDepth(t *testing.T) {
	prog, err := parser.Parse("dep2", dep2Src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	opts := dep2Options()
	opts.Parallelism = 4
	opts.SeedFanout = 2
	rep, err := Compile(ctx, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.Usage.Stages != 2 {
		t.Fatalf("feasible=%v stages=%d, want feasible at 2 stages", rep.Feasible, rep.Usage.Stages)
	}
	if rep.Winner == "" {
		t.Error("portfolio report has no winner attribution")
	}

	// Depth 1 must be accounted for: pruned by the witness floor (dep2 has
	// a cross-state dependency) rather than solved.
	var sawD1 bool
	for _, d := range rep.Depths {
		if d.Stages == 1 {
			sawD1 = true
			if !d.Pruned {
				t.Errorf("depth 1 entry %+v, want Pruned", d)
			}
		}
	}
	if !sawD1 {
		t.Error("no depth-1 entry in portfolio report")
	}

	// Cross-check the winning configuration against the interpreter on a
	// fresh input sweep (the compile already cross-checked; this guards
	// the plumbing from scheduler to report).
	in := interp.MustNew(rep.Config.Grid.WordWidth)
	snap := interp.NewSnapshot()
	snap.State["s1"], snap.State["s2"] = 0, 0
	state := map[string]uint64{"s1": 0, "s2": 0}
	for x := uint64(0); x < 50; x++ {
		snap.Pkt["x"] = x
		want, err := in.Run(prog, snap)
		if err != nil {
			t.Fatal(err)
		}
		_, state = rep.Config.Exec(map[string]uint64{"x": x}, state)
		if state["s1"] != want.State["s1"] || state["s2"] != want.State["s2"] {
			t.Fatalf("x=%d: config state %v, program state %v", x, state, want.State)
		}
		snap = want
	}
}

// Portfolio knobs must not leak into the cache fingerprint: a portfolio
// compile and a sequential compile of the same program share one entry.
func TestPortfolioSharesCacheFingerprint(t *testing.T) {
	prog, err := parser.Parse("dep2", dep2Src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cache := solcache.New(16)
	opts := dep2Options()
	opts.Cache = cache
	opts.Parallelism = 4
	opts.SeedFanout = 2
	first, err := Compile(ctx, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first compile unexpectedly hit the cache")
	}

	seq := dep2Options()
	seq.Cache = cache
	second, err := Compile(ctx, prog, seq)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("sequential compile missed the entry the portfolio populated")
	}
	if second.Usage.Stages != first.Usage.Stages {
		t.Fatalf("cached stages %d, portfolio stages %d", second.Usage.Stages, first.Usage.Stages)
	}
}
