package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/word"
)

// randomStatelessProgram generates a small random packet transaction over
// two fields, restricted to operators the stateless ALU plausibly covers
// so a reasonable fraction of programs is feasible.
func randomStatelessProgram(rng *rand.Rand) *ast.Program {
	fields := []string{"a", "b"}
	atoms := func() ast.Expr {
		switch rng.Intn(3) {
		case 0:
			return &ast.Num{Value: int64(rng.Intn(8))}
		default:
			return &ast.Field{Name: fields[rng.Intn(len(fields))]}
		}
	}
	ops := []ast.Op{
		ast.OpAdd, ast.OpSub, ast.OpBitAnd, ast.OpBitOr, ast.OpBitXor,
		ast.OpEq, ast.OpNe, ast.OpLt, ast.OpGe,
	}
	var expr func(d int) ast.Expr
	expr = func(d int) ast.Expr {
		if d == 0 || rng.Intn(2) == 0 {
			return atoms()
		}
		return &ast.Binary{Op: ops[rng.Intn(len(ops))], X: expr(d - 1), Y: expr(d - 1)}
	}
	n := 1 + rng.Intn(2)
	stmts := make([]ast.Stmt, n)
	for i := range stmts {
		stmts[i] = &ast.Assign{
			LHS: ast.LValue{Name: fields[rng.Intn(len(fields))], IsField: true},
			RHS: expr(1 + rng.Intn(2)),
		}
	}
	return &ast.Program{Name: "random", Stmts: stmts, Init: map[string]int64{}}
}

// TestRandomStatelessProgramsEndToEnd is the whole-system randomized test:
// random programs go through the complete pipeline (parse-level AST →
// sketch → CEGIS → config), and every feasible result is checked against
// the interpreter exhaustively at width 5. Infeasible results are fine
// (small grids reject legitimately); errors and wrong configs are not.
func TestRandomStatelessProgramsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20))
	feasible := 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		prog := randomStatelessProgram(rng)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		rep, err := Compile(ctx, prog, Options{
			Width:        2,
			MaxStages:    2,
			StatelessALU: alu.Stateless{},
			StatefulALU:  alu.Stateful{Kind: alu.Counter},
			Seed:         int64(trial),
		})
		cancel()
		if err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, prog.Print())
		}
		if !rep.Feasible {
			continue
		}
		feasible++

		// Exhaustive differential check at width 5 (1024 inputs).
		const w = word.Width(5)
		cfg := *rep.Config
		cfg.Grid.WordWidth = w
		in := interp.MustNew(w)
		for a := uint64(0); a < w.Size(); a++ {
			for b := uint64(0); b < w.Size(); b++ {
				snap := interp.NewSnapshot()
				snap.Pkt["a"], snap.Pkt["b"] = a, b
				want, err := in.Run(prog, snap)
				if err != nil {
					t.Fatal(err)
				}
				got, _ := cfg.Exec(snap.Pkt, nil)
				if got["a"] != want.Pkt["a"] || got["b"] != want.Pkt["b"] {
					t.Fatalf("trial %d input (%d,%d): got (%d,%d) want (%d,%d)\nprogram:\n%s\nconfig:\n%s",
						trial, a, b, got["a"], got["b"], want.Pkt["a"], want.Pkt["b"],
						prog.Print(), rep.Config)
				}
			}
		}
	}
	t.Logf("feasible: %d/%d random programs", feasible, trials)
	if feasible == 0 {
		t.Fatal("expected at least one feasible random program; generator or synthesis regressed")
	}
}

// TestRandomStatefulProgramsEndToEnd does the same for guarded single-state
// updates against the pred_raw ALU.
func TestRandomStatefulProgramsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(21))
	rels := []ast.Op{ast.OpEq, ast.OpNe, ast.OpLt, ast.OpGe}
	feasible := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		// if (x REL k) s = s OP u;  with x in {s, pkt.p}, u in {pkt.p, k2}
		cmpL := ast.Expr(&ast.State{Name: "s"})
		if rng.Intn(2) == 0 {
			cmpL = &ast.Field{Name: "p"}
		}
		upd := ast.Expr(&ast.Field{Name: "p"})
		if rng.Intn(2) == 0 {
			upd = &ast.Num{Value: int64(rng.Intn(8))}
		}
		op := ast.OpAdd
		if rng.Intn(2) == 0 {
			op = ast.OpSub
		}
		prog := &ast.Program{
			Name: "randstate",
			Init: map[string]int64{"s": 0},
			Stmts: []ast.Stmt{
				&ast.If{
					Cond: &ast.Binary{Op: rels[rng.Intn(len(rels))], X: cmpL, Y: &ast.Num{Value: int64(rng.Intn(8))}},
					Then: []ast.Stmt{&ast.Assign{
						LHS: ast.LValue{Name: "s"},
						RHS: &ast.Binary{Op: op, X: &ast.State{Name: "s"}, Y: upd},
					}},
				},
			},
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		rep, err := Compile(ctx, prog, Options{
			Width:        1,
			MaxStages:    2,
			StatelessALU: alu.Stateless{},
			StatefulALU:  alu.Stateful{Kind: alu.PredRaw},
			Seed:         int64(trial),
		})
		cancel()
		if err != nil {
			t.Fatalf("trial %d: %v\nprogram:\n%s", trial, err, prog.Print())
		}
		if !rep.Feasible {
			continue
		}
		feasible++

		const w = word.Width(5)
		cfg := *rep.Config
		cfg.Grid.WordWidth = w
		in := interp.MustNew(w)
		for p := uint64(0); p < w.Size(); p++ {
			for s := uint64(0); s < w.Size(); s++ {
				snap := interp.NewSnapshot()
				snap.Pkt["p"] = p
				snap.State["s"] = s
				want, err := in.Run(prog, snap)
				if err != nil {
					t.Fatal(err)
				}
				gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
				if gotPkt["p"] != want.Pkt["p"] || gotState["s"] != want.State["s"] {
					t.Fatalf("trial %d input (p=%d,s=%d): got (%d,%d) want (%d,%d)\nprogram:\n%s",
						trial, p, s, gotPkt["p"], gotState["s"], want.Pkt["p"], want.State["s"], prog.Print())
				}
			}
		}
	}
	t.Logf("feasible: %d/%d random stateful programs", feasible, trials)
	if feasible == 0 {
		t.Fatal("expected at least one feasible random stateful program")
	}
}
