package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/interp"
	"repro/internal/programs"
	"repro/internal/word"
)

// TestSymmetryVerdictParity is the soundness gate for symmetry breaking:
// over the whole corpus, turning it on must change neither the verdict
// nor the depth floor — only which witness (if any) comes back. Feasible
// witnesses found under symmetry constraints are additionally probed
// against the interpreter, since a sound-but-wrong pruning clause would
// most likely surface as a config that satisfies the pruned CNF but not
// the program.
func TestSymmetryVerdictParity(t *testing.T) {
	for _, b := range programs.Corpus() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			plain, err := Compile(ctx, b.Parse(), benchOptions(b))
			if err != nil {
				t.Fatal(err)
			}
			opts := benchOptions(b)
			opts.SymmetryBreak = true
			sym, err := Compile(ctx, b.Parse(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if plain.TimedOut || sym.TimedOut {
				t.Fatalf("corpus compile timed out (plain=%v sym=%v)", plain.TimedOut, sym.TimedOut)
			}
			if plain.Feasible != sym.Feasible {
				t.Fatalf("verdict flipped: plain=%v symmetry=%v", plain.Feasible, sym.Feasible)
			}
			if len(plain.Depths) != len(sym.Depths) {
				t.Fatalf("depth probes diverged: plain=%+v symmetry=%+v", plain.Depths, sym.Depths)
			}
			for i := range plain.Depths {
				if plain.Depths[i].Feasible != sym.Depths[i].Feasible {
					t.Fatalf("verdict at depth %d flipped: plain=%v symmetry=%v",
						plain.Depths[i].Stages, plain.Depths[i].Feasible, sym.Depths[i].Feasible)
				}
			}
			if !sym.Feasible {
				return
			}
			if plain.Config.Grid.Stages != sym.Config.Grid.Stages {
				t.Fatalf("depth floor moved: plain=%d symmetry=%d",
					plain.Config.Grid.Stages, sym.Config.Grid.Stages)
			}

			// Probe the symmetry-found witness against the interpreter.
			const w = word.Width(5)
			cfg := *sym.Config
			cfg.Grid.WordWidth = w
			in := interp.MustNew(w)
			prog := b.Parse()
			vars := prog.Variables()
			rng := rand.New(rand.NewSource(11))
			for probe := 0; probe < 128; probe++ {
				snap := interp.NewSnapshot()
				for _, f := range vars.Fields {
					snap.Pkt[f] = rng.Uint64() % w.Size()
				}
				for _, s := range vars.States {
					snap.State[s] = rng.Uint64() % w.Size()
				}
				want, err := in.Run(prog, snap)
				if err != nil {
					t.Fatal(err)
				}
				gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
				for _, f := range vars.Fields {
					if gotPkt[f] != want.Pkt[f] {
						t.Fatalf("probe %d: field %s = %d, want %d\nconfig:\n%s",
							probe, f, gotPkt[f], want.Pkt[f], sym.Config)
					}
				}
				for _, s := range vars.States {
					if gotState[s] != want.State[s] {
						t.Fatalf("probe %d: state %s = %d, want %d\nconfig:\n%s",
							probe, s, gotState[s], want.State[s], sym.Config)
					}
				}
			}
		})
	}
}

// TestSymmetryExplainParity: forensics run on the symmetry-stripped
// encoding, so the acceptance scenario (marple_reorder below its depth
// floor) must report the same binding dimension with symmetry breaking
// requested, and the blame set must never name the symmetry group.
func TestSymmetryExplainParity(t *testing.T) {
	b, err := programs.ByName("marple_reorder")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	opts := benchOptions(b)
	opts.MaxStages = 1
	opts.Explain = true
	opts.SymmetryBreak = true
	rep, err := Compile(ctx, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || rep.TimedOut {
		t.Fatalf("marple_reorder at 1 stage should stay infeasible: %+v", rep)
	}
	exp := rep.Explanation
	if exp == nil {
		t.Fatal("missing explanation")
	}
	if exp.Dimension != DimStageDepth {
		t.Fatalf("binding dimension = %q (core %v), want %q", exp.Dimension, exp.BlamedGroups, DimStageDepth)
	}
	for _, g := range exp.BlamedGroups {
		if g == circuit.GroupSymmetry {
			t.Fatalf("symmetry group leaked into the blame set: %v", exp.BlamedGroups)
		}
	}
}
