package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/programs"
	"repro/internal/solcache"
)

// TestCompileAlreadyCancelledContext: a context that is dead on arrival
// must yield a TimedOut report (core's documented contract: deadline
// expiry is an outcome, not an error) without panicking, and the solution
// cache must not store the non-answer.
func TestCompileAlreadyCancelledContext(t *testing.T) {
	b, err := programs.ByName("sampling")
	if err != nil {
		t.Fatal(err)
	}
	cache := solcache.New(8)
	opts := benchOptions(b)
	opts.Cache = cache

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Compile(ctx, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimedOut {
		t.Errorf("report: TimedOut=%v, want true", rep.TimedOut)
	}
	if rep.Feasible {
		t.Error("cancelled compile claims feasibility")
	}
	if cache.Len() != 0 {
		t.Errorf("cache stored %d entries from a cancelled compile, want 0", cache.Len())
	}
}

// TestCompileMidSynthesisExpiry: a deadline that expires while CEGIS is
// solving must interrupt the solver, return TimedOut, and leave the cache
// empty. flowlet is the corpus's hardest program (Table 2's timeout case),
// so a few milliseconds cannot be enough to finish it.
func TestCompileMidSynthesisExpiry(t *testing.T) {
	b, err := programs.ByName("flowlet")
	if err != nil {
		t.Fatal(err)
	}
	cache := solcache.New(8)
	opts := benchOptions(b)
	opts.Cache = cache

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Compile(ctx, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimedOut {
		t.Errorf("report: TimedOut=%v, want true (elapsed %v)", rep.TimedOut, time.Since(start))
	}
	if rep.Feasible {
		t.Error("timed-out compile claims feasibility")
	}
	if cache.Len() != 0 {
		t.Errorf("cache stored %d entries from a timed-out compile, want 0", cache.Len())
	}

	// The timeout must not have poisoned the cache: the same problem with
	// an adequate budget still gets a real (uncached) answer.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel2()
	rep2, err := Compile(ctx2, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cached {
		t.Error("retry after timeout served a cached non-answer")
	}
	if !rep2.Feasible {
		t.Errorf("flowlet retry infeasible (timedout=%v)", rep2.TimedOut)
	}
}
