package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/parser"
	"repro/internal/programs"
)

// TestExplainDepthBelowFloorPISA is the acceptance scenario on the pisa
// target: marple_reorder is the corpus program with a proven depth floor
// of 2 (every other benchmark folds into one stage under its paired
// stateful ALU), so compiling it at max-stages 1 must come back
// infeasible with an explanation naming stage depth as the binding
// resource and a nonempty blame set proven minimal by re-solve.
func TestExplainDepthBelowFloorPISA(t *testing.T) {
	for _, name := range []string{"marple_reorder"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, err := programs.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			opts := benchOptions(b)
			opts.MaxStages = 1
			opts.Explain = true
			rep, err := Compile(ctx, b.Parse(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Feasible || rep.TimedOut {
				t.Fatalf("%s at 1 stage should be infeasible, got %+v", name, rep)
			}
			exp := rep.Explanation
			if exp == nil {
				t.Fatal("infeasible compile with Explain set must carry an explanation")
			}
			if exp.Dimension != DimStageDepth {
				t.Fatalf("binding dimension = %q (core %v), want %q", exp.Dimension, exp.BlamedGroups, DimStageDepth)
			}
			if !exp.Minimal || len(exp.BlamedGroups) == 0 {
				t.Fatalf("expected a minimal nonempty blame set, got %+v", exp)
			}
			if len(exp.BlamedStatements) == 0 {
				t.Fatalf("blame set %v should map to source statements", exp.BlamedGroups)
			}
			if len(exp.Timeline) == 0 {
				t.Fatal("explanation should carry an effort timeline")
			}
			if !strings.Contains(exp.Render(), "binding resource: stage-depth") {
				t.Fatalf("rendered report should name the binding resource:\n%s", exp.Render())
			}
		})
	}
}

// TestExplainSlotsBelowBudgetBPF: the same scenario on the register
// machine — corpus programs compiled below their hand-worked slot budgets
// must blame the instruction-slot axis.
func TestExplainSlotsBelowBudgetBPF(t *testing.T) {
	cases := []struct {
		name  string
		slots int
	}{
		{"marple_new_flow", 3},
		{"stateful_fw", 3},
		{"sampling", 5},
		{"blue_decrease", 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			b, err := programs.ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			rep, err := Compile(ctx, b.Parse(), Options{
				Target:       "bpf",
				MaxStages:    tc.slots,
				FixedStages:  true,
				StatelessALU: alu.Stateless{ConstBits: b.ConstBits},
				StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
				Seed:         7,
				Explain:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Feasible || rep.TimedOut {
				t.Fatalf("%s at %d slots should be infeasible, got feas=%v to=%v",
					tc.name, tc.slots, rep.Feasible, rep.TimedOut)
			}
			exp := rep.Explanation
			if exp == nil {
				t.Fatal("infeasible compile with Explain set must carry an explanation")
			}
			if exp.Dimension != DimSlots {
				t.Fatalf("binding dimension = %q (core %v), want %q", exp.Dimension, exp.BlamedGroups, DimSlots)
			}
			if !exp.Minimal || len(exp.BlamedGroups) == 0 {
				t.Fatalf("expected a minimal nonempty blame set, got %+v", exp)
			}
		})
	}
}

// TestExplainCapacityRejection: a capacity pre-check rejection (more
// fields than containers) cannot run the solver but must still name the
// binding dimension.
func TestExplainCapacityRejection(t *testing.T) {
	prog := parser.MustParse("wide", "pkt.tmp = pkt.a; pkt.a = pkt.b; pkt.b = pkt.tmp;")
	rep, err := Compile(context.Background(), prog, Options{
		Width:        2,
		MaxStages:    2,
		StatelessALU: alu.Stateless{ConstBits: 4},
		StatefulALU:  alu.Stateful{Kind: alu.Counter, ConstBits: 4},
		Seed:         1,
		Explain:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatal("3 fields in 2 containers should be infeasible")
	}
	if rep.Explanation == nil || rep.Explanation.Dimension != DimALUBudget {
		t.Fatalf("capacity rejection should blame %s, got %+v", DimALUBudget, rep.Explanation)
	}
}

// TestExplainOffByDefault: without Options.Explain the report must not
// carry an explanation — the forensics pass is strictly opt-in.
func TestExplainOffByDefault(t *testing.T) {
	prog := parser.MustParse("hard", "pkt.a = pkt.a * pkt.b;")
	rep, err := Compile(context.Background(), prog, Options{
		Width:        2,
		MaxStages:    1,
		StatelessALU: alu.Stateless{},
		StatefulALU:  alu.Stateful{Kind: alu.Counter},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatal("field multiply should be infeasible")
	}
	if rep.Explanation != nil {
		t.Fatal("explanation attached without Options.Explain")
	}
}

// TestExplainFeasibleCompileHasNoExplanation: a successful compile never
// runs forensics even when asked.
func TestExplainFeasibleCompileHasNoExplanation(t *testing.T) {
	prog := parser.MustParse("easy", "pkt.a = pkt.a + 1;")
	rep, err := Compile(context.Background(), prog, Options{
		Width:        1,
		MaxStages:    1,
		StatelessALU: alu.Stateless{ConstBits: 4},
		StatefulALU:  alu.Stateful{Kind: alu.Counter, ConstBits: 4},
		Seed:         1,
		Explain:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.Explanation != nil {
		t.Fatalf("feasible compile must not carry an explanation: feas=%v exp=%+v",
			rep.Feasible, rep.Explanation)
	}
}

// TestExplainOpcodeMaskBlamed: restricting the bpf opcode vocabulary so
// the needed operation is excluded must pin the opcode mask as the
// binding dimension, not the slot count.
func TestExplainOpcodeMaskBlamed(t *testing.T) {
	// pkt.a = pkt.a + pkt.b needs an add; allow only mov/nop.
	prog := parser.MustParse("addprog", "pkt.a = pkt.a + pkt.b;")
	rep, err := Compile(context.Background(), prog, Options{
		Target:        "bpf",
		MaxStages:     4,
		FixedStages:   true,
		BPFOpcodeMask: 1 | 1<<1, // OpNop | OpMov
		StatelessALU:  alu.Stateless{ConstBits: 4},
		StatefulALU:   alu.Stateful{Kind: alu.Counter, ConstBits: 4},
		Seed:          1,
		Explain:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Fatal("add without an add opcode should be infeasible")
	}
	exp := rep.Explanation
	if exp == nil {
		t.Fatal("missing explanation")
	}
	if exp.Dimension != DimOpcodeMask {
		t.Fatalf("binding dimension = %q (core %v), want %q", exp.Dimension, exp.BlamedGroups, DimOpcodeMask)
	}
}
