package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/cegis"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/word"
)

func benchOptions(b programs.Benchmark) Options {
	return Options{
		Width:        b.Width,
		MaxStages:    b.MaxStages,
		StatelessALU: alu.Stateless{ConstBits: b.ConstBits},
		StatefulALU:  alu.Stateful{Kind: b.StatefulALU, ConstBits: b.ConstBits},
		Seed:         7,
	}
}

// TestCorpusCompiles is the repository's flagship integration test: every
// benchmark program of Table 2 must synthesize, and the synthesized
// configuration must behave exactly like the program when simulated.
func TestCorpusCompiles(t *testing.T) {
	for _, b := range programs.Corpus() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			rep, err := Compile(ctx, b.Parse(), benchOptions(b))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Feasible {
				t.Fatalf("%s did not compile (timedout=%v depths=%+v)", b.Name, rep.TimedOut, rep.Depths)
			}
			if rep.Usage.Stages == 0 {
				t.Fatal("usage should report at least one stage")
			}
			if rep.Config.Grid.Stages > b.MaxStages {
				t.Fatalf("grid exceeds MaxStages: %d", rep.Config.Grid.Stages)
			}
		})
	}
}

// TestIterativeDeepeningFindsMinimum: marple_reorder is infeasible at one
// stage (the reordered flag needs the old max exported first), so the depth
// search must probe 1 then settle at 2.
func TestIterativeDeepeningFindsMinimum(t *testing.T) {
	b, err := programs.ByName("marple_reorder")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compile(context.Background(), b.Parse(), benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Depths) != 2 {
		t.Fatalf("expected probes at 1 and 2 stages, got %+v", rep.Depths)
	}
	if rep.Depths[0].Feasible || !rep.Depths[1].Feasible {
		t.Fatalf("expected infeasible@1, feasible@2: %+v", rep.Depths)
	}
	if rep.Config.Grid.Stages != 2 {
		t.Fatalf("final grid has %d stages, want 2", rep.Config.Grid.Stages)
	}
}

func TestFixedStagesSkipsDeepening(t *testing.T) {
	b, _ := programs.ByName("sampling")
	opts := benchOptions(b)
	opts.FixedStages = true
	opts.MaxStages = 2
	rep, err := Compile(context.Background(), b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("sampling should compile at fixed 2 stages")
	}
	if len(rep.Depths) != 1 || rep.Depths[0].Stages != 2 {
		t.Fatalf("fixed-stages should probe only depth 2: %+v", rep.Depths)
	}
}

func TestCompileTimeout(t *testing.T) {
	b, _ := programs.ByName("flowlet")
	ctx, cancel := context.WithTimeout(context.Background(), 1*time.Millisecond)
	defer cancel()
	rep, err := Compile(ctx, b.Parse(), benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TimedOut && !rep.Feasible {
		t.Fatal("near-zero budget must end in TimedOut (or a very fast success)")
	}
}

func TestInfeasibleProgramReported(t *testing.T) {
	prog := parser.MustParse("hard", "pkt.a = pkt.a * pkt.b;")
	rep, err := Compile(context.Background(), prog, Options{
		Width:        2,
		MaxStages:    2,
		StatefulALU:  alu.Stateful{Kind: alu.Counter},
		StatelessALU: alu.Stateless{},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || rep.TimedOut {
		t.Fatalf("field multiply should be infeasible: %+v", rep)
	}
	if len(rep.Depths) != 2 {
		t.Fatalf("should have probed both depths: %+v", rep.Depths)
	}
}

// TestSynthesizedSamplingBehaviour drives the compiled sampling config over
// a packet stream — the paper's Figure 2 scenario end to end.
func TestSynthesizedSamplingBehaviour(t *testing.T) {
	b, _ := programs.ByName("sampling")
	rep, err := Compile(context.Background(), b.Parse(), benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("sampling must compile")
	}
	state := map[string]uint64{"count": 0}
	var sampledAt []int
	for i := 1; i <= 44; i++ {
		var pkt map[string]uint64
		pkt, state = rep.Config.Exec(map[string]uint64{"sample": 0}, state)
		if pkt["sample"] == 1 {
			sampledAt = append(sampledAt, i)
		}
	}
	want := []int{11, 22, 33, 44}
	if len(sampledAt) != len(want) {
		t.Fatalf("sampled at %v, want %v", sampledAt, want)
	}
	for i := range want {
		if sampledAt[i] != want[i] {
			t.Fatalf("sampled at %v, want %v", sampledAt, want)
		}
	}
}

// TestFlowletEndToEnd checks the flowlet config: bursts stick to a path,
// gaps allow rerouting.
func TestFlowletEndToEnd(t *testing.T) {
	b, _ := programs.ByName("flowlet")
	rep, err := Compile(context.Background(), b.Parse(), benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("flowlet must compile")
	}
	state := map[string]uint64{"last_time": 0, "saved_hop": 0}
	send := func(arrival, newHop uint64) uint64 {
		pkt, st := rep.Config.Exec(map[string]uint64{
			"arrival": arrival, "new_hop": newHop, "next_hop": 0,
		}, state)
		state = st
		return pkt["next_hop"]
	}
	if got := send(10, 3); got != 3 {
		t.Fatalf("first packet after long gap should take new hop 3, got %d", got)
	}
	if got := send(12, 7); got != 3 {
		t.Fatalf("burst packet should stick to hop 3, got %d", got)
	}
	if got := send(30, 7); got != 7 {
		t.Fatalf("post-gap packet should take new hop 7, got %d", got)
	}
}

// TestCompiledConfigMatchesInterpreterExhaustively compares a compiled
// config against the interpreter over the full input space at width 5.
func TestCompiledConfigMatchesInterpreterExhaustively(t *testing.T) {
	b, _ := programs.ByName("stateful_fw")
	prog := b.Parse()
	rep, err := Compile(context.Background(), prog, benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("firewall must compile")
	}
	const w = word.Width(5)
	cfg := *rep.Config
	cfg.Grid.WordWidth = w
	in := interp.MustNew(w)
	for dir := uint64(0); dir < w.Size(); dir++ {
		for allow := uint64(0); allow < w.Size(); allow++ {
			for est := uint64(0); est < w.Size(); est++ {
				snap := interp.NewSnapshot()
				snap.Pkt["dir"], snap.Pkt["allow"] = dir, allow
				snap.State["established"] = est
				want, err := in.Run(prog, snap)
				if err != nil {
					t.Fatal(err)
				}
				gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
				if gotPkt["allow"] != want.Pkt["allow"] ||
					gotState["established"] != want.State["established"] {
					t.Fatalf("input dir=%d allow=%d est=%d: got (%d,%d) want (%d,%d)",
						dir, allow, est,
						gotPkt["allow"], gotState["established"],
						want.Pkt["allow"], want.State["established"])
				}
			}
		}
	}
}

func TestTraceForwarded(t *testing.T) {
	b, _ := programs.ByName("sampling")
	opts := benchOptions(b)
	var events int
	opts.Trace = func(cegis.Event) { events++ }
	if _, err := Compile(context.Background(), b.Parse(), opts); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("trace hook should receive events")
	}
}

// TestStateDependencyOrdering exercises the paper's §3.1 "important
// wrinkle": when an update to state s2 depends on s1, s1 must be allocated
// to an earlier stage so its exported value can travel through a PHV
// container to s2's ALU. The synthesizer must prove one stage infeasible
// and discover the routing at two stages.
func TestStateDependencyOrdering(t *testing.T) {
	src := "s2 = s1; s1 = s1 + 1;"
	prog := parser.MustParse("dep", src)
	rep, err := Compile(context.Background(), prog, Options{
		Width:        2,
		MaxStages:    3,
		StatelessALU: alu.Stateless{},
		StatefulALU:  alu.Stateful{Kind: alu.PredRaw},
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("cross-state dependency should fit two stages: %+v", rep.Depths)
	}
	if rep.Depths[0].Feasible {
		t.Fatal("one stage cannot order the dependency; depth 1 must be infeasible")
	}
	if rep.Config.Grid.Stages != 2 {
		t.Fatalf("expected 2 stages, got %d", rep.Config.Grid.Stages)
	}
	// Drive the chain: s2 must always lag one packet behind s1's count.
	state := map[string]uint64{"s1": 0, "s2": 0}
	for i := uint64(0); i < 6; i++ {
		if state["s1"] != i || (i > 0 && state["s2"] != i-1) {
			t.Fatalf("packet %d: s1=%d s2=%d", i, state["s1"], state["s2"])
		}
		_, state = rep.Config.Exec(map[string]uint64{}, state)
	}
}

// TestCompileSpansAndEffort compiles a two-stage program with a tracer and
// registry installed and checks (a) the span tree is well-formed with the
// expected compile → attempt → cegis.iter nesting, (b) the attempt count
// matches the deepening probes, and (c) Report.Effort sums the per-depth
// solver counters and agrees with the registry's totals.
func TestCompileSpansAndEffort(t *testing.T) {
	prog := parser.MustParse("dep", "s2 = s1; s1 = s1 + 1;")
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(obs.ContextWithTracer(context.Background(), tr), reg)
	rep, err := Compile(ctx, prog, Options{
		Width:        2,
		MaxStages:    3,
		StatelessALU: alu.Stateless{},
		StatefulALU:  alu.Stateful{Kind: alu.PredRaw},
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("expected feasible: %+v", rep.Depths)
	}

	recs := tr.Records()
	if err := obs.CheckWellFormed(recs); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
	count := map[string]int{}
	parents := map[int64]string{}
	for _, r := range recs {
		if r.Type != obs.RecordStart {
			continue
		}
		count[r.Name]++
		parents[r.ID] = r.Name
	}
	if count["compile"] != 1 {
		t.Fatalf("compile spans = %d, want 1", count["compile"])
	}
	if count["attempt"] != len(rep.Depths) {
		t.Fatalf("attempt spans = %d, want %d", count["attempt"], len(rep.Depths))
	}
	if count["cegis.iter"] == 0 || count["sat.solve"] == 0 {
		t.Fatalf("missing inner spans: %v", count)
	}
	// Every attempt span must nest directly under the compile span.
	for _, r := range recs {
		if r.Type == obs.RecordStart && r.Name == "attempt" && parents[r.Parent] != "compile" {
			t.Fatalf("attempt span parented under %q", parents[r.Parent])
		}
	}

	eff := rep.Effort()
	var iters int
	var conflicts, decisions, propagations int64
	peak := 0
	for _, d := range rep.Depths {
		iters += d.Iters
		conflicts += d.SynthConflicts + d.VerifyConflicts
		decisions += d.Decisions
		propagations += d.Propagations
		if d.PeakCNFVars > peak {
			peak = d.PeakCNFVars
		}
	}
	if eff.Iters != iters || eff.Conflicts != conflicts ||
		eff.Decisions != decisions || eff.Propagations != propagations ||
		eff.PeakCNFVars != peak {
		t.Fatalf("Effort %+v disagrees with per-depth sums", eff)
	}
	if eff.Conflicts == 0 || eff.Decisions == 0 {
		t.Fatal("two-stage synthesis should record solver effort")
	}

	if got := reg.Counter("core.attempts").Value(); got != int64(len(rep.Depths)) {
		t.Fatalf("core.attempts = %d, want %d", got, len(rep.Depths))
	}
	if got := reg.Counter("sat.conflicts").Value(); got != eff.Conflicts {
		t.Fatalf("registry sat.conflicts = %d, Effort says %d", got, eff.Conflicts)
	}
	if got := reg.Counter("sat.decisions").Value(); got != eff.Decisions {
		t.Fatalf("registry sat.decisions = %d, Effort says %d", got, eff.Decisions)
	}
	if got := int(reg.Gauge("cnf.vars").Value()); got != eff.PeakCNFVars {
		t.Fatalf("registry cnf.vars = %d, Effort says %d", got, eff.PeakCNFVars)
	}
}
