// Package core is the Chipmunk code generator — the paper's primary
// contribution (§3). It compiles a Domino packet transaction onto a
// simulated PISA pipeline by:
//
//  1. canonicalizing packet fields and state variables (§3.1, Figure 4) so
//     field k occupies container k and state group j occupies stateful ALU
//     slot j, exploiting the symmetry of homogeneous grids;
//  2. generating a sketch of the datapath whose Table 1 hardware
//     configurations are synthesis holes (internal/sketch);
//  3. solving the sketch with CEGIS over the SAT backend (internal/cegis),
//     with narrow-width synthesis and wide-width verification (§3.1,
//     "Scaling Chipmunk to a large number of input bits"); and
//  4. minimizing pipeline depth by iterative deepening over the stage
//     count — Chipmunk tries a 1-stage grid first and widens only on proof
//     of infeasibility, which is why its resource usage in Figure 5 is
//     minimal and has no variance across program mutations.
//
// The compiler rejects nothing for syntactic reasons: any program whose
// semantics fit the grid's computational capabilities compiles, which is
// the property Table 2 measures against the classical Domino baseline.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/bpf"
	"repro/internal/cegis"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/perfhist"
	"repro/internal/pisa"
	"repro/internal/portfolio"
	"repro/internal/sat"
	"repro/internal/sketch"
	"repro/internal/solcache"
	"repro/internal/word"
)

// Options configures a compilation.
type Options struct {
	// Target selects the compile backend: "pisa" (default) targets the
	// PISA grid of the source paper; "bpf" targets the restricted
	// eBPF-style register machine (internal/bpf, after K2). The size axis
	// the deepening search minimizes is stages for pisa and instruction
	// slots for bpf (MaxStages bounds both).
	Target string
	// Width is the PHV width: containers and ALUs per stage. Must cover
	// the program's packet fields (one container per field, §3.1).
	// Ignored by the bpf target, whose register file is derived from the
	// program's field count.
	Width int
	// MaxStages bounds the iterative-deepening search. 0 means 4.
	MaxStages int
	// BPFOpcodeMask restricts the bpf target's opcode vocabulary (a
	// bitmask over bpf.Opcode; 0 means the full ISA). The analogue of
	// choosing a per-benchmark stateful ALU template on the pisa target:
	// the machine description is a per-deployment input, and a leaner
	// ISA shrinks the synthesis search space. Ignored by pisa.
	BPFOpcodeMask uint32
	// StatelessALU is installed at every stateless grid point.
	StatelessALU alu.Stateless
	// StatefulALU is installed at every stateful grid point; per the
	// paper's evaluation it should be the template the program's original
	// Domino compilation used.
	StatefulALU alu.Stateful
	// SynthWidth and VerifyWidth set the CEGIS tier widths (0 = defaults:
	// 4 and 10 bits).
	SynthWidth  word.Width
	VerifyWidth word.Width
	// IndicatorAlloc uses indicator-variable packet-field allocation
	// instead of canonical allocation (Figure 4 ablation).
	IndicatorAlloc bool
	// CEGISMode selects the refinement strategy ("cex", "holes", or any
	// spelling cegis.ParseMode accepts; empty means counterexample mode —
	// the historical behaviour).
	CEGISMode string
	// SymmetryBreak asks the backend to prune grid symmetries from the
	// hole space (sketch.Options.SymmetryBreak). Backends without
	// interchangeable resources ignore it. Verdict-preserving; off by
	// default so the standard path's clause stream is untouched.
	SymmetryBreak bool
	// FixedStages disables depth minimization and synthesizes directly at
	// MaxStages (iterative-deepening ablation).
	FixedStages bool
	// Seed drives CEGIS's initial random test inputs.
	Seed int64
	// Parallelism, when >= 2, compiles via the portfolio scheduler
	// (internal/portfolio): candidate stage depths race concurrently on a
	// worker pool of this size instead of being probed sequentially, with
	// first-SAT-wins semantics that still return the minimum-depth
	// solution. 0 or 1 run the classic sequential iterative-deepening
	// loop, bit-for-bit identical to the pre-portfolio behaviour.
	Parallelism int
	// SeedFanout is how many diversified CEGIS seeds race per stage depth
	// in portfolio mode (0 or 1 = just Seed). Diversified seeds join with
	// a small stagger so fast compiles pay no redundancy cost, while
	// heavy-tailed solves recruit rivals that often finish first.
	SeedFanout int
	// RaceAllocs additionally races the opposite field-allocation mode
	// (canonical vs indicator) for every portfolio member.
	RaceAllocs bool
	// RaceModes additionally races both CEGIS refinement strategies
	// (counterexample vs hole elimination) for every portfolio member —
	// the upstream driver's repeated_solver race. Requires Parallelism
	// >= 2 to have any effect.
	RaceModes bool
	// Trace receives CEGIS events, if non-nil. In portfolio mode events
	// from racing members arrive concurrently (distinguished by
	// Event.Member); the callback must be safe for concurrent use.
	Trace func(cegis.Event)
	// Progress receives solver counter snapshots from inside long SAT
	// solves (see cegis.Options.Progress), if non-nil.
	Progress func(phase string, st sat.Stats)
	// Cache, when non-nil, memoizes compilation outcomes by canonical
	// problem fingerprint (internal/solcache). Warm hits return the stored
	// configuration without invoking CEGIS; concurrent compilations of the
	// same canonical problem share one synthesis run. Timed-out runs are
	// never stored.
	Cache *solcache.Cache
	// History, when non-nil, appends one performance-history record per
	// compile: the CompileProfile rolled up from this compile's span tree
	// (internal/perfhist). When the context carries no tracer, Compile
	// installs a private one so the profile exists; history capture never
	// fails a compile — append errors are dropped.
	History *perfhist.Store
	// Explain runs the infeasibility-forensics pass when a fresh search
	// concludes infeasible (not on timeouts or cached verdicts): a gated
	// re-run with named constraint groups whose minimal UNSAT core is
	// attached to the report as Report.Explanation. Costs roughly one
	// extra compile attempt, and only when the compile already failed —
	// the feasible path is untouched.
	Explain bool
}

func (o *Options) maxStages() int {
	if o.MaxStages == 0 {
		return 4
	}
	return o.MaxStages
}

// targetName resolves the zero-value default target.
func (o *Options) targetName() string {
	if o.Target == "" {
		return "pisa"
	}
	return o.Target
}

// ErrUnknownTarget reports an unrecognized Options.Target.
var ErrUnknownTarget = fmt.Errorf("core: unknown target (want %q or %q)", "pisa", "bpf")

// bpfBackend builds the register-machine backend for a compile: the
// immediate width follows the stateless ALU's (both are the frontend's
// constant vocabulary), the register file is derived per program, and the
// opcode vocabulary follows the per-deployment machine description.
func bpfBackend(opts Options) bpf.Backend {
	return bpf.Backend{Spec: bpf.MachineSpec{
		ConstBits:  opts.StatelessALU.EffectiveConstBits(),
		OpcodeMask: opts.BPFOpcodeMask,
	}}
}

// backendFor maps Options onto a backend.Backend. The pisa adapter's
// allocation mode is the per-attempt cegis option, so it is passed
// explicitly (portfolio members race both modes); symmetry breaking is
// passed explicitly too, because the forensics pass must build a
// symmetry-free backend so UNSAT cores blame only real resources.
func backendFor(opts Options, indicatorAlloc, symmetry bool) (backend.Backend, error) {
	switch opts.targetName() {
	case "pisa":
		return sketch.PISABackend{Grid: gridSpec(opts), Opts: sketch.Options{IndicatorAlloc: indicatorAlloc, SymmetryBreak: symmetry}}, nil
	case "bpf":
		return bpfBackend(opts), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, opts.Target)
}

// DepthResult records one iterative-deepening probe (or one portfolio
// member's attempt).
type DepthResult struct {
	Stages   int
	Feasible bool
	TimedOut bool
	Iters    int
	HoleBits int
	Elapsed  time.Duration
	// Seed is the CEGIS seed the probe used (portfolio fanout diversifies
	// it per member).
	Seed int64
	// Member labels the portfolio member that ran this probe (e.g.
	// "d2.s1.canon"); empty on the sequential path.
	Member string
	// Mode is the CEGIS refinement strategy the probe ran ("cex" or
	// "holes").
	Mode string
	// Exhausted marks a hole-elimination probe that ran out of its
	// candidate budget without a verdict (inconclusive, but not a compile
	// timeout).
	Exhausted bool
	// Pruned marks a depth skipped without any SAT effort because the
	// portfolio's witness-based depth floor proved it infeasible.
	Pruned bool
	// Canceled marks a portfolio attempt aborted because a sibling's
	// result made it moot (superseded by a SAT, or implied infeasible by
	// a deeper UNSAT).
	Canceled bool
	// Solver-effort telemetry for this probe (see cegis.Result).
	SynthConflicts  int64
	VerifyConflicts int64
	Decisions       int64
	Propagations    int64
	PeakCNFVars     int
}

// Effort aggregates solver effort across deepening attempts — the numbers
// the evaluation harness reports alongside Table 2's wall-clock columns.
type Effort struct {
	// Iters is the total CEGIS iterations across all stage counts probed.
	Iters int
	// Conflicts sums synthesis- and verification-phase SAT conflicts.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	// PeakCNFVars is the largest single-solver encoding reached.
	PeakCNFVars int
}

// Report is the outcome of a compilation.
type Report struct {
	// Program is the compiled program's name.
	Program string
	// Target names the backend compiled for ("pisa", "bpf").
	Target string
	// Feasible reports whether code generation succeeded.
	Feasible bool
	// TimedOut reports whether the context expired first (Table 2's
	// failure mode for flowlet mutations).
	TimedOut bool
	// Cached reports that the outcome came from the solution cache (or a
	// completed shared in-flight run) without a fresh CEGIS search; Depths
	// is empty in that case. A compile whose wait on a shared run expired,
	// or that received a shared run's timed-out verdict, reports TimedOut
	// with Cached false — nothing definitive came from the cache.
	Cached bool
	// Artifact is the synthesized configuration when feasible, whatever
	// the target.
	Artifact backend.Config
	// Config is Artifact's concrete type for the PISA target (nil for
	// other targets), kept for existing callers' static typing.
	Config *pisa.Config
	// Usage is the Figure 5 resource report for Config (PISA only).
	Usage pisa.Usage
	// Depths records every stage count probed, in order. In portfolio
	// mode it holds one entry per member that ran (plus Pruned markers
	// for floor-skipped depths), ordered by depth then seed slot.
	Depths []DepthResult
	// Winner labels the portfolio member that produced Config (empty on
	// the sequential path).
	Winner string
	// Mode is the CEGIS refinement strategy that produced the verdict
	// ("cex" or "holes"): the winner's mode in portfolio mode, the
	// configured mode on the sequential path. Empty on cached outcomes.
	Mode string
	// WastedConflicts sums the SAT conflicts spent by portfolio members
	// other than the winner — the redundancy cost of racing. Zero on the
	// sequential path.
	WastedConflicts int64
	// Explanation is the infeasibility-forensics report (Options.Explain):
	// the binding resource dimension and a minimal blamed constraint set.
	// Nil unless the compile concluded infeasible with Explain set.
	Explanation *Explanation
	// Elapsed is total compile time (Table 2's time column).
	Elapsed time.Duration
}

// Effort sums the solver effort of every deepening attempt in the report.
func (r *Report) Effort() Effort {
	var e Effort
	for _, d := range r.Depths {
		e.Iters += d.Iters
		e.Conflicts += d.SynthConflicts + d.VerifyConflicts
		e.Decisions += d.Decisions
		e.Propagations += d.Propagations
		if d.PeakCNFVars > e.PeakCNFVars {
			e.PeakCNFVars = d.PeakCNFVars
		}
	}
	return e
}

// Compile runs Chipmunk on a program. Cancel or time out the context to
// bound code-generation time; an expired context yields a Report with
// TimedOut set rather than an error.
//
// With Options.Cache set, the problem's canonical fingerprint is consulted
// first: a warm hit skips synthesis entirely and returns the stored
// configuration — translated onto this program's own variable names, since
// alpha-renamed programs share a fingerprint — with Report.Cached set, and
// concurrent compilations of the same canonical problem share a single
// underlying CEGIS run.
func Compile(ctx context.Context, prog *ast.Program, opts Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Program: prog.Name, Target: opts.targetName()}
	if _, err := backendFor(opts, opts.IndicatorAlloc, opts.SymmetryBreak); err != nil {
		return nil, err
	}
	if _, err := cegis.ParseMode(opts.CEGISMode); err != nil {
		return nil, err
	}

	// History capture needs a span tree to roll up; give the compile a
	// private tracer when the caller installed none.
	if opts.History != nil && obs.TracerFrom(ctx) == nil {
		ctx = obs.ContextWithTracer(ctx, obs.NewTracer())
	}

	ctx, span := obs.StartSpan(ctx, "compile",
		obs.String("program", prog.Name), obs.Int("width", opts.Width))
	defer func() {
		pruned := 0
		for _, d := range rep.Depths {
			if d.Pruned {
				pruned++
			}
		}
		span.End(obs.Bool("feasible", rep.Feasible), obs.Bool("timedout", rep.TimedOut),
			obs.Bool("cached", rep.Cached), obs.Int("attempts", len(rep.Depths)),
			obs.Int("pruned", pruned))
		if opts.History != nil {
			if p, perr := obs.TracerFrom(ctx).Profile(); perr == nil {
				opts.History.AppendProfile(prog.Name, p)
			}
		}
	}()

	// Parallelism >= 2 swaps the sequential iterative-deepening loop for
	// the portfolio scheduler; both fill rep through the shared attempt
	// body, so the two paths cannot drift.
	searchFn := search
	if opts.Parallelism > 1 {
		searchFn = searchPortfolio
	}

	if opts.Cache != nil {
		key := cacheKey(prog, opts)
		ran := false
		sol, err := opts.Cache.Do(ctx, key, func(ctx context.Context) (solcache.Solution, bool, error) {
			ran = true
			if err := searchFn(ctx, prog, opts, rep); err != nil {
				return solcache.Solution{}, false, err
			}
			sol := solcache.Solution{
				Feasible: rep.Feasible,
				TimedOut: rep.TimedOut,
				Config:   rep.Config,
				Stages:   rep.Usage.Stages,
				Iters:    rep.Effort().Iters,
			}
			if bc, ok := rep.Artifact.(*bpf.Config); ok {
				sol.BPF = bc
				sol.Stages = bc.Spec.Slots
			}
			return sol, !rep.TimedOut, nil
		})
		if err != nil {
			return nil, err
		}
		switch {
		case ran:
			// Leader: rep was filled by search directly.
		case sol.TimedOut:
			// Follower whose wait on the shared run expired, or whose
			// leader itself timed out: a timeout, not a cache hit.
			rep.TimedOut = true
		default:
			// Cache hit or completed shared run. The stored config names
			// the variables of whichever program first solved this
			// canonical problem — alpha-renamed programs collide by
			// design — so translate it onto this program's names, then
			// cross-check it against this program's semantics exactly as a
			// fresh synthesis would be.
			sol, err = sol.ForProgram(prog)
			if err != nil {
				return nil, fmt.Errorf("core: %s: %w", prog.Name, err)
			}
			rep.Cached = true
			rep.Feasible = sol.Feasible
			rep.Config = sol.Config
			if sol.Config != nil {
				rep.Artifact = sol.Config
				rep.Usage = sol.Config.Usage()
			}
			if sol.BPF != nil {
				rep.Artifact = sol.BPF
			}
			if rep.Artifact != nil {
				if err := crossCheck(prog, rep.Artifact, opts.Seed); err != nil {
					return nil, fmt.Errorf("core: %s: cached configuration: %w", prog.Name, err)
				}
			}
		}
		maybeExplain(ctx, prog, opts, rep)
		rep.Elapsed = time.Since(start)
		return rep, nil
	}

	if err := searchFn(ctx, prog, opts, rep); err != nil {
		return nil, err
	}
	maybeExplain(ctx, prog, opts, rep)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Fingerprint returns the canonical solution-cache fingerprint of a
// compilation as a string — the correlation key joining a daemon's
// structured log lines, flight-recorder dumps, and cache entries for one
// canonical problem. Alpha-renamed programs share a fingerprint by
// design (see solcache).
func Fingerprint(prog *ast.Program, opts Options) string {
	return string(cacheKey(prog, opts))
}

// cacheKey derives the solution-cache fingerprint for a compilation. The
// seed, the callbacks, the portfolio knobs (Parallelism, SeedFanout,
// RaceAllocs, RaceModes), and the search-strategy knobs (CEGISMode,
// SymmetryBreak) are excluded: they steer the search, not the validity of
// its result — both CEGIS modes prove the same verdicts and symmetry
// breaking is verdict-preserving — so one canonical problem keeps one
// fingerprint regardless of strategy and a portfolio winner populates the
// same entry a sequential run would.
func cacheKey(prog *ast.Program, opts Options) solcache.Key {
	p := solcache.Problem{
		Program: prog,
		Target:  opts.targetName(),
		Grid: pisa.GridSpec{
			Width:        opts.Width,
			WordWidth:    10,
			StatelessALU: opts.StatelessALU,
			StatefulALU:  opts.StatefulALU,
		},
		MaxStages:      opts.maxStages(),
		FixedStages:    opts.FixedStages,
		SynthWidth:     opts.SynthWidth,
		VerifyWidth:    opts.VerifyWidth,
		IndicatorAlloc: opts.IndicatorAlloc,
	}
	if p.Target == "bpf" {
		p.BPF = bpfBackend(opts).Spec
	}
	return p.Fingerprint()
}

// gridSpec builds the grid template shared by every attempt of a compile.
func gridSpec(opts Options) pisa.GridSpec {
	return pisa.GridSpec{
		Width:        opts.Width,
		WordWidth:    10, // placeholder; CEGIS manages widths
		StatelessALU: opts.StatelessALU,
		StatefulALU:  opts.StatefulALU,
	}
}

// attempt runs one synthesis probe at a fixed program size (stage count
// for pisa, slot count for bpf): build the backend, run CEGIS, and
// validate + interpreter-cross-check a feasible configuration. Both the
// sequential deepening loop and the portfolio scheduler go through this
// body, so the two paths cannot drift. The returned cegis.Result carries
// the configuration when feasible.
func attempt(ctx context.Context, prog *ast.Program, opts Options, stages int, copts cegis.Options) (DepthResult, *cegis.Result, error) {
	// Hole-elimination members always get symmetry breaking (on backends
	// that support it): enumeration pays one full iteration per symmetric
	// duplicate of a refuted candidate, so it always wants the quotient
	// space. Counterexample members keep it behind the explicit option.
	sym := opts.SymmetryBreak || copts.Mode == cegis.ModeHoleElimination
	be, err := backendFor(opts, copts.IndicatorAlloc, sym)
	if err != nil {
		return DepthResult{}, nil, err
	}
	obs.MetricsFrom(ctx).Counter("core.attempts").Add(1)
	attrs := []obs.Attr{obs.Int("stages", stages)}
	if copts.Member != "" {
		attrs = append(attrs, obs.String("member", copts.Member))
	}
	actx, aspan := obs.StartSpan(ctx, "attempt", attrs...)
	res, err := cegis.SynthesizeOn(actx, prog, be, stages, copts)
	if err != nil {
		aspan.End(obs.String("outcome", "error"))
		return DepthResult{}, nil, fmt.Errorf("core: %s at %d stages: %w", prog.Name, stages, err)
	}
	outcome := "infeasible"
	switch {
	case res.TimedOut:
		outcome = "timeout"
	case res.Feasible:
		outcome = "feasible"
	}
	aspan.End(obs.String("outcome", outcome), obs.Int("iters", res.Iters))
	dr := DepthResult{
		Stages:          stages,
		Feasible:        res.Feasible,
		TimedOut:        res.TimedOut,
		Iters:           res.Iters,
		HoleBits:        res.HoleBits,
		Elapsed:         res.Elapsed,
		Seed:            copts.Seed,
		Member:          copts.Member,
		Mode:            string(res.Mode),
		SynthConflicts:  res.SynthConflicts,
		VerifyConflicts: res.VerifyConflicts,
		Decisions:       res.Decisions,
		Propagations:    res.Propagations,
		PeakCNFVars:     res.PeakCNFVars,
	}
	if res.TimedOut && ctx.Err() == nil && res.Mode == cegis.ModeHoleElimination {
		// The enumeration ran out of candidates before the deadline did:
		// inconclusive, but not a timeout in the wall-clock sense.
		dr.Exhausted = true
	}
	if res.Feasible {
		if err := res.TargetConfig.Validate(); err != nil {
			return dr, nil, fmt.Errorf("core: synthesized configuration invalid: %w", err)
		}
		if err := crossCheck(prog, res.TargetConfig, copts.Seed); err != nil {
			return dr, nil, fmt.Errorf("core: %s: %w", prog.Name, err)
		}
	}
	return dr, res, nil
}

// search runs the iterative-deepening synthesis loop, filling rep in place.
func search(ctx context.Context, prog *ast.Program, opts Options, rep *Report) error {
	mode, err := cegis.ParseMode(opts.CEGISMode)
	if err != nil {
		return err
	}
	rep.Mode = string(mode)
	copts := cegis.Options{
		SynthWidth:     opts.SynthWidth,
		VerifyWidth:    opts.VerifyWidth,
		IndicatorAlloc: opts.IndicatorAlloc,
		Mode:           mode,
		Seed:           opts.Seed,
		Trace:          opts.Trace,
		Progress:       opts.Progress,
	}

	lo := 1
	if opts.FixedStages {
		lo = opts.maxStages()
	}
	for stages := lo; stages <= opts.maxStages(); stages++ {
		dr, res, err := attempt(ctx, prog, opts, stages, copts)
		if err != nil {
			return err
		}
		rep.Depths = append(rep.Depths, dr)
		if res.TimedOut {
			rep.TimedOut = true
			break
		}
		if !res.Feasible {
			continue
		}
		rep.Feasible = true
		rep.Artifact = res.TargetConfig
		rep.Config = res.Config
		if res.Config != nil {
			rep.Usage = res.Config.Usage()
		}
		break
	}
	return nil
}

// memberAttempt is what one portfolio member's run yields.
type memberAttempt struct {
	dr  DepthResult
	res *cegis.Result
}

// searchPortfolio races the candidate stage depths (and diversified
// seeds/allocation modes) via internal/portfolio, filling rep in place
// with first-SAT-wins, minimum-depth semantics. Depths below the
// witness-proven floor (portfolio.DepthFloor) are pruned without SAT
// effort and recorded as Pruned DepthResults.
func searchPortfolio(ctx context.Context, prog *ast.Program, opts Options, rep *Report) error {
	baseMode, err := cegis.ParseMode(opts.CEGISMode)
	if err != nil {
		return err
	}
	rep.Mode = string(baseMode) // a winner overrides with its own mode
	maxS := opts.maxStages()
	lo := 1
	if opts.FixedStages {
		lo = maxS
	}

	pctx, pspan := obs.StartSpan(ctx, "portfolio",
		obs.Int("parallelism", opts.Parallelism), obs.Int("fanout", opts.SeedFanout))
	defer func() {
		pspan.End(obs.String("winner", rep.Winner),
			obs.Bool("feasible", rep.Feasible),
			obs.Int64("wasted_conflicts", rep.WastedConflicts))
	}()

	floor := lo
	if !opts.FixedStages && opts.targetName() == "pisa" {
		// The depth floor's witnesses reason about stateful-ALU placement
		// on the PISA grid; the BPF slot axis has no analogue, so bpf
		// races from the minimum size.
		// The floor's witnesses must run at the width feasibility is
		// defined at: the CEGIS verification width (raised to the
		// synthesis width when that is wider, mirroring cegis's clamp).
		vw := opts.VerifyWidth
		if vw == 0 {
			vw = cegis.DefaultVerifyWidth
		}
		if sw := opts.SynthWidth; sw > vw {
			vw = sw
		}
		if f := portfolio.DepthFloor(prog, opts.StatefulALU, vw, opts.Seed); f > floor {
			floor = f
		}
		for d := lo; d < floor && d <= maxS; d++ {
			obs.MetricsFrom(pctx).Counter("portfolio.pruned").Add(1)
			rep.Depths = append(rep.Depths, DepthResult{Stages: d, Pruned: true})
		}
		if floor > maxS {
			// Every depth in range is witness-proven infeasible; no SAT
			// effort needed.
			return nil
		}
	}

	spec := portfolio.Spec{
		MinStages:      floor,
		MaxStages:      maxS,
		SeedFanout:     opts.SeedFanout,
		BaseSeed:       opts.Seed,
		IndicatorAlloc: opts.IndicatorAlloc,
		RaceAllocs:     opts.RaceAllocs,
		Mode:           string(baseMode),
	}
	if opts.RaceModes {
		for _, m := range cegis.Modes() {
			if m != baseMode {
				spec.RaceModes = append(spec.RaceModes, string(m))
			}
		}
	}
	res, err := portfolio.Run(pctx, spec.Members(), opts.Parallelism,
		func(mctx context.Context, m portfolio.Member) (memberAttempt, portfolio.Verdict, error) {
			copts := cegis.Options{
				SynthWidth:     opts.SynthWidth,
				VerifyWidth:    opts.VerifyWidth,
				IndicatorAlloc: m.IndicatorAlloc,
				Mode:           cegis.Mode(m.Mode),
				Seed:           m.Seed,
				Trace:          opts.Trace,
				Progress:       opts.Progress,
				Member:         m.Label,
			}
			dr, cres, err := attempt(mctx, prog, opts, m.Stages, copts)
			if err != nil {
				return memberAttempt{}, portfolio.Unknown, err
			}
			v := portfolio.Infeasible
			switch {
			case dr.Exhausted:
				// Hole elimination ran out of candidates with the deadline
				// intact: the member lost, the portfolio lives on.
				v = portfolio.Exhausted
			case cres.TimedOut:
				v = portfolio.TimedOut
			case cres.Feasible:
				v = portfolio.Feasible
			}
			return memberAttempt{dr: dr, res: cres}, v, nil
		})
	if err != nil {
		return err
	}

	for _, o := range res.Outcomes {
		if !o.Ran {
			continue
		}
		dr := o.Value.dr
		if o.Verdict == portfolio.Canceled {
			// The member was aborted mid-solve by a sibling's result; its
			// context expiry is not a compile timeout.
			dr.Canceled = true
			dr.TimedOut = false
		}
		rep.Depths = append(rep.Depths, dr)
		if res.Winner == nil || o.Member.Index != res.Winner.Member.Index {
			rep.WastedConflicts += dr.SynthConflicts + dr.VerifyConflicts
		}
	}
	obs.MetricsFrom(pctx).Counter("portfolio.wasted_conflicts").Add(rep.WastedConflicts)

	switch {
	case res.Winner != nil:
		win := res.Winner.Value
		rep.Feasible = true
		rep.Artifact = win.res.TargetConfig
		rep.Config = win.res.Config
		if win.res.Config != nil {
			rep.Usage = win.res.Config.Usage()
		}
		rep.Winner = res.Winner.Member.Label
		rep.Mode = win.dr.Mode
		// Record the race outcome in the registry by allocation mode and
		// by CEGIS mode, so a daemon's /metrics shows which member family
		// wins over time — until now winner attribution lived only on
		// individual reports.
		mode := "canon"
		if res.Winner.Member.IndicatorAlloc {
			mode = "ind"
		}
		obs.MetricsFrom(pctx).Counter("portfolio.winner." + mode).Add(1)
		obs.MetricsFrom(pctx).Counter("portfolio.winner.mode." + win.dr.Mode).Add(1)
	case res.TimedOut:
		rep.TimedOut = true
	}
	return nil
}

// crossCheck differentially tests the synthesized configuration against the
// reference interpreter on random inputs at the configuration's run width.
// CEGIS already proved equivalence at that width through the SAT backend;
// this guards the toolchain itself (sketch extraction, simulator) against
// bugs, in the spirit of translation validation.
func crossCheck(prog *ast.Program, cfg backend.Config, seed int64) error {
	w := cfg.RunWidth()
	fields, states := cfg.Vars()
	in := interp.MustNew(w)
	rng := rand.New(rand.NewSource(seed + 1))
	for trial := 0; trial < 64; trial++ {
		snap := interp.NewSnapshot()
		for _, f := range fields {
			snap.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range states {
			snap.State[s] = w.Trunc(rng.Uint64())
		}
		want, err := in.Run(prog, snap)
		if err != nil {
			return err
		}
		gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
		for _, f := range fields {
			if gotPkt[f] != want.Pkt[f] {
				return fmt.Errorf("cross-check failed on %s: pkt.%s = %d, spec says %d",
					snap, f, gotPkt[f], want.Pkt[f])
			}
		}
		for _, s := range states {
			if gotState[s] != want.State[s] {
				return fmt.Errorf("cross-check failed on %s: state %s = %d, spec says %d",
					snap, s, gotState[s], want.State[s])
			}
		}
	}
	return nil
}
