// Package core is the Chipmunk code generator — the paper's primary
// contribution (§3). It compiles a Domino packet transaction onto a
// simulated PISA pipeline by:
//
//  1. canonicalizing packet fields and state variables (§3.1, Figure 4) so
//     field k occupies container k and state group j occupies stateful ALU
//     slot j, exploiting the symmetry of homogeneous grids;
//  2. generating a sketch of the datapath whose Table 1 hardware
//     configurations are synthesis holes (internal/sketch);
//  3. solving the sketch with CEGIS over the SAT backend (internal/cegis),
//     with narrow-width synthesis and wide-width verification (§3.1,
//     "Scaling Chipmunk to a large number of input bits"); and
//  4. minimizing pipeline depth by iterative deepening over the stage
//     count — Chipmunk tries a 1-stage grid first and widens only on proof
//     of infeasibility, which is why its resource usage in Figure 5 is
//     minimal and has no variance across program mutations.
//
// The compiler rejects nothing for syntactic reasons: any program whose
// semantics fit the grid's computational capabilities compiles, which is
// the property Table 2 measures against the classical Domino baseline.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/cegis"
	"repro/internal/interp"
	"repro/internal/pisa"
	"repro/internal/word"
)

// Options configures a compilation.
type Options struct {
	// Width is the PHV width: containers and ALUs per stage. Must cover
	// the program's packet fields (one container per field, §3.1).
	Width int
	// MaxStages bounds the iterative-deepening search. 0 means 4.
	MaxStages int
	// StatelessALU is installed at every stateless grid point.
	StatelessALU alu.Stateless
	// StatefulALU is installed at every stateful grid point; per the
	// paper's evaluation it should be the template the program's original
	// Domino compilation used.
	StatefulALU alu.Stateful
	// SynthWidth and VerifyWidth set the CEGIS tier widths (0 = defaults:
	// 4 and 10 bits).
	SynthWidth  word.Width
	VerifyWidth word.Width
	// IndicatorAlloc uses indicator-variable packet-field allocation
	// instead of canonical allocation (Figure 4 ablation).
	IndicatorAlloc bool
	// FixedStages disables depth minimization and synthesizes directly at
	// MaxStages (iterative-deepening ablation).
	FixedStages bool
	// Seed drives CEGIS's initial random test inputs.
	Seed int64
	// Trace receives CEGIS events, if non-nil.
	Trace func(cegis.Event)
}

func (o *Options) maxStages() int {
	if o.MaxStages == 0 {
		return 4
	}
	return o.MaxStages
}

// DepthResult records one iterative-deepening probe.
type DepthResult struct {
	Stages   int
	Feasible bool
	TimedOut bool
	Iters    int
	HoleBits int
	Elapsed  time.Duration
}

// Report is the outcome of a compilation.
type Report struct {
	// Program is the compiled program's name.
	Program string
	// Feasible reports whether code generation succeeded.
	Feasible bool
	// TimedOut reports whether the context expired first (Table 2's
	// failure mode for flowlet mutations).
	TimedOut bool
	// Config is the synthesized hardware configuration when feasible.
	Config *pisa.Config
	// Usage is the Figure 5 resource report for Config.
	Usage pisa.Usage
	// Depths records every stage count probed, in order.
	Depths []DepthResult
	// Elapsed is total compile time (Table 2's time column).
	Elapsed time.Duration
}

// Compile runs Chipmunk on a program. Cancel or time out the context to
// bound code-generation time; an expired context yields a Report with
// TimedOut set rather than an error.
func Compile(ctx context.Context, prog *ast.Program, opts Options) (*Report, error) {
	start := time.Now()
	rep := &Report{Program: prog.Name}

	grid := pisa.GridSpec{
		Width:        opts.Width,
		WordWidth:    10, // placeholder; CEGIS manages widths
		StatelessALU: opts.StatelessALU,
		StatefulALU:  opts.StatefulALU,
	}

	copts := cegis.Options{
		SynthWidth:     opts.SynthWidth,
		VerifyWidth:    opts.VerifyWidth,
		IndicatorAlloc: opts.IndicatorAlloc,
		Seed:           opts.Seed,
		Trace:          opts.Trace,
	}

	lo := 1
	if opts.FixedStages {
		lo = opts.maxStages()
	}
	for stages := lo; stages <= opts.maxStages(); stages++ {
		grid.Stages = stages
		res, err := cegis.Synthesize(ctx, prog, grid, copts)
		if err != nil {
			return nil, fmt.Errorf("core: %s at %d stages: %w", prog.Name, stages, err)
		}
		rep.Depths = append(rep.Depths, DepthResult{
			Stages:   stages,
			Feasible: res.Feasible,
			TimedOut: res.TimedOut,
			Iters:    res.Iters,
			HoleBits: res.HoleBits,
			Elapsed:  res.Elapsed,
		})
		if res.TimedOut {
			rep.TimedOut = true
			break
		}
		if !res.Feasible {
			continue
		}
		if err := res.Config.Validate(); err != nil {
			return nil, fmt.Errorf("core: synthesized configuration invalid: %w", err)
		}
		if err := crossCheck(prog, res.Config, opts.Seed); err != nil {
			return nil, fmt.Errorf("core: %s: %w", prog.Name, err)
		}
		rep.Feasible = true
		rep.Config = res.Config
		rep.Usage = res.Config.Usage()
		break
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// crossCheck differentially tests the synthesized configuration against the
// reference interpreter on random inputs at the configuration's run width.
// CEGIS already proved equivalence at that width through the SAT backend;
// this guards the toolchain itself (sketch extraction, simulator) against
// bugs, in the spirit of translation validation.
func crossCheck(prog *ast.Program, cfg *pisa.Config, seed int64) error {
	w := cfg.Grid.WordWidth
	in := interp.MustNew(w)
	rng := rand.New(rand.NewSource(seed + 1))
	for trial := 0; trial < 64; trial++ {
		snap := interp.NewSnapshot()
		for _, f := range cfg.Fields {
			snap.Pkt[f] = w.Trunc(rng.Uint64())
		}
		for _, s := range cfg.States {
			snap.State[s] = w.Trunc(rng.Uint64())
		}
		want, err := in.Run(prog, snap)
		if err != nil {
			return err
		}
		gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
		for _, f := range cfg.Fields {
			if gotPkt[f] != want.Pkt[f] {
				return fmt.Errorf("cross-check failed on %s: pkt.%s = %d, spec says %d",
					snap, f, gotPkt[f], want.Pkt[f])
			}
		}
		for _, s := range cfg.States {
			if gotState[s] != want.State[s] {
				return fmt.Errorf("cross-check failed on %s: state %s = %d, spec says %d",
					snap, s, gotState[s], want.State[s])
			}
		}
	}
	return nil
}
