package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/interp"
	"repro/internal/programs"
	"repro/internal/word"
)

// TestExtendedCorpusCompiles synthesizes the extension programs, covering
// the two stateful ALU templates the Table 2 corpus does not use (sub and
// nested_ifs).
func TestExtendedCorpusCompiles(t *testing.T) {
	for _, b := range programs.ExtendedCorpus() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			rep, err := Compile(ctx, b.Parse(), benchOptions(b))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Feasible {
				t.Fatalf("%s did not compile on %s (depths=%+v)", b.Name, b.StatefulALU, rep.Depths)
			}

			// Differential check against the interpreter at width 6.
			prog := b.Parse()
			const w = word.Width(6)
			cfg := *rep.Config
			cfg.Grid.WordWidth = w
			in := interp.MustNew(w)
			vars := prog.Variables()
			// Exhaust the 2-variable slices of the input space.
			for x := uint64(0); x < w.Size(); x++ {
				for y := uint64(0); y < w.Size(); y++ {
					snap := interp.NewSnapshot()
					for i, f := range vars.Fields {
						snap.Pkt[f] = []uint64{x, y}[i%2]
					}
					for i, s := range vars.States {
						snap.State[s] = []uint64{y, x}[i%2]
					}
					want, err := in.Run(prog, snap)
					if err != nil {
						t.Fatal(err)
					}
					gotPkt, gotState := cfg.Exec(snap.Pkt, snap.State)
					for _, f := range vars.Fields {
						if gotPkt[f] != want.Pkt[f] {
							t.Fatalf("input (%d,%d): pkt.%s = %d, want %d", x, y, f, gotPkt[f], want.Pkt[f])
						}
					}
					for _, s := range vars.States {
						if gotState[s] != want.State[s] {
							t.Fatalf("input (%d,%d): %s = %d, want %d", x, y, s, gotState[s], want.State[s])
						}
					}
				}
			}
		})
	}
}

// TestSubBeatsIfElseRaw shows the atom expressiveness ladder: the
// heavy-marker program needs the sub template's difference comparator; on
// if_else_raw the same grid is infeasible at every depth.
func TestSubBeatsIfElseRaw(t *testing.T) {
	b := programs.ExtendedCorpus()[0] // heavy_marker
	prog := b.Parse()

	withSub, err := Compile(context.Background(), prog, benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	if !withSub.Feasible || withSub.Usage.Stages != 1 {
		t.Fatalf("sub ALU should fit heavy_marker in 1 stage: %+v", withSub.Depths)
	}

	opts := benchOptions(b)
	opts.StatefulALU = alu.Stateful{Kind: alu.IfElseRaw, ConstBits: b.ConstBits}
	opts.MaxStages = 1
	withIfElse, err := Compile(context.Background(), prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withIfElse.Feasible {
		t.Fatal("if_else_raw lacks the difference comparator; 1 stage should be infeasible")
	}
}

// TestSynFloodBehaviour drives the synthesized nested_ifs config through a
// SYN-flood scenario.
func TestSynFloodBehaviour(t *testing.T) {
	b := programs.ExtendedCorpus()[1] // syn_flood
	rep, err := Compile(context.Background(), b.Parse(), benchOptions(b))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("syn_flood must compile: %+v", rep.Depths)
	}
	state := map[string]uint64{"half_open": 0}
	send := func(syn uint64) {
		_, state = rep.Config.Exec(map[string]uint64{"syn": syn}, state)
	}
	for i := 0; i < 5; i++ {
		send(1) // five SYNs
	}
	if state["half_open"] != 5 {
		t.Fatalf("after 5 SYNs: half_open = %d", state["half_open"])
	}
	for i := 0; i < 7; i++ {
		send(0) // seven completions; must floor at zero
	}
	if state["half_open"] != 0 {
		t.Fatalf("counter must floor at 0, got %d", state["half_open"])
	}
}
