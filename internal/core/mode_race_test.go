package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/programs"
)

// TestRaceModesPortfolio races counterexample against hole-elimination
// CEGIS on marple_reorder (infeasible at one stage, feasible at two): both
// mode families must appear in the depth log, the winner must carry a mode
// and land at the proven minimum depth, and the per-mode winner counter
// must record the race outcome.
func TestRaceModesPortfolio(t *testing.T) {
	b, err := programs.ByName("marple_reorder")
	if err != nil {
		t.Fatal(err)
	}
	opts := benchOptions(b)
	opts.Parallelism = 4
	opts.RaceModes = true

	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Compile(obs.ContextWithMetrics(ctx, reg), b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.TimedOut {
		t.Fatalf("marple_reorder should compile under a mode race: %+v", rep)
	}
	if rep.Usage.Stages != 2 {
		t.Fatalf("winner at %d stages, want the proven minimum 2", rep.Usage.Stages)
	}

	if rep.Winner == "" || !strings.Contains(rep.Winner, ".") {
		t.Fatalf("winner label %q missing", rep.Winner)
	}
	if rep.Mode != "cex" && rep.Mode != "holes" {
		t.Fatalf("report mode %q, want cex or holes", rep.Mode)
	}
	if !strings.HasSuffix(rep.Winner, "."+rep.Mode) {
		t.Fatalf("winner label %q does not carry report mode %q", rep.Winner, rep.Mode)
	}

	modes := map[string]bool{}
	for _, d := range rep.Depths {
		if d.Pruned {
			continue
		}
		if d.Mode != "cex" && d.Mode != "holes" {
			t.Fatalf("depth result with mode %q: %+v", d.Mode, d)
		}
		modes[d.Mode] = true
		if !strings.HasSuffix(d.Member, "."+d.Mode) {
			t.Errorf("member %q label does not end with its mode %q", d.Member, d.Mode)
		}
	}
	if !modes["cex"] || !modes["holes"] {
		t.Fatalf("depth log missing a mode family: %v", modes)
	}

	if got := reg.Counter("portfolio.winner.mode." + rep.Mode).Value(); got != 1 {
		t.Errorf("portfolio.winner.mode.%s = %d, want 1", rep.Mode, got)
	}

	// The winning configuration must implement the program regardless of
	// which strategy found it.
	if err := crossCheck(b.Parse(), rep.Artifact, 99); err != nil {
		t.Fatal(err)
	}
}

// TestHoleElimSequentialExhaustion pins the sequential (non-portfolio)
// contract for hole elimination on a corpus program whose hole space
// outlives the candidate budget: the compile must come back inconclusive
// (TimedOut with an Exhausted depth), never an error or a bogus verdict.
func TestHoleElimSequentialExhaustion(t *testing.T) {
	b, err := programs.ByName("rcp")
	if err != nil {
		t.Fatal(err)
	}
	opts := benchOptions(b)
	opts.CEGISMode = "holes"
	opts.Seed = 1 // exhausts at this seed; see the mode sweep in cegis tests

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := Compile(ctx, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible {
		t.Skip("hole elimination converged at this seed; exhaustion contract not exercised")
	}
	if !rep.TimedOut {
		t.Fatalf("exhausted enumeration must report TimedOut, got %+v", rep)
	}
	found := false
	for _, d := range rep.Depths {
		if d.Exhausted {
			found = true
			if d.Mode != "holes" {
				t.Errorf("exhausted depth carries mode %q", d.Mode)
			}
		}
	}
	if !found {
		t.Fatal("no depth recorded the candidate-budget exhaustion")
	}
}
