package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/alu"
	"repro/internal/ast"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/solcache"
)

// TestWarmCacheSkipsSynthesis is the acceptance-criteria test: a
// recompilation of a canonically identical program must return the cached
// pisa.Config without invoking cegis.Synthesize, asserted through the obs
// core.attempts counter (incremented once per Synthesize call).
func TestWarmCacheSkipsSynthesis(t *testing.T) {
	b, err := programs.ByName("sampling")
	if err != nil {
		t.Fatal(err)
	}
	cache := solcache.New(8)
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ctx = obs.ContextWithMetrics(ctx, reg)

	opts := benchOptions(b)
	opts.Cache = cache

	cold, err := Compile(ctx, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Feasible || cold.Cached {
		t.Fatalf("cold compile: feasible=%v cached=%v", cold.Feasible, cold.Cached)
	}
	attempts := reg.Counter("core.attempts").Value()
	if attempts == 0 {
		t.Fatal("cold compile recorded no synthesis attempts")
	}
	if hits := reg.Counter("solcache.hits").Value(); hits != 0 {
		t.Fatalf("cold compile recorded %d cache hits", hits)
	}

	// A different seed must still hit: the fingerprint excludes it.
	opts.Seed = opts.Seed + 1000
	warm, err := Compile(ctx, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || !warm.Feasible {
		t.Fatalf("warm compile: cached=%v feasible=%v", warm.Cached, warm.Feasible)
	}
	if got := reg.Counter("core.attempts").Value(); got != attempts {
		t.Errorf("warm compile invoked cegis.Synthesize: core.attempts %d -> %d", attempts, got)
	}
	if got := reg.Counter("solcache.hits").Value(); got != 1 {
		t.Errorf("solcache.hits = %d, want 1", got)
	}
	if !reflect.DeepEqual(warm.Config, cold.Config) {
		t.Error("warm compile returned a different configuration")
	}
	if warm.Usage != cold.Usage {
		t.Errorf("warm usage %+v != cold usage %+v", warm.Usage, cold.Usage)
	}
	if len(warm.Depths) != 0 {
		t.Errorf("cached report carries %d depth probes, want none", len(warm.Depths))
	}
}

// TestCacheHitTranslatesVariableNames: the cache deliberately collides
// alpha-renamed programs, so a hit from a renamed-but-canonically-equal
// program must return a config naming *that* program's variables — not the
// variables of whichever program populated the cache — and must not clobber
// the cached entry for later requesters.
func TestCacheHitTranslatesVariableNames(t *testing.T) {
	const srcA = `
int count = 0;
if (count == 10) {
  count = 0;
  pkt.sample = 1;
} else {
  count = count + 1;
  pkt.sample = 0;
}
`
	// srcB is srcA under a sort-order-preserving alpha-renaming
	// (count->tally, sample->tag): same canonical problem, different names.
	const srcB = `
int tally = 0;
if (tally == 10) {
  tally = 0;
  pkt.tag = 1;
} else {
  tally = tally + 1;
  pkt.tag = 0;
}
`
	parse := func(name, src string) *ast.Program {
		p, err := parser.Parse(name, src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cache := solcache.New(8)
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ctx = obs.ContextWithMetrics(ctx, reg)
	opts := Options{
		Width:       2,
		MaxStages:   3,
		StatefulALU: alu.Stateful{Kind: alu.IfElseRaw},
		Seed:        7,
		Cache:       cache,
	}

	cold, err := Compile(ctx, parse("a", srcA), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Feasible || cold.Cached {
		t.Fatalf("cold compile: feasible=%v cached=%v", cold.Feasible, cold.Cached)
	}
	attempts := reg.Counter("core.attempts").Value()

	warm, err := Compile(ctx, parse("b", srcB), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached || !warm.Feasible {
		t.Fatalf("renamed compile: cached=%v feasible=%v, want a cache hit", warm.Cached, warm.Feasible)
	}
	if got := reg.Counter("core.attempts").Value(); got != attempts {
		t.Errorf("renamed compile re-ran synthesis: core.attempts %d -> %d", attempts, got)
	}
	if f := warm.Config.Fields; len(f) != 1 || f[0] != "tag" {
		t.Errorf("hit config fields = %v, want b's own [tag]", f)
	}
	if s := warm.Config.States; len(s) != 1 || s[0] != "tally" {
		t.Errorf("hit config states = %v, want b's own [tally]", s)
	}

	// The cached entry must be untouched: a's names come back for a.
	again, err := Compile(ctx, parse("a", srcA), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("recompile of the original program missed the cache")
	}
	if f, s := again.Config.Fields, again.Config.States; f[0] != "sample" || s[0] != "count" {
		t.Errorf("original program's hit names %v/%v, want [sample]/[count]", f, s)
	}
}

// TestConcurrentCompilesShareOneRun drives the singleflight path through
// core.Compile itself: concurrent compilations of the same program must
// share a single CEGIS run.
func TestConcurrentCompilesShareOneRun(t *testing.T) {
	b, err := programs.ByName("sampling")
	if err != nil {
		t.Fatal(err)
	}
	cache := solcache.New(8)
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ctx = obs.ContextWithMetrics(ctx, reg)

	const n = 4
	var wg sync.WaitGroup
	reps := make([]*Report, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := benchOptions(b)
			opts.Cache = cache
			opts.Seed = int64(i) // seeds differ; canonical problem does not
			reps[i], errs[i] = Compile(ctx, b.Parse(), opts)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("compile %d: %v", i, errs[i])
		}
		if !reps[i].Feasible {
			t.Fatalf("compile %d infeasible", i)
		}
	}
	if misses := reg.Counter("solcache.misses").Value(); misses != 1 {
		t.Errorf("solcache.misses = %d, want 1 (one shared CEGIS run)", misses)
	}
	if got := reg.Counter("solcache.hits").Value() + reg.Counter("solcache.shared").Value(); got != n-1 {
		t.Errorf("hits+shared = %d, want %d", got, n-1)
	}
}
