package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/perfhist"
	"repro/internal/programs"
	"repro/internal/solcache"
)

// compileProfiled runs one compile under a fresh tracer and returns the
// report plus the rolled-up profile.
func compileProfiled(t *testing.T, opts Options) (*Report, obs.CompileProfile) {
	t.Helper()
	b, err := programs.ByName("sampling")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ctx = obs.ContextWithTracer(ctx, tr)
	rep, err := Compile(ctx, b.Parse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Profile()
	if err != nil {
		t.Fatal(err)
	}
	return rep, p
}

// The profile's solver-effort counters must agree with the report's own
// bookkeeping in both execution modes — they are rolled up from the span
// tree by an independent path, so agreement pins the attribution. In
// portfolio mode both sides count every raced member's work.
func TestProfileRollupMatchesReportEffort(t *testing.T) {
	b, _ := programs.ByName("sampling")
	seq := benchOptions(b)

	par := benchOptions(b)
	par.Parallelism = 4
	par.SeedFanout = 2

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", seq},
		{"portfolio", par},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, p := compileProfiled(t, tc.opts)
			if !rep.Feasible || !p.Feasible {
				t.Fatalf("sampling must be feasible (report=%v profile=%v)", rep.Feasible, p.Feasible)
			}
			eff := rep.Effort()
			if p.Iters != eff.Iters {
				t.Errorf("iters: profile %d, report %d", p.Iters, eff.Iters)
			}
			if p.Conflicts != eff.Conflicts {
				t.Errorf("conflicts: profile %d, report %d", p.Conflicts, eff.Conflicts)
			}
			if p.Decisions != eff.Decisions {
				t.Errorf("decisions: profile %d, report %d", p.Decisions, eff.Decisions)
			}
			if p.Propagations != eff.Propagations {
				t.Errorf("propagations: profile %d, report %d", p.Propagations, eff.Propagations)
			}
			if p.PeakCNFVars != eff.PeakCNFVars {
				t.Errorf("peak CNF vars: profile %d, report %d", p.PeakCNFVars, eff.PeakCNFVars)
			}
			if p.TotalMS <= 0 || p.SolveMS <= 0 || p.Solves == 0 {
				t.Errorf("degenerate wall-clock attribution: %+v", p)
			}
			if p.SolveSynthMS+p.SolveVerifyMS > p.SolveMS+1e-9 {
				t.Errorf("phase split exceeds total solve time: synth=%v verify=%v total=%v",
					p.SolveSynthMS, p.SolveVerifyMS, p.SolveMS)
			}
			if tc.name == "portfolio" {
				if p.PortfolioMembers == 0 || p.Winner == "" {
					t.Errorf("portfolio compile missing race fields: %+v", p)
				}
				if p.WastedConflicts != rep.WastedConflicts {
					t.Errorf("wasted conflicts: profile %d, report %d", p.WastedConflicts, rep.WastedConflicts)
				}
			} else if p.PortfolioMembers != 0 || p.Winner != "" {
				t.Errorf("sequential compile reports portfolio fields: %+v", p)
			}
		})
	}
}

// Options.History must capture one profile record per compile — installing
// a private tracer when the caller brought none — and a cached recompile
// must record as such.
func TestCompileWritesHistory(t *testing.T) {
	b, err := programs.ByName("sampling")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/hist.jsonl"
	hist, err := perfhist.Open(path, "core-test")
	if err != nil {
		t.Fatal(err)
	}
	opts := benchOptions(b)
	opts.Cache = solcache.New(4)
	opts.History = hist

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < 2; i++ {
		if _, err := Compile(ctx, b.Parse(), opts); err != nil {
			t.Fatal(err)
		}
	}
	if err := hist.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := perfhist.ReadPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("history has %d records, want 2 (one per compile)", len(recs))
	}
	cold, warm := recs[0], recs[1]
	if cold.Program != "sampling" || cold.Profile == nil {
		t.Fatalf("cold record: %+v", cold)
	}
	if cold.Samples["cached"] != 0 || cold.Samples["conflicts"] == 0 {
		t.Errorf("cold samples: %v", cold.Samples)
	}
	if warm.Samples["cached"] != 1 {
		t.Errorf("warm samples: %v", warm.Samples)
	}
	if cold.Meta.Bench != "core-test" || cold.Meta.RunID == "" {
		t.Errorf("cold meta: %+v", cold.Meta)
	}
}
