package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of counters, gauges and histograms.
// Metrics are created on first use and live for the registry's lifetime;
// all operations are safe for concurrent use (evalgen publishes into one
// registry from every parallel compile worker). A nil *Registry is a
// valid no-op sink, as are the nil metrics it hands out.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing 64-bit metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable 64-bit level metric.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta — the idiom for level gauges tracking
// concurrent activity (in-flight compile jobs).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger — the idiom for peaks (peak
// CNF variables, peak circuit gates).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates a distribution of non-negative integer
// observations in power-of-two buckets: bucket 0 holds zeros, bucket i
// holds values in [2^(i-1), 2^i). Negative observations clamp to zero.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [65]int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
}

// Quantiles estimates the given quantiles (each in [0, 1]) from the
// power-of-two buckets, one estimate per requested q, in order. Within a
// bucket the distribution is assumed uniform, so estimates are exact only
// at bucket boundaries and otherwise carry up-to-2x bucket resolution —
// plenty for the p50/p95/p99 operational summaries they feed (/healthz),
// which care about orders of magnitude, not microseconds. The overall
// min/max clamp the extreme buckets so a single-value histogram reports
// that value at every quantile. An empty (or nil) histogram reports 0s.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		return out
	}
	h.mu.Lock()
	count, min, max := h.count, h.min, h.max
	var buckets [65]int64
	buckets = h.buckets
	h.mu.Unlock()
	if count == 0 {
		return out
	}
	for qi, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		// rank is the 1-based index of the target observation in sorted
		// order (nearest-rank definition).
		rank := int64(q*float64(count) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > count {
			rank = count
		}
		cum := int64(0)
		for i, n := range buckets {
			if n == 0 {
				continue
			}
			if cum+n < rank {
				cum += n
				continue
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := float64(bucketUpper(i))
			// Clamp the extreme buckets to the observed range.
			if float64(min) > lo {
				lo = float64(min)
			}
			if float64(max) < hi {
				hi = float64(max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (float64(rank-cum) - 0.5) / float64(n)
			out[qi] = lo + frac*(hi-lo)
			break
		}
	}
	return out
}

// raw copies the histogram's internal state for exposition formats that
// need the power-of-two buckets directly (see WritePrometheus).
func (h *Histogram) raw() (count, sum int64, buckets [65]int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, h.buckets
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Count, Sum, Min, Max int64
	Mean                 float64
	// Buckets maps a human-readable range label ("0", "1", "2-3",
	// "4-7", …) to its observation count; empty buckets are omitted.
	Buckets map[string]int64
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	s.Buckets = map[string]int64{}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		s.Buckets[bucketLabel(i)] = n
	}
	return s
}

func bucketLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	}
	lo := int64(1) << uint(i-1)
	hi := (int64(1) << uint(i)) - 1
	return fmt.Sprintf("%d-%d", lo, hi)
}

// Snapshot returns an expvar-style flat map of every metric's current
// value: counters and gauges as int64, histograms as HistSnapshot. The map
// is JSON-marshalable, which is how cmd/chipmunk publishes it on
// /debug/vars.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// String renders the registry one metric per line, sorted by name, for
// the CLI -stats reports.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		switch v := snap[name].(type) {
		case HistSnapshot:
			fmt.Fprintf(&sb, "%-28s count=%d mean=%.1f min=%d max=%d\n", name, v.Count, v.Mean, v.Min, v.Max)
		default:
			fmt.Fprintf(&sb, "%-28s %v\n", name, v)
		}
	}
	return sb.String()
}
