package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	promSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="(\+Inf|[0-9]+)"\})? (-?[0-9]+(?:\.[0-9]+)?(?:[eE][-+]?[0-9]+)?)$`)
)

// TestWritePrometheusGrammar scrapes a populated registry and checks the
// output line-by-line against the text-format grammar: HELP/TYPE
// comments with sanitized names, plain samples for counters and gauges,
// and cumulative histogram buckets closed by +Inf with matching
// _sum/_count.
func TestWritePrometheusGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.jobs.accepted").Add(7)
	r.Counter("9starts.with-digit").Add(1)
	r.Gauge("server.queue.depth").Set(3)
	h := r.Histogram("cegis.cex_bits")
	for _, v := range []int64{0, 1, 1, 2, 5, 9, 100} {
		h.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	t.Logf("exposition:\n%s", out)

	typeOf := map[string]string{}   // sanitized name -> counter/gauge/histogram
	samplesOf := map[string]int{}   // base name -> sample lines seen
	bucketCum := map[string]int64{} // histogram name -> last cumulative value
	var infSeen = map[string]int64{}
	sums := map[string]int64{}
	counts := map[string]int64{}

	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if m := promComment.FindStringSubmatch(line); m != nil {
			if m[1] == "TYPE" {
				fields := strings.Fields(line)
				typeOf[fields[2]] = fields[3]
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d violates the text-format grammar: %q", i+1, line)
		}
		name, le := m[1], m[3]
		fval, _ := strconv.ParseFloat(m[4], 64)
		val := int64(fval)
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if _, ok := typeOf[base]; !ok {
			t.Errorf("line %d: sample %q precedes its # TYPE", i+1, name)
		}
		samplesOf[base]++
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "+Inf" {
				infSeen[base] = val
			} else {
				if val < bucketCum[base] {
					t.Errorf("%s: bucket le=%s value %d not cumulative (prev %d)", base, le, val, bucketCum[base])
				}
				bucketCum[base] = val
			}
		case strings.HasSuffix(name, "_sum"):
			sums[base] = val
		case strings.HasSuffix(name, "_count"):
			counts[base] = val
		}
	}

	if typeOf["server_jobs_accepted"] != "counter" {
		t.Errorf("server_jobs_accepted type = %q, want counter", typeOf["server_jobs_accepted"])
	}
	if typeOf["server_queue_depth"] != "gauge" {
		t.Errorf("server_queue_depth type = %q, want gauge", typeOf["server_queue_depth"])
	}
	if typeOf["_9starts_with_digit"] != "counter" {
		t.Errorf("digit-leading name not sanitized: types=%v", typeOf)
	}
	hn := "cegis_cex_bits"
	if typeOf[hn] != "histogram" {
		t.Fatalf("%s type = %q, want histogram", hn, typeOf[hn])
	}
	if infSeen[hn] != 7 || counts[hn] != 7 {
		t.Errorf("%s: +Inf bucket %d and count %d, want 7", hn, infSeen[hn], counts[hn])
	}
	if bucketCum[hn] > infSeen[hn] {
		t.Errorf("%s: finite buckets (%d) exceed +Inf (%d)", hn, bucketCum[hn], infSeen[hn])
	}
	if sums[hn] != 118 {
		t.Errorf("%s_sum = %d, want 118", hn, sums[hn])
	}

	// A second render must be byte-identical (sorted, deterministic).
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("two renders of the same registry differ")
	}

	var nilReg *Registry
	if err := nilReg.WritePrometheus(&sb2); err != nil {
		t.Errorf("nil registry: %v", err)
	}
}

// TestPromName pins the sanitization rules.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.jobs.accepted": "server_jobs_accepted",
		"cnf.vars":             "cnf_vars",
		"9lead":                "_9lead",
		"weird#name":           "weird_name",
		"ok_name:x9":           "ok_name:x9",
		"":                     "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}
