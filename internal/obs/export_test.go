package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestJSONLRoundTrip streams a nested trace to a buffer, decodes it, and
// checks the decoded records are structurally identical and well-formed.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer()
	tr.StreamTo(&buf)
	ctx := ContextWithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "compile", String("program", "sampling"), Int("width", 2))
	for iter := 1; iter <= 3; iter++ {
		c2, it := StartSpan(ctx1, "cegis.iter", Int("iter", iter))
		_, synth := StartSpan(c2, "synth")
		synth.End(String("outcome", "sat"), Int64("conflicts", int64(10*iter)))
		_, verify := StartSpan(c2, "verify")
		verify.End(String("outcome", "unsat"))
		it.End()
	}
	root.End(Bool("feasible", true))
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	decoded, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Records()
	if len(decoded) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(decoded), len(want))
	}
	if err := CheckWellFormed(decoded); err != nil {
		t.Fatal(err)
	}
	for i := range decoded {
		d, w := decoded[i], want[i]
		if d.Type != w.Type || d.ID != w.ID || d.Parent != w.Parent || d.Name != w.Name || d.TimeNS != w.TimeNS {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, d, w)
		}
	}
	// Integer attrs decode as float64; values must survive.
	if got := decoded[3].Attrs["conflicts"]; got != float64(10) {
		t.Fatalf("conflicts attr = %v (%T)", got, got)
	}
	// A decoded trace still renders as a tree.
	sum := SummarizeRecords(decoded)
	if !strings.Contains(sum, "compile") || strings.Count(sum, "cegis.iter") != 3 {
		t.Fatalf("summary of decoded trace:\n%s", sum)
	}
}

func TestStreamToReplaysEarlierRecords(t *testing.T) {
	tr := NewTracer()
	s := tr.StartRoot("early")
	s.End()
	var buf bytes.Buffer
	tr.StreamTo(&buf)
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "early" {
		t.Fatalf("replayed records = %+v", recs)
	}
}

func TestCheckWellFormedRejections(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
		want string
	}{
		{"end without start",
			[]Record{{Type: RecordEnd, ID: 1, TimeNS: 5}},
			"without a start"},
		{"double start",
			[]Record{{Type: RecordStart, ID: 1}, {Type: RecordStart, ID: 1}},
			"started twice"},
		{"double end",
			[]Record{{Type: RecordStart, ID: 1}, {Type: RecordEnd, ID: 1}, {Type: RecordEnd, ID: 1}},
			"ended twice"},
		{"unknown parent",
			[]Record{{Type: RecordStart, ID: 2, Parent: 9}},
			"unknown parent"},
		{"child outlives parent",
			[]Record{
				{Type: RecordStart, ID: 1},
				{Type: RecordStart, ID: 2, Parent: 1},
				{Type: RecordEnd, ID: 1},
			},
			"still open"},
		{"start under ended parent",
			[]Record{
				{Type: RecordStart, ID: 1},
				{Type: RecordEnd, ID: 1},
				{Type: RecordStart, ID: 2, Parent: 1},
			},
			"already-ended parent"},
		{"time reversal",
			[]Record{{Type: RecordStart, ID: 1, TimeNS: 10}, {Type: RecordEnd, ID: 1, TimeNS: 3}},
			"before it starts"},
		{"never ended",
			[]Record{{Type: RecordStart, ID: 1}},
			"never ended"},
		{"unknown type",
			[]Record{{Type: "bogus", ID: 1}},
			"unknown type"},
	}
	for _, tc := range cases {
		err := CheckWellFormed(tc.recs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestReadRecordsSkipsBlanksRejectsGarbage(t *testing.T) {
	recs, err := ReadRecords(strings.NewReader("\n{\"type\":\"start\",\"id\":1,\"t\":0}\n\n{\"type\":\"end\",\"id\":1,\"t\":1}\n"))
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%v err=%v", recs, err)
	}
	if _, err := ReadRecords(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line should error")
	}
}

func TestSummaryMarksUnendedSpans(t *testing.T) {
	sum := SummarizeRecords([]Record{{Type: RecordStart, ID: 1, Name: "hung"}})
	if !strings.Contains(sum, "hung") || !strings.Contains(sum, "[unended]") {
		t.Fatalf("summary = %q", sum)
	}
}
