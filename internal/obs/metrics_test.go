package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sat.conflicts").Add(3)
	r.Counter("sat.conflicts").Add(4)
	if got := r.Counter("sat.conflicts").Value(); got != 7 {
		t.Fatalf("counter = %d", got)
	}
	g := r.Gauge("cnf.vars")
	g.Set(10)
	g.SetMax(5) // lower: no change
	g.SetMax(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("gauge = %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("cegis.cex_bits")
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Min != 0 || s.Max != 8 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Sum != 25 {
		t.Fatalf("sum = %d", s.Sum)
	}
	want := map[string]int64{"0": 2, "1": 1, "2-3": 2, "4-7": 2, "8-15": 1}
	for k, n := range want {
		if s.Buckets[k] != n {
			t.Fatalf("bucket %q = %d, want %d (all: %v)", k, s.Buckets[k], n, s.Buckets)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, each = 32, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("sat.conflicts").Add(1)
				r.Gauge("cnf.vars").SetMax(int64(w*each + i))
				r.Histogram("cex").Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("sat.conflicts").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("cnf.vars").Value(); got != (workers-1)*each+each-1 {
		t.Fatalf("gauge max = %d", got)
	}
	if got := r.Histogram("cex").Snapshot().Count; got != workers*each {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestSnapshotIsJSONMarshalable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(3)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a":1`, `"b":2`, `"Count":1`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("snapshot JSON missing %q: %s", want, data)
		}
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(1)
	r.Counter("a.first").Add(2)
	r.Histogram("m.hist").Observe(4)
	s := r.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "a.first") || !strings.HasPrefix(lines[2], "z.last") {
		t.Fatalf("String() not sorted:\n%s", s)
	}
	if !strings.Contains(s, "count=1") {
		t.Fatalf("histogram line missing: %s", s)
	}
}
