// Package obs is the observability layer of the synthesis stack: a
// zero-dependency (standard library only) tracing and metrics subsystem
// that makes the cost structure of a Chipmunk compilation visible.
//
// The paper's dominant cost is CEGIS solve time — Table 2 spans seven
// seconds to an hour per mutant — and understanding *where* that time goes
// (which deepening attempt, which CEGIS iteration, which SAT solve) is the
// prerequisite for every optimisation toward the "fast as the hardware
// allows" north star. The package provides:
//
//   - hierarchical spans (compile → deepening attempt → CEGIS iteration →
//     synth/verify phase → SAT solve) with start/stop timestamps and
//     key/value attributes, propagated through context.Context;
//   - a metrics Registry of named counters, gauges and histograms (SAT
//     conflicts, decisions, propagations, CNF clause/variable counts,
//     circuit gate counts, CEGIS iterations, counterexample widths, sketch
//     hole inventories);
//   - exporters: a JSON-lines trace stream, a human-readable summary tree,
//     and an expvar-style snapshot map (see export.go).
//
// Everything is nil-safe: a nil *Tracer, *Registry, *Span, *Counter,
// *Gauge or *Histogram is a valid no-op sink, so instrumented code pays
// (almost) nothing when observability is not requested — call sites never
// need nil checks.
package obs

import (
	"context"
	"sync"
	"time"
)

// Attr is one key/value pair attached to a span. Values should be strings,
// bools, integers or floats so they survive a JSON round trip (integers
// decode back as float64 — see ReadRecords).
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{k, v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{k, int64(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{k, v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{k, v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{k, v} }

// Tracer records hierarchical spans. It retains every record in memory
// (compilations emit at most a few thousand spans) for Summary and
// Records, and fans each record out to live subscribers (Subscribe,
// StreamTo) as it is emitted. Safe for concurrent use; a nil *Tracer
// discards everything.
type Tracer struct {
	mu      sync.Mutex
	sink    *jsonlSink
	records []Record
	nextID  int64
	subs    map[int64]func(Record)
	nextSub int64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Subscription is a handle to a live record feed registered with
// Subscribe or StreamTo. Close detaches it; a nil *Subscription no-ops.
type Subscription struct {
	t  *Tracer
	id int64
}

// Subscribe registers fn to receive every record the tracer emits from
// now on, in emission order. With replay, records emitted before the
// subscription are delivered first, so a mid-compile subscriber still
// sees the whole span tree. fn is invoked synchronously under the
// tracer's lock: it must be fast and must not call back into the tracer
// (enqueue into your own buffer and return — see internal/obs/flight and
// the server's SSE fan-out for the intended pattern).
func (t *Tracer) Subscribe(fn func(Record), replay bool) *Subscription {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.subscribeLocked(fn, replay)
}

func (t *Tracer) subscribeLocked(fn func(Record), replay bool) *Subscription {
	if t.subs == nil {
		t.subs = map[int64]func(Record){}
	}
	t.nextSub++
	id := t.nextSub
	t.subs[id] = fn
	if replay {
		for _, rec := range t.records {
			fn(rec)
		}
	}
	return &Subscription{t: t, id: id}
}

// Close detaches the subscription; records emitted afterwards are no
// longer delivered. Closing twice is a no-op. Must not be called from
// inside the subscription's own callback.
func (s *Subscription) Close() {
	if s == nil || s.t == nil {
		return
	}
	s.t.mu.Lock()
	delete(s.t.subs, s.id)
	s.t.mu.Unlock()
}

// Span is one timed region of work. A nil *Span is a valid no-op, which is
// what StartSpan returns when no tracer is installed in the context.
type Span struct {
	t      *Tracer
	id     int64
	parent int64

	mu       sync.Mutex
	ended    bool
	endAttrs []Attr
}

func (t *Tracer) emit(rec Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.records = append(t.records, rec)
	for _, fn := range t.subs {
		fn(rec)
	}
}

// start begins a span under the given parent id (0 = root).
func (t *Tracer) start(parent int64, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{t: t, id: id, parent: parent}
	t.emit(Record{
		Type:   RecordStart,
		ID:     id,
		Parent: parent,
		Name:   name,
		TimeNS: time.Now().UnixNano(),
		Attrs:  attrMap(attrs),
	})
	return s
}

// StartRoot begins a span with no parent, for callers without a context
// chain (tests, tools).
func (t *Tracer) StartRoot(name string, attrs ...Attr) *Span {
	return t.start(0, name, attrs...)
}

// SetAttr attaches attributes to the span; they are emitted with the end
// record. Later values for the same key win.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.endAttrs = append(s.endAttrs, attrs...)
	s.mu.Unlock()
}

// End stops the span, emitting its end record with any attributes set via
// SetAttr plus the ones given here. Ending twice is a no-op.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	all := append(s.endAttrs, attrs...)
	s.mu.Unlock()
	s.t.emit(Record{
		Type:   RecordEnd,
		ID:     s.id,
		TimeNS: time.Now().UnixNano(),
		Attrs:  attrMap(all),
	})
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// --- Context propagation ---------------------------------------------------

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	metricsKey
)

// ContextWithTracer installs a tracer; spans started via StartSpan on the
// returned context (and its descendants) are recorded there.
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the tracer installed in ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithMetrics installs a metrics registry.
func ContextWithMetrics(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, metricsKey, r)
}

// MetricsFrom returns the registry installed in ctx, or nil. The nil
// result is a valid no-op sink.
func MetricsFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey).(*Registry)
	return r
}

// SpanFrom returns the innermost span started on ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan begins a span named name as a child of the context's current
// span, on the context's tracer. When no tracer is installed it returns
// (ctx, nil) — the nil span no-ops, costing nothing.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent := int64(0)
	if p := SpanFrom(ctx); p != nil {
		parent = p.id
	}
	s := t.start(parent, name, attrs...)
	return context.WithValue(ctx, spanKey, s), s
}
