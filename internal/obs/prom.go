package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4) so a long-running daemon can be scraped by
// standard tooling with no third-party dependency:
//
//   - counters and gauges become single samples with # HELP/# TYPE
//     headers;
//   - histograms become cumulative series: one name_bucket sample per
//     occupied power-of-two bucket (upper bound 2^i-1, the top of the
//     [2^(i-1), 2^i) range Histogram tracks), a closing le="+Inf"
//     bucket, plus name_sum and name_count — and three derived gauges
//     name_p50 / name_p95 / name_p99 (estimates from the power-of-two
//     buckets, see Histogram.Quantiles) so dashboards get operational
//     percentiles without PromQL bucket arithmetic.
//
// Metric names use dots as separators internally ("server.jobs.accepted");
// they are sanitized to the [a-zA-Z0-9_:] grammar here. Output is sorted
// by name so scrapes are deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type hist struct {
		count, sum int64
		buckets    [65]int64
		quantiles  []float64 // p50, p95, p99
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]hist, len(r.hists))
	for name, h := range r.hists {
		var s hist
		s.count, s.sum, s.buckets = h.raw()
		s.quantiles = h.Quantiles(0.5, 0.95, 0.99)
		hists[name] = s
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters)+len(gauges)+len(hists))
	for name := range counters {
		names = append(names, name)
	}
	for name := range gauges {
		names = append(names, name)
	}
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)

	// Distinct internal names could collide after sanitization ("a.b" and
	// "a_b"); emit the first and skip the rest rather than produce a
	// scrape the server would reject for duplicate TYPE lines.
	emitted := map[string]bool{}
	var sb strings.Builder
	for _, name := range names {
		pn := PromName(name)
		if emitted[pn] {
			continue
		}
		emitted[pn] = true
		if v, ok := counters[name]; ok {
			fmt.Fprintf(&sb, "# HELP %s Chipmunk metric %s.\n# TYPE %s counter\n%s %d\n", pn, name, pn, pn, v)
			continue
		}
		if v, ok := gauges[name]; ok {
			fmt.Fprintf(&sb, "# HELP %s Chipmunk metric %s.\n# TYPE %s gauge\n%s %d\n", pn, name, pn, pn, v)
			continue
		}
		h := hists[name]
		fmt.Fprintf(&sb, "# HELP %s Chipmunk metric %s.\n# TYPE %s histogram\n", pn, name, pn)
		cum := int64(0)
		top := 0
		for i, n := range h.buckets {
			if n != 0 {
				top = i
			}
		}
		for i := 0; i <= top; i++ {
			cum += h.buckets[i]
			fmt.Fprintf(&sb, "%s_bucket{le=\"%d\"} %d\n", pn, bucketUpper(i), cum)
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.count)
		fmt.Fprintf(&sb, "%s_sum %d\n", pn, h.sum)
		fmt.Fprintf(&sb, "%s_count %d\n", pn, h.count)
		for qi, q := range []string{"p50", "p95", "p99"} {
			qn := pn + "_" + q
			if emitted[qn] {
				continue
			}
			emitted[qn] = true
			fmt.Fprintf(&sb, "# HELP %s Estimated %s of %s.\n# TYPE %s gauge\n%s %g\n", qn, q, name, qn, qn, h.quantiles[qi])
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// bucketUpper is the inclusive upper bound of histogram bucket i: bucket
// 0 holds zeros, bucket i holds [2^(i-1), 2^i).
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return (int64(1) << uint(i)) - 1
}

// PromName sanitizes a dotted internal metric name to the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func PromName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}
