package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanNestingRecords(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "compile", String("program", "sampling"))
	ctx2, child := StartSpan(ctx1, "attempt", Int("stages", 1))
	_, grand := StartSpan(ctx2, "synth")
	grand.End(Int64("conflicts", 7))
	child.End(String("outcome", "feasible"))
	root.End()

	recs := tr.Records()
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	if err := CheckWellFormed(recs); err != nil {
		t.Fatal(err)
	}
	// Parent linkage follows the context chain.
	if recs[0].Parent != 0 || recs[1].Parent != recs[0].ID || recs[2].Parent != recs[1].ID {
		t.Fatalf("bad parent chain: %+v", recs[:3])
	}
	if recs[0].Attrs["program"] != "sampling" {
		t.Fatalf("start attrs lost: %+v", recs[0].Attrs)
	}
	if recs[3].Attrs["conflicts"] != int64(7) {
		t.Fatalf("end attrs lost: %+v", recs[3].Attrs)
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "compile")
	if span != nil {
		t.Fatal("expected nil span without tracer")
	}
	if ctx2 != ctx {
		t.Fatal("context should pass through unchanged")
	}
	// All nil receivers must be safe.
	span.SetAttr(Int("x", 1))
	span.End()
	var tr *Tracer
	tr.StreamTo(&bytes.Buffer{})
	if tr.Records() != nil || tr.Summary() != "" || tr.Err() != nil {
		t.Fatal("nil tracer should be inert")
	}
}

func TestSpanEndTwice(t *testing.T) {
	tr := NewTracer()
	s := tr.StartRoot("x")
	s.End()
	s.End()
	if n := len(tr.Records()); n != 2 {
		t.Fatalf("double End emitted %d records, want 2", n)
	}
}

func TestSetAttrAccumulates(t *testing.T) {
	tr := NewTracer()
	s := tr.StartRoot("x")
	s.SetAttr(Int("iters", 3))
	s.End(Bool("feasible", true))
	recs := tr.Records()
	end := recs[1]
	if end.Attrs["iters"] != int64(3) || end.Attrs["feasible"] != true {
		t.Fatalf("end attrs = %+v", end.Attrs)
	}
}

func TestSummaryTree(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx, "compile", String("program", "rcp"))
	_, child := StartSpan(ctx1, "attempt", Int("stages", 2))
	child.End()
	root.End()

	sum := tr.Summary()
	lines := strings.Split(strings.TrimRight(sum, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("summary has %d lines:\n%s", len(lines), sum)
	}
	if !strings.HasPrefix(lines[0], "compile program=rcp") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  attempt stages=2") {
		t.Fatalf("child line = %q", lines[1])
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := ContextWithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, s := StartSpan(ctx, "worker", Int("i", i))
			_, inner := StartSpan(c, "inner")
			inner.End()
			s.End()
		}(i)
	}
	wg.Wait()
	recs := tr.Records()
	if len(recs) != 64 {
		t.Fatalf("got %d records, want 64", len(recs))
	}
	if err := CheckWellFormed(recs); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsFromAbsent(t *testing.T) {
	r := MetricsFrom(context.Background())
	if r != nil {
		t.Fatal("expected nil registry")
	}
	// The whole nil chain must be inert.
	r.Counter("x").Add(1)
	r.Gauge("y").SetMax(2)
	r.Histogram("z").Observe(3)
	if r.Counter("x").Value() != 0 || r.Snapshot() != nil || r.String() != "" {
		t.Fatal("nil registry should be inert")
	}
}
