package flight

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRingBounded: the recorder keeps exactly the last capacity entries
// and reports how many it shed.
func TestRingBounded(t *testing.T) {
	r := New(8)
	for i := 0; i < 20; i++ {
		r.Note("tick", map[string]any{"i": i})
	}
	tail := r.Tail()
	if len(tail) != 8 {
		t.Fatalf("tail holds %d entries, want 8", len(tail))
	}
	if r.Dropped() != 12 {
		t.Errorf("Dropped = %d, want 12", r.Dropped())
	}
	for i, e := range tail {
		if want := uint64(12 + i); e.Seq != want {
			t.Errorf("tail[%d].Seq = %d, want %d (oldest-first order)", i, e.Seq, want)
		}
	}
	if tail[7].Attrs["i"] != 19 {
		t.Errorf("newest entry attrs = %v, want i=19", tail[7].Attrs)
	}
}

// TestAttachReplayAndClose: attaching mid-compile replays the tracer's
// earlier records; Close stops the feed without losing the tail.
func TestAttachReplayAndClose(t *testing.T) {
	tr := obs.NewTracer()
	tr.StartRoot("compile").End()

	r := New(16)
	r.Attach(tr)
	if got := len(r.Tail()); got != 2 {
		t.Fatalf("replay recorded %d entries, want 2", got)
	}
	tr.StartRoot("attempt").End()
	if got := len(r.Tail()); got != 4 {
		t.Fatalf("live recording: %d entries, want 4", got)
	}

	r.Close()
	tr.StartRoot("late").End()
	if got := len(r.Tail()); got != 4 {
		t.Fatalf("closed recorder still recording: %d entries, want 4", got)
	}

	kinds := map[string]int{}
	for _, e := range r.Tail() {
		kinds[e.Kind]++
	}
	if kinds["start"] != 2 || kinds["end"] != 2 {
		t.Errorf("kinds = %v, want 2 start + 2 end", kinds)
	}
}

// TestWriteJSONL: the dump is one valid JSON object per line, bounded by
// the ring capacity.
func TestWriteJSONL(t *testing.T) {
	tr := obs.NewTracer()
	r := New(4)
	r.Attach(tr)
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot("cegis.iter", obs.Int("iter", i))
		sp.End()
	}
	var sb strings.Builder
	if err := r.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	lines := 0
	var last Entry
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
	}
	if lines != 4 {
		t.Fatalf("dump holds %d lines, want 4 (ring capacity)", lines)
	}
	// The tail is the *end* of the run: the final iteration's records.
	if last.Kind != "end" {
		t.Errorf("last entry kind = %q, want end", last.Kind)
	}
}

// TestNilRecorder: a nil recorder is a valid no-op sink.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Note("x", nil)
	r.Close()
	if r.Tail() != nil || r.Dropped() != 0 {
		t.Error("nil recorder should report nothing")
	}
}
